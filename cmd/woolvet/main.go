// Command woolvet runs the woolvet analyzer suite (internal/analysis)
// over the repository: compile-time enforcement of the direct-task-
// stack protocol invariants — atomic access discipline on the shared
// protocol words, owner-privacy of the task-stack indices, the padded
// cache-line layout, spawn/join balance in workload code, the
// publication-ordering dataflow rules, and the compiler perf budget
// (inlining and escape). See DESIGN.md §10 and §15 for the invariants
// and the annotation vocabulary.
//
// Usage:
//
//	go run ./cmd/woolvet ./...          # lint the whole module (CI)
//	go run ./cmd/woolvet ./internal/core
//	go run ./cmd/woolvet -only atomicfield,layoutguard ./...
//	go run ./cmd/woolvet -github ./...  # GitHub Actions annotations
//	go run ./cmd/woolvet -json ./...    # machine-readable findings
//	go run ./cmd/woolvet -mlog out/ ./...  # dump raw -gcflags=-m logs
//	go run ./cmd/woolvet -list
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gowool/internal/analysis"
)

// finding is the -json output record for one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	onlyFlag := flag.String("only", "", "comma-separated subset of analyzers to run")
	jsonFlag := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	ghFlag := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	mlogFlag := flag.String("mlog", "", "directory to write the raw -gcflags=-m compiler logs into")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: woolvet [-list] [-only a,b] [-json] [-github] [-mlog dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *jsonFlag && *ghFlag {
		fmt.Fprintln(os.Stderr, "woolvet: -json and -github are mutually exclusive")
		os.Exit(2)
	}

	analyzers := analysis.All()
	if *onlyFlag != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*onlyFlag, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "woolvet:", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "woolvet:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "woolvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "woolvet:", err)
		os.Exit(2)
	}

	var findings []finding
	for _, pkg := range pkgs {
		for _, d := range analysis.RunAnalyzers(pkg, analyzers) {
			pos := pkg.Fset.Position(d.Pos)
			findings = append(findings, finding{
				File:     relPath(wd, pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}

	if *mlogFlag != "" {
		if err := writeMLogs(*mlogFlag); err != nil {
			fmt.Fprintln(os.Stderr, "woolvet:", err)
			os.Exit(2)
		}
	}

	switch {
	case *jsonFlag:
		// Emit [] rather than null on a clean run so consumers can
		// always range over the result.
		if findings == nil {
			findings = []finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "woolvet:", err)
			os.Exit(2)
		}
	case *ghFlag:
		for _, f := range findings {
			// GitHub Actions workflow-command format; %0A would encode
			// newlines, but diagnostics are single-line.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=woolvet/%s::%s\n",
				f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// relPath makes filenames repo-relative so GitHub annotations attach
// to the right file regardless of the runner's checkout directory.
func relPath(wd, name string) string {
	if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return name
}

// writeMLogs dumps the raw compiler -m output captured by the
// perfbudget pass, one file per analyzed package, for the CI failure
// artifact.
func writeMLogs(dir string) error {
	logs := analysis.CompilerLogs()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for pkgDir, raw := range logs {
		name := strings.ReplaceAll(strings.Trim(filepath.ToSlash(pkgDir), "/"), "/", "_") + ".m.log"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(raw), 0o644); err != nil {
			return err
		}
	}
	return nil
}
