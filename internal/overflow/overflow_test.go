package overflow

import (
	"strings"
	"testing"
)

func TestPanicMessage(t *testing.T) {
	msg := PanicMessage("core", 3, 8192)
	for _, want := range []string{
		"core:", "task pool overflow", "worker 3", "capacity 8192",
		"StrictOverflow",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("PanicMessage missing %q:\n%s", want, msg)
		}
	}
}
