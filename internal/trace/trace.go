// Package trace (wooltrace) is the scheduler's low-overhead event
// tracer: one lock-free ring buffer per worker, recording the protocol
// events that explain a run — spawns, steals (victim and depth),
// leapfrog steals, trip-wire publications, privatizations, parks and
// wakes, and the spans of stolen-task execution — with monotonic
// timestamps relative to the tracer's creation.
//
// The design constraints, in order:
//
//  1. Disabled tracing must cost nothing on the spawn/join fast path.
//     The scheduler holds a per-worker *Ring that is nil when tracing
//     is off; every emission site is gated on a plain nil check, so
//     the disabled path adds one predictable branch and zero atomics
//     (guarded by TestTraceOverheadDisabled in internal/core).
//  2. Enabled tracing must never block or allocate. Record is a plain
//     array write plus one atomic store (the single-writer publication
//     of the ring position) and one clock read. No locks, no channels.
//  3. Tracing must survive arbitrarily long runs. The ring overwrites
//     its oldest events on wrap (newest-wins policy): a trace is a
//     window ending at "now", sized by the capacity passed to New.
//
// Each Ring has exactly one writer — the goroutine driving that worker
// — so Record needs no synchronization against other writers. The
// atomic position store publishes completed events to Snapshot readers;
// a live Snapshot taken mid-run may additionally observe a slot being
// overwritten after wrap, which is a benign (and documented) race: the
// reader sees either the old or the half-new event of the single slot
// at the write frontier, never a torn pointer. Snapshot on a quiescent
// tracer is exact.
package trace

import (
	"sync/atomic"
	"time"
)

// Kind enumerates the trace event vocabulary (DESIGN.md §11).
type Kind uint8

// Event kinds.
const (
	// KindSpawn: the worker pushed a task descriptor. Arg is the stack
	// depth (index) of the new descriptor.
	KindSpawn Kind = iota
	// KindSteal: the worker stole a task. Arg is the victim's worker
	// index (or -1 for a central shared queue), Arg2 the stolen depth.
	KindSteal
	// KindLeapfrog: like KindSteal, but the steal happened inside a
	// blocked join, restricted to the joined task's thief (leapfrogging).
	KindLeapfrog
	// KindPublish: the worker answered a trip-wire notification by
	// raising its public boundary. Arg is the old publicLimit, Arg2 the
	// new one.
	KindPublish
	// KindPrivatize: the revocable cut-off pulled the public boundary
	// back down. Arg is the new publicLimit.
	KindPrivatize
	// KindPark: the worker parked on the pool's idle engine (or, for
	// backends without a parking engine, entered its idle sleep phase).
	KindPark
	// KindWake: the worker issued a targeted wake. Arg is the index of
	// the worker it woke.
	KindWake
	// KindTaskStart: the worker began executing a stolen task. Arg is
	// the victim index, Arg2 the stolen depth. Paired with KindTaskEnd,
	// these delimit the spans rendered as slices in the Chrome export.
	KindTaskStart
	// KindTaskEnd closes the span opened by the matching KindTaskStart.
	KindTaskEnd

	numKinds
)

// kindNames are the exported event names (stable; trace consumers and
// the trace-smoke schema check key on them).
var kindNames = [numKinds]string{
	KindSpawn:     "SPAWN",
	KindSteal:     "STEAL",
	KindLeapfrog:  "LEAPFROG",
	KindPublish:   "PUBLISH",
	KindPrivatize: "PRIVATIZE",
	KindPark:      "PARK",
	KindWake:      "WAKE",
	KindTaskStart: "TASK-START",
	KindTaskEnd:   "TASK-END",
}

// String returns the stable event name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "UNKNOWN"
}

// KindFromString maps an exported event name back to its Kind,
// reporting false for names outside the vocabulary.
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one recorded trace event. TS is nanoseconds since the
// tracer's creation (monotonic). The meaning of Arg/Arg2 depends on
// Kind (see the kind constants).
type Event struct {
	TS     int64
	Arg    int64
	Arg2   int64
	Worker int32
	Kind   Kind
}

// Ring is one worker's event buffer. Exactly one goroutine — the one
// driving the worker — may call Record; Snapshot may be called from
// anywhere (see the package comment for the wrap race).
type Ring struct {
	tracer *Tracer
	buf    []Event
	mask   uint64
	worker int32

	// pos counts events ever recorded; the next write slot is
	// pos & mask. Written only by the ring's single writer; the atomic
	// store is the publication point for snapshot readers.
	pos atomic.Uint64
}

// Record appends one event. It never blocks and never allocates; on a
// full ring it overwrites the oldest event.
func (r *Ring) Record(k Kind, arg, arg2 int64) {
	p := r.pos.Load() // single writer: this is our own last store
	e := &r.buf[p&r.mask]
	e.TS = int64(time.Since(r.tracer.start))
	e.Arg = arg
	e.Arg2 = arg2
	e.Worker = r.worker
	e.Kind = k
	r.pos.Store(p + 1)
}

// Len returns how many events the ring currently holds (at most its
// capacity, once wrapped).
func (r *Ring) Len() int {
	p := r.pos.Load()
	if p > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(p)
}

// Dropped returns how many events have been overwritten by wrap.
func (r *Ring) Dropped() uint64 {
	p := r.pos.Load()
	if p > uint64(len(r.buf)) {
		return p - uint64(len(r.buf))
	}
	return 0
}

// DefaultCapacity is the per-worker ring capacity used when New is
// given a non-positive capacity: 64Ki events ≈ 2 MiB per worker.
const DefaultCapacity = 1 << 16

// Tracer owns one Ring per worker. Create it with New, hand it to the
// scheduler (core Options.Trace / sched Options.TraceSink), and read it
// back with Snapshot, WriteChromeTrace or StealMatrix.
type Tracer struct {
	start time.Time
	rings []*Ring
}

// New creates a tracer with one ring of the given capacity (rounded up
// to a power of two; DefaultCapacity if <= 0) per worker.
func New(workers, capacity int) *Tracer {
	if workers <= 0 {
		workers = 1
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	t := &Tracer{start: time.Now(), rings: make([]*Ring, workers)}
	for i := range t.rings {
		t.rings[i] = &Ring{
			tracer: t,
			buf:    make([]Event, size),
			mask:   uint64(size - 1),
			worker: int32(i),
		}
	}
	return t
}

// Workers returns the number of per-worker rings.
func (t *Tracer) Workers() int { return len(t.rings) }

// Ring returns worker i's ring. The scheduler caches this pointer in
// the worker struct; everything else should go through Snapshot.
func (t *Tracer) Ring(i int) *Ring { return t.rings[i] }

// Snapshot copies every ring's current contents, oldest event first.
// On a quiescent tracer (no Run in flight) the copy is exact. Taken
// live it is deliberately racy — each ring's single slot at the write
// frontier may be mid-overwrite — which is fine for monitoring but
// means a live snapshot is not race-detector-clean; see DESIGN.md §11.
func (t *Tracer) Snapshot() [][]Event {
	out := make([][]Event, len(t.rings))
	for i, r := range t.rings {
		p := r.pos.Load()
		n := uint64(len(r.buf))
		if p < n {
			n = p
		}
		events := make([]Event, n)
		for j := uint64(0); j < n; j++ {
			events[j] = r.buf[(p-n+j)&r.mask]
		}
		out[i] = events
	}
	return out
}

// Dropped sums the overwritten-event counts across all rings; nonzero
// means the exported trace is a suffix window, not the whole run.
func (t *Tracer) Dropped() uint64 {
	var d uint64
	for _, r := range t.rings {
		d += r.Dropped()
	}
	return d
}
