package sim

// spanTracker measures work (T1) and critical path (T∞) during a
// single-processor simulated run, in virtual cycles, under both the
// paper's cost models: the abstract one (load balancing is free; a
// join contributes max(continuation, child)) and the realistic one
// (parallel composition only when it saves at least overhead cycles,
// and then it costs an extra overhead on the critical path). This is
// the simulated counterpart of core.SpanProfiler and produces the
// parallelism columns of Table I deterministically.
type spanTracker struct {
	overhead uint64

	frames []spanFrame
	marks  []spanMark

	// strand accumulates Work() cycles since the last boundary; spawn
	// and join costs charged by the protocol also land here through
	// the frame accounting below.
	strand uint64

	work, span0, spanO uint64
}

type spanFrame struct {
	span0, spanO uint64
	markBase     int
}

type spanMark struct {
	span0, spanO uint64
}

func newSpanTracker(overhead uint64) *spanTracker {
	return &spanTracker{overhead: overhead}
}

func (st *spanTracker) begin() {
	st.frames = st.frames[:0]
	st.marks = st.marks[:0]
	st.strand = 0
	st.work = 0
	st.frames = append(st.frames, spanFrame{})
}

func (st *spanTracker) closeStrand() {
	d := st.strand
	st.strand = 0
	f := &st.frames[len(st.frames)-1]
	f.span0 += d
	f.spanO += d
	st.work += d
}

func (st *spanTracker) onSpawn() {
	st.closeStrand()
	f := &st.frames[len(st.frames)-1]
	st.marks = append(st.marks, spanMark{span0: f.span0, spanO: f.spanO})
}

func (st *spanTracker) onJoinStart() {
	st.closeStrand()
	st.frames = append(st.frames, spanFrame{markBase: len(st.marks)})
}

func (st *spanTracker) onJoinEnd() {
	st.closeStrand()
	child := st.frames[len(st.frames)-1]
	if len(st.marks) != child.markBase {
		panic("sim: span tracker: task returned with unjoined spawns")
	}
	st.frames = st.frames[:len(st.frames)-1]
	f := &st.frames[len(st.frames)-1]
	m := st.marks[len(st.marks)-1]
	st.marks = st.marks[:len(st.marks)-1]

	k0 := f.span0 - m.span0
	if child.span0 > k0 {
		f.span0 = m.span0 + child.span0
	}

	kO := f.spanO - m.spanO
	cO := child.spanO
	if min64(kO, cO) < st.overhead {
		f.spanO = m.spanO + kO + cO
	} else {
		f.spanO = m.spanO + max64(kO, cO) + st.overhead
	}
}

func (st *spanTracker) end(w *W) {
	st.closeStrand()
	if len(st.frames) != 1 {
		panic("sim: span tracker: unbalanced task nesting at end")
	}
	st.span0 = st.frames[0].span0
	st.spanO = st.frames[0].spanO
}

// Protocol hooks: only active when the machine tracks span.

func (w *W) spanSpawn() {
	if w.m.span != nil {
		w.m.span.onSpawn()
	}
}

func (w *W) spanJoinStart() {
	if w.m.span != nil {
		w.m.span.onJoinStart()
	}
}

func (w *W) spanJoinEnd() {
	if w.m.span != nil {
		w.m.span.onJoinEnd()
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
