package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(clk *fakeClock) *Breaker {
	return NewBreaker(BreakerConfig{
		Window:         time.Second,
		Buckets:        4,
		MinSamples:     10,
		FailureRate:    0.5,
		Cooldown:       100 * time.Millisecond,
		HalfOpenProbes: 2,
	}, clk.now)
}

// TestBreakerTripsOnFailureRate: below MinSamples nothing trips; at
// the threshold with a crossing rate the breaker opens and sheds.
func TestBreakerTripsOnFailureRate(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	// 9 failures: still under MinSamples, stays closed.
	for i := 0; i < 9; i++ {
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 9 failures = %v, want closed (MinSamples=10)", b.State())
	}
	b.Record(false) // 10th sample, rate 1.0 ≥ 0.5 → open
	if b.State() != BreakerOpen {
		t.Fatalf("state after 10 failures = %v, want open", b.State())
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	h := b.Health()
	if h.Opened != 1 || h.State != "open" {
		t.Fatalf("health = %+v, want opened=1 state=open", h)
	}
}

// TestBreakerStaysClosedUnderRate: many samples at a sub-threshold
// failure rate never trip; the same volume above the threshold does.
func TestBreakerStaysClosedUnderRate(t *testing.T) {
	clk := newFakeClock()
	under := testBreaker(clk)
	for i := 0; i < 40; i++ {
		under.Record(i%4 != 0) // 25% failures
	}
	if under.State() != BreakerClosed {
		t.Fatalf("state at 25%% failure rate = %v, want closed", under.State())
	}
	over := testBreaker(clk)
	for i := 0; i < 40; i++ {
		over.Record(i%4 == 0) // 75% failures
	}
	if over.State() != BreakerOpen {
		t.Fatalf("state at 75%% failure rate = %v, want open", over.State())
	}
}

// TestBreakerHalfOpenRecovery: cooldown moves open → half-open on the
// next Allow; HalfOpenProbes successes close it and reset the window.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 10; i++ {
		b.Record(false)
	}
	if b.State() != BreakerOpen {
		t.Fatal("setup: breaker should be open")
	}
	clk.advance(150 * time.Millisecond) // past cooldown
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("post-cooldown Allow = (%v, %v), want (true, true)", ok, probe)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Second concurrent probe admitted, third rejected (bound = 2).
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatalf("second probe Allow = (%v, %v), want (true, true)", ok, probe)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("half-open admitted beyond the probe bound")
	}
	b.ProbeDone(true)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after 1/2 probe successes = %v, want half-open", b.State())
	}
	b.ProbeDone(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/2 probe successes = %v, want closed", b.State())
	}
	h := b.Health()
	if h.Opened != 1 || h.HalfOpened != 1 || h.Closed != 1 {
		t.Fatalf("transitions = %+v, want opened=1 halfOpened=1 closed=1", h)
	}
	// The recovery reset the window: old failures must not re-trip on
	// the next recorded failure.
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("recovered breaker re-tripped on a single failure (window not reset)")
	}
}

// TestBreakerHalfOpenFailureReopens: a failed probe re-opens and the
// cooldown restarts.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 10; i++ {
		b.Record(false)
	}
	clk.advance(150 * time.Millisecond)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("setup: probe not admitted")
	}
	b.ProbeDone(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("re-opened breaker admitted a request before the new cooldown")
	}
	if h := b.Health(); h.Opened != 2 {
		t.Fatalf("opened = %d, want 2", h.Opened)
	}
}

// TestBreakerWindowAges: failures older than the window age out, so a
// burst followed by quiet does not trip later.
func TestBreakerWindowAges(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk)
	for i := 0; i < 9; i++ {
		b.Record(false)
	}
	// Let the whole window expire, then record enough mixed outcomes:
	// the old 9 failures must be gone.
	clk.advance(2 * time.Second)
	for i := 0; i < 12; i++ {
		b.Record(true)
	}
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed (old failures should have aged out)", b.State())
	}
	h := b.Health()
	if h.WindowFailures != 1 || h.WindowSuccesses != 12 {
		t.Fatalf("window = %d/%d (f/s), want 1/12", h.WindowFailures, h.WindowSuccesses)
	}
}
