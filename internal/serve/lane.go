package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"gowool/internal/chaos"
	"gowool/internal/core"
	"gowool/internal/poolerr"
	"gowool/internal/sched"
)

// lane is one worker team slot: a small pool of LaneWidth workers and
// the goroutine that drains requests into it one at a time. The lane
// serializes Run calls onto its pool — concurrency across requests
// comes from the number of lanes.
type lane struct {
	srv  *Server
	idx  int
	tn   *tenant // home team
	opts sched.Options

	// mu guards the pool/ab pointer swaps against concurrent Health
	// readers. The lane goroutine is the only writer and the only
	// request-path reader, so it reads its own fields directly.
	mu   sync.Mutex
	pool sched.Pool
	// ab is the pool's request-scoped abort surface, nil when the
	// backend lacks Caps.Serve (then a poisoned pool is replaced
	// instead of Reset).
	ab sched.Abortable

	// wantQuarantine is lane-goroutine-private: set when a Reset fails
	// or the failure streak trips, consumed by loop between requests.
	wantQuarantine bool

	// Health counters (DESIGN.md §17). quarantined flips while the lane
	// is out of rotation replacing and probing its pool.
	quarantined   atomic.Bool
	streak        atomic.Int32
	quarantines   atomic.Int64
	replacements  atomic.Int64
	probes        atomic.Int64
	probeFailures atomic.Int64
}

// loop drains requests until the server closes, then closes the pool.
// Quarantine runs between requests: the lane is simply absent from the
// queue-draining rotation while it replaces and probes its pool.
func (l *lane) loop() {
	defer l.srv.wg.Done()
	for {
		t := l.next()
		if t == nil {
			l.pool.Close()
			return
		}
		l.serveOne(t)
		if l.wantQuarantine {
			l.wantQuarantine = false
			l.quarantine()
		}
	}
}

// next blocks for the lane's next request: the home tenant's queue
// first (team affinity), otherwise the most backlogged queue relative
// to its weight (work conservation — an idle team helps the busiest
// tenant rather than idling, which cannot starve its own tenant: a
// home submission wakes a waiter and home work is always preferred).
// Returns nil when the server has closed and the queues are drained.
func (l *lane) next() *Ticket {
	s := l.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t := l.tn.pop(); t != nil {
			return t
		}
		var best *tenant
		var bestScore float64
		for _, tn := range s.tenants {
			if len(tn.q) == 0 {
				continue
			}
			score := float64(len(tn.q)) / float64(tn.weight)
			if best == nil || score > bestScore {
				best, bestScore = tn, score
			}
		}
		if best != nil {
			return best.pop()
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// serveOne runs one request's next attempt on the lane's pool,
// threading the request's context through the pool's abort machinery
// and restoring the pool to health afterwards.
func (l *lane) serveOne(t *Ticket) {
	if err := t.ctx.Err(); err != nil {
		// Cancelled while queued: fail at dispatch without running.
		l.finishAttempt(t, 0, err, 0)
		return
	}

	// Arm the mid-flight cancellation: the context's cancellation
	// callback aborts this lane's pool, and the run unwinds with the
	// *poolerr.AbortError. The fired channel closes only after the
	// callback's Abort returned, so the stop/wait below guarantees the
	// abort cannot land on a LATER request of this lane: either we
	// stop the callback before it ran, or we wait out its poisoning
	// and Reset it away before the next request starts.
	var stop func() bool
	var fired chan struct{}
	if l.ab != nil && t.ctx.Done() != nil {
		ctx, ab, ch := t.ctx, l.ab, make(chan struct{})
		fired = ch
		stop = context.AfterFunc(ctx, func() {
			defer close(ch)
			ab.Abort(ctx.Err())
		})
	}

	start := time.Now()
	val, err := runJob(l.pool, t.job)
	dur := time.Since(start)

	if stop != nil && !stop() {
		<-fired
	}

	// Restore pool health before touching the next request.
	if l.ab != nil {
		if cause, poisoned := l.ab.Poisoned(); poisoned {
			if ae, ok := cause.(*poolerr.AbortError); ok && err != nil {
				// The abort landed before Run's first descriptor (the
				// poisoned-pool entry panic) or mid-flight; either way
				// the request's classifying error is the abort reason.
				err = ae.Reason
				if err == nil {
					err = ae
				}
			}
			if l.srv.inj.Fail(chaos.ServeLaneResetFail) {
				// Chaos: behave as if Reset failed without calling it —
				// quarantine discards the pool either way.
				l.wantQuarantine = true
			} else if rerr := l.ab.Reset(); rerr != nil {
				l.wantQuarantine = true
			}
		}
	} else if err != nil && l.pool.Native() != nil {
		// Backend without the abort surface: a panic poisoned its pool
		// in a backend-specific, unrecoverable way. Per-request
		// isolation still holds — replace the pool wholesale.
		l.replacePool()
	}

	l.finishAttempt(t, val, err, dur)
}

// Attempt outcome classes for the resilience accounting: only OK and
// failure feed the breaker and retry machinery; cancellations and
// sheds say nothing about tenant or lane health.
type outcome uint8

const (
	outcomeOK outcome = iota
	outcomeCancel
	outcomeShed
	outcomeFailure
)

// outcomeOf maps an attempt error onto the poolerr taxonomy.
func outcomeOf(err error) outcome {
	if err == nil {
		return outcomeOK
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return outcomeCancel
	}
	switch poolerr.ClassOf(err) {
	case poolerr.ClassShed:
		return outcomeShed
	case poolerr.ClassNonRetryable:
		return outcomeCancel
	default:
		// Retryable and unknown alike count as failures.
		return outcomeFailure
	}
}

// finishAttempt feeds one attempt's outcome into the resilience state
// (breaker, estimator, retry budget, failure streak) and either
// finishes the ticket or hands it to the retry machinery.
func (l *lane) finishAttempt(t *Ticket, val int64, err error, dur time.Duration) {
	tn := t.tn
	oc := outcomeOf(err)
	if t.probe {
		t.probe = false
		if tn.breaker != nil {
			switch oc {
			case outcomeOK:
				tn.breaker.ProbeDone(true)
			case outcomeFailure:
				tn.breaker.ProbeDone(false)
			default:
				tn.breaker.ProbeSkipped()
			}
		}
	} else if tn.breaker != nil {
		switch oc {
		case outcomeOK:
			tn.breaker.Record(true)
		case outcomeFailure:
			tn.breaker.Record(false)
		}
	}
	switch oc {
	case outcomeOK:
		l.streak.Store(0)
		if tn.est != nil {
			tn.est.Observe(t.class, dur)
		}
		if tn.retrier != nil {
			tn.retrier.OnSuccess()
		}
	case outcomeFailure:
		ns := l.streak.Add(1)
		if fs := l.srv.qcfg.FailureStreak; fs > 0 && int(ns) >= fs && !l.srv.res.DisableQuarantine {
			l.wantQuarantine = true
		}
		if t.Retryable {
			t.attempt++
			if backoff, ok := tn.retrier.Next(t.attempt); ok && l.srv.scheduleRetry(t, backoff) {
				tn.retried.Add(1)
				return // the retry timer owns the ticket now
			}
		}
	}
	finishTicket(t, val, err)
}

// finishTicket publishes the request's final outcome and counts it.
func finishTicket(t *Ticket, val int64, err error) {
	tn := t.tn
	switch {
	case err == nil:
		tn.completed.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		tn.cancelled.Add(1)
	default:
		tn.failed.Add(1)
	}
	t.val, t.err = val, err
	t.latency = time.Since(t.submitted)
	close(t.done)
}

// quarantine pulls the lane from rotation and hot-replaces its pool:
// replace, probe, and on a failed probe back off and replace again,
// until a probe passes or the server closes. With quarantine disabled
// it degrades to the plain in-place replacement.
func (l *lane) quarantine() {
	if l.srv.res.DisableQuarantine {
		l.replacePool()
		return
	}
	l.quarantined.Store(true)
	l.quarantines.Add(1)
	for {
		l.replacePool()
		if l.probeOnce() {
			break
		}
		select {
		case <-l.srv.closeCh:
			// Closing: stop probing; next() will see the closed server
			// and shut the lane down.
			l.quarantined.Store(false)
			l.streak.Store(0)
			return
		case <-time.After(l.srv.qcfg.ProbeBackoff):
		}
	}
	l.quarantined.Store(false)
	l.streak.Store(0)
}

// probeWant is fib(probeDepth), the expected probe result.
const probeDepth, probeWant = 6, 8

// probeJob builds the quarantine health probe: a small fib-shaped
// spawn tree, enough to exercise the replacement pool's spawn/join and
// steal paths without measurable cost.
func probeJob() Job {
	return Rec(sched.RecJob{
		Name: "__lane-probe",
		Root: probeDepth,
		Leaf: func(n int64) (int64, bool) {
			if n < 2 {
				return n, true
			}
			return 0, false
		},
		Split: func(n int64) (inline, spawned int64) { return n - 1, n - 2 },
	})
}

// probeOnce runs one health probe on the (fresh) pool.
func (l *lane) probeOnce() bool {
	l.probes.Add(1)
	if l.srv.inj.Fail(chaos.ServeProbeFail) {
		l.probeFailures.Add(1)
		return false
	}
	v, err := runJob(l.pool, probeJob())
	if err != nil || v != probeWant {
		l.probeFailures.Add(1)
		return false
	}
	return true
}

// replacePool swaps in a fresh pool built from the lane's recorded
// options and closes the old one (closing a poisoned pool is safe:
// its workers are released by Close, see the core poison gate).
func (l *lane) replacePool() {
	old := l.pool
	np := l.srv.sch.NewPool(l.opts)
	var ab sched.Abortable
	if l.srv.caps.Serve {
		ab, _ = np.Native().(sched.Abortable)
	}
	l.mu.Lock()
	l.pool, l.ab = np, ab
	l.mu.Unlock()
	l.replacements.Add(1)
	old.Close()
}

// runJob runs the request's root on the pool, converting the
// scheduler's panic-based failure surface into an error: a
// *poolerr.AbortError (request cancellation) unwraps to its reason, a
// *core.WatchdogError passes through typed (it classifies as
// retryable), anything else becomes a *PanicError.
func runJob(p sched.Pool, j Job) (v int64, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if ae, ok := r.(*poolerr.AbortError); ok {
			if ae.Reason != nil {
				err = ae.Reason
			} else {
				err = ae
			}
			return
		}
		if we, ok := r.(*core.WatchdogError); ok {
			err = we
			return
		}
		err = &PanicError{Val: r}
	}()
	return j.runOn(p), nil
}
