package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gowool/internal/chaos"
	"gowool/internal/poolerr"
	"gowool/internal/steal"
	"gowool/internal/trace"
)

// Options configures a Pool. The zero value is usable: Defaults fills
// in every unset field.
type Options struct {
	// Workers is the number of workers (the paper's processors).
	// Defaults to runtime.GOMAXPROCS(0).
	Workers int

	// StackSize is the per-worker task-pool capacity in descriptors.
	// The direct task stack is a fixed array (no indirections, strict
	// stack discipline). A spawn that finds it full degrades to inline
	// serial execution (Stats.OverflowInlined counts them) unless
	// StrictOverflow is set. Default 8192.
	StackSize int

	// StrictOverflow makes a task-stack overflow panic (the pre-
	// degradation behaviour) instead of inlining the overflowing spawn.
	// Useful in tests and benchmarks where silent serialization would
	// mask a capacity bug.
	StrictOverflow bool

	// PrivateTasks enables the private-task optimization with the
	// trip-wire publication scheme (paper Section III-B). When false,
	// every descriptor is public and every join pays the atomic
	// exchange.
	PrivateTasks bool

	// InitialPublic is the number of public descriptors a worker
	// starts with (and the headroom kept public when the boundary is
	// pulled back down). Default 2.
	InitialPublic int

	// TripDistance: a steal within this many descriptors of the public
	// boundary trips the wire and asks the owner to publish more.
	// Default 1 (the boundary task itself).
	TripDistance int

	// PublishAmount is how many descriptors a trip-wire notification
	// publishes. Default 2.
	PublishAmount int

	// PrivatizeRun is the number of consecutive inlined public joins
	// after which the owner pulls the public boundary back down
	// (dynamic, revocable cut-off). Default 16.
	PrivatizeRun int

	// Profile enables the CPU-time breakdown instrumentation used for
	// the paper's Figure 6 (categories ST, LF, NA, LA, TR). It costs
	// two clock reads around every steal attempt and stolen task.
	Profile bool

	// Span enables the span (critical-path) measurement facility used
	// for Table I. Valid for single-worker pools; see SpanProfiler.
	Span bool

	// StealSampling makes idle thieves probe up to this many candidate
	// victims per attempt and steal from the first that looks
	// stealable (bot descriptor in TASK state), instead of committing
	// to one uniformly random victim (1, the default and the paper's
	// policy). Sampling trades extra read-only probes for fewer failed
	// attempts when few pools hold work — the direction Wool's own
	// later development took. Probes within one attempt are pairwise
	// distinct (capped at 8).
	StealSampling int

	// StealRetain is the last-successful-victim retention policy: after
	// a successful steal the thief returns to the same victim first,
	// dropping it after this many consecutive probes that find nothing.
	// Steals cluster, so the retained victim very often has more work.
	// 0 means the default of 1; negative disables retention (every
	// attempt picks a fresh random victim, the paper's policy).
	StealRetain int

	// Steal selects the victim-selection policy layer (internal/steal):
	// Policy is one of steal.Policies() plus the per-policy parameters
	// (retention budget, sampling width, localized neighborhood/spill).
	// The zero value reproduces the pre-policy behaviour bit for bit —
	// last-victim retention over uniform random, parameterized by the
	// legacy StealSampling/StealRetain fields above (which Defaults
	// folds into this struct; explicit Steal fields win). Steal.Amount
	// is accepted for registry uniformity but the direct task stack
	// only supports taking one task per steal: the descriptor CAS
	// claims exactly one bottom task.
	Steal steal.Config

	// Parking controls whether fully idle workers park on the pool's
	// idle engine once the back-off ladder is exhausted, dropping a
	// quiescent pool to ~0% CPU; producers issue a targeted wake when
	// work appears (see park.go). ParkDefault enables parking unless
	// MaxIdleSleep is negative (pure spinning — a dedicated machine,
	// the paper's setup — implies no parking either). ParkOff
	// reproduces the seed behaviour of sleep-polling forever.
	Parking ParkMode

	// BlockedJoinWait selects what a join does while its task is
	// stolen. The default, WaitLeapfrog, steals from the thief (the
	// paper's choice). WaitSpin just waits — the paper's Figure 6
	// analysis observes that for its workloads "simply waiting would
	// be adequate" (the LA category is small); this option exists to
	// reproduce that ablation. Unrestricted stealing is deliberately
	// not offered: in a direct-style library it suffers the
	// buried-join problem (Section I-b) — stolen work would sit above
	// the blocked join on the worker's stack.
	BlockedJoinWait WaitPolicy

	// LockOSThread pins each worker goroutine to an OS thread, which
	// removes Go-runtime migration noise on multi-core hosts. Leave it
	// off on single-core hosts: pinned spinning threads starve each
	// other between scheduler yields.
	LockOSThread bool

	// MaxIdleSleep caps the back-off sleep of idle workers. Zero means
	// the default of 200µs, which keeps idle pools cheap while
	// bounding added steal latency; negative means never sleep (pure
	// spin + yield), matching a dedicated latency-sensitive machine.
	MaxIdleSleep time.Duration

	// Trace attaches a wooltrace event tracer: every worker records
	// SPAWN/STEAL/LEAPFROG/PUBLISH/PRIVATIZE/PARK/WAKE and stolen-task
	// spans into its per-worker ring (see internal/trace and DESIGN.md
	// §11). The tracer must have at least Workers rings. nil (the
	// default) disables tracing with zero fast-path cost: the worker's
	// ring pointer is nil and every emission site is a plain nil check
	// — no atomics (TestTraceOverheadDisabled).
	Trace *trace.Tracer

	// Chaos attaches a fault-injection injector: every worker consults
	// its per-worker agent at the named protocol points (internal/chaos,
	// DESIGN.md §12), deterministically stretching or failing the
	// windows the steal protocol must survive. The injector must have
	// at least Workers agents. nil (the default) disables injection
	// with zero fast-path cost, exactly like Trace: the worker's agent
	// pointer is nil and every hook is a plain nil check
	// (TestChaosOverheadDisabled). Never enable on production pools.
	Chaos *chaos.Injector

	// Watchdog, when positive, arms a stuck-run detector: a background
	// goroutine that trips when some worker has been continuously
	// blocked in a join for at least this interval while the pool made
	// no progress (no steals, no completions, no publications) and no
	// worker was executing stolen work. On a trip the blocked workers
	// panic with a *WatchdogError carrying a diagnostic bundle, so a
	// protocol bug or a lost-wakeup hang fails the Run loudly instead
	// of spinning forever. Zero (the default) disables it.
	Watchdog time.Duration
}

// ParkMode selects the idle-worker parking behaviour (Options.Parking).
type ParkMode int

// Parking modes.
const (
	// ParkDefault resolves to ParkOn, except when MaxIdleSleep is
	// negative (pure spinning), which implies ParkOff.
	ParkDefault ParkMode = iota
	// ParkOn parks exhausted idle workers on the pool's idle engine.
	ParkOn
	// ParkOff never parks: idle workers sleep-poll forever (the seed
	// behaviour, and the paper's dedicated-machine assumption).
	ParkOff
)

// String names the mode.
func (m ParkMode) String() string {
	switch m {
	case ParkDefault:
		return "default"
	case ParkOn:
		return "on"
	case ParkOff:
		return "off"
	default:
		return fmt.Sprintf("ParkMode(%d)", int(m))
	}
}

// WaitPolicy selects the blocked-join behaviour.
type WaitPolicy int

// Wait policies.
const (
	// WaitLeapfrog steals from the thief of the joined task while
	// blocked (the default; Wagner & Calder's leapfrogging).
	WaitLeapfrog WaitPolicy = iota
	// WaitSpin waits without stealing (a non-greedy scheduler).
	WaitSpin
)

// String names the policy.
func (p WaitPolicy) String() string {
	switch p {
	case WaitLeapfrog:
		return "leapfrog"
	case WaitSpin:
		return "spin"
	default:
		return fmt.Sprintf("WaitPolicy(%d)", int(p))
	}
}

// Defaults returns o with every unset field replaced by its default.
func (o Options) Defaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.StackSize <= 0 {
		o.StackSize = 8192
	}
	if o.InitialPublic <= 0 {
		o.InitialPublic = 2
	}
	if o.TripDistance <= 0 {
		o.TripDistance = 1
	}
	if o.PublishAmount <= 0 {
		o.PublishAmount = 2
	}
	if o.PrivatizeRun <= 0 {
		o.PrivatizeRun = 16
	}
	if o.StealSampling <= 0 {
		o.StealSampling = 1
	}
	if o.StealRetain == 0 {
		o.StealRetain = 1
	}
	// Fold the legacy knobs into the policy config: unset Steal fields
	// inherit StealRetain/StealSampling, and an unset policy name
	// resolves to the historical behaviour (last-victim retention, or
	// plain random when retention is disabled).
	if o.Steal.Policy == "" {
		if o.StealRetain > 0 {
			o.Steal.Policy = steal.LastVictim
		} else {
			o.Steal.Policy = steal.Random
		}
	}
	if o.Steal.Retain == 0 {
		o.Steal.Retain = o.StealRetain
	}
	if o.Steal.Sampling == 0 {
		o.Steal.Sampling = o.StealSampling
	}
	o.Steal = o.Steal.Defaults()
	if o.MaxIdleSleep == 0 {
		o.MaxIdleSleep = 200 * time.Microsecond
	}
	if o.Parking == ParkDefault {
		if o.MaxIdleSleep < 0 {
			o.Parking = ParkOff
		} else {
			o.Parking = ParkOn
		}
	}
	return o
}

// parkAfterFactor scales MaxIdleSleep into the cumulative back-off
// sleep an idle worker pays before parking (default 16 × 200µs ≈ 3.2ms
// of quiet), keeping parking invisible during normal run-to-run gaps.
const parkAfterFactor = 16

// Pool is a work-stealing scheduler instance: a set of workers, each
// with a direct task stack. Create one with NewPool, submit work with
// Run, release the workers with Close.
type Pool struct {
	opts    Options
	workers []*Worker
	idle    *idleEngine // nil when parking is disabled

	shutdown atomic.Bool
	running  atomic.Bool
	wg       sync.WaitGroup

	// panicVal/panicked record the first poisoning cause (task panic or
	// Abort). Writes are first-cause-wins under poisonMu — a mutex, not
	// a sync.Once, because Reset must be able to clear the record for
	// the next request without racing a concurrent Abort's Do (abort.go).
	// Readers load panicked (atomic) and, when set, read panicVal: the
	// Store after the panicVal write orders the pair.
	panicVal any
	panicked atomic.Bool

	// Poison parking (abort.go): instead of exiting their goroutines, a
	// poisoned pool's idle workers block on poisonGate so Reset can
	// revive them for the next request (the serving layer's per-request
	// abort, DESIGN.md §16). poisonWaiters counts workers blocked on
	// the gate; together with the idle engine's parked count it is the
	// quiescence signal Reset waits on. All three fields are guarded by
	// poisonMu; the gate channel is replaced per poison episode.
	poisonMu      sync.Mutex
	poisonWaiters int
	poisonGate    chan struct{}

	// progress is the watchdog's heartbeat: bumped on slow-path
	// milestones (steal commits, stolen-task completions, trip-wire
	// publications). Deliberately never touched on the spawn/join fast
	// path — quiescence of this counter plus a blocked worker is what
	// the watchdog inspects.
	progress atomic.Int64

	// wdErr is the tripped watchdog's verdict; blocked wait loops poll
	// it (watchdogPoll) and panic with it, failing the Run.
	wdErr  atomic.Pointer[WatchdogError]
	wdStop chan struct{}
	wdDone chan struct{}

	startup time.Duration
}

// NewPool creates a pool with opts.Workers workers. Worker 0 is driven
// by the goroutine that calls Run; workers 1..N-1 are goroutines that
// steal until Close.
//
//woolvet:allow ownerprivate -- construction: no worker goroutine exists yet, so every field is still unshared
func NewPool(opts Options) *Pool {
	opts = opts.Defaults()
	if uint64(opts.Workers) > maxWorkers {
		panic(fmt.Sprintf("core: Options.Workers = %d exceeds the %d the STOLEN(thief) state encoding can name (thief index is packed at state>>%d)",
			opts.Workers, maxWorkers, stolenShift))
	}
	if opts.Trace != nil && opts.Trace.Workers() < opts.Workers {
		panic(fmt.Sprintf("core: Options.Trace has %d rings for %d workers; create it with trace.New(Workers, capacity)",
			opts.Trace.Workers(), opts.Workers))
	}
	if opts.Chaos != nil && opts.Chaos.Workers() < opts.Workers {
		panic(fmt.Sprintf("core: Options.Chaos has %d agents for %d workers; create it with chaos.NewInjector(Workers, profile, seed)",
			opts.Chaos.Workers(), opts.Workers))
	}
	t0 := time.Now()
	p := &Pool{opts: opts}
	if opts.Parking == ParkOn && opts.Workers > 1 {
		p.idle = newIdleEngine(opts.Workers, parkAfterFactor*opts.MaxIdleSleep)
	}
	p.workers = make([]*Worker, opts.Workers)
	for i := range p.workers {
		w := &Worker{
			pool:  p,
			idx:   i,
			idle:  p.idle,
			tasks: make([]Task, opts.StackSize),
			pol:   steal.New(opts.Steal, i, opts.Workers),
		}
		w.probe = func(v int) bool { return stealableAt(p.workers[v]) }
		w.prof.on = opts.Profile
		w.genFast = opts.Trace == nil && !opts.Span
		if opts.Trace != nil {
			w.trc = opts.Trace.Ring(i)
		}
		if opts.Chaos != nil {
			w.chs = opts.Chaos.Agent(i)
		}
		if opts.PrivateTasks {
			w.pubShadow = int64(opts.InitialPublic)
		} else {
			w.pubShadow = math.MaxInt64
		}
		w.publicLimit.Store(w.pubShadow)
		p.workers[i] = w
	}
	if opts.Span {
		if opts.Workers != 1 {
			panic("core: Options.Span requires Workers == 1 (span is schedule-independent; measure it serially)")
		}
		p.workers[0].spanProf = NewSpanProfiler()
	}
	p.wg.Add(opts.Workers - 1)
	for _, w := range p.workers[1:] {
		go func(w *Worker) {
			if p.opts.LockOSThread {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			w.idleLoop()
		}(w)
	}
	if opts.Watchdog > 0 {
		p.wdStop = make(chan struct{})
		p.wdDone = make(chan struct{})
		go p.watchdogLoop(opts.Watchdog)
	}
	p.startup = time.Since(t0)
	return p
}

// Workers returns the number of workers in the pool.
func (p *Pool) Workers() int { return len(p.workers) }

// Run executes root on worker 0 (the calling goroutine) while the other
// workers steal, and returns root's result once it — and therefore
// every task it transitively joined — has completed. Run calls must not
// overlap; between calls the pool stays warm (idle workers keep their
// steal loops), which is exactly the repeated-kernel structure of the
// paper's benchmarks.
//
// Abort semantics: a panic anywhere in the task tree — in a stolen
// task (recovered by the thief's runStolen so the descriptor still
// reaches DONE) or in root itself — poisons the pool and re-raises
// from Run with the original panic value. A poisoned pool's task
// stacks may hold unjoined descriptors whose subtrees never ran, so it
// cannot be reused: later Run calls panic with a distinct
// "pool poisoned by earlier task panic" message, the idle workers exit
// their steal loops (they must not execute leftover descriptors of the
// abandoned tree), and only Close remains safe. See DESIGN.md §11.
//
//woolvet:allow ownerprivate -- the calling goroutine IS worker 0's owner for the duration of Run
func (p *Pool) Run(root func(*Worker) int64) int64 {
	if p.shutdown.Load() {
		panic("core: Run on closed Pool")
	}
	if p.panicked.Load() {
		panic(fmt.Sprintf("core: pool poisoned by earlier task panic: %v", p.panicVal))
	}
	if !p.running.CompareAndSwap(false, true) {
		panic(poolerr.ConcurrentRun("core"))
	}
	defer p.running.Store(false)
	// A panic escaping root (or the unjoined-tasks check below) leaves
	// worker 0's stack with stealable descriptors of an abandoned tree:
	// record it so the pool is poisoned before the panic propagates.
	defer func() {
		if r := recover(); r != nil {
			p.recordPanic(r)
			panic(r)
		}
	}()
	w := p.workers[0]
	var res int64
	if w.prof.on {
		// Worker 0's application time is the root's wall time minus
		// the leapfrogging and stealing time it accrued inside joins.
		lf0, la0, st0 := w.prof.lf.Load(), w.prof.la.Load(), w.prof.st.Load()
		t0 := time.Now()
		res = root(w)
		wall := int64(time.Since(t0))
		w.prof.na.Add(wall - ((w.prof.lf.Load() - lf0) + (w.prof.la.Load() - la0) + (w.prof.st.Load() - st0)))
	} else {
		res = root(w)
	}
	if w.top != int(w.bot.Load()) || len(w.ovf) != 0 {
		panic(fmt.Sprintf("core: root returned with %d unjoined tasks on worker 0 (%d overflow-inlined)", w.Depth(), len(w.ovf)))
	}
	if p.panicked.Load() {
		panic(p.panicVal)
	}
	return res
}

// recordPanic stores the first panic raised by a task, poisoning the
// pool; Run re-raises it (and refuses subsequent calls, see Run).
func (p *Pool) recordPanic(r any) {
	p.poisonMu.Lock()
	if !p.panicked.Load() {
		p.panicVal = r
		p.panicked.Store(true)
	}
	p.poisonMu.Unlock()
}

// Close stops the idle workers and waits for them to exit. The pool
// must be quiescent (no Run in flight). Closing a poisoned pool works:
// workers waiting out the poison on the gate (poisonPark) and workers
// parked on the idle engine are both released after the shutdown flag
// is set, so they observe it and exit.
func (p *Pool) Close() {
	if p.shutdown.Swap(true) {
		return
	}
	if p.wdStop != nil {
		close(p.wdStop)
		<-p.wdDone
	}
	// Release poison-parked workers. Ordering: shutdown is already set,
	// so a worker that reaches poisonPark after this drain sees it under
	// poisonMu and returns without waiting (no lost wake-up).
	p.poisonMu.Lock()
	if p.poisonGate != nil {
		close(p.poisonGate)
		p.poisonGate = nil
	}
	p.poisonMu.Unlock()
	if p.idle != nil {
		p.idle.wakeAll()
	}
	p.wg.Wait()
}

// ParkedWorkers returns the number of workers currently parked on the
// pool's idle engine (0 when parking is disabled). Racy by nature; use
// it for monitoring and tests, not scheduling decisions.
func (p *Pool) ParkedWorkers() int {
	if p.idle == nil {
		return 0
	}
	return int(p.idle.parked.Load())
}

// Stats aggregates per-worker counters. Call it on a quiescent pool
// (between Run calls or after Close) for exact numbers.
func (p *Pool) Stats() Stats {
	var s Stats
	for i := range p.workers {
		ws := p.WorkerStats(i)
		s.add(&ws)
	}
	return s
}

// WorkerStats returns the counters of a single worker.
//
//woolvet:allow ownerprivate -- quiescent-pool accessor: callers read stats between Run calls (see Stats)
func (p *Pool) WorkerStats(i int) Stats {
	w := p.workers[i]
	s := w.stats
	s.StealAttempts = w.stealAttempts.Load()
	s.Steals = w.steals.Load()
	s.Backoffs = w.backoffs.Load()
	s.RetainedSteals = w.retainedSteals.Load()
	s.Parks = w.parks.Load()
	s.Wakes = w.wakes.Load()
	return s
}

// StatsSnapshot returns per-worker counters without requiring the pool
// to be quiescent, deliberately lifting the Stats/WorkerStats contract
// for live monitoring (woolrun's trace/matrix plumbing, dashboards).
// The thief-path counters are atomic loads and always coherent; the
// owner-path counters (spawns, joins, publications, ...) are plain
// fields read while their owner may be writing, so a live snapshot can
// observe slightly stale or torn values on 32-bit platforms. Use it
// for observability, never for correctness decisions; Stats() between
// Run calls remains the exact accessor. See DESIGN.md §11.
//
//woolvet:allow ownerprivate -- documented-racy live monitoring accessor; exactness is WorkerStats's contract, not ours
func (p *Pool) StatsSnapshot() []Stats {
	out := make([]Stats, len(p.workers))
	for i, w := range p.workers {
		s := w.stats
		s.StealAttempts = w.stealAttempts.Load()
		s.Steals = w.steals.Load()
		s.Backoffs = w.backoffs.Load()
		s.RetainedSteals = w.retainedSteals.Load()
		s.Parks = w.parks.Load()
		s.Wakes = w.wakes.Load()
		out[i] = s
	}
	return out
}

// ResetStats zeroes all counters (quiescent pools only).
//
//woolvet:allow ownerprivate -- quiescent-pool mutator by contract
func (p *Pool) ResetStats() {
	for _, w := range p.workers {
		w.stats = Stats{}
		w.stealAttempts.Store(0)
		w.steals.Store(0)
		w.backoffs.Store(0)
		w.retainedSteals.Store(0)
		w.parks.Store(0)
		w.wakes.Store(0)
		w.prof.reset()
	}
}

// Profile returns the aggregated CPU-time breakdown (Figure 6
// categories). TR is the pool's startup cost; per-Run shutdown is
// negligible because the pool stays warm.
//
//woolvet:allow ownerprivate -- quiescent-pool accessor; prof's inner counters are atomics besides
func (p *Pool) Profile() TimeBreakdown {
	var b TimeBreakdown
	b.TR = p.startup
	for _, w := range p.workers {
		b.ST += time.Duration(w.prof.st.Load())
		b.LF += time.Duration(w.prof.lf.Load())
		b.NA += time.Duration(w.prof.na.Load())
		b.LA += time.Duration(w.prof.la.Load())
	}
	return b
}

// SpanProfiler returns the span measurement facility of worker 0, or
// nil when Options.Span is off.
//
//woolvet:allow ownerprivate -- Span requires Workers == 1; the field is set once in NewPool and immutable after
func (p *Pool) SpanProfiler() *SpanProfiler { return p.workers[0].spanProf }

// Stats are the scheduler's event counters, the raw material for the
// paper's N_T (tasks spawned) and N_M (migrations = steals) and thus
// for the granularity measures G_T and G_L.
type Stats struct {
	Spawns              int64 // tasks created (N_T)
	JoinsInlinedPublic  int64 // joins that inlined a public task (atomic exchange paid)
	JoinsInlinedPrivate int64 // joins that inlined a private task (no atomics)
	JoinsStolen         int64 // joins that found their task stolen
	Steals              int64 // successful steals (N_M)
	StealAttempts       int64 // steal attempts, successful or not
	Backoffs            int64 // steals aborted by the bot re-check (ABA guard)
	LeapSteals          int64 // successful steals made while leapfrogging
	Publications        int64 // trip-wire publications
	Privatizations      int64 // public-boundary pull-downs
	RetainedSteals      int64 // successful steals from the retained victim (StealRetain hits)
	Parks               int64 // times a worker parked on the idle engine
	Wakes               int64 // targeted wakes this worker issued to parked peers
	OverflowInlined     int64 // spawns degraded to inline execution on task-stack overflow
}

func (s *Stats) add(o *Stats) {
	s.Spawns += o.Spawns
	s.JoinsInlinedPublic += o.JoinsInlinedPublic
	s.JoinsInlinedPrivate += o.JoinsInlinedPrivate
	s.JoinsStolen += o.JoinsStolen
	s.Steals += o.Steals
	s.StealAttempts += o.StealAttempts
	s.Backoffs += o.Backoffs
	s.LeapSteals += o.LeapSteals
	s.Publications += o.Publications
	s.Privatizations += o.Privatizations
	s.RetainedSteals += o.RetainedSteals
	s.Parks += o.Parks
	s.Wakes += o.Wakes
	s.OverflowInlined += o.OverflowInlined
}

// Joins returns the total number of joins.
func (s Stats) Joins() int64 {
	return s.JoinsInlinedPublic + s.JoinsInlinedPrivate + s.JoinsStolen
}

// TimeBreakdown is the Figure 6 instrumentation: CPU time spent in
// startup/shutdown (TR), application code acquired through leapfrogging
// (LA), other application code (NA), stealing (ST) and leapfrogging
// search (LF).
type TimeBreakdown struct {
	TR, LA, NA, ST, LF time.Duration
}

// Total returns the sum of all categories.
func (b TimeBreakdown) Total() time.Duration { return b.TR + b.LA + b.NA + b.ST + b.LF }

// profState accumulates the Figure 6 time categories in nanoseconds.
// Atomics because idle workers keep charging ST with no happens-before
// edge to a Profile() reader. ST is a sampled estimate: idleLoop times
// only every stSamplePeriod-th failed attempt and scales it up, so
// enabling Profile no longer doubles the idle-loop cost. tick is the
// sampling phase, owner-private to the idle loop (not reset by
// ResetStats, which may run while idle loops are live).
type profState struct {
	on             bool
	tick           uint64
	st, lf, na, la atomic.Int64
}

func (ps *profState) reset() {
	ps.st.Store(0)
	ps.lf.Store(0)
	ps.na.Store(0)
	ps.la.Store(0)
}
