package stress

import "gowool/internal/sim"

// The stress kernel as a continuation state machine for the
// steal-parent simulator, plus the paper's Section I-a spawn-loop
// (whose steal-parent task pool stays constant-size).

// CilkSimFrame is the cactus-stack frame of one tree node.
type CilkSimFrame struct {
	sim.CFrame
	height, iters int64
	a, b          int64
	res           *int64
}

// Step0 is the entry step.
func (f *CilkSimFrame) Step0(w *sim.CW) sim.CStep {
	if f.height == 0 {
		w.Work(uint64(f.iters) * CyclesPerIter)
		*f.res = 1
		return w.Return(&f.CFrame)
	}
	child := &CilkSimFrame{height: f.height - 1, iters: f.iters, res: &f.a}
	sim.NewCChild(&f.CFrame, &child.CFrame)
	return w.Spawn(&f.CFrame, f.step1, child.Step0)
}

func (f *CilkSimFrame) step1(w *sim.CW) sim.CStep {
	child := &CilkSimFrame{height: f.height - 1, iters: f.iters, res: &f.b}
	sim.NewCChild(&f.CFrame, &child.CFrame)
	return w.Spawn(&f.CFrame, f.step2, child.Step0)
}

func (f *CilkSimFrame) step2(w *sim.CW) sim.CStep {
	return w.Sync(&f.CFrame, f.step3)
}

func (f *CilkSimFrame) step3(w *sim.CW) sim.CStep {
	*f.res = f.a + f.b
	return w.Return(&f.CFrame)
}

// repsFrame serializes reps trees — the repeated-region driver.
type repsFrame struct {
	sim.CFrame
	height, iters, reps int64
	r                   int64
	sub                 int64
	total               *int64
}

func (f *repsFrame) loop(w *sim.CW) sim.CStep {
	if f.r >= f.reps {
		return w.Return(&f.CFrame)
	}
	f.r++
	child := &CilkSimFrame{height: f.height, iters: f.iters, res: &f.sub}
	sim.NewCChild(&f.CFrame, &child.CFrame)
	return w.Spawn(&f.CFrame, f.afterTree, child.Step0)
}

func (f *repsFrame) afterTree(w *sim.CW) sim.CStep {
	return w.Sync(&f.CFrame, f.accumulate)
}

func (f *repsFrame) accumulate(w *sim.CW) sim.CStep {
	*f.total += f.sub
	return f.loop(w)
}

// RunCilkSimReps runs reps serialized trees under steal-parent
// simulation, returning the leaf count and the run's result.
func RunCilkSimReps(cfg sim.Config, height, iters, reps int64) (int64, sim.CResult) {
	var total int64
	res := sim.RunCilkSim(cfg, func(w *sim.CW) sim.CStep {
		root := &repsFrame{height: height, iters: iters, reps: reps, total: &total}
		return root.loop
	})
	return total, res
}

// spawnLoopFrame is the paper's Section I-a example:
//
//	for (; p != NULL; p = p->next) spawn foo(p);
//	sync;
//
// under steal-parent the pool holds at most one continuation.
type spawnLoopFrame struct {
	sim.CFrame
	i, n  int64
	iters int64
	sink  int64
	hits  *int64
}

type spawnLoopLeaf struct {
	sim.CFrame
	iters int64
	hits  *int64
}

func (l *spawnLoopLeaf) step0(w *sim.CW) sim.CStep {
	w.Work(uint64(l.iters) * CyclesPerIter)
	*l.hits++
	return w.Return(&l.CFrame)
}

func (f *spawnLoopFrame) loop(w *sim.CW) sim.CStep {
	if f.i >= f.n {
		return w.Sync(&f.CFrame, f.after)
	}
	f.i++
	child := &spawnLoopLeaf{iters: f.iters, hits: f.hits}
	sim.NewCChild(&f.CFrame, &child.CFrame)
	return w.Spawn(&f.CFrame, f.loop, child.step0)
}

func (f *spawnLoopFrame) after(w *sim.CW) sim.CStep {
	return w.Return(&f.CFrame)
}

// RunCilkSimSpawnLoop runs the spawn-loop example: n leaf spawns from
// one loop, then a sync. Returns leaves run and the run's result
// (whose MaxDeque exhibits the constant-space property on one
// processor).
func RunCilkSimSpawnLoop(cfg sim.Config, n, iters int64) (int64, sim.CResult) {
	var hits int64
	res := sim.RunCilkSim(cfg, func(w *sim.CW) sim.CStep {
		root := &spawnLoopFrame{n: n, iters: iters, hits: &hits}
		return root.loop
	})
	return hits, res
}
