package steal

// RNG is the xorshift64 victim generator every backend used to carry a
// private copy of (Marsaglia, "Xorshift RNGs"). One step per victim
// pick, no allocation, and a deterministic stream per seed — which is
// why chaos replays and the whitebox probe-order tests can pin exact
// victim sequences.
type RNG struct {
	// woolvet:owner
	x uint64
}

// NewRNG returns an RNG seeded with seed. xorshift has a single fixed
// point at zero, so a zero seed is replaced with a nonzero constant;
// the legacy per-worker seed schedules never produce zero.
func NewRNG(seed uint64) RNG {
	if seed == 0 {
		seed = 0x2545f4914f6cdd1d
	}
	return RNG{x: seed}
}

// Next advances the stream one step and returns the new state — the
// exact update order of the pre-refactor nextVictim copies.
//
// woolvet:inline
// woolvet:noescape
func (r *RNG) Next() uint64 {
	x := r.x
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.x = x
	return x
}
