package ssf

import (
	"gowool/internal/chaselev"
	"gowool/internal/locksched"
)

// Ports of the position-range scan to the other native schedulers.

// NewChaseLev builds the position-range task on the deque scheduler.
func NewChaseLev() *chaselev.TaskDefC2[Work] {
	var span *chaselev.TaskDefC2[Work]
	span = chaselev.DefineC2("ssf-range", func(w *chaselev.Worker, wk *Work, lo, hi int64) int64 {
		if hi-lo == 1 {
			best, _ := Position(wk.S, lo)
			if wk.Out != nil {
				wk.Out[lo] = best
			}
			return best
		}
		mid := (lo + hi) / 2
		span.Spawn(w, wk, mid, hi)
		a := span.Call(w, wk, lo, mid)
		b := span.Join(w)
		return a + b
	})
	return span
}

// RunChaseLev scans on the deque pool, returning the checksum.
func RunChaseLev(p *chaselev.Pool, d *chaselev.TaskDefC2[Work], wk *Work) int64 {
	return p.Run(func(w *chaselev.Worker) int64 { return d.Call(w, wk, 0, int64(len(wk.S))) })
}

// NewLockSched builds the position-range task on the lock ladder.
func NewLockSched() *locksched.TaskDefC2[Work] {
	var span *locksched.TaskDefC2[Work]
	span = locksched.DefineC2("ssf-range", func(w *locksched.Worker, wk *Work, lo, hi int64) int64 {
		if hi-lo == 1 {
			best, _ := Position(wk.S, lo)
			if wk.Out != nil {
				wk.Out[lo] = best
			}
			return best
		}
		mid := (lo + hi) / 2
		span.Spawn(w, wk, mid, hi)
		a := span.Call(w, wk, lo, mid)
		b := span.Join(w)
		return a + b
	})
	return span
}

// RunLockSched scans on the lock-ladder pool, returning the checksum.
func RunLockSched(p *locksched.Pool, d *locksched.TaskDefC2[Work], wk *Work) int64 {
	return p.Run(func(w *locksched.Worker) int64 { return d.Call(w, wk, 0, int64(len(wk.S))) })
}
