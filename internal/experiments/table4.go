package experiments

import (
	"fmt"
	"io"

	"gowool/internal/stealmodel"
	"gowool/internal/tabulate"
)

func init() {
	register(Experiment{
		ID:    "table4",
		Paper: "Table IV",
		Title: "Simple steal-cost model: computed and measured speedups for mm(64)",
		Run:   runTable4,
	})
}

// runTable4 reproduces Table IV: the paper's analytical model
// T_p = C_p + (W + 2·(S_p−(p−1))·C_2)/p, instantiated for mm with
// 64×64 matrices, against the measured (simulated) speedups. The
// steal counts S_p come from Wool runs and are reused for all systems,
// as the paper does ("load balancing granularity carries over between
// similar systems").
func runTable4(sc Scale, w io.Writer) error {
	reps := int64(64)
	if sc == Full {
		reps = 512
	}
	wl := mmWL(64, reps)

	root, args := wl.Root()
	span := serialWork(root, args)
	work := float64(span.Work) / float64(reps) // W per repetition

	wool := Systems()[0]
	stealsAt := map[int]float64{}
	measured := map[string]map[int]float64{}
	for _, p := range []int{2, 4, 8} {
		root, args := wl.Root()
		res := wool.run(p, root, args)
		stealsAt[p] = float64(res.Total.Steals) / float64(reps)
	}

	// Measured speedups per system (absolute, against pure work).
	for _, sys := range Systems()[:3] { // paper Table IV has Wool, Cilk++, TBB
		measured[sys.Name] = map[int]float64{}
		for _, p := range []int{2, 4, 8} {
			root, args := wl.Root()
			res := sys.run(p, root, args)
			measured[sys.Name][p] = float64(span.Work) / float64(res.Makespan)
		}
	}

	t := tabulate.New(
		"Table IV — steal-cost model vs measured speedup, mm(64): model (measured)",
		"system", "2", "4", "8",
	)
	for _, sys := range Systems()[:3] {
		c2 := stealOverhead(sys, 1)
		row := []any{sys.Name}
		for _, p := range []int{2, 4, 8} {
			k := 0
			for 1<<k < p {
				k++
			}
			cp := stealOverhead(sys, k)
			est := stealmodel.Predict(work, stealsAt[p], c2, cp, p)
			row = append(row, fmt.Sprintf("%.1f (%.1f)", est.SpeedupP, measured[sys.Name][p]))
		}
		t.Row(row...)
	}
	t.Note("paper: Wool 2.0(2.2)/3.9(4.3)/7.1(6.8), Cilk++ 1.9(1.4)/2.8(2.5)/3.2(3.1), TBB 2.0(1.9)/3.7(3.4)/5.9(5.2)")
	t.Note("W = %.0f cycles/rep, steals/rep @2/4/8 = %.1f/%.1f/%.1f (from Wool, reused for all systems)",
		work, stealsAt[2], stealsAt[4], stealsAt[8])
	t.Render(w)
	return nil
}
