package analysis

import (
	"go/ast"
	"go/types"
)

// cacheLine is the separation layoutguard enforces between groups. A
// gap of at least 64 bytes guarantees two fields cannot share a
// 64-byte cache line regardless of the allocation's base alignment
// (Go only guarantees word alignment for heap objects), which is
// strictly stronger than the runtime offset test it replaces.
const cacheLine = 64

// LayoutGuard enforces "// woolvet:cacheline": the false-sharing
// contract of the Worker layout (DESIGN.md §8) checked over
// types.Sizes at analysis time instead of unsafe.Offsetof at test
// time. A field directive "cacheline group=<name>" opens a group; the
// group runs until the next group directive or the end of the struct.
// Consecutive groups must be separated by >= 64 bytes of padding
// (blank "_ [64]byte" fields), so the owner's push/pop traffic, the
// thieves' probe traffic and the thief-side counter flushes never
// share a line. "maxspan=N" additionally bounds the distance from the
// group's first to last field, and a struct-level "cacheline size=N"
// pins the total size (Task's two-cache-line descriptor).
//
// Sizes are those of the gc compiler for the host architecture; the
// contract is over the 64-bit layout the schedulers target.
var LayoutGuard = &Analyzer{
	Name: "layoutguard",
	Doc:  "woolvet:cacheline groups stay padded apart and structs keep their declared size",
	Run:  runLayoutGuard,
}

func runLayoutGuard(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				checkStructLayout(pass, ts)
			}
		}
	}
}

type lineGroup struct {
	name    string
	maxspan int64
	pos     ast.Node // the group's first field, for reporting
	first   int      // flattened field index of the first field
	last    int      // flattened index of the last non-pad field
}

func checkStructLayout(pass *Pass, ts *ast.TypeSpec) {
	obj, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
	if obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	// Generic structs have no concrete layout until instantiated;
	// sizes are undefined over type parameters.
	if named, ok := obj.Type().(*types.Named); ok && named.TypeParams().Len() > 0 {
		return
	}
	if want, declared := pass.Ann.StructSize[obj]; declared {
		if got := pass.Sizes.Sizeof(st); got != want {
			pass.Report(ts.Name.Pos(),
				"struct %s is %d bytes but is declared woolvet:cacheline size=%d; adjust the trailing padding",
				ts.Name.Name, got, want)
		}
	}

	astStruct, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}

	// Flatten the AST field list to the indices of the types.Struct
	// and collect the groups in declaration order.
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	offsets := pass.Sizes.Offsetsof(fields)

	var groups []lineGroup
	idx := 0
	for _, field := range astStruct.Fields.List {
		names := len(field.Names)
		if names == 0 {
			names = 1 // embedded field
		}
		for n := 0; n < names; n++ {
			fv := fields[idx]
			isPad := fv.Name() == "_"
			if n == 0 {
				if d, ok := fieldDirectiveAt(pass, field, "cacheline"); ok {
					if name, isGroup := d.Attrs["group"]; isGroup {
						groups = append(groups, lineGroup{
							name:    name,
							maxspan: parseIntAttr(d.Attrs, "maxspan"),
							pos:     field,
							first:   idx,
							last:    -1,
						})
					}
				}
			}
			if len(groups) > 0 && !isPad {
				groups[len(groups)-1].last = idx
			}
			idx++
		}
	}

	for i, g := range groups {
		if g.last < 0 {
			pass.Report(g.pos.Pos(),
				"cache-line group %q in %s contains no fields", g.name, ts.Name.Name)
			continue
		}
		end := offsets[g.last] + pass.Sizes.Sizeof(fields[g.last].Type())
		if g.maxspan > 0 {
			if span := end - offsets[g.first]; span > g.maxspan {
				pass.Report(g.pos.Pos(),
					"cache-line group %q in %s spans %d bytes, more than its declared maxspan=%d",
					g.name, ts.Name.Name, span, g.maxspan)
			}
		}
		if i+1 < len(groups) {
			next := groups[i+1]
			if gap := offsets[next.first] - end; gap < cacheLine {
				pass.Report(next.pos.Pos(),
					"cache-line group %q starts %d bytes after the last field of group %q; groups need >= %d bytes of padding between them to never share a line",
					next.name, gap, g.name, cacheLine)
			}
		}
	}
}

// fieldDirectiveAt finds a directive of the given verb on an AST
// field, via the annotation index of its first named object or, for
// blank/embedded fields, by scanning its comments directly.
func fieldDirectiveAt(pass *Pass, field *ast.Field, verb string) (Directive, bool) {
	for _, name := range field.Names {
		if obj, ok := pass.Info.Defs[name].(*types.Var); ok {
			if d, ok := pass.Ann.FieldDirective(obj, verb); ok {
				return d, true
			}
		}
	}
	for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if d, ok := parseDirective(c); ok && d.Verb == verb {
				return d, true
			}
		}
	}
	return Directive{}, false
}

func parseIntAttr(attrs map[string]string, key string) int64 {
	v, ok := attrs[key]
	if !ok {
		return -1
	}
	return parseInt(v)
}
