package experiments

import (
	"io"
	"runtime"
	"strconv"

	"gowool/internal/core"
	"gowool/internal/costmodel"
	"gowool/internal/gonative"
	"gowool/internal/tabulate"
	"gowool/internal/workloads/fibw"
)

func init() {
	register(Experiment{
		ID:    "xgonative",
		Paper: "extension",
		Title: "The direct task stack vs idiomatic Go concurrency (native measurement)",
		Run:   runXGoNative,
	})
}

// runXGoNative measures, natively, what the paper measured against
// Cilk++/TBB/OpenMP — but against what a Go programmer would write
// instead: goroutine-per-fork (with and without a concurrency bound).
// The per-task overhead gap is the reproduction's practical
// punchline: fine-grained fork-join needs a task pool, in Go as in C.
func runXGoNative(sc Scale, w io.Writer) error {
	n := int64(22)
	reps := 3
	if sc == Full {
		n, reps = 27, 5
	}
	tasks := fibw.Tasks(n)
	serial := measureMin(reps, func() { fibw.Serial(n) })

	t := tabulate.New(
		"Extension — fib forks: direct task stack vs goroutines (native)",
		"implementation", "time[ms]", "overhead[ns/task]", "vs serial",
	)
	row := func(name string, run func() int64) {
		d := measureMin(reps, func() { run() })
		t.Row(name, float64(d.Microseconds())/1000,
			perTaskNS(d, serial, tasks), float64(d)/float64(serial))
	}

	pPriv := core.NewPool(core.Options{Workers: 1, PrivateTasks: true})
	fib := fibw.NewWool()
	row("gowool (private tasks)", func() int64 {
		return pPriv.Run(func(w *core.Worker) int64 { return fib.Call(w, n) })
	})
	pPriv.Close()

	var goFib func(x int64) int64
	goFib = func(x int64) int64 {
		if x < 2 {
			return x
		}
		a, b := gonative.Fork(
			func() int64 { return goFib(x - 2) },
			func() int64 { return goFib(x - 1) },
		)
		return a + b
	}
	// Unbounded goroutines are catastrophic at full size; shrink.
	gn := n - 6
	gTasks := fibw.Tasks(gn)
	gSerial := measureMin(reps, func() { fibw.Serial(gn) })
	d := measureMin(reps, func() { goFib(gn) })
	t.Row("goroutine per fork (fib("+strconv.FormatInt(gn, 10)+"))",
		float64(d.Microseconds())/1000, perTaskNS(d, gSerial, gTasks), float64(d)/float64(gSerial))

	fb := gonative.NewForkBounded(runtime.GOMAXPROCS(0) * 2)
	var bFib func(x int64) int64
	bFib = func(x int64) int64 {
		if x < 2 {
			return x
		}
		a, b := fb.Fork(
			func() int64 { return bFib(x - 2) },
			func() int64 { return bFib(x - 1) },
		)
		return a + b
	}
	row("bounded fork (manual throttle)", func() int64 { return bFib(n) })

	t.Row("serial", float64(serial.Microseconds())/1000, 0.0, 1.0)
	t.Note("fib(%d), %d tasks, min of %d runs; 1 worker (this host has 1 core)", n, tasks, reps)
	t.Note("ns/task × %.1f = cycle equivalents at 2.5GHz", costmodel.CyclesPerNS)
	t.Render(w)
	return nil
}
