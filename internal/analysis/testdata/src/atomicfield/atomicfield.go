// Package atomicfield is the analysistest fixture for the atomicfield
// pass: woolvet:atomic fields must be sync/atomic types used only as
// method-call receivers, and a methods= restriction pins the claim
// discipline.
package atomicfield

import "sync/atomic"

type worker struct {
	// woolvet:atomic methods=Load,Swap,CompareAndSwap
	state atomic.Uint64

	// woolvet:atomic
	bot atomic.Int64

	// woolvet:atomic
	naked int64 // want `field naked is tagged woolvet:atomic but declared as int64`

	plain int64
}

func ok(w *worker) uint64 {
	w.bot.Add(1)
	w.state.Swap(2)
	if w.state.CompareAndSwap(2, 0) {
		return 0
	}
	return w.state.Load()
}

func badStore(w *worker) {
	w.state.Store(3) // want `field state may only be claimed via Load,Swap,CompareAndSwap`
}

func badAddr(w *worker) *atomic.Uint64 {
	return &w.state // want `field state is tagged woolvet:atomic and may only be used as the receiver`
}

func badValue(w *worker) {
	_ = w.bot // want `field bot is tagged woolvet:atomic and may only be used as the receiver`
}

func okPlain(w *worker) int64 {
	w.plain++
	return w.plain
}

func allowedStore(w *worker) {
	//woolvet:allow atomicfield -- fixture: a publication-style store with a reviewed reason
	w.state.Store(2)
}
