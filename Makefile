GO ?= go

.PHONY: build test race lint bench ci all

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect every scheduler backend that has a thief/victim protocol
# (direct task stack, Chase-Lev deque, locked deque, cilk-style,
# central queue) plus the simulator driving them.
race:
	$(GO) test -race -count=1 ./internal/core/... ./internal/chaselev/... \
		./internal/locksched/... ./internal/cilkstyle/... \
		./internal/ompstyle/... ./internal/sim/...

# woolvet enforces the direct-task-stack protocol invariants
# (atomic-only fields, owner-private fields, cache-line layout,
# spawn/join balance) over the whole module. See DESIGN.md §10.
lint:
	$(GO) run ./cmd/woolvet ./...

# Machine-readable fast-path/idle-engine numbers for the perf
# trajectory; commit the refreshed BENCH_core.json with perf PRs.
bench:
	$(GO) run ./cmd/woolbench -corejson BENCH_core.json

# What .github/workflows/ci.yml runs: build, vet, woolvet, the tier-1
# suite, and a short race pass over the scheduler protocols and the
# registry conformance suite.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/woolvet ./...
	$(GO) test ./...
	$(GO) test -race -count=1 -short ./internal/core/... ./internal/chaselev/... \
		./internal/locksched/... ./internal/cilkstyle/... \
		./internal/ompstyle/... ./internal/sim/... \
		./internal/sched/... ./internal/workloads/
