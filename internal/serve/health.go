package serve

// Server.Health: the observability surface of the self-healing layer
// (DESIGN.md §17). Stats counts requests; Health reports the state
// machines — breaker positions, lane quarantine, failure streaks — so
// operators (and the tests) can watch the server heal without reaching
// into its internals.

import "gowool/internal/resilience"

// LaneHealth is one lane's self-healing state in a Health snapshot.
type LaneHealth struct {
	// Lane is the global lane index; Tenant is its home team.
	Lane   int
	Tenant string
	// State is "serving" or "quarantined" (out of rotation, replacing
	// and probing its pool).
	State string
	// Poisoned reports a request-scoped poison currently on the lane's
	// pool — normally transient, visible between an abort landing and
	// the lane's Reset.
	Poisoned bool
	// FailureStreak is the lane's current run of consecutive
	// failure-class requests (quarantine trigger, see
	// resilience.QuarantineConfig).
	FailureStreak int
	// Quarantines counts quarantine entries; Replacements counts pool
	// replacements (each quarantine round, plus the inline replacements
	// of non-Abortable backends); Probes/ProbeFailures count quarantine
	// health probes.
	Quarantines   int64
	Replacements  int64
	Probes        int64
	ProbeFailures int64
}

// TenantHealth is one tenant's resilience state in a Health snapshot.
type TenantHealth struct {
	Name string
	// Breaker is the circuit breaker snapshot, nil when breaking is
	// disabled.
	Breaker *resilience.BreakerHealth
	// RetryTokens is the remaining retry budget, -1 when retries are
	// disabled.
	RetryTokens float64
}

// Health is a point-in-time self-healing snapshot.
type Health struct {
	Backend string
	Lanes   []LaneHealth
	Tenants []TenantHealth
}

// Health snapshots the resilience state machines. Safe to call
// concurrently with submissions and while lanes are serving.
func (s *Server) Health() Health {
	h := Health{Backend: s.opts.Backend}
	for _, l := range s.lanes {
		l.mu.Lock()
		ab := l.ab
		l.mu.Unlock()
		poisoned := false
		if ab != nil {
			_, poisoned = ab.Poisoned()
		}
		state := "serving"
		if l.quarantined.Load() {
			state = "quarantined"
		}
		h.Lanes = append(h.Lanes, LaneHealth{
			Lane:          l.idx,
			Tenant:        l.tn.name,
			State:         state,
			Poisoned:      poisoned,
			FailureStreak: int(l.streak.Load()),
			Quarantines:   l.quarantines.Load(),
			Replacements:  l.replacements.Load(),
			Probes:        l.probes.Load(),
			ProbeFailures: l.probeFailures.Load(),
		})
	}
	for _, tn := range s.tenants {
		th := TenantHealth{Name: tn.name, RetryTokens: -1}
		if tn.breaker != nil {
			bh := tn.breaker.Health()
			th.Breaker = &bh
		}
		if tn.retrier != nil {
			th.RetryTokens = tn.retrier.Tokens()
		}
		h.Tenants = append(h.Tenants, th)
	}
	return h
}
