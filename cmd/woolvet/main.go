// Command woolvet runs the woolvet analyzer suite (internal/analysis)
// over the repository: compile-time enforcement of the direct-task-
// stack protocol invariants — atomic access discipline on the shared
// protocol words, owner-privacy of the task-stack indices, the padded
// cache-line layout, and spawn/join balance in workload code. See
// DESIGN.md §10 for the invariants and the annotation vocabulary.
//
// Usage:
//
//	go run ./cmd/woolvet ./...          # lint the whole module (CI)
//	go run ./cmd/woolvet ./internal/core
//	go run ./cmd/woolvet -only atomicfield,layoutguard ./...
//	go run ./cmd/woolvet -list
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gowool/internal/analysis"
)

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	onlyFlag := flag.String("only", "", "comma-separated subset of analyzers to run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: woolvet [-list] [-only a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *onlyFlag != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*onlyFlag, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "woolvet:", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "woolvet:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "woolvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "woolvet:", err)
		os.Exit(2)
	}

	found := false
	for _, pkg := range pkgs {
		for _, d := range analysis.RunAnalyzers(pkg, analyzers) {
			found = true
			fmt.Printf("%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if found {
		os.Exit(1)
	}
}
