module gowool

go 1.24
