package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"gowool/internal/chaos"
	"gowool/internal/sched"
	"gowool/internal/workloads/fibw"
	"gowool/internal/workloads/stress"
)

// tortureWorkers is the server's worker budget for every torture run;
// the host may have a single core, so GOMAXPROCS is raised around the
// suite.
const tortureWorkers = 4

// TestServeChaosTorture extends the chaos-torture matrix to the
// serving path: concurrent submitters drive a mixed fib/stress request
// stream through chaos-perturbed lanes, with a random subset of
// requests given deadlines short enough to cancel mid-flight. Every
// completed request must still produce the serial answer — in
// particular the request AFTER a mid-flight abort, which runs on the
// same Reset pool. Each subtest name and failure message carries the
// backend, profile and seed that replay the run byte-for-byte.
func TestServeChaosTorture(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	profiles := chaos.Profiles()
	if len(profiles) < 3 {
		t.Fatalf("want at least 3 built-in chaos profiles, have %d", len(profiles))
	}
	seeds := []uint64{0x5eed, 0xdead}
	for _, backend := range []string{"wool", "woolgen"} {
		t.Run(backend, func(t *testing.T) {
			cancelled := 0
			for _, prof := range profiles {
				for _, seed := range seeds {
					prof, seed := prof, seed
					t.Run(fmt.Sprintf("%s/seed=%#x", prof.Name, seed), func(t *testing.T) {
						cancelled += runServeTorture(t, backend, prof, seed)
					})
				}
			}
			// The short deadlines must actually have interrupted runs
			// somewhere in the matrix, or the sweep silently stopped
			// covering the abort/Reset path.
			if cancelled == 0 {
				t.Errorf("%s: no request in the whole matrix was cancelled mid-flight", backend)
			}
		})
	}
}

// spinJob is the torture sweep's slow request: a small task tree whose
// leaves busy-spin, so a request takes a few milliseconds and a 1-4ms
// deadline lands mid-flight. Completed value is the leaf count.
func spinJob(depth int64, spin time.Duration) Job {
	return Rec(sched.RecJob{
		Name: "spin",
		Root: depth,
		Leaf: func(n int64) (int64, bool) {
			if n > 0 {
				return 0, false
			}
			end := time.Now().Add(spin)
			for time.Now().Before(end) {
			}
			return 1, true
		},
		Split: func(n int64) (inline, spawned int64) { return n - 1, n - 1 },
	})
}

// runServeTorture is one cell of the matrix: one backend, one chaos
// profile, one seed. It returns the number of requests cancelled
// mid-flight so the caller can check the sweep exercised the
// abort/Reset path at all.
func runServeTorture(t *testing.T, backend string, prof chaos.Profile, seed uint64) int {
	t.Helper()
	const (
		laneWidth    = 2
		submitters   = 4
		perSubmitter = 10
	)
	replay := fmt.Sprintf("replay: backend=%s profile=%s seed=%#x", backend, prof.Name, seed)
	s, err := New(Options{
		Backend:   backend,
		Workers:   tortureWorkers,
		LaneWidth: laneWidth,
		ConfigurePool: func(lane int, o *sched.Options) {
			// Each lane gets its own deterministic injector stream.
			o.Chaos = chaos.NewInjector(laneWidth, prof, seed+uint64(lane)*0x9e3779b9)
		},
	})
	if err != nil {
		t.Fatalf("%s: %v", replay, err)
	}
	defer s.Close()

	wantFib := fibw.Serial(12)
	wantStress := stress.Serial(4, 50)
	const spinDepth, spinLeaves = 4, int64(16)

	type outcome struct {
		completed, cancelled int
		err                  error
	}
	results := make(chan outcome, submitters)
	for g := 0; g < submitters; g++ {
		g := g
		go func() {
			var out outcome
			defer func() { results <- out }()
			rng := chaos.NewRNG(seed ^ (uint64(g+1) * 0x9e3779b97f4a7c15))
			for i := 0; i < perSubmitter; i++ {
				r := rng.Next()
				ctx := context.Background()
				deadlined := r&0xc == 0 // ~1 in 4 requests
				var cancel context.CancelFunc
				var job Job
				var want int64
				switch {
				case deadlined:
					// Slow enough that a short deadline can land
					// mid-flight; fast enough that some complete, so
					// both outcomes stay covered.
					job, want = spinJob(spinDepth, 200*time.Microsecond), spinLeaves
					d := time.Duration(1+(r>>8)%4) * time.Millisecond
					ctx, cancel = context.WithTimeout(ctx, d)
				case r&1 == 0:
					job, want = Rec(fibw.Job(12, 1)), wantFib
				default:
					job, want = Rec(stress.Job(4, 50, 1)), wantStress
				}
				tk, err := s.Submit(ctx, "", job)
				if err != nil {
					if cancel != nil {
						cancel()
					}
					out.err = fmt.Errorf("submitter %d req %d: submit: %v (%s)", g, i, err, replay)
					return
				}
				v, werr := tk.Wait()
				if cancel != nil {
					cancel()
				}
				switch {
				case werr == nil:
					if v != want {
						out.err = fmt.Errorf("submitter %d req %d: got %d, want %d (%s)", g, i, v, want, replay)
						return
					}
					out.completed++
				case errors.Is(werr, context.DeadlineExceeded) || errors.Is(werr, context.Canceled):
					if !deadlined {
						out.err = fmt.Errorf("submitter %d req %d: cancelled without a deadline: %v (%s)", g, i, werr, replay)
						return
					}
					out.cancelled++
				default:
					out.err = fmt.Errorf("submitter %d req %d: %v (%s)", g, i, werr, replay)
					return
				}
			}
		}()
	}
	var completed, cancelled int
	for g := 0; g < submitters; g++ {
		out := <-results
		if out.err != nil {
			t.Fatal(out.err)
		}
		completed += out.completed
		cancelled += out.cancelled
	}
	if completed+cancelled != submitters*perSubmitter {
		t.Fatalf("accounted %d of %d requests (%s)", completed+cancelled, submitters*perSubmitter, replay)
	}
	t.Logf("%s: %d completed, %d cancelled (%s)", backend, completed, cancelled, replay)
	return cancelled
}
