// Package chaos is a seeded, deterministic fault-injection layer for
// the scheduler protocols. The steal protocols are correct because a
// handful of nanosecond-wide windows — the owner's exchange racing the
// thief's CAS, the bot re-check closing the ABA window, the trip-wire
// publish, leapfrog target selection — compose safely; a normal run
// almost never opens them, so "the stress tests pass" is weak evidence.
// An Injector forces those windows open: each scheduler calls into its
// per-worker Agent at named protocol points (Point constants below) and
// the agent, driven by a splitmix64-seeded PRNG, decides whether to
//
//   - delay: busy-spin and/or runtime.Gosched at the point, stretching
//     the protocol window so concurrent parties actually land inside it;
//   - yield: a single Gosched, handing the timeslice to the party on
//     the other side of the window (yield-to-thief / yield-to-owner);
//   - fail: report "lose this attempt" so the caller abandons one
//     optimistic attempt (a thief's CAS "loses", a TryLock "fails") and
//     exercises its retry/back-off path. Fail is only consulted at
//     attempt-shaped sites where one abandoned attempt is always safe;
//     owner-side obligations (the exchange, a publication) ignore it.
//
// Determinism: every decision comes from the agent's private splitmix64
// stream, derived from (seed, worker index). The same seed and profile
// replay the same per-worker decision sequence byte-identically, so a
// failing torture run is reproduced by re-running with the logged seed.
// Wall-clock interleaving still varies across runs — the injection is
// deterministic, the OS scheduler is not — but the injected schedule
// perturbation is.
//
// Like internal/trace, the disabled path is a nil pointer: a worker
// whose chaos agent is nil pays one predictable branch per hook site
// and nothing else (no allocations, no atomics — pinned by
// TestChaosOverheadDisabled in internal/core).
package chaos

import (
	"fmt"
	"runtime"
)

// Point names one protocol location where faults can be injected. The
// mapping from point to the paper's protocol step is tabulated in
// DESIGN.md §12.
type Point uint8

// Injection points.
const (
	// PointOwnerExchange: the owner is about to claim its youngest
	// task with the atomic exchange (core joinAcquire) or the locked
	// index comparison (locksched joinAcquire). Delaying here holds the
	// join open while thieves race the same descriptor.
	PointOwnerExchange Point = iota

	// PointThiefCAS: a thief is about to CAS-claim a task (core state
	// CAS, chaselev top CAS). Delaying widens the read→CAS window (the
	// ABA setup); failing makes this thief's attempt lose.
	PointThiefCAS

	// PointBotBackoff: a core thief won its CAS and is about to re-read
	// the victim's bot (the ABA guard). Delaying stretches the transient
	// EMPTY window the owner's joinSlow has to spin through.
	PointBotBackoff

	// PointTripwirePublish: the owner is answering a trip-wire
	// notification (core/sim publishMore). Delaying starves the public
	// region while thieves keep probing it.
	PointTripwirePublish

	// PointLeapfrogPick: a blocked join is about to attempt a steal
	// from the recorded thief. Failing skips the attempt, simulating a
	// thief whose pool looks perpetually empty.
	PointLeapfrogPick

	// PointParkDecision: an idle worker is deciding whether to park or
	// sleep. Force here flips the decision toward parking immediately
	// (park-flapping), stressing the wake protocol.
	PointParkDecision

	// PointDequePop: the owner of a Chase-Lev deque (or a locked deque)
	// is popping at the bottom. Delaying sits the owner inside the
	// owner-vs-thief last-element race. Never failed: faking a lost pop
	// would strand a task both sides believe the other owns.
	PointDequePop

	// PointLockAcquire: a thief is about to take the victim's lock
	// (locksched, cilkstyle). Failing aborts the attempt like a
	// contended TryLock.
	PointLockAcquire

	// PointQueueTake: a worker is about to take from the central queue
	// (ompstyle). Failing skips the take, as if the queue were empty.
	PointQueueTake

	// PointStealCommit: a core thief passed the ABA guard and is about
	// to commit STOLEN(self) and advance bot. Delaying holds the
	// descriptor in its transient state with the claim already won.
	PointStealCommit

	// NumPoints is the number of injection points.
	NumPoints
)

var pointNames = [NumPoints]string{
	PointOwnerExchange:   "owner-exchange",
	PointThiefCAS:        "thief-cas",
	PointBotBackoff:      "bot-backoff",
	PointTripwirePublish: "tripwire-publish",
	PointLeapfrogPick:    "leapfrog-pick",
	PointParkDecision:    "park-decision",
	PointDequePop:        "deque-pop",
	PointLockAcquire:     "lock-acquire",
	PointQueueTake:       "queue-take",
	PointStealCommit:     "steal-commit",
}

// String returns the stable point name (used in profiles and dumps).
func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return fmt.Sprintf("Point(%d)", int(p))
}

// Profile is one named fault mix. Each per-point rate is a probability
// numerator out of 65536 (0 = never, 65536 would be always; uint16
// caps at 65535 ≈ always).
type Profile struct {
	// Name identifies the profile (CLI -chaos value, test labels).
	Name string
	// Delay is the per-point chance of a busy-spin delay of SpinIters
	// iterations at the point.
	Delay [NumPoints]uint16
	// Yield is the per-point chance of a single runtime.Gosched.
	Yield [NumPoints]uint16
	// Fail is the per-point chance of reporting "lose this attempt".
	// Only consulted at attempt-shaped sites (see the Point docs).
	Fail [NumPoints]uint16
	// Force is the per-point chance of forcing a rare branch (Agent.
	// Force); today only PointParkDecision consults it (park early).
	Force [NumPoints]uint16
	// SpinIters is the busy-spin length of one delay hit. Each 1024
	// iterations the spin yields once so a delayed worker cannot
	// monopolize a core on small machines.
	SpinIters int
}

// delayHeavy stretches every protocol window without failing anything:
// the pure "slow machine" adversary.
func delayHeavy() Profile {
	p := Profile{Name: "delay-heavy", SpinIters: 512}
	for i := Point(0); i < NumPoints; i++ {
		p.Delay[i] = 6000 // ~9% of visits
		p.Yield[i] = 6000
	}
	return p
}

// casStarve makes thieves lose most optimistic attempts, driving the
// retry, back-off and trip-wire paths far harder than a real machine.
func casStarve() Profile {
	p := Profile{Name: "cas-starve", SpinIters: 256}
	p.Fail[PointThiefCAS] = 45000 // ~69% of thief CAS attempts lose
	p.Fail[PointLeapfrogPick] = 45000
	p.Fail[PointLockAcquire] = 45000
	p.Fail[PointQueueTake] = 30000
	p.Delay[PointThiefCAS] = 8000
	p.Delay[PointBotBackoff] = 12000 // long transient-EMPTY windows
	p.Delay[PointStealCommit] = 8000
	p.Yield[PointOwnerExchange] = 10000
	return p
}

// parkFlap forces idle workers to park far too eagerly while delaying
// publications, so nearly every unit of work must win a wake race.
func parkFlap() Profile {
	p := Profile{Name: "park-flap", SpinIters: 128}
	p.Force[PointParkDecision] = 20000 // ~31% of idle iterations park now
	p.Delay[PointTripwirePublish] = 16000
	p.Yield[PointThiefCAS] = 8000
	p.Fail[PointThiefCAS] = 8000
	return p
}

// Profiles returns the built-in profiles (the torture suite runs all
// of them; cmd/woolrun -chaos selects one by name).
func Profiles() []Profile {
	return []Profile{delayHeavy(), casStarve(), parkFlap()}
}

// ProfileByName finds a built-in profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Mix combines two values into a well-distributed third (splitmix64's
// finalizer over x + y·golden). Exported so tests and fuzz targets can
// derive deterministic per-node randomness from a replayable seed with
// the same mixing the injector uses.
func Mix(x, y uint64) uint64 {
	z := x + (y+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a splitmix64 stream: tiny state, full 2^64 period, and every
// draw is a finalized mix, so even consecutive seeds give uncorrelated
// streams (the property that makes per-worker substreams safe).
type RNG struct{ s uint64 }

// NewRNG seeds a stream.
func NewRNG(seed uint64) RNG { return RNG{s: seed} }

// Next returns the next 64 draw bits.
func (r *RNG) Next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Injector owns one Agent per worker, mirroring trace.Tracer's
// one-ring-per-worker shape: the scheduler caches Agent(i) in worker
// i's descriptor and only that worker's goroutine consults it.
type Injector struct {
	profile Profile
	seed    uint64
	agents  []*Agent
}

// NewInjector creates an injector with one agent per worker. Each
// agent's stream is derived from (seed, worker index) so the per-worker
// decision sequences are independent and individually replayable.
func NewInjector(workers int, profile Profile, seed uint64) *Injector {
	if workers <= 0 {
		workers = 1
	}
	in := &Injector{profile: profile, seed: seed, agents: make([]*Agent, workers)}
	for i := range in.agents {
		in.agents[i] = &Agent{
			inj: in,
			rng: NewRNG(Mix(seed, uint64(i))),
		}
	}
	return in
}

// Workers returns the number of per-worker agents.
func (in *Injector) Workers() int { return len(in.agents) }

// Agent returns worker i's agent. The scheduler caches this pointer in
// the worker struct, exactly like trace.Tracer.Ring.
func (in *Injector) Agent(i int) *Agent { return in.agents[i] }

// Seed returns the replay seed (logged by the torture suite and
// cmd/woolrun so failures reproduce).
func (in *Injector) Seed() uint64 { return in.seed }

// Profile returns the fault mix in effect.
func (in *Injector) Profile() Profile { return in.profile }

// Counts sums the per-point visit counters across all agents. Exact on
// a quiescent injector (no Run in flight), like Stats accessors.
func (in *Injector) Counts() [NumPoints]uint64 {
	var out [NumPoints]uint64
	for _, a := range in.agents {
		for p, c := range a.visits {
			out[p] += c
		}
	}
	return out
}

// Injected sums the per-point injection counters (visits where at
// least one fault — delay, yield, fail or force — actually fired).
func (in *Injector) Injected() [NumPoints]uint64 {
	var out [NumPoints]uint64
	for _, a := range in.agents {
		for p, c := range a.injected {
			out[p] += c
		}
	}
	return out
}

// Agent is one worker's fault stream. Single-writer: only the
// goroutine driving the owning worker may call Point/Force, so the
// state needs no synchronization (the trace.Ring discipline).
type Agent struct {
	inj      *Injector
	rng      RNG
	visits   [NumPoints]uint64
	injected [NumPoints]uint64
	// sink defeats dead-code elimination of the busy-spin loop;
	// per-agent so the delay write stays single-writer.
	sink uint64
}

// Point records a visit to p, applies any delay/yield the profile
// draws, and reports whether the caller should fail this attempt.
// Callers at non-attempt sites ignore the return value.
func (a *Agent) Point(p Point) bool {
	a.visits[p]++
	r := a.rng.Next()
	pr := &a.inj.profile
	hit := false
	if uint16(r) < pr.Delay[p] {
		hit = true
		acc := r
		for i := 0; i < pr.SpinIters; i++ {
			acc = acc*2862933555777941757 + 3037000493
			if i&1023 == 1023 {
				runtime.Gosched()
			}
		}
		a.sink += acc
	}
	r >>= 16
	if uint16(r) < pr.Yield[p] {
		hit = true
		runtime.Gosched()
	}
	r >>= 16
	fail := uint16(r) < pr.Fail[p]
	if fail || hit {
		a.injected[p]++
	}
	return fail
}

// Force records a visit to p and reports whether the caller should
// force its rare branch (today: park immediately at PointParkDecision).
func (a *Agent) Force(p Point) bool {
	a.visits[p]++
	r := a.rng.Next()
	force := uint16(r) < a.inj.profile.Force[p]
	if force {
		a.injected[p]++
	}
	return force
}
