package gonative

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// mustPanic runs f and returns the recovered panic value, failing the
// test if f returns normally.
func mustPanic(t *testing.T, what string, f func()) (r any) {
	t.Helper()
	defer func() {
		r = recover()
		if r == nil {
			t.Fatalf("%s: expected panic, got normal return", what)
		}
	}()
	f()
	return nil
}

// TestForkPanicPropagates: a panic in the forked half used to kill the
// whole process (unrecovered goroutine panic); now it must transfer to
// the joining side and re-raise with the original value.
func TestForkPanicPropagates(t *testing.T) {
	type marker struct{ n int }
	want := &marker{n: 7}
	var gRan atomic.Bool
	r := mustPanic(t, "Fork with panicking f", func() {
		Fork(
			func() int64 { panic(want) },
			func() int64 { gRan.Store(true); return 1 },
		)
	})
	if r != want {
		t.Fatalf("re-raised %v, want the original panic value", r)
	}
	if !gRan.Load() {
		t.Fatal("g did not run to completion before the re-raise")
	}
}

// TestForkBoundedPanicReleasesBudget: a panicking forked f must still
// release its semaphore slot, or every panic would permanently shrink
// the concurrency budget until forks go sequential forever.
func TestForkBoundedPanicReleasesBudget(t *testing.T) {
	fb := NewForkBounded(1)
	r := mustPanic(t, "bounded Fork with panicking f", func() {
		fb.Fork(func() int64 { panic("boom") }, func() int64 { return 1 })
	})
	if r != "boom" {
		t.Fatalf("re-raised %v, want boom", r)
	}
	// With the single slot released, the next fork can take the
	// parallel branch again; with a leaked slot this select would fall
	// through to the sequential default — detectable because the
	// parallel branch is the only one that runs f on another goroutine.
	if len(fb.sem) != 0 {
		t.Fatalf("semaphore holds %d leaked slots after the panic", len(fb.sem))
	}
	a, b := fb.Fork(func() int64 { return 2 }, func() int64 { return 3 })
	if a != 2 || b != 3 {
		t.Fatalf("post-panic fork returned (%d, %d), want (2, 3)", a, b)
	}
}

// TestParallelForPanicPropagates: the first panicking chunk body must
// re-raise on the caller after the barrier, and the other chunks must
// still have completed (no abandoned work, no deadlocked WaitGroup).
func TestParallelForPanicPropagates(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	var done atomic.Int64
	r := mustPanic(t, "ParallelFor with panicking body", func() {
		ParallelFor(0, 64, 8, func(i int64) {
			if i == 17 {
				panic("body boom")
			}
			done.Add(1)
		})
	})
	if r != "body boom" {
		t.Fatalf("re-raised %v, want body boom", r)
	}
	// Everything except the panicking iteration and the iterations
	// abandoned behind it in its own chunk must have run.
	if n := done.Load(); n < 64-8 || n > 63 {
		t.Fatalf("%d iterations completed, want between %d and 63", n, 64-8)
	}
}

// TestParallelForDynamicPanicPropagates mirrors the static case for
// the shared-counter schedule: the panicking worker stops, the others
// drain the remaining chunks, the caller gets the panic.
func TestParallelForDynamicPanicPropagates(t *testing.T) {
	// The drain guarantee needs surviving workers, and the worker count
	// is GOMAXPROCS — pin it so a single-CPU machine still has some.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	var done atomic.Int64
	r := mustPanic(t, "ParallelForDynamic with panicking body", func() {
		ParallelForDynamic(0, 64, 4, func(i int64) {
			if i == 17 {
				panic("body boom")
			}
			done.Add(1)
		})
	})
	if r != "body boom" {
		t.Fatalf("re-raised %v, want body boom", r)
	}
	if n := done.Load(); n < 64-4 || n > 63 {
		t.Fatalf("%d iterations completed, want between %d and 63", n, 64-4)
	}
}
