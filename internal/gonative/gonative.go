// Package gonative is the "what a Go programmer would write" baseline:
// fork-join parallelism expressed directly with goroutines, channels
// and WaitGroups, scheduled by the Go runtime rather than by an
// explicit work-stealing pool.
//
// It exists to quantify the gap between the direct task stack and
// idiomatic Go concurrency for fine-grained tasks: a goroutine spawn
// costs stack allocation, scheduler queue traffic and (for results) a
// channel or WaitGroup handoff — orders of magnitude above the paper's
// 3–19 cycle spawns, which is precisely why fine-grained parallelism
// needs a library like this repository's.
package gonative

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Fork runs f and g as a parallel pair, f in a new goroutine, and
// returns both results. The naive Go analogue of SPAWN/CALL/JOIN.
func Fork(f, g func() int64) (int64, int64) {
	ch := make(chan int64, 1)
	go func() { ch <- f() }()
	b := g()
	return <-ch, b
}

// ForkBounded is Fork with a concurrency budget: it forks only while
// the budget (a counting semaphore) has capacity, otherwise it runs
// both functions sequentially. This is the manual throttling Go
// programs resort to so that fine-grained recursion does not drown in
// goroutine overhead — the very granularity control the paper's
// scheduler makes unnecessary.
type ForkBounded struct {
	sem chan struct{}
}

// NewForkBounded creates a bounded forker allowing limit concurrent forks.
func NewForkBounded(limit int) *ForkBounded {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	return &ForkBounded{sem: make(chan struct{}, limit)}
}

// Fork runs f and g in parallel if budget allows, else sequentially.
func (fb *ForkBounded) Fork(f, g func() int64) (int64, int64) {
	select {
	case fb.sem <- struct{}{}:
		ch := make(chan int64, 1)
		go func() {
			ch <- f()
			<-fb.sem
		}()
		b := g()
		return <-ch, b
	default:
		return f(), g()
	}
}

// ParallelFor runs body(i) for i in [lo, hi) using one goroutine per
// chunk and a WaitGroup barrier; chunks defaults to GOMAXPROCS.
func ParallelFor(lo, hi int64, chunks int, body func(i int64)) {
	if hi <= lo {
		return
	}
	if chunks <= 0 {
		chunks = runtime.GOMAXPROCS(0)
	}
	n := hi - lo
	per := (n + int64(chunks) - 1) / int64(chunks)
	var wg sync.WaitGroup
	for c := int64(0); c < int64(chunks); c++ {
		cl, ch := lo+c*per, lo+(c+1)*per
		if cl >= hi {
			break
		}
		if ch > hi {
			ch = hi
		}
		wg.Add(1)
		go func(cl, ch int64) {
			defer wg.Done()
			for i := cl; i < ch; i++ {
				body(i)
			}
		}(cl, ch)
	}
	wg.Wait()
}

// ParallelForDynamic runs body(i) over [lo, hi) with GOMAXPROCS
// goroutines pulling chunk-sized slices from a shared counter — the
// dynamic-schedule analogue.
func ParallelForDynamic(lo, hi, chunk int64, body func(i int64)) {
	if hi <= lo {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	var next atomic.Int64
	next.Store(lo)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	for c := 0; c < workers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				cl := next.Add(chunk) - chunk
				if cl >= hi {
					return
				}
				ch := cl + chunk
				if ch > hi {
					ch = hi
				}
				for i := cl; i < ch; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
}
