package experiments

import (
	"fmt"
	"io"

	"gowool/internal/costmodel"
	"gowool/internal/sim"
	"gowool/internal/tabulate"
)

func init() {
	register(Experiment{
		ID:    "xablate",
		Paper: "extension",
		Title: "Ablations: private-task parameters and wait policy (deterministic sweeps)",
		Run:   runXAblate,
	})
}

// runXAblate sweeps the design knobs DESIGN.md §7 calls out, on the
// deterministic simulator so every cell is exactly reproducible:
//
//  1. private tasks on/off and the trip-wire publication parameters
//     (InitialPublic × PublishAmount) on a fine-grained stress run —
//     the tension between join overhead (more private = cheaper) and
//     steal latency (more public = thieves fed sooner);
//  2. the blocked-join wait policy (leapfrog vs unrestricted vs spin)
//     across the scheduler kinds that support each.
func runXAblate(sc Scale, w io.Writer) error {
	reps := int64(64)
	fibN := int64(21)
	if sc == Full {
		reps = 512
		fibN = 26
	}
	procs := 8

	// 1. Trip-wire parameter sweep — on fib, whose ~13-cycle tasks
	// make the public-join atomic a first-order cost, so the tension
	// between cheap joins (private) and fed thieves (public) shows.
	wl := fibWL(fibN)
	t := tabulate.New(
		fmt.Sprintf("Ablation — private-task parameters, fib(%d) at %d procs", fibN, procs),
		"config", "makespan[kcyc]", "steals", "publications", "private joins %",
	)
	type cfg struct {
		name            string
		private         bool
		initial, amount int
	}
	cfgs := []cfg{
		{"all public", false, 0, 0},
		{"private ip=1 pa=1", true, 1, 1},
		{"private ip=2 pa=2", true, 2, 2},
		{"private ip=4 pa=4", true, 4, 4},
		{"private ip=8 pa=8", true, 8, 8},
		{"private ip=16 pa=16", true, 16, 16},
	}
	for _, c := range cfgs {
		root, args := wl.Root()
		res := sim.Run(sim.Config{
			Procs: procs, Kind: sim.KindDirectStack, Costs: costmodel.Wool(),
			PrivateTasks: c.private, InitialPublic: c.initial, PublishAmount: c.amount,
			Seed: 0xab1a7e,
		}, root, args)
		privPct := 0.0
		if res.Total.Joins() > 0 {
			privPct = 100 * float64(res.Total.JoinsPrivate) / float64(res.Total.Joins())
		}
		t.Row(c.name, float64(res.Makespan)/1000, res.Total.Steals, res.Total.Publications, privPct)
	}
	t.Note("more public descriptors feed thieves sooner but pay the atomic join more often")
	t.Render(w)

	// 2. Wait-policy sweep: the direct stack with leapfrog vs the
	// deque kind's unrestricted helping, same costs, so only the
	// blocked-join behaviour differs.
	swl := stressWL(256, 8, reps)
	t2 := tabulate.New(
		fmt.Sprintf("Ablation — blocked-join policy, stress256(8)x%d at %d procs (Wool costs)", reps, procs),
		"policy", "makespan[kcyc]", "leap/help steals", "LF wait[kcyc]",
	)
	for _, pc := range []struct {
		name string
		kind sim.Kind
	}{
		{"leapfrog (direct stack)", sim.KindDirectStack},
		{"steal-anywhere (deque kind)", sim.KindDeque},
	} {
		root, args := swl.Root()
		res := sim.Run(sim.Config{
			Procs: procs, Kind: pc.kind, Costs: costmodel.Wool(), Seed: 0xab1a7e,
		}, root, args)
		t2.Row(pc.name, float64(res.Makespan)/1000, res.Total.LeapSteals, float64(res.Total.LF)/1000)
	}
	t2.Note("paper Fig 6: LF stays small — 'simply waiting would be adequate' for these workloads")
	t2.Render(w)
	return nil
}
