package chaselev

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// White-box tests of the Chase-Lev deque itself: the owner's
// popBottom racing thieves' CAS-takes over the last element.

func newTestWorker(size int) *Worker {
	p := &Pool{opts: Options{Workers: 1, DequeSize: size}.defaults()}
	w := &Worker{pool: p, buf: make([]atomic.Pointer[Task], p.opts.DequeSize), mask: int64(p.opts.DequeSize - 1)}
	p.workers = []*Worker{w}
	return w
}

func TestDequePushPopLIFO(t *testing.T) {
	w := newTestWorker(16)
	tasks := make([]*Task, 5)
	for i := range tasks {
		tasks[i] = &Task{a0: int64(i)}
		w.push(tasks[i])
	}
	for i := 4; i >= 0; i-- {
		got := w.popBottom()
		if got != tasks[i] {
			t.Fatalf("pop %d: got %v", i, got)
		}
		w.shadow = w.shadow[:len(w.shadow)-1]
	}
	if w.popBottom() != nil {
		t.Error("pop of empty deque returned a task")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	w := newTestWorker(16)
	a, b := &Task{a0: 1}, &Task{a0: 2}
	w.push(a)
	w.push(b)
	// A thief takes from the top (oldest first).
	tp := w.top.Load()
	if got := w.buf[tp&w.mask].Load(); got != a {
		t.Fatalf("head is %v, want a", got)
	}
	if !w.top.CompareAndSwap(tp, tp+1) {
		t.Fatal("uncontended steal CAS failed")
	}
	// Owner pops the remaining task.
	if got := w.popBottom(); got != b {
		t.Fatalf("owner pop got %v, want b", got)
	}
}

// TestDequeLastElementRace hammers the one-element race: an owner
// popping while a thief CASes; exactly one side must win each round.
func TestDequeLastElementRace(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	w := newTestWorker(16)
	const rounds = 5000
	var ownerWins, thiefWins int
	for r := 0; r < rounds; r++ {
		task := &Task{a0: int64(r)}
		w.push(task)
		w.shadow = w.shadow[:0]

		var wg sync.WaitGroup
		var thiefGot atomic.Pointer[Task]
		wg.Add(1)
		go func() {
			defer wg.Done()
			tp := w.top.Load()
			b := w.bottom.Load()
			if tp >= b {
				return
			}
			tk := w.buf[tp&w.mask].Load()
			if tk != nil && w.top.CompareAndSwap(tp, tp+1) {
				thiefGot.Store(tk)
			}
		}()
		ownerGot := w.popBottom()
		wg.Wait()

		switch {
		case ownerGot == task && thiefGot.Load() == nil:
			ownerWins++
		case ownerGot == nil && thiefGot.Load() == task:
			thiefWins++
		default:
			t.Fatalf("round %d: owner=%v thief=%v (duplicate or lost)", r, ownerGot, thiefGot.Load())
		}
		// Reset canonical indices for the next round.
		if w.top.Load() != w.bottom.Load() {
			t.Fatalf("round %d: indices inconsistent: top=%d bottom=%d", r, w.top.Load(), w.bottom.Load())
		}
	}
	if ownerWins == 0 {
		t.Log("owner never won the race (unusual scheduling, not an error)")
	}
	t.Logf("owner wins: %d, thief wins: %d", ownerWins, thiefWins)
}

func TestWaitSpinPolicyBlocks(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 2, Wait: WaitSpin})
	defer p.Close()
	fib := fibDef()
	for i := 0; i < 5; i++ {
		if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 18) }); got != serialFib(18) {
			t.Fatalf("WaitSpin fib wrong: %d", got)
		}
	}
	if st := p.Stats(); st.WaitSteals != 0 {
		t.Errorf("WaitSpin executed %d tasks while blocked", st.WaitSteals)
	}
}

func TestWaitLeapfrogPolicy(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4, Wait: WaitLeapfrog})
	defer p.Close()
	fib := fibDef()
	for i := 0; i < 10; i++ {
		if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 19) }); got != serialFib(19) {
			t.Fatalf("WaitLeapfrog fib wrong: %d", got)
		}
	}
}
