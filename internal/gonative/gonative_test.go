package gonative

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func serialFib(n int64) int64 {
	if n < 2 {
		return n
	}
	return serialFib(n-1) + serialFib(n-2)
}

func goFib(n int64) int64 {
	if n < 2 {
		return n
	}
	a, b := Fork(
		func() int64 { return goFib(n - 2) },
		func() int64 { return goFib(n - 1) },
	)
	return a + b
}

func TestFork(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	if got := goFib(16); got != serialFib(16) {
		t.Errorf("goFib(16) = %d, want %d", got, serialFib(16))
	}
}

func TestForkBounded(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	fb := NewForkBounded(4)
	var fib func(n int64) int64
	fib = func(n int64) int64 {
		if n < 2 {
			return n
		}
		a, b := fb.Fork(
			func() int64 { return fib(n - 2) },
			func() int64 { return fib(n - 1) },
		)
		return a + b
	}
	if got := fib(20); got != serialFib(20) {
		t.Errorf("bounded fib(20) = %d, want %d", got, serialFib(20))
	}
}

func TestForkBoundedDefaultLimit(t *testing.T) {
	fb := NewForkBounded(0)
	a, b := fb.Fork(func() int64 { return 1 }, func() int64 { return 2 })
	if a != 1 || b != 2 {
		t.Errorf("got (%d,%d), want (1,2)", a, b)
	}
}

func TestParallelFor(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	out := make([]int64, 1003)
	ParallelFor(0, int64(len(out)), 4, func(i int64) { out[i] = i * 3 })
	for i, v := range out {
		if v != int64(3*i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestParallelForDynamic(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	var sum atomic.Int64
	ParallelForDynamic(0, 500, 7, func(i int64) { sum.Add(i) })
	if got, want := sum.Load(), int64(500*499/2); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestParallelForEmptyAndEdge(t *testing.T) {
	ParallelFor(3, 3, 4, func(i int64) { t.Error("ran") })
	ParallelFor(5, 2, 4, func(i int64) { t.Error("ran") })
	ParallelForDynamic(9, 9, 3, func(i int64) { t.Error("ran") })
	ran := false
	ParallelFor(0, 1, 8, func(i int64) { ran = true })
	if !ran {
		t.Error("single-element loop did not run")
	}
}

func BenchmarkForkJoinGoroutine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Fork(func() int64 { return 1 }, func() int64 { return 2 })
	}
}
