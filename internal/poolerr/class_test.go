package poolerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestClassOf pins the taxonomy walk: wrappers classify, context errors
// classify as non-retryable wherever they sit on the chain, the first
// Classed implementer wins, and unclassified errors stay unknown.
func TestClassOf(t *testing.T) {
	base := errors.New("boom")
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassUnknown},
		{"plain", base, ClassUnknown},
		{"retryable", Retryable(base), ClassRetryable},
		{"non-retryable", NonRetryable(base), ClassNonRetryable},
		{"shed", Shed(base), ClassShed},
		{"wrapped-shed", fmt.Errorf("tenant %q: %w", "a", Shed(base)), ClassShed},
		{"canceled", context.Canceled, ClassNonRetryable},
		{"deadline", fmt.Errorf("request: %w", context.DeadlineExceeded), ClassNonRetryable},
		{"abort", &AbortError{Reason: context.Canceled}, ClassNonRetryable},
		{"abort-no-reason", &AbortError{}, ClassNonRetryable},
		{"first-classed-wins", Retryable(Shed(base)), ClassRetryable},
	}
	for _, c := range cases {
		if got := ClassOf(c.err); got != c.want {
			t.Errorf("%s: ClassOf = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestClassWrappersPreserveIs checks the class wrappers stay
// transparent to errors.Is/errors.As — a shed sentinel must still
// match its package-level var through the wrapper.
func TestClassWrappersPreserveIs(t *testing.T) {
	sentinel := errors.New("queue full")
	wrapped := fmt.Errorf("tenant %q has %d pending: %w", "b", 3, Shed(sentinel))
	if !errors.Is(wrapped, sentinel) {
		t.Fatalf("errors.Is lost the sentinel through the class wrapper")
	}
	if ClassOf(wrapped) != ClassShed {
		t.Fatalf("ClassOf(wrapped) = %v, want shed", ClassOf(wrapped))
	}
	if Retryable(nil) != nil || NonRetryable(nil) != nil || Shed(nil) != nil {
		t.Fatalf("class wrappers must pass nil through")
	}
}

// TestClassString pins the stable names used by stats and docs.
func TestClassString(t *testing.T) {
	want := map[Class]string{
		ClassUnknown:      "unknown",
		ClassRetryable:    "retryable",
		ClassNonRetryable: "non-retryable",
		ClassShed:         "shed",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
}
