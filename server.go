package gowool

import (
	"gowool/internal/poolerr"
	"gowool/internal/sched"
	"gowool/internal/serve"
)

// This file is the public surface of woolserve, the concurrent
// request-serving runtime over the scheduler (internal/serve,
// DESIGN.md §16). A Pool runs one root task at a time; a Server runs
// many — Submit enqueues a request from any goroutine, lanes of
// workers drain the queues, a request's context cancels or times it
// out mid-flight, bounded queues shed overload, and weighted tenants
// get proportionally sized worker teams.
//
// The underlying per-request abort machinery is also public on Pool
// itself for programs that manage their own pools: Pool.Abort poisons
// a running pool so its Run unwinds with an *AbortError, Pool.Poisoned
// observes the poison, and Pool.Reset returns the pool to service.

type (
	// Server is the serving runtime: create with NewServer, submit with
	// Server.Submit, stop with Server.Close.
	Server = serve.Server

	// ServerOptions configures NewServer; the zero value serves a
	// single anonymous tenant on the wool backend with GOMAXPROCS
	// workers.
	ServerOptions = serve.Options

	// Tenant declares one named request class with a weighted worker
	// team and its own bounded queue.
	Tenant = serve.Tenant

	// Ticket is a submitted request's handle; Ticket.Wait blocks for
	// the result.
	Ticket = serve.Ticket

	// Job is a servable request, built with ServeRec or ServeRange.
	Job = serve.Job

	// ServerStats is a point-in-time server snapshot (Server.Stats).
	ServerStats = serve.Stats

	// TenantStats is one tenant's counters in a ServerStats.
	TenantStats = serve.TenantStats

	// PanicError is a request's Wait error when its task tree panicked;
	// the server isolates the panic to that request.
	PanicError = serve.PanicError

	// AbortError is the panic value an aborted Run unwinds with
	// (Pool.Abort, or a Server cancelling a request mid-flight); it
	// unwraps to the abort reason.
	AbortError = poolerr.AbortError

	// RecJob describes a binary divide-and-conquer job generically:
	// written once, runnable on any registered scheduler and servable
	// via ServeRec.
	RecJob = sched.RecJob

	// RangeJob describes an index-range job generically; servable via
	// ServeRange.
	RangeJob = sched.RangeJob
)

// Sentinel errors of the serving layer, matched with errors.Is.
var (
	// ErrOverloaded rejects a Submit that found the tenant's bounded
	// queue full (admission control; ServerOptions.MaxPending).
	ErrOverloaded = serve.ErrOverloaded

	// ErrServerClosed rejects submissions to, and fails tickets drained
	// by, a closed Server.
	ErrServerClosed = serve.ErrClosed

	// ErrUnknownTenant rejects a Submit naming an undeclared tenant.
	ErrUnknownTenant = serve.ErrUnknownTenant

	// ErrConcurrentRun is wrapped by the panic raised when two Run
	// calls overlap on the same pool (every pooled backend raises it;
	// a Server never does, serialization is its job).
	ErrConcurrentRun = poolerr.ErrConcurrentRun
)

// NewServer builds and starts a serving runtime. The caller must
// Close it.
func NewServer(o ServerOptions) (*Server, error) { return serve.New(o) }

// ServeRec wraps a divide-and-conquer job as a servable request.
func ServeRec(j RecJob) Job { return serve.Rec(j) }

// ServeRange wraps an index-range job as a servable request.
func ServeRange(j RangeJob) Job { return serve.Range(j) }
