package core

// Request-scoped abort and pool revival (DESIGN.md §16).
//
// The poison machinery of DESIGN.md §11 is pool-wide and terminal: a
// task panic poisons the pool, Run re-raises, and the only safe call
// left is Close. That is the right contract for batch use, but a
// serving layer (internal/serve) runs many independent requests
// through one pool and needs the poison scoped to a request: cancel
// THIS run, then return the pool to service. Three pieces deliver
// that:
//
//   - Abort(reason) poisons the pool deliberately, with a
//     *poolerr.AbortError carrying the reason. The existing abort
//     checks unwind the in-flight Run exactly as a task panic would,
//     so Run re-raises the AbortError and the caller can tell a
//     cancellation from a genuine panic by type.
//
//   - Poisoned() observes the poison without Run's panic, so the
//     serving layer can decide whether the pool needs revival.
//
//   - Reset() revives a poisoned pool: wait until every worker has
//     quiesced (parked on the idle engine or on the poison gate),
//     clear the abandoned task trees, and lift the poison. After a
//     successful Reset the pool accepts Run again.
//
// Reviving requires that poisoned workers stay around: idleLoop
// blocks poisoned workers on a gate (poisonPark) instead of exiting
// their goroutines, and both Close and Reset open the gate — Close to
// let them observe shutdown and exit, Reset to put them back to
// stealing.

import (
	"errors"
	"math"
	"runtime"
	"time"

	"gowool/internal/poolerr"
)

// Abort poisons the pool with a *poolerr.AbortError so the in-flight
// Run (if any) unwinds and re-raises it. It is safe to call from any
// goroutine, concurrently with Run; the serving layer calls it from a
// context-cancellation callback. It returns true when this call did
// the poisoning, false when the pool was already poisoned (by a task
// panic or an earlier Abort — first cause wins, matching recordPanic)
// or already closed.
//
// Abort does not wait for the Run to unwind: the abort token is
// observed at the next public join, stolen-task start, or (amortized)
// generic join of each worker. Workers never initiate new steals once
// poisoned, and a task already claimed by a steal still reaches DONE
// (its body is skipped, see runStolen), so the unwind cannot strand a
// joiner.
func (p *Pool) Abort(reason error) bool {
	if p.shutdown.Load() {
		return false
	}
	p.poisonMu.Lock()
	defer p.poisonMu.Unlock()
	if p.panicked.Load() {
		return false
	}
	p.panicVal = &poolerr.AbortError{Reason: reason}
	p.panicked.Store(true)
	return true
}

// Poisoned reports whether the pool is poisoned, and by what: the
// original panic value of the task panic (or the *poolerr.AbortError
// of an Abort) that poisoned it. Unlike Run's poisoned panic this is
// a plain observation, usable by a serving layer deciding whether to
// Reset.
func (p *Pool) Poisoned() (cause any, poisoned bool) {
	if !p.panicked.Load() {
		return nil, false
	}
	return p.panicVal, true
}

// Reset revives a poisoned pool so it can serve the next request. It
// returns nil immediately when the pool is not poisoned. Otherwise it
// waits until every worker is quiescent — blocked on the poison gate
// or parked on the idle engine; a worker still finishing a claimed
// stolen task is waited out, so a task body that never returns blocks
// Reset just as it would have blocked the join — then discards the
// abandoned task trees (unjoined descriptors never run; the serial
// state they computed into is the caller's to reconcile, which for
// the serving layer is simply the failed request's), re-arms a
// tripped watchdog, lifts the poison, and releases the gate.
//
// Reset must not race with Run: like Run it claims the running flag
// and returns poolerr.ErrConcurrentRun (wrapped) when it loses.
func (p *Pool) Reset() error {
	if p.shutdown.Load() {
		return errors.New("core: Reset on closed Pool")
	}
	if !p.running.CompareAndSwap(false, true) {
		return poolerr.ConcurrentRun("core")
	}
	defer p.running.Store(false)
	if !p.panicked.Load() {
		return nil
	}

	// Quiescence: every worker but worker 0 (whose driving goroutine —
	// the Run caller — already unwound, or is us) must be accounted for
	// as poison-gate-blocked or idle-parked. Both states are claim-free
	// and, while the poison holds, absorbing: a gate-blocked worker
	// stays until the gate opens, and a parked worker that a stray wake
	// releases re-enters the loop, sees the poison, and blocks on the
	// gate. So polling until the counts add up is race-free even
	// though the two counters are sampled separately.
	need := len(p.workers) - 1
	for spins := 0; ; spins++ {
		p.poisonMu.Lock()
		quiet := p.poisonWaiters
		p.poisonMu.Unlock()
		if p.idle != nil {
			quiet += int(p.idle.parked.Load())
		}
		if quiet >= need {
			break
		}
		if p.shutdown.Load() {
			return errors.New("core: pool closed during Reset")
		}
		if spins < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(10 * time.Microsecond)
		}
	}

	for _, w := range p.workers {
		w.resetAfterPoison()
	}

	// A tripped watchdog's loop has exited (it returns after storing
	// its verdict); re-arm it for the revived pool.
	if p.wdErr.Load() != nil && p.wdStop != nil {
		<-p.wdDone // the old loop has fully stopped
		p.wdStop = make(chan struct{})
		p.wdDone = make(chan struct{})
		go p.watchdogLoop(p.opts.Watchdog)
	}
	p.wdErr.Store(nil)

	// Lift the poison and open the gate in one critical section: a
	// worker past the loop's poison check either registered on the gate
	// before we took poisonMu (and wakes when we close it) or enters
	// poisonPark after we release it, re-checks panicked, and declines
	// to block. Holding poisonMu here also serializes against a
	// concurrent Abort or recordPanic, which would otherwise interleave
	// its first-cause write with this clear.
	p.poisonMu.Lock()
	p.panicVal = nil
	p.panicked.Store(false)
	if p.poisonGate != nil {
		close(p.poisonGate)
		p.poisonGate = nil
	}
	p.poisonMu.Unlock()
	return nil
}

// poisonPark blocks the calling worker's goroutine while the pool is
// poisoned. It double-checks the poison and the shutdown flag under
// poisonMu, so a wake-up cannot be lost against Close or Reset (both
// close the gate under the same mutex, after their own flag writes).
func (p *Pool) poisonPark() {
	p.poisonMu.Lock()
	if p.shutdown.Load() || !p.panicked.Load() {
		p.poisonMu.Unlock()
		return
	}
	if p.poisonGate == nil {
		p.poisonGate = make(chan struct{})
	}
	gate := p.poisonGate
	p.poisonWaiters++
	p.poisonMu.Unlock()
	<-gate
	p.poisonMu.Lock()
	p.poisonWaiters--
	p.poisonMu.Unlock()
}

// abortCheckPeriod is how many generic joins an owner performs between
// loads of the pool's poison flag (see Worker.pollAbort). Small enough
// that a poisoned single-worker request unwinds within microseconds,
// large enough that the amortized cost on the gated join ladder is one
// plain decrement per pair.
const abortCheckPeriod = 32

// pollAbort is the owner-path abort check, called from joinAcquire:
// every abortCheckPeriod-th generic join loads the poison flag and, if
// set, re-raises the poisoning value so the request's task tree
// unwinds (Run's recover then re-raises it to the caller; a thief's
// runStolen recover contains it). The amortization keeps the check
// out of the perf-gated join ladder's measured cost; the fast
// generated private path (fastapi.go) deliberately has no check at
// all — serving layers that want prompt cancellation run their lanes
// with all-public descriptors (Options.PrivateTasks=false), where
// every join routes through here.
func (w *Worker) pollAbort() {
	w.abortTick--
	if w.abortTick > 0 {
		return
	}
	w.abortTick = abortCheckPeriod
	if w.pool.panicked.Load() {
		// Re-raise the original poisoning value (not a copy): Run's
		// recover path calls recordPanic, which is a no-op for a
		// poisoned pool, and re-panics the same value, preserving the
		// first-cause contract of DESIGN.md §11.
		panic(w.pool.panicVal)
	}
}

// resetAfterPoison discards this worker's share of the abandoned task
// tree and returns its scheduling state to the post-NewPool values.
// Called only from Pool.Reset, with every worker quiescent, so the
// owner-private fields and the descriptor states are unshared.
//
//woolvet:allow publication -- Reset-time clears: the loop's back edge puts iteration i+1's fn/ctx writes "after" iteration i's state store, but no thief is live to acquire any descriptor here
func (w *Worker) resetAfterPoison() {
	for i := 0; i < w.top; i++ {
		t := &w.tasks[i]
		t.priv = false
		t.fn = nil
		t.ctx = nil // drop the abandoned tree's references for the GC
		//woolvet:allow atomicfield -- Reset-time clear: no thief is live to observe the store
		t.state.Store(stateEmpty)
	}
	w.top = 0
	w.bot.Store(0)
	w.ovf = w.ovf[:0]
	w.inlineRun = 0
	w.abortTick = 0
	w.morePublic.Store(false)
	if w.pool.opts.PrivateTasks {
		w.pubShadow = int64(w.pool.opts.InitialPublic)
	} else {
		w.pubShadow = math.MaxInt64
	}
	w.publicLimit.Store(w.pubShadow)
	w.blockedSince.Store(0)
}
