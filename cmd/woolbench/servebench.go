package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"gowool/internal/resilience"
	"gowool/internal/sched"
	"gowool/internal/serve"
	"gowool/internal/workloads/fibw"
	"gowool/internal/workloads/stress"
)

// The serving benchmark (woolbench -serve FILE) measures woolserve,
// the concurrent request-serving layer (internal/serve, DESIGN.md
// §16): closed-loop clients drive a request stream through a server on
// the wool and woolgen backends, and the report carries throughput
// (req/s) and the submit-to-finish latency percentiles per cell. The
// mixed cell adds short-deadline requests, so the abort/Reset
// cancellation path runs inside the measured stream rather than only
// in tests. Two resilience cells (DESIGN.md §17) measure the
// self-healing layer itself: overload-2x drives an open-loop stream at
// twice the measured capacity into a small queue and reports the shed
// rate, and breaker-recovery trips a tenant's circuit breaker and
// reports how long the server takes to let healthy traffic back in.

// serveBenchSchema versions the report shape for downstream readers
// (make serve-smoke greps it). v2 added the overload-2x and
// breaker-recovery cells with their rejected/shed_rate/recovery_ms
// fields.
const serveBenchSchema = "wool-serve-bench/v2"

// serveReport is the machine-readable output of -serve.
type serveReport struct {
	Schema     string            `json:"schema"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Scale      string            `json:"scale"`
	Cells      []serveCell       `json:"cells"`
	Notes      map[string]string `json:"notes"`
}

// serveCell is one backend × workload stream measurement.
type serveCell struct {
	Backend   string `json:"backend"`
	Workload  string `json:"workload"`
	Workers   int    `json:"workers"`
	LaneWidth int    `json:"lane_width"`
	Clients   int    `json:"clients"`
	Requests  int    `json:"requests"`
	Completed int    `json:"completed"`
	Cancelled int    `json:"cancelled"`
	// ReqPerS is completed+cancelled requests over the stream's
	// wall-clock (a cancelled request still occupies its lane until
	// the abort unwinds, so it belongs in the service rate).
	ReqPerS float64 `json:"req_per_s"`
	// Latency percentiles over the COMPLETED requests' submit-to-
	// finish time (queueing included — this is a serving benchmark).
	LatP50Us float64 `json:"lat_p50_us"`
	LatP90Us float64 `json:"lat_p90_us"`
	LatP99Us float64 `json:"lat_p99_us"`
	// Resilience-cell fields (overload-2x, breaker-recovery); zero and
	// omitted on the throughput cells.
	//
	// Rejected counts submissions shed by admission control; ShedRate
	// is Rejected over all submission attempts (overload-2x).
	Rejected int     `json:"rejected,omitempty"`
	ShedRate float64 `json:"shed_rate,omitempty"`
	// RecoveryMs is breaker-recovery's headline: the time from the
	// circuit opening to the first healthy completion flowing again
	// (≈ the breaker cooldown plus the half-open probe's service time).
	RecoveryMs float64 `json:"recovery_ms,omitempty"`
}

// serveWorkload describes one request stream shape.
type serveWorkload struct {
	name string
	// job returns the i-th request's job and, when the request should
	// carry a deadline, a positive timeout.
	job func(i int) (serve.Job, time.Duration)
}

// serveSpinJob is the mixed stream's slow request: a small task tree
// whose leaves busy-spin, so a 1-2ms deadline can land mid-flight
// (same probe shape as the serve torture suite). Completed value is
// the leaf count.
func serveSpinJob(depth int64, spin time.Duration) serve.Job {
	return serve.Rec(sched.RecJob{
		Name: "spin",
		Root: depth,
		Leaf: func(n int64) (int64, bool) {
			if n > 0 {
				return 0, false
			}
			end := time.Now().Add(spin)
			for time.Now().Before(end) {
			}
			return 1, true
		},
		Split: func(n int64) (inline, spawned int64) { return n - 1, n - 1 },
	})
}

func runServeBench(path string, full bool) error {
	const (
		workers   = 4
		laneWidth = 1
		clients   = 4
	)
	requests := 400
	scale := "quick"
	if full {
		requests = 4000
		scale = "full"
	}
	gmp := runtime.GOMAXPROCS(0)
	if gmp < workers {
		runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(gmp)
	}

	rep := serveReport{
		Schema:     serveBenchSchema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Notes: map[string]string{
			"setup":    fmt.Sprintf("%d closed-loop clients over a %d-worker server (lane width %d); latency percentiles over completed requests, submit to finish", clients, workers, laneWidth),
			"mixed":    "the mixed cell gives 1 in 4 requests a 1-2ms deadline over a slow spinning job, so mid-flight aborts and pool Resets happen inside the measured stream",
			"intent":   "throughput and tail latency of the serving layer per backend; req_per_s counts completed+cancelled (a cancelled request occupies its lane until the abort unwinds)",
			"overload": "overload-2x submits open-loop at 2x the fib16 cell's measured rate into an 8-deep queue; shed_rate is the fraction rejected with ErrOverloaded — admission control sheds instead of queueing without bound, and req_per_s shows the completions the server still sustained",
			"breaker":  "breaker-recovery panics every request until the tenant's circuit opens (submissions shed with ErrCircuitOpen), then streams healthy requests; recovery_ms is open-to-first-healthy-completion, dominated by the 100ms cooldown before the half-open probe",
		},
	}

	workloads := []serveWorkload{
		{name: "fib16", job: func(i int) (serve.Job, time.Duration) {
			return serve.Rec(fibw.Job(16, 1)), 0
		}},
		{name: "stress", job: func(i int) (serve.Job, time.Duration) {
			return serve.Rec(stress.Job(6, 100, 1)), 0
		}},
		{name: "mixed-cancel", job: func(i int) (serve.Job, time.Duration) {
			if i%4 == 0 {
				return serveSpinJob(4, 200*time.Microsecond), time.Duration(1+i%2) * time.Millisecond
			}
			return serve.Rec(fibw.Job(16, 1)), 0
		}},
	}

	for _, backend := range []string{"wool", "woolgen"} {
		// capacity is the fib16 cell's closed-loop service rate; the
		// overload cell submits at twice it.
		var capacity float64
		for _, wl := range workloads {
			cell, err := runServeCell(backend, wl, workers, laneWidth, clients, requests)
			if err != nil {
				return err
			}
			if wl.name == "fib16" {
				capacity = cell.ReqPerS
			}
			rep.Cells = append(rep.Cells, cell)
			fmt.Printf("  %-8s %-16s %8.0f req/s  p50=%-8.1fus p90=%-8.1fus p99=%-8.1fus completed=%d cancelled=%d\n",
				cell.Backend, cell.Workload, cell.ReqPerS, cell.LatP50Us, cell.LatP90Us, cell.LatP99Us,
				cell.Completed, cell.Cancelled)
		}
		oc, err := runOverloadCell(backend, capacity, workers, laneWidth, requests)
		if err != nil {
			return err
		}
		rep.Cells = append(rep.Cells, oc)
		fmt.Printf("  %-8s %-16s %8.0f req/s  p50=%-8.1fus p99=%-8.1fus shed_rate=%.2f rejected=%d\n",
			oc.Backend, oc.Workload, oc.ReqPerS, oc.LatP50Us, oc.LatP99Us, oc.ShedRate, oc.Rejected)
		bc, err := runBreakerCell(backend, workers, laneWidth)
		if err != nil {
			return err
		}
		rep.Cells = append(rep.Cells, bc)
		fmt.Printf("  %-8s %-16s recovery=%.1fms rejected=%d (circuit open)\n",
			bc.Backend, bc.Workload, bc.RecoveryMs, bc.Rejected)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runServeCell drives one request stream and aggregates its outcomes.
func runServeCell(backend string, wl serveWorkload, workers, laneWidth, clients, requests int) (serveCell, error) {
	cell := serveCell{
		Backend: backend, Workload: wl.name,
		Workers: workers, LaneWidth: laneWidth,
		Clients: clients, Requests: requests,
	}
	s, err := serve.New(serve.Options{
		Backend:   backend,
		Workers:   workers,
		LaneWidth: laneWidth,
		// The mixed cell's short-deadline requests exist to land
		// mid-flight; with deadline admission on, the estimator would
		// learn the spin time and shed them at Submit instead.
		Resilience: resilience.Options{DisableDeadline: true},
	})
	if err != nil {
		return cell, err
	}
	defer s.Close()

	type clientOut struct {
		lats                 []time.Duration
		completed, cancelled int
		err                  error
	}
	results := make(chan clientOut, clients)
	perClient := requests / clients
	start := time.Now()
	for c := 0; c < clients; c++ {
		c := c
		go func() {
			var out clientOut
			defer func() { results <- out }()
			for i := 0; i < perClient; i++ {
				job, timeout := wl.job(c*perClient + i)
				ctx := context.Background()
				var cancel context.CancelFunc
				if timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, timeout)
				}
				tk, err := s.Submit(ctx, "", job)
				if err != nil {
					if cancel != nil {
						cancel()
					}
					out.err = fmt.Errorf("%s/%s: submit: %w", backend, wl.name, err)
					return
				}
				_, werr := tk.Wait()
				if cancel != nil {
					cancel()
				}
				switch {
				case werr == nil:
					out.lats = append(out.lats, tk.Latency())
					out.completed++
				case errors.Is(werr, context.DeadlineExceeded) || errors.Is(werr, context.Canceled):
					out.cancelled++
				default:
					out.err = fmt.Errorf("%s/%s: request failed: %w", backend, wl.name, werr)
					return
				}
			}
		}()
	}
	var lats []time.Duration
	for c := 0; c < clients; c++ {
		out := <-results
		if out.err != nil {
			return cell, out.err
		}
		lats = append(lats, out.lats...)
		cell.Completed += out.completed
		cell.Cancelled += out.cancelled
	}
	elapsed := time.Since(start)
	cell.ReqPerS = float64(cell.Completed+cell.Cancelled) / elapsed.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	cell.LatP50Us = pctUs(lats, 50)
	cell.LatP90Us = pctUs(lats, 90)
	cell.LatP99Us = pctUs(lats, 99)
	return cell, nil
}

// runOverloadCell drives an open-loop fib16 stream at twice the
// closed-loop capacity measured by the fib16 cell, into a server with
// an 8-deep queue. Admission control must shed the excess: the cell
// reports the shed rate, the completions the server still sustained,
// and the latency percentiles of those completions.
func runOverloadCell(backend string, capacity float64, workers, laneWidth, requests int) (serveCell, error) {
	cell := serveCell{
		Backend: backend, Workload: "overload-2x",
		Workers: workers, LaneWidth: laneWidth,
		Clients: 1, Requests: requests,
	}
	if capacity <= 0 {
		return cell, fmt.Errorf("%s/overload-2x: no measured fib16 capacity to scale from", backend)
	}
	s, err := serve.New(serve.Options{
		Backend:    backend,
		Workers:    workers,
		LaneWidth:  laneWidth,
		MaxPending: 8,
		Resilience: resilience.Options{DisableDeadline: true},
	})
	if err != nil {
		return cell, err
	}
	defer s.Close()

	interval := time.Duration(float64(time.Second) / (2 * capacity))
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats []time.Duration
		werr error
	)
	start := time.Now()
	next := start
	for i := 0; i < requests; i++ {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		next = next.Add(interval)
		tk, err := s.Submit(context.Background(), "", serve.Rec(fibw.Job(16, 1)))
		if err != nil {
			if errors.Is(err, serve.ErrOverloaded) {
				cell.Rejected++
				continue
			}
			return cell, fmt.Errorf("%s/overload-2x: submit: %w", backend, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := tk.Wait()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				werr = err
				return
			}
			lats = append(lats, tk.Latency())
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if werr != nil {
		return cell, fmt.Errorf("%s/overload-2x: request failed: %w", backend, werr)
	}
	cell.Completed = len(lats)
	cell.ShedRate = float64(cell.Rejected) / float64(requests)
	cell.ReqPerS = float64(cell.Completed) / elapsed.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	cell.LatP50Us = pctUs(lats, 50)
	cell.LatP90Us = pctUs(lats, 90)
	cell.LatP99Us = pctUs(lats, 99)
	return cell, nil
}

// serveBoomJob is breaker-recovery's failing request: every leaf
// panics, so the request fails as a *serve.PanicError and feeds the
// tenant's circuit breaker.
func serveBoomJob() serve.Job {
	return serve.Rec(sched.RecJob{
		Name: "boom",
		Root: 2,
		Leaf: func(n int64) (int64, bool) {
			if n > 0 {
				return 0, false
			}
			panic("breaker-recovery bench failure")
		},
		Split: func(n int64) (inline, spawned int64) { return n - 1, n - 1 },
	})
}

// runBreakerCell trips the anonymous tenant's circuit breaker with
// panicking requests, then streams healthy fib16 requests and measures
// the recovery time: circuit open to the first healthy completion
// (the cooldown, plus the half-open probe's own service time).
func runBreakerCell(backend string, workers, laneWidth int) (serveCell, error) {
	cell := serveCell{
		Backend: backend, Workload: "breaker-recovery",
		Workers: workers, LaneWidth: laneWidth,
		Clients: 1,
	}
	const cooldown = 100 * time.Millisecond
	s, err := serve.New(serve.Options{
		Backend:   backend,
		Workers:   workers,
		LaneWidth: laneWidth,
		Resilience: resilience.Options{
			DisableDeadline: true,
			Breaker: resilience.BreakerConfig{
				MinSamples: 4, FailureRate: 0.5,
				Cooldown: cooldown, HalfOpenProbes: 1,
			},
		},
	})
	if err != nil {
		return cell, err
	}
	defer s.Close()

	// Phase 1: fail requests until admission sheds with ErrCircuitOpen.
	var opened time.Time
	var perr *serve.PanicError
	for i := 0; ; i++ {
		cell.Requests++
		tk, err := s.Submit(context.Background(), "", serveBoomJob())
		if errors.Is(err, serve.ErrCircuitOpen) {
			cell.Rejected++
			opened = time.Now()
			break
		}
		if err != nil {
			return cell, fmt.Errorf("%s/breaker-recovery: submit: %w", backend, err)
		}
		if _, werr := tk.Wait(); !errors.As(werr, &perr) {
			return cell, fmt.Errorf("%s/breaker-recovery: boom request returned %v, want a panic error", backend, werr)
		}
		if i > 1000 {
			return cell, fmt.Errorf("%s/breaker-recovery: breaker never opened", backend)
		}
	}

	// Phase 2: healthy requests; the first completion marks recovery
	// (the breaker half-opens after its cooldown, the success closes it).
	want := fibw.Serial(16)
	for {
		tk, err := s.Submit(context.Background(), "", serve.Rec(fibw.Job(16, 1)))
		if errors.Is(err, serve.ErrCircuitOpen) {
			cell.Rejected++
			time.Sleep(cooldown / 20)
			continue
		}
		if err != nil {
			return cell, fmt.Errorf("%s/breaker-recovery: submit: %w", backend, err)
		}
		cell.Requests++
		v, werr := tk.Wait()
		if werr != nil || v != want {
			return cell, fmt.Errorf("%s/breaker-recovery: healthy request got %d, %v", backend, v, werr)
		}
		cell.Completed++
		cell.RecoveryMs = float64(time.Since(opened)) / float64(time.Millisecond)
		break
	}
	return cell, nil
}

// pctUs reads the p-th percentile of sorted latencies in microseconds.
func pctUs(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return float64(sorted[idx]) / float64(time.Microsecond)
}
