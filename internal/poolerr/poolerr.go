// Package poolerr holds the error values shared by every pool backend's
// lifecycle surface, so callers (and the cross-backend conformance
// suite) can recognize a lifecycle failure without matching on
// backend-specific message strings.
//
// The backends deliberately keep their Run signature result-only (a
// spawn/join runtime returns the root's value, not an error), so
// lifecycle violations surface as panics — but the panic *values* are
// errors built here, and errors.Is/errors.As see through the
// per-backend prefix:
//
//	defer func() {
//		if r := recover(); r != nil {
//			if err, ok := r.(error); ok && errors.Is(err, poolerr.ErrConcurrentRun) { ... }
//		}
//	}()
package poolerr

import (
	"context"
	"errors"
	"fmt"
)

// ErrConcurrentRun is the sentinel wrapped by the panic every pooled
// backend raises when Run is called while another Run is in flight on
// the same pool. The root-join protocol assumes a single root: worker 0
// is driven by the calling goroutine, so two overlapping Runs would
// interleave two task trees on one stack and corrupt the join order.
// Backends detect the overlap with a CAS on a running flag and panic
// with ConcurrentRun(name) instead.
var ErrConcurrentRun = errors.New("concurrent Run on the same pool")

// ConcurrentRun builds the panic value for a concurrent-Run violation
// on the named backend. errors.Is(v, ErrConcurrentRun) holds.
func ConcurrentRun(backend string) error {
	return fmt.Errorf("%s: %w", backend, ErrConcurrentRun)
}

// Class is the structured error taxonomy of the serving stack
// (DESIGN.md §17): every request outcome falls into one of three
// buckets, and the resilience layer's decisions — what a circuit
// breaker counts as a failure, what a retry budget may re-run, what a
// lane's failure streak should include — key off the bucket rather
// than off concrete error types, so new failure modes classify
// themselves by implementing Classed (or by being built with the
// Retryable/NonRetryable/Shed wrappers) instead of growing switch
// statements in every consumer.
type Class uint8

const (
	// ClassUnknown is the zero class: the error carries no
	// classification. Consumers treat it conservatively (a failure for
	// health accounting, not safe to retry).
	ClassUnknown Class = iota
	// ClassRetryable marks a transient, server-side failure: the same
	// request may succeed on a healthy lane (task panics, watchdog
	// trips). It counts as a failure for breakers and lane health, and
	// a caller-marked retry-safe request may be re-run against the
	// retry budget.
	ClassRetryable
	// ClassNonRetryable marks a deliberate, caller-owned outcome —
	// cancellations, deadline expiry mid-flight — that re-running
	// cannot change. It counts as neither a breaker failure nor a
	// retry candidate.
	ClassNonRetryable
	// ClassShed marks load deliberately rejected at a boundary before
	// (or instead of) occupying a lane: admission-control overflow, an
	// open circuit, an unmeetable deadline. Sheds are the system
	// working as designed, so they never count as breaker failures and
	// are never retried server-side.
	ClassShed
)

// String returns the stable class name (used in stats and docs).
func (c Class) String() string {
	switch c {
	case ClassRetryable:
		return "retryable"
	case ClassNonRetryable:
		return "non-retryable"
	case ClassShed:
		return "shed"
	default:
		return "unknown"
	}
}

// Classed is implemented by errors that classify themselves.
// ClassOf finds the first implementer on the Unwrap chain.
type Classed interface {
	error
	ErrorClass() Class
}

// classed attaches a Class to an error without disturbing errors.Is /
// errors.As matching of the wrapped value.
type classed struct {
	err error
	c   Class
}

func (e *classed) Error() string     { return e.err.Error() }
func (e *classed) Unwrap() error     { return e.err }
func (e *classed) ErrorClass() Class { return e.c }

// Retryable wraps err as ClassRetryable. nil stays nil.
func Retryable(err error) error { return wrapClass(err, ClassRetryable) }

// NonRetryable wraps err as ClassNonRetryable. nil stays nil.
func NonRetryable(err error) error { return wrapClass(err, ClassNonRetryable) }

// Shed wraps err as ClassShed. nil stays nil.
func Shed(err error) error { return wrapClass(err, ClassShed) }

func wrapClass(err error, c Class) error {
	if err == nil {
		return nil
	}
	return &classed{err: err, c: c}
}

// ClassOf classifies err: the first Classed implementer on the Unwrap
// chain wins; context.Canceled and context.DeadlineExceeded anywhere
// on the chain classify as non-retryable (the caller gave up — the
// serving layer converts a request-scoped AbortError to its context
// reason, so both spellings land here); everything else is
// ClassUnknown and left to the caller's conservative default.
func ClassOf(err error) Class {
	for err != nil {
		if ce, ok := err.(Classed); ok {
			return ce.ErrorClass()
		}
		if err == context.Canceled || err == context.DeadlineExceeded {
			return ClassNonRetryable
		}
		err = errors.Unwrap(err)
	}
	return ClassUnknown
}

// AbortError is the panic value a request-scoped abort injects into a
// running root (DESIGN.md §16): Pool.Abort(reason) poisons the pool
// with an *AbortError, the protocol's abort checks re-raise it on the
// workers, and Run re-raises it to the caller, which unwraps Reason —
// typically a context error — to classify the outcome. It is a
// distinct type so serving layers can tell a deliberate cancellation
// from a genuine task panic.
type AbortError struct {
	// Reason is what the aborter passed to Abort — for the serving
	// layer, the request context's ctx.Err().
	Reason error
}

// Error describes the abort.
func (e *AbortError) Error() string {
	if e.Reason == nil {
		return "run aborted"
	}
	return "run aborted: " + e.Reason.Error()
}

// Unwrap exposes the abort reason to errors.Is/errors.As (so a caller
// sees context.Canceled through the wrapper).
func (e *AbortError) Unwrap() error { return e.Reason }

// ErrorClass classifies an abort as non-retryable: the abort was
// deliberate (a cancellation or an operator action), so re-running the
// request cannot change the outcome the aborter wanted.
func (e *AbortError) ErrorClass() Class { return ClassNonRetryable }
