package chaos

// Serve-level fault injection (DESIGN.md §17). The protocol-point
// Injector above perturbs the steal protocols inside one pool; the
// ServeInjector perturbs the serving layer's own control plane —
// lane revival, admission, quarantine probing — where the interesting
// windows are not nanoseconds wide but whole failure-handling paths
// that a healthy machine almost never takes:
//
//   - lane-reset-fail: a lane about to Reset a poisoned pool is told
//     the Reset failed, forcing the quarantine/hot-replacement path
//     that real Reset failures (shutdown races, a worker stuck in a
//     task body) take rarely.
//
//   - submit-storm: an admission decision is told the tenant's queue
//     is storm-full, shedding the submission — the deterministic stand
//     -in for a thundering herd that admission control must absorb.
//
//   - probe-fail: a quarantined lane's health probe is failed, keeping
//     the lane out of rotation for another replacement round and
//     exercising the probe-retry loop.
//
// Unlike the per-worker Agents, serve-level decisions are made from
// concurrent goroutines (Submit callers, lane loops), so one mutex-
// guarded splitmix64 stream serves them all: still deterministic in
// the sequence of decisions for a fixed interleaving of askers, and
// each decision remains independently seeded-replayable in the tests,
// which drive the points single-threaded or force rates to 0/always.

import (
	"fmt"
	"sync"
)

// ServePoint names one serving-layer injection point.
type ServePoint uint8

// Serve-level injection points.
const (
	// ServeLaneResetFail: the lane is about to Reset a poisoned pool;
	// fail forces the quarantine/replacement path instead.
	ServeLaneResetFail ServePoint = iota

	// ServeSubmitStorm: a submission passed admission's real checks;
	// fail sheds it as if a storm had filled the queue.
	ServeSubmitStorm

	// ServeProbeFail: a quarantined lane is probing its replacement
	// pool; fail reports the probe unhealthy.
	ServeProbeFail

	// NumServePoints is the number of serve-level points.
	NumServePoints
)

var servePointNames = [NumServePoints]string{
	ServeLaneResetFail: "lane-reset-fail",
	ServeSubmitStorm:   "submit-storm",
	ServeProbeFail:     "probe-fail",
}

// String returns the stable point name.
func (p ServePoint) String() string {
	if int(p) < len(servePointNames) {
		return servePointNames[p]
	}
	return fmt.Sprintf("ServePoint(%d)", int(p))
}

// ServeRates is the per-point fail probability, as numerators out of
// 65536 (0 = never; 65535 ≈ always).
type ServeRates [NumServePoints]uint16

// ServeInjector injects faults at the serving layer's control-plane
// points. Safe for concurrent use; a nil *ServeInjector is the
// disabled injector (every Fail returns false), so callers hook points
// unconditionally.
type ServeInjector struct {
	mu       sync.Mutex
	rng      RNG
	rates    ServeRates
	seed     uint64
	visits   [NumServePoints]uint64
	injected [NumServePoints]uint64
}

// NewServeInjector builds a serve-level injector with the given
// per-point fail rates and replay seed.
func NewServeInjector(rates ServeRates, seed uint64) *ServeInjector {
	return &ServeInjector{rng: NewRNG(seed), rates: rates, seed: seed}
}

// Fail records a visit to p and reports whether the caller should take
// its failure branch. Nil-safe: a nil injector never fails anything.
func (si *ServeInjector) Fail(p ServePoint) bool {
	if si == nil {
		return false
	}
	si.mu.Lock()
	defer si.mu.Unlock()
	si.visits[p]++
	fail := uint16(si.rng.Next()) < si.rates[p]
	if fail {
		si.injected[p]++
	}
	return fail
}

// Seed returns the replay seed (logged by the torture suites).
func (si *ServeInjector) Seed() uint64 {
	if si == nil {
		return 0
	}
	return si.seed
}

// Counts returns the per-point visit counters.
func (si *ServeInjector) Counts() [NumServePoints]uint64 {
	if si == nil {
		return [NumServePoints]uint64{}
	}
	si.mu.Lock()
	defer si.mu.Unlock()
	return si.visits
}

// Injected returns the per-point fired counters.
func (si *ServeInjector) Injected() [NumServePoints]uint64 {
	if si == nil {
		return [NumServePoints]uint64{}
	}
	si.mu.Lock()
	defer si.mu.Unlock()
	return si.injected
}
