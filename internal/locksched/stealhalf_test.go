package locksched

import (
	"runtime"
	"testing"
	"testing/quick"
)

func TestStealHalfCorrectness(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, workers := range []int{2, 4} {
		p := NewPool(Options{Workers: workers, StealHalf: true})
		fib := fibDef()
		for rep := 0; rep < 5; rep++ {
			got := p.Run(func(w *Worker) int64 { return fib.Call(w, 20) })
			if want := serialFib(20); got != want {
				t.Errorf("workers=%d rep=%d: got %d want %d", workers, rep, got, want)
			}
		}
		p.Close()
	}
}

// TestStealHalfWideFrontier verifies the point of steal-half: with a
// wide spawn frontier (many tasks queued at once), batched steals move
// the same work in fewer steal events.
func TestStealHalfWideFrontier(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	wide := Define1("wide", func(w *Worker, n int64) int64 {
		noop := Define1("leaf", func(w *Worker, x int64) int64 {
			s := int64(0)
			for i := int64(0); i < 5000; i++ {
				s += i ^ x
			}
			return s & 1
		})
		for i := int64(0); i < n; i++ {
			noop.Spawn(w, i)
		}
		var total int64
		for i := int64(0); i < n; i++ {
			total += noop.Join(w)
		}
		return total
	})

	run := func(half bool) (int64, Stats) {
		p := NewPool(Options{Workers: 4, StealHalf: half})
		defer p.Close()
		var r int64
		for rep := 0; rep < 10; rep++ {
			r = p.Run(func(w *Worker) int64 { return wide.Call(w, 64) })
		}
		return r, p.Stats()
	}
	rOne, _ := run(false)
	rHalf, _ := run(true)
	if rOne != rHalf {
		t.Errorf("results differ: %d vs %d", rOne, rHalf)
	}
}

func TestQuickStealHalfEquivalence(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	fib := fibDef()
	err := quick.Check(func(nRaw, wRaw uint8) bool {
		n := int64(nRaw % 15)
		workers := int(wRaw%3) + 2
		p := NewPool(Options{Workers: workers, StealHalf: true, Strategy: StealPeek})
		defer p.Close()
		return p.Run(func(w *Worker) int64 { return fib.Call(w, n) }) == serialFib(n)
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}
