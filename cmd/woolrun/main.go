// Command woolrun runs a single workload on a chosen scheduler — the
// quick way to poke at the runtime: native execution on any scheduler
// in the registry, or a deterministic virtual-time simulation at any
// processor count.
//
// Examples:
//
//	woolrun -list
//	woolrun -workload fib -n 30 -workers 4 -private
//	woolrun -workload stress -height 8 -iters 256 -reps 1000 -workers 8
//	woolrun -workload mm -n 256 -sched chaselev
//	woolrun -workload ssf -n 14 -sched gonative
//	woolrun -workload cholesky -n 500 -nz 2000 -stats
//	woolrun -sim -workload fib -n 24 -workers 8
//	woolrun -workload fib -n 30 -workers 4 -trace out.json -stealmatrix
//	woolrun -workload fib -n 28 -workers 8 -stealpolicy localized -stealmatrix
//	woolrun -workload fib -n 28 -sched chaselev -stealpolicy last-victim -stealamount half
//	woolrun -checktrace out.json
//	woolrun -workload fib -n 25 -workers 4 -chaos cas-starve -chaosseed 7
//	woolrun -workload fib -n 30 -workers 4 -watchdog 5s
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"gowool/internal/chaos"
	"gowool/internal/chaselev"
	"gowool/internal/core"
	"gowool/internal/costmodel"
	"gowool/internal/locksched"
	"gowool/internal/sched"
	"gowool/internal/sim"
	"gowool/internal/steal"
	"gowool/internal/trace"
	"gowool/internal/workloads/cholesky"
	"gowool/internal/workloads/fibw"
	"gowool/internal/workloads/mm"
	"gowool/internal/workloads/ssf"
	"gowool/internal/workloads/stress"
)

var (
	workload  = flag.String("workload", "fib", "fib | stress | mm | ssf | cholesky")
	schedName = flag.String("sched", "wool", "a registered scheduler (see -list), or serial")
	workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker count")
	private   = flag.Bool("private", false, "enable private tasks (schedulers with the capability)")
	simulate  = flag.Bool("sim", false, "run on the virtual-time simulator instead of natively")
	list      = flag.Bool("list", false, "list the registered schedulers and exit")
	n         = flag.Int64("n", 30, "size parameter (fib n, mm rows, ssf word index, cholesky rows)")
	nz        = flag.Int64("nz", 4000, "cholesky nonzeros")
	height    = flag.Int64("height", 8, "stress tree height")
	iters     = flag.Int64("iters", 256, "stress leaf iterations")
	reps      = flag.Int64("reps", 1, "repetitions (serialized parallel regions)")
	stats     = flag.Bool("stats", false, "print scheduler statistics")

	stealPolicy = flag.String("stealpolicy", "", "victim-selection policy: random | last-victim | sequential | localized (schedulers advertising steal policies; default: the backend's historical random)")
	stealAmount = flag.String("stealamount", "", "tasks per steal: one | half (schedulers advertising steal amounts)")

	traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file (schedulers with the trace capability)")
	stealMat   = flag.Bool("stealmatrix", false, "print the worker×worker steal matrix after the run (leapfrog steals marked *)")
	checkTrace = flag.String("checktrace", "", "validate a Chrome trace JSON file produced by -trace, then exit")
	settle     = flag.Duration("settle", 0, "idle this long after the run before exporting the trace, so idle workers reach their PARK transitions")

	chaosName = flag.String("chaos", "", "inject faults from this chaos profile (delay-heavy | cas-starve | park-flap; schedulers with the chaos capability)")
	chaosSeed = flag.Uint64("chaosseed", 1, "seed for -chaos; the same profile and seed replay the same injection sequence")
	watchdog  = flag.Duration("watchdog", 0, "fail the run if no scheduler progress for this long (schedulers with the watchdog capability)")
)

// stealConfig builds the victim-policy config from the -stealpolicy /
// -stealamount flags, rejecting unknown names up front (pool
// construction would panic on them later).
func stealConfig() steal.Config {
	cfg := steal.Config{Policy: *stealPolicy, Amount: *stealAmount}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return cfg
}

func main() {
	flag.Parse()
	if *list {
		listSchedulers()
		return
	}
	if *checkTrace != "" {
		validateTraceFile(*checkTrace)
		return
	}
	if *simulate {
		runSim()
		return
	}
	runNative()
}

// listSchedulers prints the registry: one block per scheduler with its
// capability flags and steal mechanism (the README's scheduler table
// is generated from this output).
func listSchedulers() {
	for _, s := range sched.All() {
		fmt.Printf("%-10s %s\n", s.Name(), capsTokens(s.Caps()))
		fmt.Printf("%-10s %s\n", "", s.Blurb())
		fmt.Printf("%-10s steal: %s\n", "", s.Caps().Steal)
		if pols := s.Caps().StealPolicies; len(pols) > 0 {
			fmt.Printf("%-10s policies: %s | amounts: %s\n", "",
				strings.Join(pols, " "), strings.Join(s.Caps().StealAmounts, " "))
		}
	}
}

// capsTokens renders the boolean capability flags as a token list.
func capsTokens(c sched.Caps) string {
	var t []string
	if c.StealChild {
		t = append(t, "steal-child")
	}
	if c.PrivateTasks {
		t = append(t, "private-tasks")
	}
	if c.Leapfrog {
		t = append(t, "leapfrog")
	}
	if c.WorkSharing {
		t = append(t, "work-sharing")
	}
	if c.Stats {
		t = append(t, "stats")
	}
	if c.TaskDefs {
		t = append(t, "taskdefs")
	}
	if c.GeneratedPorts {
		t = append(t, "generated-ports")
	}
	if c.Trace {
		t = append(t, "trace")
	}
	if c.Chaos {
		t = append(t, "chaos")
	}
	if c.Watchdog {
		t = append(t, "watchdog")
	}
	if c.Serve {
		t = append(t, "serve")
	}
	if len(t) == 0 {
		return "-"
	}
	return strings.Join(t, " ")
}

func runSim() {
	var def *sim.Def
	var args sim.Args
	switch *workload {
	case "fib":
		def, args = fibw.NewSim(), sim.Args{A0: *n}
	case "stress":
		def, args = stress.NewSimReps(), sim.Args{A0: *height, A1: *iters, A2: *reps}
	case "mm":
		def, args = mm.NewSimReps(), sim.Args{A0: *n, A1: *reps}
	case "ssf":
		wk := &ssf.Work{S: ssf.FibString(*n)}
		def, args = ssf.NewSimReps(), sim.Args{A0: *reps, Ctx: wk}
	case "cholesky":
		def, args = cholesky.NewSim().RepsDef(), sim.Args{A0: *reps, A1: *n, A2: *nz, A3: 42}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	res := sim.Run(sim.Config{
		Procs: *workers, Kind: sim.KindDirectStack,
		Costs: costmodel.Wool(), PrivateTasks: *private,
		Steal: stealConfig(),
	}, def, args)
	fmt.Printf("result=%d makespan=%d cycles (%.3f ms at 2.5GHz)\n",
		res.Value, res.Makespan, float64(res.Makespan)/costmodel.CyclesPerNS/1e6)
	if *stats {
		s := res.Total
		fmt.Printf("spawns=%d joins(pub/priv/stolen)=%d/%d/%d steals=%d attempts=%d publications=%d\n",
			s.Spawns, s.JoinsPublic, s.JoinsPrivate, s.JoinsStolen, s.Steals, s.Attempts, s.Publications)
		fmt.Printf("cycles NA=%d LA=%d ST=%d LF=%d\n", s.NA, s.LA, s.ST, s.LF)
	}
}

func runNative() {
	if *schedName == "serial" {
		t0 := time.Now()
		result := runSerial()
		fmt.Printf("result=%d elapsed=%v\n", result, time.Since(t0).Round(time.Microsecond))
		return
	}

	s, ok := sched.Lookup(*schedName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scheduler %q (registered: %s, serial)\n",
			*schedName, strings.Join(sched.Names(), ", "))
		os.Exit(2)
	}
	var tr *trace.Tracer
	if *traceOut != "" || *stealMat {
		tr = trace.New(*workers, 0)
	}
	var inj *chaos.Injector
	if *chaosName != "" {
		prof, ok := chaos.ProfileByName(*chaosName)
		if !ok {
			var names []string
			for _, pr := range chaos.Profiles() {
				names = append(names, pr.Name)
			}
			fmt.Fprintf(os.Stderr, "unknown chaos profile %q (profiles: %s)\n",
				*chaosName, strings.Join(names, ", "))
			os.Exit(2)
		}
		inj = chaos.NewInjector(*workers, prof, *chaosSeed)
		fmt.Printf("chaos: profile=%s seed=%d (replay with -chaos %s -chaosseed %d)\n",
			prof.Name, *chaosSeed, prof.Name, *chaosSeed)
	}
	opts := sched.Options{
		Workers: *workers, PrivateTasks: *private, Trace: tr,
		Chaos: inj, Watchdog: *watchdog, Steal: stealConfig(),
	}
	// Fail fast on any flag the backend cannot honour — including an
	// unsupported MEMBER of a non-empty capability list (for example
	// -stealamount half on the direct task stack), which the old
	// empty-list-only checks silently fell back to the default on.
	if err := sched.CheckOptions(s.Caps(), opts); err != nil {
		fmt.Fprintf(os.Stderr, "scheduler %s cannot run with these flags:\n%v\n", s.Name(), err)
		os.Exit(2)
	}
	p := s.NewPool(opts)
	defer p.Close()

	t0 := time.Now()
	var result int64
	switch *workload {
	case "fib":
		result = p.RunRec(fibw.Job(*n, *reps))
	case "stress":
		result = p.RunRec(stress.Job(*height, *iters, *reps))
	case "mm":
		result = p.RunRange(mm.Job(mm.New(*n), *reps))
	case "ssf":
		result = p.RunRange(ssf.Job(&ssf.Work{S: ssf.FibString(*n)}, *reps))
	case "cholesky":
		result = runCholesky(s, p)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	fmt.Printf("result=%d elapsed=%v\n", result, time.Since(t0).Round(time.Microsecond))
	if *stats {
		printStats(s, p)
	}
	if tr != nil {
		if *settle > 0 {
			time.Sleep(*settle)
		}
		exportTrace(tr)
	}
}

// exportTrace writes the Chrome trace file and/or prints the steal
// matrix from the run's tracer.
func exportTrace(tr *trace.Tracer) {
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		if err := tr.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: wrote %s (%d events, %d dropped)\n", *traceOut, countTraceEvents(tr), tr.Dropped())
	}
	if *stealMat {
		tr.StealMatrix().WriteText(os.Stdout)
	}
}

func countTraceEvents(tr *trace.Tracer) int {
	n := 0
	for _, evs := range tr.Snapshot() {
		n += len(evs)
	}
	return n
}

// validateTraceFile checks a -trace output file against the expected
// trace_event schema (the -checktrace mode used by `make trace-smoke`).
func validateTraceFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checktrace: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	n, err := trace.Validate(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "checktrace: %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("checktrace: %s ok (%d events)\n", path, n)
}

// runCholesky instantiates the generic factorization for backends that
// expose DefineC3-style task constructors (Caps.TaskDefs): the
// workload's irregular spawn structure doesn't fit the RunRec/RunRange
// shapes, so it reaches the concrete pool through Pool.Native.
func runCholesky(s sched.Scheduler, p sched.Pool) int64 {
	var factor func(m *cholesky.Matrix)
	switch np := p.Native().(type) {
	case *core.Pool:
		sc := cholesky.New(core.DefineC3[cholesky.Arena])
		factor = func(m *cholesky.Matrix) { sc.Factor(np.Run, m) }
	case *chaselev.Pool:
		sc := cholesky.New(chaselev.DefineC3[cholesky.Arena])
		factor = func(m *cholesky.Matrix) { sc.Factor(np.Run, m) }
	case *locksched.Pool:
		sc := cholesky.New(locksched.DefineC3[cholesky.Arena])
		factor = func(m *cholesky.Matrix) { sc.Factor(np.Run, m) }
	default:
		fmt.Fprintf(os.Stderr, "cholesky needs task definitions; %s has no port (use wool, chaselev or locksched)\n", s.Name())
		os.Exit(2)
	}
	var total int64
	for r := int64(0); r < *reps; r++ {
		m := cholesky.Generate(*n, *nz, 42+uint64(r))
		factor(m)
		total += m.Ar.NodesInUse()
	}
	return total
}

// printStats prints the normalized counters, plus the backend-specific
// extras, when the scheduler keeps any.
func printStats(s sched.Scheduler, p sched.Pool) {
	if !s.Caps().Stats {
		fmt.Printf("(no stats: %s keeps no counters)\n", s.Name())
		return
	}
	st := p.Stats()
	fmt.Printf("spawns=%d joins(inlined/stolen)=%d/%d steals=%d attempts=%d backoffs=%d\n",
		st.Spawns, st.JoinsInlined, st.JoinsStolen, st.Steals, st.StealAttempts, st.Backoffs)
	if keys := st.ExtraKeys(); len(keys) > 0 {
		var parts []string
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%d", k, st.Extra[k]))
		}
		fmt.Println(strings.Join(parts, " "))
	}
}

func runSerial() int64 {
	var total int64
	for r := int64(0); r < *reps; r++ {
		switch *workload {
		case "fib":
			total += fibw.Serial(*n)
		case "stress":
			total += stress.Serial(*height, *iters)
		case "mm":
			m := mm.New(*n)
			mm.Serial(m)
			total += *n
		case "ssf":
			total += ssf.Serial(ssf.FibString(*n), nil)
		case "cholesky":
			m := cholesky.Generate(*n, *nz, 42+uint64(r))
			m.Factor()
			total += m.Ar.NodesInUse()
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(2)
		}
	}
	return total
}
