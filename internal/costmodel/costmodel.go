// Package costmodel holds the per-operation cycle costs used by the
// virtual-time simulator (internal/sim) to stand in for the paper's
// 8-core Opteron. Each profile is calibrated from the paper's own
// micro-measurements:
//
//   - Table II (single-processor fib ladder): per-task overhead over a
//     procedure call — base 77 cycles, synchronize-on-task 29,
//     task-specific join 19, private tasks 3.
//   - Table III (inlined and stolen task costs): inlined overhead per
//     task (Wool 3–19, Cilk++ 134, TBB 323, OpenMP 878) and the
//     two-processor load-balancing overhead per steal (Wool 2 200,
//     Cilk++ 31 050, TBB 5 800, OpenMP 4 830 cycles), which we split
//     between the thief side (StealWork) and the victim's
//     join-with-stolen side (JoinStolen).
//
// The 4- and 8-processor columns of Table III are not parameters: the
// simulator reproduces their super-logarithmic growth from first
// principles (victim search misses, lock contention, interleaving).
package costmodel

// Profile is the per-operation cycle cost table for one scheduler.
type Profile struct {
	// Name labels the system in reports ("wool", "cilk++", ...).
	Name string

	// SpawnPublic/JoinPublic: creating and inlining a stealable task.
	// Their sum is the paper's "inlined task overhead".
	SpawnPublic uint64
	JoinPublic  uint64

	// SpawnPrivate/JoinPrivate: the private-task fast path (direct
	// task stack only; sum = 3 cycles per Table II).
	SpawnPrivate uint64
	JoinPrivate  uint64

	// StealProbe is the cost of examining a victim that yields nothing
	// (reading bot and the descriptor state, or peeking the indices).
	StealProbe uint64

	// StealWork is the thief-side cost of a successful steal: the CAS
	// (or locked take), the cache transfer of the descriptor, and for
	// free-list systems the task bookkeeping.
	StealWork uint64

	// JoinStolen is the victim-side cost of joining with a stolen
	// task: detecting the steal and synchronizing on completion.
	JoinStolen uint64

	// Backoff is the cost of a steal aborted by the bot re-check
	// (direct task stack only).
	Backoff uint64

	// UsesLock: thieves serialize on a victim lock (Cilk++, OpenMP,
	// and the Figure 4 lock ladder).
	UsesLock bool

	// LockAcquire is the uncontended lock acquire/release cost paid on
	// the locked paths; LockHold is how long the lock is held during a
	// steal (the serialization window other thieves and the victim's
	// join wait out).
	LockAcquire uint64
	LockHold    uint64
}

// InlinedOverhead returns the per-task overhead of the public path —
// the number comparable to the paper's Table III "Inlined" column.
func (p Profile) InlinedOverhead() uint64 { return p.SpawnPublic + p.JoinPublic }

// TwoProcSteal returns the modelled total overhead of one steal at two
// processors (thief work plus victim join), comparable to Table III
// column "2".
func (p Profile) TwoProcSteal() uint64 { return p.StealWork + p.JoinStolen }

// Wool is the direct task stack with task-specific joins and private
// tasks (Table II rows "task specific join" and "private tasks";
// Table III row "Wool").
func Wool() Profile {
	return Profile{
		Name:         "wool",
		SpawnPublic:  4,
		JoinPublic:   15, // sum 19: Table II "task specific join"
		SpawnPrivate: 1,
		JoinPrivate:  2, // sum 3: Table II "private tasks (all private)"
		StealProbe:   90,
		StealWork:    1400,
		JoinStolen:   800, // steal+join = 2200: Table III Wool @2p
		Backoff:      150,
	}
}

// WoolSyncOnTask is the Table II "synchronize on task" rung: the
// direct task stack without task-specific joins (generic wrapper join,
// 29 cycles inlined) and without private tasks.
func WoolSyncOnTask() Profile {
	p := Wool()
	p.Name = "wool-sync-on-task"
	p.SpawnPublic = 6
	p.JoinPublic = 23 // sum 29
	p.SpawnPrivate, p.JoinPrivate = 0, 0
	return p
}

// LockBase is the Table II "Base" rung and the Figure 4 "base"
// strategy: per-worker locks, top/bot comparison, 77 cycles inlined.
func LockBase() Profile {
	return Profile{
		Name:        "lock-base",
		SpawnPublic: 12,
		JoinPublic:  65, // sum 77: Table II "Base"
		StealProbe:  90,
		StealWork:   1700,
		JoinStolen:  900,
		UsesLock:    true,
		// Acquiring a remote worker's lock transfers a contended cache
		// line: expensive for the thief even when the pool turns out
		// to be empty — which is what peeking first avoids.
		LockAcquire: 250,
		LockHold:    600,
	}
}

// CilkPP models Cilk++ 4.3.4 per the paper: low-ish inlined overhead
// (134 cycles — cactus-stack frames from a free list, wrapper calls,
// memory fences) but a very expensive steal (31 050 cycles at 2p, over
// half spent in the kernel on lock contention, the rest coherence
// traffic), with thieves locking up to two descriptors and the
// victim's worker descriptor.
func CilkPP() Profile {
	return Profile{
		Name:        "cilk++",
		SpawnPublic: 60,
		JoinPublic:  74, // sum 134: Table III "Cilk++" inlined
		StealProbe:  500,
		StealWork:   19000,
		JoinStolen:  12050, // sum 31050: Table III Cilk++ @2p
		UsesLock:    true,
		LockAcquire: 300,
		LockHold:    9000,
	}
}

// TBB models Intel TBB 2.1 per the paper: free-list task allocation
// and a pointer deque give 323 cycles inlined; stealing costs 5 800
// cycles at 2p, index-synchronized with fences, no locks held long.
func TBB() Profile {
	return Profile{
		Name:        "tbb",
		SpawnPublic: 160,
		JoinPublic:  163, // sum 323: Table III "TBB" inlined
		StealProbe:  180,
		StealWork:   3700,
		JoinStolen:  2100, // sum 5800: Table III TBB @2p
	}
}

// OpenMP models the icc 11.0 OpenMP 3.0 task runtime per the paper:
// the heaviest inlined path (878 cycles — heap-allocated closures
// through a shared structure) and 4 830-cycle steals at 2p.
func OpenMP() Profile {
	return Profile{
		Name:        "openmp",
		SpawnPublic: 420,
		JoinPublic:  458, // sum 878: Table III "OpenMP" inlined
		StealProbe:  220,
		StealWork:   3000,
		JoinStolen:  1830, // sum 4830: Table III OpenMP @2p
		UsesLock:    true,
		LockAcquire: 120,
		LockHold:    700,
	}
}

// CyclesPerNS is the clock-rate assumption used when the harness
// relates virtual cycles to the native nanosecond measurements: the
// paper's machines run at 2.1–2.6 GHz; we use 2.5 GHz.
const CyclesPerNS = 2.5

// Sharded-topology per-hop penalties (sim.Topology defaults). The
// paper's 8-core Opteron is two 4-core sockets; published NUMA
// microbenchmarks on that generation put a remote-node cache-to-cache
// line transfer at roughly 1.5–2× the local latency (~100–130 extra
// cycles per line). A failed probe touches one remote line (the
// victim's bot/top indices): +120 cycles per hop. A successful steal
// moves the task descriptor and dirties the victim's indices — several
// line transfers plus the write-back, about half a local StealWork:
// +700 cycles per hop.
const (
	RemoteProbePenalty uint64 = 120
	RemoteStealPenalty uint64 = 700
)

// Profiles returns the four systems of the paper's comparison in
// presentation order.
func Profiles() []Profile {
	return []Profile{Wool(), CilkPP(), TBB(), OpenMP()}
}
