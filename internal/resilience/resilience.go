// Package resilience is the self-healing policy layer behind woolserve
// (DESIGN.md §17). internal/serve turns the paper's batch pools into a
// request-serving runtime; this package decides what the server does
// under *sustained* failure and overload, where the per-request
// mechanisms (poison-then-Reset, MaxPending) are the wrong shape:
//
//   - Breaker: a per-tenant circuit breaker (closed → open →
//     half-open over a sliding failure-rate window) that sheds a
//     persistently failing tenant fast, instead of burning a lane on
//     every doomed request.
//
//   - Estimator: an EWMA service-time estimator per (tenant, job
//     class) behind deadline-aware admission — a request whose
//     remaining deadline is below the estimated service time is
//     rejected up front, so doomed work never occupies a lane.
//
//   - Retrier: per-tenant retry budgets with jittered exponential
//     backoff for requests the caller marked retry-safe, so transient
//     failures heal without retries amplifying an outage.
//
//   - QuarantineConfig: the thresholds behind lane quarantine — a
//     lane whose failures streak, whose Reset fails, or whose probe
//     keeps failing is pulled from rotation and hot-replaced by the
//     serving layer (the team-rebuilding idea of arXiv:1012.5030
//     applied to bad lanes rather than shifting demand).
//
// Outcome classification is shared with the rest of the stack through
// the poolerr taxonomy (retryable / non-retryable / shed): breakers
// count retryable-class and unknown-class outcomes as failures, sheds
// and cancellations as neither success nor failure.
//
// Everything here is deliberately mechanism-only: the package holds
// state machines and accounting, takes time as an argument or an
// injected clock, derives jitter from a seeded splitmix64 stream
// (internal/chaos.RNG), and never spawns goroutines — the serving
// layer owns scheduling, so tests drive these types deterministically.
package resilience

import "time"

// Options bundles the server-wide resilience defaults. The zero value
// enables every subsystem with the defaults documented on each config;
// the Disable* switches turn a subsystem off wholesale, and per-tenant
// TenantConfig overrides refine the rest.
type Options struct {
	// DisableBreaker turns off per-tenant circuit breaking.
	DisableBreaker bool
	// DisableDeadline turns off deadline-aware admission.
	DisableDeadline bool
	// DisableRetry turns off server-side retries (callers still mark
	// tickets retry-safe; the mark is simply ignored).
	DisableRetry bool
	// DisableQuarantine turns off lane quarantine; a failed Reset then
	// falls back to a plain in-place pool replacement.
	DisableQuarantine bool

	// Breaker is the default breaker config (zero fields defaulted).
	Breaker BreakerConfig
	// Estimator is the default estimator config (zero fields defaulted).
	Estimator EstimatorConfig
	// Retry is the default retry config (zero fields defaulted).
	Retry RetryConfig
	// Quarantine is the lane-quarantine config (zero fields defaulted).
	Quarantine QuarantineConfig

	// Seed seeds the retry-jitter streams; 0 means a fixed default so
	// runs are replayable by construction.
	Seed uint64
}

// TenantConfig overrides the server-wide resilience defaults for one
// tenant (serve.Tenant.Resilience): nil fields inherit the defaults.
type TenantConfig struct {
	// Breaker overrides the tenant's breaker config.
	Breaker *BreakerConfig
	// Retry overrides the tenant's retry config.
	Retry *RetryConfig
	// Estimator overrides the tenant's estimator config.
	Estimator *EstimatorConfig
}

// QuarantineConfig tunes when the serving layer pulls a lane from
// rotation and hot-replaces its pool.
type QuarantineConfig struct {
	// FailureStreak quarantines a lane after this many consecutive
	// failure-class requests with no success in between. Default 8;
	// <0 disables the streak trigger (Reset failures still trigger).
	FailureStreak int
	// ProbeBackoff is the wait between failed probe attempts on a
	// quarantined lane. Default 10ms.
	ProbeBackoff time.Duration
}

// Defaulted fills zero fields with the defaults.
func (q QuarantineConfig) Defaulted() QuarantineConfig {
	if q.FailureStreak == 0 {
		q.FailureStreak = 8
	}
	if q.ProbeBackoff <= 0 {
		q.ProbeBackoff = 10 * time.Millisecond
	}
	return q
}
