package ssf

import (
	"runtime"
	"testing"

	"gowool/internal/core"
	"gowool/internal/costmodel"
	"gowool/internal/sched"
	"gowool/internal/sim"
)

func TestFibString(t *testing.T) {
	cases := map[int64]string{
		0: "a", 1: "b", 2: "ba", 3: "bab", 4: "babba", 5: "babbabab",
	}
	for n, want := range cases {
		if got := FibString(n); got != want {
			t.Errorf("FibString(%d) = %q, want %q", n, got, want)
		}
	}
	// |s_n| follows the Fibonacci numbers.
	if got := len(FibString(12)); got != 233 {
		t.Errorf("|s_12| = %d, want 233", got)
	}
}

func TestPositionBruteForce(t *testing.T) {
	s := FibString(7)
	n := int64(len(s))
	for i := int64(0); i < n; i++ {
		best, _ := Position(s, i)
		// Brute force reference.
		var want int64
		for j := int64(0); j < n; j++ {
			if j == i {
				continue
			}
			var k int64
			for i+k < n && j+k < n && s[i+k] == s[j+k] {
				k++
			}
			if k > want {
				want = k
			}
		}
		if best != want {
			t.Errorf("Position(%d) = %d, want %d", i, best, want)
		}
	}
}

func TestWoolMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	s := FibString(11)
	want := Serial(s, nil)

	wk := &Work{S: s, Out: make([]int64, len(s))}
	p := core.NewPool(core.Options{Workers: 4, PrivateTasks: true})
	defer p.Close()
	if got := RunWool(p, NewWool(), wk); got != want {
		t.Errorf("wool checksum = %d, want %d", got, want)
	}
	serialOut := make([]int64, len(s))
	Serial(s, serialOut)
	for i := range serialOut {
		if wk.Out[i] != serialOut[i] {
			t.Fatalf("out[%d] = %d, want %d", i, wk.Out[i], serialOut[i])
		}
	}
}

func TestOMPMatchesSerial(t *testing.T) {
	// The scan is irregular, so the OpenMP adapter runs Job as a
	// dynamic work-sharing loop; check that path against the serial
	// reference.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	s := FibString(10)
	want := Serial(s, nil)
	omp, ok := sched.Lookup("omp")
	if !ok {
		t.Fatal("omp not registered")
	}
	p := omp.NewPool(sched.Options{Workers: 4})
	defer p.Close()
	if got := p.RunRange(Job(&Work{S: s}, 1)); got != want {
		t.Errorf("omp checksum = %d, want %d", got, want)
	}
}

func TestSimMatchesSerial(t *testing.T) {
	s := FibString(10)
	want := Serial(s, nil)
	wk := &Work{S: s}
	res := sim.Run(sim.Config{Procs: 4, Kind: sim.KindDirectStack, Costs: costmodel.Wool()},
		NewSim(), sim.Args{A0: 0, A1: int64(len(s)), Ctx: wk})
	if res.Value != want {
		t.Errorf("sim checksum = %d, want %d", res.Value, want)
	}
}

func TestSimWorkBallpark(t *testing.T) {
	// Paper Table I: ssf n=12 has RepSz ≈ 552k cycles. Our comparison
	// model should land within a factor of ~2.
	wk := &Work{S: FibString(12)}
	res := sim.Run(sim.Config{Procs: 1, Kind: sim.KindDirectStack, Costs: costmodel.Wool(),
		TrackSpan: true}, NewSim(), sim.Args{A0: 0, A1: int64(len(wk.S)), Ctx: wk})
	if res.Work < 250_000 || res.Work > 1_200_000 {
		t.Errorf("ssf(12) work model = %d cycles, want ≈ 552k ± 2x", res.Work)
	}
}
