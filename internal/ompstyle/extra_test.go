package ompstyle

import (
	"runtime"
	"testing"
	"testing/quick"
)

func TestNestedParallelFor(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4})
	defer p.Close()
	const n = 24
	out := make([][]int64, n)
	p.Run(func(tc *Context) int64 {
		// Nested regions must nest through task contexts: each outer
		// task runs an inner ParallelFor on its own context. (Waiting
		// on an ancestor's context from inside one of its descendants
		// would deadlock — the descendant would wait for itself.)
		for i := int64(0); i < n; i++ {
			i := i
			tc.SpawnTask(func(tc2 *Context) {
				row := make([]int64, n)
				tc2.ParallelFor(0, n, Static, 0, func(j int64) {
					row[j] = i*n + j
				})
				out[i] = row
			})
		}
		tc.Taskwait()
		return 0
	})
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			if out[i][j] != i*n+j {
				t.Fatalf("out[%d][%d] = %d", i, j, out[i][j])
			}
		}
	}
}

func TestMaxQueuedHighWater(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	p.Run(func(tc *Context) int64 {
		for i := 0; i < 50; i++ {
			tc.SpawnTask(func(*Context) {})
		}
		tc.Taskwait()
		return 0
	})
	if st := p.Stats(); st.MaxQueued < 50 {
		t.Errorf("MaxQueued = %d, want >= 50", st.MaxQueued)
	}
}

func TestRunOnClosedPanics(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Run(func(tc *Context) int64 { return 0 })
}

func TestImplicitBarrierAtRunEnd(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4})
	defer p.Close()
	done := 0 // plain: the barrier must order this
	p.Run(func(tc *Context) int64 {
		for i := 0; i < 200; i++ {
			tc.SpawnTask(func(*Context) {})
		}
		// No explicit Taskwait: Run's implicit barrier must cover it.
		done = 1
		return 0
	})
	if done != 1 {
		t.Fatal("unreachable")
	}
	if st := p.Stats(); st.Executed != st.Spawns {
		t.Errorf("executed %d of %d spawned after Run returned", st.Executed, st.Spawns)
	}
}

func TestQuickTreeEquivalence(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	err := quick.Check(func(nRaw, wRaw uint8) bool {
		n := int64(nRaw % 14)
		workers := int(wRaw%4) + 1
		p := NewPool(Options{Workers: workers})
		defer p.Close()
		return p.Run(func(tc *Context) int64 { return ompFib(tc, n) }) == serialFib(n)
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Error(err)
	}
}
