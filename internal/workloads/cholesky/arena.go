// Package cholesky is the paper's sparse matrix factorization
// benchmark, taken (structurally) from the Cilk-5 distribution: a
// quadtree-represented sparse symmetric positive-definite matrix is
// factored as A = L·Lᵀ by divide and conquer, with dense BLOCK×BLOCK
// kernels at the quadtree leaves and fill-in allocated on the fly.
// Parameters are the number of matrix rows and the number of nonzero
// elements, as in Table I.
//
// The quadtree lives in an arena of index-linked nodes so that task
// arguments are plain integers (they travel in the schedulers'
// fixed-size task descriptors without allocation) and concurrent
// fill-in allocation is a single atomic counter bump.
package cholesky

import (
	"fmt"
	"sync/atomic"
)

// Block is the dense leaf tile edge; leaves are Block×Block.
const Block = 16

// BlockWords is the number of float64 in one leaf tile.
const BlockWords = Block * Block

// Quadrant indices within a node: row-major 2×2.
const (
	q00 = 0 // top-left (diagonal)
	q01 = 1 // top-right (always nil in lower-triangular nodes)
	q10 = 2 // bottom-left
	q11 = 3 // bottom-right (diagonal)
)

// Node is one quadtree node. Internal nodes use Child (0 = nil
// subtree); leaves have BlockIdx != 0 pointing at their tile.
type Node struct {
	Child    [4]int32
	BlockIdx int32 // 1-based index into the arena's tile slab; 0 = none
}

// Arena holds the quadtree storage: nodes and dense tiles, both
// allocated by atomic counter bump so concurrent factorization tasks
// can create fill-in without locks.
type Arena struct {
	Size int64 // padded matrix edge (power of two, multiple of Block)

	nodes  []Node
	nNodes atomic.Int64

	tiles  []float64 // nTiles × BlockWords
	nTiles atomic.Int64
}

// NewArena creates an arena for a size×size matrix (size is rounded up
// to a power of two ≥ Block) with the given node and tile capacities.
func NewArena(n int64, nodeCap, tileCap int) *Arena {
	size := int64(Block)
	for size < n {
		size *= 2
	}
	ar := &Arena{
		Size:  size,
		nodes: make([]Node, nodeCap),
		tiles: make([]float64, int64(tileCap)*BlockWords),
	}
	ar.nNodes.Store(1) // index 0 is the nil sentinel
	return ar
}

// NewNode allocates a fresh (all-nil) node and returns its index.
func (ar *Arena) NewNode() int32 {
	i := ar.nNodes.Add(1) - 1
	if int(i) >= len(ar.nodes) {
		panic(fmt.Sprintf("cholesky: node arena exhausted (%d); raise the capacity", len(ar.nodes)))
	}
	return int32(i)
}

// NewTile allocates a zeroed dense tile and returns its 1-based index.
func (ar *Arena) NewTile() int32 {
	i := ar.nTiles.Add(1) - 1
	if (i+1)*BlockWords > int64(len(ar.tiles)) {
		panic(fmt.Sprintf("cholesky: tile arena exhausted (%d tiles); raise the capacity", len(ar.tiles)/BlockWords))
	}
	return int32(i) + 1
}

// NewLeaf allocates a leaf node with a fresh zero tile.
func (ar *Arena) NewLeaf() int32 {
	n := ar.NewNode()
	ar.nodes[n].BlockIdx = ar.NewTile()
	return n
}

// Node returns the node at index i (i != 0).
func (ar *Arena) Node(i int32) *Node { return &ar.nodes[i] }

// Tile returns the tile of leaf node i as a BlockWords-long slice.
func (ar *Arena) Tile(i int32) []float64 {
	b := int64(ar.nodes[i].BlockIdx - 1)
	return ar.tiles[b*BlockWords : (b+1)*BlockWords : (b+1)*BlockWords]
}

// NodesInUse returns the number of allocated nodes (excluding the nil
// sentinel) — a fill-in metric.
func (ar *Arena) NodesInUse() int64 { return ar.nNodes.Load() - 1 }

// TilesInUse returns the number of allocated tiles.
func (ar *Arena) TilesInUse() int64 { return ar.nTiles.Load() }

// set stores val at (row, col), descending from root and allocating
// nodes on the path. Build-time only (single goroutine).
func (ar *Arena) set(root int32, size, row, col int64, val float64) {
	for size > Block {
		half := size / 2
		q := 0
		if row >= half {
			q += 2
			row -= half
		}
		if col >= half {
			q++
			col -= half
		}
		n := ar.Node(root)
		if n.Child[q] == 0 {
			if half == Block {
				n.Child[q] = ar.NewLeaf()
			} else {
				n.Child[q] = ar.NewNode()
			}
		}
		root = n.Child[q]
		size = half
	}
	ar.Tile(root)[row*Block+col] = val
}

// get reads (row, col), returning 0 for absent blocks.
func (ar *Arena) get(root int32, size, row, col int64) float64 {
	for size > Block {
		if root == 0 {
			return 0
		}
		half := size / 2
		q := 0
		if row >= half {
			q += 2
			row -= half
		}
		if col >= half {
			q++
			col -= half
		}
		root = ar.Node(root).Child[q]
		size = half
	}
	if root == 0 {
		return 0
	}
	return ar.Tile(root)[row*Block+col]
}

// Matrix is a generated sparse SPD matrix: the arena plus its root
// node and logical dimension.
type Matrix struct {
	Ar   *Arena
	Root int32
	N    int64 // logical rows (≤ Ar.Size)
}

// Get reads element (row, col) of the lower triangle.
func (m *Matrix) Get(row, col int64) float64 { return m.Ar.get(m.Root, m.Ar.Size, row, col) }

// Generate builds a random sparse symmetric positive-definite matrix
// with n rows and about nonzeros off-diagonal entries in the lower
// triangle (duplicates overwrite), as the Cilk-5 benchmark does. The
// diagonal is made strongly dominant so the factorization exists; the
// padding region (n..Size) carries an identity diagonal.
func Generate(n, nonzeros int64, seed uint64) *Matrix {
	// Capacity heuristic: fill-in grows the tree well beyond the
	// initial nonzeros; size generously (indices are cheap).
	perDim := int(n/Block) + 1
	nodeCap := 64*perDim*perDim + 4096
	tileCap := 32*perDim*perDim + 2048
	ar := NewArena(n, nodeCap, tileCap)
	root := ar.NewNode()
	if ar.Size == Block {
		// Single-tile matrix: the root must be a leaf.
		ar.nodes[root].BlockIdx = ar.NewTile()
	}

	m := &Matrix{Ar: ar, Root: root, N: n}
	diag := float64(n) + 16
	for i := int64(0); i < n; i++ {
		ar.set(root, ar.Size, i, i, diag)
	}
	for i := n; i < ar.Size; i++ {
		ar.set(root, ar.Size, i, i, 1)
	}
	rng := seed | 1
	for k := int64(0); k < nonzeros; k++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		r := int64((rng >> 16) % uint64(n))
		rng = rng*6364136223846793005 + 1442695040888963407
		c := int64((rng >> 16) % uint64(n))
		if r == c {
			continue // diagonal already set
		}
		if r < c {
			r, c = c, r
		}
		val := 0.5 + float64((rng>>40)&0xff)/512.0
		ar.set(root, ar.Size, r, c, val)
	}
	return m
}

// ToDense expands the lower triangle into a full symmetric dense
// matrix of dimension m.N (for verification on small inputs).
func (m *Matrix) ToDense() [][]float64 {
	d := make([][]float64, m.N)
	for i := range d {
		d[i] = make([]float64, m.N)
	}
	for i := int64(0); i < m.N; i++ {
		for j := int64(0); j <= i; j++ {
			v := m.Get(i, j)
			d[i][j] = v
			d[j][i] = v
		}
	}
	return d
}

// ToDenseLower expands the lower triangle only (upper left as zeros).
func (m *Matrix) ToDenseLower() [][]float64 {
	d := make([][]float64, m.N)
	for i := range d {
		d[i] = make([]float64, m.N)
	}
	for i := int64(0); i < m.N; i++ {
		for j := int64(0); j <= i; j++ {
			d[i][j] = m.Get(i, j)
		}
	}
	return d
}
