// Package tabulate renders the experiment results as aligned text
// tables and simple ASCII series plots, one per paper table or figure.
package tabulate

import (
	"fmt"
	"io"
	"strings"
)

// Table is a column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
	notes   []string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Row appends a row; values are formatted with %v, float64 compactly.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Note appends a footnote line printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	var b strings.Builder
	for i, h := range t.Headers {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], h)
	}
	fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for _, r := range t.rows {
		b.Reset()
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", width, c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	for _, n := range t.notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Series is one line of a figure: a name and y-values over the shared
// x-axis of a Plot.
type Series struct {
	Name   string
	Values []float64
}

// Plot renders figure data as a numeric table plus a coarse ASCII
// chart — enough to read off who wins, by what factor, and where
// curves cross, which is what the paper's figures communicate.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	series []Series
}

// NewPlot creates a plot over the shared x values.
func NewPlot(title, xlabel, ylabel string, x []float64) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, X: x}
}

// Add appends a series (must have len(values) == len(X)).
func (p *Plot) Add(name string, values []float64) {
	p.series = append(p.series, Series{Name: name, Values: values})
}

// Render writes the numeric table and chart to w.
func (p *Plot) Render(w io.Writer) {
	headers := append([]string{p.XLabel}, nil...)
	for _, s := range p.series {
		headers = append(headers, s.Name)
	}
	tb := New(fmt.Sprintf("%s  (y: %s)", p.Title, p.YLabel), headers...)
	for i, x := range p.X {
		cells := []any{formatFloat(x)}
		for _, s := range p.series {
			if i < len(s.Values) {
				cells = append(cells, s.Values[i])
			} else {
				cells = append(cells, "-")
			}
		}
		tb.Row(cells...)
	}
	tb.Render(w)
	p.renderChart(w)
}

const chartHeight = 12
const chartWidth = 60

// renderChart draws the series as a coarse ASCII chart, one marker
// letter per series.
func (p *Plot) renderChart(w io.Writer) {
	if len(p.series) == 0 || len(p.X) < 2 {
		return
	}
	ymax := 0.0
	for _, s := range p.series {
		for _, v := range s.Values {
			if v > ymax {
				ymax = v
			}
		}
	}
	if ymax <= 0 {
		return
	}
	grid := make([][]byte, chartHeight)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", chartWidth))
	}
	xmin, xmax := p.X[0], p.X[len(p.X)-1]
	if xmax == xmin {
		return
	}
	markers := "ABCDEFGHIJ"
	for si, s := range p.series {
		m := markers[si%len(markers)]
		for i, v := range s.Values {
			col := int((p.X[i] - xmin) / (xmax - xmin) * float64(chartWidth-1))
			row := chartHeight - 1 - int(v/ymax*float64(chartHeight-1))
			if row >= 0 && row < chartHeight && col >= 0 && col < chartWidth {
				grid[row][col] = m
			}
		}
	}
	fmt.Fprintf(w, "  %s\n", formatFloat(ymax))
	for _, line := range grid {
		fmt.Fprintf(w, "  |%s\n", string(line))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", chartWidth))
	fmt.Fprintf(w, "   %s: %s .. %s", p.XLabel, formatFloat(xmin), formatFloat(xmax))
	fmt.Fprint(w, "   legend:")
	for si, s := range p.series {
		fmt.Fprintf(w, " %c=%s", markers[si%len(markers)], s.Name)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w)
}
