// Package perfbudget is the analysistest fixture for the perfbudget
// pass: woolvet:inline functions must actually inline and
// woolvet:noescape functions must keep every value on the stack,
// per the compiler's own -gcflags=-m decisions. The pinned and
// escaping cases below are the proof that the pass fails when the
// fast path regresses.
package perfbudget

type payload struct{ a, b, c, d int64 }

// fastPath is inliner-sized; the annotation holds.
//
// woolvet:inline
func fastPath(x int64) int64 { return x + 1 }

// pinned is artificially de-inlined; perfbudget must quote the
// compiler's reason.
//
// woolvet:inline
//
//go:noinline
func pinned(x int64) int64 { return x + 1 } // want `woolvet:inline pinned does not inline: marked go:noinline`

// tooBig exceeds the inliner budget the honest way.
//
// woolvet:inline
func tooBig(p *payload) int64 { // want `woolvet:inline tooBig does not inline: function too complex`
	s := int64(0)
	s += p.a*3 + p.b*5 + p.c*7 + p.d*11
	s ^= p.a<<1 | p.b<<2 | p.c<<3 | p.d<<4
	s -= p.a/3 + p.b/5 + p.c/7 + p.d/11
	s *= p.a%13 + p.b%17 + p.c%19 + p.d%23
	s += p.a*p.b + p.c*p.d + p.a*p.c + p.b*p.d
	s ^= p.a>>1 ^ p.b>>2 ^ p.c>>3 ^ p.d>>4
	s -= p.a&p.b | p.c&p.d | p.a&p.d | p.b&p.c
	s *= p.a + p.b + p.c + p.d + 1
	s += s<<3 ^ s>>5 + s*29 - s/31
	s ^= s<<7 | s>>9 ^ s*37 + s/41
	return s
}

// staysOnStack allocates nothing.
//
// woolvet:noescape
func staysOnStack() int64 {
	v := payload{1, 2, 3, 4}
	return v.a + v.d
}

// escapes leaks a local to the heap; perfbudget must flag the
// compiler's moved-to-heap decision.
//
// woolvet:noescape
func escapes() *payload {
	v := payload{1, 2, 3, 4} // want `woolvet:noescape escapes: v escapes to heap`
	return &v
}

var sink any

// boxed forces an interface allocation.
//
// woolvet:noescape
func boxed(x int64) {
	v := payload{x, x, x, x} // want `woolvet:noescape boxed: v escapes to heap`
	sink = &v
}

// Keep the unexported functions alive so the compiler records
// decisions for them.
var keep = []any{fastPath, pinned, tooBig, staysOnStack, escapes, boxed}
