package main

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"gowool/internal/core"
	"gowool/internal/sched"
	"gowool/internal/tabulate"
	"gowool/internal/workloads/fibw"
	"gowool/internal/workloads/stress"
)

// runNative executes the selected workload on the real scheduler and
// prints the live counter set. The default (-sched wool) runs the
// hand-written core kernels and prints the full core counter set,
// including the idle-engine (Parks, Wakes) and victim-retention
// (RetainedSteals) columns; any other registered scheduler runs the
// generic job and prints the normalized counters.
func runNative() error {
	if runtime.GOMAXPROCS(0) < *workers {
		prev := runtime.GOMAXPROCS(*workers)
		defer runtime.GOMAXPROCS(prev)
	}
	if *schedName != "wool" {
		return runNativeRegistry()
	}
	p := core.NewPool(core.Options{Workers: *workers, PrivateTasks: true,
		MaxIdleSleep: 50 * time.Microsecond})
	defer p.Close()

	var name string
	t0 := time.Now()
	switch *workload {
	case "", "fib":
		fib := fibw.NewWool()
		name = fmt.Sprintf("fib(%d)", *n)
		for i := int64(0); i < *reps; i++ {
			got := p.Run(func(w *core.Worker) int64 { return fib.Call(w, *n) })
			if want := fibw.Serial(*n); got != want {
				return fmt.Errorf("fib(%d) = %d, want %d", *n, got, want)
			}
			// Quiesce between repetitions so parks/wakes show up.
			deadline := time.Now().Add(200 * time.Millisecond)
			for p.ParkedWorkers() < *workers-1 && time.Now().Before(deadline) {
				time.Sleep(100 * time.Microsecond)
			}
		}
	case "stress":
		tree := stress.NewWool()
		name = fmt.Sprintf("stress(h=%d,i=%d)x%d", *height, *iters, *reps)
		got := stress.RunWool(p, tree, *height, *iters, *reps)
		if want := stress.SerialReps(*height, *iters, *reps); got != want {
			return fmt.Errorf("stress = %d, want %d", got, want)
		}
	default:
		return fmt.Errorf("-native supports fib and stress, not %q", *workload)
	}
	wall := time.Since(t0)

	st := p.Stats()
	t := tabulate.New(fmt.Sprintf("native counters — %s, %d workers (%v)", name, *workers, wall.Round(time.Millisecond)),
		"counter", "value")
	t.Row("spawns", st.Spawns)
	t.Row("joins inlined private", st.JoinsInlinedPrivate)
	t.Row("joins inlined public", st.JoinsInlinedPublic)
	t.Row("joins stolen", st.JoinsStolen)
	t.Row("steals", st.Steals)
	t.Row("steal attempts", st.StealAttempts)
	t.Row("leap steals", st.LeapSteals)
	t.Row("backoffs", st.Backoffs)
	t.Row("publications", st.Publications)
	t.Row("privatizations", st.Privatizations)
	t.Row("retained steals", st.RetainedSteals)
	t.Row("parks", st.Parks)
	t.Row("wakes", st.Wakes)
	t.Row("parked now", p.ParkedWorkers())
	t.Render(os.Stdout)
	return nil
}

// runNativeRegistry runs the workload as a generic job on a registered
// scheduler and prints the normalized Stats mapping (plus the
// backend's extra counters).
func runNativeRegistry() error {
	s, ok := sched.Lookup(*schedName)
	if !ok {
		return fmt.Errorf("unknown scheduler %q (registered: %s)",
			*schedName, strings.Join(sched.Names(), ", "))
	}
	p := s.NewPool(sched.Options{Workers: *workers, MaxIdleSleep: 50 * time.Microsecond})
	defer p.Close()

	var name string
	t0 := time.Now()
	switch *workload {
	case "", "fib":
		name = fmt.Sprintf("fib(%d)", *n)
		j := fibw.Job(*n, *reps)
		if got, want := p.RunRec(j), j.Serial(); got != want {
			return fmt.Errorf("fib(%d)x%d = %d, want %d", *n, *reps, got, want)
		}
	case "stress":
		name = fmt.Sprintf("stress(h=%d,i=%d)x%d", *height, *iters, *reps)
		got := p.RunRec(stress.Job(*height, *iters, *reps))
		if want := stress.SerialReps(*height, *iters, *reps); got != want {
			return fmt.Errorf("stress = %d, want %d", got, want)
		}
	default:
		return fmt.Errorf("-native supports fib and stress, not %q", *workload)
	}
	wall := time.Since(t0)

	t := tabulate.New(fmt.Sprintf("native counters — %s on %s, %d workers (%v)",
		name, s.Name(), *workers, wall.Round(time.Millisecond)), "counter", "value")
	if !s.Caps().Stats {
		t.Note("%s keeps no counters (Caps.Stats is false)", s.Name())
		t.Render(os.Stdout)
		return nil
	}
	st := p.Stats()
	t.Row("spawns", st.Spawns)
	t.Row("joins inlined", st.JoinsInlined)
	t.Row("joins stolen", st.JoinsStolen)
	t.Row("steals", st.Steals)
	t.Row("steal attempts", st.StealAttempts)
	t.Row("backoffs", st.Backoffs)
	for _, k := range st.ExtraKeys() {
		t.Row(strings.ReplaceAll(k, "_", " "), st.Extra[k])
	}
	t.Render(os.Stdout)
	return nil
}
