package experiments

import (
	"io"

	"gowool/internal/tabulate"
)

func init() {
	register(Experiment{
		ID:    "xscale",
		Paper: "extension",
		Title: "Beyond the paper's 8 cores: the same workloads at up to 64 processors",
		Run:   runXScale,
	})
}

// runXScale extends the evaluation in the direction the paper's
// introduction motivates: "a program that appears coarse-grained on
// eight cores may well look a lot more fine-grained on sixty four."
// It runs a coarse (mm 256) and a fine (stress 256-cycle leaves)
// workload on all four systems up to 64 virtual processors, showing
// the coarse workload's cross-over into fine-grained behaviour — and
// the load-balancing granularity G_L collapsing as processors grow.
func runXScale(sc Scale, w io.Writer) error {
	procs := []int{1, 2, 4, 8, 16, 32, 64}
	if sc == Quick {
		procs = []int{1, 4, 16, 64}
	}

	workloads := []Workload{
		mmWL(256, 4),
		stressWL(256, 9, 64),
	}
	for _, wl := range workloads {
		root, args := wl.Root()
		span := serialWork(root, args)

		plot := tabulate.NewPlot("Extension — "+wl.Name()+" beyond 8 processors",
			"procs", "absolute speedup", floatProcs(procs))
		systems := Systems()
		// At 64 processors the trip-wire publication rate itself can
		// bottleneck work distribution; an all-public Wool series makes
		// that private-task trade-off visible.
		woolPublic := systems[0]
		woolPublic.Name = "Wool (no private)"
		woolPublic.Private = false
		systems = append(systems, woolPublic)
		for _, sys := range systems {
			vals := make([]float64, len(procs))
			for i, p := range procs {
				root, args := wl.Root()
				res := sys.run(p, root, args)
				vals[i] = float64(span.Work) / float64(res.Makespan)
			}
			plot.Add(sys.Name, vals)
		}
		plot.Render(w)

		// G_L shrinks as processors grow: the paper's Table I trend,
		// extended.
		t := tabulate.New("G_L(p) for "+wl.Name()+" [kcycles/steal]",
			"procs", "G_L", "steals")
		wool := Systems()[0]
		for _, p := range procs[1:] {
			root, args := wl.Root()
			res := wool.run(p, root, args)
			if res.Total.Steals == 0 {
				t.Row(p, "inf", 0)
				continue
			}
			t.Row(p, float64(span.Work)/float64(res.Total.Steals)/1000, res.Total.Steals)
		}
		t.Render(w)
	}
	return nil
}
