package stealmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPaperMMExample replays the paper's own instantiation (Section
// IV-D2a): mm(64) has W = 976k cycles and ~17 steals at 8 processors;
// with Wool's costs (C2 = 2200, C8 = 10400) the model gives ≈ 7.1.
func TestPaperMMExample(t *testing.T) {
	est := Predict(976_000, 17, 2200, 10400, 8)
	if math.Abs(est.SpeedupP-7.1) > 0.3 {
		t.Errorf("model speedup = %.2f, paper computes 7.1", est.SpeedupP)
	}
	// Cilk++ at 8 procs: C2 = 31050, C8 = 110400 → paper's 3.2.
	est = Predict(976_000, 17, 31050, 110400, 8)
	if math.Abs(est.SpeedupP-3.2) > 0.4 {
		t.Errorf("cilk model speedup = %.2f, paper computes 3.2", est.SpeedupP)
	}
}

func TestNoRebalanceFloor(t *testing.T) {
	// Fewer steals than p−1 means no rebalancing term (clamped at 0).
	a := Predict(1e6, 3, 2000, 8000, 8)
	b := Predict(1e6, 7, 2000, 8000, 8)
	if a.TimeP != b.TimeP {
		t.Errorf("steals below p-1 must clamp: %.0f vs %.0f", a.TimeP, b.TimeP)
	}
}

func TestQuickModelProperties(t *testing.T) {
	err := quick.Check(func(wRaw, sRaw, c2Raw, cpRaw uint16, pRaw uint8) bool {
		w := float64(wRaw)*1000 + 10000
		s := float64(sRaw % 200)
		c2 := float64(c2Raw%5000) + 100
		cp := c2 + float64(cpRaw%20000)
		p := int(pRaw%7) + 2

		est := Predict(w, s, c2, cp, p)
		// Speedup bounded by p and positive.
		if est.SpeedupP <= 0 || est.SpeedupP > float64(p) {
			return false
		}
		// More steals never speed things up in the model.
		worse := Predict(w, s+50, c2, cp, p)
		return worse.SpeedupP <= est.SpeedupP+1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestCostMonotone(t *testing.T) {
	base := Predict(1e6, 30, 2000, 8000, 8)
	dearer := Predict(1e6, 30, 4000, 8000, 8)
	if dearer.SpeedupP >= base.SpeedupP {
		t.Error("higher C2 must lower modelled speedup")
	}
	dearerP := Predict(1e6, 30, 2000, 16000, 8)
	if dearerP.SpeedupP >= base.SpeedupP {
		t.Error("higher Cp must lower modelled speedup")
	}
}
