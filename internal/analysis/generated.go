package analysis

import (
	"os"
	"strings"

	"gowool/internal/gen"
)

// Generated enforces woolgen output provenance: a file carrying the
// "//woolvet:generated sha256:" header must hash to its recorded
// value, so hand-edits to generated code are flagged at lint time
// instead of being silently overwritten by the next `go generate`. The
// complementary direction — a committed output going stale after a
// generator change — is covered by the internal/gen drift tests, which
// regenerate from the declared signatures and byte-compare.
//
// Files named *_gen.go must carry the header: an unsealed file with
// the generated-output naming convention is either hand-written code
// masquerading as output or output produced outside woolgen, and both
// defeat the provenance check.
var Generated = &Analyzer{
	Name: "generated",
	Doc:  "woolgen provenance headers verify: generated files are unedited and *_gen.go files are sealed",
	Run:  runGenerated,
}

func runGenerated(pass *Pass) {
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		name := tf.Name()
		src, err := os.ReadFile(name)
		if err != nil {
			// Sources not backed by readable files (in-memory loads)
			// have nothing to verify.
			continue
		}
		found, verr := gen.Verify(src)
		switch {
		case verr != nil:
			pass.Report(f.Name.Pos(),
				"generated file was hand-edited: %v; revert the edit or regenerate with `go generate` (changes belong in the generator or the hand-written bodies)", verr)
		case !found && strings.HasSuffix(name, "_gen.go"):
			pass.Report(f.Name.Pos(),
				"file follows the *_gen.go generated-output convention but carries no %sprovenance header; emit it through woolgen or rename it", gen.MarkerPrefix)
		}
	}
}
