package experiments

import (
	"io"
	"time"

	"gowool/internal/core"
	"gowool/internal/costmodel"
	"gowool/internal/sched"
	"gowool/internal/tabulate"
	"gowool/internal/workloads/fibw"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Paper: "Table II",
		Title: "Optimizing inlined tasks: the single-processor fib ladder (native measurement)",
		Run:   runTable2,
	})
}

// measureMin runs f reps times and returns the minimum wall time — the
// standard way to strip scheduler noise from a deterministic kernel.
func measureMin(reps int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

// perTaskNS converts a run time to per-task overhead over the serial
// run: (T1 − T_S)/N_T in nanoseconds (paper Table II methodology: "the
// relevant comparison [is] a procedure call").
func perTaskNS(t1, ts time.Duration, tasks int64) float64 {
	return float64(t1-ts) / float64(tasks)
}

// runTable2 reproduces Table II natively on this host: the
// single-processor execution-time ladder of fib under progressively
// cheaper join synchronization. Overheads are reported per task in ns
// and in cycle equivalents at 2.5 GHz for comparison with the paper's
// 77/29/19/3-cycle ladder. The host's single core is exactly the
// paper's measurement condition here (one worker, no thieves).
func runTable2(sc Scale, w io.Writer) error {
	n := int64(25)
	reps := 3
	if sc == Full {
		n, reps = 30, 5
	}
	tasks := fibw.Tasks(n)

	serial := measureMin(reps, func() { fibw.Serial(n) })

	// Base: per-worker locks, top/bot comparison — the registry's
	// generic fib port on the lock ladder.
	baseRun, baseClose := registryFibRunner("locksched")
	base := measureMin(reps, func() { baseRun(n) })
	baseClose()

	// Synchronize on task: atomic exchange on the descriptor state,
	// but the generic (wrapper) join.
	syncPool := core.NewPool(core.Options{Workers: 1})
	genFib := fibw.NewWoolGenericJoin()
	syncOnTask := measureMin(reps, func() {
		syncPool.Run(func(w *core.Worker) int64 { return genFib.Call(w, n) })
	})

	// Task-specific join: the direct call on the inline path. In this
	// implementation the private-task check is always compiled in, so
	// this row doubles as the paper's "private tasks (no private)".
	woolFib := fibw.NewWool()
	taskJoin := measureMin(reps, func() {
		syncPool.Run(func(w *core.Worker) int64 { return woolFib.Call(w, n) })
	})
	syncPool.Close()

	// Private tasks, all private: one worker never trips the wire, so
	// after the initial public descriptors everything takes the
	// no-atomics path.
	privPool := core.NewPool(core.Options{Workers: 1, PrivateTasks: true})
	allPrivate := measureMin(reps, func() {
		privPool.Run(func(w *core.Worker) int64 { return woolFib.Call(w, n) })
	})
	st := privPool.Stats()
	privPool.Close()

	t := tabulate.New(
		"Table II — optimizing inlined tasks; single-processor fib ladder (native)",
		"version", "time[ms]", "overhead[ns/task]", "overhead[cyc@2.5GHz]", "paper[cyc]",
	)
	row := func(name string, d time.Duration, paper string) {
		ns := perTaskNS(d, serial, tasks)
		t.Row(name, float64(d.Microseconds())/1000, ns, ns*costmodel.CyclesPerNS, paper)
	}
	row("base (locks)", base, "77")
	row("synchronize on task", syncOnTask, "29")
	row("task specific join", taskJoin, "19")
	row("private tasks (all private)", allPrivate, "3")
	t.Row("serial", float64(serial.Microseconds())/1000, 0.0, 0.0, "0")
	t.Note("fib(%d), %d tasks, min of %d runs; private joins: %d/%d",
		n, tasks, reps, st.JoinsInlinedPrivate, st.Joins())
	t.Note("'task specific join' is also the paper's 'private tasks (no private)' row here: the privacy check is always compiled in")
	t.Render(w)
	return nil
}

// nativeFibOverheadNS measures the per-task inlined overhead of a
// scheduler's native fib against the serial fib — the Table III
// "Inlined" methodology. Shared by table3.
func nativeFibOverheadNS(n int64, reps int, run func(n int64) int64) float64 {
	serial := measureMin(reps, func() { fibw.Serial(n) })
	t1 := measureMin(reps, func() { run(n) })
	return perTaskNS(t1, serial, fibw.Tasks(n))
}

// Native single-worker fib runners for the inlined-overhead columns.
//
// The wool rows keep the hand-written fib kernel (fibw.NewWool): its
// per-task overhead is a handful of cycles, so the generic port
// layer's closure calls would dominate the measurement. The baseline
// rows run through the registry's generic port — their native
// overheads are tens to hundreds of cycles, where that layer is noise.

func woolFibRunner(private bool) (func(n int64) int64, func()) {
	p := core.NewPool(core.Options{Workers: 1, PrivateTasks: private})
	fib := fibw.NewWool()
	return func(n int64) int64 {
		return p.Run(func(w *core.Worker) int64 { return fib.Call(w, n) })
	}, p.Close
}

// registryFibRunner builds a single-worker fib runner on any
// registered scheduler, via the generic port layer.
func registryFibRunner(name string) (func(n int64) int64, func()) {
	s, ok := sched.Lookup(name)
	if !ok {
		panic("experiments: scheduler not registered: " + name)
	}
	p := s.NewPool(sched.Options{Workers: 1})
	return func(n int64) int64 { return p.RunRec(fibw.Job(n, 1)) }, p.Close
}
