package analysis

import (
	"go/build"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestLoaderPinsBuildTags is the regression test for the loader gap
// fixed in PR 8: build.ImportDir consulted build.Default, whose GOOS
// and GOARCH come from the environment, so running woolvet with a
// stray GOOS (say, during a cross-compile check) silently dropped
// files behind //go:build tags while the type sizes stayed pinned to
// the host. The loader must always load the host-default tag set.
func TestLoaderPinsBuildTags(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tagpin\n\ngo 1.22\n")
	// hostTagged compiles only for the platform running this test;
	// otherTagged is its complement. A loader honoring the host tag
	// set must pick the first and skip the second.
	write("host.go", "//go:build "+runtime.GOOS+"\n\npackage tagpin\n\nconst HostTagged = 1\n")
	write("other.go", "//go:build !"+runtime.GOOS+"\n\npackage tagpin\n\nconst OtherTagged = 1\n")
	write("common.go", "package tagpin\n\nconst Common = 1\n")

	// Simulate the stray environment: mutate build.Default the way a
	// GOOS env var set before process start would have.
	saved := build.Default.GOOS
	build.Default.GOOS = otherGOOS()
	defer func() { build.Default.GOOS = saved }()

	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(dir, "tagpin")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg.Types.Scope().Lookup("HostTagged") == nil {
		t.Errorf("host-tagged file was not loaded: loader followed build.Default.GOOS=%s instead of runtime.GOOS=%s",
			build.Default.GOOS, runtime.GOOS)
	}
	if pkg.Types.Scope().Lookup("OtherTagged") != nil {
		t.Errorf("foreign-tagged file was loaded despite //go:build !%s", runtime.GOOS)
	}
}

// otherGOOS returns some GOOS different from the host's.
func otherGOOS() string {
	if runtime.GOOS == "windows" {
		return "linux"
	}
	return "windows"
}

// TestLoaderLoadsBuildTaggedFiles checks end to end that the repo's
// own build-tagged files (e.g. cmd/woolbench rusage_unix.go) are part
// of the vetted file set on their native platform.
func TestLoaderLoadsBuildTaggedFiles(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("repo's tagged files are unix-only")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadPatterns("./cmd/woolbench")
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	found := false
	for _, f := range pkgs[0].Files {
		name := filepath.Base(l.Fset.Position(f.Package).Filename)
		if name == "rusage_unix.go" {
			found = true
		}
		if name == "rusage_stub.go" {
			t.Errorf("stub file for foreign platforms was loaded alongside the unix one")
		}
	}
	if !found {
		t.Errorf("rusage_unix.go (//go:build unix) missing from loaded file set")
	}
}
