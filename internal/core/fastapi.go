package core

// The monomorphic fast-path API: the surface woolgen-generated code is
// written against (DESIGN.md §13). The TaskDef* methods in taskdef.go
// pay two or three call frames per spawn/join pair (the Spawn/Join
// method itself, push or joinAcquire, and the indirect wrapper call on
// a generic inline join) because their bodies exceed the inliner's
// budget. Generated code instead composes the tiny prep/commit leaves
// below, each individually inlinable, so the whole private-path
// spawn+join pair flattens into one straight-line instruction sequence
// with a direct, statically-known call into the task body — the Go
// analogue of the paper's per-task-type generated spawn/join code
// whose fast path is fully visible to the optimizer (Section III-A).
//
// Every prep function is gated on Worker.genFast and returns nil to
// route the operation to the generic slow path (the TaskDef* methods),
// which carries the full semantics: trip-wire publication, overflow
// degradation, public-region publication, tracing, span profiling.
// The fast path therefore never needs a hook: when any hook could
// fire, genFast is false and the fast path declines.

// SpawnPrepPrivate returns the descriptor for a monomorphic private
// fast-path spawn, or nil when this spawn must take the generic slow
// path: the trip wire is pending, the stack is full, the slot is in
// the public region, or tracing/profiling is active (genFast). The
// caller fills the descriptor (Task.Set1 and friends) and commits with
// SpawnCommitPrivate. Owner only.
//
// The returned descriptor is unclaimed and owner-writable: an acquire
// of state in the publication pass's model, so generated code may
// store arguments into it before the commit releases it.
//
// woolvet:inline
// woolvet:acquire state
func (w *Worker) SpawnPrepPrivate() *Task {
	if !w.genFast || w.morePublic.Load() || w.top >= len(w.tasks) || int64(w.top) < w.pubShadow {
		return nil
	}
	return &w.tasks[w.top]
}

// SpawnCommitPrivate completes a fast-path spawn of the descriptor
// returned by SpawnPrepPrivate: mark it private (owner-only flag — no
// atomics; the paper's private spawn) and advance top. Owner only.
//
// After the commit the descriptor is live: the trip-wire publication
// path may promote it to a stealable public task at any moment, so no
// argument write may follow — a release of state in the publication
// pass's model even though the private path itself performs no atomic
// store.
//
// woolvet:inline
// woolvet:release state
func (w *Worker) SpawnCommitPrivate(t *Task) {
	t.priv = true
	w.top++
	w.stats.Spawns++
}

// JoinPrepPrivate claims the youngest task when it is a private
// descriptor eligible for the monomorphic fast path, or returns nil to
// route the join to the generic path (JoinAcquire): the task is
// public or stolen, an overflow-inlined result is pending, or
// tracing/profiling is active. On success the task is claimed (plain
// flag flip, the paper's 3-cycle join) and the caller performs the
// direct call into the task body. Owner only.
//
// woolvet:inline
// woolvet:acquire state
func (w *Worker) JoinPrepPrivate() *Task {
	if !w.genFast || len(w.ovf) != 0 {
		return nil
	}
	t := &w.tasks[w.top-1]
	if !t.priv {
		return nil
	}
	t.priv = false
	w.top--
	w.stats.JoinsInlinedPrivate++
	return t
}

// JoinAcquire is the generic join acquisition, exported for generated
// code's slow path: pop the top task and try to claim it. It returns
// (task, true) when the caller should inline the task — generated code
// performs the direct, task-specific call, which is what distinguishes
// it from Worker.JoinAny's indirect wrapper call — and (task, false)
// when the slow path already ran the task and the result is in the
// descriptor (Task.Res). A true return must be followed by
// InlineJoinEnd after the inline call completes.
//
// woolvet:inline
// woolvet:acquire state
func (w *Worker) JoinAcquire() (*Task, bool) { return w.joinAcquire() }

// InlineJoinEnd closes the span-profiling window opened by an inline
// JoinAcquire claim. Generated code calls it after the direct call
// into the task body; it is free (one nil check) when profiling is
// off.
//
// woolvet:inline
func (w *Worker) InlineJoinEnd() {
	if w.spanProf != nil {
		w.spanProf.onInlineJoinEnd()
	}
}

// BatchPrepPrivate returns a window of up to n free private
// descriptors for a batch spawn (SpawnN), or nil when batching must
// fall back to one-at-a-time spawns: the trip wire is pending, the
// next slot is public or the stack is full, or tracing/profiling is
// active. The caller fills descriptors [0, k) of the window (Task.Set1
// and friends) and commits them with BatchCommitPrivate(k). Owner
// only.
//
// woolvet:inline
// woolvet:acquire state
func (w *Worker) BatchPrepPrivate(n int) []Task {
	if !w.genFast || w.morePublic.Load() || int64(w.top) < w.pubShadow {
		return nil
	}
	free := len(w.tasks) - w.top
	if free <= 0 {
		return nil
	}
	if n > free {
		n = free
	}
	return w.tasks[w.top : w.top+n]
}

// BatchCommitPrivate completes a batch spawn: mark the first k
// descriptors of the BatchPrepPrivate window private and advance top
// over them. One bounds check and one stats bump amortize over the
// whole batch. Owner only.
//
// woolvet:inline
// woolvet:release state
func (w *Worker) BatchCommitPrivate(k int) {
	for j := 0; j < k; j++ {
		w.tasks[w.top+j].priv = true
	}
	w.top += k
	w.stats.Spawns += int64(k)
}
