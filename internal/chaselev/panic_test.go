package chaselev

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestStolenTaskPanicPropagates forces the panic onto the thief side
// (the bomb spins until the owner sees it started, which can only
// happen on a thief while the owner is still in Run's body) and checks
// the full abort path: the thief's recover publishes done so the join
// unblocks, Run re-raises the original value, the pool is poisoned
// against reuse, and Close completes (no dead worker).
func TestStolenTaskPanicPropagates(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for attempt := 0; attempt < 30; attempt++ {
		p := NewPool(Options{Workers: 2, MaxIdleSleep: -1})
		var armed, started atomic.Bool
		bomb := Define1("bomb", func(w *Worker, x int64) int64 {
			started.Store(true)
			for !armed.Load() {
				runtime.Gosched()
			}
			panic("boom")
		})
		var stolen bool
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatal("panic did not propagate from Run")
				} else if r != "boom" {
					t.Fatalf("wrong panic value %v", r)
				}
			}()
			p.Run(func(w *Worker) int64 {
				bomb.Spawn(w, 1)
				deadline := time.Now().Add(5 * time.Millisecond)
				for !started.Load() && time.Now().Before(deadline) {
					runtime.Gosched()
				}
				stolen = started.Load()
				armed.Store(true)
				return bomb.Join(w)
			})
		}()
		if stolen {
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatal("poisoned pool accepted another Run")
					}
					if msg := fmt.Sprint(r); !strings.Contains(msg, "pool poisoned by earlier task panic") {
						t.Fatalf("poisoned Run panicked with %v", r)
					}
				}()
				p.Run(func(w *Worker) int64 { return 0 })
			}()
		}
		closed := make(chan struct{})
		go func() {
			p.Close()
			close(closed)
		}()
		select {
		case <-closed:
		case <-time.After(10 * time.Second):
			t.Fatal("Close hung after a stolen-task panic")
		}
		if stolen {
			return // the thief-side abort path ran; done
		}
	}
	t.Log("bomb was never stolen in 30 attempts; inline panic path exercised instead")
}
