package core

import "time"

// SpanProfiler is the span (critical-path) measurement facility the
// paper uses to compute the parallelism column of Table I. It tracks,
// during a single-worker execution, both the total work T1 and the span
// T∞ under two cost models:
//
//   - the abstract model (Span0): spawning and load balancing are free,
//     so a join contributes max(continuation, child);
//   - the realistic model (SpanO): a potentially parallel composition
//     executes in parallel only when doing so saves at least Overhead
//     (the paper uses 2000 cycles); a parallel execution costs an extra
//     Overhead on the critical path, a serial one adds the spans.
//
// Span is a property of the computation, not of the schedule, so
// measuring it on one worker is exact; the scheduler calls the on*
// hooks at spawn and inline-join boundaries.
//
// Strand lengths are measured with the monotonic clock by default;
// workloads whose strands are shorter than the clock resolution can
// instead self-report via AddWork, which advances the current strand by
// a synthetic duration.
type SpanProfiler struct {
	// Overhead is the load-balancing cost O of the realistic model.
	// The paper's 2000 cycles at 2.5 GHz is 800ns, the default.
	Overhead time.Duration

	frames []spanFrame
	marks  []spanMark

	strandStart time.Time
	synthetic   time.Duration // AddWork accumulations within the strand
	timed       bool          // strand timing active
	totalWork   time.Duration
}

type spanFrame struct {
	span0, spanO time.Duration
	markBase     int // index into marks of this frame's first spawn mark
}

type spanMark struct {
	span0, spanO time.Duration
}

// NewSpanProfiler returns a profiler with the default 800ns overhead
// model (2000 cycles at 2.5GHz).
func NewSpanProfiler() *SpanProfiler {
	return &SpanProfiler{Overhead: 800 * time.Nanosecond}
}

// Begin starts a measurement: push the root frame and open its first
// strand. Pair with End.
func (sp *SpanProfiler) Begin() {
	sp.frames = sp.frames[:0]
	sp.marks = sp.marks[:0]
	sp.totalWork = 0
	sp.frames = append(sp.frames, spanFrame{markBase: 0})
	sp.openStrand()
}

// End closes the measurement and returns (T1, T∞ at O=0, T∞ at O).
func (sp *SpanProfiler) End() (work, span0, spanO time.Duration) {
	sp.closeStrand()
	if len(sp.frames) != 1 {
		panic("core: SpanProfiler.End with unbalanced task nesting")
	}
	f := sp.frames[0]
	return sp.totalWork, f.span0, f.spanO
}

// AddWork advances the current strand by a synthetic duration, for
// workloads whose real strands are too short for the clock.
func (sp *SpanProfiler) AddWork(d time.Duration) { sp.synthetic += d }

func (sp *SpanProfiler) openStrand() {
	sp.strandStart = time.Now()
	sp.synthetic = 0
	sp.timed = true
}

func (sp *SpanProfiler) closeStrand() {
	if !sp.timed {
		return
	}
	d := time.Since(sp.strandStart) + sp.synthetic
	sp.timed = false
	f := &sp.frames[len(sp.frames)-1]
	f.span0 += d
	f.spanO += d
	sp.totalWork += d
}

// onSpawn marks a fork point: the child will execute at the matching
// join, but conceptually runs in parallel with everything the parent
// does from here to that join.
func (sp *SpanProfiler) onSpawn() {
	sp.closeStrand()
	f := &sp.frames[len(sp.frames)-1]
	sp.marks = append(sp.marks, spanMark{span0: f.span0, spanO: f.spanO})
	sp.openStrand()
}

// onInlineJoinStart brackets the inline execution of the joined child:
// push its frame. (Stolen joins cannot occur in single-worker runs.)
func (sp *SpanProfiler) onInlineJoinStart() {
	sp.closeStrand()
	sp.frames = append(sp.frames, spanFrame{markBase: len(sp.marks)})
	sp.openStrand()
}

// onInlineJoinEnd pops the child frame and folds its span into the
// parent under both cost models.
func (sp *SpanProfiler) onInlineJoinEnd() {
	sp.closeStrand()
	child := sp.frames[len(sp.frames)-1]
	if len(sp.marks) != child.markBase {
		panic("core: SpanProfiler: task returned with unjoined spawns")
	}
	sp.frames = sp.frames[:len(sp.frames)-1]
	f := &sp.frames[len(sp.frames)-1]

	m := sp.marks[len(sp.marks)-1]
	sp.marks = sp.marks[:len(sp.marks)-1]

	// Abstract model: parallel composition of the continuation strand
	// (spawn→join) with the child; the join point continues from the
	// later of the two.
	k0 := f.span0 - m.span0
	f.span0 = m.span0 + maxDur(k0, child.span0)

	// Realistic model: parallel only when it saves at least Overhead.
	kO := f.spanO - m.spanO
	cO := child.spanO
	if minDur(kO, cO) < sp.Overhead {
		f.spanO = m.spanO + kO + cO
	} else {
		f.spanO = m.spanO + maxDur(kO, cO) + sp.Overhead
	}
	sp.openStrand()
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
