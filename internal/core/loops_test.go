package core

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRange(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 3, PrivateTasks: true})
	defer p.Close()
	const n = 10007
	hits := make([]int32, n)
	p.Run(func(w *Worker) int64 {
		For(w, 0, n, 16, func(i int64) {
			atomic.AddInt32(&hits[i], 1)
		})
		return 0
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestForEdgeCases(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	p.Run(func(w *Worker) int64 {
		ran := false
		For(w, 5, 5, 4, func(i int64) { ran = true })
		For(w, 9, 3, 4, func(i int64) { ran = true })
		if ran {
			t.Error("empty range ran the body")
		}
		count := 0
		For(w, 7, 8, 0, func(i int64) {
			if i != 7 {
				t.Errorf("i = %d", i)
			}
			count++
		})
		if count != 1 {
			t.Errorf("single-element loop ran %d times", count)
		}
		return 0
	})
}

func TestForNested(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	var total atomic.Int64
	p.Run(func(w *Worker) int64 {
		For(w, 0, 20, 2, func(i int64) {
			// Nested loops from the body run on the executing worker…
			// which we do not have here; nested parallelism uses the
			// same worker only through task functions. Just do work.
			total.Add(i)
		})
		return 0
	})
	if got := total.Load(); got != 190 {
		t.Errorf("sum = %d, want 190", got)
	}
}

func TestQuickForSum(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	err := quick.Check(func(nRaw uint16, grainRaw uint8, wRaw uint8) bool {
		n := int64(nRaw % 3000)
		grain := int64(grainRaw % 40)
		workers := int(wRaw%4) + 1
		p := NewPool(Options{Workers: workers})
		defer p.Close()
		var sum atomic.Int64
		p.Run(func(w *Worker) int64 {
			For(w, 0, n, grain, func(i int64) { sum.Add(i) })
			return 0
		})
		return sum.Load() == n*(n-1)/2
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}
