// Package gowool is a work-stealing scheduler for fine-grained nested
// task parallelism, a Go implementation of the direct task stack from
// Karl-Filip Faxén, "Efficient Work Stealing for Fine Grained
// Parallelism" (ICPP 2010) — the algorithm behind the Wool C library.
//
// The design goal is that spawning a task costs barely more than a
// procedure call, so programs can expose all their parallelism without
// manual granularity control (cut-offs). The ingredients:
//
//   - Task descriptors live inline in a per-worker array with strict
//     stack discipline: no pointers, no free lists, no allocation on
//     the spawn path.
//   - Thief and victim synchronize on the descriptor's state word (the
//     owner with an atomic exchange, thieves with CAS), not on the
//     stack indices, so the owner's top index stays private and a steal
//     transfers a single contiguous block.
//   - Private tasks defer even that synchronization: descriptors above
//     a dynamic public boundary are joined with plain loads and stores,
//     and thieves trip a wire to ask for more public tasks when the
//     boundary runs dry — a revocable, automatic cut-off.
//   - A join whose task was stolen leapfrogs: it steals back only from
//     the thief, bounding stack growth to the sequential depth and
//     avoiding the buried-join problem.
//
// # Usage
//
// Tasks are declared once with Define1..Define4 (int64 arguments) or
// DefineC1/DefineC2 (typed context pointer + int64s), then spawned and
// joined through a Worker. The canonical example, the paper's Figure 2:
//
//	var fib *gowool.TaskDef1
//	fib = gowool.Define1("fib", func(w *gowool.Worker, n int64) int64 {
//		if n < 2 {
//			return n
//		}
//		fib.Spawn(w, n-2)       // SPAWN: stealable child
//		a := fib.Call(w, n-1)   // CALL: plain recursive call
//		b := fib.Join(w)        // JOIN: inline or resolve the steal
//		return a + b
//	})
//
//	pool := gowool.NewPool(gowool.Options{Workers: 8, PrivateTasks: true})
//	defer pool.Close()
//	r := pool.Run(func(w *gowool.Worker) int64 { return fib.Call(w, 40) })
//
// Spawn and Join must be balanced within each task (LIFO), exactly like
// Wool's SPAWN/JOIN. Run executes the root on the calling goroutine as
// worker 0 while the pool's other workers steal.
//
// # Idle workers and profiling
//
// Between parallel regions, idle workers back off from spinning through
// yields into capped sleeps (Options.MaxIdleSleep) and finally park on
// an idle engine, so a quiescent pool consumes ~0% CPU; producers wake
// parked workers the moment work becomes visible. Options.Parking
// controls this (ParkOff, or a negative MaxIdleSleep, restores the
// paper's dedicated-machine spinning), Stats.Parks and Stats.Wakes
// count it, and Pool.ParkedWorkers observes it live.
//
// With Options.Profile enabled, the failed-steal category (ST) of the
// TimeBreakdown is a sampled estimate: the idle loop times every 64th
// failed steal attempt and scales it by the sampling period, keeping
// profiled idle loops as cheap as unprofiled ones. Successful steals
// and leapfrog searches are always timed exactly.
//
// # Tracing and abort semantics
//
// Options.Trace attaches a Tracer (NewTracer): each worker records
// scheduler events — spawns, steals and leapfrogs, publications and
// privatizations, parks and wakes — into its own lock-free ring at a
// few nanoseconds per event, and a nil tracer costs nothing on the
// fast path. Export the result as a Chrome trace_event JSON
// (Tracer.WriteChromeTrace, viewable in Perfetto) or a worker×worker
// steal matrix (Tracer.StealMatrix); Tracer.Snapshot and
// Pool.StatsSnapshot may be read live, with documented raciness.
//
// A panic escaping a task re-raises from Run with the original panic
// value, even when the task was stolen (the thief hands the panic
// back instead of dying and deadlocking the join). The abandoned task
// tree is not unwound, so the pool is poisoned: later Run calls panic
// with a distinct "pool poisoned by earlier task panic" message, and
// only Close remains safe. See DESIGN.md §11.
//
// # Robustness
//
// A spawn that finds the task pool full (Options.StackSize) degrades
// to inline serial execution — a spawn is permission to parallelize,
// not an obligation — counted in Stats.OverflowInlined;
// Options.StrictOverflow restores the overflow panic for catching
// runaway spawn depth. Options.Watchdog arms a stuck-run monitor: if
// scheduler progress stalls for the interval while a join is blocked
// and nothing is executing, the run fails with a *WatchdogError
// carrying a diagnostic dump of per-worker protocol state instead of
// hanging. See DESIGN.md §12.
//
// The repository also contains, under internal/, the baseline
// schedulers (Chase-Lev deque, lock-based ladder, steal-parent
// continuation scheduler, centralized pool), the deterministic
// virtual-time multiprocessor used to reproduce the paper's
// multi-processor experiments on any host, and the benchmark harness
// regenerating every table and figure of the paper; see DESIGN.md and
// EXPERIMENTS.md.
package gowool

import (
	"gowool/internal/core"
	"gowool/internal/trace"
)

// Re-exported core types. The scheduler implementation lives in
// internal/core; these aliases are the supported public surface.
type (
	// Pool is a scheduler instance: a set of workers with direct task
	// stacks. Create with NewPool, submit with Run, release with Close.
	Pool = core.Pool

	// Worker is the per-worker handle threaded through task functions.
	Worker = core.Worker

	// Options configures a Pool; zero value means defaults.
	Options = core.Options

	// Stats are the scheduler's event counters (spawns, steals, ...).
	Stats = core.Stats

	// TimeBreakdown is the profiling breakdown (paper Fig. 6).
	TimeBreakdown = core.TimeBreakdown

	// SpanProfiler measures work and critical path (paper Table I).
	SpanProfiler = core.SpanProfiler

	// TaskDef1..TaskDef4 are task definitions with 1..4 int64 args.
	TaskDef1 = core.TaskDef1
	TaskDef2 = core.TaskDef2
	TaskDef3 = core.TaskDef3
	TaskDef4 = core.TaskDef4

	// ParkMode selects the idle-worker parking behaviour
	// (Options.Parking).
	ParkMode = core.ParkMode

	// WatchdogError is the failure a tripped Options.Watchdog raises
	// from Run: no scheduler progress for the interval with a blocked
	// join outstanding, plus a diagnostic dump (Bundle) of per-worker
	// protocol state at trip time. See DESIGN.md §12.
	WatchdogError = core.WatchdogError

	// Tracer is the low-overhead event tracer (Options.Trace): one
	// lock-free ring of scheduler events per worker, recording spawns,
	// steals, leapfrogs, publications, privatizations, parks and
	// wakes with monotonic timestamps. Export with WriteChromeTrace
	// (chrome://tracing / Perfetto) or StealMatrix; a nil tracer
	// disables recording at zero fast-path cost. See DESIGN.md §11.
	Tracer = trace.Tracer
)

// Parking modes for Options.Parking: ParkDefault parks unless spin
// mode (negative MaxIdleSleep) is selected; ParkOn and ParkOff force
// the choice.
const (
	ParkDefault = core.ParkDefault
	ParkOn      = core.ParkOn
	ParkOff     = core.ParkOff
)

// NewPool creates a pool with opts.Workers workers (default
// runtime.GOMAXPROCS(0)). Worker 0 is driven by the goroutine calling
// Run; the others steal until Close.
func NewPool(opts Options) *Pool { return core.NewPool(opts) }

// NewTracer creates an event tracer with one ring per worker, each
// holding capacity events (rounded up to a power of two; <= 0 means
// the default 65536). Pass it as Options.Trace; when a ring fills,
// the oldest events are overwritten and counted in Tracer.Dropped.
func NewTracer(workers, capacity int) *Tracer { return trace.New(workers, capacity) }

// Define1 declares a task taking one int64, generating its
// task-specific spawn and join (direct call on the inline path).
func Define1(name string, fn func(*Worker, int64) int64) *TaskDef1 {
	return core.Define1(name, fn)
}

// Define2 declares a task taking two int64 arguments.
func Define2(name string, fn func(*Worker, int64, int64) int64) *TaskDef2 {
	return core.Define2(name, fn)
}

// Define3 declares a task taking three int64 arguments.
func Define3(name string, fn func(*Worker, int64, int64, int64) int64) *TaskDef3 {
	return core.Define3(name, fn)
}

// Define4 declares a task taking four int64 arguments.
func Define4(name string, fn func(*Worker, int64, int64, int64, int64) int64) *TaskDef4 {
	return core.Define4(name, fn)
}

// TaskDefC1 is a task definition carrying a typed context pointer and
// one int64 argument.
type TaskDefC1[C any] = core.TaskDefC1[C]

// TaskDefC2 is a task definition carrying a typed context pointer and
// two int64 arguments.
type TaskDefC2[C any] = core.TaskDefC2[C]

// TaskDefC3 is a task definition carrying a typed context pointer and
// three int64 arguments.
type TaskDefC3[C any] = core.TaskDefC3[C]

// DefineC1 declares a task taking a typed context pointer and one
// int64. The pointer travels in the descriptor without allocating.
func DefineC1[C any](name string, fn func(*Worker, *C, int64) int64) *TaskDefC1[C] {
	return core.DefineC1(name, fn)
}

// DefineC2 declares a task taking a typed context pointer and two
// int64 arguments.
func DefineC2[C any](name string, fn func(*Worker, *C, int64, int64) int64) *TaskDefC2[C] {
	return core.DefineC2(name, fn)
}

// DefineC3 declares a task taking a typed context pointer and three
// int64 arguments.
func DefineC3[C any](name string, fn func(*Worker, *C, int64, int64, int64) int64) *TaskDefC3[C] {
	return core.DefineC3(name, fn)
}

// For runs body(i) for every i in [lo, hi) as a balanced task tree
// with at most grain iterations per leaf (Wool's loop construct, used
// by the paper's mm benchmark). grain ≤ 0 makes every iteration its
// own task. The body runs on whichever workers steal its subtrees.
func For(w *Worker, lo, hi, grain int64, body func(i int64)) {
	core.For(w, lo, hi, grain, body)
}
