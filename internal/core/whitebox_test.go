package core

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// White-box tests: drive the thief side of the descriptor protocol by
// hand so the join slow paths — which depend on precise interleavings
// — are exercised deterministically rather than probabilistically.

// TestJoinSlowThiefBacksOff covers the transient-EMPTY → restored-TASK
// path: the owner's join finds a thief mid-steal; the thief backs off
// (restores TASK); the owner must claim and inline the task.
func TestJoinSlowThiefBacksOff(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	val := Define1("val", func(w *Worker, x int64) int64 { return x * 3 })
	got := p.Run(func(w *Worker) int64 {
		val.Spawn(w, 7)
		tk := &w.tasks[w.top-1]
		// Simulate a thief's claim (CAS TASK→EMPTY)…
		if !tk.state.CompareAndSwap(stateTask, stateEmpty) {
			t.Fatal("setup: task not in TASK state")
		}
		// …and a delayed back-off restore, as after a bot mismatch.
		go func() {
			time.Sleep(200 * time.Microsecond)
			tk.state.Store(stateTask)
		}()
		return val.Join(w) // must spin on EMPTY, then claim the restore
	})
	if got != 21 {
		t.Errorf("join after back-off = %d, want 21", got)
	}
	// Usually the owner claims the restored task (inlined join), but
	// the pool's real thief may legitimately win the race instead
	// (stolen join). Either way exactly one join resolved it.
	st := p.Stats()
	if st.JoinsInlinedPublic+st.JoinsStolen != 1 {
		t.Errorf("joins inlined=%d stolen=%d, want exactly one",
			st.JoinsInlinedPublic, st.JoinsStolen)
	}
}

// TestJoinSlowFindsDone covers the DONE fast-out: the thief completed
// the task before the owner's join even looked.
func TestJoinSlowFindsDone(t *testing.T) {
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	val := Define1("val", func(w *Worker, x int64) int64 { return x + 1 })
	got := p.Run(func(w *Worker) int64 {
		val.Spawn(w, 9)
		tk := &w.tasks[w.top-1]
		// Simulate a complete steal by worker 1.
		if !tk.state.CompareAndSwap(stateTask, stateEmpty) {
			t.Fatal("setup: task not stealable")
		}
		tk.state.Store(stolenState(1))
		w.bot.Store(w.bot.Load() + 1)
		tk.res = 10 // the thief's result
		tk.state.Store(stateDone)
		return val.Join(w)
	})
	if got != 10 {
		t.Errorf("join of completed steal = %d, want 10", got)
	}
	if st := p.Stats(); st.JoinsStolen != 1 {
		t.Errorf("stolen joins = %d, want 1", st.JoinsStolen)
	}
}

// TestJoinSlowWaitsForThief covers the STOLEN → leapfrog wait: the
// thief is still running; the owner leapfrogs (finding nothing to
// steal) until DONE appears.
func TestJoinSlowWaitsForThief(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	val := Define1("val", func(w *Worker, x int64) int64 { return x })
	got := p.Run(func(w *Worker) int64 {
		val.Spawn(w, 5)
		tk := &w.tasks[w.top-1]
		if !tk.state.CompareAndSwap(stateTask, stateEmpty) {
			t.Fatal("setup: task not stealable")
		}
		tk.state.Store(stolenState(1))
		w.bot.Store(w.bot.Load() + 1)
		go func() {
			time.Sleep(300 * time.Microsecond)
			tk.res = 55
			tk.state.Store(stateDone)
		}()
		return val.Join(w)
	})
	if got != 55 {
		t.Errorf("join of in-flight steal = %d, want 55", got)
	}
}

// TestRecordPanicFromStolenTask forces a panic on the thief side so
// the pool-abort path (recordPanic + re-raise from Run) runs: the
// bomb task spins until released, guaranteeing the thief picked it up
// before it detonates.
func TestRecordPanicFromStolenTask(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for attempt := 0; attempt < 30; attempt++ {
		p := NewPool(Options{Workers: 2, MaxIdleSleep: -1})
		var armed, started atomic.Bool
		bomb := Define1("bomb", func(w *Worker, x int64) int64 {
			started.Store(true)
			for !armed.Load() {
				runtime.Gosched()
			}
			panic("boom")
		})
		var stolen bool
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatal("panic did not propagate")
				} else if r != "boom" {
					t.Fatalf("wrong panic value %v", r)
				}
			}()
			p.Run(func(w *Worker) int64 {
				bomb.Spawn(w, 1)
				// Give the thief a window to take and start the bomb.
				deadline := time.Now().Add(5 * time.Millisecond)
				for !started.Load() && time.Now().Before(deadline) {
					runtime.Gosched()
				}
				stolen = started.Load()
				armed.Store(true)
				return bomb.Join(w)
			})
		}()
		p.Close()
		if stolen {
			return // the thief-side abort path ran; done
		}
	}
	t.Log("bomb was never stolen in 30 attempts; inline panic path exercised instead")
}

// TestStolenStateEncoding pins the STOLEN(thief) packing at its
// boundaries: every thief index NewPool can hand out (bounded by
// maxWorkers) must survive the stolenState/stolenThief round trip, and
// the non-stolen states must never read as stolen.
func TestStolenStateEncoding(t *testing.T) {
	for _, thief := range []int{0, 1, 255, 256, 1 << 20, int(maxWorkers - 1)} {
		s := stolenState(thief)
		if !isStolen(s) {
			t.Errorf("stolenState(%d) = %#x does not read as stolen", thief, s)
		}
		if got := stolenThief(s); got != thief {
			t.Errorf("stolenThief(stolenState(%d)) = %d", thief, got)
		}
	}
	for _, s := range []uint64{stateEmpty, stateDone, stateTask} {
		if isStolen(s) {
			t.Errorf("state %#x reads as stolen", s)
		}
	}
	if uint64(int(maxWorkers)) != maxWorkers {
		t.Fatalf("maxWorkers %d does not fit in int", maxWorkers)
	}
}

// TestWorkersBoundRejected verifies NewPool rejects worker counts the
// state encoding cannot name, before allocating anything.
func TestWorkersBoundRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool accepted Workers > maxWorkers")
		}
	}()
	NewPool(Options{Workers: int(maxWorkers) + 1})
}
