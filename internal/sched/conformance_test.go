// Package sched_test is the registry-driven conformance suite: every
// registered scheduler must agree with the serial reference on the
// generic jobs over randomized inputs, execute each leaf exactly once
// per repetition, and report sane normalized statistics. New
// schedulers get all of this by registering — no per-backend test
// plumbing.
package sched_test

import (
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"gowool/internal/chaselev"
	"gowool/internal/core"
	"gowool/internal/locksched"
	"gowool/internal/sched"
	"gowool/internal/workloads/cholesky"
	"gowool/internal/workloads/fibw"
	"gowool/internal/workloads/ssf"
)

// TestRegistry checks the registry surface itself: all seven native
// schedulers present (the direct task stack twice — generic and
// woolgen-generated ports), in presentation order, each with a name,
// blurb and steal description.
func TestRegistry(t *testing.T) {
	want := []string{"wool", "woolgen", "chaselev", "locksched", "cilk", "omp", "gonative"}
	got := sched.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("Names()[%d] = %q, want %q (full: %v)", i, got[i], name, got)
		}
		s, ok := sched.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missing", name)
		}
		if s.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, s.Name())
		}
		if s.Blurb() == "" {
			t.Errorf("%s: empty Blurb", name)
		}
		if s.Caps().Steal == "" {
			t.Errorf("%s: empty Caps.Steal description", name)
		}
	}
	if _, ok := sched.Lookup("no-such-scheduler"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
}

// TestConformanceFib quick-checks every scheduler's RunRec against the
// job's serial reference over randomized (seeded) sizes, repetition
// counts and worker counts.
func TestConformanceFib(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(42))
	for _, s := range sched.All() {
		t.Run(s.Name(), func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				n := int64(8 + rng.Intn(9))    // fib(8..16)
				reps := int64(1 + rng.Intn(3)) // 1..3 serialized regions
				workers := 3 + rng.Intn(2)     // 3..4
				j := fibw.Job(n, reps)
				p := s.NewPool(sched.Options{Workers: workers})
				got := p.RunRec(j)
				p.Close()
				if want := j.Serial(); got != want {
					t.Fatalf("fib(%d)×%d workers=%d: got %d, want %d", n, reps, workers, got, want)
				}
			}
		})
	}
}

// TestConformanceIrregularRange quick-checks RunRange on the paper's
// irregular workload (ssf: per-index work varies wildly) against the
// serial reference.
func TestConformanceIrregularRange(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(7))
	for _, s := range sched.All() {
		t.Run(s.Name(), func(t *testing.T) {
			for trial := 0; trial < 2; trial++ {
				word := int64(9 + rng.Intn(2)) // |s_9| = 55, |s_10| = 89
				str := ssf.FibString(word)
				j := ssf.Job(&ssf.Work{S: str}, 1)
				p := s.NewPool(sched.Options{Workers: 3})
				got := p.RunRange(j)
				p.Close()
				if want := ssf.Serial(str, nil); got != want {
					t.Fatalf("ssf(%d): got %d, want %d", word, got, want)
				}
			}
		})
	}
}

// TestExactlyOnceRange verifies each range index runs exactly once per
// repetition on every scheduler, with atomic per-index counters.
func TestExactlyOnceRange(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const n, repeat = 97, 3
	for _, s := range sched.All() {
		t.Run(s.Name(), func(t *testing.T) {
			counts := make([]atomic.Int64, n)
			j := sched.RangeJob{
				Name: "count", N: n, Reps: repeat, Irregular: true,
				Leaf: func(i int64) int64 { counts[i].Add(1); return 1 },
			}
			p := s.NewPool(sched.Options{Workers: 4})
			got := p.RunRange(j)
			p.Close()
			if got != n*repeat {
				t.Fatalf("sum = %d, want %d", got, n*repeat)
			}
			for i := range counts {
				if c := counts[i].Load(); c != repeat {
					t.Fatalf("index %d ran %d times, want %d", i, c, repeat)
				}
			}
		})
	}
}

// TestExactlyOnceRec does the same for the recursive shape: a perfect
// binary tree of height 5 must execute exactly 2^5 leaves per
// repetition.
func TestExactlyOnceRec(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const height, repeat = 5, 2
	for _, s := range sched.All() {
		t.Run(s.Name(), func(t *testing.T) {
			var leaves atomic.Int64
			j := sched.RecJob{
				Name: "tree", Root: height, Reps: repeat,
				Leaf: func(h int64) (int64, bool) {
					if h == 0 {
						leaves.Add(1)
						return 1, true
					}
					return 0, false
				},
				Split: func(h int64) (inline, spawned int64) { return h - 1, h - 1 },
			}
			p := s.NewPool(sched.Options{Workers: 4})
			got := p.RunRec(j)
			p.Close()
			if want := int64(repeat << height); got != want {
				t.Fatalf("sum = %d, want %d", got, want)
			}
			if c := leaves.Load(); c != int64(repeat<<height) {
				t.Fatalf("leaves ran %d times, want %d", c, repeat<<height)
			}
		})
	}
}

// TestStatsSanity runs a spawn-heavy job and checks the normalized
// counters of every scheduler that claims to keep them: spawns
// counted, steals never exceed attempts, joins (where the backend has
// join events) balance spawns, and ResetStats zeroes everything.
func TestStatsSanity(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, s := range sched.All() {
		t.Run(s.Name(), func(t *testing.T) {
			p := s.NewPool(sched.Options{Workers: 4})
			defer p.Close()
			j := fibw.Job(16, 1)
			want := j.Serial()
			if got := p.RunRec(j); got != want {
				t.Fatalf("fib(16) = %d, want %d", got, want)
			}
			st := p.Stats()
			if !s.Caps().Stats {
				if st.Spawns != 0 || st.Joins() != 0 || st.Steals != 0 ||
					st.StealAttempts != 0 || st.Backoffs != 0 || len(st.Extra) != 0 {
					t.Fatalf("Caps.Stats false but Stats() = %+v", st)
				}
				return
			}
			if st.Spawns <= 0 {
				t.Errorf("Spawns = %d, want > 0", st.Spawns)
			}
			if st.Steals > st.StealAttempts {
				t.Errorf("Steals = %d > StealAttempts = %d", st.Steals, st.StealAttempts)
			}
			if joins := st.Joins(); joins > 0 && joins != st.Spawns {
				t.Errorf("Joins() = %d, want %d (one join per spawn)", joins, st.Spawns)
			}
			for _, k := range st.ExtraKeys() {
				if st.Extra[k] < 0 {
					t.Errorf("Extra[%q] = %d, want >= 0", k, st.Extra[k])
				}
			}
			p.ResetStats()
			if st = p.Stats(); st.Spawns != 0 || st.Steals != 0 || st.StealAttempts != 0 {
				t.Errorf("ResetStats left %+v", st)
			}
		})
	}
}

// TestCholeskyTaskDefSchedulers instantiates the generic cholesky
// factorization for every backend that exposes DefineC3-style task
// constructors and checks the factor against the serial one. (This is
// the irregular spawn structure that doesn't fit RunRec/RunRange; the
// concrete scheduler packages are deliberately in scope only here.)
func TestCholeskyTaskDefSchedulers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	mSerial := cholesky.Generate(96, 350, 1234)
	mSerial.Factor()
	want := mSerial.ToDenseLower()

	check := func(t *testing.T, got [][]float64) {
		t.Helper()
		for i := range want {
			for j := 0; j <= i; j++ {
				if math.Abs(want[i][j]-got[i][j]) > 1e-9 {
					t.Fatalf("L[%d][%d] = %g, want %g", i, j, got[i][j], want[i][j])
				}
			}
		}
	}
	t.Run("wool", func(t *testing.T) {
		for _, workers := range []int{1, 3} {
			p := core.NewPool(core.Options{Workers: workers, PrivateTasks: true})
			m := cholesky.Generate(96, 350, 1234)
			cholesky.New(core.DefineC3[cholesky.Arena]).Factor(p.Run, m)
			p.Close()
			check(t, m.ToDenseLower())
		}
	})
	t.Run("chaselev", func(t *testing.T) {
		for _, workers := range []int{1, 3} {
			p := chaselev.NewPool(chaselev.Options{Workers: workers})
			m := cholesky.Generate(96, 350, 1234)
			cholesky.New(chaselev.DefineC3[cholesky.Arena]).Factor(p.Run, m)
			p.Close()
			check(t, m.ToDenseLower())
		}
	})
	t.Run("locksched", func(t *testing.T) {
		for _, workers := range []int{1, 3} {
			p := locksched.NewPool(locksched.Options{Workers: workers})
			m := cholesky.Generate(96, 350, 1234)
			cholesky.New(locksched.DefineC3[cholesky.Arena]).Factor(p.Run, m)
			p.Close()
			check(t, m.ToDenseLower())
		}
	})

	// Every scheduler whose Caps claim task definitions must expose a
	// concrete pool through Native; the claim is what cmd/woolrun keys
	// its cholesky dispatch on.
	for _, s := range sched.All() {
		if !s.Caps().TaskDefs {
			continue
		}
		p := s.NewPool(sched.Options{Workers: 1})
		if p.Native() == nil {
			t.Errorf("%s: Caps.TaskDefs set but Native() is nil", s.Name())
		}
		p.Close()
	}
}
