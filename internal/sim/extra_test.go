package sim

import (
	"strings"
	"testing"

	"gowool/internal/costmodel"
)

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindDirectStack: "direct-stack",
		KindDeque:       "deque",
		KindLock:        "lock",
		KindCentral:     "central",
		Kind(99):        "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	for s, want := range map[LockStrategy]string{
		LockBase:         "base",
		LockPeek:         "peek",
		LockTryLock:      "trylock",
		LockStrategy(42): "LockStrategy(42)",
	} {
		if got := s.String(); got != want {
			t.Errorf("LockStrategy.String() = %q, want %q", got, want)
		}
	}
}

func TestCentralQueueHelping(t *testing.T) {
	// A wide frontier on the central kind: the blocked root must help
	// by executing queued tasks itself (LeapSteals counts them).
	wide := &Def{Name: "wide"}
	leaf := &Def{Name: "leaf"}
	leaf.F = func(w *W, a Args) int64 {
		w.Work(500)
		return 1
	}
	wide.F = func(w *W, a Args) int64 {
		n := a.A0
		for i := int64(0); i < n; i++ {
			leaf.Spawn(w, Args{})
		}
		var total int64
		for i := int64(0); i < n; i++ {
			total += w.Join()
		}
		return total
	}
	res := Run(Config{Procs: 1, Kind: KindCentral, Costs: costmodel.OpenMP()}, wide, Args{A0: 40})
	if res.Value != 40 {
		t.Fatalf("value = %d, want 40", res.Value)
	}
	// On one processor every queued task is popped by the blocked
	// joins themselves; LIFO joins meet LIFO pops, so each pop is
	// exactly the joined task (LeapSteals stays 0 — nothing ran out
	// of order). The pops must account for every spawn.
	if res.Total.Steals != 40 {
		t.Errorf("central pops = %d, want 40", res.Total.Steals)
	}
	if res.Total.LeapSteals != 0 {
		t.Errorf("out-of-order executions = %d on one proc, want 0", res.Total.LeapSteals)
	}
}

func TestCentralMultiProcContention(t *testing.T) {
	fib := simFib()
	r1 := Run(Config{Procs: 1, Kind: KindCentral, Costs: costmodel.OpenMP()}, fib, Args{A0: 15})
	r8 := Run(Config{Procs: 8, Kind: KindCentral, Costs: costmodel.OpenMP()}, fib, Args{A0: 15})
	if r1.Value != r8.Value {
		t.Fatalf("values differ")
	}
	if r8.Total.LockWaits == 0 {
		t.Error("8 procs hammering one queue produced no lock waits — contention model inert")
	}
}

func TestDequeKindUnrestrictedWait(t *testing.T) {
	// KindDeque's blocked joins steal from anyone: with several procs
	// and fine tasks it must still be exact.
	tree := simTree(256)
	for _, procs := range []int{2, 5, 8} {
		res := Run(Config{Procs: procs, Kind: KindDeque, Costs: costmodel.TBB(), Seed: 3}, tree, Args{A0: 9})
		if res.Value != 512 {
			t.Errorf("procs=%d: %d leaves, want 512", procs, res.Value)
		}
	}
}

func TestWorkerAccessors(t *testing.T) {
	d := &Def{Name: "acc"}
	d.F = func(w *W, a Args) int64 {
		if w.Proc() == nil || w.Machine() == nil {
			t.Error("nil accessors")
		}
		return 1
	}
	if res := Run(Config{Procs: 1, Kind: KindDirectStack, Costs: costmodel.Wool()}, d, Args{}); res.Value != 1 {
		t.Error("run failed")
	}
}

func TestJoinWithoutSpawnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad := &Def{Name: "bad"}
	bad.F = func(w *W, a Args) int64 { return w.Join() }
	Run(Config{Procs: 1, Kind: KindDirectStack, Costs: costmodel.Wool()}, bad, Args{})
}

func TestUnjoinedRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	leak := &Def{Name: "leak"}
	leak.F = func(w *W, a Args) int64 {
		leak.Spawn(w, Args{A0: -1})
		return 0
	}
	Run(Config{Procs: 1, Kind: KindDirectStack, Costs: costmodel.Wool()}, leak, Args{A0: 1})
}

// TestStackOverflowPanics covers the StrictOverflow arm of the shared
// degrade-or-panic policy; TestStackOverflowDegrades covers the default.
func TestStackOverflowPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "task pool overflow") {
			t.Fatalf("overflow panic = %v, want the unified task-pool-overflow message", r)
		}
	}()
	leafDef := &Def{Name: "noop"}
	leafDef.F = func(w *W, a Args) int64 { return 0 }
	deep := &Def{Name: "deep"}
	deep.F = func(w *W, a Args) int64 {
		for i := 0; i < 100; i++ {
			leafDef.Spawn(w, Args{})
		}
		for i := 0; i < 100; i++ {
			w.Join()
		}
		return 0
	}
	Run(Config{Procs: 1, Kind: KindDirectStack, Costs: costmodel.Wool(), StackSize: 8, StrictOverflow: true}, deep, Args{})
}

// TestStackOverflowDegrades: without StrictOverflow the same workload
// completes, spawns past capacity run inline with their results
// replayed LIFO by the matching joins, and the elisions are counted.
func TestStackOverflowDegrades(t *testing.T) {
	leafDef := &Def{Name: "val"}
	leafDef.F = func(w *W, a Args) int64 { return a.A0 }
	deep := &Def{Name: "deep"}
	deep.F = func(w *W, a Args) int64 {
		for i := int64(0); i < 100; i++ {
			leafDef.Spawn(w, Args{A0: i})
		}
		var sum int64
		for i := 0; i < 100; i++ {
			sum += w.Join()
		}
		return sum
	}
	for _, kind := range []Kind{KindDirectStack, KindDeque, KindLock, KindCentral} {
		res := Run(Config{Procs: 1, Kind: kind, Costs: costmodel.Wool(), StackSize: 8}, deep, Args{})
		if want := int64(99 * 100 / 2); res.Value != want {
			t.Fatalf("kind %v: sum = %d, want %d", kind, res.Value, want)
		}
		if res.Total.OverflowInlined == 0 {
			t.Fatalf("kind %v: OverflowInlined = 0 after 100 spawns into a StackSize-8 pool", kind)
		}
		if res.Total.Spawns != res.Total.Joins() {
			t.Fatalf("kind %v: spawns (%d) != joins (%d) with elision active", kind, res.Total.Spawns, res.Total.Joins())
		}
	}
}

func TestFig6CategoriesSum(t *testing.T) {
	tree := simTree(2000)
	res := Run(Config{Procs: 4, Kind: KindDirectStack, Costs: costmodel.Wool(), Seed: 11}, tree, Args{A0: 10})
	st := res.Total
	if st.NA == 0 {
		t.Error("no NA cycles recorded")
	}
	if st.Steals > 0 && st.ST == 0 {
		t.Error("steals without ST cycles")
	}
	// Work cycles all land in NA/LA.
	if st.NA+st.LA < 1024*2000 {
		t.Errorf("application cycles %d below the workload's %d", st.NA+st.LA, 1024*2000)
	}
}
