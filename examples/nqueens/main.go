// N-queens: an irregular search-tree workload — exactly the shape the
// paper's introduction motivates, where subtree sizes are unpredictable
// so manual cut-offs are error-prone but fine-grained spawns are
// nearly free. Every placement level spawns one branch per column with
// no granularity control at all.
//
//	go run ./examples/nqueens [n]
package main

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"gowool"
)

// boards are encoded as int64 column lists, 4 bits per row (n ≤ 15);
// the row count travels alongside, so a whole search state fits the
// task descriptor's integer slots — no allocation per spawn.

func ok(rows int64, board int64, col int64) bool {
	for r := int64(0); r < rows; r++ {
		c := (board >> (4 * r)) & 0xf
		if c == col || c-col == rows-r || col-c == rows-r {
			return false
		}
	}
	return true
}

var nq *gowool.TaskDef3

func init() {
	// Arguments: board (packed), rows placed, n.
	nq = gowool.Define3("nqueens", func(w *gowool.Worker, board, rows, n int64) int64 {
		if rows == n {
			return 1
		}
		spawned := 0
		for col := int64(0); col < n; col++ {
			if !ok(rows, board, col) {
				continue
			}
			child := board | col<<(4*rows)
			nq.Spawn(w, child, rows+1, n)
			spawned++
		}
		var total int64
		for i := 0; i < spawned; i++ {
			total += nq.Join(w)
		}
		return total
	})
}

func serial(board, rows, n int64) int64 {
	if rows == n {
		return 1
	}
	var total int64
	for col := int64(0); col < n; col++ {
		if ok(rows, board, col) {
			total += serial(board|col<<(4*rows), rows+1, n)
		}
	}
	return total
}

func main() {
	n := int64(11)
	if len(os.Args) > 1 {
		if v, err := strconv.ParseInt(os.Args[1], 10, 64); err == nil {
			n = v
		}
	}
	if n > 15 {
		fmt.Println("n must be ≤ 15 (4-bit column packing)")
		os.Exit(2)
	}

	pool := gowool.NewPool(gowool.Options{
		Workers:      runtime.GOMAXPROCS(0),
		PrivateTasks: true,
		// Irregular trees want a wider public window (paper §III-B:
		// "very unbalanced trees require more").
		InitialPublic: 8,
		PublishAmount: 8,
	})
	defer pool.Close()

	t0 := time.Now()
	want := serial(0, 0, n)
	serialTime := time.Since(t0)

	t0 = time.Now()
	got := pool.Run(func(w *gowool.Worker) int64 { return nq.Call(w, 0, 0, n) })
	parTime := time.Since(t0)

	if got != want {
		fmt.Printf("MISMATCH: %d != %d\n", got, want)
		os.Exit(1)
	}
	st := pool.Stats()
	fmt.Printf("%d-queens solutions: %d\n", n, got)
	fmt.Printf("serial: %v    scheduled (%d workers): %v\n", serialTime, pool.Workers(), parTime)
	fmt.Printf("spawns: %d   steals: %d   trip-wire publications: %d\n",
		st.Spawns, st.Steals, st.Publications)
}
