// Package gonative is the "what a Go programmer would write" baseline:
// fork-join parallelism expressed directly with goroutines, channels
// and WaitGroups, scheduled by the Go runtime rather than by an
// explicit work-stealing pool.
//
// It exists to quantify the gap between the direct task stack and
// idiomatic Go concurrency for fine-grained tasks: a goroutine spawn
// costs stack allocation, scheduler queue traffic and (for results) a
// channel or WaitGroup handoff — orders of magnitude above the paper's
// 3–19 cycle spawns, which is precisely why fine-grained parallelism
// needs a library like this repository's.
package gonative

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forkOutcome carries a forked function's result — or its panic —
// back to the joining side. A panic in a bare goroutine would kill
// the whole process; transferring it and re-raising at the join gives
// goroutine forks the same abort semantics as the pool schedulers:
// the panic surfaces on the caller with the original value.
type forkOutcome struct {
	v        int64
	panicVal any
	panicked bool
}

// Fork runs f and g as a parallel pair, f in a new goroutine, and
// returns both results. The naive Go analogue of SPAWN/CALL/JOIN. A
// panic in f is re-raised on the caller after g completes, with the
// original panic value.
func Fork(f, g func() int64) (int64, int64) {
	ch := make(chan forkOutcome, 1)
	go func() {
		var out forkOutcome
		defer func() {
			if r := recover(); r != nil {
				out.panicVal, out.panicked = r, true
			}
			ch <- out
		}()
		out.v = f()
	}()
	b := g()
	out := <-ch
	if out.panicked {
		panic(out.panicVal)
	}
	return out.v, b
}

// ForkBounded is Fork with a concurrency budget: it forks only while
// the budget (a counting semaphore) has capacity, otherwise it runs
// both functions sequentially. This is the manual throttling Go
// programs resort to so that fine-grained recursion does not drown in
// goroutine overhead — the very granularity control the paper's
// scheduler makes unnecessary.
type ForkBounded struct {
	sem chan struct{}
}

// NewForkBounded creates a bounded forker allowing limit concurrent forks.
func NewForkBounded(limit int) *ForkBounded {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	return &ForkBounded{sem: make(chan struct{}, limit)}
}

// Fork runs f and g in parallel if budget allows, else sequentially.
// A panic in a forked f is re-raised on the caller after g completes;
// the budget slot is released either way, so a panicking fork does
// not shrink the semaphore for later calls.
func (fb *ForkBounded) Fork(f, g func() int64) (int64, int64) {
	select {
	case fb.sem <- struct{}{}:
		ch := make(chan forkOutcome, 1)
		go func() {
			var out forkOutcome
			defer func() {
				if r := recover(); r != nil {
					out.panicVal, out.panicked = r, true
				}
				<-fb.sem
				ch <- out
			}()
			out.v = f()
		}()
		b := g()
		out := <-ch
		if out.panicked {
			panic(out.panicVal)
		}
		return out.v, b
	default:
		return f(), g()
	}
}

// panicBox captures the first panic from a set of worker goroutines
// for re-raising on the coordinating side after the barrier. The set
// flag is written under the Once and read only after wg.Wait, whose
// happens-before edge (capture runs before the deferred wg.Done)
// makes the read race-free.
type panicBox struct {
	once sync.Once
	// The captured panic is published by the Once: writes happen only
	// inside the once.Do closure, reads only after the barrier.
	// woolvet:published-by once
	val any
	// woolvet:published-by once
	set bool
}

func (b *panicBox) capture(r any) {
	b.once.Do(func() { b.val, b.set = r, true })
}

func (b *panicBox) rethrow() {
	if b.set {
		panic(b.val)
	}
}

// ParallelFor runs body(i) for i in [lo, hi) using one goroutine per
// chunk and a WaitGroup barrier; chunks defaults to GOMAXPROCS. If a
// body panics, the remaining chunks still complete and the first
// panic value is re-raised on the caller after the barrier.
func ParallelFor(lo, hi int64, chunks int, body func(i int64)) {
	if hi <= lo {
		return
	}
	if chunks <= 0 {
		chunks = runtime.GOMAXPROCS(0)
	}
	n := hi - lo
	per := (n + int64(chunks) - 1) / int64(chunks)
	var wg sync.WaitGroup
	var pb panicBox
	for c := int64(0); c < int64(chunks); c++ {
		cl, ch := lo+c*per, lo+(c+1)*per
		if cl >= hi {
			break
		}
		if ch > hi {
			ch = hi
		}
		wg.Add(1)
		go func(cl, ch int64) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pb.capture(r)
				}
			}()
			for i := cl; i < ch; i++ {
				body(i)
			}
		}(cl, ch)
	}
	wg.Wait()
	pb.rethrow()
}

// ParallelForDynamic runs body(i) over [lo, hi) with GOMAXPROCS
// goroutines pulling chunk-sized slices from a shared counter — the
// dynamic-schedule analogue. A panicking body stops its own worker
// (the other workers finish the remaining chunks) and the first panic
// value is re-raised on the caller after the barrier.
func ParallelForDynamic(lo, hi, chunk int64, body func(i int64)) {
	if hi <= lo {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	var next atomic.Int64
	next.Store(lo)
	var wg sync.WaitGroup
	var pb panicBox
	workers := runtime.GOMAXPROCS(0)
	for c := 0; c < workers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pb.capture(r)
				}
			}()
			for {
				cl := next.Add(chunk) - chunk
				if cl >= hi {
					return
				}
				ch := cl + chunk
				if ch > hi {
					ch = hi
				}
				for i := cl; i < ch; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
	pb.rethrow()
}
