package core

// Parallel loop support: Wool's loop construct, which the paper's mm
// benchmark uses for its outermost loop, expands a [lo, hi) iteration
// range into a balanced binary task tree — so thieves steal large
// contiguous halves near the root and the per-iteration overhead is a
// spawn/join pair amortized over grain iterations.

type forCtx struct {
	body func(i int64)
}

var forTask *TaskDefC3[forCtx]

func init() {
	forTask = DefineC3("parallel-for", func(w *Worker, c *forCtx, lo, hi, grain int64) int64 {
		spawned := 0
		for hi-lo > grain {
			mid := (lo + hi) / 2
			forTask.Spawn(w, c, mid, hi, grain)
			hi = mid
			spawned++
		}
		for i := lo; i < hi; i++ {
			c.body(i)
		}
		for ; spawned > 0; spawned-- {
			forTask.Join(w)
		}
		return 0
	})
}

// For runs body(i) for every i in [lo, hi) as a balanced task tree
// with at most grain iterations per leaf (grain ≤ 0 means 1 — every
// iteration its own task, the no-cutoff regime the scheduler is built
// for). It returns when all iterations have completed. The body runs
// on whichever workers steal its subtrees and must be safe for that.
func For(w *Worker, lo, hi, grain int64, body func(i int64)) {
	if hi <= lo {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	c := &forCtx{body: body}
	forTask.Call(w, c, lo, hi, grain)
}
