package core

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// mustPanic runs f and returns the recovered panic value, failing the
// test if f returns normally.
func mustPanic(t *testing.T, what string, f func()) (r any) {
	t.Helper()
	defer func() {
		r = recover()
		if r == nil {
			t.Fatalf("%s: expected panic, got normal return", what)
		}
	}()
	f()
	return nil
}

// TestPoisonedPoolRejectsReuse pins the abort semantics of DESIGN.md
// §11: the first Run re-raises the original panic value, every later
// Run on the same pool fails fast with the distinct poisoned message
// (the task stacks may hold unjoined descriptors of the abandoned
// tree), and Close stays safe.
func TestPoisonedPoolRejectsReuse(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4})

	var boom *TaskDef1
	boom = Define1("boom", func(w *Worker, depth int64) int64 {
		if depth == 0 {
			panic("boom")
		}
		boom.Spawn(w, depth-1)
		boom.Call(w, depth-1)
		boom.Join(w)
		return 0
	})
	r := mustPanic(t, "first Run", func() {
		p.Run(func(w *Worker) int64 { return boom.Call(w, 10) })
	})
	if fmt.Sprint(r) != "boom" {
		t.Fatalf("first Run re-raised %v, want the original value boom", r)
	}

	r = mustPanic(t, "second Run on poisoned pool", func() {
		p.Run(func(w *Worker) int64 { return 0 })
	})
	msg, ok := r.(string)
	if !ok || !strings.Contains(msg, "pool poisoned by earlier task panic") ||
		!strings.Contains(msg, "boom") {
		t.Fatalf("poisoned Run panicked with %v, want the poisoned message naming the original panic", r)
	}

	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a poisoned pool")
	}
}

// TestRootPanicPoisonsPool covers the root-panic corruption bug: a
// panic escaping the root function used to leave worker 0's unjoined
// public descriptors stealable with the pool reusable. Now it must
// re-raise from Run, poison the pool, and stop the idle workers from
// executing the abandoned descriptors in the background.
func TestRootPanicPoisonsPool(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	// Spinning thieves (no sleep) make any post-panic execution of the
	// leaked descriptor as likely as possible if poisoning failed.
	p := NewPool(Options{Workers: 4, MaxIdleSleep: -1})
	defer p.Close()

	ranAfterPanic := make(chan struct{}, 8)
	leak := Define1("leak", func(w *Worker, x int64) int64 {
		ranAfterPanic <- struct{}{}
		return x
	})
	r := mustPanic(t, "Run with panicking root", func() {
		p.Run(func(w *Worker) int64 {
			leak.Spawn(w, 1) // deliberately never joined
			panic("root boom")
		})
	})
	if fmt.Sprint(r) != "root boom" {
		t.Fatalf("Run re-raised %v, want root boom", r)
	}

	// The leaked public descriptor must not be picked up by the (now
	// poison-stopped) idle workers. The task may legitimately have been
	// stolen before the panic was recorded; anything after this window
	// means a thief survived the poisoning.
	time.Sleep(20 * time.Millisecond)
	drained := len(ranAfterPanic)
	time.Sleep(50 * time.Millisecond)
	if got := len(ranAfterPanic); got > drained {
		t.Errorf("leaked descriptor executed %d more times after the poison settled", got-drained)
	}

	r = mustPanic(t, "Run on root-poisoned pool", func() {
		p.Run(func(w *Worker) int64 { return 0 })
	})
	if msg := fmt.Sprint(r); !strings.Contains(msg, "pool poisoned by earlier task panic: root boom") {
		t.Fatalf("poisoned Run panicked with %v, want the poisoned message", r)
	}
}

// TestPanicValuePreserved: the re-raised value must be the original
// panic value (not a formatted copy), so errors.Is/As keep working on
// error panics across the scheduler boundary.
func TestPanicValuePreserved(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	type marker struct{ n int }
	want := &marker{n: 42}
	r := mustPanic(t, "Run", func() {
		p.Run(func(w *Worker) int64 { panic(want) })
	})
	if r != want {
		t.Fatalf("re-raised value %v is not the original panic value", r)
	}
}
