// Package vtime is a deterministic virtual-time multiprocessor kernel:
// P logical processors execute Go code under a global token that is
// always granted to the processor with the smallest virtual clock.
//
// This is the substrate on which internal/sim runs the paper's
// schedulers with P ∈ {1..64} virtual processors on any host,
// including the single-core container this reproduction targets. The
// scheduling algorithms execute for real — every steal, back-off,
// trip-wire and leapfrog actually happens — but time is a per-processor
// cycle counter advanced by an explicit cost model instead of the
// wall clock.
//
// Concurrency discipline: exactly one processor goroutine runs at a
// time (it holds the token); all simulated-shared state is therefore
// plain Go data, data-race-free by construction, and every run with
// the same seed replays the identical interleaving. Processor code
// must call Step (or Yield) inside every loop so the coordinator can
// keep global time moving; between two yields a processor's actions
// are atomic with respect to the others, which is how the simulated
// schedulers model their CAS/lock primitives.
package vtime

import "fmt"

// Proc is one virtual processor. Its methods may only be called from
// the body function the Machine invoked on it, and only while that
// body holds the token (which it does whenever it is executing).
type Proc struct {
	id  int
	m   *Machine
	now uint64

	resume chan struct{}
	yield  chan struct{}
	done   bool
}

// ID returns the processor's index, 0..P-1.
func (p *Proc) ID() int { return p.id }

// Now returns the processor's virtual clock in cycles.
func (p *Proc) Now() uint64 { return p.now }

// Machine returns the machine this processor belongs to.
func (p *Proc) Machine() *Machine { return p.m }

// Advance adds cost cycles to the clock without releasing the token.
// Use it for the pieces of a compound operation that must stay atomic
// with respect to other processors.
func (p *Proc) Advance(cost uint64) { p.now += cost }

// Step adds cost cycles to the clock and releases the token, letting
// any processor that is now earlier in virtual time run. Every loop in
// simulated scheduler code must Step, or global time stalls.
func (p *Proc) Step(cost uint64) {
	p.now += cost
	p.yieldToken()
}

// Yield releases the token without advancing the clock.
func (p *Proc) Yield() { p.yieldToken() }

// WaitUntil advances the clock to at least t (modelling blocking on a
// resource that frees at time t, e.g. a contended lock) and yields.
// It is a no-op beyond a yield if the clock is already past t.
func (p *Proc) WaitUntil(t uint64) {
	if p.now < t {
		p.now = t
	}
	p.yieldToken()
}

func (p *Proc) yieldToken() {
	p.yield <- struct{}{}
	<-p.resume
}

// Machine is a set of virtual processors sharing a token.
type Machine struct {
	procs []*Proc
	// stop is the cooperative shutdown flag for idle loops (set by the
	// workload when the root computation completes). Token-guarded.
	stop bool
	// panicVal holds the first panic raised by a processor body;
	// Run re-raises it on its caller.
	panicVal  any
	panicking bool
}

// NewMachine creates a machine with n processors.
func NewMachine(n int) *Machine {
	if n <= 0 {
		panic(fmt.Sprintf("vtime: invalid processor count %d", n))
	}
	m := &Machine{}
	m.procs = make([]*Proc, n)
	for i := range m.procs {
		m.procs[i] = &Proc{
			id:     i,
			m:      m,
			resume: make(chan struct{}),
			yield:  make(chan struct{}),
		}
	}
	return m
}

// Procs returns the processor count.
func (m *Machine) Procs() int { return len(m.procs) }

// SetStop raises the cooperative stop flag (call from a proc body).
func (m *Machine) SetStop() { m.stop = true }

// Stopped reports the stop flag (call from a proc body).
func (m *Machine) Stopped() bool { return m.stop }

// Run executes body on every processor concurrently in virtual time
// and returns when all bodies have returned. It returns the final
// virtual clocks of all processors.
//
// The token protocol: the coordinator always resumes the unfinished
// processor with the smallest clock (ties broken by lowest ID), waits
// for it to yield or finish, and repeats. Within a call to Run the
// interleaving is a pure function of the bodies' behaviour.
// A panic in any body is re-raised from Run on the caller's goroutine;
// the machine is then unusable (the other processor goroutines are
// abandoned parked on their resume channels).
func (m *Machine) Run(body func(p *Proc)) []uint64 {
	m.stop = false
	m.panicVal = nil
	m.panicking = false
	for _, p := range m.procs {
		p.now = 0
		p.done = false
		go func(p *Proc) {
			<-p.resume
			defer func() {
				if r := recover(); r != nil && !m.panicking {
					// Token-held: the coordinator is blocked on our
					// yield, so this write is ordered.
					m.panicking = true
					m.panicVal = r
				}
				p.done = true
				p.yield <- struct{}{}
			}()
			body(p)
		}(p)
	}
	active := len(m.procs)
	for active > 0 {
		next := m.minProc()
		next.resume <- struct{}{}
		<-next.yield
		if m.panicking {
			panic(m.panicVal)
		}
		if next.done {
			active--
		}
	}
	times := make([]uint64, len(m.procs))
	for i, p := range m.procs {
		times[i] = p.now
	}
	return times
}

func (m *Machine) minProc() *Proc {
	var best *Proc
	for _, p := range m.procs {
		if p.done {
			continue
		}
		if best == nil || p.now < best.now {
			best = p
		}
	}
	return best
}
