package sched

// Job shapes: a workload's divide-and-conquer body, written once and
// instantiated per scheduler by the adapters (via the generic builders
// in port.go, or a backend's native construct where that is what the
// paper's version would use — work-sharing loops on the OpenMP-style
// pool, goroutines on the Go-native baseline).

// RecJob is a binary divide-and-conquer recursion over one int64
// parameter (fib, the stress tree): Leaf decides whether n is a leaf
// and computes it; Split yields the two subproblems, in the SPAWN/
// CALL/JOIN convention of the paper's Figure 2 — the first subproblem
// is called inline, the second is spawned — and the results are
// summed. State beyond the int64 (the stress leaf iteration count)
// travels by closure capture in Leaf/Split.
type RecJob struct {
	// Name labels the task definitions built from this job.
	Name string
	// Root is the argument of the root call.
	Root int64
	// Reps is the number of serialized parallel regions; 0 means 1.
	Reps int64
	// Leaf returns (value, true) when n is a leaf.
	Leaf func(n int64) (int64, bool)
	// Split returns the subproblems (inline, spawned) of an inner n.
	Split func(n int64) (inline, spawned int64)
}

// RangeJob is a reduction over an index range [0, N): each leaf
// computes Leaf(i) exactly once and the results are summed. Task-tree
// schedulers expand it as a balanced range splitter (how Wool's loop
// constructs expand); work-sharing backends run it as a parallel for —
// static schedule, or dynamic when Irregular says per-index work
// varies (the paper's mm vs ssf distinction).
type RangeJob struct {
	// Name labels the task definitions built from this job.
	Name string
	// N is the index range size.
	N int64
	// Reps is the number of serialized parallel regions; 0 means 1.
	Reps int64
	// Leaf computes index i and returns its contribution to the sum.
	Leaf func(i int64) int64
	// Irregular marks wildly varying per-index work; work-sharing
	// backends then use a dynamic schedule.
	Irregular bool
}

// reps normalizes a repetition count.
func reps(r int64) int64 {
	if r <= 0 {
		return 1
	}
	return r
}

// Serial runs the recursion with no task constructs — the conformance
// reference.
func (j RecJob) Serial() int64 {
	var rec func(n int64) int64
	rec = func(n int64) int64 {
		if v, ok := j.Leaf(n); ok {
			return v
		}
		a, b := j.Split(n)
		return rec(a) + rec(b)
	}
	var total int64
	for r := int64(0); r < reps(j.Reps); r++ {
		total += rec(j.Root)
	}
	return total
}

// Serial runs the range with no task constructs — the conformance
// reference. Leaf side effects happen once per repetition, exactly as
// in the parallel runs.
func (j RangeJob) Serial() int64 {
	var total int64
	for r := int64(0); r < reps(j.Reps); r++ {
		for i := int64(0); i < j.N; i++ {
			total += j.Leaf(i)
		}
	}
	return total
}
