package cholesky

import (
	"gowool/internal/chaselev"
)

// Port of the parallel factorization to the deque scheduler (the
// TBB-like baseline), for cross-scheduler validation: identical task
// structure to the wool version, different runtime underneath.

// ChaseLevSched bundles the deque-scheduler task definitions.
type ChaseLevSched struct {
	backsub *chaselev.TaskDefC3[Arena]
	mulsub  *chaselev.TaskDefC3[Arena]
}

// NewChaseLev builds the task definitions.
func NewChaseLev() *ChaseLevSched {
	s := &ChaseLevSched{}
	s.backsub = chaselev.DefineC3("chol-backsub", func(w *chaselev.Worker, ar *Arena, a, l, size int64) int64 {
		return int64(s.backsubStep(w, ar, int32(a), int32(l), size))
	})
	s.mulsub = chaselev.DefineC3("chol-mulsub", func(w *chaselev.Worker, ar *Arena, meta, ab1, ab2 int64) int64 {
		r, size, lower := unpackMeta(meta)
		a1, b1 := unpack2(ab1)
		a2, b2 := unpack2(ab2)
		r = s.mulsubStep(w, ar, r, a1, b1, size, lower)
		r = s.mulsubStep(w, ar, r, a2, b2, size, lower)
		return int64(r)
	})
	return s
}

// Factor factors m on the deque pool.
func (s *ChaseLevSched) Factor(p *chaselev.Pool, m *Matrix) {
	p.Run(func(w *chaselev.Worker) int64 {
		m.Root = s.chol(w, m.Ar, m.Root, m.Ar.Size)
		return 0
	})
}

func (s *ChaseLevSched) chol(w *chaselev.Worker, ar *Arena, a int32, size int64) int32 {
	if a == 0 {
		panic("cholesky: zero diagonal block (matrix is singular)")
	}
	if size == Block {
		blockCholesky(ar.Tile(a))
		return a
	}
	n := ar.Node(a)
	half := size / 2
	n.Child[q00] = s.chol(w, ar, n.Child[q00], half)
	n.Child[q10] = int32(s.backsub.Call(w, ar, int64(n.Child[q10]), int64(n.Child[q00]), half))
	n.Child[q11] = s.mulsubStep(w, ar, n.Child[q11], n.Child[q10], n.Child[q10], half, true)
	n.Child[q11] = s.chol(w, ar, n.Child[q11], half)
	return a
}

func (s *ChaseLevSched) backsubStep(w *chaselev.Worker, ar *Arena, a, l int32, size int64) int32 {
	if a == 0 {
		return 0
	}
	if size == Block {
		blockBacksub(ar.Tile(a), ar.Tile(l))
		return a
	}
	na, nl := ar.Node(a), ar.Node(l)
	half := size / 2
	l00, l10, l11 := nl.Child[q00], nl.Child[q10], nl.Child[q11]

	s.backsub.Spawn(w, ar, int64(na.Child[q00]), int64(l00), half)
	x10 := int32(s.backsub.Call(w, ar, int64(na.Child[q10]), int64(l00), half))
	x00 := int32(s.backsub.Join(w))
	na.Child[q00], na.Child[q10] = x00, x10

	s.mulsub.Spawn(w, ar, packMeta(na.Child[q01], half, false), pack2(x00, l10), 0)
	r11 := int32(s.mulsub.Call(w, ar, packMeta(na.Child[q11], half, false), pack2(x10, l10), 0))
	r01 := int32(s.mulsub.Join(w))

	s.backsub.Spawn(w, ar, int64(r01), int64(l11), half)
	x11 := int32(s.backsub.Call(w, ar, int64(r11), int64(l11), half))
	x01 := int32(s.backsub.Join(w))
	na.Child[q01], na.Child[q11] = x01, x11
	return a
}

func (s *ChaseLevSched) mulsubStep(w *chaselev.Worker, ar *Arena, r, a, b int32, size int64, lower bool) int32 {
	if a == 0 || b == 0 {
		return r
	}
	if size == Block {
		if r == 0 {
			r = ar.NewLeaf()
		}
		blockMulSub(ar.Tile(r), ar.Tile(a), ar.Tile(b), lower)
		return r
	}
	if r == 0 {
		r = ar.NewNode()
	}
	nr, na, nb := ar.Node(r), ar.Node(a), ar.Node(b)
	half := size / 2

	s.mulsub.Spawn(w, ar, packMeta(nr.Child[q00], half, lower),
		pack2(na.Child[q00], nb.Child[q00]), pack2(na.Child[q01], nb.Child[q01]))
	if !lower {
		s.mulsub.Spawn(w, ar, packMeta(nr.Child[q01], half, false),
			pack2(na.Child[q00], nb.Child[q10]), pack2(na.Child[q01], nb.Child[q11]))
	}
	s.mulsub.Spawn(w, ar, packMeta(nr.Child[q10], half, false),
		pack2(na.Child[q10], nb.Child[q00]), pack2(na.Child[q11], nb.Child[q01]))
	r11 := int32(s.mulsub.Call(w, ar, packMeta(nr.Child[q11], half, lower),
		pack2(na.Child[q10], nb.Child[q10]), pack2(na.Child[q11], nb.Child[q11])))

	r10 := int32(s.mulsub.Join(w))
	r01 := nr.Child[q01]
	if !lower {
		r01 = int32(s.mulsub.Join(w))
	}
	r00 := int32(s.mulsub.Join(w))
	nr.Child[q00], nr.Child[q01], nr.Child[q10], nr.Child[q11] = r00, r01, r10, r11
	return r
}
