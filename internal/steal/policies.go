package steal

// randomPolicy is uniform victim selection with optional distinct-k
// sampling — the pre-refactor nextVictim / distinctVictims / sampling
// path of core, reproduced bit for bit, and the base the other
// policies fall back to. All fields are owner-private per-worker state.
type randomPolicy struct {
	// woolvet:owner
	rng RNG
	// woolvet:owner
	self int
	// woolvet:owner
	n int
	// woolvet:owner
	k int
	// woolvet:owner
	buf [MaxSampling]int
}

func (p *randomPolicy) Name() string { return Random }

// pick is the legacy nextVictim: one xorshift step, uniform over the
// n-1 non-self indices. With one worker it returns self and the
// caller's steal attempt fails on the victim==self check.
//
// woolvet:inline
// woolvet:noescape
func (p *randomPolicy) pick() int {
	if p.n <= 1 {
		return p.self
	}
	x := p.rng.Next()
	v := int(x % uint64(p.n-1))
	if v >= p.self {
		v++
	}
	return v
}

// distinct fills out with up to k pairwise-distinct victim indices —
// the legacy core distinctVictims, byte for byte: enumerate everyone
// when k covers the pool, otherwise rejection-sample with a bounded
// try budget so a streak of duplicates degrades to fewer candidates
// instead of spinning.
func (p *randomPolicy) distinct(k int, out []int) int {
	n := p.n - 1 // candidate victims (everyone but self)
	if n <= 0 {
		return 0
	}
	if k > len(out) {
		k = len(out)
	}
	if k >= n {
		j := 0
		for i := 0; i < p.n; i++ {
			if i != p.self && j < len(out) {
				out[j] = i
				j++
			}
		}
		return j
	}
	cnt := 0
	for tries := 0; cnt < k && tries < 4*k+8; tries++ {
		idx := p.pick()
		dup := false
		for j := 0; j < cnt; j++ {
			if out[j] == idx {
				dup = true
				break
			}
		}
		if !dup {
			out[cnt] = idx
			cnt++
		}
	}
	return cnt
}

// Choose sits on every steal attempt of every backend: it may not
// allocate (the candidate buffer is the fixed-size buf array), though
// the sampling loop is past the inlining budget.
//
// woolvet:noescape
func (p *randomPolicy) Choose(stealable func(int) bool) int {
	if p.k <= 1 || stealable == nil {
		return p.pick()
	}
	cnt := p.distinct(p.k, p.buf[:])
	if cnt == 0 {
		return p.pick()
	}
	// Probe the candidates read-only and commit to the first that
	// looks stealable; when all look empty, fall through to the last
	// candidate anyway — the probe is only a hint and the CAS protocol
	// rechecks (legacy chooseVictim's fallback).
	v := -1
	for i := 0; i < cnt; i++ {
		v = p.buf[i]
		if stealable(v) {
			return v
		}
	}
	return v
}

// woolvet:inline
// woolvet:noescape
func (p *randomPolicy) Observe(int, bool) bool { return false }

// lastVictimPolicy layers last-successful-victim retention over
// randomPolicy — the pre-refactor Options.StealRetain logic from
// core's chooseVictim/idleLoop, bit for bit. The probed flag keeps the
// miss accounting identical to the legacy split: with a probe, misses
// are counted at Choose time (a failed CAS after a positive probe is a
// race, not a miss); without one (the simulator), misses are counted
// from Observe.
type lastVictimPolicy struct {
	randomPolicy
	// woolvet:owner
	retain int
	// woolvet:owner
	last int
	// woolvet:owner
	misses int
	// woolvet:owner
	probed bool
}

func (p *lastVictimPolicy) Name() string { return LastVictim }

// woolvet:noescape
func (p *lastVictimPolicy) Choose(stealable func(int) bool) int {
	p.probed = stealable != nil
	if lv := p.last; lv >= 0 && stealable != nil {
		if stealable(lv) {
			return lv
		}
		p.misses++
		if p.misses >= p.retain {
			p.last = -1
			p.misses = 0
		}
	}
	return p.randomPolicy.Choose(stealable)
}

// Observe runs after every steal attempt, hit or miss; it must both
// inline and stay allocation-free.
//
// woolvet:inline
// woolvet:noescape
func (p *lastVictimPolicy) Observe(v int, ok bool) (retained bool) {
	if ok {
		if p.last == v {
			retained = true
		} else {
			p.last = v
		}
		p.misses = 0
		return retained
	}
	if !p.probed && p.last >= 0 && v == p.last {
		p.misses++
		if p.misses >= p.retain {
			p.last = -1
			p.misses = 0
		}
	}
	return false
}

// sequentialPolicy scans victims round-robin from the thief's right
// neighbour: fully deterministic, no RNG. A successful steal keeps the
// cursor on the yielding victim (a busy victim is robbed until dry, so
// steals cluster); a failure advances it past the victim just tried.
type sequentialPolicy struct {
	// woolvet:owner
	self int
	// woolvet:owner
	n int
	// woolvet:owner
	cur int
}

func (p *sequentialPolicy) Name() string { return Sequential }

// woolvet:inline
// woolvet:noescape
func (p *sequentialPolicy) Choose(func(int) bool) int { return p.cur }

// woolvet:inline
// woolvet:noescape
func (p *sequentialPolicy) Observe(v int, ok bool) bool {
	if ok || p.n <= 1 {
		return false
	}
	c := (v + 1) % p.n
	if c == p.self {
		c = (c + 1) % p.n
	}
	p.cur = c
	return false
}

// localizedPolicy steals from the h ring-nearest workers (offsets
// alternating +1, -1, +2, -2, ... around the worker ring), spilling to
// a uniformly random victim with fixed probability per attempt —
// localized work stealing with spill-out (arXiv:1804.04773). One RNG
// draw decides both the spill (high 32 bits against a fixed-point
// threshold) and the neighbour index (low 32 bits).
type localizedPolicy struct {
	randomPolicy
	// woolvet:owner
	h int
	// woolvet:owner
	spill uint64
}

func (p *localizedPolicy) Name() string { return Localized }

// woolvet:noescape
func (p *localizedPolicy) Choose(stealable func(int) bool) int {
	if p.n <= 1 {
		return p.self
	}
	if p.h >= p.n-1 {
		// Neighborhood covers the whole ring: identical to random.
		return p.randomPolicy.Choose(stealable)
	}
	x := p.rng.Next()
	if x>>32 < p.spill {
		return p.pick() // spill out: uniform over everyone
	}
	j := int(uint32(x)) % p.h
	d := j/2 + 1
	v := p.self
	if j&1 == 0 {
		v += d
	} else {
		v -= d
	}
	v %= p.n
	if v < 0 {
		v += p.n
	}
	return v
}
