package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The woolvet annotation vocabulary (DESIGN.md §10). Directives are
// ordinary comments whose text begins with "woolvet:":
//
//	// woolvet:atomic [methods=M1,M2,...]
//	    on a struct field: the field must be a sync/atomic type and
//	    every access must be an immediate method call on it. With
//	    methods=..., mutation is further restricted to the listed
//	    methods (Load is always permitted); other calls need a
//	    site-level allow.
//
//	// woolvet:owner
//	    on a struct field: owner-private. Accesses must go through the
//	    executing-worker identifier — the enclosing method's receiver,
//	    or (by the codebase's convention) a parameter named w.
//
//	// woolvet:cacheline group=<name> [maxspan=N]
//	    on a struct field: starts a padded cache-line group. Groups
//	    must be separated by >= 64 bytes of padding; with maxspan=N the
//	    group's fields must span at most N bytes.
//
//	// woolvet:cacheline size=N
//	    on a struct type declaration: sizeof(T) must be exactly N.
//
//	// woolvet:thief
//	    on a function declaration: the function is a root of the
//	    thief-side call graph (steal/leapfrog paths); ownerprivate
//	    flags owner-state methods invoked on non-self workers anywhere
//	    reachable from these roots.
//
//	// woolvet:published-by <word>
//	    on a struct field: the field is published to other workers by
//	    the sibling field <word> (or, when no such sibling exists, by
//	    the abstract protocol word <word>, whose release/acquire points
//	    are the annotated functions below). The publication pass
//	    enforces that writes happen-before the release of <word> and
//	    reads happen-after its acquire.
//
//	// woolvet:release <word>
//	    on a function declaration: calling this function performs the
//	    release store of <word> for the task/struct it is passed.
//
//	// woolvet:acquire <word>
//	    on a function declaration: this function (or its return value)
//	    hands back data only after the acquire load of <word>.
//
//	// woolvet:publish-write <word>
//	    on a function declaration: the function writes published-by-
//	    <word> fields of its argument and then releases <word> itself
//	    (e.g. a stolen-task runner storing the result before done).
//
//	// woolvet:inline
//	    on a function declaration: the gc compiler must report
//	    "can inline" for it (perfbudget, via go build -gcflags=-m).
//
//	// woolvet:noescape
//	    on a function declaration: no value in its body may escape to
//	    the heap (perfbudget rejects "escapes to heap"/"moved to heap"
//	    diagnostics inside the function span).
//
//	//woolvet:allow <analyzer> [analyzer...] -- <reason>
//	    on the flagged line, the line above it, or a function's doc
//	    comment: suppress the named analyzers there. The reason after
//	    "--" is mandatory by convention (reviewed, not parsed). Allows
//	    that stop suppressing anything are themselves reported by the
//	    stale-suppression audit.

// Directive is one parsed woolvet comment.
type Directive struct {
	Verb  string            // "atomic", "owner", "cacheline", "thief", "allow"
	Args  []string          // bare (non key=value) arguments
	Attrs map[string]string // key=value arguments
	Pos   token.Pos
}

// parseDirective parses a single comment; ok is false when the comment
// is not a woolvet directive.
func parseDirective(c *ast.Comment) (Directive, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "woolvet:") {
		return Directive{}, false
	}
	text = strings.TrimPrefix(text, "woolvet:")
	// Cut the free-text reason, if any.
	if i := strings.Index(text, "--"); i >= 0 {
		text = text[:i]
	}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return Directive{}, false
	}
	d := Directive{Verb: fields[0], Attrs: map[string]string{}, Pos: c.Pos()}
	for _, f := range fields[1:] {
		if k, v, ok := strings.Cut(f, "="); ok {
			d.Attrs[k] = v
		} else {
			d.Args = append(d.Args, f)
		}
	}
	return d, true
}

// Annotations is the per-package index of woolvet directives.
type Annotations struct {
	// Fields maps a field object to its directives (atomic, owner,
	// cacheline group markers).
	Fields map[*types.Var][]Directive

	// StructSize maps a struct type object to its declared total size
	// (the "cacheline size=N" struct-level directive); -1 when unset.
	StructSize map[*types.TypeName]int64

	// ThiefRoots are functions annotated woolvet:thief.
	ThiefRoots map[*types.Func]bool

	// FuncDirs maps a function object to the directives in its doc
	// comment (thief, release, acquire, publish-write, inline,
	// noescape — everything except allow, which is positional).
	FuncDirs map[*types.Func][]Directive

	// allowLine maps file name -> line -> allow entries active there.
	allowLine map[string]map[int][]*allowEntry

	// allowRange holds function-body spans whose doc comment carries
	// an allow.
	allowRange []allowSpan
}

// allowEntry is one (directive, analyzer) suppression. used flips when
// the entry actually suppresses a diagnostic, feeding the stale-
// suppression audit.
type allowEntry struct {
	analyzer string
	pos      token.Pos
	used     bool
}

type allowSpan struct {
	entries    []*allowEntry
	start, end token.Pos
}

// FuncDirective returns the first directive with the given verb in
// fn's doc comment, if any.
func (a *Annotations) FuncDirective(fn *types.Func, verb string) (Directive, bool) {
	for _, d := range a.FuncDirs[fn] {
		if d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

// StaleAllows returns the positions and analyzer names of allow
// directives that suppressed nothing, restricted to analyzers in ran
// (an allow for a pass that was not part of this run is not stale,
// merely untested). Call after all analyzers have reported.
func (a *Annotations) StaleAllows(ran map[string]bool) []*allowEntry {
	// One source directive can be indexed twice — the file-wide scan
	// records a line entry and scanFuncDoc records a range entry at
	// the same position — and a diagnostic may mark only one of them
	// used. Aggregate used-ness by (pos, analyzer) so a directive is
	// stale only when none of its entries suppressed anything.
	type key struct {
		pos  token.Pos
		name string
	}
	used := map[key]bool{}
	first := map[key]*allowEntry{}
	var order []key
	visit := func(e *allowEntry) {
		k := key{e.pos, e.analyzer}
		if e.used {
			used[k] = true
		}
		if _, ok := first[k]; !ok {
			first[k] = e
			order = append(order, k)
		}
	}
	for _, lines := range a.allowLine {
		for _, entries := range lines {
			for _, e := range entries {
				visit(e)
			}
		}
	}
	for _, s := range a.allowRange {
		for _, e := range s.entries {
			visit(e)
		}
	}
	var stale []*allowEntry
	for _, k := range order {
		if !used[k] && ran[k.name] {
			stale = append(stale, first[k])
		}
	}
	return stale
}

// FieldDirective returns the first directive with the given verb on
// the field, if any.
func (a *Annotations) FieldDirective(f *types.Var, verb string) (Directive, bool) {
	for _, d := range a.Fields[f] {
		if d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

// Allowed reports whether analyzer findings at pos are suppressed by
// an allow directive, and marks the matching directive as used for
// the stale-suppression audit.
func (a *Annotations) Allowed(analyzer string, fset *token.FileSet, pos token.Pos) bool {
	hit := false
	p := fset.Position(pos)
	if lines, ok := a.allowLine[p.Filename]; ok {
		for _, l := range [2]int{p.Line, p.Line - 1} {
			for _, e := range lines[l] {
				if e.analyzer == analyzer {
					e.used = true
					hit = true
				}
			}
		}
	}
	for _, s := range a.allowRange {
		if pos >= s.start && pos <= s.end {
			for _, e := range s.entries {
				if e.analyzer == analyzer {
					e.used = true
					hit = true
				}
			}
		}
	}
	return hit
}

// ScanAnnotations builds the annotation index for a package.
func ScanAnnotations(fset *token.FileSet, files []*ast.File, info *types.Info) *Annotations {
	ann := &Annotations{
		Fields:     map[*types.Var][]Directive{},
		StructSize: map[*types.TypeName]int64{},
		ThiefRoots: map[*types.Func]bool{},
		FuncDirs:   map[*types.Func][]Directive{},
		allowLine:  map[string]map[int][]*allowEntry{},
	}
	for _, f := range files {
		// Line-level allows, from every comment in the file.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok || d.Verb != "allow" {
					continue
				}
				p := fset.Position(c.Pos())
				if ann.allowLine[p.Filename] == nil {
					ann.allowLine[p.Filename] = map[int][]*allowEntry{}
				}
				for _, name := range d.Args {
					ann.allowLine[p.Filename][p.Line] = append(ann.allowLine[p.Filename][p.Line],
						&allowEntry{analyzer: name, pos: c.Pos()})
				}
			}
		}
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				scanFuncDoc(ann, info, decl)
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					scanTypeSpec(ann, info, decl, ts)
				}
			}
		}
	}
	return ann
}

func scanFuncDoc(ann *Annotations, info *types.Info, fd *ast.FuncDecl) {
	if fd.Doc == nil {
		return
	}
	for _, c := range fd.Doc.List {
		d, ok := parseDirective(c)
		if !ok {
			continue
		}
		if d.Verb == "allow" {
			var entries []*allowEntry
			for _, name := range d.Args {
				entries = append(entries, &allowEntry{analyzer: name, pos: c.Pos()})
			}
			ann.allowRange = append(ann.allowRange, allowSpan{
				entries: entries,
				start:   fd.Pos(),
				end:     fd.End(),
			})
			continue
		}
		obj, ok := info.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		ann.FuncDirs[obj] = append(ann.FuncDirs[obj], d)
		if d.Verb == "thief" {
			ann.ThiefRoots[obj] = true
		}
	}
}

func scanTypeSpec(ann *Annotations, info *types.Info, gd *ast.GenDecl, ts *ast.TypeSpec) {
	// Struct-level directives live in the type's doc comment.
	for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			d, ok := parseDirective(c)
			if !ok || d.Verb != "cacheline" {
				continue
			}
			if sz, ok := d.Attrs["size"]; ok {
				if obj, ok2 := info.Defs[ts.Name].(*types.TypeName); ok2 {
					ann.StructSize[obj] = parseInt(sz)
				}
			}
		}
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		var dirs []Directive
		for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				if d, ok := parseDirective(c); ok && d.Verb != "allow" {
					dirs = append(dirs, d)
				}
			}
		}
		if len(dirs) == 0 {
			continue
		}
		for _, name := range field.Names {
			if obj, ok := info.Defs[name].(*types.Var); ok {
				ann.Fields[obj] = append(ann.Fields[obj], dirs...)
			}
		}
	}
}

func parseInt(s string) int64 {
	var n int64
	for _, r := range s {
		if r < '0' || r > '9' {
			return -1
		}
		n = n*10 + int64(r-'0')
	}
	return n
}
