package gowool

import (
	"gowool/internal/poolerr"
	"gowool/internal/resilience"
	"gowool/internal/sched"
	"gowool/internal/serve"
)

// This file is the public surface of woolserve, the concurrent
// request-serving runtime over the scheduler (internal/serve,
// DESIGN.md §16). A Pool runs one root task at a time; a Server runs
// many — Submit enqueues a request from any goroutine, lanes of
// workers drain the queues, a request's context cancels or times it
// out mid-flight, bounded queues shed overload, and weighted tenants
// get proportionally sized worker teams.
//
// The server is self-healing (DESIGN.md §17): each tenant gets a
// circuit breaker that sheds submissions after a failure storm and
// probes its way back, deadline-aware admission sheds requests whose
// deadlines the learned service time says cannot be met, callers can
// mark requests retry-safe (Server.SubmitWith) for budgeted in-server
// retries, and a lane whose pool cannot be returned to service is
// quarantined and hot-replaced. ResilienceOptions (on ServerOptions)
// tunes or disables each mechanism; Server.Health exposes the state
// machines.
//
// The underlying per-request abort machinery is also public on Pool
// itself for programs that manage their own pools: Pool.Abort poisons
// a running pool so its Run unwinds with an *AbortError, Pool.Poisoned
// observes the poison, and Pool.Reset returns the pool to service.

type (
	// Server is the serving runtime: create with NewServer, submit with
	// Server.Submit, stop with Server.Close.
	Server = serve.Server

	// ServerOptions configures NewServer; the zero value serves a
	// single anonymous tenant on the wool backend with GOMAXPROCS
	// workers.
	ServerOptions = serve.Options

	// Tenant declares one named request class with a weighted worker
	// team and its own bounded queue.
	Tenant = serve.Tenant

	// Ticket is a submitted request's handle; Ticket.Wait blocks for
	// the result.
	Ticket = serve.Ticket

	// SubmitOptions qualifies one submission (Server.SubmitWith);
	// Retryable marks the request safe for budgeted in-server retries.
	SubmitOptions = serve.SubmitOptions

	// Job is a servable request, built with ServeRec or ServeRange.
	Job = serve.Job

	// ServerStats is a point-in-time server snapshot (Server.Stats).
	ServerStats = serve.Stats

	// TenantStats is one tenant's counters in a ServerStats.
	TenantStats = serve.TenantStats

	// ServerHealth is a point-in-time self-healing snapshot
	// (Server.Health): breaker positions, lane quarantine state,
	// failure streaks.
	ServerHealth = serve.Health

	// LaneHealth is one lane's self-healing state in a ServerHealth.
	LaneHealth = serve.LaneHealth

	// TenantHealth is one tenant's resilience state in a ServerHealth.
	TenantHealth = serve.TenantHealth

	// ResilienceOptions tunes (or disables) the server's self-healing
	// mechanisms (ServerOptions.Resilience); the zero value enables
	// them all with the documented defaults.
	ResilienceOptions = resilience.Options

	// TenantResilience overrides the server-wide resilience defaults
	// for one tenant (Tenant.Resilience); nil fields inherit.
	TenantResilience = resilience.TenantConfig

	// BreakerConfig tunes a tenant's circuit breaker: sliding
	// failure-rate window, cooldown, half-open probe count.
	BreakerConfig = resilience.BreakerConfig

	// BreakerHealth is a breaker's snapshot inside a TenantHealth.
	BreakerHealth = resilience.BreakerHealth

	// EstimatorConfig tunes deadline-aware admission's per-(tenant,
	// job class) service-time estimate.
	EstimatorConfig = resilience.EstimatorConfig

	// RetryConfig tunes the retry budget and backoff for requests
	// submitted with SubmitOptions.Retryable.
	RetryConfig = resilience.RetryConfig

	// QuarantineConfig tunes when a lane is pulled from rotation and
	// its pool hot-replaced.
	QuarantineConfig = resilience.QuarantineConfig

	// PanicError is a request's Wait error when its task tree panicked;
	// the server isolates the panic to that request.
	PanicError = serve.PanicError

	// AbortError is the panic value an aborted Run unwinds with
	// (Pool.Abort, or a Server cancelling a request mid-flight); it
	// unwraps to the abort reason.
	AbortError = poolerr.AbortError

	// RecJob describes a binary divide-and-conquer job generically:
	// written once, runnable on any registered scheduler and servable
	// via ServeRec.
	RecJob = sched.RecJob

	// RangeJob describes an index-range job generically; servable via
	// ServeRange.
	RangeJob = sched.RangeJob
)

// Sentinel errors of the serving layer, matched with errors.Is.
var (
	// ErrOverloaded rejects a Submit that found the tenant's bounded
	// queue full (admission control; ServerOptions.MaxPending).
	ErrOverloaded = serve.ErrOverloaded

	// ErrCircuitOpen rejects a Submit while the tenant's circuit
	// breaker is open (failure storm; it re-admits via half-open
	// probes after the cooldown).
	ErrCircuitOpen = serve.ErrCircuitOpen

	// ErrDeadlineUnmeetable rejects a Submit whose context deadline is
	// closer than the learned service time for the request's job class
	// — shedding up front instead of burning a lane on a doomed run.
	ErrDeadlineUnmeetable = serve.ErrDeadlineUnmeetable

	// ErrServerClosed rejects submissions to, and fails tickets drained
	// by, a closed Server.
	ErrServerClosed = serve.ErrClosed

	// ErrUnknownTenant rejects a Submit naming an undeclared tenant.
	ErrUnknownTenant = serve.ErrUnknownTenant

	// ErrConcurrentRun is wrapped by the panic raised when two Run
	// calls overlap on the same pool (every pooled backend raises it;
	// a Server never does, serialization is its job).
	ErrConcurrentRun = poolerr.ErrConcurrentRun
)

// NewServer builds and starts a serving runtime. The caller must
// Close it.
func NewServer(o ServerOptions) (*Server, error) { return serve.New(o) }

// ServeRec wraps a divide-and-conquer job as a servable request.
func ServeRec(j RecJob) Job { return serve.Rec(j) }

// ServeRange wraps an index-range job as a servable request.
func ServeRange(j RangeJob) Job { return serve.Range(j) }
