package ompstyle

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func serialFib(n int64) int64 {
	if n < 2 {
		return n
	}
	return serialFib(n-1) + serialFib(n-2)
}

// ompFib is fib with OpenMP-style tasks: spawn one child task, compute
// the other branch inline, taskwait, combine.
func ompFib(tc *Context, n int64) int64 {
	if n < 2 {
		return n
	}
	var a int64
	tc.SpawnTask(func(tc2 *Context) { a = ompFib(tc2, n-2) })
	b := ompFib(tc, n-1)
	tc.Taskwait()
	return a + b
}

func TestFib(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, workers := range []int{1, 2, 4} {
		p := NewPool(Options{Workers: workers})
		got := p.Run(func(tc *Context) int64 { return ompFib(tc, 16) })
		if want := serialFib(16); got != want {
			t.Errorf("workers=%d: got %d want %d", workers, got, want)
		}
		p.Close()
	}
}

func TestTaskwaitWaitsForChildren(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	var done atomic.Int64
	p.Run(func(tc *Context) int64 {
		for i := 0; i < 100; i++ {
			tc.SpawnTask(func(*Context) { done.Add(1) })
		}
		tc.Taskwait()
		if got := done.Load(); got != 100 {
			t.Errorf("after taskwait: %d children done, want 100", got)
		}
		return 0
	})
}

func TestNestedTasksComplete(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4})
	defer p.Close()
	var leaves atomic.Int64
	var spawnTree func(tc *Context, depth int)
	spawnTree = func(tc *Context, depth int) {
		if depth == 0 {
			leaves.Add(1)
			return
		}
		tc.SpawnTask(func(tc2 *Context) { spawnTree(tc2, depth-1) })
		tc.SpawnTask(func(tc2 *Context) { spawnTree(tc2, depth-1) })
		tc.Taskwait()
	}
	p.Run(func(tc *Context) int64 {
		spawnTree(tc, 7)
		return 0
	})
	if got := leaves.Load(); got != 128 {
		t.Errorf("leaves = %d, want 128", got)
	}
}

func TestParallelForStatic(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4})
	defer p.Close()
	out := make([]int64, 1000)
	p.Run(func(tc *Context) int64 {
		tc.ParallelFor(0, 1000, Static, 0, func(i int64) { out[i] = i * 2 })
		return 0
	})
	for i, v := range out {
		if v != int64(2*i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestParallelForDynamic(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4})
	defer p.Close()
	out := make([]int64, 777)
	p.Run(func(tc *Context) int64 {
		tc.ParallelFor(0, 777, Dynamic, 32, func(i int64) { out[i] = i + 1 })
		return 0
	})
	for i, v := range out {
		if v != int64(i+1) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if st := p.Stats(); st.ChunksRun < 777/32 {
		t.Errorf("chunks run = %d, want >= %d", st.ChunksRun, 777/32)
	}
}

func TestParallelForEmpty(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	p.Run(func(tc *Context) int64 {
		tc.ParallelFor(5, 5, Static, 0, func(i int64) { t.Error("body ran") })
		tc.ParallelFor(7, 3, Dynamic, 2, func(i int64) { t.Error("body ran") })
		return 0
	})
}

func TestStats(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	p.Run(func(tc *Context) int64 { return ompFib(tc, 10) })
	st := p.Stats()
	if st.Spawns == 0 || st.Executed != st.Spawns {
		t.Errorf("spawns=%d executed=%d, want equal and nonzero", st.Spawns, st.Executed)
	}
	p.ResetStats()
	if st := p.Stats(); st.Spawns != 0 {
		t.Errorf("after reset spawns=%d", st.Spawns)
	}
}

func BenchmarkSpawnWaitOMP(b *testing.B) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	b.ResetTimer()
	p.Run(func(tc *Context) int64 {
		for i := 0; i < b.N; i++ {
			tc.SpawnTask(func(*Context) {})
			tc.Taskwait()
		}
		return 0
	})
}
