// Command woolgen emits monomorphic spawn/join/steal-handler code for
// declared task signatures (DESIGN.md §13). It is meant to be driven
// by go:generate directives in the declaring package:
//
//	//go:generate go run gowool/cmd/woolgen -pkg fibw -out fib_gen.go -task Fib:1
//
// For each -task Name:args[:ctx=TYPE][:batch] the output provides
// Spawn<Name>, Join<Name> and Call<Name> (plus the Spawn<Name>N /
// Join<Name>N batch pair with :batch) around a user body function
// <name>Body defined in the same package. The output carries a
// provenance header checked by the woolvet generated pass, and the
// internal/gen drift tests fail when a committed output goes stale —
// regenerate with `go generate ./...`.
package main

import (
	"fmt"
	"os"

	"gowool/internal/gen"
)

func main() {
	f, out, err := gen.FromArgs(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	src, err := gen.Generate(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, src, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("woolgen: wrote %s (%d task signatures)\n", out, len(f.Sigs))
}
