package core

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestWatchdogTripsOnStuckJoin forges the hang the watchdog exists
// for: a task whose state claims it was stolen by a thief that will
// never complete it. The join leapfrogs forever; the watchdog must
// detect the flat progress heartbeat plus the blocked worker, dump a
// bundle, and fail the Run with a *WatchdogError instead of hanging.
func TestWatchdogTripsOnStuckJoin(t *testing.T) {
	p := NewPool(Options{Workers: 1, Watchdog: 25 * time.Millisecond})
	defer p.Close()
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	var we *WatchdogError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Run returned instead of failing on a stuck join")
			}
			e, ok := r.(*WatchdogError)
			if !ok {
				t.Fatalf("stuck Run panicked with %T (%v), want *WatchdogError", r, r)
			}
			we = e
		}()
		p.Run(func(w *Worker) int64 {
			noop.Spawn(w, 7)
			// Forge a thief that claimed the task and died: STOLEN(0)
			// with bot untouched. The join must leapfrog forever.
			w.tasks[0].state.Swap(stolenState(0))
			return noop.Join(w)
		})
	}()
	if we.Interval != 25*time.Millisecond {
		t.Fatalf("WatchdogError.Interval = %v", we.Interval)
	}
	for _, want := range []string{"blocked", "worker 0", "progress="} {
		if !strings.Contains(we.Error(), want) {
			t.Fatalf("diagnostic bundle missing %q:\n%s", want, we.Error())
		}
	}
	// The trip rides the panic machinery: the pool must be poisoned.
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(r.(string), "poisoned") {
				t.Fatalf("post-trip Run: got %v, want pool-poisoned panic", r)
			}
		}()
		p.Run(func(w *Worker) int64 { return 0 })
	}()
}

// TestWatchdogIgnoresLongInlineRoot is the false-positive guard: a
// single legitimately long-running task — longer than the interval,
// with every counter quiescent and no worker blocked — must not trip.
func TestWatchdogIgnoresLongInlineRoot(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 2, Watchdog: 20 * time.Millisecond})
	defer p.Close()
	got := p.Run(func(w *Worker) int64 {
		time.Sleep(150 * time.Millisecond) // quiescent-but-legal
		return 42
	})
	if got != 42 {
		t.Fatalf("Run = %d, want 42", got)
	}
	if e := p.wdErr.Load(); e != nil {
		t.Fatalf("watchdog tripped on a legal long-running root:\n%s", e.Error())
	}
}

// TestWatchdogIgnoresLongStolenTask: the harder false-positive shape —
// the owner IS blocked (leapfrogging the thief) for far longer than
// the interval, but the thief is executing the stolen task the whole
// time. The executing-worker check must hold the watchdog off.
func TestWatchdogIgnoresLongStolenTask(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 2, Watchdog: 25 * time.Millisecond})
	defer p.Close()
	slow := Define1("slow", func(w *Worker, x int64) int64 {
		time.Sleep(200 * time.Millisecond)
		return x
	})
	got := p.Run(func(w *Worker) int64 {
		slow.Spawn(w, 7)
		// Wait until the thief has actually taken it, so the join below
		// becomes a long leapfrog wait rather than an inline call.
		deadline := time.Now().Add(2 * time.Second)
		for p.workers[1].steals.Load() == 0 && time.Now().Before(deadline) {
			runtime.Gosched()
		}
		return slow.Join(w)
	})
	if got != 7 {
		t.Fatalf("Run = %d, want 7", got)
	}
	if e := p.wdErr.Load(); e != nil {
		t.Fatalf("watchdog tripped on a long-running stolen task:\n%s", e.Error())
	}
}
