package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicField enforces "// woolvet:atomic": a tagged field is a
// protocol word shared between owner and thieves, so it must be
// declared as a sync/atomic type and every access must be an immediate
// method call on the field (w.bot.Load(), t.state.CompareAndSwap(...)).
// Anything else — taking its address, copying it, assigning through it
// — would bypass the protocol the paper's Section III-A correctness
// argument rests on.
//
// A "methods=M1,M2,..." attribute further restricts which methods may
// be called. Task.state uses it to pin claiming to owner-exchange
// (Swap) and thief-CAS (CompareAndSwap) plus Load: the remaining
// stores are each an explicitly allowlisted publication or
// reset site ("//woolvet:allow atomicfield -- <why>").
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "woolvet:atomic fields are sync/atomic types accessed only through their methods",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) {
	// Declaration check: a tagged field must be a sync/atomic type.
	// This is what catches "de-atomizing" a protocol word at the
	// declaration itself.
	for obj, dirs := range pass.Ann.Fields {
		for _, d := range dirs {
			if d.Verb != "atomic" {
				continue
			}
			if !isAtomicType(obj.Type()) {
				pass.Report(obj.Pos(),
					"field %s is tagged woolvet:atomic but declared as %s; protocol words must use a sync/atomic type",
					obj.Name(), obj.Type())
			}
		}
	}

	walkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		obj, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		dir, tagged := pass.Ann.FieldDirective(obj, "atomic")
		if !tagged {
			return true
		}
		method, isCall := atomicCallContext(sel, stack)
		if !isCall {
			pass.Report(sel.Sel.Pos(),
				"field %s is tagged woolvet:atomic and may only be used as the receiver of a sync/atomic method call",
				obj.Name())
			return true
		}
		if ms, restricted := dir.Attrs["methods"]; restricted {
			if !methodAllowed(ms, method) {
				pass.Report(sel.Sel.Pos(),
					"field %s may only be claimed via %s (owner-exchange / thief-CAS discipline); %s needs a //woolvet:allow atomicfield site annotation",
					obj.Name(), ms, method)
			}
		}
		return true
	})
}

// atomicCallContext reports whether sel (the field selector) is
// immediately the receiver of a method call, returning the method
// name: parent must be a SelectorExpr whose X is sel, grandparent a
// CallExpr invoking it.
func atomicCallContext(sel *ast.SelectorExpr, stack []ast.Node) (string, bool) {
	if len(stack) < 2 {
		return "", false
	}
	parent, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	if !ok || parent.X != sel {
		return "", false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok || call.Fun != parent {
		return "", false
	}
	return parent.Sel.Name, true
}

func methodAllowed(list, method string) bool {
	for _, m := range strings.Split(list, ",") {
		if m == method {
			return true
		}
	}
	return false
}

// isAtomicType reports whether t is a named type from sync/atomic
// (atomic.Uint64, atomic.Int64, atomic.Bool, atomic.Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}
