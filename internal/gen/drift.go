package gen

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// The woolgen command line is the single source of truth for what a
// package generates: the //go:generate directive in the hand-written
// source names the signatures, and the drift check re-parses that very
// line, regenerates, and byte-compares against the committed output.
// Regenerating is therefore always `go generate ./...` — there is no
// second spec to keep in sync.

// generatePrefix is the directive the drift scanner recognizes.
const generatePrefix = "//go:generate go run gowool/cmd/woolgen "

// stringList is a repeatable string flag.
type stringList []string

func (l *stringList) String() string { return strings.Join(*l, ",") }
func (l *stringList) Set(s string) error {
	*l = append(*l, s)
	return nil
}

// FromArgs parses woolgen's command line into a File declaration and
// the output path. Flags:
//
//	-pkg NAME     output package name (required)
//	-out FILE     output path (required)
//	-task SPEC    task signature, repeatable (see ParseSpec)
//	-import PATH  extra import path, repeatable
func FromArgs(args []string) (File, string, error) {
	fs := flag.NewFlagSet("woolgen", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	pkg := fs.String("pkg", "", "output package name")
	out := fs.String("out", "", "output file path")
	var tasks, imports stringList
	fs.Var(&tasks, "task", "task signature Name:args[:ctx=TYPE][:batch] (repeatable)")
	fs.Var(&imports, "import", "extra import path (repeatable)")
	if err := fs.Parse(args); err != nil {
		return File{}, "", err
	}
	if *pkg == "" || *out == "" {
		return File{}, "", fmt.Errorf("woolgen: -pkg and -out are required")
	}
	if len(fs.Args()) != 0 {
		return File{}, "", fmt.Errorf("woolgen: unexpected arguments %q", fs.Args())
	}
	f := File{Package: *pkg, Imports: imports}
	for _, spec := range tasks {
		sig, err := ParseSpec(spec)
		if err != nil {
			return File{}, "", err
		}
		f.Sigs = append(f.Sigs, sig)
	}
	if len(f.Sigs) == 0 {
		return File{}, "", fmt.Errorf("woolgen: at least one -task is required")
	}
	return f, *out, nil
}

// splitArgs splits a go:generate argument string on spaces (the
// directives this repo writes quote nothing).
func splitArgs(line string) []string {
	return strings.Fields(line)
}

// DiscoverDirs walks root and returns every directory (relative to
// root) whose hand-written sources carry a woolgen go:generate
// directive — the drift gate's subjects. New generating packages are
// picked up automatically; nothing maintains a directory list.
func DiscoverDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if name := info.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_gen.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Line-anchored, exactly like VerifyDir: directive mentions in
		// doc comments (cmd/woolgen, this file) are not subjects.
		directive := false
		for _, line := range strings.Split(string(src), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), generatePrefix) {
				directive = true
				break
			}
		}
		if !directive {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				return err
			}
			dirs = append(dirs, rel)
		}
		return nil
	})
	return dirs, err
}

// VerifyDir finds every woolgen go:generate directive in dir's
// hand-written sources, regenerates each declared output in memory and
// byte-compares it with the committed file. A non-nil error means the
// committed output is stale (or hand-edited) and `go generate` must be
// re-run. It returns the number of directives checked.
func VerifyDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	checked := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return checked, err
		}
		for _, line := range strings.Split(string(src), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, generatePrefix) {
				continue
			}
			f, out, err := FromArgs(splitArgs(strings.TrimPrefix(line, generatePrefix)))
			if err != nil {
				return checked, fmt.Errorf("%s: %v", e.Name(), err)
			}
			want, err := Generate(f)
			if err != nil {
				return checked, fmt.Errorf("%s: %v", e.Name(), err)
			}
			got, err := os.ReadFile(filepath.Join(dir, out))
			if err != nil {
				return checked, fmt.Errorf("%s: committed output missing: %v", e.Name(), err)
			}
			if !bytes.Equal(got, want) {
				return checked, fmt.Errorf("%s is stale: regenerate with `go generate %s`", out, dir)
			}
			checked++
		}
	}
	return checked, nil
}
