package fibw

import (
	"testing"

	"gowool/internal/costmodel"
	"gowool/internal/sim"
)

func TestCilkSimFibValues(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8} {
		cfg := sim.Config{Procs: procs, Costs: costmodel.CilkPP(), Seed: 7}
		got, res := RunCilkSim(cfg, 15)
		if want := Serial(15); got != want {
			t.Errorf("procs=%d: fib = %d, want %d", procs, got, want)
		}
		if res.Makespan == 0 {
			t.Errorf("procs=%d: zero makespan", procs)
		}
		if res.Total.Spawns != 2*Tasks(15) {
			t.Errorf("procs=%d: spawns = %d, want %d (two per internal node)",
				procs, res.Total.Spawns, 2*Tasks(15))
		}
	}
}

func TestCilkSimDeterministic(t *testing.T) {
	cfg := sim.Config{Procs: 8, Costs: costmodel.CilkPP(), Seed: 99}
	_, a := RunCilkSim(cfg, 14)
	_, b := RunCilkSim(cfg, 14)
	if a.Makespan != b.Makespan || a.Total.Steals != b.Total.Steals {
		t.Errorf("replay diverged: %d/%d vs %d/%d",
			a.Makespan, a.Total.Steals, b.Makespan, b.Total.Steals)
	}
}

func TestCilkSimSpeedupOnCoarseWork(t *testing.T) {
	// Steal-parent must parallelize too; fib's tiny tasks won't show
	// absolute speedup under Cilk++ costs, so compare its own scaling.
	cfg1 := sim.Config{Procs: 1, Costs: costmodel.CilkPP()}
	cfg8 := sim.Config{Procs: 8, Costs: costmodel.CilkPP()}
	_, r1 := RunCilkSim(cfg1, 18)
	_, r8 := RunCilkSim(cfg8, 18)
	if sp := float64(r1.Makespan) / float64(r8.Makespan); sp < 1.5 {
		t.Errorf("8-proc relative speedup = %.2f, want >= 1.5", sp)
	}
}
