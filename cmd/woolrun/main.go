// Command woolrun runs a single workload on a chosen scheduler — the
// quick way to poke at the runtime: native execution on the gowool
// scheduler (and baselines), or a deterministic virtual-time
// simulation at any processor count.
//
// Examples:
//
//	woolrun -workload fib -n 30 -workers 4 -private
//	woolrun -workload stress -height 8 -iters 256 -reps 1000 -workers 8
//	woolrun -workload mm -n 256 -sched chaselev
//	woolrun -workload cholesky -n 500 -nz 2000 -stats
//	woolrun -sim -workload fib -n 24 -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"gowool/internal/chaselev"
	"gowool/internal/core"
	"gowool/internal/costmodel"
	"gowool/internal/locksched"
	"gowool/internal/ompstyle"
	"gowool/internal/sim"
	"gowool/internal/workloads/cholesky"
	"gowool/internal/workloads/fibw"
	"gowool/internal/workloads/mm"
	"gowool/internal/workloads/ssf"
	"gowool/internal/workloads/stress"
)

var (
	workload = flag.String("workload", "fib", "fib | stress | mm | ssf | cholesky")
	sched    = flag.String("sched", "wool", "wool | locksched | chaselev | omp | serial")
	workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker count")
	private  = flag.Bool("private", false, "enable private tasks (wool)")
	simulate = flag.Bool("sim", false, "run on the virtual-time simulator instead of natively")
	n        = flag.Int64("n", 30, "size parameter (fib n, mm rows, ssf word index, cholesky rows)")
	nz       = flag.Int64("nz", 4000, "cholesky nonzeros")
	height   = flag.Int64("height", 8, "stress tree height")
	iters    = flag.Int64("iters", 256, "stress leaf iterations")
	reps     = flag.Int64("reps", 1, "repetitions (serialized parallel regions)")
	stats    = flag.Bool("stats", false, "print scheduler statistics")
)

func main() {
	flag.Parse()
	if *simulate {
		runSim()
		return
	}
	runNative()
}

func runSim() {
	var def *sim.Def
	var args sim.Args
	switch *workload {
	case "fib":
		def, args = fibw.NewSim(), sim.Args{A0: *n}
	case "stress":
		def, args = stress.NewSimReps(), sim.Args{A0: *height, A1: *iters, A2: *reps}
	case "mm":
		def, args = mm.NewSimReps(), sim.Args{A0: *n, A1: *reps}
	case "ssf":
		wk := &ssf.Work{S: ssf.FibString(*n)}
		def, args = ssf.NewSimReps(), sim.Args{A0: *reps, Ctx: wk}
	case "cholesky":
		def, args = cholesky.NewSim().RepsDef(), sim.Args{A0: *reps, A1: *n, A2: *nz, A3: 42}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	res := sim.Run(sim.Config{
		Procs: *workers, Kind: sim.KindDirectStack,
		Costs: costmodel.Wool(), PrivateTasks: *private,
	}, def, args)
	fmt.Printf("result=%d makespan=%d cycles (%.3f ms at 2.5GHz)\n",
		res.Value, res.Makespan, float64(res.Makespan)/costmodel.CyclesPerNS/1e6)
	if *stats {
		s := res.Total
		fmt.Printf("spawns=%d joins(pub/priv/stolen)=%d/%d/%d steals=%d attempts=%d publications=%d\n",
			s.Spawns, s.JoinsPublic, s.JoinsPrivate, s.JoinsStolen, s.Steals, s.Attempts, s.Publications)
		fmt.Printf("cycles NA=%d LA=%d ST=%d LF=%d\n", s.NA, s.LA, s.ST, s.LF)
	}
}

func runNative() {
	t0 := time.Now()
	var result int64
	var printStats func()

	switch *sched {
	case "serial":
		result = runSerial()
	case "wool":
		p := core.NewPool(core.Options{Workers: *workers, PrivateTasks: *private})
		defer p.Close()
		result = runWool(p)
		printStats = func() { fmt.Printf("%+v\n", p.Stats()) }
	case "locksched":
		p := locksched.NewPool(locksched.Options{Workers: *workers})
		defer p.Close()
		result = runLock(p)
		printStats = func() { fmt.Printf("%+v\n", p.Stats()) }
	case "chaselev":
		p := chaselev.NewPool(chaselev.Options{Workers: *workers})
		defer p.Close()
		result = runChaseLev(p)
		printStats = func() { fmt.Printf("%+v\n", p.Stats()) }
	case "omp":
		p := ompstyle.NewPool(ompstyle.Options{Workers: *workers})
		defer p.Close()
		result = runOMP(p)
		printStats = func() { fmt.Printf("%+v\n", p.Stats()) }
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *sched)
		os.Exit(2)
	}
	fmt.Printf("result=%d elapsed=%v\n", result, time.Since(t0).Round(time.Microsecond))
	if *stats && printStats != nil {
		printStats()
	}
}

func runSerial() int64 {
	var total int64
	for r := int64(0); r < *reps; r++ {
		switch *workload {
		case "fib":
			total += fibw.Serial(*n)
		case "stress":
			total += stress.Serial(*height, *iters)
		case "mm":
			m := mm.New(*n)
			mm.Serial(m)
			total += *n
		case "ssf":
			total += ssf.Serial(ssf.FibString(*n), nil)
		case "cholesky":
			m := cholesky.Generate(*n, *nz, 42+uint64(r))
			m.Factor()
			total += m.Ar.NodesInUse()
		default:
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(2)
		}
	}
	return total
}

func runWool(p *core.Pool) int64 {
	switch *workload {
	case "fib":
		fib := fibw.NewWool()
		var total int64
		for r := int64(0); r < *reps; r++ {
			total += p.Run(func(w *core.Worker) int64 { return fib.Call(w, *n) })
		}
		return total
	case "stress":
		return stress.RunWool(p, stress.NewWool(), *height, *iters, *reps)
	case "mm":
		rows := mm.NewWool()
		var total int64
		for r := int64(0); r < *reps; r++ {
			m := mm.New(*n)
			total += mm.RunWool(p, rows, m)
		}
		return total
	case "ssf":
		d := ssf.NewWool()
		wk := &ssf.Work{S: ssf.FibString(*n)}
		var total int64
		for r := int64(0); r < *reps; r++ {
			total += ssf.RunWool(p, d, wk)
		}
		return total
	case "cholesky":
		s := cholesky.NewWool()
		var total int64
		for r := int64(0); r < *reps; r++ {
			m := cholesky.Generate(*n, *nz, 42+uint64(r))
			s.Factor(p, m)
			total += m.Ar.NodesInUse()
		}
		return total
	}
	fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
	os.Exit(2)
	return 0
}

func runLock(p *locksched.Pool) int64 {
	switch *workload {
	case "fib":
		fib := fibw.NewLockSched()
		var total int64
		for r := int64(0); r < *reps; r++ {
			total += p.Run(func(w *locksched.Worker) int64 { return fib.Call(w, *n) })
		}
		return total
	case "stress":
		return stress.RunLockSched(p, stress.NewLockSched(), *height, *iters, *reps)
	}
	fmt.Fprintf(os.Stderr, "workload %q not ported to locksched (use fib or stress)\n", *workload)
	os.Exit(2)
	return 0
}

func runChaseLev(p *chaselev.Pool) int64 {
	switch *workload {
	case "fib":
		fib := fibw.NewChaseLev()
		var total int64
		for r := int64(0); r < *reps; r++ {
			total += p.Run(func(w *chaselev.Worker) int64 { return fib.Call(w, *n) })
		}
		return total
	}
	fmt.Fprintf(os.Stderr, "workload %q not ported to chaselev (use fib)\n", *workload)
	os.Exit(2)
	return 0
}

func runOMP(p *ompstyle.Pool) int64 {
	switch *workload {
	case "fib":
		var total int64
		for r := int64(0); r < *reps; r++ {
			total += p.Run(func(tc *ompstyle.Context) int64 { return fibw.OMP(tc, *n) })
		}
		return total
	case "mm":
		var total int64
		for r := int64(0); r < *reps; r++ {
			m := mm.New(*n)
			p.Run(func(tc *ompstyle.Context) int64 { mm.OMP(tc, m); return 0 })
			total += *n
		}
		return total
	case "ssf":
		wk := &ssf.Work{S: ssf.FibString(*n)}
		var total int64
		for r := int64(0); r < *reps; r++ {
			total += p.Run(func(tc *ompstyle.Context) int64 { return ssf.OMP(tc, wk) })
		}
		return total
	}
	fmt.Fprintf(os.Stderr, "workload %q not ported to omp (use fib, mm or ssf)\n", *workload)
	os.Exit(2)
	return 0
}
