package fibw

import (
	"runtime"
	"testing"

	"gowool/internal/core"
	"gowool/internal/costmodel"
	"gowool/internal/sim"
)

func TestSerial(t *testing.T) {
	want := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for n, v := range want {
		if got := Serial(int64(n)); got != v {
			t.Errorf("Serial(%d) = %d, want %d", n, got, v)
		}
	}
}

func TestTasks(t *testing.T) {
	// N_T(fib): internal nodes of the call tree.
	if got := Tasks(5); got != 7 {
		t.Errorf("Tasks(5) = %d, want 7", got)
	}
	if got := Tasks(1); got != 0 {
		t.Errorf("Tasks(1) = %d, want 0", got)
	}
}

// TestAllSchedulersAgree checks the hand-written wool ports and the
// simulator; the baselines are exercised uniformly by the registry
// conformance suite in internal/sched.
func TestAllSchedulersAgree(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	const n = 18
	want := Serial(n)

	wp := core.NewPool(core.Options{Workers: 3, PrivateTasks: true})
	if got := wp.Run(func(w *core.Worker) int64 { return NewWool().Call(w, n) }); got != want {
		t.Errorf("wool: %d, want %d", got, want)
	}
	wp.Close()

	wg := core.NewPool(core.Options{Workers: 3})
	if got := wg.Run(func(w *core.Worker) int64 { return NewWoolGenericJoin().Call(w, n) }); got != want {
		t.Errorf("wool generic join: %d, want %d", got, want)
	}
	wg.Close()

	res := sim.Run(sim.Config{Procs: 4, Kind: sim.KindDirectStack, Costs: costmodel.Wool()},
		NewSim(), sim.Args{A0: n})
	if res.Value != want {
		t.Errorf("sim: %d, want %d", res.Value, want)
	}
}

func TestSimGranularity(t *testing.T) {
	// G_T = work/tasks must be ≈ NodeWork (the paper's 13 cycles).
	res := sim.Run(sim.Config{Procs: 1, Kind: sim.KindDirectStack, Costs: costmodel.Wool(),
		TrackSpan: true}, NewSim(), sim.Args{A0: 20})
	tasks := res.Total.Spawns
	if tasks != Tasks(20) {
		t.Fatalf("spawns = %d, want %d", tasks, Tasks(20))
	}
	gt := float64(res.Work) / float64(tasks)
	if gt < 13 || gt > 25 {
		t.Errorf("G_T = %.1f cycles/task, want ≈ 13–25", gt)
	}
}

// TestGeneratedPortAgrees runs the woolgen-generated fib port
// (fib_gen.go) on a steal-heavy pool and checks it against Serial.
func TestGeneratedPortAgrees(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := core.NewPool(core.Options{Workers: 4, PrivateTasks: true,
		InitialPublic: 1, TripDistance: 1, PublishAmount: 1})
	defer p.Close()
	want := Serial(25)
	for rep := 0; rep < 5; rep++ {
		if got := p.Run(func(w *core.Worker) int64 { return CallFib(w, 25) }); got != want {
			t.Fatalf("rep %d: CallFib(25) = %d, want %d", rep, got, want)
		}
	}
}
