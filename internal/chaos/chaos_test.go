package chaos

import "testing"

// drain records n decisions from an agent across all points.
func drain(a *Agent, n int) []bool {
	out := make([]bool, 0, n*int(NumPoints))
	for i := 0; i < n; i++ {
		for p := Point(0); p < NumPoints; p++ {
			out = append(out, a.Point(p))
		}
		out = append(out, a.Force(PointParkDecision))
	}
	return out
}

// TestReplayDeterminism: the same (seed, profile, worker) replays the
// identical decision stream — the property -chaosseed relies on.
func TestReplayDeterminism(t *testing.T) {
	for _, prof := range Profiles() {
		a := NewInjector(4, prof, 42).Agent(2)
		b := NewInjector(4, prof, 42).Agent(2)
		da, db := drain(a, 200), drain(b, 200)
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("%s: decision %d diverged on replay", prof.Name, i)
			}
		}
	}
}

// TestWorkerStreamsIndependent: distinct workers (and distinct seeds)
// get distinct streams.
func TestWorkerStreamsIndependent(t *testing.T) {
	prof := casStarve()
	in := NewInjector(2, prof, 7)
	d0 := drain(in.Agent(0), 500)
	d1 := drain(in.Agent(1), 500)
	same := 0
	for i := range d0 {
		if d0[i] == d1[i] {
			same++
		}
	}
	if same == len(d0) {
		t.Fatalf("worker streams identical over %d decisions", len(d0))
	}
	other := NewInjector(2, prof, 8)
	d0b := drain(other.Agent(0), 500)
	same = 0
	for i := range d0 {
		if d0[i] == d0b[i] {
			same++
		}
	}
	if same == len(d0) {
		t.Fatalf("seed change did not alter the stream")
	}
}

// TestRatesRoughlyHonored: a 69% fail rate should actually fail often,
// and a zero rate must never fire.
func TestRatesRoughlyHonored(t *testing.T) {
	prof := casStarve()
	a := NewInjector(1, prof, 99).Agent(0)
	fails := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if a.Point(PointThiefCAS) {
			fails++
		}
	}
	want := float64(prof.Fail[PointThiefCAS]) / 65536
	got := float64(fails) / n
	if got < want-0.1 || got > want+0.1 {
		t.Fatalf("fail rate %.2f, profile asks %.2f", got, want)
	}
	for i := 0; i < n; i++ {
		if a.Point(PointDequePop) { // cas-starve sets no faults here
			t.Fatalf("point with zero rates reported a fail")
		}
	}
	if c := a.inj.Counts(); c[PointThiefCAS] != n || c[PointDequePop] != n {
		t.Fatalf("visit counts = %d/%d, want %d/%d", c[PointThiefCAS], c[PointDequePop], n, n)
	}
	if inj := a.inj.Injected(); inj[PointThiefCAS] == 0 {
		t.Fatalf("no injections recorded at a 69%%-fail point")
	}
}

// TestProfileLookup covers the registry the CLI flag uses.
func TestProfileLookup(t *testing.T) {
	for _, name := range []string{"delay-heavy", "cas-starve", "park-flap"} {
		p, ok := ProfileByName(name)
		if !ok || p.Name != name {
			t.Fatalf("ProfileByName(%q) = %v, %v", name, p.Name, ok)
		}
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Fatalf("unknown profile resolved")
	}
	if PointThiefCAS.String() != "thief-cas" || Point(200).String() == "" {
		t.Fatalf("Point.String broken")
	}
}
