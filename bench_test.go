package gowool_test

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper (regenerating it at Quick scale — run the full sweeps
// with cmd/woolbench -scale full), plus the micro benchmarks behind
// the headline numbers: spawn/join cost per scheduler rung (Table II),
// per-system inlined overhead (Table III) and the fib/stress kernels
// (Figure 1).
//
// The experiment benchmarks do a complete table/figure regeneration
// per iteration; run them as
//
//	go test -bench 'BenchmarkTable|BenchmarkFig' -benchtime 1x
//
// The micro benchmarks are ordinary per-op measurements.

import (
	"io"
	"testing"
	"time"

	"gowool"
	"gowool/internal/chaselev"
	"gowool/internal/experiments"
	"gowool/internal/gen/ports"
	"gowool/internal/locksched"
	"gowool/internal/ompstyle"
	"gowool/internal/sched"
	"gowool/internal/workloads/fibw"
	"gowool/internal/workloads/stress"
)

// runExperiment regenerates one paper artifact per b.N iteration.
func runExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(experiments.Quick, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table I (workload characteristics).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2 regenerates Table II (inlined-task ladder, native).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3 regenerates Table III (inlined and stolen costs).
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4 regenerates Table IV (steal-cost model vs measured).
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig1 regenerates Figure 1 (fib and stress speedups).
func BenchmarkFig1(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig4 regenerates Figure 4 (steal implementation ladder).
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5 (the full speedup grid).
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6 (CPU-time breakdown).
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

// --- Table II micro benchmarks: ns per spawn+join pair, per rung. ---

// spawnJoinDepth places the measured pair past the InitialPublic
// prefix on private-task pools: the first descriptors of a run are
// public even with PrivateTasks on, so a depth-0 loop measures the
// public-slot path, not the private plain-stores path.
const spawnJoinDepth = 4

// atDepth runs f with depth outstanding noop descriptors on the task
// stack (spawned and joined outside the timer).
func atDepth(b *testing.B, w *gowool.Worker, noop *gowool.TaskDef1, f func()) {
	for i := 0; i < spawnJoinDepth; i++ {
		noop.Spawn(w, 0)
	}
	b.ResetTimer()
	f()
	b.StopTimer()
	for i := 0; i < spawnJoinDepth; i++ {
		noop.Join(w)
	}
}

// BenchmarkSpawnJoin/private is the paper's 3-cycle row: private
// descriptors, no atomics on the join path.
func BenchmarkSpawnJoin(b *testing.B) {
	b.Run("private", func(b *testing.B) {
		p := gowool.NewPool(gowool.Options{Workers: 1, PrivateTasks: true})
		defer p.Close()
		noop := gowool.Define1("noop", func(w *gowool.Worker, x int64) int64 { return x })
		b.ReportAllocs()
		p.Run(func(w *gowool.Worker) int64 {
			atDepth(b, w, noop, func() {
				for i := 0; i < b.N; i++ {
					noop.Spawn(w, 1)
					noop.Join(w)
				}
			})
			return 0
		})
	})
	b.Run("generated-private", func(b *testing.B) {
		p := gowool.NewPool(gowool.Options{Workers: 1, PrivateTasks: true})
		defer p.Close()
		noop := gowool.Define1("noop", func(w *gowool.Worker, x int64) int64 { return x })
		b.ReportAllocs()
		p.Run(func(w *gowool.Worker) int64 {
			atDepth(b, w, noop, func() {
				for i := 0; i < b.N; i++ {
					ports.SpawnNoop(w, 1)
					ports.JoinNoop(w)
				}
			})
			return 0
		})
	})
	b.Run("generated-batch", func(b *testing.B) {
		p := gowool.NewPool(gowool.Options{Workers: 1, PrivateTasks: true})
		defer p.Close()
		noop := gowool.Define1("noop", func(w *gowool.Worker, x int64) int64 { return x })
		b.ReportAllocs()
		p.Run(func(w *gowool.Worker) int64 {
			atDepth(b, w, noop, func() {
				for i := 0; i < b.N; i++ {
					ports.SpawnNoopN(w, 0, 16)
					ports.JoinNoopN(w, 16)
				}
			})
			return 0
		})
	})
	b.Run("public", func(b *testing.B) {
		p := gowool.NewPool(gowool.Options{Workers: 1})
		defer p.Close()
		noop := gowool.Define1("noop", func(w *gowool.Worker, x int64) int64 { return x })
		b.ReportAllocs()
		b.ResetTimer()
		p.Run(func(w *gowool.Worker) int64 {
			for i := 0; i < b.N; i++ {
				noop.Spawn(w, 1)
				noop.Join(w)
			}
			return 0
		})
	})
	b.Run("generated-public", func(b *testing.B) {
		p := gowool.NewPool(gowool.Options{Workers: 1})
		defer p.Close()
		b.ReportAllocs()
		b.ResetTimer()
		p.Run(func(w *gowool.Worker) int64 {
			for i := 0; i < b.N; i++ {
				ports.SpawnNoop(w, 1)
				ports.JoinNoop(w)
			}
			return 0
		})
	})
	b.Run("generic-join", func(b *testing.B) {
		p := gowool.NewPool(gowool.Options{Workers: 1})
		defer p.Close()
		noop := gowool.Define1("noop", func(w *gowool.Worker, x int64) int64 { return x })
		b.ResetTimer()
		p.Run(func(w *gowool.Worker) int64 {
			for i := 0; i < b.N; i++ {
				noop.Spawn(w, 1)
				w.JoinAny()
			}
			return 0
		})
	})
	b.Run("lock-base", func(b *testing.B) {
		p := locksched.NewPool(locksched.Options{Workers: 1})
		defer p.Close()
		noop := locksched.Define1("noop", func(w *locksched.Worker, x int64) int64 { return x })
		b.ResetTimer()
		p.Run(func(w *locksched.Worker) int64 {
			for i := 0; i < b.N; i++ {
				noop.Spawn(w, 1)
				noop.Join(w)
			}
			return 0
		})
	})
	b.Run("deque", func(b *testing.B) {
		p := chaselev.NewPool(chaselev.Options{Workers: 1})
		defer p.Close()
		noop := chaselev.Define1("noop", func(w *chaselev.Worker, x int64) int64 { return x })
		b.ResetTimer()
		p.Run(func(w *chaselev.Worker) int64 {
			for i := 0; i < b.N; i++ {
				noop.Spawn(w, 1)
				noop.Join(w)
			}
			return 0
		})
	})
	b.Run("central", func(b *testing.B) {
		p := ompstyle.NewPool(ompstyle.Options{Workers: 1})
		defer p.Close()
		b.ResetTimer()
		p.Run(func(tc *ompstyle.Context) int64 {
			for i := 0; i < b.N; i++ {
				tc.SpawnTask(func(*ompstyle.Context) {})
				tc.Taskwait()
			}
			return 0
		})
	})
}

// BenchmarkSpawnJoinPrivate is the tracked fast-path guard: one
// private spawn+join pair (plain loads and stores only — with the
// owner-side publicLimit shadow, zero atomic operations), measured
// past the InitialPublic prefix and reporting allocations (the gate:
// 0 allocs/op).
func BenchmarkSpawnJoinPrivate(b *testing.B) {
	p := gowool.NewPool(gowool.Options{Workers: 1, PrivateTasks: true})
	defer p.Close()
	noop := gowool.Define1("noop", func(w *gowool.Worker, x int64) int64 { return x })
	b.ReportAllocs()
	p.Run(func(w *gowool.Worker) int64 {
		atDepth(b, w, noop, func() {
			for i := 0; i < b.N; i++ {
				noop.Spawn(w, 1)
				noop.Join(w)
			}
		})
		return 0
	})
}

// BenchmarkSpawnJoinPublic is the public-descriptor pair: the join
// pays its atomic exchange, the spawn still avoids atomic loads.
func BenchmarkSpawnJoinPublic(b *testing.B) {
	p := gowool.NewPool(gowool.Options{Workers: 1})
	defer p.Close()
	noop := gowool.Define1("noop", func(w *gowool.Worker, x int64) int64 { return x })
	b.ReportAllocs()
	b.ResetTimer()
	p.Run(func(w *gowool.Worker) int64 {
		for i := 0; i < b.N; i++ {
			noop.Spawn(w, 1)
			noop.Join(w)
		}
		return 0
	})
}

// BenchmarkIdleWake measures launching a small parallel region against
// a pool whose thief has parked on the idle engine, so each iteration
// pays the park→wake→steal round trip on top of the region itself.
func BenchmarkIdleWake(b *testing.B) {
	p := gowool.NewPool(gowool.Options{Workers: 2, PrivateTasks: true,
		MaxIdleSleep: 50 * time.Microsecond})
	defer p.Close()
	tree := stress.NewWool()
	stress.RunWool(p, tree, 4, 64, 1) // warm up
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		deadline := time.Now().Add(2 * time.Second)
		for p.ParkedWorkers() < 1 && time.Now().Before(deadline) {
			time.Sleep(50 * time.Microsecond)
		}
		if p.ParkedWorkers() < 1 {
			b.Fatal("thief never parked between iterations")
		}
		b.StartTimer()
		stress.RunWool(p, tree, 4, 64, 1)
	}
}

// --- Figure 1 kernels, native. ---

// BenchmarkFibNative runs the no-cutoff fib on the real scheduler.
func BenchmarkFibNative(b *testing.B) {
	p := gowool.NewPool(gowool.Options{PrivateTasks: true})
	defer p.Close()
	fib := fibw.NewWool()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(func(w *gowool.Worker) int64 { return fib.Call(w, 25) })
	}
}

// BenchmarkFibSerial is the no-task baseline for BenchmarkFibNative.
func BenchmarkFibSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fibw.Serial(25)
	}
}

// BenchmarkStressRegion measures one small parallel region (the
// paper's load-balancing stress kernel) end to end.
func BenchmarkStressRegion(b *testing.B) {
	p := gowool.NewPool(gowool.Options{PrivateTasks: true})
	defer p.Close()
	tree := stress.NewWool()
	b.ResetTimer()
	stress.RunWool(p, tree, 8, 256, int64(b.N))
}

// --- Ablation benches (DESIGN.md §7). ---

// BenchmarkAblationWaitPolicy compares what a blocked join does while
// its task is stolen: leapfrog (Wool), steal-anywhere (TBB) or plain
// spinning, on the deque scheduler where all three are options.
func BenchmarkAblationWaitPolicy(b *testing.B) {
	for _, wp := range []chaselev.WaitPolicy{chaselev.WaitLeapfrog, chaselev.WaitSteal, chaselev.WaitSpin} {
		b.Run(wp.String(), func(b *testing.B) {
			p := chaselev.NewPool(chaselev.Options{Workers: 2, Wait: wp})
			defer p.Close()
			fib := sched.BuildRec(chaselev.Define1, fibw.Job(18, 1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Run(func(w *chaselev.Worker) int64 { return fib.Call(w, 18) })
			}
		})
	}
}

// BenchmarkAblationTripWire sweeps the private-task publication
// parameters: how much slack the trip wire hands out per notification.
func BenchmarkAblationTripWire(b *testing.B) {
	for _, amount := range []int{1, 2, 4, 8} {
		b.Run(string(rune('0'+amount)), func(b *testing.B) {
			p := gowool.NewPool(gowool.Options{
				Workers: 2, PrivateTasks: true, PublishAmount: amount,
			})
			defer p.Close()
			tree := stress.NewWool()
			b.ResetTimer()
			stress.RunWool(p, tree, 7, 256, int64(b.N))
		})
	}
}

// BenchmarkAblationIdlePolicy compares idle-worker back-off policies:
// pure spin+yield (a dedicated machine) against capped sleeping (a
// shared host), measured on repeated small parallel regions where
// steal latency is the signal.
func BenchmarkAblationIdlePolicy(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		sleep time.Duration
	}{
		{"spin-yield", -1},
		{"sleep-200us", 200 * time.Microsecond},
		{"sleep-5ms", 5 * time.Millisecond},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			p := gowool.NewPool(gowool.Options{Workers: 2, MaxIdleSleep: cfg.sleep})
			defer p.Close()
			tree := stress.NewWool()
			b.ResetTimer()
			stress.RunWool(p, tree, 6, 256, int64(b.N))
		})
	}
}

// BenchmarkAblationStealLocus compares the synchronization locus:
// descriptor-state (direct task stack) vs indices (deque) vs lock, on
// the same spawn-intensive kernel with one worker (inline-path cost).
func BenchmarkAblationStealLocus(b *testing.B) {
	b.Run("on-task", func(b *testing.B) {
		p := gowool.NewPool(gowool.Options{Workers: 1})
		defer p.Close()
		fib := fibw.NewWool()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Run(func(w *gowool.Worker) int64 { return fib.Call(w, 20) })
		}
	})
	b.Run("on-indices", func(b *testing.B) {
		p := chaselev.NewPool(chaselev.Options{Workers: 1})
		defer p.Close()
		fib := sched.BuildRec(chaselev.Define1, fibw.Job(20, 1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Run(func(w *chaselev.Worker) int64 { return fib.Call(w, 20) })
		}
	})
	b.Run("on-lock", func(b *testing.B) {
		p := locksched.NewPool(locksched.Options{Workers: 1})
		defer p.Close()
		fib := sched.BuildRec(locksched.Define1, fibw.Job(20, 1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Run(func(w *locksched.Worker) int64 { return fib.Call(w, 20) })
		}
	})
}
