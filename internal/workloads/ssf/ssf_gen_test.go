package ssf

import (
	"runtime"
	"testing"

	"gowool/internal/core"
)

// TestGeneratedPortMatchesSerial runs the scan through the
// woolgen-generated monomorphic port (SpawnScan/JoinScan/CallScan) and
// checks checksum and per-position output against the serial
// reference.
func TestGeneratedPortMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	s := FibString(11)
	want := Serial(s, nil)

	wk := &Work{S: s, Out: make([]int64, len(s))}
	p := core.NewPool(core.Options{Workers: 4, PrivateTasks: true})
	defer p.Close()
	got := p.Run(func(w *core.Worker) int64 { return CallScan(w, wk, 0, int64(len(wk.S))) })
	if got != want {
		t.Errorf("generated port checksum = %d, want %d", got, want)
	}
	serialOut := make([]int64, len(s))
	Serial(s, serialOut)
	for i := range serialOut {
		if wk.Out[i] != serialOut[i] {
			t.Fatalf("out[%d] = %d, want %d", i, wk.Out[i], serialOut[i])
		}
	}
}
