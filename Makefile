GO ?= go

.PHONY: build test race lint lint-fast lint-perfbudget bench registry-bench perfgate generate ci all trace-smoke fuzz-smoke chaos stealsweep stealsweep-smoke serve-smoke serve-soak

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect every scheduler backend that has a thief/victim protocol
# (direct task stack, Chase-Lev deque, locked deque, cilk-style,
# central queue) plus the simulator driving them, the registry's
# chaos-profile conformance suite (internal/sched), and the serving
# layer's concurrent-submission/mid-flight-cancellation suite.
race:
	$(GO) test -race -count=1 ./internal/core/... ./internal/chaselev/... \
		./internal/locksched/... ./internal/cilkstyle/... \
		./internal/ompstyle/... ./internal/sim/... ./internal/sched/... \
		./internal/serve/...

# woolvet enforces the direct-task-stack protocol invariants
# (atomic-only fields, owner-private fields, cache-line layout,
# spawn/join balance, publication ordering, the compiler perf budget,
# and the stale-suppression audit) over the whole module. See
# DESIGN.md §10 and §15.
lint:
	$(GO) run ./cmd/woolvet ./...

# The fast passes only — everything except perfbudget, which shells
# out to `go build -gcflags=-m` per package and wants a warm build
# cache (CI runs the two halves as separate steps for readable
# timings; see .github/workflows/ci.yml).
lint-fast:
	$(GO) run ./cmd/woolvet -only atomicfield,ownerprivate,layoutguard,spawnjoin,generated,publication ./...

# The compiler-budget pass alone, dumping the raw -gcflags=-m logs it
# parsed into woolvet-mlogs/ (the CI failure artifact).
lint-perfbudget:
	$(GO) run ./cmd/woolvet -only perfbudget -mlog woolvet-mlogs ./...

# Machine-readable fast-path/idle-engine numbers for the perf
# trajectory; commit the refreshed BENCH_core.json with perf PRs.
bench:
	$(GO) run ./cmd/woolbench -corejson BENCH_core.json

# The registry benchmark suite: generic vs woolgen-generated spawn/join
# ladder, steal latency, and fib(28) on every registered backend.
# Refresh and commit BENCH_registry.json when a perf PR moves the
# gated keys (the gate block inside the file defines what's enforced).
registry-bench:
	$(GO) run ./cmd/woolbench -registryjson BENCH_registry.json

# The perf-regression gate: re-measure the gated keys and fail on >5%
# regression against the committed BENCH_registry.json, on a ceiling
# breach (generated private pair ≤ 15ns), or on the generated path
# falling behind the generic path it specializes. On noisy shared
# runners widen with WOOL_PERFGATE_TOLERANCE=0.15 or skip with
# WOOL_PERFGATE_SKIP=1.
perfgate:
	$(GO) run ./cmd/woolbench -perfgate BENCH_registry.json

# Regenerate the woolgen outputs (*_gen.go) from their go:generate
# declarations. The drift test (internal/gen TestCommittedOutputsAreFresh)
# and woolvet's provenance pass fail if committed outputs go stale or
# get hand-edited.
generate:
	$(GO) generate ./...

# The steal-policy sweep (DESIGN.md §14): every policy × amount ×
# workload on every backend advertising steal policies, with the steal
# matrix extracted from the run's trace, plus the same policy grid on
# the simulator's sharded 64-processor topology. Refresh and commit
# BENCH_steal.json when the policy layer or the topology model changes.
stealsweep:
	$(GO) run ./cmd/woolbench -scale full -stealsweep BENCH_steal.json

# CI smoke of the same sweep at quick scale: the grid must complete,
# cover all four policies and both amounts, and the localized policy
# must concentrate steals inside its neighborhood (local_frac 1 at 4
# workers with neighborhood 2, where random leaves the neighborhood).
STEALSWEEP_JSON ?= /tmp/woolsteal-smoke.json
stealsweep-smoke:
	$(GO) run ./cmd/woolbench -scale quick -stealsweep $(STEALSWEEP_JSON)
	grep -q '"policy": "random"' $(STEALSWEEP_JSON)
	grep -q '"policy": "last-victim"' $(STEALSWEEP_JSON)
	grep -q '"policy": "sequential"' $(STEALSWEEP_JSON)
	grep -q '"policy": "localized"' $(STEALSWEEP_JSON)
	grep -q '"amount": "half"' $(STEALSWEEP_JSON)
	grep -q '"kind": "direct-stack"' $(STEALSWEEP_JSON)

# CI smoke of the woolserve benchmark (DESIGN.md §16-17) at quick
# scale: the serving layer must complete the full request stream on
# both direct-task-stack port layers, the report must carry the schema
# tag and latency percentiles, the mixed-cancellation cell must have
# actually cancelled requests mid-flight (the abort/Reset path ran
# inside the measured stream), the overload cell must have shed load
# (shed_rate is omitted when zero), and the breaker cell must have
# measured a recovery.
SERVEBENCH_JSON ?= /tmp/woolserve-smoke.json
serve-smoke:
	$(GO) run ./cmd/woolbench -scale quick -serve $(SERVEBENCH_JSON)
	grep -q '"schema": "wool-serve-bench/v2"' $(SERVEBENCH_JSON)
	grep -q '"backend": "wool"' $(SERVEBENCH_JSON)
	grep -q '"backend": "woolgen"' $(SERVEBENCH_JSON)
	grep -q '"workload": "mixed-cancel"' $(SERVEBENCH_JSON)
	grep -q '"workload": "overload-2x"' $(SERVEBENCH_JSON)
	grep -q '"workload": "breaker-recovery"' $(SERVEBENCH_JSON)
	grep -q '"lat_p50_us"' $(SERVEBENCH_JSON)
	grep -q '"lat_p99_us"' $(SERVEBENCH_JSON)
	grep -q '"req_per_s"' $(SERVEBENCH_JSON)
	grep -q '"shed_rate"' $(SERVEBENCH_JSON)
	grep -q '"recovery_ms"' $(SERVEBENCH_JSON)
	@grep -v '"cancelled": 0' $(SERVEBENCH_JSON) | grep -q '"cancelled"' \
		|| { echo "serve-smoke: no cell cancelled any request mid-flight"; exit 1; }

# The self-healing soak (DESIGN.md §17): a seeded mixed workload —
# healthy tenants at ~1.5x capacity, a panicking tenant, a slow tenant
# with doomed deadlines — against serve-level chaos (failed Resets,
# failing probes), race-detected. Asserts healthy success >= 99%, the
# failing tenant's breaker opened and half-opened, at least one lane
# quarantined and replaced, the accounting identities, and zero
# goroutine leaks at shutdown. The -v log carries the replay line
# (seed + duration). Raise SOAK for a longer soak.
SOAK ?= 10s
serve-soak:
	$(GO) test ./internal/serve/ -race -count=1 -run 'TestServeSoak' -v \
		-serve.soak=$(SOAK)

# End-to-end check of the wooltrace pipeline (DESIGN.md §11): export a
# Chrome trace from a real run, validate it against the trace_event
# schema with -checktrace, and require the load-balancing events (STEAL
# from the run, PARK from the settle window) plus a non-empty steal
# matrix. The settle window lets the idle workers reach their PARK
# transitions before the snapshot — on a loaded single-CPU machine they
# may not get a timeslice to park during the run itself.
TRACE_SMOKE_JSON ?= /tmp/wooltrace-smoke.json
trace-smoke:
	$(GO) run ./cmd/woolrun -workload fib -n 25 -workers 4 -private \
		-settle 300ms -trace $(TRACE_SMOKE_JSON) -stealmatrix | tee $(TRACE_SMOKE_JSON).out
	$(GO) run ./cmd/woolrun -checktrace $(TRACE_SMOKE_JSON)
	grep -q '"STEAL"' $(TRACE_SMOKE_JSON)
	grep -q '"PARK"' $(TRACE_SMOKE_JSON)
	grep -q 'total steals:' $(TRACE_SMOKE_JSON).out
	! grep -q 'total steals: 0$$' $(TRACE_SMOKE_JSON).out

# Short native-fuzz passes over the two lock-free backends: random
# seed-derived spawn trees with irregular fan-out, a tiny task pool so
# every run also crosses the overflow-degradation path, and the serial
# walk as the oracle. Raise FUZZTIME for a longer soak.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/core/ -run '^$$' -fuzz FuzzSpawnTree -fuzztime $(FUZZTIME)
	$(GO) test ./internal/chaselev/ -run '^$$' -fuzz FuzzSpawnTree -fuzztime $(FUZZTIME)

# The fault-injection torture suite (DESIGN.md §12): every registered
# scheduler under every built-in chaos profile, race-detected, then a
# time-boxed randomized seed sweep that logs each seed tried so any
# failure is replayable. Raise CHAOS_SWEEP for a longer soak.
CHAOS_SWEEP ?= 20s
chaos:
	$(GO) test ./internal/sched/ -race -count=1 -run 'TestChaosTorture' -v
	$(GO) test ./internal/sched/ -race -count=1 -run 'TestChaosSeedSweep' -v \
		-chaos.sweep=$(CHAOS_SWEEP)

# What .github/workflows/ci.yml runs: build, vet, woolvet, the tier-1
# suite, and a short race pass over the scheduler protocols and the
# registry conformance suite.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/woolvet ./...
	$(GO) test ./...
	$(GO) test -race -count=1 -short ./internal/core/... ./internal/chaselev/... \
		./internal/locksched/... ./internal/cilkstyle/... \
		./internal/ompstyle/... ./internal/sim/... \
		./internal/sched/... ./internal/serve/... ./internal/workloads/
