package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("gowool/internal/core")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Sizes types.Sizes

	loader *Loader      // back-pointer for cross-package annotation lookup
	ann    *Annotations // lazily built by Annotations()
}

// Annotations returns the woolvet annotations scanned from this
// package's sources, building them on first use. Passes use this (via
// Pass.FuncDirs) to see directives on functions declared in other
// packages of the same module, e.g. generated code calling into an
// annotated core API.
func (p *Package) Annotations() *Annotations {
	if p.ann == nil {
		p.ann = ScanAnnotations(p.Fset, p.Files, p.Info)
	}
	return p.ann
}

// PackageFor returns the already-loaded module package that declares
// obj, or nil if obj belongs to the standard library or to a package
// this loader has not seen.
func (l *Loader) PackageFor(obj types.Object) *Package {
	if l == nil || obj == nil || obj.Pkg() == nil {
		return nil
	}
	for _, p := range l.pkgs {
		if p.Types == obj.Pkg() {
			return p
		}
	}
	return nil
}

// Loader loads and type-checks packages of the enclosing module using
// only the standard library: module-internal imports are resolved by
// walking the module tree, everything else (the standard library) goes
// through the source importer. The module has no external dependencies
// — woolvet's own design constraint — so those two cases are total.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std     types.Importer
	sizes   types.Sizes
	ctx     build.Context
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module containing startDir,
// located by walking up to the nearest go.mod.
func NewLoader(startDir string) (*Loader, error) {
	dir, err := filepath.Abs(startDir)
	if err != nil {
		return nil, err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			modPath := modulePath(string(data))
			if modPath == "" {
				return nil, fmt.Errorf("no module path in %s/go.mod", dir)
			}
			fset := token.NewFileSet()
			// Pin the build context to the host platform instead of
			// taking build.Default as-is: build.Default reads GOOS and
			// GOARCH from the environment, so a stray GOOS=windows
			// would silently drop files guarded by //go:build unix
			// while Sizes stayed pinned to the host — the analyzers
			// would then vet a file set no real build uses.
			ctx := build.Default
			ctx.GOOS = runtime.GOOS
			ctx.GOARCH = runtime.GOARCH
			return &Loader{
				Fset:    fset,
				ModRoot: dir,
				ModPath: modPath,
				std:     importer.ForCompiler(fset, "source", nil),
				sizes:   types.SizesFor("gc", runtime.GOARCH),
				ctx:     ctx,
				pkgs:    map[string]*Package{},
				loading: map[string]bool{},
			}, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, fmt.Errorf("no go.mod found above %s", startDir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(mod string) string {
	for _, line := range strings.Split(mod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// LoadPatterns loads the packages matching the go-style patterns
// ("./...", "./internal/core", "internal/core/..."), resolved
// relative to the module root. Directories named testdata, or whose
// name starts with "." or "_", are skipped, as the go tool does.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		recursive := false
		if pat == "..." {
			pat, recursive = "", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		root := filepath.Join(l.ModRoot, filepath.FromSlash(pat))
		if !recursive {
			dirSet[root] = true
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirSet[path] = true
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(dir, path)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue // directory without Go files, fine under "..."
			}
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir loads the single package in dir under the given import path
// (used by the analysistest runner for fixture packages).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	return l.load(dir, path)
}

// load parses and type-checks the package in dir. Test files are not
// loaded: woolvet checks the protocol implementation, and tests are
// free to poke at quiescent pools in ways the analyzers forbid on the
// hot paths (DESIGN.md §10).
func (l *Loader) load(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer func() { l.loading[path] = false }()

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: loaderImporter{l},
		Sizes:    l.sizes,
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:   path,
		Dir:    dir,
		Fset:   l.Fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		Sizes:  l.sizes,
		loader: l,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loaderImporter resolves imports during type-checking: module-internal
// paths recurse into the loader, everything else is standard library
// handled by the source importer.
type loaderImporter struct{ l *Loader }

func (li loaderImporter) Import(path string) (*types.Package, error) {
	l := li.l
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.load(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
