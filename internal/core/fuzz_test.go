package core

import (
	"math/bits"
	"runtime"
	"testing"

	"gowool/internal/chaos"
)

// fuzzTreeDepth bounds the spawn trees FuzzSpawnTree generates. Each
// level consumes two bits of the node's path code, so the code stays
// well inside an int64.
const fuzzTreeDepth = 9

// fuzzNode derives one tree node from (seed, path code): its value and
// how many children it has. The shape is a pure function of the seed,
// so the serial walk and the parallel run agree without sharing state.
func fuzzNode(seed uint64, arg int64) (value int64, children int64) {
	draw := chaos.Mix(seed, uint64(arg))
	value = int64(draw % 1000)
	depth := (bits.Len64(uint64(arg)) - 1) / 2
	if depth >= fuzzTreeDepth {
		return value, 0
	}
	return value, int64(draw % 3)
}

// fuzzSerial is the reference walk: plain recursion, no tasks.
func fuzzSerial(seed uint64, arg int64) int64 {
	sum, c := fuzzNode(seed, arg)
	for k := int64(1); k <= c; k++ {
		sum += fuzzSerial(seed, arg*4+k)
	}
	return sum
}

// FuzzSpawnTree feeds random seeds through a seed-derived spawn tree
// with an irregular fan-out (0–2 children per node) and checks the
// pool against the serial walk. The tiny StackSize forces the run
// through the overflow-degradation path as well as the steal protocol.
func FuzzSpawnTree(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(0x5eed))
	rng := chaos.NewRNG(42)
	for i := 0; i < 6; i++ {
		f.Add(rng.Next())
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		prev := runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
		var tree *TaskDef1
		tree = Define1("fuzztree", func(w *Worker, arg int64) int64 {
			sum, c := fuzzNode(seed, arg)
			for k := int64(1); k <= c; k++ {
				tree.Spawn(w, arg*4+k)
			}
			for k := int64(0); k < c; k++ {
				sum += tree.Join(w)
			}
			return sum
		})
		want := fuzzSerial(seed, 1)
		p := NewPool(Options{Workers: 2, StackSize: 4})
		got := p.Run(func(w *Worker) int64 { return tree.Call(w, 1) })
		st := p.Stats()
		p.Close()
		if got != want {
			t.Fatalf("seed %d: spawn tree sum = %d, want %d (stats %+v)", seed, got, want, st)
		}
	})
}
