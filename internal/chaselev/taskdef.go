package chaselev

// Task definitions mirror the core package's API so workloads port
// one-to-one. Faithful to TBB's structure, the inline join path goes
// through the stored wrapper function (there are no task-specific
// joins in TBB), and every spawn pays the free-list allocation.

// TaskDef1 defines a task taking one int64.
type TaskDef1 struct {
	wrap TaskFunc
	fn   func(*Worker, int64) int64
	name string
}

// Define1 creates the routines for fn.
func Define1(name string, fn func(*Worker, int64) int64) *TaskDef1 {
	d := &TaskDef1{fn: fn, name: name}
	d.wrap = func(w *Worker, t *Task) { t.res = fn(w, t.a0) }
	return d
}

// Spawn allocates a task (free list) and pushes it on w's deque. When
// the deque is full the spawn degrades to inline serial execution (the
// child runs now, the join reads its stored result) unless
// Options.StrictOverflow is set.
func (d *TaskDef1) Spawn(w *Worker, a0 int64) {
	t := w.alloc()
	t.a0 = a0
	t.fn = d.wrap
	t.stolenBy.Store(0)
	t.done.Store(false)
	if !w.push(t) {
		w.elide(t)
	}
}

// Call invokes the task function directly.
func (d *TaskDef1) Call(w *Worker, a0 int64) int64 { return d.fn(w, a0) }

// Join joins with the most recently spawned task.
func (d *TaskDef1) Join(w *Worker) int64 {
	t, inline := w.joinAcquire()
	if inline {
		fn := t.fn
		fn(w, t)
	}
	res := t.res
	w.release(t)
	return res
}

// TaskDef2 defines a task taking two int64 arguments.
type TaskDef2 struct {
	wrap TaskFunc
	fn   func(*Worker, int64, int64) int64
	name string
}

// Define2 creates the routines for fn.
func Define2(name string, fn func(*Worker, int64, int64) int64) *TaskDef2 {
	d := &TaskDef2{fn: fn, name: name}
	d.wrap = func(w *Worker, t *Task) { t.res = fn(w, t.a0, t.a1) }
	return d
}

// Spawn allocates a task and pushes it on w's deque.
func (d *TaskDef2) Spawn(w *Worker, a0, a1 int64) {
	t := w.alloc()
	t.a0, t.a1 = a0, a1
	t.fn = d.wrap
	t.stolenBy.Store(0)
	t.done.Store(false)
	if !w.push(t) {
		w.elide(t)
	}
}

// Call invokes the task function directly.
func (d *TaskDef2) Call(w *Worker, a0, a1 int64) int64 { return d.fn(w, a0, a1) }

// Join joins with the most recently spawned task.
func (d *TaskDef2) Join(w *Worker) int64 {
	t, inline := w.joinAcquire()
	if inline {
		fn := t.fn
		fn(w, t)
	}
	res := t.res
	w.release(t)
	return res
}

// TaskDefC1 defines a task taking a typed context pointer and one int64.
type TaskDefC1[C any] struct {
	wrap TaskFunc
	fn   func(*Worker, *C, int64) int64
	name string
}

// DefineC1 creates the routines for fn.
func DefineC1[C any](name string, fn func(*Worker, *C, int64) int64) *TaskDefC1[C] {
	d := &TaskDefC1[C]{fn: fn, name: name}
	d.wrap = func(w *Worker, t *Task) { t.res = fn(w, t.ctx.(*C), t.a0) }
	return d
}

// Spawn allocates a task and pushes it on w's deque.
func (d *TaskDefC1[C]) Spawn(w *Worker, c *C, a0 int64) {
	t := w.alloc()
	t.ctx = c
	t.a0 = a0
	t.fn = d.wrap
	t.stolenBy.Store(0)
	t.done.Store(false)
	if !w.push(t) {
		w.elide(t)
	}
}

// Call invokes the task function directly.
func (d *TaskDefC1[C]) Call(w *Worker, c *C, a0 int64) int64 { return d.fn(w, c, a0) }

// Join joins with the most recently spawned task.
func (d *TaskDefC1[C]) Join(w *Worker) int64 {
	t, inline := w.joinAcquire()
	if inline {
		fn := t.fn
		fn(w, t)
	}
	res := t.res
	w.release(t)
	return res
}

// TaskDefC2 defines a task taking a typed context pointer and two int64s.
type TaskDefC2[C any] struct {
	wrap TaskFunc
	fn   func(*Worker, *C, int64, int64) int64
	name string
}

// DefineC2 creates the routines for fn.
func DefineC2[C any](name string, fn func(*Worker, *C, int64, int64) int64) *TaskDefC2[C] {
	d := &TaskDefC2[C]{fn: fn, name: name}
	d.wrap = func(w *Worker, t *Task) { t.res = fn(w, t.ctx.(*C), t.a0, t.a1) }
	return d
}

// Spawn allocates a task and pushes it on w's deque.
func (d *TaskDefC2[C]) Spawn(w *Worker, c *C, a0, a1 int64) {
	t := w.alloc()
	t.ctx = c
	t.a0, t.a1 = a0, a1
	t.fn = d.wrap
	t.stolenBy.Store(0)
	t.done.Store(false)
	if !w.push(t) {
		w.elide(t)
	}
}

// Call invokes the task function directly.
func (d *TaskDefC2[C]) Call(w *Worker, c *C, a0, a1 int64) int64 { return d.fn(w, c, a0, a1) }

// Join joins with the most recently spawned task.
func (d *TaskDefC2[C]) Join(w *Worker) int64 {
	t, inline := w.joinAcquire()
	if inline {
		fn := t.fn
		fn(w, t)
	}
	res := t.res
	w.release(t)
	return res
}

// TaskDefC3 defines a task taking a typed context pointer and three int64s.
type TaskDefC3[C any] struct {
	wrap TaskFunc
	fn   func(*Worker, *C, int64, int64, int64) int64
	name string
}

// DefineC3 creates the routines for fn.
func DefineC3[C any](name string, fn func(*Worker, *C, int64, int64, int64) int64) *TaskDefC3[C] {
	d := &TaskDefC3[C]{fn: fn, name: name}
	d.wrap = func(w *Worker, t *Task) { t.res = fn(w, t.ctx.(*C), t.a0, t.a1, t.a2) }
	return d
}

// Spawn allocates a task and pushes it on w's deque.
func (d *TaskDefC3[C]) Spawn(w *Worker, c *C, a0, a1, a2 int64) {
	t := w.alloc()
	t.ctx = c
	t.a0, t.a1, t.a2 = a0, a1, a2
	t.fn = d.wrap
	t.stolenBy.Store(0)
	t.done.Store(false)
	if !w.push(t) {
		w.elide(t)
	}
}

// Call invokes the task function directly.
func (d *TaskDefC3[C]) Call(w *Worker, c *C, a0, a1, a2 int64) int64 {
	return d.fn(w, c, a0, a1, a2)
}

// Join joins with the most recently spawned task.
func (d *TaskDefC3[C]) Join(w *Worker) int64 {
	t, inline := w.joinAcquire()
	if inline {
		fn := t.fn
		fn(w, t)
	}
	res := t.res
	w.release(t)
	return res
}

// Name returns the definition's diagnostic name.
func (d *TaskDef1) Name() string { return d.name }

// Name returns the definition's diagnostic name.
func (d *TaskDef2) Name() string { return d.name }

// Name returns the definition's diagnostic name.
func (d *TaskDefC1[C]) Name() string { return d.name }

// Name returns the definition's diagnostic name.
func (d *TaskDefC2[C]) Name() string { return d.name }

// Name returns the definition's diagnostic name.
func (d *TaskDefC3[C]) Name() string { return d.name }
