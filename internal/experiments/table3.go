package experiments

import (
	"io"

	"gowool/internal/costmodel"
	"gowool/internal/sim"
	"gowool/internal/tabulate"
	"gowool/internal/workloads/stress"
)

func init() {
	register(Experiment{
		ID:    "table3",
		Paper: "Table III",
		Title: "Costs of inlined and stolen tasks",
		Run:   runTable3,
	})
}

// stealLeafCycles is the sequential computation C of the Podobas
// microbenchmark (paper Section IV-D1): big enough that steal costs
// are the signal, small enough that growth is visible.
const stealLeafCycles = 200_000

// stealOverhead runs the Podobas et al. methodology on the simulator:
// a binary tree of height k whose 2^k leaves each run C cycles, on
// 2^k processors; the load-balancing overhead is the difference to
// running C once on one processor.
func stealOverhead(sys System, k int) float64 {
	procs := 1 << k
	iters := int64(stealLeafCycles / stress.CyclesPerIter)
	root, args := stress.NewSim(), sim.Args{A0: int64(k), A1: iters}
	res := sys.run(procs, root, args)
	return float64(res.Makespan) - stealLeafCycles
}

// runTable3 reproduces Table III. The "inlined" column is measured
// natively (single worker, fib methodology of Table II) for this
// repository's schedulers, with the paper's cycle figures and the
// simulator's calibrated model alongside; the steal columns (2, 4, 8
// processors) run the Podobas microbenchmark on the simulator, where
// the 2-processor point is calibrated from the paper and the growth
// to 4 and 8 comes from victim search, contention and coherence.
func runTable3(sc Scale, w io.Writer) error {
	n := int64(23)
	reps := 3
	if sc == Full {
		n, reps = 28, 5
	}

	t := tabulate.New(
		"Table III — costs (cycles) of inlined and stolen tasks",
		"system", "inlined[native cyc]", "inlined[model cyc]", "steal@2", "steal@4", "steal@8",
	)

	type rowSpec struct {
		name   string
		runner func() (func(int64) int64, func())
		sys    System
		paper  string
	}
	systems := Systems()
	woolPrivate := func() (func(int64) int64, func()) { return woolFibRunner(true) }
	woolPublic := func() (func(int64) int64, func()) { return woolFibRunner(false) }
	onRegistry := func(name string) func() (func(int64) int64, func()) {
		return func() (func(int64) int64, func()) { return registryFibRunner(name) }
	}
	rows := []rowSpec{
		{"Wool (private)", woolPrivate, systems[0], "3"},
		{"Wool (public)", woolPublic, systems[0], "19"},
		{"Cilk++ (lock-based)", onRegistry("locksched"), systems[1], "134"},
		{"TBB (deque)", onRegistry("chaselev"), systems[2], "323"},
		{"OpenMP (central)", onRegistry("omp"), systems[3], "878"},
	}
	for i, r := range rows {
		nEff := n
		if r.name == "OpenMP (central)" {
			nEff = n - 6 // the central pool is orders slower per task
		}
		run, closer := r.runner()
		native := nativeFibOverheadNS(nEff, reps, run) * costmodel.CyclesPerNS
		closer()

		model := float64(r.sys.Costs.InlinedOverhead())
		if r.name == "Wool (private)" {
			model = float64(r.sys.Costs.SpawnPrivate + r.sys.Costs.JoinPrivate)
		}
		s2 := stealOverhead(r.sys, 1)
		s4 := stealOverhead(r.sys, 2)
		s8 := stealOverhead(r.sys, 3)
		if i == 1 {
			// Wool appears once in the steal columns (the paper gives
			// a single Wool row with an inlined range).
			s2, s4, s8 = 0, 0, 0
		}
		if s2 == 0 && s4 == 0 && s8 == 0 {
			t.Row(r.name, native, model, "-", "-", "-")
		} else {
			t.Row(r.name, native, model, s2, s4, s8)
		}
	}
	t.Note("paper inlined: Wool 3–19, Cilk++ 134, TBB 323, OpenMP 878 cycles")
	t.Note("paper steal @2/4/8: Wool 2200/5600/10400, Cilk++ 31050/73600/110400, TBB 5800/14000/30000, OpenMP 4830/9200/20240")
	t.Note("native column measured on this host's Go schedulers (fib(%d), min of %d); model column is the simulator's calibrated per-task cost", n, reps)
	t.Render(w)
	return nil
}
