package core

import (
	"runtime"
	"testing"
	"time"
)

func TestStateEncoding(t *testing.T) {
	for _, thief := range []int{0, 1, 7, 63, 1000} {
		s := stolenState(thief)
		if !isStolen(s) {
			t.Errorf("stolenState(%d) not recognized as stolen", thief)
		}
		if got := stolenThief(s); got != thief {
			t.Errorf("stolenThief(stolenState(%d)) = %d", thief, got)
		}
	}
	for _, s := range []uint64{stateEmpty, stateDone, stateTask} {
		if isStolen(s) {
			t.Errorf("state %#x wrongly classified as stolen", s)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers default = %d", o.Workers)
	}
	if o.StackSize != 8192 || o.InitialPublic != 2 || o.TripDistance != 1 ||
		o.PublishAmount != 2 || o.PrivatizeRun != 16 {
		t.Errorf("unexpected defaults: %+v", o)
	}
	if o.MaxIdleSleep != 200*time.Microsecond {
		t.Errorf("MaxIdleSleep default = %v", o.MaxIdleSleep)
	}
	if o.StealRetain != 1 {
		t.Errorf("StealRetain default = %d, want 1", o.StealRetain)
	}
	if o.Parking != ParkOn {
		t.Errorf("Parking default = %v, want ParkOn", o.Parking)
	}
	// Negative sleep (never sleep) must survive Defaults.
	if n := (Options{MaxIdleSleep: -1}).Defaults(); n.MaxIdleSleep != -1 {
		t.Errorf("negative MaxIdleSleep rewritten to %v", n.MaxIdleSleep)
	}
	// Spin mode implies parking off: the paper's dedicated-machine
	// configuration must stay pure spinning.
	if n := (Options{MaxIdleSleep: -1}).Defaults(); n.Parking != ParkOff {
		t.Errorf("spin mode Parking = %v, want ParkOff", n.Parking)
	}
	// Explicit settings survive Defaults.
	if n := (Options{Parking: ParkOff}).Defaults(); n.Parking != ParkOff {
		t.Errorf("explicit ParkOff rewritten to %v", n.Parking)
	}
	if n := (Options{StealRetain: -1}).Defaults(); n.StealRetain != -1 {
		t.Errorf("negative StealRetain rewritten to %d", n.StealRetain)
	}
}

func TestParkModeString(t *testing.T) {
	if ParkDefault.String() != "default" || ParkOn.String() != "on" || ParkOff.String() != "off" {
		t.Error("park mode names wrong")
	}
	if ParkMode(9).String() != "ParkMode(9)" {
		t.Error("unknown park mode formatting wrong")
	}
}

func TestWaitPolicyString(t *testing.T) {
	if WaitLeapfrog.String() != "leapfrog" || WaitSpin.String() != "spin" {
		t.Error("wait policy names wrong")
	}
	if WaitPolicy(9).String() != "WaitPolicy(9)" {
		t.Error("unknown policy formatting wrong")
	}
}

func TestWaitSpinCorrectness(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4, BlockedJoinWait: WaitSpin})
	defer p.Close()
	fib := fibDef()
	for i := 0; i < 5; i++ {
		got := p.Run(func(w *Worker) int64 { return fib.Call(w, 20) })
		if want := serialFib(20); got != want {
			t.Fatalf("WaitSpin rep %d: got %d want %d", i, got, want)
		}
	}
	if st := p.Stats(); st.LeapSteals != 0 {
		t.Errorf("WaitSpin recorded %d leapfrog steals", st.LeapSteals)
	}
}

func TestLockOSThreadOption(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 2, LockOSThread: true})
	defer p.Close()
	fib := fibDef()
	if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 15) }); got != serialFib(15) {
		t.Errorf("LockOSThread run wrong: %d", got)
	}
}

func TestProfileBreakdown(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4, Profile: true})
	defer p.Close()
	fib := fibDef()
	p.Run(func(w *Worker) int64 { return fib.Call(w, 24) })
	b := p.Profile()
	if b.NA <= 0 {
		t.Errorf("NA = %v, want > 0", b.NA)
	}
	if b.Total() <= 0 {
		t.Errorf("total = %v", b.Total())
	}
	p.ResetStats()
	b2 := p.Profile()
	if b2.NA >= b.NA && b.NA > time.Millisecond {
		t.Errorf("ResetStats did not clear profile: %v", b2.NA)
	}
}

func TestWorkerAccessors(t *testing.T) {
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	p.Run(func(w *Worker) int64 {
		if w.Index() != 0 {
			t.Errorf("run worker index = %d", w.Index())
		}
		if w.Pool() != p {
			t.Error("worker Pool() mismatch")
		}
		return 0
	})
	if p.Workers() != 2 {
		t.Errorf("Workers() = %d", p.Workers())
	}
}

func TestPrivatizationShrinksBoundary(t *testing.T) {
	// The pull-down (revocable cut-off) triggers only once trip-wire
	// publications have pushed the boundary above top+headroom and a
	// long run of inlined public joins follows. Drive that with
	// steal-heavy repetitions; the interleaving is scheduling
	// dependent, so retry until observed.
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4, PrivateTasks: true,
		InitialPublic: 1, PublishAmount: 8, PrivatizeRun: 4})
	defer p.Close()
	fib := fibDef()
	for i := 0; i < 100; i++ {
		if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 18) }); got != serialFib(18) {
			t.Fatalf("rep %d: wrong result %d", i, got)
		}
		st := p.Stats()
		if st.Privatizations > 0 {
			if st.Publications == 0 {
				t.Error("privatizations without publications cannot happen")
			}
			return
		}
	}
	st := p.Stats()
	if st.Steals > 50 {
		t.Errorf("no privatizations after %d steals and 100 reps (publications=%d)",
			st.Steals, st.Publications)
	} else {
		t.Log("too few steals to exercise privatization on this host; skipping")
	}
}

func TestTripDistanceConfig(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, trip := range []int{1, 2, 4} {
		p := NewPool(Options{Workers: 4, PrivateTasks: true, TripDistance: trip})
		fib := fibDef()
		for i := 0; i < 3; i++ {
			if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 20) }); got != serialFib(20) {
				t.Errorf("trip=%d: wrong result %d", trip, got)
			}
		}
		p.Close()
	}
}

func TestDeepNesting(t *testing.T) {
	// A purely sequential chain of nested spawns: exercises the stack
	// discipline at depth (each level spawns one child, joins it).
	p := NewPool(Options{Workers: 1, StackSize: 4096})
	defer p.Close()
	var chain *TaskDef1
	chain = Define1("chain", func(w *Worker, depth int64) int64 {
		if depth == 0 {
			return 1
		}
		chain.Spawn(w, depth-1)
		return chain.Join(w) + 1
	})
	if got := p.Run(func(w *Worker) int64 { return chain.Call(w, 4000) }); got != 4001 {
		t.Errorf("chain = %d, want 4001", got)
	}
}

func TestResultContextTask(t *testing.T) {
	// rctx round trip: tasks that need to hand back a pointer result do
	// so through the ctx they were given; res carries the scalar.
	type out struct{ v []int64 }
	var fill *TaskDefC1[out]
	fill = DefineC1("fill", func(w *Worker, o *out, n int64) int64 {
		o.v = make([]int64, n)
		for i := range o.v {
			o.v[i] = int64(i)
		}
		return n
	})
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	o := &out{}
	got := p.Run(func(w *Worker) int64 {
		fill.Spawn(w, o, 10)
		return fill.Join(w)
	})
	if got != 10 || len(o.v) != 10 || o.v[9] != 9 {
		t.Errorf("context result wrong: got=%d out=%v", got, o.v)
	}
}

// TestManySmallRunsStressShutdown exercises pool startup/shutdown and
// the quiescent steal loops between runs.
func TestManySmallRunsStressShutdown(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for i := 0; i < 20; i++ {
		p := NewPool(Options{Workers: 3})
		fib := fibDef()
		if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 10) }); got != 55 {
			t.Fatalf("iteration %d: got %d", i, got)
		}
		p.Close()
	}
}

func TestStealSamplingCorrectness(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, k := range []int{1, 2, 4} {
		p := NewPool(Options{Workers: 4, StealSampling: k, PrivateTasks: true})
		fib := fibDef()
		for rep := 0; rep < 3; rep++ {
			if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 20) }); got != serialFib(20) {
				t.Errorf("sampling=%d: wrong result %d", k, got)
			}
		}
		p.Close()
	}
}
