package costmodel

import "testing"

// TestCalibrationAgainstPaper pins the profiles to the paper's
// published micro-measurements (Tables II and III). If a profile
// drifts, the reproduction's provenance breaks — update EXPERIMENTS.md
// if these change deliberately.
func TestCalibrationAgainstPaper(t *testing.T) {
	cases := []struct {
		p         Profile
		inlined   uint64 // paper Table III "Inlined"
		twoP      uint64 // paper Table III column "2"
		tolerance float64
	}{
		{Wool(), 19, 2200, 0},
		{CilkPP(), 134, 31050, 0},
		{TBB(), 323, 5800, 0},
		{OpenMP(), 878, 4830, 0},
	}
	for _, c := range cases {
		if got := c.p.InlinedOverhead(); got != c.inlined {
			t.Errorf("%s: inlined overhead %d, want %d (paper)", c.p.Name, got, c.inlined)
		}
		if got := c.p.TwoProcSteal(); got != c.twoP {
			t.Errorf("%s: 2-proc steal %d, want %d (paper)", c.p.Name, got, c.twoP)
		}
	}
	if got := Wool().SpawnPrivate + Wool().JoinPrivate; got != 3 {
		t.Errorf("wool private path = %d cycles, want 3 (paper Table II)", got)
	}
	if got := WoolSyncOnTask().InlinedOverhead(); got != 29 {
		t.Errorf("sync-on-task = %d cycles, want 29 (paper Table II)", got)
	}
	if got := LockBase().InlinedOverhead(); got != 77 {
		t.Errorf("lock base = %d cycles, want 77 (paper Table II)", got)
	}
}

func TestOrderings(t *testing.T) {
	// The paper's qualitative orderings the simulator depends on.
	w, c, tb, o := Wool(), CilkPP(), TBB(), OpenMP()
	if !(w.InlinedOverhead() < c.InlinedOverhead() &&
		c.InlinedOverhead() < tb.InlinedOverhead() &&
		tb.InlinedOverhead() < o.InlinedOverhead()) {
		t.Error("inlined overhead ordering broken (want wool < cilk < tbb < omp)")
	}
	if !(w.TwoProcSteal() < o.TwoProcSteal() &&
		o.TwoProcSteal() < tb.TwoProcSteal() &&
		tb.TwoProcSteal() < c.TwoProcSteal()) {
		t.Error("steal cost ordering broken (want wool < omp < tbb < cilk)")
	}
	if !c.UsesLock || !o.UsesLock {
		t.Error("cilk/omp must model locks")
	}
	if w.UsesLock || tb.UsesLock {
		t.Error("wool/tbb must not model locks")
	}
}

func TestProfilesList(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("Profiles() returned %d entries", len(ps))
	}
	want := []string{"wool", "cilk++", "tbb", "openmp"}
	for i, p := range ps {
		if p.Name != want[i] {
			t.Errorf("profile %d = %q, want %q", i, p.Name, want[i])
		}
	}
}
