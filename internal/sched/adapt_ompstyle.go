package sched

import (
	"gowool/internal/ompstyle"
)

func init() { register(ompSched{}, 4) }

// ompSched registers the centralized OpenMP-style pool. Faithful to
// how the paper's OpenMP versions are written, RunRange uses the
// work-sharing loop (ParallelFor) rather than a task tree — static
// schedule for regular ranges, dynamic for irregular ones — and
// RunRec uses tasks with taskwait.
type ompSched struct{}

func (ompSched) Name() string { return "omp" }
func (ompSched) Blurb() string {
	return "centralized pool, icc OpenMP 3.0-style: closure tasks through one global lock, taskwait helps, loops by work-sharing"
}
func (ompSched) Caps() Caps {
	return Caps{
		Steal:       "one lock-protected central queue; any idle worker takes the oldest task",
		WorkSharing: true,
		Stats:       true,
		Trace:       true,
		Chaos:       true,
		// No StealPolicies: a central queue has no victims to select.
	}
}

func (ompSched) NewPool(o Options) Pool {
	return &ompPool{p: ompstyle.NewPool(ompstyle.Options{
		Workers:      o.Workers,
		QueueSize:    o.StackSize,
		MaxIdleSleep: o.MaxIdleSleep,
		Trace:        o.Trace,
		Chaos:        o.Chaos,
	})}
}

type ompPool struct{ p *ompstyle.Pool }

func (op *ompPool) Workers() int { return op.p.Workers() }
func (op *ompPool) Close()       { op.p.Close() }
func (op *ompPool) Native() any  { return op.p }
func (op *ompPool) ResetStats()  { op.p.ResetStats() }

func (op *ompPool) Stats() Stats {
	s := op.p.Stats()
	return Stats{
		Spawns: s.Spawns,
		Extra: map[string]int64{
			"executed":    s.Executed,
			"wait_loops":  s.WaitLoops,
			"chunks_run":  s.ChunksRun,
			"max_queued":  s.MaxQueued,
			"lock_passes": s.LockPasses,
		},
	}
}

// ompRec is the task-recursive body: spawn one child task, compute the
// other branch inline, taskwait — how the paper's OpenMP fib is
// written.
func ompRec(tc *ompstyle.Context, j *RecJob, n int64) int64 {
	if v, ok := j.Leaf(n); ok {
		return v
	}
	first, second := j.Split(n)
	var a int64
	tc.SpawnTask(func(tc2 *ompstyle.Context) { a = ompRec(tc2, j, second) })
	b := ompRec(tc, j, first)
	tc.Taskwait()
	return a + b
}

func (op *ompPool) RunRec(j RecJob) int64 {
	return op.p.Run(func(tc *ompstyle.Context) int64 {
		var total int64
		for r := int64(0); r < reps(j.Reps); r++ {
			total += ompRec(tc, &j, j.Root)
		}
		return total
	})
}

func (op *ompPool) RunRange(j RangeJob) int64 {
	out := make([]int64, j.N)
	return op.p.Run(func(tc *ompstyle.Context) int64 {
		schedule, chunk := ompstyle.Static, int64(0)
		if j.Irregular {
			schedule, chunk = ompstyle.Dynamic, 4
		}
		var total int64
		for r := int64(0); r < reps(j.Reps); r++ {
			tc.ParallelFor(0, j.N, schedule, chunk, func(i int64) { out[i] = j.Leaf(i) })
			for _, v := range out {
				total += v
			}
		}
		return total
	})
}
