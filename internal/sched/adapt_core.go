package sched

import (
	"gowool/internal/core"
	"gowool/internal/steal"
)

func init() { register(woolSched{}, 0) }

// woolSched registers the paper's direct task stack (internal/core).
type woolSched struct{}

func (woolSched) Name() string { return "wool" }
func (woolSched) Blurb() string {
	return "direct task stack (the paper's scheduler): descriptors inline in a per-worker array, thief/victim sync on the descriptor state word, private tasks, leapfrogging"
}
func (woolSched) Caps() Caps {
	return Caps{
		Steal:        "CAS on the task descriptor's state word; steal child, oldest first",
		StealChild:   true,
		PrivateTasks: true,
		Leapfrog:     true,
		Stats:        true,
		TaskDefs:     true,
		Trace:        true,
		Chaos:        true,
		Watchdog:     true,
		// The direct task stack takes one task per steal: descriptors
		// live in the victim's stack and are claimed individually.
		StealPolicies: steal.Policies(),
		StealAmounts:  []string{steal.AmountOne},
		// *core.Pool implements Abort/Poisoned/Reset, so the serving
		// layer can cancel requests mid-flight (woolgen inherits this
		// Caps copy and with it the flag).
		Serve: true,
	}
}

func (woolSched) NewPool(o Options) Pool {
	return &woolPool{p: core.NewPool(core.Options{
		Workers:        o.Workers,
		StackSize:      o.StackSize,
		StrictOverflow: o.StrictOverflow,
		PrivateTasks:   o.PrivateTasks,
		MaxIdleSleep:   o.MaxIdleSleep,
		Trace:          o.Trace,
		Chaos:          o.Chaos,
		Watchdog:       o.Watchdog,
		Steal:          o.Steal,
	})}
}

type woolPool struct{ p *core.Pool }

func (wp *woolPool) Workers() int { return wp.p.Workers() }
func (wp *woolPool) Close()       { wp.p.Close() }
func (wp *woolPool) Native() any  { return wp.p }
func (wp *woolPool) ResetStats()  { wp.p.ResetStats() }

func (wp *woolPool) Stats() Stats {
	s := wp.p.Stats()
	return Stats{
		Spawns:        s.Spawns,
		JoinsInlined:  s.JoinsInlinedPublic + s.JoinsInlinedPrivate,
		JoinsStolen:   s.JoinsStolen,
		Steals:        s.Steals,
		StealAttempts: s.StealAttempts,
		Backoffs:      s.Backoffs,
		Extra: map[string]int64{
			"joins_inlined_private": s.JoinsInlinedPrivate,
			"joins_inlined_public":  s.JoinsInlinedPublic,
			"leap_steals":           s.LeapSteals,
			"publications":          s.Publications,
			"privatizations":        s.Privatizations,
			"retained_steals":       s.RetainedSteals,
			"parks":                 s.Parks,
			"wakes":                 s.Wakes,
			"overflow_inlined":      s.OverflowInlined,
		},
	}
}

func (wp *woolPool) RunRec(j RecJob) int64 {
	d := BuildRec(core.Define1, j)
	return wp.p.Run(func(w *core.Worker) int64 {
		var total int64
		for r := int64(0); r < reps(j.Reps); r++ {
			total += d.Call(w, j.Root)
		}
		return total
	})
}

func (wp *woolPool) RunRange(j RangeJob) int64 {
	d := BuildRange(core.Define2, j)
	return wp.p.Run(func(w *core.Worker) int64 {
		var total int64
		for r := int64(0); r < reps(j.Reps); r++ {
			total += d.Call(w, 0, j.N)
		}
		return total
	})
}
