package sched_test

import (
	"runtime"
	"sync/atomic"
	"testing"

	"gowool/internal/sched"
	"gowool/internal/steal"
	"gowool/internal/workloads/fibw"
)

// TestStealCapsNameKnownPolicies: every advertised policy and amount
// is a name internal/steal knows, and backends advertising amounts
// advertise policies too (an amount without victim selection is
// meaningless).
func TestStealCapsNameKnownPolicies(t *testing.T) {
	known := func(name string, all []string) bool {
		for _, k := range all {
			if k == name {
				return true
			}
		}
		return false
	}
	for _, s := range sched.All() {
		caps := s.Caps()
		for _, pol := range caps.StealPolicies {
			if !known(pol, steal.Policies()) {
				t.Errorf("%s advertises unknown policy %q", s.Name(), pol)
			}
		}
		for _, amt := range caps.StealAmounts {
			if !known(amt, steal.Amounts()) {
				t.Errorf("%s advertises unknown amount %q", s.Name(), amt)
			}
		}
		if len(caps.StealAmounts) > 0 && len(caps.StealPolicies) == 0 {
			t.Errorf("%s advertises amounts without policies", s.Name())
		}
	}
}

// TestStealPolicyConformance runs the serial-agreement and
// exactly-once workloads over every advertised policy × amount on
// every backend that advertises policies — the chaos-free arm of the
// policy matrix (TestStealPolicyTorture is the perturbed arm). Every
// failure message names the policy and amount.
func TestStealPolicyConformance(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, s := range sched.All() {
		caps := s.Caps()
		if len(caps.StealPolicies) == 0 {
			continue
		}
		t.Run(s.Name(), func(t *testing.T) {
			for _, pol := range caps.StealPolicies {
				for _, amt := range caps.StealAmounts {
					t.Run(pol+"/"+amt, func(t *testing.T) {
						cfg := steal.Config{Policy: pol, Amount: amt, Neighborhood: 2}

						j := fibw.Job(17, 2)
						p := s.NewPool(sched.Options{Workers: 4, Steal: cfg})
						got := p.RunRec(j)
						p.Close()
						if want := j.Serial(); got != want {
							t.Fatalf("%s policy=%s amount=%s: fib(17)×2 = %d, want %d",
								s.Name(), pol, amt, got, want)
						}

						const height = 8
						var leaves atomic.Int64
						rec := sched.RecJob{
							Name: "tree", Root: height, Reps: 1,
							Leaf: func(h int64) (int64, bool) {
								if h == 0 {
									leaves.Add(1)
									return 1, true
								}
								return 0, false
							},
							Split: func(h int64) (inline, spawned int64) { return h - 1, h - 1 },
						}
						p = s.NewPool(sched.Options{Workers: 4, Steal: cfg})
						got = p.RunRec(rec)
						p.Close()
						if want := int64(1 << height); got != want || leaves.Load() != want {
							t.Fatalf("%s policy=%s amount=%s: tree sum=%d leaves=%d, want %d",
								s.Name(), pol, amt, got, leaves.Load(), want)
						}
					})
				}
			}
		})
	}
}

// TestStealConfigIgnoredWithoutCapability: backends that advertise no
// policies must run correctly with a non-default Steal config anyway
// (the adapter ignores it).
func TestStealConfigIgnoredWithoutCapability(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, s := range sched.All() {
		if len(s.Caps().StealPolicies) > 0 {
			continue
		}
		t.Run(s.Name(), func(t *testing.T) {
			j := fibw.Job(14, 1)
			p := s.NewPool(sched.Options{
				Workers: 4,
				Steal:   steal.Config{Policy: steal.Localized, Amount: steal.AmountHalf},
			})
			got := p.RunRec(j)
			p.Close()
			if want := j.Serial(); got != want {
				t.Fatalf("%s: fib(14) = %d, want %d", s.Name(), got, want)
			}
		})
	}
}
