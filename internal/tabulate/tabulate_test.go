package tabulate

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := New("demo", "name", "value", "ratio")
	tb.Row("alpha", 42, 1.5)
	tb.Row("beta-long-name", 7, 123456.789)
	tb.Note("a note with %d args", 2)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()

	for _, want := range []string{"== demo ==", "alpha", "beta-long-name", "42", "1.50", "123457", "note: a note with 2 args"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns must align: "value" header starts where 42 and 7 start.
	lines := strings.Split(out, "\n")
	header := lines[1]
	idx := strings.Index(header, "value")
	if idx < 0 {
		t.Fatal("no value header")
	}
	if lines[3][idx:idx+2] != "42" {
		t.Errorf("column misaligned: %q", lines[3])
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.25:    "1.25",
		99.999:  "100.00",
		150.4:   "150.4",
		2000.49: "2000",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestPlotRender(t *testing.T) {
	p := NewPlot("speedup", "procs", "x faster", []float64{1, 2, 4, 8})
	p.Add("wool", []float64{1, 2, 3.9, 7})
	p.Add("other", []float64{1, 1.2, 1.1, 0.9})
	var buf bytes.Buffer
	p.Render(&buf)
	out := buf.String()
	for _, want := range []string{"speedup", "procs", "wool", "other", "legend:", "A=wool", "B=other", "7.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotEdgeCases(t *testing.T) {
	var buf bytes.Buffer
	// No series: table renders, chart skipped, no panic.
	NewPlot("empty", "x", "y", []float64{1, 2}).Render(&buf)
	// One x point: chart skipped.
	p := NewPlot("single", "x", "y", []float64{3})
	p.Add("s", []float64{5})
	p.Render(&buf)
	// All-zero values: chart skipped.
	pz := NewPlot("zeros", "x", "y", []float64{1, 2})
	pz.Add("s", []float64{0, 0})
	pz.Render(&buf)
	// Short series: missing cells render as '-'.
	ps := NewPlot("short", "x", "y", []float64{1, 2, 3})
	ps.Add("s", []float64{5})
	ps.Render(&buf)
	if !strings.Contains(buf.String(), "-") {
		t.Error("missing-cell marker absent")
	}
}
