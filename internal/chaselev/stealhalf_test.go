package chaselev

import (
	"testing"

	"gowool/internal/steal"
)

// stoppedHalfPool builds a steal-half pool whose idle loops have
// exited, so the deque and trySteal can be driven by hand.
func stoppedHalfPool(t *testing.T, workers int) *Pool {
	t.Helper()
	p := NewPool(Options{Workers: workers, Steal: steal.Config{Amount: steal.AmountHalf}})
	p.Close()
	return p
}

// TestStealHalfBatchExtraction pins the batch semantics: one successful
// trySteal against a victim with n visible tasks claims and runs
// ceil(n/2) of them, oldest first, leaving the rest for the owner.
func TestStealHalfBatchExtraction(t *testing.T) {
	p := stoppedHalfPool(t, 2)
	victim, thief := p.workers[0], p.workers[1]

	const n = 8
	var order []int64
	for i := 0; i < n; i++ {
		task := victim.alloc()
		task.a0 = int64(i)
		task.fn = func(w *Worker, t *Task) { order = append(order, t.a0) }
		if !victim.push(task) {
			t.Fatalf("push %d failed", i)
		}
	}
	if !thief.trySteal(victim, false) {
		t.Fatal("trySteal failed against a full deque")
	}
	// avail=8 → take (8+1)/2 = 4 tasks, oldest first: 0,1,2,3.
	if len(order) != n/2 {
		t.Fatalf("one steal-half ran %d tasks, want %d (order %v)", len(order), n/2, order)
	}
	for i, got := range order {
		if got != int64(i) {
			t.Fatalf("batch ran out of order: %v", order)
		}
	}
	if left := victim.bottom.Load() - victim.top.Load(); left != n/2 {
		t.Fatalf("victim left with %d tasks, want %d", left, n/2)
	}
	if s := thief.steals.Load(); s != n/2 {
		t.Fatalf("steals counter %d, want %d (one per claimed task)", s, n/2)
	}
}

// TestStealHalfSingleTask: a victim with one task behaves exactly like
// amount=one — no over-claiming.
func TestStealHalfSingleTask(t *testing.T) {
	p := stoppedHalfPool(t, 2)
	victim, thief := p.workers[0], p.workers[1]
	ran := 0
	task := victim.alloc()
	task.fn = func(w *Worker, t *Task) { ran++ }
	victim.push(task)
	if !thief.trySteal(victim, false) {
		t.Fatal("trySteal failed")
	}
	if ran != 1 {
		t.Fatalf("ran %d tasks, want 1", ran)
	}
	if left := victim.bottom.Load() - victim.top.Load(); left != 0 {
		t.Fatalf("victim left with %d tasks", left)
	}
}

// TestStealHalfEndToEnd runs a real workload under steal-half and every
// victim policy: serial agreement across repetitions.
func TestStealHalfEndToEnd(t *testing.T) {
	for _, pol := range steal.Policies() {
		var fib *TaskDef1
		fib = Define1("fib-half-"+pol, func(w *Worker, n int64) int64 {
			if n < 2 {
				return n
			}
			fib.Spawn(w, n-2)
			a := fib.Call(w, n-1)
			b := fib.Join(w)
			return a + b
		})
		p := NewPool(Options{
			Workers: 4,
			Steal:   steal.Config{Policy: pol, Amount: steal.AmountHalf, Neighborhood: 2},
		})
		for rep := 0; rep < 3; rep++ {
			if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 20) }); got != 6765 {
				p.Close()
				t.Fatalf("policy %s rep %d: fib(20) = %d, want 6765", pol, rep, got)
			}
		}
		p.Close()
	}
}
