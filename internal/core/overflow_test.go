package core

import (
	"runtime"
	"testing"
)

// deepDefs builds the depth-stress shape: deep(d) spawns a leaf, holds
// it open across the recursive call to deep(d-1), and joins on the way
// back up — so d live descriptors coexist at the deepest point.
func deepDefs() *TaskDef1 {
	leaf := Define1("leaf", func(w *Worker, x int64) int64 { return x })
	var deep *TaskDef1
	deep = Define1("deep", func(w *Worker, d int64) int64 {
		if d == 0 {
			return 0
		}
		leaf.Spawn(w, d)
		sub := deep.Call(w, d-1)
		return sub + leaf.Join(w)
	})
	return deep
}

// TestOverflowDegradesToInline is the acceptance shape: a StackSize-4
// pool completes a depth-1000 spawn tree correctly, with the spawns
// beyond capacity executed inline and counted.
func TestOverflowDegradesToInline(t *testing.T) {
	deep := deepDefs()
	const depth = 1000
	const want = depth * (depth + 1) / 2
	for _, workers := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(4)
		p := NewPool(Options{Workers: workers, StackSize: 4})
		got := p.Run(func(w *Worker) int64 { return deep.Call(w, depth) })
		st := p.Stats()
		p.Close()
		runtime.GOMAXPROCS(prev)
		if got != want {
			t.Fatalf("workers=%d: depth-%d spawn tree = %d, want %d", workers, depth, got, want)
		}
		if st.OverflowInlined == 0 {
			t.Fatalf("workers=%d: OverflowInlined = 0 on a depth-%d tree with StackSize 4", workers, depth)
		}
	}
}

// TestOverflowJoinOrder checks the LIFO replay of overflow-inlined
// results: spawns past capacity record their results in order, and the
// matching joins read them back youngest-first before the stack joins.
func TestOverflowJoinOrder(t *testing.T) {
	p := NewPool(Options{Workers: 1, StackSize: 8})
	defer p.Close()
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	var joined []int64
	p.Run(func(w *Worker) int64 {
		for i := int64(0); i < 100; i++ {
			noop.Spawn(w, i)
		}
		for i := 0; i < 100; i++ {
			joined = append(joined, noop.Join(w))
		}
		return 0
	})
	var sum int64
	for _, v := range joined {
		sum += v
	}
	if sum != 99*100/2 {
		t.Fatalf("joined sum = %d, want %d (join order: %v...)", sum, 99*100/2, joined[:8])
	}
	// Strict LIFO: the first joins replay the overflow-inlined results,
	// youngest first.
	if joined[0] != 99 || joined[1] != 98 {
		t.Fatalf("first joins = %v, want the youngest overflow-inlined results 99, 98", joined[:2])
	}
	st := p.Stats()
	if st.OverflowInlined == 0 {
		t.Fatalf("OverflowInlined = 0 after 100 spawns into a StackSize-8 pool")
	}
	if st.Spawns+st.OverflowInlined != 100 {
		t.Fatalf("Spawns (%d) + OverflowInlined (%d) != 100", st.Spawns, st.OverflowInlined)
	}
	if st.Joins() != st.Spawns {
		t.Fatalf("Joins (%d) != Spawns (%d): overflow-inlined joins must not count", st.Joins(), st.Spawns)
	}
}

// TestOverflowFibUnderSteals runs fib on a tiny stack with thieves
// active: degradation must compose with concurrent stealing (an
// overflow-inlined child may itself spawn tasks that get stolen).
func TestOverflowFibUnderSteals(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	fib := fibDef()
	want := serialFib(20)
	for _, private := range []bool{false, true} {
		p := NewPool(Options{Workers: 4, StackSize: 4, PrivateTasks: private})
		got := p.Run(func(w *Worker) int64 { return fib.Call(w, 20) })
		st := p.Stats()
		p.Close()
		if got != want {
			t.Fatalf("private=%v: fib(20) on StackSize 4 = %d, want %d", private, got, want)
		}
		if st.OverflowInlined == 0 {
			t.Fatalf("private=%v: OverflowInlined = 0 for fib(20) on StackSize 4", private)
		}
	}
}
