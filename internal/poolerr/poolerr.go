// Package poolerr holds the error values shared by every pool backend's
// lifecycle surface, so callers (and the cross-backend conformance
// suite) can recognize a lifecycle failure without matching on
// backend-specific message strings.
//
// The backends deliberately keep their Run signature result-only (a
// spawn/join runtime returns the root's value, not an error), so
// lifecycle violations surface as panics — but the panic *values* are
// errors built here, and errors.Is/errors.As see through the
// per-backend prefix:
//
//	defer func() {
//		if r := recover(); r != nil {
//			if err, ok := r.(error); ok && errors.Is(err, poolerr.ErrConcurrentRun) { ... }
//		}
//	}()
package poolerr

import (
	"errors"
	"fmt"
)

// ErrConcurrentRun is the sentinel wrapped by the panic every pooled
// backend raises when Run is called while another Run is in flight on
// the same pool. The root-join protocol assumes a single root: worker 0
// is driven by the calling goroutine, so two overlapping Runs would
// interleave two task trees on one stack and corrupt the join order.
// Backends detect the overlap with a CAS on a running flag and panic
// with ConcurrentRun(name) instead.
var ErrConcurrentRun = errors.New("concurrent Run on the same pool")

// ConcurrentRun builds the panic value for a concurrent-Run violation
// on the named backend. errors.Is(v, ErrConcurrentRun) holds.
func ConcurrentRun(backend string) error {
	return fmt.Errorf("%s: %w", backend, ErrConcurrentRun)
}

// AbortError is the panic value a request-scoped abort injects into a
// running root (DESIGN.md §16): Pool.Abort(reason) poisons the pool
// with an *AbortError, the protocol's abort checks re-raise it on the
// workers, and Run re-raises it to the caller, which unwraps Reason —
// typically a context error — to classify the outcome. It is a
// distinct type so serving layers can tell a deliberate cancellation
// from a genuine task panic.
type AbortError struct {
	// Reason is what the aborter passed to Abort — for the serving
	// layer, the request context's ctx.Err().
	Reason error
}

// Error describes the abort.
func (e *AbortError) Error() string {
	if e.Reason == nil {
		return "run aborted"
	}
	return "run aborted: " + e.Reason.Error()
}

// Unwrap exposes the abort reason to errors.Is/errors.As (so a caller
// sees context.Canceled through the wrapper).
func (e *AbortError) Unwrap() error { return e.Reason }
