// Package nqueens is an irregular search-tree workload: subtree sizes
// are unpredictable and wildly skewed, the situation the paper's
// Section III-B flags for the private-task scheme ("if the task tree
// is balanced, fewer public task descriptors suffice to keep all
// workers busy while very unbalanced trees require more") and that
// its introduction gives as the reason manual cut-offs fail ("task
// execution times can not be predicted in advance").
//
// Boards are packed into one int64 (4 bits per placed row, n ≤ 15), so
// a complete search state rides in a task descriptor's integer slots.
package nqueens

import (
	"gowool/internal/core"
	"gowool/internal/sim"
)

// MaxN is the largest supported board (4-bit column packing).
const MaxN = 15

// ok reports whether a queen at (rows, col) is compatible with board.
func ok(rows, board, col int64) bool {
	for r := int64(0); r < rows; r++ {
		c := (board >> (4 * r)) & 0xf
		if c == col || c-col == rows-r || col-c == rows-r {
			return false
		}
	}
	return true
}

// Serial counts the solutions of the n-queens problem.
func Serial(n int64) int64 {
	return serialFrom(0, 0, n)
}

func serialFrom(board, rows, n int64) int64 {
	if rows == n {
		return 1
	}
	var total int64
	for col := int64(0); col < n; col++ {
		if ok(rows, board, col) {
			total += serialFrom(board|col<<(4*rows), rows+1, n)
		}
	}
	return total
}

// NewWool builds the task: arguments are (board, rows, n); every
// feasible placement is spawned with no cutoff.
func NewWool() *core.TaskDef3 {
	var nq *core.TaskDef3
	nq = core.Define3("nqueens", func(w *core.Worker, board, rows, n int64) int64 {
		if rows == n {
			return 1
		}
		spawned := 0
		for col := int64(0); col < n; col++ {
			if !ok(rows, board, col) {
				continue
			}
			nq.Spawn(w, board|col<<(4*rows), rows+1, n)
			spawned++
		}
		var total int64
		for i := 0; i < spawned; i++ {
			total += nq.Join(w)
		}
		return total
	})
	return nq
}

// RunWool counts solutions on the pool.
func RunWool(p *core.Pool, nq *core.TaskDef3, n int64) int64 {
	return p.Run(func(w *core.Worker) int64 { return nq.Call(w, 0, 0, n) })
}

// NodeCycles is the simulated cost of one placement check pass (the
// feasibility loop over placed rows, ~6 cycles per comparison, plus
// task body overheadry).
func NodeCycles(rows int64) uint64 { return 20 + 6*uint64(rows) }

// NewSim builds the simulated task: A0 = board, A1 = rows, A2 = n.
func NewSim() *sim.Def {
	d := &sim.Def{Name: "nqueens"}
	d.F = func(w *sim.W, a sim.Args) int64 {
		board, rows, n := a.A0, a.A1, a.A2
		w.Work(NodeCycles(rows) * uint64(n))
		if rows == n {
			return 1
		}
		spawned := 0
		for col := int64(0); col < n; col++ {
			if !ok(rows, board, col) {
				continue
			}
			d.Spawn(w, sim.Args{A0: board | col<<(4*rows), A1: rows + 1, A2: n})
			spawned++
		}
		var total int64
		for i := 0; i < spawned; i++ {
			total += w.Join()
		}
		return total
	}
	return d
}
