// Package ompstyle is a task scheduler shaped like the icc OpenMP 3.0
// runtime the paper compares against: tasks are closures routed
// through a central, lock-protected pool shared by the thread team,
// and loop parallelism uses work-sharing (ParallelFor) rather than
// task recursion — exactly how the paper's mm and ssf OpenMP versions
// are written.
//
// The structural costs this baseline reproduces: every task is a heap
// allocation (closure + descriptor), every submission and retrieval
// crosses one global lock, and a taskwait helps by executing arbitrary
// queued tasks (OpenMP's untied-task behaviour), with the attendant
// contention when many fine-grained tasks hit the pool at once.
package ompstyle

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Task is a queued task: a closure plus the parent link used by
// Taskwait's completion counting.
type Task struct {
	fn     func(*Context)
	parent *Task
	// children counts outstanding child tasks (spawned minus completed).
	// woolvet:atomic
	children atomic.Int64
}

// Context is the execution context of a task (or the master function):
// the handle through which the body spawns tasks, waits, and runs
// parallel loops.
type Context struct {
	pool *Pool
	cur  *Task
}

// Stats are the scheduler's event counters.
type Stats struct {
	Spawns     int64
	Executed   int64
	WaitLoops  int64 // Taskwait help-iterations that found nothing to run
	ChunksRun  int64 // ParallelFor chunks executed
	MaxQueued  int64 // high-water mark of the central queue
	LockPasses int64 // queue lock acquisitions
}

// Pool is an OpenMP-style thread team with a central task pool. The
// central lock contention is the point of this baseline, but the stats
// counters are kept a cache line away from the queue (enforced by the
// woolvet layoutguard pass) so counter traffic does not add incidental
// invalidations on top of the modelled cost.
type Pool struct {
	opts Options

	// woolvet:cacheline group=queue
	mu    sync.Mutex
	queue []*Task

	_ [64]byte // pad: end of the central-queue group

	// woolvet:cacheline group=counters
	// woolvet:atomic
	spawns atomic.Int64
	// woolvet:atomic
	executed atomic.Int64
	// woolvet:atomic
	waitLoops atomic.Int64
	// woolvet:atomic
	chunksRun atomic.Int64
	// woolvet:atomic
	maxQueued atomic.Int64
	// woolvet:atomic
	lockPasses atomic.Int64

	shutdown atomic.Bool
	running  atomic.Bool
	wg       sync.WaitGroup
}

// Options configures a Pool.
type Options struct {
	// Workers is the team size; default GOMAXPROCS.
	Workers int
	// MaxIdleSleep caps idle back-off sleeping; default 200µs.
	MaxIdleSleep time.Duration
}

func (o Options) defaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxIdleSleep == 0 {
		o.MaxIdleSleep = 200 * time.Microsecond
	}
	return o
}

// NewPool creates the team; the master is the goroutine calling Run.
func NewPool(opts Options) *Pool {
	opts = opts.defaults()
	p := &Pool{opts: opts}
	p.wg.Add(opts.Workers - 1)
	for i := 1; i < opts.Workers; i++ {
		go p.workerLoop()
	}
	return p
}

// Workers returns the team size.
func (p *Pool) Workers() int { return p.opts.Workers }

// Run executes master with a root context and returns its result after
// all transitively spawned tasks have completed.
func (p *Pool) Run(master func(*Context) int64) int64 {
	if p.shutdown.Load() {
		panic("ompstyle: Run on closed Pool")
	}
	if !p.running.CompareAndSwap(false, true) {
		panic("ompstyle: concurrent Run calls")
	}
	defer p.running.Store(false)
	root := &Task{}
	tc := &Context{pool: p, cur: root}
	res := master(tc)
	tc.Taskwait() // implicit barrier: no task escapes the run
	return res
}

// Close stops the team.
func (p *Pool) Close() {
	if p.shutdown.Swap(true) {
		return
	}
	p.wg.Wait()
}

// Stats returns aggregate counters (quiescent pools only).
func (p *Pool) Stats() Stats {
	return Stats{
		Spawns:     p.spawns.Load(),
		Executed:   p.executed.Load(),
		WaitLoops:  p.waitLoops.Load(),
		ChunksRun:  p.chunksRun.Load(),
		MaxQueued:  p.maxQueued.Load(),
		LockPasses: p.lockPasses.Load(),
	}
}

// ResetStats zeroes the counters.
func (p *Pool) ResetStats() {
	p.spawns.Store(0)
	p.executed.Store(0)
	p.waitLoops.Store(0)
	p.chunksRun.Store(0)
	p.maxQueued.Store(0)
	p.lockPasses.Store(0)
}

// push queues t centrally (LIFO end; OpenMP runtimes favour newest
// tasks for locality).
func (p *Pool) push(t *Task) {
	p.mu.Lock()
	p.lockPasses.Add(1)
	p.queue = append(p.queue, t)
	if n := int64(len(p.queue)); n > p.maxQueued.Load() {
		p.maxQueued.Store(n)
	}
	p.mu.Unlock()
}

// tryPop takes the newest queued task, or nil.
func (p *Pool) tryPop() *Task {
	p.mu.Lock()
	p.lockPasses.Add(1)
	n := len(p.queue)
	if n == 0 {
		p.mu.Unlock()
		return nil
	}
	t := p.queue[n-1]
	p.queue[n-1] = nil
	p.queue = p.queue[:n-1]
	p.mu.Unlock()
	return t
}

// execute runs t and performs completion accounting.
func (p *Pool) execute(t *Task) {
	tc := &Context{pool: p, cur: t}
	t.fn(tc)
	// A task is complete only when its own children are: OpenMP's
	// implicit end-of-task region does not wait, but completion
	// accounting toward the parent's taskwait must. Help until quiet.
	tc.Taskwait()
	p.executed.Add(1)
	if t.parent != nil {
		t.parent.children.Add(-1)
	}
}

// SpawnTask submits fn as a child task of the current context.
func (tc *Context) SpawnTask(fn func(*Context)) {
	t := &Task{fn: fn, parent: tc.cur}
	tc.cur.children.Add(1)
	tc.pool.spawns.Add(1)
	tc.pool.push(t)
}

// Taskwait blocks until all child tasks of the current context have
// completed, helping by executing queued tasks meanwhile (untied-task
// semantics: any queued task may run here).
func (tc *Context) Taskwait() {
	p := tc.pool
	fails := 0
	for tc.cur.children.Load() > 0 {
		if t := p.tryPop(); t != nil {
			p.execute(t)
			fails = 0
			continue
		}
		p.waitLoops.Add(1)
		fails++
		if fails&0xf == 0 || runtime.GOMAXPROCS(0) == 1 {
			runtime.Gosched()
		}
	}
}

// Schedule selects the ParallelFor distribution, mirroring OpenMP's
// schedule(static) and schedule(dynamic, chunk).
type Schedule int

// Schedules.
const (
	Static Schedule = iota
	Dynamic
)

// ParallelFor runs body(i) for i in [lo, hi) across the team: the
// work-sharing construct the paper's OpenMP mm and ssf use instead of
// task recursion. Static cuts the range into one chunk per team
// member; Dynamic cuts it into chunks of the given size handed out
// through the central pool.
//
// Nested regions must nest through task contexts: call ParallelFor on
// the *Context the enclosing task received, never on an ancestor's —
// waiting on an ancestor's children from inside one of them would
// wait for itself.
func (tc *Context) ParallelFor(lo, hi int64, sched Schedule, chunk int64, body func(i int64)) {
	if hi <= lo {
		return
	}
	n := hi - lo
	switch sched {
	case Static:
		team := int64(tc.pool.opts.Workers)
		per := (n + team - 1) / team
		for c := int64(0); c < team; c++ {
			cl, ch := lo+c*per, lo+(c+1)*per
			if cl >= hi {
				break
			}
			if ch > hi {
				ch = hi
			}
			tc.spawnChunk(cl, ch, body)
		}
	case Dynamic:
		if chunk <= 0 {
			chunk = 1
		}
		for cl := lo; cl < hi; cl += chunk {
			ch := cl + chunk
			if ch > hi {
				ch = hi
			}
			tc.spawnChunk(cl, ch, body)
		}
	}
	tc.Taskwait()
}

func (tc *Context) spawnChunk(lo, hi int64, body func(i int64)) {
	tc.SpawnTask(func(tc2 *Context) {
		for i := lo; i < hi; i++ {
			body(i)
		}
		tc2.pool.chunksRun.Add(1)
	})
}

// workerLoop is the life of team members 1..N-1.
func (p *Pool) workerLoop() {
	fails := 0
	for !p.shutdown.Load() {
		if t := p.tryPop(); t != nil {
			p.execute(t)
			fails = 0
			continue
		}
		fails++
		switch {
		case fails < 64:
			if runtime.GOMAXPROCS(0) == 1 {
				runtime.Gosched()
			}
		case fails < 1024 || p.opts.MaxIdleSleep <= 0:
			runtime.Gosched()
		default:
			d := time.Duration(fails-1023) * time.Microsecond
			if d > p.opts.MaxIdleSleep {
				d = p.opts.MaxIdleSleep
			}
			time.Sleep(d)
		}
	}
	p.wg.Done()
}
