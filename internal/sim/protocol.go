package sim

import "gowool/internal/overflow"

// This file is the simulated scheduling protocol: spawn, join, steal,
// trip-wire publication and lock modelling. All state is plain data
// guarded by the vtime token; costs come from the machine's Profile.

// spawn pushes a task for def with the given args.
func (w *W) spawn(def *Def, a Args) {
	if w.morePublic {
		w.publishMore()
	}
	c := &w.m.cfg.Costs
	if w.top == len(w.tasks) {
		if w.m.cfg.StrictOverflow {
			panic(overflow.PanicMessage("sim", w.p.ID(), len(w.tasks)))
		}
		// Degrade to inline serial execution (serial elision): charge
		// the private-spawn cost, run the child now, and stash the
		// result for the matching Join to replay LIFO. Not counted in
		// Spawns — the replaying join is not counted either.
		w.chargeApp(c.SpawnPrivate)
		w.p.Step(c.SpawnPrivate)
		w.ovf = append(w.ovf, def.F(w, a))
		w.St.OverflowInlined++
		return
	}
	t := &w.tasks[w.top]
	t.fn, t.args = def, a
	t.thief = 0

	if w.m.cfg.Kind == KindCentral {
		// Central queue: the task is also registered globally, behind
		// the queue lock.
		t.state = sTask
		t.priv = false
		w.m.centralLock(w)
		w.m.central = append(w.m.central, t)
		w.top++
		w.St.Spawns++
		w.chargeApp(c.SpawnPublic)
		w.spanSpawn()
		w.p.Step(c.SpawnPublic)
		return
	}

	if w.top < w.publicLimit {
		t.priv = false
		t.state = sTask
		w.chargeApp(c.SpawnPublic)
		w.spanSpawn()
		w.p.Step(c.SpawnPublic)
	} else {
		t.priv = true
		t.state = sEmpty
		w.chargeApp(c.SpawnPrivate)
		w.spanSpawn()
		w.p.Step(c.SpawnPrivate)
	}
	w.top++
	w.St.Spawns++
}

// Join resolves the most recently spawned task of w and returns its
// result: inline it when still present, otherwise wait out the thief
// under the kind's policy.
func (w *W) Join() int64 {
	if n := len(w.ovf); n != 0 {
		// Overflow-elided spawn: replay its stored result, strictly
		// younger than anything on the stack. Charged like a private
		// join; not counted in the join counters (its spawn was not
		// counted in Spawns).
		c := &w.m.cfg.Costs
		res := w.ovf[n-1]
		w.ovf = w.ovf[:n-1]
		w.chargeApp(c.JoinPrivate)
		w.p.Step(c.JoinPrivate)
		return res
	}
	// Note: top == bot does NOT mean "no matching spawn" — when the
	// youngest task was stolen, bot has already passed its slot while
	// top still reserves it. Only top == 0 is a true imbalance.
	if w.top == 0 {
		panic("sim: join without matching spawn")
	}
	c := &w.m.cfg.Costs
	t := &w.tasks[w.top-1]

	if w.m.cfg.Kind == KindCentral {
		return w.joinCentral(t)
	}

	if t.priv {
		// Private fast path: no synchronization.
		w.top--
		t.priv = false
		w.St.JoinsPrivate++
		w.chargeApp(c.JoinPrivate)
		w.spanJoinStart()
		w.p.Step(c.JoinPrivate)
		res := t.fn.F(w, t.args)
		w.spanJoinEnd()
		return res
	}

	// Lock systems: the owner takes its own lock to join, waiting out
	// any thief currently holding it.
	if c.UsesLock {
		w.acquireOwnLock()
	}

	if t.state == sTask {
		t.state = sEmpty
		w.top--
		w.St.JoinsPublic++
		w.notePublicInline()
		w.chargeApp(c.JoinPublic)
		w.spanJoinStart()
		w.p.Step(c.JoinPublic)
		res := t.fn.F(w, t.args)
		w.spanJoinEnd()
		return res
	}

	// Stolen: pay the victim-side sync cost, then wait under the wait
	// policy. top stays put (the slot is reserved until resolution).
	w.St.JoinsStolen++
	w.chargeApp(c.JoinStolen)
	w.p.Step(c.JoinStolen)
	thief := w.m.ws[t.thief]
	probeBackoff := uint64(16)
	for t.state != sDone {
		var ok bool
		if w.m.cfg.Kind == KindDeque {
			// TBB-like: unrestricted stealing while blocked.
			v := w.nextVictim()
			ok = w.trySteal(v, modeLA)
			w.pol.Observe(v.idx, ok)
		} else {
			// Wool and the lock ladder: leapfrog off the thief.
			ok = w.trySteal(thief, modeLA)
		}
		if ok {
			w.St.LeapSteals++
			probeBackoff = 16
			continue
		}
		if t.state == sDone {
			break
		}
		w.St.LF += probeBackoff
		w.p.Step(probeBackoff)
		if probeBackoff < w.m.cfg.IdleBackoffCap {
			probeBackoff *= 2
		}
	}
	w.top--
	w.bot--
	return t.res
}

// joinCentral is the OpenMP-style join: wait for this child, helping
// by executing arbitrary queued tasks (untied taskwait semantics).
func (w *W) joinCentral(t *STask) int64 {
	c := &w.m.cfg.Costs
	probeBackoff := uint64(16)
	for t.state != sDone {
		if got := w.centralPop(); got != nil {
			mode := w.mode
			if got != t {
				w.mode = modeLA
				w.St.LeapSteals++
			}
			w.runTask(got)
			w.mode = mode
			probeBackoff = 16
			continue
		}
		w.St.LF += probeBackoff
		w.p.Step(probeBackoff)
		if probeBackoff < w.m.cfg.IdleBackoffCap {
			probeBackoff *= 2
		}
	}
	w.St.JoinsStolen++
	w.chargeApp(c.JoinStolen)
	w.p.Step(c.JoinStolen)
	w.top--
	return t.res
}

// notePublicInline implements the public→private pull-down of the
// revocable cut-off (KindDirectStack with PrivateTasks).
func (w *W) notePublicInline() {
	cfg := &w.m.cfg
	if !cfg.PrivateTasks || cfg.Kind != KindDirectStack {
		return
	}
	w.inlineRun++
	if w.inlineRun >= cfg.PrivatizeRun {
		w.inlineRun = 0
		if newPL := w.top + cfg.InitialPublic; newPL < w.publicLimit {
			w.publicLimit = newPL
		}
	}
}

// publishMore answers a trip-wire notification.
func (w *W) publishMore() {
	w.morePublic = false
	w.inlineRun = 0
	cfg := &w.m.cfg
	newPL := w.publicLimit + cfg.PublishAmount
	if newPL > len(w.tasks) {
		newPL = len(w.tasks)
	}
	for i := w.publicLimit; i < newPL && i < w.top; i++ {
		t := &w.tasks[i]
		if t.priv {
			t.priv = false
			t.state = sTask
		}
	}
	w.publicLimit = newPL
	w.St.Publications++
	w.p.Step(w.m.cfg.Costs.SpawnPublic) // publication is a handful of stores
}

// chargeProbe charges a failed probe of victim: the profile's
// StealProbe plus the topology's per-hop penalty (reading a remote
// shard's indices misses to another node's cache). victim == nil is
// the central queue — no victim distance.
func (w *W) chargeProbe(victim *W) {
	cost := w.m.cfg.Costs.StealProbe
	if victim != nil {
		t := &w.m.cfg.Topology
		cost += t.ProbePenalty * t.hops(w.idx, victim.idx, len(w.m.ws))
	}
	w.St.ST += cost
	w.p.Step(cost)
}

// trySteal attempts one steal from victim under the machine's kind,
// running the stolen task to completion on w in the given mode.
// Returns whether a task was stolen and executed.
func (w *W) trySteal(victim *W, mode int) bool {
	if victim == w {
		return false
	}
	w.St.Attempts++

	switch w.m.cfg.Kind {
	case KindCentral:
		if got := w.centralPop(); got != nil {
			prev := w.mode
			w.mode = mode
			w.runSteal(got, victim)
			w.mode = prev
			return true
		}
		w.chargeProbe(nil)
		return false

	case KindLock:
		return w.tryStealLocked(victim, mode)

	default: // KindDirectStack, KindDeque
		if victim.bot >= victim.top || victim.bot >= victim.publicLimit {
			w.chargeProbe(victim)
			return false
		}
		t := &victim.tasks[victim.bot]
		if t.state != sTask {
			w.chargeProbe(victim)
			return false
		}
		w.claim(t, victim)
		prev := w.mode
		w.mode = mode
		w.runSteal(t, victim)
		w.mode = prev
		return true
	}
}

// lockTicket models a fair (FIFO) mutex in virtual time: the acquirer
// atomically reserves the next free slot of the lock and waits for its
// grant time. Reservation-then-wait is starvation-free — exactly the
// eventual fairness a real futex provides — which matters because an
// unfair model lets leapfrogging owners hammer a victim's lock forever
// ahead of the victim's own join. occupy is how long the slot holds
// the lock (acquire/release plus the critical section).
func (w *W) lockTicket(l *uint64, occupy uint64) {
	now := w.p.Now()
	grant := now
	if *l > grant {
		grant = *l
		w.St.LockWaits++
	}
	*l = grant + occupy
	w.St.ST += grant - now
	w.p.WaitUntil(grant)
}

// tryStealLocked is the Figure 4 ladder: how a thief approaches the
// victim's lock.
func (w *W) tryStealLocked(victim *W, mode int) bool {
	c := &w.m.cfg.Costs
	stealable := func() bool {
		return victim.bot < victim.top && victim.bot < victim.publicLimit &&
			victim.tasks[victim.bot].state == sTask
	}

	switch w.m.cfg.LockStrategy {
	case LockPeek, LockTryLock:
		// Peek at the indices without the lock first.
		if !stealable() {
			w.chargeProbe(victim)
			return false
		}
		if w.m.cfg.LockStrategy == LockTryLock && w.p.Now() < victim.lockUntil {
			// Contended: abort rather than wait.
			w.St.LockWaits++
			w.chargeProbe(victim)
			return false
		}
	case LockBase:
		// Take the lock immediately after selecting the victim.
	}

	// Acquire the victim's lock: a steal occupies it for the acquire
	// plus the hold window, whether or not anything is stealable —
	// locking victims that turn out to be empty is precisely where the
	// base strategy loses to peek in Figure 4. The acquisition's own
	// processor time is part of the profile's steal/probe costs; the
	// ticket contributes only the queueing delay.
	w.lockTicket(&victim.lockUntil, c.LockAcquire+c.LockHold)

	if !stealable() {
		w.chargeProbe(victim)
		return false
	}
	t := &victim.tasks[victim.bot]
	w.claim(t, victim)
	prev := w.mode
	w.mode = mode
	w.runSteal(t, victim)
	w.mode = prev
	return true
}

// claim marks t stolen by w and advances the victim's bot — the atomic
// (token-held) analogue of the CAS-claim plus bot update.
func (w *W) claim(t *STask, victim *W) {
	t.state = sStolen
	t.thief = int32(w.p.ID())
	w.stealsFrom[victim.idx]++
	victim.bot++
	// Trip wire: a steal at or past the wire asks the owner to publish.
	cfg := &w.m.cfg
	if cfg.PrivateTasks && cfg.Kind == KindDirectStack &&
		victim.bot > victim.publicLimit-cfg.TripDistance {
		victim.morePublic = true
	}
}

// runSteal pays the steal cost (with the coherence and topology
// models) and executes the stolen task.
func (w *W) runSteal(t *STask, victim *W) {
	c := &w.m.cfg.Costs
	cost := c.StealWork
	if victim != nil && w.m.cfg.Kind != KindCentral {
		// Topology: the descriptor's cache lines cross the interconnect
		// (central-queue tasks live on the shared queue, not with the
		// probed victim).
		topo := &w.m.cfg.Topology
		cost += topo.StealPenalty * topo.hops(w.idx, victim.idx, len(w.m.ws))
	}
	now := w.p.Now()
	// Coherence model: a victim whose pool was robbed moments ago (or
	// a machine with steal traffic in flight) serves the descriptor
	// from a contended cache line.
	if victim != nil && now-victim.lastSteal < 2*c.StealWork {
		cost += c.StealWork / 2
	}
	if now-w.m.lastAnySteal < c.StealWork/2 {
		cost += c.StealWork / 4
	}
	if victim != nil {
		victim.lastSteal = now
	}
	w.m.lastAnySteal = now
	w.St.Steals++
	w.St.ST += cost
	w.p.Step(cost)
	w.runTask(t)
}

// runTask executes t's function on w and marks it done.
func (w *W) runTask(t *STask) {
	t.res = t.fn.F(w, t.args)
	t.state = sDone
}

// centralPop takes the newest task from the central queue (behind the
// queue lock), or nil.
func (w *W) centralPop() *STask {
	w.m.centralLock(w)
	q := w.m.central
	n := len(q)
	if n == 0 {
		return nil
	}
	t := q[n-1]
	q[n-1] = nil
	w.m.central = q[:n-1]
	t.state = sStolen
	t.thief = int32(w.p.ID())
	w.St.Steals++
	c := &w.m.cfg.Costs
	w.St.ST += c.StealWork
	w.p.Step(c.StealWork)
	return t
}

// centralLock acquires the central queue lock (fair ticket model):
// every push and pop serializes through it. The lock's processor time
// is inside the profile's spawn/steal costs; the ticket adds only the
// queueing delay under contention.
func (m *Machine) centralLock(w *W) {
	w.lockTicket(&m.centralLockUntil, m.cfg.Costs.LockAcquire)
}

// acquireOwnLock is the victim-side join lock of the lock ladder: the
// owner occupies its lock only for the brief index comparison (its
// processor time is part of JoinPublic — the paper's 77-cycle base
// join includes its lock).
func (w *W) acquireOwnLock() {
	c := &w.m.cfg.Costs
	w.lockTicket(&w.lockUntil, c.LockAcquire)
}
