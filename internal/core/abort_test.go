package core

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"gowool/internal/poolerr"
)

// spinUntilAborted builds a root that spawns/joins forever: each
// iteration is one public spawn + call + join, so the only way out is
// the abort token observed at a generic join. Returns the task so the
// test keeps it alive.
func spinUntilAborted(p *Pool) func(*Worker) int64 {
	leaf := Define1("abort-leaf", func(w *Worker, x int64) int64 { return x })
	return func(w *Worker) int64 {
		var acc int64
		for {
			leaf.Spawn(w, 1)
			acc += leaf.Call(w, 2)
			acc += leaf.Join(w)
		}
	}
}

// TestAbortUnwindsRun: Abort from another goroutine must unwind an
// in-flight Run with the *poolerr.AbortError carrying the reason, and
// Reset must then return the pool to service.
func TestAbortUnwindsRun(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 2})
	defer p.Close()

	reason := errors.New("request deadline exceeded")
	go func() {
		time.Sleep(5 * time.Millisecond)
		p.Abort(reason)
	}()
	r := mustPanic(t, "aborted Run", func() {
		p.Run(spinUntilAborted(p))
	})
	ae, ok := r.(*poolerr.AbortError)
	if !ok {
		t.Fatalf("aborted Run panicked with %T (%v), want *poolerr.AbortError", r, r)
	}
	if !errors.Is(ae, reason) {
		t.Fatalf("AbortError unwraps to %v, want %v", ae.Reason, reason)
	}
	if _, poisoned := p.Poisoned(); !poisoned {
		t.Fatal("pool not poisoned after Abort unwound the Run")
	}
	if err := p.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if _, poisoned := p.Poisoned(); poisoned {
		t.Fatal("pool still poisoned after Reset")
	}

	fib := fibDef()
	got := p.Run(func(w *Worker) int64 { return fib.Call(w, 20) })
	if want := serialFib(20); got != want {
		t.Fatalf("post-Reset fib(20) = %d, want %d", got, want)
	}
}

// TestResetRevivesPanickedPool: a genuine task panic poisons the pool;
// Reset must discard the abandoned tree and revive it, repeatedly.
func TestResetRevivesPanickedPool(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4})
	defer p.Close()

	var boom *TaskDef1
	boom = Define1("reset-boom", func(w *Worker, depth int64) int64 {
		if depth == 0 {
			panic("reset boom")
		}
		boom.Spawn(w, depth-1)
		boom.Call(w, depth-1)
		boom.Join(w)
		return 0
	})
	fib := fibDef()
	want := serialFib(18)
	for round := 0; round < 3; round++ {
		r := mustPanic(t, "panicking Run", func() {
			p.Run(func(w *Worker) int64 { return boom.Call(w, 8) })
		})
		if fmt.Sprint(r) != "reset boom" {
			t.Fatalf("round %d: Run re-raised %v, want reset boom", round, r)
		}
		if cause, poisoned := p.Poisoned(); !poisoned || fmt.Sprint(cause) != "reset boom" {
			t.Fatalf("round %d: Poisoned() = %v, %v", round, cause, poisoned)
		}
		if err := p.Reset(); err != nil {
			t.Fatalf("round %d: Reset: %v", round, err)
		}
		if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 18) }); got != want {
			t.Fatalf("round %d: post-Reset fib(18) = %d, want %d", round, got, want)
		}
	}
}

// TestResetNotPoisonedIsNoop: Reset on a healthy pool returns nil and
// leaves it usable.
func TestResetNotPoisonedIsNoop(t *testing.T) {
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	if err := p.Reset(); err != nil {
		t.Fatalf("Reset on healthy pool: %v", err)
	}
	fib := fibDef()
	if got, want := p.Run(func(w *Worker) int64 { return fib.Call(w, 15) }), serialFib(15); got != want {
		t.Fatalf("fib(15) = %d, want %d", got, want)
	}
}

// TestClosePoisonedPoolWithParking is the satellite regression for the
// poison→park leak: with Parking enabled, a pool poisoned by a task
// panic has its idle workers blocked on the poison gate (or parked on
// the idle engine); Close must release all of them and return. Run
// under -race in CI.
func TestClosePoisonedPoolWithParking(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4, Parking: ParkOn, MaxIdleSleep: 50 * time.Microsecond})

	var boom *TaskDef1
	boom = Define1("park-boom", func(w *Worker, depth int64) int64 {
		if depth == 0 {
			panic("park boom")
		}
		boom.Spawn(w, depth-1)
		boom.Call(w, depth-1)
		boom.Join(w)
		return 0
	})
	mustPanic(t, "poisoning Run", func() {
		p.Run(func(w *Worker) int64 { return boom.Call(w, 10) })
	})

	// Give the idle workers time to reach the poison gate (or the idle
	// engine's park), so Close exercises the release of both.
	time.Sleep(20 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a poisoned pool with Parking enabled (poison→park leak)")
	}
}

// TestConcurrentRunTypedError: the concurrent-Run guard must panic
// with the shared sentinel so callers can recognize it across
// backends.
func TestConcurrentRunTypedError(t *testing.T) {
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	inFirst := make(chan struct{})
	release := make(chan struct{})
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		p.Run(func(w *Worker) int64 {
			close(inFirst)
			<-release
			return 0
		})
	}()
	<-inFirst
	r := mustPanic(t, "second Run", func() {
		p.Run(func(w *Worker) int64 { return 0 })
	})
	close(release)
	<-firstDone
	err, ok := r.(error)
	if !ok || !errors.Is(err, poolerr.ErrConcurrentRun) {
		t.Fatalf("second Run panicked with %T (%v), want an error wrapping poolerr.ErrConcurrentRun", r, r)
	}
}
