package sched

import (
	"gowool/internal/cilkstyle"
	"gowool/internal/steal"
)

func init() { register(cilkSched{}, 3) }

// cilkSched registers the steal-parent continuation scheduler (the
// Cilk++ stand-in). Its task functions are explicit continuation
// state machines, so the generic ports here are hand-written frame
// recursions — the shape Cilk++'s compiler generates for
//
//	a = spawn f(x); b = spawn f(y); sync; return a+b;
type cilkSched struct{}

func (cilkSched) Name() string { return "cilk" }
func (cilkSched) Blurb() string {
	return "steal-parent continuations, Cilk++-style: cactus-stack frames, locked deques of continuations, constant task-pool space in spawn loops"
}
func (cilkSched) Caps() Caps {
	return Caps{
		Steal: "lock on the victim's continuation deque; steal parent (the continuation), oldest first",
		Stats: true,
		Trace: true,
		Chaos: true,
		// Steal-parent holds at most one ready continuation per nesting
		// level, so there is no batch to take: amount is always one.
		StealPolicies: steal.Policies(),
		StealAmounts:  []string{steal.AmountOne},
	}
}

func (cilkSched) NewPool(o Options) Pool {
	return &cilkPool{p: cilkstyle.NewPool(cilkstyle.Options{
		Workers:      o.Workers,
		DequeSize:    o.StackSize,
		MaxIdleSleep: o.MaxIdleSleep,
		Trace:        o.Trace,
		Chaos:        o.Chaos,
		Steal:        o.Steal,
	})}
}

type cilkPool struct{ p *cilkstyle.Pool }

func (cp *cilkPool) Workers() int { return cp.p.Workers() }
func (cp *cilkPool) Close()       { cp.p.Close() }
func (cp *cilkPool) Native() any  { return cp.p }
func (cp *cilkPool) ResetStats()  { cp.p.ResetStats() }

func (cp *cilkPool) Stats() Stats {
	s := cp.p.Stats()
	return Stats{
		Spawns:        s.Spawns,
		Steals:        s.Steals,
		StealAttempts: s.StealAttempts,
		Extra: map[string]int64{
			"suspends": s.Suspends,
			"resumes":  s.Resumes,
		},
	}
}

// cilkRecFrame is the cactus-stack frame of one RecJob node: spawn
// both subproblems, sync, sum.
type cilkRecFrame struct {
	cilkstyle.Frame
	job  *RecJob
	n    int64
	a, b int64
	res  *int64
}

func (f *cilkRecFrame) step0(w *cilkstyle.Worker) cilkstyle.Step {
	if v, ok := f.job.Leaf(f.n); ok {
		*f.res = v
		return w.Return(&f.Frame)
	}
	first, _ := f.job.Split(f.n)
	child := &cilkRecFrame{job: f.job, n: first, res: &f.a}
	cilkstyle.NewChild(&f.Frame, &child.Frame)
	return w.Spawn(&f.Frame, f.step1, child.step0)
}

func (f *cilkRecFrame) step1(w *cilkstyle.Worker) cilkstyle.Step {
	_, second := f.job.Split(f.n)
	child := &cilkRecFrame{job: f.job, n: second, res: &f.b}
	cilkstyle.NewChild(&f.Frame, &child.Frame)
	return w.Spawn(&f.Frame, f.step2, child.step0)
}

func (f *cilkRecFrame) step2(w *cilkstyle.Worker) cilkstyle.Step {
	return w.Sync(&f.Frame, f.step3)
}

func (f *cilkRecFrame) step3(w *cilkstyle.Worker) cilkstyle.Step {
	*f.res = f.a + f.b
	return w.Return(&f.Frame)
}

func (cp *cilkPool) RunRec(j RecJob) int64 {
	var total int64
	for r := int64(0); r < reps(j.Reps); r++ {
		var res int64
		root := &cilkRecFrame{job: &j, n: j.Root, res: &res}
		cp.p.Run(&root.Frame, root.step0)
		total += res
	}
	return total
}

// cilkRangeFrame is the frame of one balanced range-splitter node.
type cilkRangeFrame struct {
	cilkstyle.Frame
	job    *RangeJob
	lo, hi int64
	a, b   int64
	res    *int64
}

func (f *cilkRangeFrame) step0(w *cilkstyle.Worker) cilkstyle.Step {
	if f.hi-f.lo <= 1 {
		if f.hi > f.lo {
			*f.res = f.job.Leaf(f.lo)
		}
		return w.Return(&f.Frame)
	}
	mid := (f.lo + f.hi) / 2
	child := &cilkRangeFrame{job: f.job, lo: f.lo, hi: mid, res: &f.a}
	cilkstyle.NewChild(&f.Frame, &child.Frame)
	return w.Spawn(&f.Frame, f.step1, child.step0)
}

func (f *cilkRangeFrame) step1(w *cilkstyle.Worker) cilkstyle.Step {
	mid := (f.lo + f.hi) / 2
	child := &cilkRangeFrame{job: f.job, lo: mid, hi: f.hi, res: &f.b}
	cilkstyle.NewChild(&f.Frame, &child.Frame)
	return w.Spawn(&f.Frame, f.step2, child.step0)
}

func (f *cilkRangeFrame) step2(w *cilkstyle.Worker) cilkstyle.Step {
	return w.Sync(&f.Frame, f.step3)
}

func (f *cilkRangeFrame) step3(w *cilkstyle.Worker) cilkstyle.Step {
	*f.res = f.a + f.b
	return w.Return(&f.Frame)
}

func (cp *cilkPool) RunRange(j RangeJob) int64 {
	var total int64
	for r := int64(0); r < reps(j.Reps); r++ {
		var res int64
		root := &cilkRangeFrame{job: &j, lo: 0, hi: j.N, res: &res}
		cp.p.Run(&root.Frame, root.step0)
		total += res
	}
	return total
}
