// Package sim executes the paper's work-stealing schedulers on the
// deterministic virtual-time multiprocessor of internal/vtime, with
// per-operation costs from internal/costmodel. It is the stand-in for
// the paper's 8-core Opteron (this reproduction's host has one core):
// speedup curves, steal counts, granularity tables and time breakdowns
// for 1..64 processors all come out of this package, bit-identical
// across runs.
//
// The scheduling protocols execute for real — per-worker task stacks,
// bottom-up stealing, trip-wired private tasks, leapfrogging,
// lock-held windows — but synchronization primitives are modelled:
// the vtime token makes each claim atomic, a victim's lock is a
// "locked until" timestamp that contending processors wait out, and
// cache-coherence traffic appears as a penalty for stealing from a
// recently-robbed victim.
package sim

import (
	"fmt"

	"gowool/internal/costmodel"
	"gowool/internal/steal"
	"gowool/internal/vtime"
)

// Kind selects the scheduler protocol.
type Kind int

// Scheduler kinds.
const (
	// KindDirectStack is the paper's contribution: synchronization on
	// the task descriptor, task-specific joins, optional private
	// tasks, leapfrogging (Wool).
	KindDirectStack Kind = iota
	// KindDeque is the TBB-like steal-child scheduler: index-based
	// synchronization costs, free-listed tasks, and unrestricted
	// stealing while a join is blocked.
	KindDeque
	// KindLock is the lock-ladder of Figure 4: per-worker locks taken
	// by thieves (strategy base/peek/trylock) and by the victim's own
	// joins.
	KindLock
	// KindCentral is the OpenMP-like scheduler: every task goes
	// through one central, lock-protected queue; a blocked join helps
	// by running queued tasks.
	KindCentral
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindDirectStack:
		return "direct-stack"
	case KindDeque:
		return "deque"
	case KindLock:
		return "lock"
	case KindCentral:
		return "central"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// LockStrategy is the Figure 4 thief strategy for KindLock.
type LockStrategy int

// Lock strategies.
const (
	LockBase LockStrategy = iota
	LockPeek
	LockTryLock
)

// String names the strategy as in Figure 4.
func (s LockStrategy) String() string {
	switch s {
	case LockBase:
		return "base"
	case LockPeek:
		return "peek"
	case LockTryLock:
		return "trylock"
	default:
		return fmt.Sprintf("LockStrategy(%d)", int(s))
	}
}

// Config parameterizes one simulated machine.
type Config struct {
	// Procs is the number of virtual processors.
	Procs int
	// Costs is the per-operation cycle cost profile.
	Costs costmodel.Profile
	// Kind selects the protocol; LockStrategy applies to KindLock.
	Kind         Kind
	LockStrategy LockStrategy

	// PrivateTasks enables the trip-wired private-task scheme
	// (KindDirectStack only).
	PrivateTasks  bool
	InitialPublic int // default 2
	TripDistance  int // default 1
	PublishAmount int // default 2
	PrivatizeRun  int // default 16

	// StackSize is the per-worker task pool capacity; default 65536.
	// A spawn that finds the pool full degrades to inline serial
	// execution (counted in Stats.OverflowInlined) unless
	// StrictOverflow is set.
	StackSize int
	// StrictOverflow restores the pre-degradation behaviour: a spawn
	// that finds the pool full panics.
	StrictOverflow bool

	// Seed drives victim selection; same seed ⇒ identical run.
	Seed uint64

	// Steal selects the victim policy (internal/steal). The zero value
	// is the uniform-random policy with RNG streams derived from Seed —
	// bit-identical to the pre-policy simulator. Steal.Seed, when left
	// zero, inherits Seed. Steal.Amount is accepted for sweep-grid
	// uniformity but the simulated protocols take one task per steal.
	Steal steal.Config

	// Topology is the sharded-machine model; the zero value is a flat
	// machine (no distance penalties).
	Topology Topology

	// IdleBackoffCap bounds the exponential back-off (in cycles) of
	// idle and blocked workers between failed steal probes. The
	// paper's dedicated machine polls continuously; small caps model
	// that faithfully at the price of more simulation steps. Default
	// 1024 cycles.
	IdleBackoffCap uint64

	// TrackSpan records work and critical path during the run (use
	// with Procs == 1); SpanOverhead is the O of the realistic model
	// (paper: 2000 cycles).
	TrackSpan    bool
	SpanOverhead uint64
}

func (c Config) defaults() Config {
	if c.Procs <= 0 {
		c.Procs = 1
	}
	if c.InitialPublic <= 0 {
		c.InitialPublic = 2
	}
	if c.TripDistance <= 0 {
		c.TripDistance = 1
	}
	if c.PublishAmount <= 0 {
		c.PublishAmount = 2
	}
	if c.PrivatizeRun <= 0 {
		c.PrivatizeRun = 16
	}
	if c.StackSize <= 0 {
		c.StackSize = 65536
	}
	if c.Seed == 0 {
		c.Seed = 0x9e3779b97f4a7c15
	}
	if c.Steal.Seed == 0 {
		// WorkerSeed(Seed, i) then reproduces the pre-policy per-worker
		// streams Seed + i*0x2545f4914f6cdd1d + 1 bit for bit.
		c.Steal.Seed = c.Seed
	}
	if c.Topology.Shards > 1 {
		if c.Topology.ProbePenalty == 0 {
			c.Topology.ProbePenalty = costmodel.RemoteProbePenalty
		}
		if c.Topology.StealPenalty == 0 {
			c.Topology.StealPenalty = costmodel.RemoteStealPenalty
		}
	}
	if c.SpanOverhead == 0 {
		c.SpanOverhead = 2000
	}
	if c.IdleBackoffCap == 0 {
		c.IdleBackoffCap = 1024
	}
	return c
}

// Topology models a sharded machine — NUMA nodes or sockets — by
// making steal traffic pay for distance. The Procs workers are split
// into Shards contiguous shards (worker i lands in shard i*Shards/P),
// and every cross-shard probe or steal costs extra cycles per shard
// hop on a linear interconnect: a failed probe pays ProbePenalty×hops
// on top of the profile's StealProbe (reading a remote worker's
// indices misses to another node's cache), and a successful steal pays
// StealPenalty×hops on top of StealWork (the descriptor's cache lines
// cross the interconnect). The zero value is a flat machine. When
// Shards > 1 and a penalty is zero, the calibrated costmodel defaults
// (RemoteProbePenalty, RemoteStealPenalty) apply.
type Topology struct {
	Shards       int
	ProbePenalty uint64 // extra cycles per shard hop, failed probe
	StealPenalty uint64 // extra cycles per shard hop, successful steal
}

// hops returns the interconnect distance between workers a and b of an
// n-worker machine: the shard-index difference, 0 on a flat machine.
func (t Topology) hops(a, b, n int) uint64 {
	if t.Shards <= 1 || n <= 0 {
		return 0
	}
	sa, sb := a*t.Shards/n, b*t.Shards/n
	if sa >= sb {
		return uint64(sa - sb)
	}
	return uint64(sb - sa)
}

// Args are a task's arguments: four integer slots and a context
// pointer, mirroring the native schedulers' task descriptors.
type Args struct {
	A0, A1, A2, A3 int64
	Ctx            any
}

// Def is a task definition: a named function from worker+args to a
// result. Definitions are shared across runs and kinds.
type Def struct {
	Name string
	F    func(w *W, a Args) int64
}

// Spawn pushes a task on w's pool (made stealable now, or deferred to
// the trip wire when it lands in the private region).
func (d *Def) Spawn(w *W, a Args) { w.spawn(d, a) }

// Call invokes the task function directly — the CALL of the Wool idiom.
func (d *Def) Call(w *W, a Args) int64 { return d.F(w, a) }

// Task states.
const (
	sEmpty uint8 = iota
	sTask
	sStolen
	sDone
)

// STask is a simulated task descriptor.
type STask struct {
	state uint8
	priv  bool
	thief int32
	fn    *Def
	args  Args
	res   int64
}

// Execution modes, for attributing application time (Figure 6).
const (
	modeNA = iota // root / idle-steal acquired application code
	modeLA        // leapfrog-acquired application code
)

// Stats are one worker's (or the whole machine's) event counters and
// virtual-cycle time breakdown.
type Stats struct {
	Spawns       int64
	JoinsPublic  int64
	JoinsPrivate int64
	JoinsStolen  int64
	Steals       int64
	Attempts     int64
	LeapSteals   int64
	Publications int64
	LockWaits    int64 // cycles lost waiting for locks are in ST/LF; this counts events

	// OverflowInlined counts spawns that found the pool full and
	// degraded to inline serial execution (not counted in Spawns).
	OverflowInlined int64

	// Figure 6 categories, in cycles: stealing (ST), leapfrogging
	// search (LF), application+overhead acquired normally (NA) or by
	// leapfrogging (LA).
	ST, LF, NA, LA uint64
}

func (s *Stats) add(o *Stats) {
	s.Spawns += o.Spawns
	s.JoinsPublic += o.JoinsPublic
	s.JoinsPrivate += o.JoinsPrivate
	s.JoinsStolen += o.JoinsStolen
	s.Steals += o.Steals
	s.Attempts += o.Attempts
	s.LeapSteals += o.LeapSteals
	s.Publications += o.Publications
	s.LockWaits += o.LockWaits
	s.OverflowInlined += o.OverflowInlined
	s.ST += o.ST
	s.LF += o.LF
	s.NA += o.NA
	s.LA += o.LA
}

// Joins returns total joins.
func (s Stats) Joins() int64 { return s.JoinsPublic + s.JoinsPrivate + s.JoinsStolen }

// W is one simulated worker.
type W struct {
	m *Machine
	p *vtime.Proc

	tasks       []STask
	top, bot    int
	publicLimit int
	morePublic  bool
	inlineRun   int

	lockUntil uint64 // victim-lock model (KindLock, Cilk-style costs)
	lastSteal uint64 // time of the last successful steal from this worker (coherence model)

	idx  int
	pol  steal.Policy
	mode int

	// stealsFrom[v] counts successful claims from victim v — the
	// thief's row of the run's steal matrix.
	stealsFrom []int64

	// ovf holds the results of overflow-inlined spawns, youngest last.
	// Non-empty only while top == StackSize (entries are created only
	// when the pool is full, and joins drain them before touching the
	// stack), so Join only needs a length check at its head.
	ovf []int64

	St Stats
}

// Proc returns the underlying virtual processor (for Work/clock access).
func (w *W) Proc() *vtime.Proc { return w.p }

// Machine returns the machine.
func (w *W) Machine() *Machine { return w.m }

// Work advances this worker's clock by cycles of application work,
// charging the current Figure 6 category and the span strand.
func (w *W) Work(cycles uint64) {
	w.chargeApp(cycles)
	if w.m.span != nil {
		w.m.span.strand += cycles
	}
	w.p.Step(cycles)
}

// chargeApp attributes cycles to NA or LA.
func (w *W) chargeApp(cycles uint64) {
	if w.mode == modeLA {
		w.St.LA += cycles
	} else {
		w.St.NA += cycles
	}
}

// Machine is one simulated scheduler instance.
type Machine struct {
	cfg Config
	vm  *vtime.Machine
	ws  []*W

	central          []*STask // KindCentral shared queue
	centralLockUntil uint64
	lastAnySteal     uint64 // global steal-traffic timestamp (coherence model)

	span *spanTracker

	result   int64
	makespan uint64
}

// Result is everything one simulated run produces.
type Result struct {
	Value    int64
	Makespan uint64   // virtual cycles until the root completed
	Times    []uint64 // final clock of every processor
	Total    Stats    // aggregated counters
	Workers  []Stats  // per-worker counters

	// StealsFrom[thief][victim] counts successful claims — the steal
	// matrix (central-queue pops have no victim and are not counted).
	StealsFrom [][]int64

	// Span data (TrackSpan runs): total work, critical path in the
	// abstract (O=0) and realistic (O=SpanOverhead) models.
	Work, Span0, SpanO uint64
}

// NewMachine builds a machine for cfg.
func NewMachine(cfg Config) *Machine {
	cfg = cfg.defaults()
	m := &Machine{cfg: cfg, vm: vtime.NewMachine(cfg.Procs)}
	m.ws = make([]*W, cfg.Procs)
	for i := range m.ws {
		w := &W{
			m:          m,
			idx:        i,
			tasks:      make([]STask, cfg.StackSize),
			pol:        steal.New(cfg.Steal, i, cfg.Procs),
			stealsFrom: make([]int64, cfg.Procs),
		}
		if cfg.PrivateTasks && cfg.Kind == KindDirectStack {
			w.publicLimit = cfg.InitialPublic
		} else {
			w.publicLimit = int(^uint(0) >> 1)
		}
		m.ws[i] = w
	}
	if cfg.TrackSpan {
		if cfg.Procs != 1 {
			panic("sim: TrackSpan requires Procs == 1")
		}
		m.span = newSpanTracker(cfg.SpanOverhead)
	}
	return m
}

// Run executes root(args) to completion and returns the run's Result.
func Run(cfg Config, root *Def, args Args) Result {
	m := NewMachine(cfg)
	return m.run(root, args)
}

func (m *Machine) run(root *Def, args Args) Result {
	times := m.vm.Run(func(p *vtime.Proc) {
		w := m.ws[p.ID()]
		w.p = p
		if p.ID() == 0 {
			if m.span != nil {
				m.span.begin()
			}
			m.result = root.F(w, args)
			if w.top != w.bot || len(w.ovf) != 0 {
				panic("sim: root returned with unjoined tasks")
			}
			m.makespan = p.Now()
			m.vm.SetStop()
			if m.span != nil {
				m.span.end(w)
			}
			return
		}
		w.idleLoop()
	})
	res := Result{
		Value:      m.result,
		Makespan:   m.makespan,
		Times:      times,
		Workers:    make([]Stats, len(m.ws)),
		StealsFrom: make([][]int64, len(m.ws)),
	}
	for i, w := range m.ws {
		res.Workers[i] = w.St
		res.Total.add(&w.St)
		res.StealsFrom[i] = w.stealsFrom
	}
	if m.span != nil {
		res.Work = m.span.work
		res.Span0 = m.span.span0
		res.SpanO = m.span.spanO
	}
	return res
}

// nextVictim asks the worker's policy for the next victim. The probe
// is nil: the simulator charges probe cycles explicitly in trySteal,
// so policies run on Observe feedback alone.
func (w *W) nextVictim() *W {
	return w.m.ws[w.pol.Choose(nil)]
}

// idleLoop steals until the root completes.
func (w *W) idleLoop() {
	cap := w.m.cfg.IdleBackoffCap
	backoff := uint64(16)
	for !w.m.vm.Stopped() {
		v := w.nextVictim()
		ok := w.trySteal(v, modeNA)
		w.pol.Observe(v.idx, ok)
		if ok {
			backoff = 16
			continue
		}
		w.St.ST += backoff
		w.p.Step(backoff)
		if backoff < cap {
			backoff *= 2
		}
	}
}
