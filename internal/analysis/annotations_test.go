package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"gowool/internal/gen"
)

func TestParseDirectiveEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name  string
		text  string
		ok    bool
		verb  string
		args  []string
		attrs map[string]string
	}{
		{name: "basic", text: "// woolvet:owner", ok: true, verb: "owner"},
		{name: "unspaced", text: "//woolvet:thief", ok: true, verb: "thief"},
		{name: "block comment", text: "/* woolvet:owner */", ok: true, verb: "owner"},
		{name: "methods list", text: "// woolvet:atomic methods=Load,Swap",
			ok: true, verb: "atomic", attrs: map[string]string{"methods": "Load,Swap"}},
		// A bare "methods=" is kept as an empty attribute, not
		// dropped: the field is then restricted to no methods at all,
		// which atomicfield reports on first use — a loud failure
		// rather than a silently ignored typo.
		{name: "empty methods value", text: "// woolvet:atomic methods=",
			ok: true, verb: "atomic", attrs: map[string]string{"methods": ""}},
		{name: "reason is cut", text: "//woolvet:allow atomicfield ownerprivate -- why not",
			ok: true, verb: "allow", args: []string{"atomicfield", "ownerprivate"}},
		{name: "reason only", text: "//woolvet:allow -- all args eaten by the reason",
			ok: true, verb: "allow"},
		{name: "duplicate key keeps last", text: "// woolvet:cacheline group=a group=b",
			ok: true, verb: "cacheline", attrs: map[string]string{"group": "b"}},
		{name: "empty after prefix", text: "// woolvet:", ok: false},
		{name: "wrong prefix", text: "// woolvetx:owner", ok: false},
		{name: "not a directive", text: "// plain comment", ok: false},
		// The provenance seal line shares the "woolvet:" namespace; it
		// must parse as its own verb so no annotation scanner mistakes
		// it for an allow or field directive.
		{name: "seal line", text: "//woolvet:generated sha256:abc123",
			ok: true, verb: "generated", args: []string{"sha256:abc123"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, ok := parseDirective(&ast.Comment{Text: tc.text})
			if ok != tc.ok {
				t.Fatalf("parseDirective(%q) ok = %v, want %v", tc.text, ok, tc.ok)
			}
			if !ok {
				return
			}
			if d.Verb != tc.verb {
				t.Errorf("verb = %q, want %q", d.Verb, tc.verb)
			}
			if len(d.Args) != len(tc.args) {
				t.Errorf("args = %v, want %v", d.Args, tc.args)
			} else {
				for i := range tc.args {
					if d.Args[i] != tc.args[i] {
						t.Errorf("args = %v, want %v", d.Args, tc.args)
						break
					}
				}
			}
			for k, v := range tc.attrs {
				if got, ok := d.Attrs[k]; !ok || got != v {
					t.Errorf("attrs[%q] = %q (present %v), want %q", k, got, ok, v)
				}
			}
		})
	}
}

func TestMethodAllowedMalformedLists(t *testing.T) {
	for _, tc := range []struct {
		list, method string
		want         bool
	}{
		{"Load,Swap,CompareAndSwap", "Swap", true},
		{"Load,Swap", "Store", false},
		// Malformed lists degrade safely: empty elements from doubled
		// or trailing commas never match a real method name, and an
		// empty list allows nothing.
		{"Load,,Swap", "Load", true},
		{"Load,,Swap", "Store", false},
		{"Load,", "Load", true},
		{"Load,", "Store", false},
		{"", "Store", false},
		{"", "Load", false},
		// No case folding: the list must name methods exactly.
		{"load", "Load", false},
	} {
		if got := methodAllowed(tc.list, tc.method); got != tc.want {
			t.Errorf("methodAllowed(%q, %q) = %v, want %v", tc.list, tc.method, got, tc.want)
		}
	}
}

// scanSrc type-checks src (a dependency-free package) and returns its
// annotation index.
func scanSrc(t *testing.T, src string) (*token.FileSet, *Annotations) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "anno.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
		Types: map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{}
	if _, err := conf.Check("anno", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return fset, ScanAnnotations(fset, []*ast.File{file}, info)
}

func TestScanAnnotationsDuplicateDirectives(t *testing.T) {
	_, ann := scanSrc(t, `package anno

type s struct {
	// woolvet:atomic methods=Swap
	// woolvet:atomic
	x int
}

// woolvet:inline
// woolvet:inline
// woolvet:noescape
func f() {}
`)
	var field *types.Var
	for v := range ann.Fields {
		if v.Name() == "x" {
			field = v
		}
	}
	if field == nil {
		t.Fatal("field x not indexed")
	}
	if n := len(ann.Fields[field]); n != 2 {
		t.Fatalf("duplicate field directives collapsed: got %d, want 2", n)
	}
	// FieldDirective resolves duplicates to the first occurrence, so
	// the restrictive methods= wins over the later bare form.
	d, ok := ann.FieldDirective(field, "atomic")
	if !ok {
		t.Fatal("FieldDirective(atomic) not found")
	}
	if d.Attrs["methods"] != "Swap" {
		t.Errorf("first directive should win: methods = %q, want Swap", d.Attrs["methods"])
	}

	var fn *types.Func
	for f := range ann.FuncDirs {
		if f.Name() == "f" {
			fn = f
		}
	}
	if fn == nil {
		t.Fatal("func f not indexed")
	}
	inline := 0
	for _, d := range ann.FuncDirs[fn] {
		if d.Verb == "inline" {
			inline++
		}
	}
	if inline != 2 {
		t.Errorf("duplicate func directives: got %d inline entries, want 2", inline)
	}
	if _, ok := ann.FuncDirective(fn, "noescape"); !ok {
		t.Error("noescape directive lost among duplicates")
	}
}

func TestStaleAllowAggregatesDuplicateAnalyzers(t *testing.T) {
	// One allow naming the same analyzer twice creates two entries at
	// the same position; the audit must report the directive once, not
	// once per entry.
	fset, ann := scanSrc(t, `package anno

//woolvet:allow atomicfield atomicfield -- doubled by mistake
func f() {}
`)
	_ = fset
	stale := ann.StaleAllows(map[string]bool{"atomicfield": true})
	if len(stale) != 1 {
		t.Fatalf("got %d stale entries, want 1 (aggregated by position+analyzer)", len(stale))
	}
	if stale[0].analyzer != "atomicfield" {
		t.Errorf("stale analyzer = %q, want atomicfield", stale[0].analyzer)
	}
}

func TestStaleAllowFuncDocDualIndexing(t *testing.T) {
	// A doc-comment allow is indexed both as a line entry and as a
	// function-span entry. A diagnostic deep in the body marks only
	// the span entry used; the audit must still treat the directive as
	// live (this was a real false-positive bug: every used func-doc
	// allow in the tree was reported stale).
	fset, ann := scanSrc(t, `package anno

//woolvet:allow atomicfield -- span suppression
func f() {
	_ = 1
	_ = 2
}
`)
	// Suppress at a position strictly inside the function body, away
	// from the directive's own line, so only the span entry is marked.
	if len(ann.allowRange) != 1 {
		t.Fatalf("got %d allow spans, want 1", len(ann.allowRange))
	}
	diagPos := ann.allowRange[0].end - 2
	if !ann.Allowed("atomicfield", fset, diagPos) {
		t.Fatal("diagnostic inside the function span was not suppressed")
	}
	if stale := ann.StaleAllows(map[string]bool{"atomicfield": true}); len(stale) != 0 {
		t.Errorf("used func-doc allow reported stale: %d entries", len(stale))
	}
}

func TestSealLineMidFile(t *testing.T) {
	sealed := gen.Seal([]byte("package p\n\nvar x = 1\n"))

	// A marker embedded mid-line (not at line start) is not a seal.
	mid := append([]byte("// note: "), []byte(gen.MarkerPrefix+"deadbeef\n")...)
	if found, _ := gen.Verify(mid); found {
		t.Error("mid-line marker treated as a provenance seal")
	}

	// An unterminated marker line is reported, not ignored.
	if found, err := gen.Verify([]byte(gen.MarkerPrefix + "deadbeef")); !found || err == nil {
		t.Errorf("unterminated marker: found=%v err=%v, want found with error", found, err)
	}

	// A seal line that starts a later line is honoured: the hash
	// covers only what follows it, so edits after the marker are
	// caught...
	shifted := append([]byte("// leading comment\n"), sealed...)
	if found, err := gen.Verify(shifted); !found || err != nil {
		t.Errorf("seal after a leading line: found=%v err=%v, want clean", found, err)
	}
	tampered := append(append([]byte{}, shifted...), []byte("var y = 2\n")...)
	if _, err := gen.Verify(tampered); err == nil {
		t.Error("edit after the marker not detected")
	}
}
