package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"gowool/internal/chaos"
	"gowool/internal/resilience"
	"gowool/internal/sched"
	"gowool/internal/workloads/fibw"
	"gowool/internal/workloads/stress"
)

// tortureWorkers is the server's worker budget for every torture run;
// the host may have a single core, so GOMAXPROCS is raised around the
// suite.
const tortureWorkers = 4

// TestServeChaosTorture extends the chaos-torture matrix to the
// serving path: concurrent submitters drive a mixed fib/stress request
// stream through chaos-perturbed lanes, with a random subset of
// requests given deadlines short enough to cancel mid-flight. Every
// completed request must still produce the serial answer — in
// particular the request AFTER a mid-flight abort, which runs on the
// same Reset pool. Each subtest name and failure message carries the
// backend, profile and seed that replay the run byte-for-byte.
func TestServeChaosTorture(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	profiles := chaos.Profiles()
	if len(profiles) < 3 {
		t.Fatalf("want at least 3 built-in chaos profiles, have %d", len(profiles))
	}
	seeds := []uint64{0x5eed, 0xdead}
	for _, backend := range []string{"wool", "woolgen"} {
		t.Run(backend, func(t *testing.T) {
			cancelled := 0
			for _, prof := range profiles {
				for _, seed := range seeds {
					prof, seed := prof, seed
					t.Run(fmt.Sprintf("%s/seed=%#x", prof.Name, seed), func(t *testing.T) {
						cancelled += runServeTorture(t, backend, prof, seed)
					})
				}
			}
			// The short deadlines must actually have interrupted runs
			// somewhere in the matrix, or the sweep silently stopped
			// covering the abort/Reset path.
			if cancelled == 0 {
				t.Errorf("%s: no request in the whole matrix was cancelled mid-flight", backend)
			}
		})
	}
}

// TestServeQuarantineTorture is the quarantine matrix: on every
// Caps.Serve backend, every mid-flight abort's Reset is chaos-failed
// (forcing quarantine) and a third of the recovery probes fail (forcing
// probe-retry rounds), under two replayable seeds. Every lane must heal
// — the fib submitted after each abort must produce the serial answer —
// and at least one quarantine must have run per cell.
func TestServeQuarantineTorture(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, sc := range sched.All() {
		if !sc.Caps().Serve {
			continue
		}
		for _, seed := range []uint64{0x5eed, 0xdead} {
			sc, seed := sc, seed
			t.Run(fmt.Sprintf("%s/seed=%#x", sc.Name(), seed), func(t *testing.T) {
				runQuarantineTorture(t, sc.Name(), seed)
			})
		}
	}
}

// runQuarantineTorture is one quarantine-torture cell.
func runQuarantineTorture(t *testing.T, backend string, seed uint64) {
	t.Helper()
	replay := fmt.Sprintf("replay: backend=%s seed=%#x", backend, seed)
	var rates chaos.ServeRates
	rates[chaos.ServeLaneResetFail] = 65535 // every Reset fails
	rates[chaos.ServeProbeFail] = 21845     // ~1/3 of probes fail
	inj := chaos.NewServeInjector(rates, seed)
	s, err := New(Options{
		Backend:   backend,
		Workers:   tortureWorkers,
		LaneWidth: 1,
		Chaos:     inj,
		Resilience: resilience.Options{
			DisableDeadline: true, // the aborts below must run, not shed
			Quarantine:      resilience.QuarantineConfig{FailureStreak: -1, ProbeBackoff: time.Millisecond},
		},
	})
	if err != nil {
		t.Fatalf("%s: %v", replay, err)
	}
	defer s.Close()

	wantFib := fibw.Serial(12)
	const rounds = 8
	cancelled := 0
	for i := 0; i < rounds; i++ {
		// A spin request aborted mid-flight poisons its lane; the
		// chaos-failed Reset forces the quarantine/replace/probe cycle.
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		tk, err := s.Submit(ctx, "", spinJob(4, 200*time.Microsecond))
		if err != nil {
			cancel()
			t.Fatalf("round %d: submit: %v (%s)", i, err, replay)
		}
		_, werr := tk.Wait()
		cancel()
		switch {
		case werr == nil:
		case errors.Is(werr, context.DeadlineExceeded) || errors.Is(werr, context.Canceled):
			cancelled++
		default:
			t.Fatalf("round %d: %v (%s)", i, werr, replay)
		}
		// The replacement pool (or the untouched one, when the spin
		// finished in time) must serve the follow-up correctly.
		fk, err := s.Submit(context.Background(), "", Rec(fibw.Job(12, 1)))
		if err != nil {
			t.Fatalf("round %d: fib submit: %v (%s)", i, err, replay)
		}
		if v, ferr := fk.Wait(); ferr != nil || v != wantFib {
			t.Fatalf("round %d: post-abort fib = %d err=%v, want %d (%s)", i, v, ferr, wantFib, replay)
		}
	}
	if cancelled == 0 {
		t.Fatalf("no round aborted mid-flight — the cell stopped covering quarantine (%s)", replay)
	}
	// A quarantine cycle runs asynchronously to the request stream: the
	// last request can finish on another lane while a quarantined lane
	// has its entry counted but its first replacement still in flight.
	// The counter invariant below only holds at quiescence, so wait for
	// every lane to return to rotation.
	quiet := time.Now().Add(10 * time.Second)
	for {
		serving := true
		for _, lh := range s.Health().Lanes {
			if lh.State != "serving" {
				serving = false
				break
			}
		}
		if serving {
			break
		}
		if time.Now().After(quiet) {
			t.Fatalf("a lane never left quarantine: %+v (%s)", s.Health().Lanes, replay)
		}
		time.Sleep(time.Millisecond)
	}
	var quarantines, replacements int64
	for _, lh := range s.Health().Lanes {
		quarantines += lh.Quarantines
		replacements += lh.Replacements
	}
	if quarantines < 1 || replacements < quarantines {
		t.Fatalf("quarantines=%d replacements=%d, want >=1 and replacements >= quarantines (%s)", quarantines, replacements, replay)
	}
	if fired := inj.Injected(); fired[chaos.ServeLaneResetFail] < 1 {
		t.Fatalf("lane-reset-fail never fired: %v (%s)", fired, replay)
	}
	st := s.Stats().Tenants[0]
	if st.Completed+st.Cancelled+st.Failed != st.Submitted {
		t.Fatalf("accounting: %+v (%s)", st, replay)
	}
	t.Logf("%s: %d/%d aborted, %d quarantines, %d replacements, %d probes failed (%s)",
		backend, cancelled, rounds, quarantines, replacements, inj.Injected()[chaos.ServeProbeFail], replay)
}

// spinJob is the torture sweep's slow request: a small task tree whose
// leaves busy-spin, so a request takes a few milliseconds and a 1-4ms
// deadline lands mid-flight. Completed value is the leaf count.
func spinJob(depth int64, spin time.Duration) Job {
	return Rec(sched.RecJob{
		Name: "spin",
		Root: depth,
		Leaf: func(n int64) (int64, bool) {
			if n > 0 {
				return 0, false
			}
			end := time.Now().Add(spin)
			for time.Now().Before(end) {
			}
			return 1, true
		},
		Split: func(n int64) (inline, spawned int64) { return n - 1, n - 1 },
	})
}

// runServeTorture is one cell of the matrix: one backend, one chaos
// profile, one seed. It returns the number of requests cancelled
// mid-flight so the caller can check the sweep exercised the
// abort/Reset path at all.
func runServeTorture(t *testing.T, backend string, prof chaos.Profile, seed uint64) int {
	t.Helper()
	const (
		laneWidth    = 2
		submitters   = 4
		perSubmitter = 10
	)
	replay := fmt.Sprintf("replay: backend=%s profile=%s seed=%#x", backend, prof.Name, seed)
	s, err := New(Options{
		Backend:   backend,
		Workers:   tortureWorkers,
		LaneWidth: laneWidth,
		ConfigurePool: func(lane int, o *sched.Options) {
			// Each lane gets its own deterministic injector stream.
			o.Chaos = chaos.NewInjector(laneWidth, prof, seed+uint64(lane)*0x9e3779b9)
		},
		// The deadlined spin requests here exist to land mid-flight and
		// exercise abort/Reset; with deadline admission on, the
		// estimator would learn the spin time and shed them at Submit.
		Resilience: resilience.Options{DisableDeadline: true},
	})
	if err != nil {
		t.Fatalf("%s: %v", replay, err)
	}
	defer s.Close()

	wantFib := fibw.Serial(12)
	wantStress := stress.Serial(4, 50)
	const spinDepth, spinLeaves = 4, int64(16)

	type outcome struct {
		completed, cancelled int
		err                  error
	}
	results := make(chan outcome, submitters)
	for g := 0; g < submitters; g++ {
		g := g
		go func() {
			var out outcome
			defer func() { results <- out }()
			rng := chaos.NewRNG(seed ^ (uint64(g+1) * 0x9e3779b97f4a7c15))
			for i := 0; i < perSubmitter; i++ {
				r := rng.Next()
				ctx := context.Background()
				deadlined := r&0xc == 0 // ~1 in 4 requests
				var cancel context.CancelFunc
				var job Job
				var want int64
				switch {
				case deadlined:
					// Slow enough that a short deadline can land
					// mid-flight; fast enough that some complete, so
					// both outcomes stay covered.
					job, want = spinJob(spinDepth, 200*time.Microsecond), spinLeaves
					d := time.Duration(1+(r>>8)%4) * time.Millisecond
					ctx, cancel = context.WithTimeout(ctx, d)
				case r&1 == 0:
					job, want = Rec(fibw.Job(12, 1)), wantFib
				default:
					job, want = Rec(stress.Job(4, 50, 1)), wantStress
				}
				tk, err := s.Submit(ctx, "", job)
				if err != nil {
					if cancel != nil {
						cancel()
					}
					out.err = fmt.Errorf("submitter %d req %d: submit: %v (%s)", g, i, err, replay)
					return
				}
				v, werr := tk.Wait()
				if cancel != nil {
					cancel()
				}
				switch {
				case werr == nil:
					if v != want {
						out.err = fmt.Errorf("submitter %d req %d: got %d, want %d (%s)", g, i, v, want, replay)
						return
					}
					out.completed++
				case errors.Is(werr, context.DeadlineExceeded) || errors.Is(werr, context.Canceled):
					if !deadlined {
						out.err = fmt.Errorf("submitter %d req %d: cancelled without a deadline: %v (%s)", g, i, werr, replay)
						return
					}
					out.cancelled++
				default:
					out.err = fmt.Errorf("submitter %d req %d: %v (%s)", g, i, werr, replay)
					return
				}
			}
		}()
	}
	var completed, cancelled int
	for g := 0; g < submitters; g++ {
		out := <-results
		if out.err != nil {
			t.Fatal(out.err)
		}
		completed += out.completed
		cancelled += out.cancelled
	}
	if completed+cancelled != submitters*perSubmitter {
		t.Fatalf("accounted %d of %d requests (%s)", completed+cancelled, submitters*perSubmitter, replay)
	}
	t.Logf("%s: %d completed, %d cancelled (%s)", backend, completed, cancelled, replay)
	return cancelled
}
