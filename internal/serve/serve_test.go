package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gowool/internal/sched"
	"gowool/internal/workloads/fibw"
)

// gateJob is the cancellation probe: a recursion whose inline branch
// spins on g at every level, so a request stays mid-flight until the
// test opens the gate and then unwinds through a long ladder of joins
// (each one an abort observation point). started, when non-nil, is set
// the moment the request is provably running on a lane — tests wait on
// it before cancelling so a cancellation is mid-flight, not
// while-queued. Completed value is depth+1.
func gateJob(g, started *atomic.Bool, depth int64) Job {
	return Rec(sched.RecJob{
		Name: "gate",
		Root: depth,
		Leaf: func(n int64) (int64, bool) {
			if n < 0 {
				if started != nil {
					started.Store(true)
				}
				for !g.Load() {
					runtime.Gosched()
				}
				return 1, true
			}
			if n == 0 {
				return 1, true
			}
			return 0, false
		},
		Split: func(n int64) (inline, spawned int64) { return -1, n - 1 },
	})
}

// waitTrue polls an atomic flag (a gate job's started signal).
func waitTrue(t *testing.T, f *atomic.Bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !f.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// waitLanePoisoned polls Server.Health until one lane pool reports
// poisoned — the observable moment a context cancellation's abort has
// landed.
func waitLanePoisoned(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, lh := range s.Health().Lanes {
			if lh.Poisoned {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no lane pool became poisoned after cancellation")
}

// TestServeBasic submits a burst of concurrent fib requests through
// the default (single anonymous tenant) server and checks every
// result against the serial reference.
func TestServeBasic(t *testing.T) {
	s, err := New(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const reqs = 32
	want := fibw.Serial(16)
	var wg sync.WaitGroup
	errs := make(chan error, reqs)
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := s.Submit(context.Background(), "", Rec(fibw.Job(16, 1)))
			if err != nil {
				errs <- err
				return
			}
			v, err := tk.Wait()
			if err != nil {
				errs <- err
				return
			}
			if v != want {
				errs <- fmt.Errorf("fib(16) = %d, want %d", v, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if got := st.Tenants[0].Completed; got != reqs {
		t.Errorf("completed = %d, want %d", got, reqs)
	}
}

// TestServeBackends smoke-tests the serving layer over every
// registered scheduler: the lanes must serialize Run calls correctly
// (never tripping the concurrent-Run guard) on all of them.
func TestServeBackends(t *testing.T) {
	want := fibw.Serial(14)
	for _, sc := range sched.All() {
		t.Run(sc.Name(), func(t *testing.T) {
			s, err := New(Options{Backend: sc.Name(), Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			var tks []*Ticket
			for i := 0; i < 8; i++ {
				tk, err := s.Submit(context.Background(), "", Rec(fibw.Job(14, 1)))
				if err != nil {
					t.Fatal(err)
				}
				tks = append(tks, tk)
			}
			for _, tk := range tks {
				v, err := tk.Wait()
				if err != nil {
					t.Fatal(err)
				}
				if v != want {
					t.Fatalf("fib(14) = %d, want %d", v, want)
				}
			}
		})
	}
}

// TestServeOverload fills a single-lane server's bounded queue and
// checks admission control sheds the excess with ErrOverloaded.
func TestServeOverload(t *testing.T) {
	s, err := New(Options{Workers: 1, MaxPending: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var gate, started atomic.Bool
	// First request occupies the lane (popped immediately), two more
	// fill the pending queue.
	var tks []*Ticket
	blocker, err := s.Submit(context.Background(), "", gateJob(&gate, &started, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the blocker is actually in flight so the queue bound
	// is deterministic.
	waitTrue(t, &started, "blocker dispatch")
	for i := 0; i < 2; i++ {
		tk, err := s.Submit(context.Background(), "", gateJob(&gate, nil, 4))
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	if _, err := s.Submit(context.Background(), "", gateJob(&gate, nil, 4)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit beyond MaxPending: err = %v, want ErrOverloaded", err)
	}
	gate.Store(true)
	if v, err := blocker.Wait(); err != nil || v != 5 {
		t.Fatalf("blocker: v=%d err=%v, want 5, nil", v, err)
	}
	for _, tk := range tks {
		if v, err := tk.Wait(); err != nil || v != 5 {
			t.Fatalf("queued: v=%d err=%v, want 5, nil", v, err)
		}
	}
	st := s.Stats()
	if st.Tenants[0].Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Tenants[0].Rejected)
	}
}

// TestServeTenantLanes checks the weighted lane apportionment (every
// tenant at least one lane, remainder by largest weight remainder)
// and the unknown-tenant rejection.
func TestServeTenantLanes(t *testing.T) {
	s, err := New(Options{
		Workers: 8,
		Tenants: []Tenant{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.Stats()
	if st.Lanes != 8 {
		t.Fatalf("lanes = %d, want 8", st.Lanes)
	}
	byName := map[string]TenantStats{}
	for _, ts := range st.Tenants {
		byName[ts.Name] = ts
	}
	if byName["a"].Lanes != 6 || byName["b"].Lanes != 2 {
		t.Errorf("lane split a=%d b=%d, want 6/2", byName["a"].Lanes, byName["b"].Lanes)
	}
	if _, err := s.Submit(context.Background(), "ghost", Rec(fibw.Job(10, 1))); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("unknown tenant: err = %v, want ErrUnknownTenant", err)
	}
	// A tenant starving its own queue still gets served: submit to both.
	ta, _ := s.Submit(context.Background(), "a", Rec(fibw.Job(12, 1)))
	tb, _ := s.Submit(context.Background(), "b", Rec(fibw.Job(12, 1)))
	want := fibw.Serial(12)
	for _, tk := range []*Ticket{ta, tb} {
		if v, err := tk.Wait(); err != nil || v != want {
			t.Fatalf("v=%d err=%v, want %d, nil", v, err, want)
		}
	}
}

// TestServePanicIsolation checks one request's task panic surfaces as
// its own *PanicError and leaves the server healthy for the next
// request (pool Reset on wool/woolgen).
func TestServePanicIsolation(t *testing.T) {
	for _, backend := range []string{"wool", "woolgen"} {
		t.Run(backend, func(t *testing.T) {
			s, err := New(Options{Backend: backend, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			boom := Rec(sched.RecJob{
				Name: "boom",
				Root: 6,
				Leaf: func(n int64) (int64, bool) {
					if n <= 0 {
						panic("boom at the leaf")
					}
					return 0, false
				},
				Split: func(n int64) (inline, spawned int64) { return n - 1, n - 2 },
			})
			tk, err := s.Submit(context.Background(), "", boom)
			if err != nil {
				t.Fatal(err)
			}
			_, werr := tk.Wait()
			var pe *PanicError
			if !errors.As(werr, &pe) {
				t.Fatalf("panicking request: err = %v, want *PanicError", werr)
			}
			// The lane must have revived its pool: follow-up requests
			// complete normally.
			want := fibw.Serial(15)
			for i := 0; i < 4; i++ {
				tk, err := s.Submit(context.Background(), "", Rec(fibw.Job(15, 1)))
				if err != nil {
					t.Fatal(err)
				}
				if v, err := tk.Wait(); err != nil || v != want {
					t.Fatalf("post-panic fib(15): v=%d err=%v, want %d, nil", v, err, want)
				}
			}
			st := s.Stats()
			if st.Tenants[0].Failed != 1 {
				t.Errorf("failed = %d, want 1", st.Tenants[0].Failed)
			}
		})
	}
}

// TestServeCancelMidFlight is the acceptance check: a request whose
// context is cancelled mid-run unwinds with context.Canceled while
// concurrent sibling requests on other lanes complete untouched.
func TestServeCancelMidFlight(t *testing.T) {
	for _, backend := range []string{"wool", "woolgen"} {
		t.Run(backend, func(t *testing.T) {
			s, err := New(Options{Backend: backend, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			var gate, started atomic.Bool
			ctx, cancel := context.WithCancel(context.Background())
			victim, err := s.Submit(ctx, "", gateJob(&gate, &started, 256))
			if err != nil {
				t.Fatal(err)
			}
			waitTrue(t, &started, "victim dispatch")
			// Siblings on the other lanes keep completing while the
			// victim spins.
			want := fibw.Serial(15)
			var sibs []*Ticket
			for i := 0; i < 6; i++ {
				tk, err := s.Submit(context.Background(), "", Rec(fibw.Job(15, 1)))
				if err != nil {
					t.Fatal(err)
				}
				sibs = append(sibs, tk)
			}
			for _, tk := range sibs {
				if v, err := tk.Wait(); err != nil || v != want {
					t.Fatalf("sibling during spin: v=%d err=%v, want %d, nil", v, err, want)
				}
			}

			cancel()
			waitLanePoisoned(t, s)
			gate.Store(true)

			v, werr := victim.Wait()
			if !errors.Is(werr, context.Canceled) {
				t.Fatalf("cancelled request: v=%d err=%v, want context.Canceled", v, werr)
			}
			// Only its own request died: fresh requests on every lane
			// still complete.
			var after []*Ticket
			for i := 0; i < 8; i++ {
				tk, err := s.Submit(context.Background(), "", Rec(fibw.Job(15, 1)))
				if err != nil {
					t.Fatal(err)
				}
				after = append(after, tk)
			}
			for _, tk := range after {
				if v, err := tk.Wait(); err != nil || v != want {
					t.Fatalf("post-cancel sibling: v=%d err=%v, want %d, nil", v, err, want)
				}
			}
			st := s.Stats()
			if st.Tenants[0].Cancelled != 1 {
				t.Errorf("cancelled = %d, want 1", st.Tenants[0].Cancelled)
			}
		})
	}
}

// TestServeCancelRevivesSingleLane pins the Reset path: with exactly
// one lane there is nowhere to hide a broken pool — the cancelled
// request's own pool must serve the follow-ups.
func TestServeCancelRevivesSingleLane(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for round := 0; round < 3; round++ {
		var gate, started atomic.Bool
		ctx, cancel := context.WithCancel(context.Background())
		victim, err := s.Submit(ctx, "", gateJob(&gate, &started, 256))
		if err != nil {
			t.Fatal(err)
		}
		waitTrue(t, &started, "victim dispatch")
		cancel()
		waitLanePoisoned(t, s)
		gate.Store(true)
		if _, werr := victim.Wait(); !errors.Is(werr, context.Canceled) {
			t.Fatalf("round %d: err = %v, want context.Canceled", round, werr)
		}
		want := fibw.Serial(16)
		tk, err := s.Submit(context.Background(), "", Rec(fibw.Job(16, 1)))
		if err != nil {
			t.Fatal(err)
		}
		if v, err := tk.Wait(); err != nil || v != want {
			t.Fatalf("round %d: revived lane fib(16): v=%d err=%v, want %d, nil", round, v, err, want)
		}
	}
}

// TestServeDeadline checks a request deadline behaves like an explicit
// cancellation: the request fails with context.DeadlineExceeded.
func TestServeDeadline(t *testing.T) {
	s, err := New(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var gate, started atomic.Bool
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	tk, err := s.Submit(ctx, "", gateJob(&gate, &started, 64))
	if err != nil {
		t.Fatal(err)
	}
	waitTrue(t, &started, "request dispatch")
	waitLanePoisoned(t, s)
	gate.Store(true)
	if _, werr := tk.Wait(); !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", werr)
	}
}

// TestServeCancelWhileQueued checks a request cancelled before
// dispatch fails at dispatch without running.
func TestServeCancelWhileQueued(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var gate, started atomic.Bool
	blocker, err := s.Submit(context.Background(), "", gateJob(&gate, &started, 4))
	if err != nil {
		t.Fatal(err)
	}
	waitTrue(t, &started, "blocker dispatch")
	ctx, cancel := context.WithCancel(context.Background())
	queued, err := s.Submit(ctx, "", gateJob(&gate, nil, 4))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	gate.Store(true)
	if v, err := blocker.Wait(); err != nil || v != 5 {
		t.Fatalf("blocker: v=%d err=%v", v, err)
	}
	if _, werr := queued.Wait(); !errors.Is(werr, context.Canceled) {
		t.Fatalf("queued-cancelled: err = %v, want context.Canceled", werr)
	}
}

// TestServeClose checks Close fails the queued backlog with ErrClosed,
// lets the in-flight request finish, and rejects new submissions.
func TestServeClose(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var gate, started atomic.Bool
	blocker, err := s.Submit(context.Background(), "", gateJob(&gate, &started, 4))
	if err != nil {
		t.Fatal(err)
	}
	waitTrue(t, &started, "blocker dispatch")
	var queued []*Ticket
	for i := 0; i < 2; i++ {
		tk, err := s.Submit(context.Background(), "", gateJob(&gate, nil, 4))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, tk)
	}
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		s.Close()
	}()
	for _, tk := range queued {
		if _, werr := tk.Wait(); !errors.Is(werr, ErrClosed) {
			t.Fatalf("drained ticket: err = %v, want ErrClosed", werr)
		}
	}
	gate.Store(true)
	if v, err := blocker.Wait(); err != nil || v != 5 {
		t.Fatalf("in-flight at Close: v=%d err=%v, want 5, nil", v, err)
	}
	<-closed
	if _, err := s.Submit(context.Background(), "", gateJob(&gate, nil, 4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestApportionLanes pins the largest-remainder team sizing.
func TestApportionLanes(t *testing.T) {
	mk := func(ws ...int) []*tenant {
		out := make([]*tenant, len(ws))
		for i, w := range ws {
			out[i] = &tenant{weight: w}
		}
		return out
	}
	cases := []struct {
		weights []int
		total   int
		want    []int
	}{
		{[]int{1}, 4, []int{4}},
		{[]int{3, 1}, 8, []int{6, 2}},
		{[]int{1, 1, 1}, 2, []int{1, 1, 1}}, // floor: one lane each
		{[]int{5, 3, 2}, 10, []int{5, 3, 2}},
		{[]int{2, 1}, 4, []int{2, 2}}, // remainder favours b's larger fraction
	}
	for _, c := range cases {
		got := apportionLanes(mk(c.weights...), c.total)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("apportion(%v, %d) = %v, want %v", c.weights, c.total, got, c.want)
				break
			}
		}
	}
}
