package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"gowool/internal/costmodel"
	"gowool/internal/sched"
	"gowool/internal/sim"
	"gowool/internal/steal"
	"gowool/internal/trace"
	"gowool/internal/workloads/fibw"
	"gowool/internal/workloads/stress"
)

// The steal-policy sweep (woolbench -stealsweep FILE) runs the full
// policy × amount × backend × workload grid natively, extracts the
// per-cell steal matrix through the trace exporter, and runs the same
// policy grid on the virtual-time simulator's sharded 64-processor
// topology — one file from which simulated and native policy rankings
// can be compared (EXPERIMENTS.md reads its numbers from here).

// sweepNeighborhood is the Localized ring-neighborhood size used for
// the native cells. At the sweep's small worker counts the package
// default of 4 covers most of the ring, degenerating Localized into
// Random; 2 keeps the locality signal visible in the matrices.
const sweepNeighborhood = 2

// stealSweepReport is the machine-readable output of -stealsweep.
type stealSweepReport struct {
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Scale      string            `json:"scale"`
	Native     []nativeStealCell `json:"native"`
	Sim        []simStealCell    `json:"sim"`
	Notes      map[string]string `json:"notes"`
}

// nativeStealCell is one native grid point: a backend running a
// workload under one victim policy and steal amount, with the steal
// topology extracted from the run's trace.
type nativeStealCell struct {
	Backend  string  `json:"backend"`
	Policy   string  `json:"policy"`
	Amount   string  `json:"amount"`
	Workload string  `json:"workload"`
	Workers  int     `json:"workers"`
	BestMs   float64 `json:"best_ms"`
	// Steals counts successful victim steals (leapfrog included),
	// Central the takes from a central queue (no victim).
	Steals   int64 `json:"steals"`
	Leapfrog int64 `json:"leapfrog"`
	Central  int64 `json:"central"`
	// MeanRingDist is the steal-weighted mean thief↔victim ring
	// distance; LocalFrac the fraction of steals within the Localized
	// neighborhood radius. Both read the same matrix the policy shaped.
	MeanRingDist float64 `json:"mean_ring_dist"`
	LocalFrac    float64 `json:"local_frac"`
	// Matrix is Steals[thief][victim] from the trace exporter.
	Matrix [][]int64 `json:"matrix"`
}

// simStealCell is one simulator grid point on the sharded topology.
type simStealCell struct {
	Kind     string  `json:"kind"`
	Policy   string  `json:"policy"`
	Workload string  `json:"workload"`
	Procs    int     `json:"procs"`
	Shards   int     `json:"shards"`
	KCycles  float64 `json:"kcycles"`
	Steals   int64   `json:"steals"`
	// MeanHops is the steal-weighted mean shard distance; RemoteFrac
	// the fraction of steals that crossed a shard boundary.
	MeanHops   float64 `json:"mean_hops"`
	RemoteFrac float64 `json:"remote_frac"`
}

// sweepSizes holds the per-scale workload parameters.
type sweepSizes struct {
	fibN                            int64
	stressHeight, stressIters, reps int64
	workers, timedReps              int
	simFibN, simHeight, simIters    int64
	simProcs, simShards             int
}

func sweepScale(full bool) sweepSizes {
	if full {
		return sweepSizes{
			fibN: 27, stressHeight: 8, stressIters: 256, reps: 10,
			workers: 8, timedReps: 2,
			simFibN: 24, simHeight: 11, simIters: 64,
			simProcs: 64, simShards: 8,
		}
	}
	return sweepSizes{
		fibN: 22, stressHeight: 7, stressIters: 64, reps: 4,
		workers: 4, timedReps: 1,
		simFibN: 18, simHeight: 9, simIters: 32,
		simProcs: 64, simShards: 8,
	}
}

// matrixStats reduces a steal matrix to the locality numbers: total
// victim steals, steal-weighted mean ring distance, and the fraction
// within the Localized neighborhood radius.
func matrixStats(m *trace.StealMatrix) (steals int64, meanDist, localFrac float64) {
	var distSum, local int64
	for thief := range m.Steals {
		for victim, c := range m.Steals[thief] {
			if c == 0 {
				continue
			}
			d := steal.RingDistance(thief, victim, m.Workers)
			steals += c
			distSum += c * int64(d)
			if d <= sweepNeighborhood {
				local += c
			}
		}
	}
	if steals > 0 {
		meanDist = float64(distSum) / float64(steals)
		localFrac = float64(local) / float64(steals)
	}
	return steals, meanDist, localFrac
}

// runNativeCell runs one backend × policy × amount × workload cell on
// a traced pool and reduces its trace to a cell record.
func runNativeCell(s sched.Scheduler, pol, amt, workload string, sz sweepSizes) (nativeStealCell, error) {
	cell := nativeStealCell{
		Backend: s.Name(), Policy: pol, Amount: amt,
		Workload: workload, Workers: sz.workers,
	}
	var job sched.RecJob
	var want int64
	switch workload {
	case "fib":
		job = fibw.Job(sz.fibN, sz.reps)
		want = fibw.Serial(sz.fibN) * sz.reps
	case "stress":
		job = stress.Job(sz.stressHeight, sz.stressIters, sz.reps)
		want = stress.SerialReps(sz.stressHeight, sz.stressIters, sz.reps)
	default:
		return cell, fmt.Errorf("unknown sweep workload %q", workload)
	}
	tr := trace.New(sz.workers, 0)
	p := s.NewPool(sched.Options{
		Workers: sz.workers,
		Trace:   tr,
		Steal: steal.Config{
			Policy:       pol,
			Amount:       amt,
			Neighborhood: sweepNeighborhood,
		},
	})
	defer p.Close()
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < sz.timedReps; rep++ {
		t0 := time.Now()
		got := p.RunRec(job)
		d := time.Since(t0)
		if got != want {
			return cell, fmt.Errorf("%s/%s/%s %s = %d, want %d", s.Name(), pol, amt, workload, got, want)
		}
		if d < best {
			best = d
		}
	}
	cell.BestMs = float64(best) / float64(time.Millisecond)
	m := tr.StealMatrix()
	cell.Matrix = m.Steals
	cell.Steals, cell.MeanRingDist, cell.LocalFrac = matrixStats(m)
	for thief := range m.Leap {
		cell.Central += m.Central[thief]
		for _, c := range m.Leap[thief] {
			cell.Leapfrog += c
		}
	}
	return cell, nil
}

// simKinds is the simulator protocol grid: the kinds with per-worker
// pools (KindCentral has no victims, so policies cannot apply).
var simKinds = []sim.Kind{sim.KindDirectStack, sim.KindDeque, sim.KindLock}

// runSimCell runs one protocol × policy × workload cell at sz.simProcs
// on the sharded topology and reduces Result.StealsFrom to hop stats.
func runSimCell(kind sim.Kind, pol, workload string, sz sweepSizes) simStealCell {
	var def *sim.Def
	var args sim.Args
	switch workload {
	case "fib":
		def, args = fibw.NewSim(), sim.Args{A0: sz.simFibN}
	case "stress":
		def, args = stress.NewSimReps(), sim.Args{A0: sz.simHeight, A1: sz.simIters, A2: 1}
	}
	cfg := sim.Config{
		Procs: sz.simProcs, Kind: kind, Costs: costmodel.Wool(),
		Steal:    steal.Config{Policy: pol},
		Topology: sim.Topology{Shards: sz.simShards},
	}
	res := sim.Run(cfg, def, args)
	cell := simStealCell{
		Kind: kind.String(), Policy: pol, Workload: workload,
		Procs: sz.simProcs, Shards: sz.simShards,
		KCycles: float64(res.Makespan) / 1e3,
	}
	var hopSum, remote int64
	for thief := range res.StealsFrom {
		for victim, c := range res.StealsFrom[thief] {
			if c == 0 {
				continue
			}
			sa := thief * sz.simShards / sz.simProcs
			sb := victim * sz.simShards / sz.simProcs
			h := sa - sb
			if h < 0 {
				h = -h
			}
			cell.Steals += c
			hopSum += c * int64(h)
			if h > 0 {
				remote += c
			}
		}
	}
	if cell.Steals > 0 {
		cell.MeanHops = float64(hopSum) / float64(cell.Steals)
		cell.RemoteFrac = float64(remote) / float64(cell.Steals)
	}
	return cell
}

// printRankings prints, per backend (native, fib cells at AmountOne)
// and per protocol (sim, fib cells), the policies ordered fastest
// first — the side-by-side the sweep exists to produce.
func printRankings(rep *stealSweepReport) {
	fmt.Println("stealsweep: native policy ranking per backend (fib, amount=one, fastest first)")
	byBackend := map[string][]nativeStealCell{}
	for _, c := range rep.Native {
		if c.Workload == "fib" && c.Amount == steal.AmountOne {
			byBackend[c.Backend] = append(byBackend[c.Backend], c)
		}
	}
	var backends []string
	for b := range byBackend {
		backends = append(backends, b)
	}
	sort.Strings(backends)
	for _, b := range backends {
		cells := byBackend[b]
		sort.Slice(cells, func(i, j int) bool { return cells[i].BestMs < cells[j].BestMs })
		fmt.Printf("  %-10s", b)
		for _, c := range cells {
			fmt.Printf(" %s=%.1fms", c.Policy, c.BestMs)
		}
		fmt.Println()
	}
	fmt.Println("stealsweep: sim policy ranking per protocol (fib, P=64, 8 shards, fastest first)")
	byKind := map[string][]simStealCell{}
	for _, c := range rep.Sim {
		if c.Workload == "fib" {
			byKind[c.Kind] = append(byKind[c.Kind], c)
		}
	}
	var kinds []string
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		cells := byKind[k]
		sort.Slice(cells, func(i, j int) bool { return cells[i].KCycles < cells[j].KCycles })
		fmt.Printf("  %-12s", k)
		for _, c := range cells {
			fmt.Printf(" %s=%.0fk", c.Policy, c.KCycles)
		}
		fmt.Println()
	}
}

// runStealSweep produces BENCH_steal.json: the native policy grid over
// every backend that advertises StealPolicies, plus the simulator grid
// on the sharded topology.
func runStealSweep(path string, full bool) error {
	sz := sweepScale(full)
	gmp := runtime.GOMAXPROCS(0)
	if gmp < sz.workers {
		runtime.GOMAXPROCS(sz.workers)
		defer runtime.GOMAXPROCS(gmp)
	}
	scale := "quick"
	if full {
		scale = "full"
	}
	rep := stealSweepReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Notes: map[string]string{
			"native": fmt.Sprintf("policy × amount × workload per backend advertising StealPolicies; %d workers, best of %d wall-clock reps; matrix[thief][victim] from the trace exporter; localized neighborhood %d", sz.workers, sz.timedReps, sweepNeighborhood),
			"sim":    fmt.Sprintf("virtual-time sweep at P=%d on a %d-shard linear topology (remote probes +%d cycles/hop, remote steals +%d cycles/hop); kcycles is makespan/1e3", sz.simProcs, sz.simShards, costmodel.RemoteProbePenalty, costmodel.RemoteStealPenalty),
			"intent": "compare the native policy ranking (best_ms per backend) with the simulated ranking (kcycles per protocol); EXPERIMENTS.md §steal-policies reads from this file",
		},
	}

	fmt.Printf("stealsweep: native grid (%s scale)\n", scale)
	for _, s := range sched.All() {
		caps := s.Caps()
		if len(caps.StealPolicies) == 0 || !caps.Trace {
			continue
		}
		for _, pol := range caps.StealPolicies {
			for _, amt := range caps.StealAmounts {
				for _, workload := range []string{"fib", "stress"} {
					cell, err := runNativeCell(s, pol, amt, workload, sz)
					if err != nil {
						return err
					}
					rep.Native = append(rep.Native, cell)
					fmt.Printf("  %-10s %-12s %-5s %-7s %8.1f ms  steals=%-6d dist=%.2f local=%.2f\n",
						cell.Backend, cell.Policy, cell.Amount, cell.Workload,
						cell.BestMs, cell.Steals, cell.MeanRingDist, cell.LocalFrac)
				}
			}
		}
	}

	fmt.Printf("stealsweep: sim grid (P=%d, %d shards)\n", sz.simProcs, sz.simShards)
	for _, kind := range simKinds {
		for _, pol := range steal.Policies() {
			for _, workload := range []string{"fib", "stress"} {
				cell := runSimCell(kind, pol, workload, sz)
				rep.Sim = append(rep.Sim, cell)
				fmt.Printf("  %-12s %-12s %-7s %10.0f kcycles  steals=%-6d hops=%.2f remote=%.2f\n",
					cell.Kind, cell.Policy, cell.Workload,
					cell.KCycles, cell.Steals, cell.MeanHops, cell.RemoteFrac)
			}
		}
	}

	printRankings(&rep)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
