package analysis

// A small statement-level control-flow graph with a dominance layer,
// built from go/ast alone (no external deps — woolvet's design
// constraint, DESIGN.md §10). The publication pass uses it to decide
// "happens on every path before" (dominance) and "can happen after"
// (reachability) questions about release/acquire protocol points.
//
// Granularity: one node per simple statement, plus dedicated nodes
// for the evaluated parts of compound statements (an if's condition,
// a switch's tag, a range's header). Each node carries the syntax
// whose expressions execute at that program point in Exprs; walking a
// node's Exprs never descends into a nested statement, so op
// collection cannot attribute a branch body to its condition node.
//
// Deliberate simplifications, all conservative for a linter:
//   - defer and go statements get nodes but contribute no Exprs: their
//     payloads run at function exit / concurrently, not at the
//     statement's program point.
//   - panic(...) terminates the path (edge to Exit only).
//   - unreachable code is not checked (passes skip nodes Reaches()
//     cannot see from Entry).

import (
	"go/ast"
	"go/token"
)

// CFGNode is one program point.
type CFGNode struct {
	Stmt  ast.Stmt   // originating statement (nil for Entry/Exit)
	Exprs []ast.Node // syntax evaluated at this point (never nested stmts)

	Succs []*CFGNode
	Preds []*CFGNode

	index int      // dense id
	rpo   int      // reverse-postorder number; -1 if unreachable
	idom  *CFGNode // immediate dominator; nil if unreachable
}

// Pos returns a position for diagnostics.
func (n *CFGNode) Pos() token.Pos {
	if n.Stmt != nil {
		return n.Stmt.Pos()
	}
	if len(n.Exprs) > 0 {
		return n.Exprs[0].Pos()
	}
	return token.NoPos
}

// CFG is the graph for one function body.
type CFG struct {
	Entry *CFGNode
	Exit  *CFGNode
	Nodes []*CFGNode // includes Entry and Exit
}

// BuildCFG builds the graph for a function body. A nil body (external
// declaration) yields a graph with only Entry -> Exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g:      &CFG{},
		labels: map[string]*CFGNode{},
	}
	b.g.Entry = b.newNode(nil)
	b.g.Exit = b.newNode(nil)
	if body != nil {
		exits := b.stmtList(body.List, []*CFGNode{b.g.Entry})
		b.connect(exits, b.g.Exit)
	} else {
		b.connect([]*CFGNode{b.g.Entry}, b.g.Exit)
	}
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.connect([]*CFGNode{pg.node}, target)
		} else {
			// Unresolvable goto in syntactically valid code cannot
			// happen after type-checking; degrade to exit.
			b.connect([]*CFGNode{pg.node}, b.g.Exit)
		}
	}
	b.g.computeDominance()
	return b.g
}

// Dominates reports whether every path from Entry to b passes through
// a. Reflexive. False when either node is unreachable.
func (g *CFG) Dominates(a, b *CFGNode) bool {
	if a.rpo < 0 || b.rpo < 0 {
		return false
	}
	for n := b; ; n = n.idom {
		if n == a {
			return true
		}
		if n == g.Entry {
			return false
		}
	}
}

// Reaches reports whether a path (possibly empty) leads from a to b.
func (g *CFG) Reaches(a, b *CFGNode) bool {
	if a == b {
		return true
	}
	seen := make([]bool, len(g.Nodes))
	stack := []*CFGNode{a}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range n.Succs {
			if s == b {
				return true
			}
			if !seen[s.index] {
				seen[s.index] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Reachable reports whether n is reachable from Entry.
func (g *CFG) Reachable(n *CFGNode) bool { return n.rpo >= 0 }

// computeDominance runs the Cooper–Harvey–Kennedy iterative idom
// algorithm over the reverse postorder of the reachable subgraph.
func (g *CFG) computeDominance() {
	for _, n := range g.Nodes {
		n.rpo = -1
	}
	var order []*CFGNode
	var dfs func(n *CFGNode)
	visited := make([]bool, len(g.Nodes))
	dfs = func(n *CFGNode) {
		visited[n.index] = true
		for _, s := range n.Succs {
			if !visited[s.index] {
				dfs(s)
			}
		}
		order = append(order, n)
	}
	dfs(g.Entry)
	// order is postorder; number in reverse.
	for i, j := 0, len(order)-1; j >= 0; i, j = i+1, j-1 {
		order[j].rpo = i
	}
	rpo := make([]*CFGNode, len(order))
	for _, n := range order {
		rpo[n.rpo] = n
	}
	g.Entry.idom = g.Entry
	intersect := func(a, b *CFGNode) *CFGNode {
		for a != b {
			for a.rpo > b.rpo {
				a = a.idom
			}
			for b.rpo > a.rpo {
				b = b.idom
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, n := range rpo[1:] {
			var newIdom *CFGNode
			for _, p := range n.Preds {
				if p.rpo < 0 || p.idom == nil {
					continue // unreachable or unprocessed pred
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && n.idom != newIdom {
				n.idom = newIdom
				changed = true
			}
		}
	}
}

type pendingGoto struct {
	node  *CFGNode
	label string
}

// loopCtx is one enclosing breakable/continuable construct.
type loopCtx struct {
	label     string
	breakTo   *[]*CFGNode // collector for break exits
	continueT *CFGNode    // nil for switch/select (not continuable)
}

type cfgBuilder struct {
	g      *CFG
	labels map[string]*CFGNode
	gotos  []pendingGoto
	loops  []loopCtx
	// curLabel is the label of a LabeledStmt whose direct statement is
	// about to be processed, consumed by the loop/switch constructors.
	curLabel string
	// fallTarget is the head node of the next case clause while a
	// case body is being processed.
	fallTarget *CFGNode
}

func (b *cfgBuilder) newNode(stmt ast.Stmt, exprs ...ast.Node) *CFGNode {
	n := &CFGNode{Stmt: stmt, index: len(b.g.Nodes)}
	for _, e := range exprs {
		if e != nil {
			n.Exprs = append(n.Exprs, e)
		}
	}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *cfgBuilder) connect(from []*CFGNode, to *CFGNode) {
	for _, f := range from {
		f.Succs = append(f.Succs, to)
		to.Preds = append(to.Preds, f)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, preds []*CFGNode) []*CFGNode {
	for _, s := range list {
		preds = b.stmt(s, preds)
	}
	return preds
}

// takeLabel consumes the pending label for a labeled loop/switch.
func (b *cfgBuilder) takeLabel() string {
	l := b.curLabel
	b.curLabel = ""
	return l
}

// findLoop locates the break/continue target context for a branch
// statement, by label when present.
func (b *cfgBuilder) findLoop(label string, needContinue bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := &b.loops[i]
		if needContinue && lc.continueT == nil {
			continue
		}
		if label == "" || lc.label == label {
			return lc
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, preds []*CFGNode) []*CFGNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, preds)

	case *ast.EmptyStmt:
		return preds

	case *ast.LabeledStmt:
		n := b.newNode(s)
		b.connect(preds, n)
		b.labels[s.Label.Name] = n
		b.curLabel = s.Label.Name
		out := b.stmt(s.Stmt, []*CFGNode{n})
		b.curLabel = ""
		return out

	case *ast.IfStmt:
		if s.Init != nil {
			preds = b.stmt(s.Init, preds)
		}
		cond := b.newNode(s, s.Cond)
		b.connect(preds, cond)
		thenExits := b.stmt(s.Body, []*CFGNode{cond})
		if s.Else != nil {
			elseExits := b.stmt(s.Else, []*CFGNode{cond})
			return append(thenExits, elseExits...)
		}
		return append(thenExits, cond)

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			preds = b.stmt(s.Init, preds)
		}
		cond := b.newNode(s, s.Cond)
		b.connect(preds, cond)
		var post *CFGNode
		if s.Post != nil {
			post = b.newNode(s.Post, s.Post)
		}
		continueT := cond
		if post != nil {
			continueT = post
		}
		var breaks []*CFGNode
		b.loops = append(b.loops, loopCtx{label: label, breakTo: &breaks, continueT: continueT})
		bodyExits := b.stmt(s.Body, []*CFGNode{cond})
		b.loops = b.loops[:len(b.loops)-1]
		if post != nil {
			b.connect(bodyExits, post)
			b.connect([]*CFGNode{post}, cond)
		} else {
			b.connect(bodyExits, cond)
		}
		out := breaks
		if s.Cond != nil {
			out = append(out, cond)
		}
		return out

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newNode(s, s.X, s.Key, s.Value)
		b.connect(preds, head)
		var breaks []*CFGNode
		b.loops = append(b.loops, loopCtx{label: label, breakTo: &breaks, continueT: head})
		bodyExits := b.stmt(s.Body, []*CFGNode{head})
		b.loops = b.loops[:len(b.loops)-1]
		b.connect(bodyExits, head)
		return append(breaks, head)

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			preds = b.stmt(s.Init, preds)
		}
		tag := b.newNode(s, s.Tag)
		b.connect(preds, tag)
		return b.caseClauses(s.Body.List, tag, label)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			preds = b.stmt(s.Init, preds)
		}
		head := b.newNode(s, s.Assign)
		b.connect(preds, head)
		return b.caseClauses(s.Body.List, head, label)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.newNode(s)
		b.connect(preds, head)
		var breaks, exits []*CFGNode
		b.loops = append(b.loops, loopCtx{label: label, breakTo: &breaks})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			clausePreds := []*CFGNode{head}
			if cc.Comm != nil {
				clausePreds = b.stmt(cc.Comm, clausePreds)
			}
			exits = append(exits, b.stmtList(cc.Body, clausePreds)...)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if len(s.Body.List) == 0 {
			// select{} blocks forever.
			return breaks
		}
		return append(exits, breaks...)

	case *ast.ReturnStmt:
		n := b.newNode(s, s)
		b.connect(preds, n)
		b.connect([]*CFGNode{n}, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		n := b.newNode(s)
		b.connect(preds, n)
		switch s.Tok {
		case token.BREAK:
			if lc := b.findLoop(labelName(s.Label), false); lc != nil {
				*lc.breakTo = append(*lc.breakTo, n)
			}
		case token.CONTINUE:
			if lc := b.findLoop(labelName(s.Label), true); lc != nil {
				b.connect([]*CFGNode{n}, lc.continueT)
			}
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{node: n, label: labelName(s.Label)})
		case token.FALLTHROUGH:
			if b.fallTarget != nil {
				b.connect([]*CFGNode{n}, b.fallTarget)
			}
		}
		return nil

	case *ast.DeferStmt, *ast.GoStmt:
		// Program point exists but the payload does not run here; no
		// Exprs, so op collection skips the call.
		n := b.newNode(s)
		b.connect(preds, n)
		return []*CFGNode{n}

	case *ast.ExprStmt:
		n := b.newNode(s, s)
		b.connect(preds, n)
		if isPanicCall(s.X) {
			b.connect([]*CFGNode{n}, b.g.Exit)
			return nil
		}
		return []*CFGNode{n}

	default:
		// Simple statements: assignments, inc/dec, send, decl.
		n := b.newNode(s, s)
		b.connect(preds, n)
		return []*CFGNode{n}
	}
}

// caseClauses wires the shared switch/type-switch clause structure:
// every clause head is a successor of the dispatch node; a missing
// default means the dispatch node itself can exit the switch.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, dispatch *CFGNode, label string) []*CFGNode {
	var breaks, exits []*CFGNode
	b.loops = append(b.loops, loopCtx{label: label, breakTo: &breaks})
	heads := make([]*CFGNode, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		exprs := make([]ast.Node, len(cc.List))
		for j, e := range cc.List {
			exprs[j] = e
		}
		heads[i] = b.newNode(cc, exprs...)
		b.connect([]*CFGNode{dispatch}, heads[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	savedFall := b.fallTarget
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if i+1 < len(clauses) {
			b.fallTarget = heads[i+1]
		} else {
			b.fallTarget = nil
		}
		exits = append(exits, b.stmtList(cc.Body, []*CFGNode{heads[i]})...)
	}
	b.fallTarget = savedFall
	b.loops = b.loops[:len(b.loops)-1]
	if !hasDefault {
		exits = append(exits, dispatch)
	}
	return append(exits, breaks...)
}

func labelName(l *ast.Ident) string {
	if l == nil {
		return ""
	}
	return l.Name
}

// isPanicCall reports whether e is a direct call of the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic" && id.Obj == nil
}
