package cholesky

import "math"

// Dense Block×Block kernels, operating on flat row-major tiles. These
// are the leaves of the divide-and-conquer factorization; everything
// above them is task structure.

// Virtual cycle costs of the kernels for the simulator, at ~4 cycles
// per multiply-add on the unblocked scalar code.
const (
	// CholeskyKernelCycles ≈ 4·B³/6.
	CholeskyKernelCycles = 4 * Block * Block * Block / 6
	// BacksubKernelCycles ≈ 4·B³/2.
	BacksubKernelCycles = 4 * Block * Block * Block / 2
	// MulSubKernelCycles ≈ 4·B³ (full target; the lower-only variant
	// does half).
	MulSubKernelCycles = 4 * Block * Block * Block
)

// blockCholesky factors tile a in place (lower triangle), a = l·lᵀ.
func blockCholesky(a []float64) {
	for k := 0; k < Block; k++ {
		akk := a[k*Block+k]
		if akk <= 0 {
			panic("cholesky: matrix not positive definite (zero/negative pivot)")
		}
		d := math.Sqrt(akk)
		a[k*Block+k] = d
		inv := 1 / d
		for i := k + 1; i < Block; i++ {
			a[i*Block+k] *= inv
		}
		for j := k + 1; j < Block; j++ {
			ajk := a[j*Block+k]
			if ajk == 0 {
				continue
			}
			for i := j; i < Block; i++ {
				a[i*Block+j] -= a[i*Block+k] * ajk
			}
		}
	}
	// Clear the (stale) upper triangle so later tile reuse sees a
	// clean lower-triangular factor.
	for i := 0; i < Block; i++ {
		for j := i + 1; j < Block; j++ {
			a[i*Block+j] = 0
		}
	}
}

// blockBacksub solves x·lᵀ = a for x in place (a becomes x), where l
// is lower triangular: forward substitution along each row of a.
func blockBacksub(a, l []float64) {
	for i := 0; i < Block; i++ {
		row := a[i*Block : (i+1)*Block]
		for j := 0; j < Block; j++ {
			s := row[j]
			lj := l[j*Block : (j+1)*Block]
			for k := 0; k < j; k++ {
				s -= row[k] * lj[k]
			}
			row[j] = s / lj[j]
		}
	}
}

// blockMulSub computes r -= a·bᵀ; when lower is set only the lower
// triangle of r (j ≤ i) is updated, for symmetric diagonal targets.
func blockMulSub(r, a, b []float64, lower bool) {
	for i := 0; i < Block; i++ {
		ai := a[i*Block : (i+1)*Block]
		ri := r[i*Block : (i+1)*Block]
		jmax := Block
		if lower {
			jmax = i + 1
		}
		for j := 0; j < jmax; j++ {
			bj := b[j*Block : (j+1)*Block]
			var s float64
			for k := 0; k < Block; k++ {
				s += ai[k] * bj[k]
			}
			ri[j] -= s
		}
	}
}
