// Package sched is the scheduler registry: one abstraction behind the
// six native schedulers this repository implements — the paper's
// direct task stack (internal/core), the Chase-Lev deque (the TBB
// stand-in), the lock-based ladder, the steal-parent continuation
// scheduler (the Cilk++ stand-in), the centralized OpenMP-style pool,
// and the idiomatic-Go goroutine baseline.
//
// The paper's whole argument is comparative, and before this layer the
// comparison was wired by hand: every workload re-implemented the
// identical recursion once per scheduler, and every tool carried
// scheduler-specific switch plumbing. Here each scheduler registers
// once, exposing
//
//   - a normalized Options → native-knob mapping (NewPool),
//   - a normalized Stats ← native-counter mapping,
//   - capability flags (Caps) declaring what the backend can do, and
//   - generic RunRec/RunRange entry points that instantiate a
//     workload's divide-and-conquer body (a RecJob or RangeJob,
//     written once) for that backend.
//
// Adding a scheduler is one package plus one Register call; the
// conformance suite (conformance_test.go), cmd/woolrun and the
// experiment harness pick it up by enumerating the registry.
package sched

import (
	"sort"
	"time"

	"gowool/internal/chaos"
	"gowool/internal/steal"
	"gowool/internal/trace"
)

// Options is the normalized pool configuration. Every field maps onto
// a native knob where the backend has one and is ignored where it does
// not; backend-specific tuning (steal strategies, deque sizes, wait
// policies, parking modes) stays on the native Options — reach the
// concrete pool through Pool.Native for ablations.
type Options struct {
	// Workers is the worker count; default GOMAXPROCS.
	Workers int
	// StackSize is the per-worker task-pool capacity, where the
	// backend has a fixed-capacity pool (core, locksched: descriptor
	// stack; chaselev: deque slots), and the initial pool capacity on
	// backends with growable pools (cilk: continuation deque; omp:
	// central queue). gonative has no pool and ignores it. 0 means the
	// backend default.
	StackSize int
	// StrictOverflow makes a spawn that finds a fixed-capacity pool
	// full panic instead of degrading to inline serial execution
	// (core, chaselev, locksched). Backends without a fixed-capacity
	// pool ignore it.
	StrictOverflow bool
	// PrivateTasks enables the private-task optimization on backends
	// that implement it (the direct task stack only).
	PrivateTasks bool
	// MaxIdleSleep caps idle back-off sleeping on backends with an
	// idle loop. 0 means the backend default.
	MaxIdleSleep time.Duration
	// Trace is the event sink: when non-nil, backends with Caps.Trace
	// record scheduler events (at least STEAL and PARK; the direct
	// task stack records the full vocabulary) into the tracer's
	// per-worker rings. The tracer must have at least Workers rings.
	// Backends without the capability ignore it. nil disables tracing
	// at zero fast-path cost.
	Trace *trace.Tracer
	// Chaos attaches a woolchaos fault injector on backends with
	// Caps.Chaos: protocol points are perturbed (delays, yields,
	// failed attempts) under a seeded deterministic PRNG. The injector
	// must have at least Workers agents. Backends without the
	// capability ignore it. nil disables injection at zero fast-path
	// cost.
	Chaos *chaos.Injector
	// Watchdog arms the stuck-run watchdog on backends with
	// Caps.Watchdog: a Run making no scheduler progress for this long
	// while a worker sits blocked fails with a diagnostic bundle
	// instead of hanging. 0 disables it. Backends without the
	// capability ignore it.
	Watchdog time.Duration
	// Steal selects the victim policy and steal amount
	// (internal/steal) on backends that advertise them
	// (Caps.StealPolicies / Caps.StealAmounts). The zero value is each
	// backend's historical default — uniform-random victims, one task
	// per steal. Backends without the capability ignore it.
	Steal steal.Config
}

// Caps declares what a registered scheduler can do, so registry-driven
// tools degrade gracefully instead of special-casing names.
type Caps struct {
	// Steal is a one-phrase description of the load-balancing
	// mechanism (synchronization locus and steal order).
	Steal string
	// StealChild is true when spawned children are the stealable
	// units (Wool, TBB); false for steal-parent continuations and the
	// non-stealing baselines.
	StealChild bool
	// PrivateTasks is true when Options.PrivateTasks has an effect.
	PrivateTasks bool
	// Leapfrog is true when a join blocked on a stolen task steals
	// back from the thief (the paper's leapfrogging).
	Leapfrog bool
	// WorkSharing is true when RunRange uses a work-sharing loop
	// (OpenMP parallel-for style) rather than a balanced task tree.
	WorkSharing bool
	// Stats is true when Pool.Stats returns live counters.
	Stats bool
	// TaskDefs is true when the backend exposes DefineC3-style task
	// constructors and Pool.Native returns its concrete pool, so
	// irregular workloads (cholesky) can be instantiated generically.
	TaskDefs bool
	// GeneratedPorts is true when RunRec/RunRange route through
	// woolgen-generated monomorphic ports (internal/gen/ports) instead
	// of the generic task-port layer in port.go.
	GeneratedPorts bool
	// Trace is true when Options.Trace routes scheduler events into
	// the tracer's rings (at minimum STEAL and PARK).
	Trace bool
	// Chaos is true when Options.Chaos injects faults at the backend's
	// protocol points.
	Chaos bool
	// Watchdog is true when Options.Watchdog arms stuck-run detection.
	Watchdog bool
	// StealPolicies lists the Options.Steal.Policy names the backend's
	// victim selection honours (empty: no policy-driven victim
	// selection — central queues, no-steal baselines).
	StealPolicies []string
	// StealAmounts lists the Options.Steal.Amount names the backend
	// honours; backends whose pools support batch extraction include
	// steal.AmountHalf.
	StealAmounts []string
	// Serve is true when Pool.Native implements Abortable, so the
	// serving layer (internal/serve) can cancel an in-flight request
	// by aborting the pool and then Reset it back into service.
	// Backends without it are still servable — the serving layer falls
	// back to replacing a poisoned pool — but cannot interrupt a
	// running request before it completes.
	Serve bool
}

// Abortable is the native-pool contract behind Caps.Serve: the
// request-scoped abort machinery of internal/core (DESIGN.md §16).
// Abort poisons the pool so an in-flight Run unwinds with a
// *poolerr.AbortError carrying reason; Poisoned observes the poison
// without Run's panic; Reset waits out the unwind, discards the
// abandoned task trees and returns the pool to service.
type Abortable interface {
	Abort(reason error) bool
	Poisoned() (cause any, poisoned bool)
	Reset() error
}

// Pool is a running scheduler instance behind the normalized surface.
type Pool interface {
	// Workers returns the worker count.
	Workers() int
	// Close releases the pool's workers.
	Close()
	// Stats returns normalized counters (zero value when !Caps.Stats).
	Stats() Stats
	// ResetStats zeroes the counters (quiescent pools only).
	ResetStats()
	// RunRec executes a binary divide-and-conquer job and returns the
	// summed result over the job's serialized repetitions.
	RunRec(RecJob) int64
	// RunRange executes an index-range job (balanced task tree, or a
	// work-sharing loop where Caps.WorkSharing) and returns the sum
	// of the leaf values over the job's repetitions.
	RunRange(RangeJob) int64
	// Native returns the backend's concrete pool (*core.Pool,
	// *chaselev.Pool, ...) or nil when the backend has none
	// (gonative runs on the Go runtime itself).
	Native() any
}

// Scheduler is one registered scheduler.
type Scheduler interface {
	// Name is the registry key (also the CLI -sched value).
	Name() string
	// Blurb is a one-line description for listings.
	Blurb() string
	// Caps returns the capability flags.
	Caps() Caps
	// NewPool creates a pool with the normalized options.
	NewPool(Options) Pool
}

// The registry. Entries are kept in presentation order: the paper's
// system order (Wool first, then the baselines), then external
// additions in registration order.
var (
	registry []entry
	byName   = map[string]Scheduler{}
)

type entry struct {
	s    Scheduler
	rank int
}

// register adds s with an explicit presentation rank (package use).
func register(s Scheduler, rank int) {
	if _, dup := byName[s.Name()]; dup {
		panic("sched: duplicate scheduler " + s.Name())
	}
	registry = append(registry, entry{s, rank})
	byName[s.Name()] = s
	sort.SliceStable(registry, func(i, j int) bool { return registry[i].rank < registry[j].rank })
}

// Register adds an externally defined scheduler to the registry (after
// the built-ins, in registration order). It panics on a duplicate
// name.
func Register(s Scheduler) { register(s, 100+len(registry)) }

// All returns the registered schedulers in presentation order.
func All() []Scheduler {
	out := make([]Scheduler, len(registry))
	for i, e := range registry {
		out[i] = e.s
	}
	return out
}

// Lookup finds a scheduler by name.
func Lookup(name string) (Scheduler, bool) {
	s, ok := byName[name]
	return s, ok
}

// Names returns the registered names in presentation order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.s.Name()
	}
	return out
}
