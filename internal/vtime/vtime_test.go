package vtime

import (
	"testing"
	"testing/quick"
)

func TestSingleProc(t *testing.T) {
	m := NewMachine(1)
	times := m.Run(func(p *Proc) {
		p.Step(100)
		p.Step(50)
		p.Advance(7)
	})
	if times[0] != 157 {
		t.Errorf("time = %d, want 157", times[0])
	}
}

func TestMinTimeOrdering(t *testing.T) {
	// Two procs: proc 0 takes big steps, proc 1 small ones. The
	// interleaving must always run the earlier clock, so proc 1
	// observes proc 0's shared writes only after its own clock passes
	// proc 0's write time.
	m := NewMachine(2)
	var log []int
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Step(100) // now=100
			log = append(log, 0)
			p.Step(100) // now=200
			log = append(log, 0)
		} else {
			for i := 0; i < 4; i++ {
				p.Step(30) // 30,60,90,120
				log = append(log, 1)
			}
		}
	})
	// Expected execution order by virtual completion time of each step:
	// p1@30, p1@60, p1@90, p0@100, p1@120, p0@200.
	want := []int{1, 1, 1, 0, 1, 0}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestTieBreakByID(t *testing.T) {
	m := NewMachine(3)
	var order []int
	m.Run(func(p *Proc) {
		p.Step(10) // all tie at 10
		order = append(order, p.ID())
	})
	// First resumption round is at time 0 for all: IDs in order; after
	// each steps to 10, again in ID order.
	if order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("order = %v, want [0 1 2]", order)
	}
}

func TestWaitUntil(t *testing.T) {
	m := NewMachine(1)
	times := m.Run(func(p *Proc) {
		p.Step(10)
		p.WaitUntil(500)
		p.WaitUntil(100) // no-op: already past
	})
	if times[0] != 500 {
		t.Errorf("time = %d, want 500", times[0])
	}
}

func TestStopFlag(t *testing.T) {
	m := NewMachine(2)
	iters := 0
	m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Step(100)
			p.Machine().SetStop()
			return
		}
		for !p.Machine().Stopped() {
			iters++
			p.Step(10)
			if iters > 1000 {
				t.Error("stop flag never observed")
				return
			}
		}
	})
	if iters == 0 || iters > 20 {
		t.Errorf("idle iterations = %d, want ≈ 10", iters)
	}
}

func TestSharedStateTokenSafety(t *testing.T) {
	// 8 procs increment a plain shared counter 1000 times each; with
	// token discipline no increments are lost despite no atomics.
	m := NewMachine(8)
	counter := 0
	m.Run(func(p *Proc) {
		for i := 0; i < 1000; i++ {
			counter++
			p.Step(uint64(1 + p.ID()))
		}
	})
	if counter != 8000 {
		t.Errorf("counter = %d, want 8000", counter)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []int {
		m := NewMachine(4)
		var trace []int
		m.Run(func(p *Proc) {
			x := uint64(p.ID()*2654435761 + 17)
			for i := 0; i < 50; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				trace = append(trace, p.ID())
				p.Step(x%97 + 1)
			}
		})
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestQuickClockMonotone(t *testing.T) {
	err := quick.Check(func(steps []uint16) bool {
		m := NewMachine(2)
		ok := true
		m.Run(func(p *Proc) {
			prev := p.Now()
			for _, s := range steps {
				p.Step(uint64(s % 1000))
				if p.Now() < prev {
					ok = false
				}
				prev = p.Now()
			}
		})
		return ok
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestInvalidProcCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMachine(0)
}

func TestMachineReuse(t *testing.T) {
	m := NewMachine(2)
	t1 := m.Run(func(p *Proc) { p.Step(10) })
	t2 := m.Run(func(p *Proc) { p.Step(20) })
	if t1[0] != 10 || t2[0] != 20 {
		t.Errorf("t1=%v t2=%v; clocks must reset between runs", t1, t2)
	}
}

func BenchmarkStepOverhead(b *testing.B) {
	m := NewMachine(2)
	b.ResetTimer()
	m.Run(func(p *Proc) {
		for i := 0; i < b.N/2; i++ {
			p.Step(1)
		}
	})
}

func TestBodyPanicPropagates(t *testing.T) {
	m := NewMachine(4)
	defer func() {
		if r := recover(); r != "proc boom" {
			t.Fatalf("recovered %v, want proc boom", r)
		}
	}()
	m.Run(func(p *Proc) {
		if p.ID() == 2 {
			p.Step(5)
			panic("proc boom")
		}
		for !p.Machine().Stopped() {
			p.Step(10)
			if p.Now() > 1000 {
				return // bounded in case propagation fails
			}
		}
	})
	t.Fatal("panic did not propagate")
}
