package analysis_test

import (
	"testing"

	"gowool/internal/analysis"
)

// TestRepoIsWoolvetClean is the meta-test behind `make lint`: the whole
// module must pass every woolvet analyzer. It keeps the annotations and
// the code from drifting apart even when CI runs only `go test`.
func TestRepoIsWoolvetClean(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module walk looks broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, d := range analysis.RunAnalyzers(pkg, analysis.All()) {
			t.Errorf("%s: %s: %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
