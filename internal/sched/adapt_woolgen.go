package sched

import (
	"gowool/internal/core"
	"gowool/internal/gen/ports"
)

// Registered with wool's rank; file order keeps it right after wool in
// the presentation sequence — same scheduler, different port layer.
func init() { register(woolgenSched{}, 0) }

// woolgenSched is the paper's direct task stack behind the
// woolgen-generated monomorphic ports (internal/gen/ports) instead of
// the generic task-port layer: same core.Pool, same protocol, but
// RunRec/RunRange spawn through Spawn*/Join* functions whose private
// fast path flattens to plain descriptor stores and direct body calls
// (DESIGN.md §13). Registering it as its own backend runs the
// generated code under the full conformance, torture, panic and chaos
// surface the registry provides — the generated fast path has to agree
// with the serial reference under every profile the generic ports do.
type woolgenSched struct{}

func (woolgenSched) Name() string { return "woolgen" }
func (woolgenSched) Blurb() string {
	return "direct task stack behind woolgen-generated monomorphic ports: private-path spawn/join flattens to plain stores and direct body calls"
}
func (woolgenSched) Caps() Caps {
	c := woolSched{}.Caps()
	c.GeneratedPorts = true
	return c
}

func (woolgenSched) NewPool(o Options) Pool {
	wp := woolSched{}.NewPool(o).(*woolPool)
	return &woolgenPool{woolPool: *wp}
}

// woolgenPool shares wool's option/stats mapping and overrides only
// the job entry points.
type woolgenPool struct{ woolPool }

func (wp *woolgenPool) RunRec(j RecJob) int64 {
	c := &ports.RecCtx{Leaf: j.Leaf, Split: j.Split}
	return wp.p.Run(func(w *core.Worker) int64 {
		var total int64
		for r := int64(0); r < reps(j.Reps); r++ {
			total += ports.CallRec(w, c, j.Root)
		}
		return total
	})
}

func (wp *woolgenPool) RunRange(j RangeJob) int64 {
	c := &ports.RangeCtx{Leaf: j.Leaf}
	return wp.p.Run(func(w *core.Worker) int64 {
		var total int64
		for r := int64(0); r < reps(j.Reps); r++ {
			total += ports.CallRange(w, c, 0, j.N)
		}
		return total
	})
}
