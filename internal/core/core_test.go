package core

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func serialFib(n int64) int64 {
	if n < 2 {
		return n
	}
	return serialFib(n-1) + serialFib(n-2)
}

// fibDef builds the canonical Wool fib (paper Figure 2).
func fibDef() *TaskDef1 {
	var fib *TaskDef1
	fib = Define1("fib", func(w *Worker, n int64) int64 {
		if n < 2 {
			return n
		}
		fib.Spawn(w, n-2)
		a := fib.Call(w, n-1)
		b := fib.Join(w)
		return a + b
	})
	return fib
}

func TestTaskSize(t *testing.T) {
	size := reflect.TypeOf(Task{}).Size()
	if size != 128 {
		t.Fatalf("Task descriptor is %d bytes, want 128 (adjust the pad)", size)
	}
}

func TestFibSingleWorker(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	fib := fibDef()
	for n := int64(0); n <= 20; n++ {
		got := p.Run(func(w *Worker) int64 { return fib.Call(w, n) })
		if want := serialFib(n); got != want {
			t.Errorf("fib(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFibMultiWorker(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, workers := range []int{2, 3, 4, 8} {
		p := NewPool(Options{Workers: workers})
		fib := fibDef()
		got := p.Run(func(w *Worker) int64 { return fib.Call(w, 22) })
		if want := serialFib(22); got != want {
			t.Errorf("workers=%d: fib(22) = %d, want %d", workers, got, want)
		}
		p.Close()
	}
}

func TestFibMultiWorkerPrivateTasks(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, workers := range []int{2, 4, 7} {
		p := NewPool(Options{Workers: workers, PrivateTasks: true})
		fib := fibDef()
		for rep := 0; rep < 3; rep++ {
			got := p.Run(func(w *Worker) int64 { return fib.Call(w, 21) })
			if want := serialFib(21); got != want {
				t.Errorf("workers=%d rep=%d: fib(21) = %d, want %d", workers, rep, got, want)
			}
		}
		st := p.Stats()
		if st.Spawns == 0 {
			t.Errorf("workers=%d: no spawns recorded", workers)
		}
		p.Close()
	}
}

func TestRepeatedRuns(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	fib := fibDef()
	for i := 0; i < 50; i++ {
		got := p.Run(func(w *Worker) int64 { return fib.Call(w, 15) })
		if want := serialFib(15); got != want {
			t.Fatalf("iteration %d: got %d want %d", i, got, want)
		}
	}
}

// TestStatsAccounting checks the fundamental conservation laws of the
// scheduler counters: every spawn is joined exactly once, and every
// stolen join corresponds to a steal.
func TestStatsAccounting(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4})
	defer p.Close()
	fib := fibDef()
	p.Run(func(w *Worker) int64 { return fib.Call(w, 23) })
	st := p.Stats()

	if st.Spawns != st.Joins() {
		t.Errorf("spawns (%d) != joins (%d)", st.Spawns, st.Joins())
	}
	if st.JoinsStolen != st.Steals {
		t.Errorf("stolen joins (%d) != steals (%d)", st.JoinsStolen, st.Steals)
	}
	wantSpawns := int64(0)
	var count func(n int64) int64
	count = func(n int64) int64 {
		if n < 2 {
			return 0
		}
		return 1 + count(n-1) + count(n-2)
	}
	wantSpawns = count(23)
	if st.Spawns != wantSpawns {
		t.Errorf("spawns = %d, want %d", st.Spawns, wantSpawns)
	}
}

// TestBackoffsRare verifies the paper's observation that back-offs are
// infrequent ("always below 1% of successful steals") — we allow a
// laxer 10% on this adversarial single-core host, mainly checking that
// the ABA guard does not fire constantly.
func TestBackoffsRare(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4})
	defer p.Close()
	fib := fibDef()
	for i := 0; i < 5; i++ {
		p.Run(func(w *Worker) int64 { return fib.Call(w, 22) })
	}
	st := p.Stats()
	if st.Steals > 100 && st.Backoffs > st.Steals/10 {
		t.Errorf("backoffs (%d) exceed 10%% of steals (%d)", st.Backoffs, st.Steals)
	}
}

func TestDepthAndStackDiscipline(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	p.Run(func(w *Worker) int64 {
		if d := w.Depth(); d != 0 {
			t.Errorf("initial depth = %d, want 0", d)
		}
		for i := int64(0); i < 10; i++ {
			noop.Spawn(w, i)
		}
		if d := w.Depth(); d != 10 {
			t.Errorf("depth after 10 spawns = %d, want 10", d)
		}
		var sum int64
		for i := 0; i < 10; i++ {
			sum += noop.Join(w)
		}
		if d := w.Depth(); d != 0 {
			t.Errorf("depth after joins = %d, want 0", d)
		}
		return sum
	})
}

func TestJoinLIFOOrder(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	id := Define1("id", func(w *Worker, x int64) int64 { return x })
	p.Run(func(w *Worker) int64 {
		id.Spawn(w, 1)
		id.Spawn(w, 2)
		id.Spawn(w, 3)
		if got := id.Join(w); got != 3 {
			t.Errorf("first join = %d, want 3 (LIFO)", got)
		}
		if got := id.Join(w); got != 2 {
			t.Errorf("second join = %d, want 2", got)
		}
		if got := id.Join(w); got != 1 {
			t.Errorf("third join = %d, want 1", got)
		}
		return 0
	})
}

func TestAllTaskDefArities(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	d1 := Define1("a1", func(w *Worker, a int64) int64 { return a * 2 })
	d2 := Define2("a2", func(w *Worker, a, b int64) int64 { return a + b })
	d3 := Define3("a3", func(w *Worker, a, b, c int64) int64 { return a + b*c })
	d4 := Define4("a4", func(w *Worker, a, b, c, d int64) int64 { return a + b + c + d })
	p.Run(func(w *Worker) int64 {
		d1.Spawn(w, 21)
		if got := d1.Join(w); got != 42 {
			t.Errorf("d1 = %d, want 42", got)
		}
		d2.Spawn(w, 40, 2)
		if got := d2.Join(w); got != 42 {
			t.Errorf("d2 = %d, want 42", got)
		}
		d3.Spawn(w, 2, 8, 5)
		if got := d3.Join(w); got != 42 {
			t.Errorf("d3 = %d, want 42", got)
		}
		d4.Spawn(w, 10, 10, 10, 12)
		if got := d4.Join(w); got != 42 {
			t.Errorf("d4 = %d, want 42", got)
		}
		if got := d1.Call(w, 5); got != 10 {
			t.Errorf("d1.Call = %d, want 10", got)
		}
		return 0
	})
}

func TestContextTasks(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	type vecs struct{ a, b, out []int64 }
	var addRange *TaskDefC2[vecs]
	addRange = DefineC2("addRange", func(w *Worker, v *vecs, lo, hi int64) int64 {
		if hi-lo <= 4 {
			for i := lo; i < hi; i++ {
				v.out[i] = v.a[i] + v.b[i]
			}
			return 0
		}
		mid := (lo + hi) / 2
		addRange.Spawn(w, v, lo, mid)
		addRange.Call(w, v, mid, hi)
		addRange.Join(w)
		return 0
	})

	const n = 1000
	v := &vecs{a: make([]int64, n), b: make([]int64, n), out: make([]int64, n)}
	for i := range v.a {
		v.a[i] = int64(i)
		v.b[i] = int64(2 * i)
	}
	p := NewPool(Options{Workers: 3})
	defer p.Close()
	p.Run(func(w *Worker) int64 { return addRange.Call(w, v, 0, n) })
	for i := range v.out {
		if v.out[i] != int64(3*i) {
			t.Fatalf("out[%d] = %d, want %d", i, v.out[i], 3*i)
		}
	}
}

func TestJoinAny(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	sq := Define1("sq", func(w *Worker, x int64) int64 { return x * x })
	p.Run(func(w *Worker) int64 {
		sq.Spawn(w, 7)
		if got := w.JoinAny(); got != 49 {
			t.Errorf("JoinAny = %d, want 49", got)
		}
		return 0
	})
}

func TestStackOverflowPanics(t *testing.T) {
	p := NewPool(Options{Workers: 1, StackSize: 8, StrictOverflow: true})
	defer p.Close()
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on task stack overflow with StrictOverflow")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "task pool overflow") {
			t.Fatalf("unexpected overflow panic: %v", r)
		}
	}()
	p.Run(func(w *Worker) int64 {
		for i := int64(0); i < 100; i++ {
			noop.Spawn(w, i)
		}
		return 0
	})
}

func TestUnjoinedTasksPanics(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic when root leaks unjoined tasks")
		}
	}()
	p.Run(func(w *Worker) int64 {
		noop.Spawn(w, 1)
		return 0 // leaked
	})
}

func TestPanicInStolenTaskPropagates(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4})
	defer p.Close()
	var boom *TaskDef1
	boom = Define1("boom", func(w *Worker, depth int64) int64 {
		if depth == 0 {
			panic("kaboom")
		}
		boom.Spawn(w, depth-1)
		boom.Call(w, depth-1)
		boom.Join(w)
		return 0
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate from task tree")
		}
		if fmt.Sprint(r) != "kaboom" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	p.Run(func(w *Worker) int64 { return boom.Call(w, 12) })
}

func TestRunOnClosedPoolPanics(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Run after Close")
		}
	}()
	p.Run(func(w *Worker) int64 { return 0 })
}

func TestConcurrentRunPanics(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Run(func(w *Worker) int64 {
			close(started)
			<-release
			return 0
		})
	}()
	<-started
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on concurrent Run")
			}
		}()
		p.Run(func(w *Worker) int64 { return 0 })
	}()
	close(release)
	wg.Wait()
}

func TestCloseIdempotent(t *testing.T) {
	p := NewPool(Options{Workers: 2})
	p.Close()
	p.Close() // must not hang or panic
}

// TestPrivateTasksStatsSplit verifies that with private tasks enabled
// and a single worker (nothing ever stolen), the overwhelming majority
// of joins take the private no-atomics path — the paper's "all private"
// best case.
func TestPrivateTasksStatsSplit(t *testing.T) {
	p := NewPool(Options{Workers: 1, PrivateTasks: true, InitialPublic: 2})
	defer p.Close()
	fib := fibDef()
	p.Run(func(w *Worker) int64 { return fib.Call(w, 20) })
	st := p.Stats()
	if st.JoinsInlinedPrivate == 0 {
		t.Fatal("no private joins recorded with PrivateTasks enabled")
	}
	if st.JoinsStolen != 0 {
		t.Fatalf("stolen joins on single worker: %d", st.JoinsStolen)
	}
	frac := float64(st.JoinsInlinedPrivate) / float64(st.Joins())
	if frac < 0.95 {
		t.Errorf("private join fraction = %.3f, want >= 0.95 (public=%d private=%d)",
			frac, st.JoinsInlinedPublic, st.JoinsInlinedPrivate)
	}
}

// TestTripWirePublishes verifies that stealing near the public boundary
// causes the owner to publish more descriptors.
func TestTripWirePublishes(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4, PrivateTasks: true, InitialPublic: 1, PublishAmount: 2})
	defer p.Close()
	fib := fibDef()
	for i := 0; i < 5; i++ {
		p.Run(func(w *Worker) int64 { return fib.Call(w, 24) })
	}
	st := p.Stats()
	if st.Steals > 4 && st.Publications == 0 {
		t.Errorf("steals happened (%d) but no trip-wire publications", st.Steals)
	}
}

// TestQuickFibEquivalence property-tests that the scheduler computes
// the same results as serial execution for random inputs and worker
// counts.
func TestQuickFibEquivalence(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	cfg := &quick.Config{MaxCount: 30}
	fib := fibDef()
	err := quick.Check(func(nRaw uint8, wRaw uint8, private bool) bool {
		n := int64(nRaw % 18)
		workers := int(wRaw%4) + 1
		p := NewPool(Options{Workers: workers, PrivateTasks: private})
		defer p.Close()
		got := p.Run(func(w *Worker) int64 { return fib.Call(w, n) })
		return got == serialFib(n)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestQuickTreeSum property-tests random-shaped task trees: a tree
// described by a depth and a pseudo-random skew must sum identically
// under serial and scheduled execution.
func TestQuickTreeSum(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	var tree *TaskDef2
	tree = Define2("tree", func(w *Worker, depth, seed int64) int64 {
		if depth == 0 {
			return seed % 1000
		}
		s1 := seed*6364136223846793005 + 1442695040888963407
		s2 := s1*6364136223846793005 + 1442695040888963407
		// Skew: occasionally recurse deeper on one side only.
		if s1%5 == 0 {
			return tree.Call(w, depth-1, s2)
		}
		tree.Spawn(w, depth-1, s1)
		a := tree.Call(w, depth-1, s2)
		b := tree.Join(w)
		return a + b
	})

	var serialTree func(depth, seed int64) int64
	serialTree = func(depth, seed int64) int64 {
		if depth == 0 {
			return seed % 1000
		}
		s1 := seed*6364136223846793005 + 1442695040888963407
		s2 := s1*6364136223846793005 + 1442695040888963407
		if s1%5 == 0 {
			return serialTree(depth-1, s2)
		}
		return serialTree(depth-1, s2) + serialTree(depth-1, s1)
	}

	cfg := &quick.Config{MaxCount: 25}
	err := quick.Check(func(dRaw uint8, seed int64, wRaw uint8, private bool) bool {
		depth := int64(dRaw%9) + 1
		workers := int(wRaw%4) + 1
		p := NewPool(Options{Workers: workers, PrivateTasks: private})
		defer p.Close()
		got := p.Run(func(w *Worker) int64 { return tree.Call(w, depth, seed) })
		return got == serialTree(depth, seed)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

// TestLeapfrogUnderBlockedJoin builds a workload where the root spawns
// a long-running task that is stolen, then joins it: the root must
// leapfrog into the thief's pool rather than deadlock.
func TestLeapfrogUnderBlockedJoin(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 2})
	defer p.Close()

	var heavy *TaskDef1
	heavy = Define1("heavy", func(w *Worker, depth int64) int64 {
		if depth == 0 {
			time.Sleep(time.Microsecond)
			return 1
		}
		heavy.Spawn(w, depth-1)
		a := heavy.Call(w, depth-1)
		b := heavy.Join(w)
		return a + b
	})

	for i := 0; i < 10; i++ {
		got := p.Run(func(w *Worker) int64 {
			heavy.Spawn(w, 8)
			// Give worker 1 a chance to steal the spawned task while
			// the root dawdles.
			time.Sleep(100 * time.Microsecond)
			return heavy.Join(w)
		})
		if got != 256 {
			t.Fatalf("iteration %d: got %d, want 256", i, got)
		}
	}
	st := p.Stats()
	if st.Steals == 0 {
		t.Log("no steals occurred; leapfrog path not exercised this run (timing-dependent)")
	}
}

func TestSpanProfilerBalancedTree(t *testing.T) {
	p := NewPool(Options{Workers: 1, Span: true})
	defer p.Close()
	sp := p.SpanProfiler()
	sp.Overhead = 0 // test the abstract model only here

	var node *TaskDef1
	node = Define1("node", func(w *Worker, depth int64) int64 {
		if depth == 0 {
			sp.AddWork(time.Millisecond)
			return 1
		}
		node.Spawn(w, depth-1)
		a := node.Call(w, depth-1)
		b := node.Join(w)
		return a + b
	})

	sp.Begin()
	leaves := p.Run(func(w *Worker) int64 { return node.Call(w, 4) })
	work, span0, _ := sp.End()

	if leaves != 16 {
		t.Fatalf("leaves = %d, want 16", leaves)
	}
	// Work ≈ 16ms of synthetic leaf work (plus real strand noise);
	// span ≈ 1ms (the critical path passes through one leaf).
	if work < 16*time.Millisecond {
		t.Errorf("work = %v, want >= 16ms", work)
	}
	if span0 < time.Millisecond || span0 > 4*time.Millisecond {
		t.Errorf("span0 = %v, want ≈ 1ms (critical path of one leaf)", span0)
	}
	par := float64(work) / float64(span0)
	if par < 8 || par > 17 {
		t.Errorf("parallelism = %.1f, want ≈ 16", par)
	}
}

func TestSpanProfilerOverheadModel(t *testing.T) {
	p := NewPool(Options{Workers: 1, Span: true})
	defer p.Close()
	sp := p.SpanProfiler()
	sp.Overhead = 10 * time.Millisecond // huge: everything serializes

	var node *TaskDef1
	node = Define1("node2", func(w *Worker, depth int64) int64 {
		if depth == 0 {
			sp.AddWork(time.Millisecond)
			return 1
		}
		node.Spawn(w, depth-1)
		a := node.Call(w, depth-1)
		b := node.Join(w)
		return a + b
	})

	sp.Begin()
	p.Run(func(w *Worker) int64 { return node.Call(w, 4) })
	work, span0, spanO := sp.End()

	if spanO < work {
		t.Errorf("with huge overhead, spanO (%v) should equal work (%v): fully serialized", spanO, work)
	}
	if span0 >= spanO {
		t.Errorf("span0 (%v) should be < spanO (%v)", span0, spanO)
	}
}

// TestQuickSpanInvariants property-tests span0 ≤ spanO ≤ work for
// random task trees.
func TestQuickSpanInvariants(t *testing.T) {
	err := quick.Check(func(dRaw, seed uint8) bool {
		depth := int64(dRaw%5) + 1
		p := NewPool(Options{Workers: 1, Span: true})
		defer p.Close()
		sp := p.SpanProfiler()
		sp.Overhead = 500 * time.Microsecond

		var node *TaskDef2
		node = Define2("q", func(w *Worker, d, s int64) int64 {
			if d == 0 {
				sp.AddWork(time.Duration(s%7+1) * 100 * time.Microsecond)
				return 1
			}
			node.Spawn(w, d-1, s*31+1)
			a := node.Call(w, d-1, s*17+3)
			b := node.Join(w)
			return a + b
		})
		sp.Begin()
		p.Run(func(w *Worker) int64 { return node.Call(w, depth, int64(seed)) })
		work, span0, spanO := sp.End()
		return span0 <= spanO && spanO <= work && span0 > 0
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

// TestHighContentionStress hammers a pool with many tiny tasks and
// verifies result integrity — the closest native analogue of the
// paper's stress benchmark.
func TestHighContentionStress(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 8, PrivateTasks: true, InitialPublic: 1})
	defer p.Close()

	var tree *TaskDef1
	tree = Define1("stress", func(w *Worker, depth int64) int64 {
		if depth == 0 {
			s := int64(0)
			for i := int64(0); i < 64; i++ {
				s += i
			}
			return s / s // 1... (64*63/2)/(same) = 1
		}
		tree.Spawn(w, depth-1)
		a := tree.Call(w, depth-1)
		b := tree.Join(w)
		return a + b
	})

	reps := 200
	if testing.Short() {
		reps = 20
	}
	for i := 0; i < reps; i++ {
		got := p.Run(func(w *Worker) int64 { return tree.Call(w, 6) })
		if got != 64 {
			t.Fatalf("rep %d: got %d, want 64 leaves", i, got)
		}
	}
}

func BenchmarkSpawnJoinPublic(b *testing.B) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	b.ResetTimer()
	p.Run(func(w *Worker) int64 {
		for i := 0; i < b.N; i++ {
			noop.Spawn(w, 1)
			noop.Join(w)
		}
		return 0
	})
}

func BenchmarkSpawnJoinPrivate(b *testing.B) {
	p := NewPool(Options{Workers: 1, PrivateTasks: true})
	defer p.Close()
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	b.ResetTimer()
	p.Run(func(w *Worker) int64 {
		for i := 0; i < b.N; i++ {
			noop.Spawn(w, 1)
			noop.Join(w)
		}
		return 0
	})
}

func BenchmarkFib25SingleWorker(b *testing.B) {
	p := NewPool(Options{Workers: 1, PrivateTasks: true})
	defer p.Close()
	fib := fibDef()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(func(w *Worker) int64 { return fib.Call(w, 25) })
	}
}
