package generated // want `carries no //woolvet:generated`

// A file following the *_gen.go output convention without a
// provenance header: flagged, because an unsealed "generated" file
// defeats the hand-edit check.
func unsealed() int { return 3 }
