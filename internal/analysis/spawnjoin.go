package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// SpawnJoin checks the Wool idiom in taskdef-generated and workload
// code: every task spawned in a function body must be joined on every
// return path, because the direct task stack's strict stack discipline
// makes an unjoined spawn a protocol violation — Pool.Run panics on
// unjoined tasks only at the root, while an interior leak silently
// corrupts top/bot bookkeeping.
//
// The analyzer recognizes the codebase's call shapes by name — method
// calls (d.Spawn*, the TaskDef idiom) and package-scope calls
// (Spawn*, the woolgen-generated idiom) alike:
//
//   - d.Spawn*(...) or Spawn*(...) as a statement increments the
//     outstanding count
//     (continuation-style spawns, whose result is returned — the
//     cilkstyle Step idiom — manage their joins through Sync steps and
//     are exempt);
//   - d.Join*(...) anywhere in a statement decrements it;
//   - Sync / Taskwait are barriers clearing all outstanding spawns;
//   - a loop whose body has surplus joins drains the outstanding
//     count (the spawn-loop/join-loop idiom of nqueens); spawn-surplus
//     loops are covered by the never-joins rule below, since a loop
//     may iterate zero times.
//
// The outstanding count is a lower bound and branch merges take the
// minimum, so a report means every path leaks: this deliberately
// trades a class of false negatives (asymmetric branches that join on
// one arm only) for zero false positives on correlated spawn/join
// conditionals like cholesky's mulsubStep. A second rule flags
// functions that spawn but contain no join or barrier at all.
//
// It also flags spawn arguments that capture a loop variable shared
// across iterations (declared outside the loop and assigned by its
// post statement or range clause): the spawned task runs concurrently
// with later iterations, so it may observe values from a different
// iteration. Per-iteration variables (Go >= 1.22 "for i := ..." and
// range definitions) are safe and not flagged.
//
// Functions themselves named Spawn*/Join*/Sync/Taskwait are forwarding
// shims (the sched port layer, the scheduler internals) and are
// skipped.
var SpawnJoin = &Analyzer{
	Name: "spawnjoin",
	Doc:  "every Spawn has a Join/Sync on all return paths; no shared-loop-variable capture into task arguments",
	Run:  runSpawnJoin,
}

func runSpawnJoin(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isShimName(fd.Name.Name) {
				continue
			}
			checkFuncBody(pass, fd.Name.Name, fd.Body)
		}
	}
	// Function literals are independent units (the workload bodies are
	// literals passed to Define*); analyze each body on its own.
	walkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			name := "func literal"
			if fd := enclosingFuncDecl(stack); fd != nil {
				if isShimName(fd.Name.Name) {
					return true
				}
				name = "func literal in " + fd.Name.Name
			}
			checkFuncBody(pass, name, lit.Body)
		}
		return true
	})
}

func isShimName(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "spawn") || strings.HasPrefix(lower, "join") ||
		lower == "sync" || lower == "taskwait"
}

func isSpawnName(name string) bool { return strings.HasPrefix(name, "Spawn") }
func isJoinName(name string) bool  { return strings.HasPrefix(name, "Join") }
func isBarrierName(name string) bool {
	return name == "Sync" || name == "Taskwait"
}

// pending is the abstract state: a lower bound on how many spawned
// tasks are outstanding on the current path. Branch merges take the
// minimum, making this a must-analysis: a report means every path
// reaches the return with tasks unjoined. (A may-analysis would flag
// correct code whose spawn- and join-side conditionals are correlated,
// like cholesky's mulsubStep.) The complementary never-joins rule
// catches the loop-spawn case this lower bound cannot see.
type pending struct {
	n int
}

func (p pending) unjoined() bool { return p.n > 0 }

func merge(a, b pending) pending {
	n := a.n
	if b.n < n {
		n = b.n
	}
	return pending{n: n}
}

// sjScanner walks one function body.
type sjScanner struct {
	pass  *Pass
	name  string
	loops []ast.Node // enclosing loop statements, for capture checks

	// Whole-body totals for the never-joins rule.
	spawns, joins, barriers int
}

func checkFuncBody(pass *Pass, name string, body *ast.BlockStmt) {
	s := &sjScanner{pass: pass, name: name}
	p := pending{}
	terminated := s.stmts(body.List, &p)
	if !terminated && p.unjoined() {
		s.report(body.Rbrace, p)
	}
	if s.spawns > 0 && s.joins == 0 && s.barriers == 0 {
		s.pass.Report(body.Rbrace,
			"%s spawns tasks but contains no Join or Sync/Taskwait barrier at all; the spawned tasks are never joined",
			s.name)
	}
}

func (s *sjScanner) report(pos token.Pos, p pending) {
	s.pass.Report(pos,
		"%s returns with %d unjoined spawned task(s) on every path; every Spawn must be matched by a Join (or a Sync/Taskwait barrier) on all return paths",
		s.name, p.n)
}

// stmts scans a statement list, returning whether it definitely
// terminates (ends in return or panic).
func (s *sjScanner) stmts(list []ast.Stmt, p *pending) bool {
	for _, st := range list {
		if s.stmt(st, p) {
			return true
		}
	}
	return false
}

func (s *sjScanner) stmt(st ast.Stmt, p *pending) (terminated bool) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		s.countStmt(st, p)
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.GoStmt, *ast.DeferStmt:
		s.countStmt(st, p)
	case *ast.ReturnStmt:
		s.countStmt(st, p)
		if p.unjoined() {
			s.report(st.Pos(), *p)
		}
		return true
	case *ast.BlockStmt:
		return s.stmts(st.List, p)
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt, p)
	case *ast.IfStmt:
		if st.Init != nil {
			s.countStmt(st.Init, p)
		}
		s.countExpr(st.Cond, p)
		thenP := *p
		thenTerm := s.stmts(st.Body.List, &thenP)
		elseP := *p
		elseTerm := false
		if st.Else != nil {
			elseTerm = s.stmt(st.Else, &elseP)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*p = elseP
		case elseTerm:
			*p = thenP
		default:
			*p = merge(thenP, elseP)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.countStmt(st.Init, p)
		}
		s.loop(st, st.Body, p)
	case *ast.RangeStmt:
		s.loop(st, st.Body, p)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.countStmt(st.Init, p)
		}
		s.branches(st.Body, p)
	case *ast.TypeSwitchStmt:
		s.branches(st.Body, p)
	case *ast.SelectStmt:
		s.branches(st.Body, p)
	}
	return false
}

// loop folds a loop body into the surrounding lower bound. A loop may
// iterate zero times, so spawn-surplus bodies contribute nothing to
// the must-count (the never-joins rule covers spawn loops that never
// join); join-surplus bodies may drain any number of outstanding
// spawns (the join-loop of the spawn-loop/join-loop idiom).
func (s *sjScanner) loop(loopNode ast.Node, body *ast.BlockStmt, p *pending) {
	s.loops = append(s.loops, loopNode)
	inner := pending{}
	s.stmts(body.List, &inner)
	s.loops = s.loops[:len(s.loops)-1]
	if inner.n < 0 {
		p.n += inner.n
	}
}

// branches merges the arms of a switch/select conservatively: the
// resulting state is the worst arm (and falling through with no arm
// taken).
func (s *sjScanner) branches(body *ast.BlockStmt, p *pending) {
	out := *p // no case taken
	allTerm := true
	hasArm := false
	for _, st := range body.List {
		var arm []ast.Stmt
		switch cc := st.(type) {
		case *ast.CaseClause:
			arm = cc.Body
		case *ast.CommClause:
			arm = cc.Body
		default:
			continue
		}
		hasArm = true
		armP := *p
		if !s.stmts(arm, &armP) {
			allTerm = false
			out = merge(out, armP)
		}
	}
	if hasArm && !allTerm {
		*p = out
	}
}

// countStmt counts spawn/join/barrier calls in a statement, excluding
// nested function literals (their bodies are separate units) and
// nested statements (handled by the scanner).
func (s *sjScanner) countStmt(st ast.Stmt, p *pending) {
	s.countNode(st, p, true)
}

func (s *sjScanner) countExpr(e ast.Expr, p *pending) {
	if e != nil {
		s.countNode(e, p, false)
	}
}

// countNode walks a single statement or expression subtree.
// statementSpawns controls whether spawn calls count: a spawn only
// creates an outstanding join obligation when used as a statement
// (direct style); spawns whose value is consumed are the cilkstyle
// continuation idiom.
func (s *sjScanner) countNode(n ast.Node, p *pending, statementSpawns bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			// Method calls (d.Spawn(...), the TaskDef idiom) and free
			// functions (SpawnFib(...), the woolgen-generated idiom)
			// both count: generated ports put the spawn/join surface in
			// package scope, so workload bodies calling them must keep
			// the same balance discipline.
			var name string
			switch fun := c.Fun.(type) {
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			case *ast.Ident:
				name = fun.Name
			default:
				return true
			}
			switch {
			case isBarrierName(name):
				p.n = 0
				s.barriers++
			case isJoinName(name):
				p.n--
				s.joins++
			case isSpawnName(name):
				if statementSpawns && isStatementCall(n, c) {
					p.n++
					s.spawns++
					s.checkCapture(c)
				}
			}
		}
		return true
	})
}

// isStatementCall reports whether call is the entire statement (its
// result, if any, is discarded) — n is the root node countNode was
// invoked on.
func isStatementCall(n ast.Node, call *ast.CallExpr) bool {
	es, ok := n.(*ast.ExprStmt)
	return ok && es.X == call
}

// checkCapture flags spawn arguments that capture a loop variable
// shared across iterations of an enclosing loop.
func (s *sjScanner) checkCapture(call *ast.CallExpr) {
	if len(s.loops) == 0 {
		return
	}
	shared := map[string]bool{}
	for _, loop := range s.loops {
		collectSharedLoopVars(loop, shared)
	}
	if len(shared) == 0 {
		return
	}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if id, ok := n.X.(*ast.Ident); ok && shared[id.Name] {
						s.pass.Report(n.Pos(),
							"spawn argument takes the address of loop variable %s, which is shared across iterations; the task runs concurrently with later iterations",
							id.Name)
					}
				}
			case *ast.FuncLit:
				ast.Inspect(n.Body, func(b ast.Node) bool {
					switch b := b.(type) {
					case *ast.SelectorExpr:
						// Only the base can be a captured variable;
						// b.Sel is a field/method name.
						ast.Inspect(b.X, func(x ast.Node) bool {
							if id, ok := x.(*ast.Ident); ok && shared[id.Name] {
								s.pass.Report(id.Pos(),
									"spawn argument closure captures loop variable %s, which is shared across iterations; the task runs concurrently with later iterations",
									id.Name)
							}
							return true
						})
						return false
					case *ast.Ident:
						if shared[b.Name] {
							s.pass.Report(b.Pos(),
								"spawn argument closure captures loop variable %s, which is shared across iterations; the task runs concurrently with later iterations",
								b.Name)
						}
					}
					return true
				})
				return false
			}
			return true
		})
	}
}

// collectSharedLoopVars records the loop's iteration variables that
// are declared outside the loop (assigned, not defined, by its
// clauses) — those are shared across iterations.
func collectSharedLoopVars(loop ast.Node, out map[string]bool) {
	addIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			out[id.Name] = true
		}
	}
	switch loop := loop.(type) {
	case *ast.ForStmt:
		// Variables defined by the loop's own init ("for i := ...")
		// are per-iteration since Go 1.22 and therefore safe.
		defined := map[string]bool{}
		switch init := loop.Init.(type) {
		case *ast.AssignStmt:
			if init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						defined[id.Name] = true
					}
				}
			} else {
				for _, lhs := range init.Lhs {
					addIdent(lhs)
				}
			}
		}
		addShared := func(e ast.Expr) {
			if id, ok := e.(*ast.Ident); ok && !defined[id.Name] {
				addIdent(id)
			}
		}
		switch post := loop.Post.(type) {
		case *ast.IncDecStmt:
			addShared(post.X)
		case *ast.AssignStmt:
			for _, lhs := range post.Lhs {
				addShared(lhs)
			}
		}
	case *ast.RangeStmt:
		if loop.Tok == token.ASSIGN {
			addIdent(loop.Key)
			addIdent(loop.Value)
		}
	}
}
