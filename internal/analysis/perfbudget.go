package analysis

// The perfbudget pass turns the fast path's performance envelope into
// a structural invariant. The paper's result depends on a spawn/join
// costing a handful of nanoseconds; one lost inline or one value
// spilled to the heap erases it, and the perfgate benchmark only
// notices after the fact, with timing noise. This pass asks the
// compiler directly: it runs "go build -gcflags=-m=2" on the package
// and checks the recorded decisions against two annotations:
//
//	//woolvet:inline    the compiler must report "can inline" for the
//	                    function (the cannot-inline reason is quoted
//	                    in the diagnostic when it does not)
//	//woolvet:noescape  no value inside the function's body may
//	                    escape to the heap ("escapes to heap" /
//	                    "moved to heap")
//
// The shell-out is skipped entirely for packages with no annotations,
// and its output is cached per directory — under Go's build cache the
// compiler replays -m output, so repeat runs are cheap. The raw logs
// are retained for "woolvet -mlog" and the CI failure artifact.

import (
	"fmt"
	"go/ast"
	"go/types"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
)

var PerfBudget = &Analyzer{
	Name: "perfbudget",
	Doc:  "woolvet:inline functions must inline and woolvet:noescape functions must not allocate (go build -gcflags=-m)",
	Run:  runPerfBudget,
}

// mDiag is one parsed compiler diagnostic.
type mDiag struct {
	file string // base name
	line int
	col  int
	msg  string
}

type mResult struct {
	raw   string
	err   error
	diags []mDiag
}

var (
	mCacheMu sync.Mutex
	mCache   = map[string]*mResult{}
)

// CompilerLogs returns the raw -gcflags=-m output captured so far,
// keyed by package directory (for woolvet -mlog and the CI artifact).
func CompilerLogs() map[string]string {
	mCacheMu.Lock()
	defer mCacheMu.Unlock()
	out := make(map[string]string, len(mCache))
	for dir, res := range mCache {
		out[dir] = res.raw
	}
	return out
}

var mLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// compileM runs the compiler over the package directory once and
// parses its inlining/escape diagnostics.
func compileM(dir string) *mResult {
	mCacheMu.Lock()
	defer mCacheMu.Unlock()
	if res, ok := mCache[dir]; ok {
		return res
	}
	cmd := exec.Command("go", "build", "-gcflags=-m=2", ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	res := &mResult{raw: string(out)}
	if err != nil {
		res.err = fmt.Errorf("go build -gcflags=-m=2 in %s: %v\n%s", dir, err, out)
	}
	for _, line := range strings.Split(res.raw, "\n") {
		m := mLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if strings.HasPrefix(msg, " ") {
			continue // indented -m=2 flow traces, not decisions
		}
		res.diags = append(res.diags, mDiag{
			file: filepath.Base(m[1]),
			line: atoiSafe(m[2]),
			col:  atoiSafe(m[3]),
			msg:  msg,
		})
	}
	mCache[dir] = res
	return res
}

func atoiSafe(s string) int {
	n := 0
	for _, r := range s {
		n = n*10 + int(r-'0')
	}
	return n
}

func runPerfBudget(pass *Pass) {
	type target struct {
		fd       *ast.FuncDecl
		inline   bool
		noescape bool
	}
	var targets []target
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			t := target{fd: fd}
			_, t.inline = pass.Ann.FuncDirective(fn, "inline")
			_, t.noescape = pass.Ann.FuncDirective(fn, "noescape")
			if t.inline || t.noescape {
				targets = append(targets, t)
			}
		}
	}
	if len(targets) == 0 || pass.Dir == "" {
		return
	}
	res := compileM(pass.Dir)
	if res.err != nil {
		pass.Report(pass.Files[0].Pos(), "perfbudget: %v", res.err)
		return
	}
	for _, t := range targets {
		namePos := pass.Fset.Position(t.fd.Name.Pos())
		base := filepath.Base(namePos.Filename)
		if t.inline {
			var verdict *mDiag
			for i := range res.diags {
				d := &res.diags[i]
				if d.file != base || d.line != namePos.Line {
					continue
				}
				if strings.HasPrefix(d.msg, "can inline ") {
					verdict = d
					break
				}
				if strings.HasPrefix(d.msg, "cannot inline ") {
					verdict = d
				}
			}
			switch {
			case verdict == nil:
				pass.Report(t.fd.Name.Pos(), "woolvet:inline %s: compiler recorded no inlining decision (dead code?)", t.fd.Name.Name)
			case strings.HasPrefix(verdict.msg, "cannot inline "):
				reason := verdict.msg
				if _, r, ok := strings.Cut(verdict.msg, ": "); ok {
					reason = r
				}
				pass.Report(t.fd.Name.Pos(), "woolvet:inline %s does not inline: %s", t.fd.Name.Name, reason)
			}
		}
		if t.noescape {
			start := namePos.Line
			end := pass.Fset.Position(t.fd.End()).Line
			tf := pass.Fset.File(t.fd.Pos())
			seen := map[int]bool{}
			for _, d := range res.diags {
				if d.file != base || d.line < start || d.line > end || seen[d.line] {
					continue
				}
				msg, escapes := escapeMsg(d.msg)
				if !escapes {
					continue
				}
				seen[d.line] = true
				pos := t.fd.Name.Pos()
				if d.line <= tf.LineCount() {
					pos = tf.LineStart(d.line)
				}
				pass.Report(pos, "woolvet:noescape %s: %s", t.fd.Name.Name, msg)
			}
		}
	}
}

// escapeMsg recognizes the compiler's heap-escape decisions.
func escapeMsg(msg string) (string, bool) {
	if strings.HasPrefix(msg, "moved to heap: ") {
		return msg, true
	}
	if i := strings.Index(msg, " escapes to heap"); i >= 0 {
		return msg[:i] + " escapes to heap", true
	}
	return "", false
}
