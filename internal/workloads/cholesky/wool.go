package cholesky

import (
	"gowool/internal/core"
)

// WoolSched is the generic factorization instantiated for the direct
// task stack (the default scheduler).
type WoolSched struct {
	*Sched[*core.Worker, *core.TaskDefC3[Arena]]
}

// NewWool builds the task definitions on the direct task stack.
func NewWool() WoolSched {
	return WoolSched{New(core.DefineC3[Arena])}
}

// Factor factors m on the pool.
func (s WoolSched) Factor(p *core.Pool, m *Matrix) {
	s.Sched.Factor(p.Run, m)
}
