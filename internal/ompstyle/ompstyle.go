// Package ompstyle is a task scheduler shaped like the icc OpenMP 3.0
// runtime the paper compares against: tasks are closures routed
// through a central, lock-protected pool shared by the thread team,
// and loop parallelism uses work-sharing (ParallelFor) rather than
// task recursion — exactly how the paper's mm and ssf OpenMP versions
// are written.
//
// The structural costs this baseline reproduces: every task is a heap
// allocation (closure + descriptor), every submission and retrieval
// crosses one global lock, and a taskwait helps by executing arbitrary
// queued tasks (OpenMP's untied-task behaviour), with the attendant
// contention when many fine-grained tasks hit the pool at once.
package ompstyle

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gowool/internal/chaos"
	"gowool/internal/poolerr"
	"gowool/internal/trace"
)

// Task is a queued task: a closure plus the parent link used by
// Taskwait's completion counting.
type Task struct {
	fn     func(*Context)
	parent *Task
	// children counts outstanding child tasks (spawned minus completed).
	// woolvet:atomic
	children atomic.Int64
}

// Context is the execution context of a task (or the master function):
// the handle through which the body spawns tasks, waits, and runs
// parallel loops. wi is the team-member index executing the task
// (master is 0), used to route trace events to the right ring.
type Context struct {
	pool *Pool
	cur  *Task
	wi   int
}

// Stats are the scheduler's event counters.
type Stats struct {
	Spawns     int64
	Executed   int64
	WaitLoops  int64 // Taskwait help-iterations that found nothing to run
	ChunksRun  int64 // ParallelFor chunks executed
	MaxQueued  int64 // high-water mark of the central queue
	LockPasses int64 // queue lock acquisitions
}

// Pool is an OpenMP-style thread team with a central task pool. The
// central lock contention is the point of this baseline, but the stats
// counters are kept a cache line away from the queue (enforced by the
// woolvet layoutguard pass) so counter traffic does not add incidental
// invalidations on top of the modelled cost.
type Pool struct {
	opts Options
	// rings holds one trace ring per team member (nil when tracing is
	// off). Set once at construction, read-only afterwards.
	rings []*trace.Ring
	// agents holds one chaos agent per team member (nil when fault
	// injection is off). Set once at construction, read-only afterwards;
	// each agent is consulted only by its member's goroutine.
	agents []*chaos.Agent

	// woolvet:cacheline group=queue
	mu sync.Mutex
	// The central queue is the whole team's shared state; every access
	// must hold mu (publication pass, mutex word).
	// woolvet:published-by mu
	queue []*Task

	_ [64]byte // pad: end of the central-queue group

	// woolvet:cacheline group=counters
	// woolvet:atomic
	spawns atomic.Int64
	// woolvet:atomic
	executed atomic.Int64
	// woolvet:atomic
	waitLoops atomic.Int64
	// woolvet:atomic
	chunksRun atomic.Int64
	// woolvet:atomic
	maxQueued atomic.Int64
	// woolvet:atomic
	lockPasses atomic.Int64

	shutdown atomic.Bool
	running  atomic.Bool
	wg       sync.WaitGroup

	// First-panic capture: a panicking task body poisons the pool (the
	// task tree it abandons may be incomplete); Run re-raises the value
	// and later Runs fail fast.
	panicOnce sync.Once
	panicVal  any
	panicked  atomic.Bool
}

// recordPanic captures the first panic value and poisons the pool.
func (p *Pool) recordPanic(r any) {
	p.panicOnce.Do(func() {
		p.panicVal = r
		p.panicked.Store(true)
	})
}

// ring returns team member wi's trace ring, or nil when tracing is off.
func (p *Pool) ring(wi int) *trace.Ring {
	if p.rings == nil {
		return nil
	}
	return p.rings[wi]
}

// agent returns team member wi's chaos agent, or nil when injection is
// off.
func (p *Pool) agent(wi int) *chaos.Agent {
	if p.agents == nil {
		return nil
	}
	return p.agents[wi]
}

// Options configures a Pool.
type Options struct {
	// Workers is the team size; default GOMAXPROCS.
	Workers int
	// QueueSize is the initial capacity of the central task queue. The
	// queue grows on demand — there is no overflow to degrade — making
	// this a pre-allocation hint only.
	QueueSize int
	// MaxIdleSleep caps idle back-off sleeping; default 200µs.
	MaxIdleSleep time.Duration
	// Trace, when non-nil, records scheduler events into per-member
	// rings. This backend emits STEAL with victim -1 (a take from the
	// central queue — there is no per-worker victim) and PARK (an idle
	// member entered its sleep phase). The tracer must have at least
	// Workers rings.
	Trace *trace.Tracer
	// Chaos attaches a woolchaos fault injector perturbing the central
	// queue protocol (PointQueueTake, PointParkDecision). nil disables
	// injection at zero cost.
	Chaos *chaos.Injector
}

func (o Options) defaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxIdleSleep == 0 {
		o.MaxIdleSleep = 200 * time.Microsecond
	}
	return o
}

// NewPool creates the team; the master is the goroutine calling Run.
func NewPool(opts Options) *Pool {
	opts = opts.defaults()
	if opts.Trace != nil && opts.Trace.Workers() < opts.Workers {
		panic("ompstyle: Options.Trace has fewer rings than workers")
	}
	if opts.Chaos != nil && opts.Chaos.Workers() < opts.Workers {
		panic("ompstyle: Options.Chaos has fewer agents than workers")
	}
	p := &Pool{opts: opts}
	if opts.QueueSize > 0 {
		p.queue = make([]*Task, 0, opts.QueueSize)
	}
	if opts.Trace != nil {
		p.rings = make([]*trace.Ring, opts.Workers)
		for i := range p.rings {
			p.rings[i] = opts.Trace.Ring(i)
		}
	}
	if opts.Chaos != nil {
		p.agents = make([]*chaos.Agent, opts.Workers)
		for i := range p.agents {
			p.agents[i] = opts.Chaos.Agent(i)
		}
	}
	p.wg.Add(opts.Workers - 1)
	for i := 1; i < opts.Workers; i++ {
		go p.workerLoop(i)
	}
	return p
}

// Workers returns the team size.
func (p *Pool) Workers() int { return p.opts.Workers }

// Run executes master with a root context and returns its result after
// all transitively spawned tasks have completed.
//
// Abort semantics: a panic in any task body poisons the pool; Run
// re-raises the first panic value after its implicit barrier, and
// every later Run fails fast with a distinct poisoned message. Close
// remains safe on a poisoned pool.
func (p *Pool) Run(master func(*Context) int64) int64 {
	if p.shutdown.Load() {
		panic("ompstyle: Run on closed Pool")
	}
	if p.panicked.Load() {
		panic(fmt.Sprintf("ompstyle: pool poisoned by earlier task panic: %v", p.panicVal))
	}
	if !p.running.CompareAndSwap(false, true) {
		panic(poolerr.ConcurrentRun("ompstyle"))
	}
	defer p.running.Store(false)
	// A panic escaping the master function itself lands here: record
	// it so the team stops and the pool is poisoned (queued tasks of
	// the abandoned tree must not keep running), then re-raise.
	defer func() {
		if r := recover(); r != nil {
			p.recordPanic(r)
			panic(r)
		}
	}()
	root := &Task{}
	tc := &Context{pool: p, cur: root, wi: 0}
	res := master(tc)
	tc.Taskwait() // implicit barrier: no task escapes the run
	if p.panicked.Load() {
		panic(p.panicVal)
	}
	return res
}

// Close stops the team.
func (p *Pool) Close() {
	if p.shutdown.Swap(true) {
		return
	}
	p.wg.Wait()
}

// Stats returns aggregate counters (quiescent pools only).
func (p *Pool) Stats() Stats {
	return Stats{
		Spawns:     p.spawns.Load(),
		Executed:   p.executed.Load(),
		WaitLoops:  p.waitLoops.Load(),
		ChunksRun:  p.chunksRun.Load(),
		MaxQueued:  p.maxQueued.Load(),
		LockPasses: p.lockPasses.Load(),
	}
}

// ResetStats zeroes the counters.
func (p *Pool) ResetStats() {
	p.spawns.Store(0)
	p.executed.Store(0)
	p.waitLoops.Store(0)
	p.chunksRun.Store(0)
	p.maxQueued.Store(0)
	p.lockPasses.Store(0)
}

// push queues t centrally (LIFO end; OpenMP runtimes favour newest
// tasks for locality).
func (p *Pool) push(t *Task) {
	p.mu.Lock()
	p.lockPasses.Add(1)
	p.queue = append(p.queue, t)
	if n := int64(len(p.queue)); n > p.maxQueued.Load() {
		p.maxQueued.Store(n)
	}
	p.mu.Unlock()
}

// tryPop takes the newest queued task, or nil.
func (p *Pool) tryPop() *Task {
	p.mu.Lock()
	p.lockPasses.Add(1)
	n := len(p.queue)
	if n == 0 {
		p.mu.Unlock()
		return nil
	}
	t := p.queue[n-1]
	p.queue[n-1] = nil
	p.queue = p.queue[:n-1]
	p.mu.Unlock()
	return t
}

// execute runs t on team member wi and performs completion accounting.
// The accounting sits in a recovering defer: a panicking task body
// poisons the pool, but its parent's children count must still
// decrement or every ancestor's Taskwait would spin forever (the
// master's implicit barrier included — Run could never re-raise).
func (p *Pool) execute(t *Task, wi int) {
	tc := &Context{pool: p, cur: t, wi: wi}
	defer func() {
		if r := recover(); r != nil {
			p.recordPanic(r)
		}
		p.executed.Add(1)
		if t.parent != nil {
			t.parent.children.Add(-1)
		}
	}()
	t.fn(tc)
	// A task is complete only when its own children are: OpenMP's
	// implicit end-of-task region does not wait, but completion
	// accounting toward the parent's taskwait must. Help until quiet.
	tc.Taskwait()
}

// SpawnTask submits fn as a child task of the current context.
func (tc *Context) SpawnTask(fn func(*Context)) {
	t := &Task{fn: fn, parent: tc.cur}
	tc.cur.children.Add(1)
	tc.pool.spawns.Add(1)
	tc.pool.push(t)
}

// Taskwait blocks until all child tasks of the current context have
// completed, helping by executing queued tasks meanwhile (untied-task
// semantics: any queued task may run here).
func (tc *Context) Taskwait() {
	p := tc.pool
	fails := 0
	for tc.cur.children.Load() > 0 {
		if a := p.agent(tc.wi); a != nil && a.Point(chaos.PointQueueTake) {
			// Fail-one-attempt: treat the queue as momentarily empty.
			fails++
			continue
		}
		if t := p.tryPop(); t != nil {
			if r := p.ring(tc.wi); r != nil {
				r.Record(trace.KindSteal, -1, 0)
			}
			p.execute(t, tc.wi)
			fails = 0
			continue
		}
		p.waitLoops.Add(1)
		fails++
		if fails&0xf == 0 || runtime.GOMAXPROCS(0) == 1 {
			runtime.Gosched()
		}
	}
}

// Schedule selects the ParallelFor distribution, mirroring OpenMP's
// schedule(static) and schedule(dynamic, chunk).
type Schedule int

// Schedules.
const (
	Static Schedule = iota
	Dynamic
)

// ParallelFor runs body(i) for i in [lo, hi) across the team: the
// work-sharing construct the paper's OpenMP mm and ssf use instead of
// task recursion. Static cuts the range into one chunk per team
// member; Dynamic cuts it into chunks of the given size handed out
// through the central pool.
//
// Nested regions must nest through task contexts: call ParallelFor on
// the *Context the enclosing task received, never on an ancestor's —
// waiting on an ancestor's children from inside one of them would
// wait for itself.
func (tc *Context) ParallelFor(lo, hi int64, sched Schedule, chunk int64, body func(i int64)) {
	if hi <= lo {
		return
	}
	n := hi - lo
	switch sched {
	case Static:
		team := int64(tc.pool.opts.Workers)
		per := (n + team - 1) / team
		for c := int64(0); c < team; c++ {
			cl, ch := lo+c*per, lo+(c+1)*per
			if cl >= hi {
				break
			}
			if ch > hi {
				ch = hi
			}
			tc.spawnChunk(cl, ch, body)
		}
	case Dynamic:
		if chunk <= 0 {
			chunk = 1
		}
		for cl := lo; cl < hi; cl += chunk {
			ch := cl + chunk
			if ch > hi {
				ch = hi
			}
			tc.spawnChunk(cl, ch, body)
		}
	}
	tc.Taskwait()
}

func (tc *Context) spawnChunk(lo, hi int64, body func(i int64)) {
	tc.SpawnTask(func(tc2 *Context) {
		for i := lo; i < hi; i++ {
			body(i)
		}
		tc2.pool.chunksRun.Add(1)
	})
}

// workerLoop is the life of team member wi (1..N-1). It also exits on
// poison: a claimed task always completes its accounting (execute
// recovers), so exiting between takes never strands a taskwait.
func (p *Pool) workerLoop(wi int) {
	fails := 0
	for !p.shutdown.Load() && !p.panicked.Load() {
		if a := p.agent(wi); a != nil && a.Point(chaos.PointQueueTake) {
			// Fail-one-attempt: treat the queue as momentarily empty.
			fails++
			continue
		}
		if t := p.tryPop(); t != nil {
			if r := p.ring(wi); r != nil {
				r.Record(trace.KindSteal, -1, 0)
			}
			p.execute(t, wi)
			fails = 0
			continue
		}
		fails++
		switch {
		case fails < 64:
			if runtime.GOMAXPROCS(0) == 1 {
				runtime.Gosched()
			}
		case fails < 1024 || p.opts.MaxIdleSleep <= 0:
			runtime.Gosched()
		default:
			if a := p.agent(wi); a != nil {
				// No park/unpark protocol to force here; the sleep-phase
				// decision only gets delay/yield faults.
				a.Point(chaos.PointParkDecision)
			}
			// Closest analogue of PARK in this backend: the spin phase
			// gives way to sleeping (there is no parking engine here).
			if fails == 1024 {
				if r := p.ring(wi); r != nil {
					r.Record(trace.KindPark, 0, 0)
				}
			}
			d := time.Duration(fails-1023) * time.Microsecond
			if d > p.opts.MaxIdleSleep {
				d = p.opts.MaxIdleSleep
			}
			time.Sleep(d)
		}
	}
	p.wg.Done()
}
