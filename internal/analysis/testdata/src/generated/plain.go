// Package generated is the analysistest fixture for the generated
// pass: provenance hashes must verify on sealed files, *_gen.go files
// must be sealed, and ordinary hand-written files (this one) are left
// alone.
package generated

func plain() int { return ok() + edited() + unsealed() }
