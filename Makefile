GO ?= go

.PHONY: build test race bench all

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the scheduler core (thief/victim protocol, trip wire,
# park/wake handshake).
race:
	$(GO) test -race -count=1 ./internal/core/...

# Machine-readable fast-path/idle-engine numbers for the perf
# trajectory; commit the refreshed BENCH_core.json with perf PRs.
bench:
	$(GO) run ./cmd/woolbench -corejson BENCH_core.json
