package trace

import (
	"fmt"
	"io"
	"strings"
)

// StealMatrix is the worker×worker steal topology extracted from a
// trace: Steals[thief][victim] counts every successful steal (normal
// and leapfrog), Leap[thief][victim] the leapfrog subset. Central-queue
// backends record victim -1; those takes land in the Central column.
type StealMatrix struct {
	Workers int
	Steals  [][]int64 // [thief][victim]
	Leap    [][]int64 // leapfrog subset of Steals
	Central []int64   // per-thief takes from a central queue (victim -1)
}

// StealMatrix builds the steal topology from the tracer's current
// contents (quiescent tracers give exact counts; see Snapshot).
func (t *Tracer) StealMatrix() *StealMatrix {
	n := len(t.rings)
	m := &StealMatrix{
		Workers: n,
		Steals:  make([][]int64, n),
		Leap:    make([][]int64, n),
		Central: make([]int64, n),
	}
	for i := range m.Steals {
		m.Steals[i] = make([]int64, n)
		m.Leap[i] = make([]int64, n)
	}
	for thief, events := range t.Snapshot() {
		for _, e := range events {
			if e.Kind != KindSteal && e.Kind != KindLeapfrog {
				continue
			}
			v := int(e.Arg)
			if v < 0 {
				m.Central[thief]++
				continue
			}
			if v >= n {
				continue // foreign ring contents; ignore
			}
			m.Steals[thief][v]++
			if e.Kind == KindLeapfrog {
				m.Leap[thief][v]++
			}
		}
	}
	return m
}

// Total returns the total number of steals in the matrix (including
// central-queue takes).
func (m *StealMatrix) Total() int64 {
	var s int64
	for i := range m.Steals {
		s += m.Central[i]
		for j := range m.Steals[i] {
			s += m.Steals[i][j]
		}
	}
	return s
}

// WriteText renders the matrix as an aligned table, thieves as rows
// and victims as columns. Cells with leapfrog steals are highlighted
// with a trailing "*N" (N leapfrog steals of the cell's total) — the
// leapfrog edges are the joins that blocked, the paper's LA category.
func (m *StealMatrix) WriteText(w io.Writer) error {
	var b strings.Builder
	hasCentral := false
	for _, c := range m.Central {
		if c != 0 {
			hasCentral = true
		}
	}
	b.WriteString("steal matrix (rows steal from columns; *N marks N leapfrog steals)\n")
	b.WriteString("thief\\victim")
	for v := 0; v < m.Workers; v++ {
		fmt.Fprintf(&b, "%10s", fmt.Sprintf("w%d", v))
	}
	if hasCentral {
		fmt.Fprintf(&b, "%10s", "central")
	}
	b.WriteByte('\n')
	for thief := 0; thief < m.Workers; thief++ {
		fmt.Fprintf(&b, "%-12s", fmt.Sprintf("w%d", thief))
		for v := 0; v < m.Workers; v++ {
			cell := "."
			if s := m.Steals[thief][v]; s != 0 {
				cell = fmt.Sprintf("%d", s)
				if lf := m.Leap[thief][v]; lf != 0 {
					cell += fmt.Sprintf("*%d", lf)
				}
			} else if thief == v {
				cell = "-"
			}
			fmt.Fprintf(&b, "%10s", cell)
		}
		if hasCentral {
			cell := "."
			if c := m.Central[thief]; c != 0 {
				cell = fmt.Sprintf("%d", c)
			}
			fmt.Fprintf(&b, "%10s", cell)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "total steals: %d\n", m.Total())
	_, err := io.WriteString(w, b.String())
	return err
}
