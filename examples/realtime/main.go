// Realtime: the paper's Section II motivation — "many (soft as well as
// hard) real time systems have periodic serialization points when
// input is consumed and output is produced. A natural way to program
// such a system is to parallelize each interval, which then becomes
// the parallel region."
//
// This example runs a sensor-fusion control loop on woolserve, the
// serving layer (gowool.Server): every tick the control stream submits
// its frame's parallel filter region as a request WITH THE TICK'S
// DEADLINE, and a lower-priority telemetry stream files its own frames
// concurrently. Two things the raw pool cannot express fall out:
//
//   - A tick that overruns its budget (a periodic "glitch" frame here
//     carries 100× the work) is aborted mid-flight by its context, the
//     lane's pool is reset, and the loop stays on schedule — a missed
//     deadline costs one frame, not the period.
//   - The two streams are weighted tenants on one worker budget:
//     control owns the larger lane team, so telemetry backlog can
//     never starve it.
//
// The parallel regions are tiny — exactly the load-balancing-
// granularity regime where scheduler overheads decide whether
// parallelism helps at all (paper Figure 1, right).
//
//	go run ./examples/realtime [ticks]
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"time"

	"gowool"
)

const sensors = 64

type frame struct {
	readings [sensors]float64
	filtered [sensors]float64
}

// filterJob wraps one frame's filter pass — an exponential filter
// chain per sensor, ~1µs each (iters=400), as a balanced task tree —
// into a servable request. The serving layer instantiates it for the
// lane's backend; the frame travels by closure.
func filterJob(f *frame, iters int) gowool.Job {
	return gowool.ServeRange(gowool.RangeJob{
		Name: "filter",
		N:    sensors,
		Leaf: func(i int64) int64 {
			x := f.readings[i]
			est := x
			for k := 0; k < iters; k++ {
				est = 0.9*est + 0.1*(x+float64(k%7))
			}
			f.filtered[i] = est
			return 1
		},
	})
}

func main() {
	ticks := 2000
	if len(os.Args) > 1 {
		if v, err := strconv.Atoi(os.Args[1]); err == nil {
			ticks = v
		}
	}

	srv, err := gowool.NewServer(gowool.ServerOptions{
		Workers: runtime.GOMAXPROCS(0),
		Tenants: []gowool.Tenant{
			{Name: "control", Weight: 3},
			{Name: "telemetry", Weight: 1, MaxPending: 8},
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()

	const tickBudget = 2 * time.Millisecond
	var (
		lat      []time.Duration
		missed   int
		shed     int
		fused    float64
		telemOK  int
		telemTks []*gowool.Ticket
	)
	cf, tf := &frame{}, &frame{}
	for t := 0; t < ticks; t++ {
		// "Input is consumed": fresh frames arrive on both streams.
		for i := range cf.readings {
			cf.readings[i] = float64((t*31 + i*17) % 100)
			tf.readings[i] = float64((t*13 + i*29) % 100)
		}
		// Every 97th control frame is a glitch: 500× the work (tens of
		// milliseconds), far past the tick budget. The deadline aborts
		// it mid-flight — generously sized so the abort lands even on
		// a single-CPU host, where delivery waits on the Go runtime
		// preempting the busy worker before the timer goroutine runs.
		iters := 400
		if t%97 == 96 {
			iters = 200000
		}

		// Telemetry files its frame without a deadline; control's
		// request carries the tick budget.
		if tt, err := srv.Submit(context.Background(), "telemetry", filterJob(tf, 400)); err == nil {
			telemTks = append(telemTks, tt)
		}
		ctx, cancel := context.WithTimeout(context.Background(), tickBudget)
		ct, err := srv.Submit(ctx, "control", filterJob(cf, iters))
		if err != nil {
			// Admission control shed the frame (queue full).
			shed++
			cancel()
			continue
		}
		_, werr := ct.Wait()
		cancel()
		switch {
		case werr == nil:
			// "Output is produced": the serialization point.
			var s float64
			for _, v := range cf.filtered {
				s += v
			}
			fused += s / sensors
			lat = append(lat, ct.Latency())
		case errors.Is(werr, context.DeadlineExceeded):
			missed++ // one frame lost, the period holds
		default:
			fmt.Fprintf(os.Stderr, "tick %d: %v\n", t, werr)
			os.Exit(1)
		}

		// Keep the telemetry backlog bounded without blocking the
		// control period.
		if len(telemTks) > 4 {
			if _, err := telemTks[0].Wait(); err == nil {
				telemOK++
			}
			telemTks = telemTks[1:]
		}
	}
	for _, tt := range telemTks {
		if _, err := tt.Wait(); err == nil {
			telemOK++
		}
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		return lat[int(p*float64(len(lat)-1))]
	}
	st := srv.Stats()
	var laneSplit string
	for _, ts := range st.Tenants {
		laneSplit += fmt.Sprintf(" %s=%d", ts.Name, ts.Lanes)
	}
	fmt.Printf("%d ticks, %d sensors/frame, %d lanes (%s )\n", ticks, sensors, st.Lanes, laneSplit)
	fmt.Printf("control: latency p50=%v p90=%v p99=%v max=%v\n", pct(0.50), pct(0.90), pct(0.99), pct(1.0))
	fmt.Printf("control: %d/%d deadlines met, %d aborted mid-flight, %d shed at admission (budget %v)\n",
		len(lat), ticks, missed, shed, tickBudget)
	fmt.Printf("telemetry: %d frames filtered concurrently\n", telemOK)
	fmt.Printf("fused checksum: %.3f\n", fused)
}
