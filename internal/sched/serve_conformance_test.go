package sched_test

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gowool/internal/poolerr"
	"gowool/internal/sched"
	"gowool/internal/steal"
	"gowool/internal/workloads/fibw"
)

// gateRec is a recursion whose inline branch spins on gate at every
// level: it keeps a Run provably in flight (started) until the test
// releases it, then unwinds through a ladder of joins. Completed value
// is depth+1.
func gateRec(started, gate *atomic.Bool, depth int64) sched.RecJob {
	return sched.RecJob{
		Name: "gate",
		Root: depth,
		Leaf: func(n int64) (int64, bool) {
			if n < 0 {
				if started != nil {
					started.Store(true)
				}
				for !gate.Load() {
					runtime.Gosched()
				}
				return 1, true
			}
			if n == 0 {
				return 1, true
			}
			return 0, false
		},
		Split: func(n int64) (inline, spawned int64) { return -1, n - 1 },
	}
}

// TestConcurrentRunTypedError checks the concurrent-Run guard is the
// same typed error on every pooled backend: a Run overlapping another
// panics with an error wrapping poolerr.ErrConcurrentRun, so callers
// (the serving layer above all) can recognize the condition with
// errors.Is instead of matching five backend-specific panic strings.
// gonative has no single-root pool — overlapping Runs are inherently
// safe there, which the test verifies instead of skipping.
func TestConcurrentRunTypedError(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, s := range sched.All() {
		t.Run(s.Name(), func(t *testing.T) {
			p := s.NewPool(sched.Options{Workers: 2})
			defer p.Close()
			if p.Native() == nil {
				var wg sync.WaitGroup
				want := fibw.Serial(12)
				for i := 0; i < 4; i++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if got := p.RunRec(fibw.Job(12, 1)); got != want {
							t.Errorf("concurrent fib(12) = %d, want %d", got, want)
						}
					}()
				}
				wg.Wait()
				return
			}

			var started, gate atomic.Bool
			done := make(chan int64, 1)
			go func() { done <- p.RunRec(gateRec(&started, &gate, 8)) }()
			for !started.Load() {
				runtime.Gosched()
			}
			err := func() (err error) {
				defer func() {
					r := recover()
					if r == nil {
						return
					}
					e, ok := r.(error)
					if !ok {
						t.Errorf("overlapping Run panicked with %T (%v), want an error wrapping poolerr.ErrConcurrentRun", r, r)
						return
					}
					err = e
				}()
				p.RunRec(fibw.Job(5, 1))
				return nil
			}()
			if !errors.Is(err, poolerr.ErrConcurrentRun) {
				t.Fatalf("overlapping Run: err = %v, want errors.Is(..., poolerr.ErrConcurrentRun)", err)
			}
			gate.Store(true)
			if v := <-done; v != 9 {
				t.Fatalf("gated Run = %d, want 9", v)
			}
		})
	}
}

// TestAbortableConformance checks Caps.Serve tells the truth on every
// backend: when set, Pool.Native implements sched.Abortable and the
// full abort lifecycle works (Abort lands mid-Run as a
// *poolerr.AbortError carrying the reason, Poisoned observes it, Reset
// returns the same pool to correct service); when clear, Native must
// not quietly implement the interface (the capability would be
// understated).
func TestAbortableConformance(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	servable := 0
	for _, s := range sched.All() {
		caps := s.Caps()
		t.Run(s.Name(), func(t *testing.T) {
			p := s.NewPool(sched.Options{Workers: 2})
			defer p.Close()
			ab, ok := p.Native().(sched.Abortable)
			if !caps.Serve {
				if ok {
					t.Fatal("Native implements Abortable but Caps.Serve is false")
				}
				return
			}
			if !ok {
				t.Fatal("Caps.Serve set but Native does not implement sched.Abortable")
			}
			servable++

			probe := errors.New("abort probe")
			var started, gate atomic.Bool
			res := make(chan any, 1)
			go func() {
				defer func() { res <- recover() }()
				p.RunRec(gateRec(&started, &gate, 256))
			}()
			for !started.Load() {
				runtime.Gosched()
			}
			if !ab.Abort(probe) {
				t.Fatal("Abort returned false on a healthy running pool")
			}
			if ab.Abort(errors.New("second")) {
				t.Fatal("second Abort on a poisoned pool returned true")
			}
			gate.Store(true)
			r := <-res
			ae, isAbort := r.(*poolerr.AbortError)
			if !isAbort {
				t.Fatalf("aborted Run panicked with %T (%v), want *poolerr.AbortError", r, r)
			}
			if !errors.Is(ae, probe) {
				t.Fatalf("AbortError does not unwrap to the Abort reason: %v", ae)
			}
			if _, poisoned := ab.Poisoned(); !poisoned {
				t.Fatal("Poisoned() = false after an abort")
			}
			if err := ab.Reset(); err != nil {
				t.Fatalf("Reset: %v", err)
			}
			if _, poisoned := ab.Poisoned(); poisoned {
				t.Fatal("still poisoned after Reset")
			}
			want := fibw.Serial(16)
			if got := p.RunRec(fibw.Job(16, 1)); got != want {
				t.Fatalf("post-Reset fib(16) = %d, want %d", got, want)
			}
		})
	}
	if servable < 2 {
		t.Errorf("%d backends advertise Caps.Serve, want at least 2 (wool, woolgen)", servable)
	}
}

// TestCheckOptions pins the fail-fast option validation: a request for
// an unsupported capability — including an unsupported MEMBER of a
// non-empty list, the case the CLIs' old empty-list-only checks let
// fall through silently — is reported before pool construction.
func TestCheckOptions(t *testing.T) {
	wool, _ := sched.Lookup("wool")
	gon, _ := sched.Lookup("gonative")
	wcaps, gcaps := wool.Caps(), gon.Caps()
	if len(gcaps.StealPolicies) != 0 {
		t.Fatal("test premise: gonative advertises no steal policies")
	}

	ok := sched.Options{
		Workers:      2,
		PrivateTasks: true,
		Watchdog:     time.Second,
		Steal:        steal.Config{Policy: wcaps.StealPolicies[0], Amount: steal.AmountOne},
	}
	if err := sched.CheckOptions(wcaps, ok); err != nil {
		t.Fatalf("supported options rejected: %v", err)
	}
	if err := sched.CheckOptions(wcaps, sched.Options{}); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}

	// Membership, not just list presence: wool advertises steal
	// policies and amounts, but not THESE values.
	err := sched.CheckOptions(wcaps, sched.Options{Steal: steal.Config{Policy: "bogus"}})
	if err == nil || !strings.Contains(err.Error(), "Steal.Policy") {
		t.Fatalf("unsupported policy member: err = %v", err)
	}
	err = sched.CheckOptions(wcaps, sched.Options{Steal: steal.Config{Amount: steal.AmountHalf}})
	if err == nil || !strings.Contains(err.Error(), "Steal.Amount") {
		t.Fatalf("unsupported amount member: err = %v", err)
	}

	// Capability-less backend: every knob is a violation, and they are
	// all reported at once (errors.Join).
	err = sched.CheckOptions(gcaps, sched.Options{
		PrivateTasks: true,
		Watchdog:     time.Second,
		Steal:        steal.Config{Policy: wcaps.StealPolicies[0]},
	})
	if err == nil {
		t.Fatal("gonative accepted private tasks + watchdog + steal policy")
	}
	for _, wantSub := range []string{"PrivateTasks", "Watchdog", "Steal.Policy"} {
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("joined error missing %s: %v", wantSub, err)
		}
	}
}
