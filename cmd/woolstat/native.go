package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"gowool/internal/core"
	"gowool/internal/tabulate"
	"gowool/internal/workloads/fibw"
	"gowool/internal/workloads/stress"
)

// runNative executes the selected workload on the real scheduler and
// prints the live counter set, including the idle-engine (Parks,
// Wakes) and victim-retention (RetainedSteals) columns introduced with
// the parked-idle engine.
func runNative() error {
	if runtime.GOMAXPROCS(0) < *workers {
		prev := runtime.GOMAXPROCS(*workers)
		defer runtime.GOMAXPROCS(prev)
	}
	p := core.NewPool(core.Options{Workers: *workers, PrivateTasks: true,
		MaxIdleSleep: 50 * time.Microsecond})
	defer p.Close()

	var name string
	t0 := time.Now()
	switch *workload {
	case "", "fib":
		fib := fibw.NewWool()
		name = fmt.Sprintf("fib(%d)", *n)
		for i := int64(0); i < *reps; i++ {
			got := p.Run(func(w *core.Worker) int64 { return fib.Call(w, *n) })
			if want := fibw.Serial(*n); got != want {
				return fmt.Errorf("fib(%d) = %d, want %d", *n, got, want)
			}
			// Quiesce between repetitions so parks/wakes show up.
			deadline := time.Now().Add(200 * time.Millisecond)
			for p.ParkedWorkers() < *workers-1 && time.Now().Before(deadline) {
				time.Sleep(100 * time.Microsecond)
			}
		}
	case "stress":
		tree := stress.NewWool()
		name = fmt.Sprintf("stress(h=%d,i=%d)x%d", *height, *iters, *reps)
		got := stress.RunWool(p, tree, *height, *iters, *reps)
		if want := stress.SerialReps(*height, *iters, *reps); got != want {
			return fmt.Errorf("stress = %d, want %d", got, want)
		}
	default:
		return fmt.Errorf("-native supports fib and stress, not %q", *workload)
	}
	wall := time.Since(t0)

	st := p.Stats()
	t := tabulate.New(fmt.Sprintf("native counters — %s, %d workers (%v)", name, *workers, wall.Round(time.Millisecond)),
		"counter", "value")
	t.Row("spawns", st.Spawns)
	t.Row("joins inlined private", st.JoinsInlinedPrivate)
	t.Row("joins inlined public", st.JoinsInlinedPublic)
	t.Row("joins stolen", st.JoinsStolen)
	t.Row("steals", st.Steals)
	t.Row("steal attempts", st.StealAttempts)
	t.Row("leap steals", st.LeapSteals)
	t.Row("backoffs", st.Backoffs)
	t.Row("publications", st.Publications)
	t.Row("privatizations", st.Privatizations)
	t.Row("retained steals", st.RetainedSteals)
	t.Row("parks", st.Parks)
	t.Row("wakes", st.Wakes)
	t.Row("parked now", p.ParkedWorkers())
	t.Render(os.Stdout)
	return nil
}
