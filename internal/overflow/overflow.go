// Package overflow centralizes the task-pool overflow policy shared by
// the bounded-pool schedulers (core, chaselev, locksched, sim).
//
// The policy has exactly two arms, chosen by the scheduler's
// StrictOverflow option:
//
//   - degrade (default): the overflowing spawn is executed inline at
//     the spawn point — the serial elision, semantically equivalent for
//     fully-strict spawn/join programs — and an OverflowInlined counter
//     is bumped. The program completes with reduced parallelism instead
//     of dying at an input-dependent depth.
//   - strict: the scheduler panics with the message built here, so
//     capacity bugs in tests and benchmarks fail loudly instead of
//     silently serializing.
//
// Keeping the message in one place guarantees every backend names the
// same two escape hatches.
package overflow

import "fmt"

// PanicMessage is the unified strict-mode overflow panic text.
func PanicMessage(sched string, worker, capacity int) string {
	return fmt.Sprintf(
		"%s: task pool overflow on worker %d (capacity %d); raise the pool capacity (StackSize/DequeSize), or unset StrictOverflow to degrade overflowing spawns to inline serial execution",
		sched, worker, capacity)
}
