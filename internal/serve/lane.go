package serve

import (
	"context"
	"errors"
	"time"

	"gowool/internal/poolerr"
	"gowool/internal/sched"
)

// lane is one worker team slot: a small pool of LaneWidth workers and
// the goroutine that drains requests into it one at a time. The lane
// serializes Run calls onto its pool — concurrency across requests
// comes from the number of lanes.
type lane struct {
	srv  *Server
	idx  int
	tn   *tenant // home team
	opts sched.Options
	pool sched.Pool
	// ab is the pool's request-scoped abort surface, nil when the
	// backend lacks Caps.Serve (then a poisoned pool is replaced
	// instead of Reset).
	ab sched.Abortable
}

// loop drains requests until the server closes, then closes the pool.
func (l *lane) loop() {
	defer l.srv.wg.Done()
	for {
		t := l.next()
		if t == nil {
			l.pool.Close()
			return
		}
		l.serveOne(t)
	}
}

// next blocks for the lane's next request: the home tenant's queue
// first (team affinity), otherwise the most backlogged queue relative
// to its weight (work conservation — an idle team helps the busiest
// tenant rather than idling, which cannot starve its own tenant: a
// home submission wakes a waiter and home work is always preferred).
// Returns nil when the server has closed and the queues are drained.
func (l *lane) next() *Ticket {
	s := l.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t := l.tn.pop(); t != nil {
			return t
		}
		var best *tenant
		var bestScore float64
		for _, tn := range s.tenants {
			if len(tn.q) == 0 {
				continue
			}
			score := float64(len(tn.q)) / float64(tn.weight)
			if best == nil || score > bestScore {
				best, bestScore = tn, score
			}
		}
		if best != nil {
			return best.pop()
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// serveOne runs one request on the lane's pool, threading the
// request's context through the pool's abort machinery and restoring
// the pool to health afterwards.
func (l *lane) serveOne(t *Ticket) {
	if err := t.ctx.Err(); err != nil {
		// Cancelled while queued: fail at dispatch without running.
		l.finish(t, 0, err)
		return
	}

	// Arm the mid-flight cancellation: the context's cancellation
	// callback aborts this lane's pool, and the run unwinds with the
	// *poolerr.AbortError. The fired channel closes only after the
	// callback's Abort returned, so the stop/wait below guarantees the
	// abort cannot land on a LATER request of this lane: either we
	// stop the callback before it ran, or we wait out its poisoning
	// and Reset it away before the next request starts.
	var stop func() bool
	var fired chan struct{}
	if l.ab != nil && t.ctx.Done() != nil {
		ctx, ab, ch := t.ctx, l.ab, make(chan struct{})
		fired = ch
		stop = context.AfterFunc(ctx, func() {
			defer close(ch)
			ab.Abort(ctx.Err())
		})
	}

	val, err := runJob(l.pool, t.job)

	if stop != nil && !stop() {
		<-fired
	}

	// Restore pool health before touching the next request.
	if l.ab != nil {
		if cause, poisoned := l.ab.Poisoned(); poisoned {
			if ae, ok := cause.(*poolerr.AbortError); ok && err != nil {
				// The abort landed before Run's first descriptor (the
				// poisoned-pool entry panic) or mid-flight; either way
				// the request's classifying error is the abort reason.
				err = ae.Reason
				if err == nil {
					err = ae
				}
			}
			if rerr := l.ab.Reset(); rerr != nil {
				l.replacePool()
			}
		}
	} else if err != nil && l.pool.Native() != nil {
		// Backend without the abort surface: a panic poisoned its pool
		// in a backend-specific, unrecoverable way. Per-request
		// isolation still holds — replace the pool wholesale.
		l.replacePool()
	}

	l.finish(t, val, err)
}

// finish publishes the request's outcome and counts it.
func (l *lane) finish(t *Ticket, val int64, err error) {
	tn := t.tn
	switch {
	case err == nil:
		tn.completed.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		tn.cancelled.Add(1)
	default:
		tn.failed.Add(1)
	}
	t.val, t.err = val, err
	t.latency = time.Since(t.submitted)
	close(t.done)
}

// replacePool swaps in a fresh pool built from the lane's recorded
// options and closes the old one (closing a poisoned pool is safe:
// its workers are released by Close, see the core poison gate).
func (l *lane) replacePool() {
	old := l.pool
	l.pool = l.srv.sch.NewPool(l.opts)
	l.ab = nil
	if l.srv.caps.Serve {
		l.ab, _ = l.pool.Native().(sched.Abortable)
	}
	old.Close()
}

// runJob runs the request's root on the pool, converting the
// scheduler's panic-based failure surface into an error: a
// *poolerr.AbortError (request cancellation) unwraps to its reason,
// anything else becomes a *PanicError.
func runJob(p sched.Pool, j Job) (v int64, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if ae, ok := r.(*poolerr.AbortError); ok {
			if ae.Reason != nil {
				err = ae.Reason
			} else {
				err = ae
			}
			return
		}
		err = &PanicError{Val: r}
	}()
	return j.runOn(p), nil
}
