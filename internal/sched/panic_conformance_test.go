package sched_test

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gowool/internal/sched"
	"gowool/internal/trace"
)

// panicJob builds a binary tree RecJob whose bombIndex-th leaf panics
// with val; every other leaf returns 1.
func panicJob(height int64, bombIndex int64, val any) sched.RecJob {
	var leafNo atomic.Int64
	return sched.RecJob{
		Name: "panic-tree", Root: height,
		Leaf: func(h int64) (int64, bool) {
			if h > 0 {
				return 0, false
			}
			if leafNo.Add(1)-1 == bombIndex {
				panic(val)
			}
			return 1, true
		},
		Split: func(h int64) (inline, spawned int64) { return h - 1, h - 1 },
	}
}

// recoverFrom runs f and returns what it panicked with (nil = no panic).
func recoverFrom(f func()) (r any) {
	defer func() { r = recover() }()
	f()
	return nil
}

// closeWithin fails the test if p.Close does not return in time — the
// signature of a worker goroutine killed by an unrecovered panic.
func closeWithin(t *testing.T, name string, p sched.Pool) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("%s: Close hung after a task panic", name)
	}
}

// TestPanicInRootPropagates: a panic raised in the root region of the
// computation (the very first leaf, before any task can be spawned or
// stolen) must surface from RunRec on every backend — not corrupt the
// pool silently. Pooled backends must then be poisoned against reuse;
// the goroutine baseline has no pool state, so reuse keeps working.
func TestPanicInRootPropagates(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, s := range sched.All() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			p := s.NewPool(sched.Options{Workers: 4})
			j := panicJob(4, 0, "root boom")
			r := recoverFrom(func() { p.RunRec(j) })
			if r == nil {
				t.Fatal("panic did not propagate from RunRec")
			}
			if fmt.Sprint(r) != "root boom" {
				t.Fatalf("RunRec re-raised %v, want root boom", r)
			}
			if p.Native() != nil {
				r = recoverFrom(func() { p.RunRec(panicJob(4, -1, nil)) })
				if r == nil {
					t.Fatal("poisoned pool accepted another RunRec")
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "pool poisoned by earlier task panic") {
					t.Fatalf("poisoned RunRec panicked with %v, want the poisoned message", r)
				}
			} else {
				// No pool state to poison: the baseline must keep working.
				if got := p.RunRec(panicJob(4, -1, nil)); got != 16 {
					t.Fatalf("post-panic RunRec = %d, want 16", got)
				}
			}
			closeWithin(t, s.Name(), p)
		})
	}
}

// TestPanicInSpawnedLeafPropagates: a panic deep in the task tree —
// inside work that is routinely spawned, stolen and joined — must
// re-raise from RunRec on every backend with the original panic value,
// and Close must still complete (no worker goroutine may die holding
// the panic). Run under -race this also checks the recover/transfer
// paths are properly synchronized.
func TestPanicInSpawnedLeafPropagates(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	type marker struct{ which string }
	for _, s := range sched.All() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			want := &marker{which: s.Name()}
			p := s.NewPool(sched.Options{Workers: 4})
			// Height 8 = 256 leaves; the bomb sits mid-tree so plenty of
			// spawns precede and follow it in program order.
			j := panicJob(8, 100, want)
			r := recoverFrom(func() { p.RunRec(j) })
			if r == nil {
				t.Fatal("panic did not propagate from RunRec")
			}
			if r != want {
				t.Fatalf("RunRec re-raised %v, want the original panic value", r)
			}
			closeWithin(t, s.Name(), p)
		})
	}
}

// TestTraceConformance: every backend claiming Caps.Trace must accept
// a tracer without changing results and must record events into it (at
// least its idle workers' PARK transitions after the run); backends
// without the capability must leave the tracer untouched.
func TestTraceConformance(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, s := range sched.All() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			tr := trace.New(4, 1<<12)
			p := s.NewPool(sched.Options{Workers: 4, Trace: tr})
			j := sched.RecJob{
				Name: "tree", Root: 10,
				Leaf: func(h int64) (int64, bool) {
					if h == 0 {
						return 1, true
					}
					return 0, false
				},
				Split: func(h int64) (inline, spawned int64) { return h - 1, h - 1 },
			}
			if got := p.RunRec(j); got != 1<<10 {
				t.Fatalf("traced RunRec = %d, want %d", got, 1<<10)
			}
			if !s.Caps().Trace {
				p.Close()
				if n := countEvents(tr); n != 0 {
					t.Fatalf("Caps.Trace false but %d events were recorded", n)
				}
				return
			}
			// Idle workers reach their sleep phase (PARK) within a few
			// thousand failed steal attempts; give them a moment.
			deadline := time.Now().Add(2 * time.Second)
			for countEvents(tr) == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			p.Close()
			if n := countEvents(tr); n == 0 {
				t.Fatal("Caps.Trace set but no events were recorded")
			}
		})
	}
}

func countEvents(tr *trace.Tracer) int {
	n := 0
	for _, evs := range tr.Snapshot() {
		n += len(evs)
	}
	return n
}
