package mm

import (
	"runtime"
	"testing"

	"gowool/internal/core"
)

// TestGeneratedPortMatchesSerial runs the multiply through the
// woolgen-generated monomorphic port (SpawnRows/JoinRows/CallRows) and
// checks the result element-wise against the reference.
func TestGeneratedPortMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	m := New(33)
	want := referenceMultiply(m)

	p := core.NewPool(core.Options{Workers: 4, PrivateTasks: true})
	defer p.Close()
	rows := p.Run(func(w *core.Worker) int64 { return CallRows(w, m, 0, m.N) })
	if rows != m.N {
		t.Fatalf("generated port did %d rows, want %d", rows, m.N)
	}
	if d := maxDiff(m.C, want); d > 1e-9 {
		t.Errorf("generated port result off by %g", d)
	}
}
