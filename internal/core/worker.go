package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"gowool/internal/chaos"
	"gowool/internal/overflow"
	"gowool/internal/steal"
	"gowool/internal/trace"
)

// Worker is one scheduler worker. Worker 0 is driven by the goroutine
// that calls Pool.Run; the remaining workers are goroutines created by
// NewPool that steal until the pool is closed.
//
// The fields split into four groups, separated by cache-line pads so
// the owner's push/pop traffic and the thieves' probe traffic never
// share a line (checked by the woolvet layoutguard pass over the
// cacheline group annotations below):
//   - immutable after construction (pool, idx, idle, tasks backing
//     array): read by everyone, written by nobody after NewPool;
//   - owner-private (top, pubShadow, steal policy, counters,
//     profiling state): plain access only, touched exclusively by the
//     goroutine driving this worker;
//   - thief-shared protocol words (bot, publicLimit, morePublic):
//     atomics probed by every thief on every attempt;
//   - thief-side counters (stealAttempts, steals, ...): atomics this
//     worker bumps while acting as a thief, kept off the protocol line
//     so counter flushes do not invalidate it under the probing
//     thieves.
type Worker struct {
	// woolvet:cacheline group=immutable
	pool *Pool
	idx  int

	// idle is the pool's parking engine, or nil when parking is
	// disabled (Options.Parking, single-worker pools).
	idle *idleEngine

	// trc is this worker's wooltrace ring, or nil when tracing is
	// disabled (Options.Trace). The pointer is set once in NewPool and
	// only this worker's driving goroutine records into it; nil-ness is
	// the entire disabled-path cost (TestTraceOverheadDisabled).
	trc *trace.Ring

	// chs is this worker's chaos fault-injection agent, or nil when
	// injection is disabled (Options.Chaos). Same discipline and same
	// disabled-path cost as trc: set once in NewPool, consulted only by
	// this worker's driving goroutine, nil-checked at every hook site
	// (TestChaosOverheadDisabled).
	chs *chaos.Agent

	// tasks is the direct task stack: descriptors stored inline, strict
	// stack discipline. Fixed capacity (Options.StackSize); an
	// overflowing spawn degrades to inline serial execution (see ovf),
	// or panics under Options.StrictOverflow.
	tasks []Task

	_ [64]byte // pad: end of the immutable group

	// top indexes the next free descriptor. Private to the owner: this
	// is the decoupling the paper gets from synchronizing on the task
	// descriptor instead of on the indices.
	// woolvet:cacheline group=owner
	// woolvet:owner
	top int

	// pubShadow is the owner's private shadow of publicLimit. The owner
	// is the sole writer of publicLimit, so the spawn fast path and the
	// revocable cut-off compare against this plain copy instead of
	// paying an atomic load per spawn; the atomic below exists for the
	// thieves. Invariant (owner's view): pubShadow == publicLimit.
	// woolvet:owner
	pubShadow int64

	// inlineRun counts consecutive inlined public joins; a long run is
	// the signal that the public boundary is too high and can be pulled
	// back down (the revocable cut-off of Section III-B).
	// woolvet:owner
	inlineRun int

	// abortTick is the owner's countdown to the next poison check
	// (pollAbort, abort.go): the request-scoped abort token is loaded
	// only every abortCheckPeriod-th generic join, keeping the check
	// off the perf-gated join ladder's measured cost.
	// woolvet:owner
	abortTick int

	// pol is the victim-selection policy (internal/steal): the xorshift
	// stream, retention slot / scan cursor / neighborhood state that
	// used to live inline here as rng/lastVictim/retainMisses. Seeded
	// deterministically per worker in NewPool (Options.Steal);
	// owner-private like the fields it replaced.
	// woolvet:owner
	pol steal.Policy

	// probe is the read-only stealable probe handed to pol.Choose,
	// built once in NewPool (a per-attempt closure would allocate on
	// the idle path).
	// woolvet:owner
	probe func(int) bool

	// genFast gates the monomorphic fast-path API (fastapi.go): true
	// only when no per-event hook can fire on the private spawn/join
	// path — tracing and span profiling disabled — so woolgen-generated
	// code may bypass the generic TaskDef* slow paths. Set once in
	// NewPool.
	// woolvet:owner
	genFast bool

	// stats holds the owner-path counters (spawns, joins, ...): plain
	// fields written only by the goroutine driving this worker, and
	// ordered before any Stats() read through the joins that drain the
	// work. The thief-path counters live below as atomics, because
	// idle workers keep attempting steals even while the pool is
	// quiescent and those writes have no happens-before edge to a
	// Stats() reader.
	// woolvet:owner
	stats Stats

	// Profiling state (only used when pool.opts.Profile is set).
	// woolvet:owner
	prof profState
	// woolvet:owner
	spanProf *SpanProfiler

	// ovf holds the results of overflow-inlined spawns (graceful
	// degradation: a spawn finding the stack full runs the child inline
	// and records its result here instead of panicking). Strict LIFO,
	// like the stack it extends. Invariant: ovf is non-empty only while
	// top == len(tasks) — an entry is created only when the stack is
	// full, and popping the stack again first requires joining the
	// entry — so joinAcquire's head check is just len(ovf) > 0.
	// woolvet:owner
	ovf []int64

	// ovfTask is the scratch descriptor joinAcquire hands back for an
	// overflow-inlined join: the TaskDef Join paths read only t.res
	// from a non-inline join, so a single owner-private carrier
	// suffices (it never enters the stack and is never thief-visible).
	// woolvet:owner
	ovfTask Task

	_ [64]byte // pad: end of the owner-private group

	// bot indexes the bottom-most live task, the next steal candidate.
	// No lock protects it; see trySteal and joinSlow for the implicit
	// ownership protocol. The three protocol words must stay within one
	// cache line so a thief's probe costs a single line transfer.
	// woolvet:cacheline group=protocol maxspan=64
	// woolvet:atomic
	bot atomic.Int64

	// publicLimit: descriptors with index < publicLimit are public
	// (stealable, joined with an atomic exchange); descriptors at or
	// above it are private (invisible to thieves, joined with plain
	// loads and stores). When private tasks are disabled it is pinned
	// at the stack capacity. Written only by the owner (mirrored in
	// pubShadow); loaded by thieves.
	// woolvet:atomic
	publicLimit atomic.Int64

	// morePublic is the trip-wire notification flag: a thief that
	// steals close to the public boundary sets it, and the owner
	// publishes more descriptors at its next spawn or join.
	// woolvet:atomic
	morePublic atomic.Bool

	_ [64]byte // pad: end of the thief-shared protocol group

	// Thief-side counters. stealAttempts and backoffs are batched in
	// plain locals by the steal loops and flushed here periodically
	// (see stealCounters), so the failed-attempt inner loop performs no
	// atomic RMW.
	// woolvet:cacheline group=counters
	// woolvet:atomic
	stealAttempts atomic.Int64
	// woolvet:atomic
	steals atomic.Int64
	// woolvet:atomic
	backoffs atomic.Int64
	// woolvet:atomic
	retainedSteals atomic.Int64
	// woolvet:atomic
	parks atomic.Int64
	// woolvet:atomic
	wakes atomic.Int64

	// blockedSince is the wall-clock UnixNano at which this worker
	// entered a blocked join (joinSlow slow path / leapfrog), or 0 when
	// not blocked. Cleared while the worker executes acquired work.
	// Written by the owner path, read by the pool watchdog.
	// woolvet:atomic
	blockedSince atomic.Int64

	// execing is nonzero while this worker executes a stolen task
	// (runStolen). The watchdog treats an executing, non-blocked worker
	// as evidence of progress even when every counter is quiescent — a
	// legitimately long-running stolen leaf must not trip it.
	// woolvet:atomic
	execing atomic.Int64
}

// Index returns the worker's index within its pool. Thief indices
// appear in STOLEN states and in provenance hooks.
func (w *Worker) Index() int { return w.idx }

// Pool returns the pool this worker belongs to.
func (w *Worker) Pool() *Pool { return w.pool }

// Depth returns the number of live tasks currently in this worker's
// pool (spawned and not yet joined or stolen-and-completed). Owner only.
func (w *Worker) Depth() int { return w.top - int(w.bot.Load()) }

// stealCounters batches a steal loop's failure-path counters in plain
// locals; flush writes them to the worker's atomics. The loops flush
// every 64 failed attempts, after every success, before parking and on
// exit, so a quiescent Stats() read lags by at most one batch.
type stealCounters struct {
	attempts int64
	backoffs int64
}

func (w *Worker) flushStealCounters(c *stealCounters) {
	if c.attempts != 0 {
		w.stealAttempts.Add(c.attempts)
		c.attempts = 0
	}
	if c.backoffs != 0 {
		w.backoffs.Add(c.backoffs)
		c.backoffs = 0
	}
}

// push readies the next descriptor for a spawn, handling the trip-wire
// flag and pool overflow. It returns the descriptor; the caller fills
// in arguments and publishes. On overflow it returns nil (the caller
// degrades the spawn to inline execution, see noteOverflowInlined), or
// panics under Options.StrictOverflow.
func (w *Worker) push() *Task {
	if w.morePublic.Load() {
		w.publishMore()
	}
	if w.top == len(w.tasks) {
		if w.pool.opts.StrictOverflow {
			panic(overflow.PanicMessage("core", w.idx, len(w.tasks)))
		}
		return nil
	}
	return &w.tasks[w.top]
}

// noteOverflowInlined records one overflow-degraded spawn: the caller
// already executed the child inline (the serial elision — semantically
// equivalent for fully-strict spawn/join programs) and hands us its
// result to replay at the matching join. Owner only.
func (w *Worker) noteOverflowInlined(res int64) {
	w.ovf = append(w.ovf, res)
	w.stats.OverflowInlined++
}

// spawn publishes the descriptor prepared by push. Public descriptors
// are published with an atomic store of stateTask, which is the single
// release point making fn and the arguments visible to thieves (the
// paper's "the write which makes the task stealable is the last write").
// Private descriptors just set the owner-only priv flag: no atomics at
// all on the spawn side.
//
// The public/private decision reads the owner's pubShadow, never the
// atomic publicLimit (TestSpawnUsesOwnerShadow). A public spawn that
// creates the first stealable descriptor (bot caught up to top) wakes
// one parked worker; the parked check is a single atomic load and is
// skipped entirely while anything is running.
func (w *Worker) spawn(t *Task) {
	if int64(w.top) < w.pubShadow {
		t.priv = false
		//woolvet:allow atomicfield -- publication release store: the single point making fn/args visible to thieves
		t.state.Store(stateTask)
		w.top++
		if w.idle != nil && w.idle.parked.Load() != 0 &&
			int64(w.top)-1 == w.bot.Load() {
			w.idle.wakeOne(w)
		}
	} else {
		t.priv = true
		w.top++
	}
	w.stats.Spawns++
	if w.trc != nil {
		w.trc.Record(trace.KindSpawn, int64(w.top-1), 0)
	}
	if w.spanProf != nil {
		w.spanProf.onSpawn()
	}
}

// joinAcquire pops the top task and tries to claim it for inlining.
// It returns (task, true) when the task can be inlined — the caller
// performs the direct, task-specific call — and (task, false) when the
// slow path already ran the task (or waited out its thief) and the
// result is in the descriptor.
func (w *Worker) joinAcquire() (*Task, bool) {
	w.pollAbort()
	if n := len(w.ovf); n != 0 {
		// The youngest outstanding spawn overflow-degraded: it already
		// ran inline at the spawn point; replay its recorded result
		// through the scratch descriptor (Join paths read only t.res on
		// the non-inline path).
		w.ovfTask.res = w.ovf[n-1]
		w.ovf = w.ovf[:n-1]
		return &w.ovfTask, false
	}
	t := &w.tasks[w.top-1]
	if t.priv {
		// Private fast path: the descriptor was never visible to
		// thieves, so a plain flag flip claims it. This is the
		// paper's 3-cycle join.
		w.top--
		t.priv = false
		w.stats.JoinsInlinedPrivate++
		if w.spanProf != nil {
			w.spanProf.onInlineJoinStart()
		}
		return t, true
	}
	if w.chs != nil {
		w.chs.Point(chaos.PointOwnerExchange)
	}
	s := t.state.Swap(stateEmpty)
	if s == stateTask {
		w.top--
		w.stats.JoinsInlinedPublic++
		w.noteInlinedPublic()
		if w.spanProf != nil {
			w.spanProf.onInlineJoinStart()
		}
		return t, true
	}
	// Slow path: leave top unchanged until the join resolves. The
	// thief is still writing into this descriptor (STOLEN→DONE and the
	// result), and work acquired by leapfrogging below spawns at top —
	// decrementing first would let those spawns recycle the descriptor
	// under the thief.
	w.joinSlow(t, s)
	w.top--
	return t, false
}

// noteInlinedPublic implements the public→private direction of the
// revocable cut-off: after a long run of inlined public joins the owner
// is evidently not losing tasks to thieves, so future spawns above the
// current frontier are made private again. Live tasks are never made
// private (they would have to be acquired first); only the boundary for
// future spawns moves, which sidesteps the race the paper warns about.
func (w *Worker) noteInlinedPublic() {
	if !w.pool.opts.PrivateTasks {
		return
	}
	w.inlineRun++
	if w.inlineRun >= w.pool.opts.PrivatizeRun {
		w.inlineRun = 0
		newPL := int64(w.top + w.pool.opts.InitialPublic)
		if newPL < w.pubShadow {
			w.pubShadow = newPL
			w.publicLimit.Store(newPL)
			w.stats.Privatizations++
			if w.trc != nil {
				w.trc.Record(trace.KindPrivatize, newPL, 0)
			}
		}
	}
}

// publishMore answers a trip-wire notification: convert up to
// PublishAmount private descriptors to public and raise the limit.
// Owner only. The atomic store of publicLimit is the release making the
// state stores visible to thieves that load the limit; parked workers
// get a targeted wake since fresh public work just appeared.
func (w *Worker) publishMore() {
	if w.chs != nil {
		// Starve the public region: thieves keep probing while the
		// owner dawdles over the trip-wire answer.
		w.chs.Point(chaos.PointTripwirePublish)
	}
	w.morePublic.Store(false)
	w.inlineRun = 0
	pl := w.pubShadow
	newPL := pl + int64(w.pool.opts.PublishAmount)
	if max := int64(len(w.tasks)); newPL > max {
		newPL = max
	}
	for i := pl; i < newPL && i < int64(w.top); i++ {
		t := &w.tasks[i]
		if t.priv {
			t.priv = false
			//woolvet:allow atomicfield -- publication: the descriptor was private (thief-invisible) until the publicLimit store below
			t.state.Store(stateTask)
		}
	}
	w.pubShadow = newPL
	w.publicLimit.Store(newPL)
	w.stats.Publications++
	w.pool.progress.Add(1)
	if w.trc != nil {
		w.trc.Record(trace.KindPublish, pl, newPL)
	}
	if w.idle != nil && w.idle.parked.Load() != 0 {
		w.idle.wakeOne(w)
	}
}

// joinSlow is RTS_join from the paper: the swap in the fast path
// returned something other than TASK, so a thief is involved. s may be:
//
//   - stateEmpty: a thief is in its transient window (between CAS and
//     commit/back-off). Spin until it either restores the task (then
//     claim it with another swap) or commits STOLEN.
//   - STOLEN(i): leapfrog — steal exclusively from worker i until the
//     thief marks the task DONE.
//   - stateDone: the thief finished before we got here.
//
// On return the task's result fields are valid and bot has been pulled
// back down over the joined descriptor (the owner re-acquires implicit
// ownership of bot, per the paper's protocol).
func (w *Worker) joinSlow(t *Task, s uint64) {
	// Watchdog stamp: blockedSince is nonzero exactly while this
	// worker's innermost activity is a wait loop. Every exit path below
	// clears it (runStolen clears/restores it around acquired work).
	w.blockedSince.Store(time.Now().UnixNano())
	spins := 0
	for {
		for s == stateEmpty {
			// Transient thief window; it resolves in a handful of
			// instructions on the thief side, but yield so a
			// descheduled thief cannot livelock us on few cores.
			runtime.Gosched()
			s = t.state.Load()
			spins++
			if spins&0x3f == 0 {
				w.pool.watchdogPoll()
			}
		}
		if s != stateTask {
			break
		}
		// The thief backed off and restored the task; claim it.
		s = t.state.Swap(stateEmpty)
		if s == stateTask {
			// Deviation from the paper's pseudocode: RTS_join there
			// ends with an unconditional bot--, but a thief that backs
			// off never advanced bot, so decrementing here would push
			// bot below the live region. Only the stolen paths below
			// (where the thief did advance bot) restore it.
			w.stats.JoinsInlinedPublic++
			if w.spanProf != nil {
				w.spanProf.onInlineJoinStart()
			}
			w.blockedSince.Store(0) // executing the claimed task, not waiting
			fn := t.fn
			fn(w, t)
			if w.spanProf != nil {
				w.spanProf.onInlineJoinEnd()
			}
			return
		}
		// Another thief snatched it between our load and swap; loop.
	}
	if isStolen(s) {
		thief := stolenThief(s)
		w.stats.JoinsStolen++
		w.leapfrog(t, thief)
	} else if s != stateDone {
		panic(fmt.Sprintf("core: corrupt task state %#x in join on worker %d", s, w.idx))
	} else {
		w.stats.JoinsStolen++
	}
	w.blockedSince.Store(0)
	w.bot.Add(-1)
}

// leapfrog waits for a stolen task to complete, stealing only from the
// thief that took it (Wagner & Calder's leapfrogging, as used by Wool).
// The restriction guarantees that anything we steal here is work we
// would have executed ourselves had the steal not happened, so the
// worker's stack cannot grow beyond its sequential bound and the buried
// join resolves as soon as the joined task is done.
//
// woolvet:thief
func (w *Worker) leapfrog(t *Task, thief int) {
	if w.pool.opts.BlockedJoinWait == WaitSpin {
		// Ablation: just wait (see Options.BlockedJoinWait).
		var start time.Time
		if w.prof.on {
			start = time.Now()
		}
		spins := 0
		for t.state.Load() != stateDone {
			runtime.Gosched()
			spins++
			if spins&0x3f == 0 {
				w.pool.watchdogPoll()
			}
		}
		if w.prof.on {
			w.prof.lf.Add(int64(time.Since(start)))
		}
		return
	}
	victim := w.pool.workers[thief]
	var sc stealCounters
	var tLF, tLA time.Duration
	fails := 0
	for t.state.Load() != stateDone {
		if w.chs != nil && w.chs.Point(chaos.PointLeapfrogPick) {
			// Injected miss: skip this steal attempt, as if the thief's
			// pool looked empty.
			fails++
			if fails&0x3f == 0 {
				w.flushStealCounters(&sc)
				w.pool.watchdogPoll()
				runtime.Gosched()
			}
			continue
		}
		var start time.Time
		if w.prof.on {
			start = time.Now()
		}
		ok := w.trySteal(victim, true, &sc)
		if w.prof.on {
			d := time.Since(start)
			if ok {
				tLA += d
			} else {
				tLF += d
			}
		}
		if ok {
			w.stats.LeapSteals++
			w.flushStealCounters(&sc)
			fails = 0
		} else {
			fails++
			if fails&0x3f == 0 {
				w.flushStealCounters(&sc)
				w.pool.watchdogPoll()
				runtime.Gosched()
			} else if runtime.GOMAXPROCS(0) == 1 {
				runtime.Gosched()
			}
		}
	}
	w.flushStealCounters(&sc)
	if w.prof.on {
		w.prof.lf.Add(int64(tLF))
		w.prof.la.Add(int64(tLA))
	}
}

// trySteal is RTS_steal from the paper. It attempts to steal the task
// at victim.bot and run it to completion on w. leap marks steals made
// from inside a blocked join (leapfrogging) so profiling can attribute
// the acquired application time to the LA category. sc batches the
// failure-path counters; the caller flushes them (flushStealCounters).
//
// Protocol, in order:
//  1. read bot; give up if it is outside the victim's public region or
//     the stack;
//  2. read state; give up unless it is TASK;
//  3. CAS state TASK→EMPTY; losing the race to another thief or the
//     owner means give up;
//  4. re-read bot: if it moved, the CAS hit a recycled descriptor (the
//     ABA the paper describes) — restore the state and back off. The
//     transient EMPTY is harmless: it only makes other thieves abort
//     and a joining owner wait;
//  5. commit: state=STOLEN(self), bot=b+1 (the thief now owns bot),
//     run the wrapper, state=DONE.
//
// woolvet:thief
func (w *Worker) trySteal(victim *Worker, leap bool, sc *stealCounters) bool {
	if victim == w {
		return false
	}
	sc.attempts++
	b := victim.bot.Load()
	if b >= victim.publicLimit.Load() || b >= int64(len(victim.tasks)) {
		return false
	}
	t := &victim.tasks[b]
	s1 := t.state.Load()
	if s1 != stateTask {
		return false
	}
	if w.chs != nil && w.chs.Point(chaos.PointThiefCAS) {
		// Injected CAS loss (and the delay above stretches the
		// read-state→CAS window the ABA guard exists for).
		return false
	}
	if !t.state.CompareAndSwap(s1, stateEmpty) {
		return false
	}
	if w.chs != nil {
		// Stretch the transient-EMPTY window between the CAS and the
		// ABA re-check that the joining owner must spin through.
		w.chs.Point(chaos.PointBotBackoff)
	}
	if victim.bot.Load() != b {
		// ABA guard: the descriptor was joined and re-spawned while we
		// were between reading bot and the CAS. Restore and back off.
		//woolvet:allow atomicfield -- back-off restore: we hold the claim won by the CAS above
		t.state.Store(s1)
		sc.backoffs++
		return false
	}
	// Trip wire: stealing at or past the wire means the public region
	// is running dry; ask the owner to publish more, and pre-wake a
	// parked worker for the work about to appear.
	if w.pool.opts.PrivateTasks &&
		b >= victim.publicLimit.Load()-int64(w.pool.opts.TripDistance) {
		victim.morePublic.Store(true)
		if w.idle != nil && w.idle.parked.Load() != 0 {
			w.idle.wakeOne(w)
		}
	}
	if w.chs != nil {
		// Hold the descriptor in its claimed-but-uncommitted state.
		w.chs.Point(chaos.PointStealCommit)
	}
	//woolvet:allow atomicfield -- STOLEN commit: we hold the claim won by the CAS above
	t.state.Store(stolenState(w.idx))
	victim.bot.Store(b + 1)
	w.steals.Add(1)
	w.pool.progress.Add(1)
	if w.trc != nil {
		k := trace.KindSteal
		if leap {
			k = trace.KindLeapfrog
		}
		w.trc.Record(k, int64(victim.idx), b)
		w.trc.Record(trace.KindTaskStart, int64(victim.idx), b)
	}
	w.runStolen(t, leap)
	if w.trc != nil {
		w.trc.Record(trace.KindTaskEnd, int64(victim.idx), b)
	}
	//woolvet:allow atomicfield -- DONE commit: the thief owns the descriptor from CAS until this store
	t.state.Store(stateDone)
	w.pool.progress.Add(1)
	return true
}

// runStolen executes a stolen task's wrapper on this worker, converting
// a panic in user code into a pool-wide abort so the joining owner is
// not left spinning on a task that will never reach DONE.
func (w *Worker) runStolen(t *Task, leap bool) {
	// Watchdog bookkeeping: while the stolen task runs this worker is
	// executing, not waiting — clear a leapfrogging caller's blocked
	// stamp for the duration (a long-running stolen leaf must read as
	// progress, not as a stuck join).
	w.execing.Add(1)
	prevBlocked := w.blockedSince.Load()
	if prevBlocked != 0 {
		w.blockedSince.Store(0)
	}
	defer func() {
		if prevBlocked != 0 {
			w.blockedSince.Store(time.Now().UnixNano())
		}
		w.execing.Add(-1)
		if r := recover(); r != nil {
			w.pool.recordPanic(r)
			// DONE is stored by trySteal after we return; recover so
			// it executes and the victim unblocks, then the panic is
			// re-raised on the Run goroutine.
		}
	}()
	// Abort check: once the pool is poisoned the result of this task is
	// unobservable (the joining owner unwinds instead of reading it),
	// so skip the body. The caller still stores DONE, which is what
	// keeps a leapfrogging joiner from spinning forever on this
	// descriptor while the abort propagates.
	if w.pool.panicked.Load() {
		return
	}
	var start time.Time
	if w.prof.on {
		start = time.Now()
	}
	fn := t.fn
	fn(w, t)
	if w.prof.on {
		d := time.Since(start)
		if leap {
			w.prof.la.Add(int64(d))
		} else {
			w.prof.na.Add(int64(d))
		}
	}
}

// stealableAt reports whether v's bottom descriptor currently looks
// stealable (read-only probe; the state can of course change between
// the probe and a steal attempt).
func stealableAt(v *Worker) bool {
	b := v.bot.Load()
	return b < v.publicLimit.Load() && b < int64(len(v.tasks)) &&
		v.tasks[b].state.Load() == stateTask
}

// chooseVictim asks the worker's steal policy for the next target. The
// legacy retention (Options.StealRetain) and sampling (Options.
// StealSampling) behaviours now live behind the policy interface — the
// default last-victim policy reproduces them bit for bit (see
// internal/steal and the compat test in stealpolicy_compat_test.go).
func (w *Worker) chooseVictim() *Worker {
	return w.pool.workers[w.pol.Choose(w.probe)]
}

// stSamplePeriod: when profiling, idleLoop measures only every 64th
// failed steal attempt and scales the sample by the period, so ST is a
// sampled estimate and Profile no longer doubles the idle-loop cost
// with two clock reads per attempt.
const stSamplePeriod = 64

// idleLoop is the life of workers 1..N-1: steal from random victims
// until the pool shuts down. Failed attempts back off through Gosched
// into short sleeps (capped at Options.MaxIdleSleep); once a worker has
// slept through the engine's idle budget it parks on the pool's idle
// engine and costs nothing until a producer wakes it (Options.Parking).
// A negative MaxIdleSleep keeps pure spinning+yield, matching the
// paper's dedicated-machine setup.
//
// When the pool is poisoned (task panic or request abort) the loop
// stops stealing — the abandoned tree's descriptors must not keep
// executing in the background after Run has re-raised (see Pool.Run) —
// but instead of exiting it blocks on the pool's poison gate
// (poisonPark, abort.go), so Reset can revive the pool for the next
// request; Close opens the same gate for exit. A task already claimed
// by a steal always finishes (runStolen recovers and skips the body,
// trySteal commits DONE), so parking between attempts never strands a
// leapfrogging joiner.
//
// woolvet:thief
func (w *Worker) idleLoop() {
	var sc stealCounters
	fails := 0
	var slept time.Duration
	for !w.pool.shutdown.Load() {
		if w.pool.panicked.Load() {
			w.flushStealCounters(&sc)
			w.pool.poisonPark()
			fails = 0
			slept = 0
			continue
		}
		v := w.chooseVictim()
		var start time.Time
		sampled := false
		if w.prof.on {
			w.prof.tick++
			if w.prof.tick%stSamplePeriod == 0 {
				sampled = true
				start = time.Now()
			}
		}
		ok := w.trySteal(v, false, &sc)
		if sampled && !ok {
			w.prof.st.Add(stSamplePeriod * int64(time.Since(start)))
		}
		if ok {
			if w.pol.Observe(v.idx, true) {
				w.retainedSteals.Add(1)
			}
			// Wake propagation: we are about to go busy on the stolen
			// task; if the victim still has visible work and workers
			// are parked, hand one of them the scan.
			if w.idle != nil && w.idle.parked.Load() != 0 && stealableAt(v) {
				w.idle.wakeOne(w)
			}
			w.flushStealCounters(&sc)
			fails = 0
			slept = 0
			continue
		}
		w.pol.Observe(v.idx, false)
		fails++
		if fails&0x3f == 0 {
			w.flushStealCounters(&sc)
		}
		if w.chs != nil && w.idle != nil && w.chs.Force(chaos.PointParkDecision) {
			// Park-flapping: park far before the back-off ladder would,
			// forcing every unit of work to win a wake race. Safe at any
			// time — park's announce/recheck protocol covers it.
			w.flushStealCounters(&sc)
			w.idle.park(w)
			fails = 0
			slept = 0
			continue
		}
		switch {
		case fails < 64:
			if runtime.GOMAXPROCS(0) == 1 {
				runtime.Gosched()
			}
		case fails < 1024 || w.pool.opts.MaxIdleSleep <= 0:
			runtime.Gosched()
		default:
			d := time.Duration(fails-1023) * time.Microsecond
			if d > w.pool.opts.MaxIdleSleep {
				d = w.pool.opts.MaxIdleSleep
			}
			time.Sleep(d)
			slept += d
			if w.idle != nil && slept >= w.idle.parkAfter {
				w.flushStealCounters(&sc)
				w.idle.park(w)
				fails = 0
				slept = 0
			}
		}
	}
	w.flushStealCounters(&sc)
	w.pool.wg.Done()
}

// anyVisibleWork is the parking re-check: a read-only scan of every
// other worker for a stealable bottom descriptor.
func (w *Worker) anyVisibleWork() bool {
	for _, v := range w.pool.workers {
		if v != w && stealableAt(v) {
			return true
		}
	}
	return false
}
