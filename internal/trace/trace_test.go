package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRingRecordAndSnapshot(t *testing.T) {
	tr := New(2, 8)
	r0 := tr.Ring(0)
	r0.Record(KindSpawn, 3, 0)
	r0.Record(KindSteal, 1, 5)
	tr.Ring(1).Record(KindPark, 0, 0)

	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d rings, want 2", len(snap))
	}
	if len(snap[0]) != 2 || len(snap[1]) != 1 {
		t.Fatalf("ring lengths %d/%d, want 2/1", len(snap[0]), len(snap[1]))
	}
	if snap[0][0].Kind != KindSpawn || snap[0][0].Arg != 3 {
		t.Errorf("first event = %+v, want SPAWN(3)", snap[0][0])
	}
	if snap[0][1].Kind != KindSteal || snap[0][1].Arg != 1 || snap[0][1].Arg2 != 5 {
		t.Errorf("second event = %+v, want STEAL(1,5)", snap[0][1])
	}
	if snap[0][0].Worker != 0 || snap[1][0].Worker != 1 {
		t.Errorf("worker stamps wrong: %d/%d", snap[0][0].Worker, snap[1][0].Worker)
	}
	if snap[0][1].TS < snap[0][0].TS {
		t.Errorf("timestamps not monotonic: %d then %d", snap[0][0].TS, snap[0][1].TS)
	}
}

// TestRingOverwrite checks the newest-wins wrap policy: a full ring
// keeps the most recent capacity events, in order, and reports the
// overwritten count.
func TestRingOverwrite(t *testing.T) {
	tr := New(1, 4)
	r := tr.Ring(0)
	for i := int64(0); i < 11; i++ {
		r.Record(KindSpawn, i, 0)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if d := r.Dropped(); d != 7 {
		t.Fatalf("Dropped = %d, want 7", d)
	}
	events := tr.Snapshot()[0]
	for i, e := range events {
		if want := int64(7 + i); e.Arg != want {
			t.Errorf("event %d has Arg %d, want %d (oldest-first suffix window)", i, e.Arg, want)
		}
	}
}

func TestCapacityRounding(t *testing.T) {
	tr := New(1, 100)
	if got := len(tr.Ring(0).buf); got != 128 {
		t.Errorf("capacity 100 rounded to %d, want 128", got)
	}
	tr = New(1, 0)
	if got := len(tr.Ring(0).buf); got != DefaultCapacity {
		t.Errorf("capacity 0 defaulted to %d, want %d", got, DefaultCapacity)
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "UNKNOWN" {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := KindFromString(name)
		if !ok || back != k {
			t.Errorf("round trip %v -> %q -> %v/%v", k, name, back, ok)
		}
	}
	if _, ok := KindFromString("NOPE"); ok {
		t.Error("KindFromString accepted an unknown name")
	}
}

// TestChromeExportValidates round-trips a small trace through the
// exporter and the trace-smoke schema validator.
func TestChromeExportValidates(t *testing.T) {
	tr := New(2, 16)
	tr.Ring(0).Record(KindSpawn, 0, 0)
	tr.Ring(0).Record(KindPublish, 2, 4)
	tr.Ring(1).Record(KindSteal, 0, 0)
	tr.Ring(1).Record(KindTaskStart, 0, 0)
	tr.Ring(1).Record(KindTaskEnd, 0, 0)
	tr.Ring(1).Record(KindPark, 0, 0)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	n, err := Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Validate rejected our own export: %v\n%s", err, buf.String())
	}
	if n != 6 {
		t.Errorf("Validate counted %d events, want 6", n)
	}
	for _, want := range []string{`"STEAL"`, `"PUBLISH"`, `"PARK"`, `"stolen task"`, `"thread_name"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("export missing %s:\n%s", want, buf.String())
		}
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	cases := []string{
		`not json`,
		`{}`,
		`{"traceEvents":[{"ph":"i"}]}`, // no name
		`{"traceEvents":[{"name":"STEAL","ph":"X","pid":0,"tid":0,"ts":0}]}`, // bad phase
		`{"traceEvents":[{"name":"STEAL","ph":"i","pid":0,"tid":0}]}`,        // no ts
		`{"traceEvents":[{"name":"BOGUS","ph":"i","pid":0,"tid":0,"ts":0}]}`, // unknown name
	}
	for _, c := range cases {
		if _, err := Validate(strings.NewReader(c)); err == nil {
			t.Errorf("Validate accepted %q", c)
		}
	}
}

func TestStealMatrix(t *testing.T) {
	tr := New(3, 16)
	tr.Ring(1).Record(KindSteal, 0, 2)
	tr.Ring(1).Record(KindSteal, 0, 3)
	tr.Ring(1).Record(KindLeapfrog, 2, 7)
	tr.Ring(2).Record(KindSteal, -1, 0) // central queue take
	tr.Ring(0).Record(KindSpawn, 0, 0)  // not a steal; ignored

	m := tr.StealMatrix()
	if m.Steals[1][0] != 2 || m.Steals[1][2] != 1 || m.Leap[1][2] != 1 {
		t.Errorf("matrix wrong: steals[1]=%v leap[1]=%v", m.Steals[1], m.Leap[1])
	}
	if m.Central[2] != 1 {
		t.Errorf("central takes = %v, want [0 0 1]", m.Central)
	}
	if m.Total() != 4 {
		t.Errorf("Total = %d, want 4", m.Total())
	}
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"1*1", "central", "total steals: 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix text missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentWriters checks the one-writer-per-ring contract scales:
// distinct goroutines writing distinct rings race-free (run with -race).
func TestConcurrentWriters(t *testing.T) {
	tr := New(4, 1024)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := tr.Ring(i)
			for j := int64(0); j < 2000; j++ {
				r.Record(KindSpawn, j, 0)
			}
		}(i)
	}
	wg.Wait()
	for i, events := range tr.Snapshot() {
		if len(events) != 1024 {
			t.Errorf("ring %d kept %d events, want 1024", i, len(events))
		}
	}
	if d := tr.Dropped(); d != 4*(2000-1024) {
		t.Errorf("Dropped = %d, want %d", d, 4*(2000-1024))
	}
}
