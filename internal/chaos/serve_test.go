package chaos

import "testing"

// TestServeInjectorDeterminism: same seed replays the same decision
// sequence; different seeds diverge.
func TestServeInjectorDeterminism(t *testing.T) {
	rates := ServeRates{}
	for p := ServePoint(0); p < NumServePoints; p++ {
		rates[p] = 32768 // ~50%
	}
	a := NewServeInjector(rates, 0xfeed)
	b := NewServeInjector(rates, 0xfeed)
	c := NewServeInjector(rates, 0xbeef)
	diverged := false
	for i := 0; i < 64; i++ {
		p := ServePoint(i % int(NumServePoints))
		av, bv, cv := a.Fail(p), b.Fail(p), c.Fail(p)
		if av != bv {
			t.Fatalf("decision %d: same seed diverged", i)
		}
		if av != cv {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("distinct seeds produced identical decision sequences")
	}
	if a.Seed() != 0xfeed {
		t.Fatalf("Seed() = %#x, want 0xfeed", a.Seed())
	}
}

// TestServeInjectorRates: rate 0 never fires, 65535 effectively always
// does, and the counters account for visits and injections.
func TestServeInjectorRates(t *testing.T) {
	var rates ServeRates
	rates[ServeLaneResetFail] = 65535
	si := NewServeInjector(rates, 1)
	fired := 0
	for i := 0; i < 1000; i++ {
		if si.Fail(ServeLaneResetFail) {
			fired++
		}
		if si.Fail(ServeSubmitStorm) {
			t.Fatal("rate-0 point fired")
		}
	}
	if fired < 990 {
		t.Fatalf("rate-65535 point fired %d/1000", fired)
	}
	counts, inj := si.Counts(), si.Injected()
	if counts[ServeLaneResetFail] != 1000 || counts[ServeSubmitStorm] != 1000 {
		t.Fatalf("visit counts = %v", counts)
	}
	if inj[ServeLaneResetFail] != uint64(fired) || inj[ServeSubmitStorm] != 0 {
		t.Fatalf("injected counts = %v (fired=%d)", inj, fired)
	}
}

// TestServeInjectorNil: a nil injector is the documented disabled
// path.
func TestServeInjectorNil(t *testing.T) {
	var si *ServeInjector
	if si.Fail(ServeProbeFail) {
		t.Fatal("nil injector failed a point")
	}
	if si.Seed() != 0 || si.Counts() != ([NumServePoints]uint64{}) || si.Injected() != ([NumServePoints]uint64{}) {
		t.Fatal("nil injector accessors not zero")
	}
}

// TestServePointNames pins the stable names used in profiles and
// docs.
func TestServePointNames(t *testing.T) {
	want := map[ServePoint]string{
		ServeLaneResetFail: "lane-reset-fail",
		ServeSubmitStorm:   "submit-storm",
		ServeProbeFail:     "probe-fail",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
}
