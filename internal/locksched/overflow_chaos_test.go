package locksched

import (
	"runtime"
	"strings"
	"testing"

	"gowool/internal/chaos"
)

// TestOverflowDegradesToInline: a StackSize-4 pool completes a deep
// spawn tree correctly, with spawns past capacity elided to inline
// execution and counted in OverflowInlined.
func TestOverflowDegradesToInline(t *testing.T) {
	leaf := Define1("leaf", func(w *Worker, x int64) int64 { return x })
	var deep *TaskDef1
	deep = Define1("deep", func(w *Worker, d int64) int64 {
		if d == 0 {
			return 0
		}
		leaf.Spawn(w, d)
		sub := deep.Call(w, d-1)
		return sub + leaf.Join(w)
	})
	const depth = 1000
	const want = depth * (depth + 1) / 2
	for _, workers := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(4)
		p := NewPool(Options{Workers: workers, StackSize: 4})
		got := p.Run(func(w *Worker) int64 { return deep.Call(w, depth) })
		st := p.Stats()
		p.Close()
		runtime.GOMAXPROCS(prev)
		if got != want {
			t.Fatalf("workers=%d: depth-%d spawn tree = %d, want %d", workers, depth, got, want)
		}
		if st.OverflowInlined == 0 {
			t.Fatalf("workers=%d: OverflowInlined = 0 on a depth-%d tree with StackSize 4", workers, depth)
		}
		if st.Spawns != st.JoinsInlined+st.JoinsStolen {
			t.Fatalf("workers=%d: spawns (%d) != joins (%d+%d) with elision active",
				workers, st.Spawns, st.JoinsInlined, st.JoinsStolen)
		}
	}
}

// TestStackOverflowPanics covers the StrictOverflow arm of the shared
// degrade-or-panic policy.
func TestStackOverflowPanics(t *testing.T) {
	p := NewPool(Options{Workers: 1, StackSize: 8, StrictOverflow: true})
	defer p.Close()
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on stack overflow")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "task pool overflow") {
			t.Fatalf("overflow panic = %v, want the unified task-pool-overflow message", r)
		}
	}()
	p.Run(func(w *Worker) int64 {
		for i := int64(0); i < 100; i++ {
			noop.Spawn(w, i)
		}
		return 0
	})
}

// TestChaosOverheadDisabled pins the zero-cost claim for the disabled
// chaos path on this backend: no agents, no allocations on spawn/join.
func TestChaosOverheadDisabled(t *testing.T) {
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	for i, w := range p.workers {
		if w.chs != nil {
			t.Fatalf("worker %d has a chaos agent on an uninjected pool", i)
		}
	}
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	p.Run(func(w *Worker) int64 {
		if avg := testing.AllocsPerRun(200, func() {
			noop.Spawn(w, 1)
			noop.Join(w)
		}); avg != 0 {
			t.Errorf("spawn/join pair allocates %v objects with chaos disabled, want 0", avg)
		}
		return 0
	})
}

// TestChaosFibAllProfiles: serial agreement for fib under every chaos
// profile and every steal strategy, seed in the failure output.
func TestChaosFibAllProfiles(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	fib := fibDef()
	want := serialFib(18)
	for _, prof := range chaos.Profiles() {
		for _, strat := range []StealStrategy{StealBase, StealPeek, StealTryLock} {
			const seed = 12345
			in := chaos.NewInjector(4, prof, seed)
			p := NewPool(Options{Workers: 4, Strategy: strat, Chaos: in})
			got := p.Run(func(w *Worker) int64 { return fib.Call(w, 18) })
			p.Close()
			if got != want {
				t.Fatalf("profile %s seed %d strategy=%v: fib(18) = %d, want %d (replay with this seed)",
					prof.Name, seed, strat, got, want)
			}
			total := uint64(0)
			for _, c := range in.Counts() {
				total += c
			}
			if total == 0 {
				t.Fatalf("profile %s seed %d: no chaos points visited", prof.Name, seed)
			}
		}
	}
}
