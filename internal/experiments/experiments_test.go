package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig4", "fig5", "fig6", "table1", "table2", "table3", "table4", "xablate", "xcilk", "xgonative", "xscale"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d = %q, want %q", i, all[i].ID, id)
		}
		if all[i].Paper == "" || all[i].Title == "" || all[i].Run == nil {
			t.Errorf("experiment %q incomplete", id)
		}
	}
	if _, ok := ByID("fig1"); !ok {
		t.Error("ByID(fig1) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
}

func TestCatalogBuilds(t *testing.T) {
	for _, sc := range []Scale{Quick, Full} {
		for _, wl := range Catalog(sc) {
			if wl.Name() == "" || wl.Reps <= 0 {
				t.Errorf("bad workload %+v", wl)
			}
			root, _ := wl.Root()
			if root == nil {
				t.Errorf("%s: nil root", wl.Name())
			}
		}
	}
}

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("quick"); err != nil || s != Quick {
		t.Error("quick parse failed")
	}
	if s, err := ParseScale("full"); err != nil || s != Full {
		t.Error("full parse failed")
	}
	if _, err := ParseScale("medium"); err == nil {
		t.Error("bad scale accepted")
	}
}

// TestQuickExperimentsRun executes every experiment at Quick scale and
// sanity-checks the output. This is the integration test of the whole
// reproduction pipeline (workloads → sim → analysis → rendering).
func TestQuickExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take seconds each")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(Quick, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 100 {
				t.Fatalf("%s: suspiciously short output:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "==") {
				t.Errorf("%s: no table header in output", e.ID)
			}
		})
	}
}

func TestSerialWorkStable(t *testing.T) {
	wl := mmWL(32, 4)
	root, args := wl.Root()
	a := serialWork(root, args)
	root, args = wl.Root()
	b := serialWork(root, args)
	if a.Work != b.Work || a.Span0 != b.Span0 {
		t.Errorf("serialWork not deterministic: %d/%d vs %d/%d", a.Work, a.Span0, b.Work, b.Span0)
	}
	if a.Work == 0 || a.Span0 == 0 {
		t.Error("zero work/span")
	}
}

func TestStealOverheadGrowsWithProcs(t *testing.T) {
	wool := Systems()[0]
	s2 := stealOverhead(wool, 1)
	s8 := stealOverhead(wool, 3)
	if s2 <= 0 {
		t.Fatalf("steal overhead @2 = %f, want > 0", s2)
	}
	if s8 <= s2 {
		t.Errorf("steal overhead @8 (%f) should exceed @2 (%f)", s8, s2)
	}
}
