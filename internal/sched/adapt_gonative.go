package sched

import (
	"runtime"

	"gowool/internal/gonative"
)

func init() { register(gonativeSched{}, 5) }

// gonativeSched registers the idiomatic-Go baseline: fork-join with
// goroutines, channels and WaitGroups, scheduled by the Go runtime.
// There is no pool object and no counters (Caps.Stats is false); the
// adapter synthesizes a Pool so registry-driven tools treat it
// uniformly. RunRec throttles with ForkBounded — the manual
// granularity control Go programs need and the paper's scheduler
// exists to remove. Options.StackSize, StrictOverflow, Chaos and
// Watchdog are ignored: the Go runtime owns the task pool, so there is
// no capacity to bound, no protocol point to perturb, and no scheduler
// heartbeat to watch (Caps.Chaos and Caps.Watchdog are false).
type gonativeSched struct{}

func (gonativeSched) Name() string { return "gonative" }
func (gonativeSched) Blurb() string {
	return "idiomatic Go baseline: goroutines + channels/WaitGroups on the Go runtime, bounded forking for recursion, goroutine-per-chunk loops"
}
func (gonativeSched) Caps() Caps {
	return Caps{
		Steal: "the Go runtime's own scheduler; no explicit task pool",
		// No StealPolicies: victim selection belongs to the Go runtime.
	}
}

func (gonativeSched) NewPool(o Options) Pool {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &gonativePool{workers: workers}
}

type gonativePool struct{ workers int }

func (gp *gonativePool) Workers() int { return gp.workers }
func (gp *gonativePool) Close()       {}
func (gp *gonativePool) Native() any  { return nil }
func (gp *gonativePool) ResetStats()  {}
func (gp *gonativePool) Stats() Stats { return Stats{} }

func (gp *gonativePool) RunRec(j RecJob) int64 {
	fb := gonative.NewForkBounded(gp.workers)
	var rec func(n int64) int64
	rec = func(n int64) int64 {
		if v, ok := j.Leaf(n); ok {
			return v
		}
		first, second := j.Split(n)
		a, b := fb.Fork(
			func() int64 { return rec(second) },
			func() int64 { return rec(first) },
		)
		return a + b
	}
	var total int64
	for r := int64(0); r < reps(j.Reps); r++ {
		total += rec(j.Root)
	}
	return total
}

func (gp *gonativePool) RunRange(j RangeJob) int64 {
	out := make([]int64, j.N)
	var total int64
	for r := int64(0); r < reps(j.Reps); r++ {
		if j.Irregular {
			gonative.ParallelForDynamic(0, j.N, 4, func(i int64) { out[i] = j.Leaf(i) })
		} else {
			gonative.ParallelFor(0, j.N, gp.workers, func(i int64) { out[i] = j.Leaf(i) })
		}
		for _, v := range out {
			total += v
		}
	}
	return total
}
