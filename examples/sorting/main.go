// Parallel merge sort on the work-stealing pool: a divide-and-conquer
// workload over real data, using a typed context task (DefineC2) so
// the slice travels through the task descriptor without allocation.
// The recursion spawns all the way down to small leaves — the paper's
// point is that the spawn is cheap enough to skip granularity tuning —
// with a modest sequential leaf only where the algorithm itself (not
// the scheduler) wants one for cache behaviour.
//
//	go run ./examples/sorting [n]
package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"time"

	"gowool"
)

type buf struct {
	a, tmp []int64
}

const leaf = 64 // insertion-sort leaf: algorithmic, not a scheduler cutoff

var msort *gowool.TaskDefC2[buf]

func init() {
	msort = gowool.DefineC2("msort", func(w *gowool.Worker, b *buf, lo, hi int64) int64 {
		if hi-lo <= leaf {
			insertion(b.a[lo:hi])
			return 0
		}
		mid := (lo + hi) / 2
		msort.Spawn(w, b, lo, mid)
		msort.Call(w, b, mid, hi)
		msort.Join(w)
		merge(b, lo, mid, hi)
		return 0
	})
}

func insertion(a []int64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func merge(b *buf, lo, mid, hi int64) {
	copy(b.tmp[lo:hi], b.a[lo:hi])
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		switch {
		case i >= mid:
			b.a[k] = b.tmp[j]
			j++
		case j >= hi:
			b.a[k] = b.tmp[i]
			i++
		case b.tmp[j] < b.tmp[i]:
			b.a[k] = b.tmp[j]
			j++
		default:
			b.a[k] = b.tmp[i]
			i++
		}
	}
}

func main() {
	n := int64(2_000_000)
	if len(os.Args) > 1 {
		if v, err := strconv.ParseInt(os.Args[1], 10, 64); err == nil {
			n = v
		}
	}
	rng := rand.New(rand.NewSource(42))
	b := &buf{a: make([]int64, n), tmp: make([]int64, n)}
	for i := range b.a {
		b.a[i] = rng.Int63()
	}
	ref := append([]int64(nil), b.a...)

	pool := gowool.NewPool(gowool.Options{
		Workers:      runtime.GOMAXPROCS(0),
		PrivateTasks: true,
	})
	defer pool.Close()

	t0 := time.Now()
	pool.Run(func(w *gowool.Worker) int64 { return msort.Call(w, b, 0, n) })
	parTime := time.Since(t0)

	t0 = time.Now()
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	stdTime := time.Since(t0)

	for i := range b.a {
		if b.a[i] != ref[i] {
			fmt.Printf("MISMATCH at %d\n", i)
			os.Exit(1)
		}
	}
	st := pool.Stats()
	fmt.Printf("sorted %d int64s\n", n)
	fmt.Printf("msort (%d workers): %v    sort.Slice (1 thread): %v\n",
		pool.Workers(), parTime, stdTime)
	fmt.Printf("spawns: %d   steals: %d   private joins: %d/%d\n",
		st.Spawns, st.Steals, st.JoinsInlinedPrivate, st.Joins())
}
