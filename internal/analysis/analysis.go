// Package analysis is woolvet: a suite of static-analysis passes that
// enforce the direct-task-stack protocol invariants the Go race
// detector cannot check. The correctness argument of the paper's
// Section III-A is an ownership discipline — Task.state is claimed only
// by owner-exchange or thief-CAS, top is owner-private, bot is
// synchronized purely by protocol convention — and disciplines of that
// kind go wrong silently. woolvet turns them into compile-time checks
// over annotations in the scheduler sources (see DESIGN.md §10 for the
// annotation vocabulary).
//
// The package is deliberately shaped like golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic, an analysistest-style golden runner)
// but is self-contained: this module has no external dependencies, so
// the driver loads and type-checks packages with the standard library
// alone (go/parser + go/types + the source importer). Porting an
// analyzer to the x/tools framework is a mechanical change of the Run
// signature.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one woolvet pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in
	// "//woolvet:allow <name>" suppressions.
	Name string

	// Doc is the one-line description printed by woolvet -list.
	Doc string

	// Run applies the pass to a single type-checked package,
	// reporting findings through pass.Report.
	Run func(pass *Pass)
}

// A Pass connects an Analyzer to the package being analyzed.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Sizes    types.Sizes

	// Ann is the package's woolvet annotation index (field tags,
	// thief roots, allow sites), computed once and shared by all
	// passes.
	Ann *Annotations

	// Ldr is the loader that produced the package, when available.
	// Flow-sensitive passes use it to see annotations on declarations
	// in other packages of the module (generated code calls into the
	// annotated core API).
	Ldr *Loader

	// Dir is the package's source directory (perfbudget shells out to
	// the compiler there). Empty for synthetic packages.
	Dir string

	diags *[]Diagnostic
}

// AnnotationsFor returns the annotation index of the package that
// declares obj: the current package's own index, or — via the loader —
// that of another module package. Nil when the annotations cannot be
// resolved (standard library, no loader).
func (p *Pass) AnnotationsFor(obj types.Object) *Annotations {
	if obj == nil || obj.Pkg() == nil || obj.Pkg() == p.Pkg {
		return p.Ann
	}
	if p.Ldr == nil {
		return nil
	}
	if sub := p.Ldr.PackageFor(obj); sub != nil {
		return sub.Annotations()
	}
	return nil
}

// FuncDirsFor returns the woolvet directives on fn's declaration,
// wherever in the module it lives.
func (p *Pass) FuncDirsFor(fn *types.Func) []Directive {
	a := p.AnnotationsFor(fn)
	if a == nil {
		return nil
	}
	return a.FuncDirs[fn]
}

// Report records a finding. Findings at positions covered by a
// matching "//woolvet:allow" suppression are dropped by the driver,
// not here, so analyzers never need to consult the allow index.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// All returns the woolvet analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicField,
		OwnerPrivate,
		LayoutGuard,
		SpawnJoin,
		Generated,
		Publication,
		PerfBudget,
	}
}

// ByName returns the analyzers whose names appear in names, erroring
// on unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers applies the analyzers to a loaded package and returns
// the surviving diagnostics sorted by position. Suppression happens
// here: a diagnostic is dropped when an "//woolvet:allow <analyzer>"
// comment sits on its line or the line above, or when the enclosing
// function's doc comment carries the allow (see Annotations).
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	ann := pkg.Annotations()
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Sizes:    pkg.Sizes,
			Ann:      ann,
			Ldr:      pkg.loader,
			Dir:      pkg.Dir,
			diags:    &diags,
		}
		a.Run(pass)
	}
	kept := diags[:0]
	for _, d := range diags {
		if !ann.Allowed(d.Analyzer, pkg.Fset, d.Pos) {
			kept = append(kept, d)
		}
	}
	// Stale-suppression audit: an allow directive that suppressed
	// nothing is itself a finding — dead allows hide future
	// regressions at their site. Only meaningful when every analyzer
	// the directive names actually ran.
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, e := range ann.StaleAllows(ran) {
		kept = append(kept, Diagnostic{
			Pos:      e.pos,
			Analyzer: "allowaudit",
			Message:  fmt.Sprintf("stale suppression: no %s diagnostic is suppressed here; delete the allow", e.analyzer),
		})
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos != kept[j].Pos {
			return kept[i].Pos < kept[j].Pos
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}

// walkStack traverses every file in the pass, calling fn with each
// node and the stack of its ancestors (stack[0] is the *ast.File,
// stack[len-1] is the node's parent). Returning false from fn prunes
// the subtree.
func walkStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if n == nil {
				return false
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
				for _, c := range childNodes(n) {
					walk(c)
				}
				stack = stack[:len(stack)-1]
			}
			return true
		}
		walk(f)
	}
}

// childNodes returns n's immediate children in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
