package stress

import (
	"runtime"
	"testing"

	"gowool/internal/core"
	"gowool/internal/costmodel"
	"gowool/internal/sim"
)

func TestSerialCountsLeaves(t *testing.T) {
	if got := Serial(5, 16); got != 32 {
		t.Errorf("Serial(5) = %d leaves, want 32", got)
	}
	if got := SerialReps(3, 16, 10); got != 80 {
		t.Errorf("SerialReps = %d, want 80", got)
	}
}

func TestWoolMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := core.NewPool(core.Options{Workers: 4, PrivateTasks: true})
	defer p.Close()
	tree := NewWool()
	if got := RunWool(p, tree, 7, 256, 20); got != 20*128 {
		t.Errorf("wool: %d, want %d", got, 20*128)
	}
}

func TestSimLeafWorkCharged(t *testing.T) {
	res := sim.Run(sim.Config{Procs: 1, Kind: sim.KindDirectStack, Costs: costmodel.Wool(),
		TrackSpan: true}, NewSim(), sim.Args{A0: 6, A1: 256})
	if res.Value != 64 {
		t.Fatalf("leaves = %d, want 64", res.Value)
	}
	wantWork := uint64(64 * 256 * CyclesPerIter)
	if res.Work != wantWork {
		t.Errorf("work = %d, want %d", res.Work, wantWork)
	}
	// The paper quotes 512-cycle leaves for 256 iterations.
	if leaf := res.Work / 64; leaf != 512 {
		t.Errorf("leaf cost = %d cycles, want 512", leaf)
	}
}

func TestSimRepsSerializeRegions(t *testing.T) {
	res := sim.Run(sim.Config{Procs: 8, Kind: sim.KindDirectStack, Costs: costmodel.Wool()},
		NewSimReps(), sim.Args{A0: 3, A1: 4096, A2: 50})
	if res.Value != 50*8 {
		t.Fatalf("leaves = %d, want 400", res.Value)
	}
	// Each region is only 8 leaves: at 8 procs the steals per region
	// must be bounded by the region's task count.
	if res.Total.Steals > 50*7 {
		t.Errorf("steals = %d, want <= %d (bounded by tasks per region)", res.Total.Steals, 50*7)
	}
}

func TestSpinLeafScalesLinearly(t *testing.T) {
	if SpinLeaf(0) != 1 || SpinLeaf(100000) != 1 {
		t.Error("SpinLeaf result wrong")
	}
}

func TestCilkSimTreeMatchesSerial(t *testing.T) {
	for _, procs := range []int{1, 2, 8} {
		cfg := sim.Config{Procs: procs, Costs: costmodel.CilkPP(), Seed: 5}
		got, _ := RunCilkSimReps(cfg, 6, 256, 10)
		if want := int64(10 * 64); got != want {
			t.Errorf("procs=%d: leaves = %d, want %d", procs, got, want)
		}
	}
}

// TestCilkSimConstantSpaceSpawnLoop is the paper's Section I-a space
// property, on the simulator: under steal-parent execution the task
// pool holds at most one continuation regardless of loop length, where
// a steal-child pool would hold one task per element.
func TestCilkSimConstantSpaceSpawnLoop(t *testing.T) {
	cfg := sim.Config{Procs: 1, Costs: costmodel.CilkPP()}
	hits, res := RunCilkSimSpawnLoop(cfg, 5000, 16)
	if hits != 5000 {
		t.Fatalf("leaves = %d, want 5000", hits)
	}
	if res.MaxDeque > 1 {
		t.Errorf("steal-parent pool high-water = %d, want <= 1 (constant space)", res.MaxDeque)
	}
}
