// Package gen is woolgen's generator library: it emits monomorphic
// spawn/join/steal-handler code for declared task signatures, the Go
// analogue of Wool's per-task-type generated spawn and join routines
// (paper Section III-A; DESIGN.md §13).
//
// For each signature the generator emits, into the declaring package:
//
//   - Spawn<Name>: the private fast path (core.SpawnPrepPrivate + a
//     monomorphic descriptor fill + core.SpawnCommitPrivate — every
//     piece inlinable, so the call flattens to plain stores), falling
//     back to the generic TaskDef* slow path when the trip wire is
//     pending, the slot is public, the stack is full, or a per-event
//     hook (tracing, span profiling) could fire;
//   - Join<Name>: the private fast path (core.JoinPrepPrivate + a
//     direct, statically-known call into the user body), falling back
//     to core.JoinAcquire with the same direct call on the generic
//     inline path;
//   - Call<Name>: the plain recursive call between SPAWN and JOIN;
//   - <name>Wrap: the steal handler a thief (or the generic join path)
//     runs, reading the arguments back out of the descriptor;
//   - optionally Spawn<Name>N / Join<Name>N: the batch pair for
//     regular loops, filling a whole window of private descriptors per
//     core.BatchPrepPrivate round so the per-spawn bookkeeping
//     amortizes over the batch.
//
// The user supplies the task body as a function named <name>Body in
// the same package; the generated code calls it directly, which is
// what makes the fast path monomorphic — no interface values, no
// indirect calls, no escapes.
//
// Output files carry a provenance header (see provenance.go) so the
// woolvet generated pass can flag hand-edits.
package gen

import (
	"bytes"
	"fmt"
	"go/format"
	"sort"
	"strings"
)

// Sig declares one task signature to generate code for.
type Sig struct {
	// Name is the exported base name: Spawn<Name>, Join<Name>,
	// Call<Name>. The user body must be named <name>Body (first rune
	// lowered).
	Name string

	// Args is the number of int64 arguments (1..3).
	Args int

	// Ctx is the optional context pointer type ("*RecCtx"); the
	// descriptor carries it in its interface slot (a pointer store,
	// no allocation). Empty means no context.
	Ctx string

	// Batch additionally emits the Spawn<Name>N / Join<Name>N pair
	// (base, base+1, ..., base+n-1 argument ladder; Args must be 1).
	Batch bool
}

// File declares one generated output file.
type File struct {
	// Package is the package name of the output.
	Package string

	// Imports lists extra import paths; gowool/internal/core is
	// always imported.
	Imports []string

	// Sigs are the signatures to generate, emitted in order.
	Sigs []Sig
}

// ParseSpec parses a -task flag value of the form
//
//	Name:args[:ctx=TYPE][:batch]
//
// e.g. "Fib:1", "Rec:1:ctx=*RecCtx", "Noop:1:batch".
func ParseSpec(s string) (Sig, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 {
		return Sig{}, fmt.Errorf("task spec %q: want Name:args[:ctx=TYPE][:batch]", s)
	}
	var sig Sig
	sig.Name = parts[0]
	if sig.Name == "" || sig.Name[0] < 'A' || sig.Name[0] > 'Z' {
		return Sig{}, fmt.Errorf("task spec %q: name must be exported", s)
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &sig.Args); err != nil || sig.Args < 1 || sig.Args > 3 {
		return Sig{}, fmt.Errorf("task spec %q: args must be 1..3", s)
	}
	for _, opt := range parts[2:] {
		switch {
		case strings.HasPrefix(opt, "ctx="):
			sig.Ctx = strings.TrimPrefix(opt, "ctx=")
			if !strings.HasPrefix(sig.Ctx, "*") {
				return Sig{}, fmt.Errorf("task spec %q: ctx type must be a pointer", s)
			}
		case opt == "batch":
			sig.Batch = true
		default:
			return Sig{}, fmt.Errorf("task spec %q: unknown option %q", s, opt)
		}
	}
	if sig.Batch && sig.Args != 1 {
		return Sig{}, fmt.Errorf("task spec %q: batch requires args=1", s)
	}
	return sig, nil
}

// lower returns name with its first rune lowered (Fib → fib).
func lower(name string) string {
	return strings.ToLower(name[:1]) + name[1:]
}

// body returns the user body function name for a signature.
func (s Sig) body() string { return lower(s.Name) + "Body" }

// wrap returns the steal-handler name for a signature.
func (s Sig) wrap() string { return lower(s.Name) + "Wrap" }

// def returns the generic-slow-path definition name for a signature.
func (s Sig) def() string { return lower(s.Name) + "Def" }

// params renders the int64 parameter list ("a0 int64" / "a0, a1 int64").
func (s Sig) params() string {
	names := make([]string, s.Args)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i)
	}
	return strings.Join(names, ", ") + " int64"
}

// argNames renders the int64 argument names ("a0" / "a0, a1").
func (s Sig) argNames() string {
	names := make([]string, s.Args)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i)
	}
	return strings.Join(names, ", ")
}

// taskArgs renders the descriptor accessor reads ("t.Arg0()" ...).
func (s Sig) taskArgs() string {
	names := make([]string, s.Args)
	for i := range names {
		names[i] = fmt.Sprintf("t.Arg%d()", i)
	}
	return strings.Join(names, ", ")
}

// Generate renders, formats and seals the output file.
func Generate(f File) ([]byte, error) {
	if f.Package == "" {
		return nil, fmt.Errorf("gen: empty package name")
	}
	if len(f.Sigs) == 0 {
		return nil, fmt.Errorf("gen: no task signatures")
	}
	seen := map[string]bool{}
	for _, s := range f.Sigs {
		if seen[s.Name] {
			return nil, fmt.Errorf("gen: duplicate task name %s", s.Name)
		}
		seen[s.Name] = true
	}

	var b bytes.Buffer
	p := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	p("\npackage %s\n\n", f.Package)
	imports := append([]string{"gowool/internal/core"}, f.Imports...)
	sort.Strings(imports)
	p("import (\n")
	for _, imp := range imports {
		p("\t%q\n", imp)
	}
	p(")\n")

	for _, s := range f.Sigs {
		genSig(p, s)
	}

	src, err := format.Source(b.Bytes())
	if err != nil {
		return nil, fmt.Errorf("gen: formatting output: %v\n%s", err, b.Bytes())
	}
	return Seal(src), nil
}

// genSig renders one signature's routines.
func genSig(p func(string, ...any), s Sig) {
	name, body, wrap, def := s.Name, s.body(), s.wrap(), s.def()
	ctxElem := strings.TrimPrefix(s.Ctx, "*")

	// The steal handler and the generic slow-path definition.
	p("\n// %s is %s's steal handler: a thief (or the generic join\n", wrap, name)
	p("// path) reads the arguments back out of the descriptor and runs the\n// body.\n")
	if s.Ctx == "" {
		p("func %s(w *core.Worker, t *core.Task) { t.SetRes(%s(w, %s)) }\n\n", wrap, body, s.taskArgs())
		p("// %s carries %s's generic slow path: publication, overflow\n", def, name)
		p("// degradation, tracing and span profiling stay on the TaskDef path.\n")
		p("// Assigned in init — a declaration initializer would be rejected as an\n")
		p("// initialization cycle through the recursive body.\n")
		p("var %s *core.TaskDef%d\n\n", def, s.Args)
		p("func init() { %s = core.Define%d(%q, %s) }\n", def, s.Args, name, body)
	} else {
		p("func %s(w *core.Worker, t *core.Task) { t.SetRes(%s(w, t.Ctx().(%s), %s)) }\n\n",
			wrap, body, s.Ctx, s.taskArgs())
		p("// %s carries %s's generic slow path: publication, overflow\n", def, name)
		p("// degradation, tracing and span profiling stay on the TaskDef path.\n")
		p("// Assigned in init — a declaration initializer would be rejected as an\n")
		p("// initialization cycle through the recursive body.\n")
		p("var %s *core.TaskDefC%d[%s]\n\n", def, s.Args, ctxElem)
		p("func init() { %s = core.DefineC%d[%s](%q, %s) }\n", def, s.Args, ctxElem, name, body)
	}

	ctxParam, ctxArg, set := "", "", fmt.Sprintf("Set%d(%s", s.Args, wrap)
	if s.Ctx != "" {
		ctxParam = "c " + s.Ctx + ", "
		ctxArg = "c, "
		set = fmt.Sprintf("SetC%d(%s, c", s.Args, wrap)
	}

	// Spawn.
	p("\n// Spawn%s spawns one %s task. The private fast path flattens to\n", name, name)
	p("// plain stores into the descriptor; everything else routes through the\n")
	p("// generic TaskDef path.\n")
	p("//\n// woolvet:noescape\n")
	p("func Spawn%s(w *core.Worker, %s%s) {\n", name, ctxParam, s.params())
	p("\tif t := w.SpawnPrepPrivate(); t != nil {\n")
	p("\t\tt.%s, %s)\n", set, s.argNames())
	p("\t\tw.SpawnCommitPrivate(t)\n\t\treturn\n\t}\n")
	p("\t%s.Spawn(w, %s%s)\n}\n", def, ctxArg, s.argNames())

	// Join.
	p("\n// Join%s joins with the most recently spawned task. Both inline\n", name)
	p("// paths call the body directly (statically); a stolen task's result is\n")
	p("// read back from the descriptor.\n")
	p("//\n// woolvet:noescape\n")
	p("func Join%s(w *core.Worker) int64 {\n", name)
	joinCall := fmt.Sprintf("%s(w, %s)", body, s.taskArgs())
	if s.Ctx != "" {
		joinCall = fmt.Sprintf("%s(w, t.Ctx().(%s), %s)", body, s.Ctx, s.taskArgs())
	}
	p("\tif t := w.JoinPrepPrivate(); t != nil {\n\t\treturn %s\n\t}\n", joinCall)
	p("\tt, inline := w.JoinAcquire()\n")
	p("\tif inline {\n\t\tr := %s\n\t\tw.InlineJoinEnd()\n\t\treturn r\n\t}\n", joinCall)
	p("\treturn t.Res()\n}\n")

	// Call.
	p("\n// Call%s invokes the body directly, without creating a task.\n", name)
	p("//\n// woolvet:inline\n")
	p("func Call%s(w *core.Worker, %s%s) int64 { return %s(w, %s%s) }\n",
		name, ctxParam, s.params(), body, ctxArg, s.argNames())

	if !s.Batch {
		return
	}

	// Batch spawn/join (Args == 1).
	p("\n// Spawn%sN spawns n %s tasks with arguments base..base+n-1 in\n", name, name)
	p("// batches: each core.BatchPrepPrivate window pays the per-spawn\n")
	p("// bookkeeping once, and any slot the fast path declines falls back to\n")
	p("// the one-at-a-time spawn with its full generic semantics.\n")
	p("//\n// woolvet:noescape\n")
	p("func Spawn%sN(w *core.Worker, %sbase int64, n int) {\n", name, ctxParam)
	p("\tfor n > 0 {\n")
	p("\t\tb := w.BatchPrepPrivate(n)\n")
	p("\t\tif b == nil {\n\t\t\tSpawn%s(w, %sbase)\n\t\t\tbase++\n\t\t\tn--\n\t\t\tcontinue\n\t\t}\n", name, ctxArg)
	p("\t\tfor j := range b {\n")
	if s.Ctx == "" {
		p("\t\t\tb[j].Set1(%s, base+int64(j))\n", wrap)
	} else {
		p("\t\t\tb[j].SetC1(%s, c, base+int64(j))\n", wrap)
	}
	p("\t\t}\n")
	p("\t\tw.BatchCommitPrivate(len(b))\n")
	p("\t\tbase += int64(len(b))\n\t\tn -= len(b)\n\t}\n}\n")

	p("\n// Join%sN joins the n most recently spawned %s tasks (LIFO) and\n", name, name)
	p("// returns the sum of their results.\n")
	p("//\n// woolvet:noescape\n")
	p("func Join%sN(w *core.Worker, n int) int64 {\n", name)
	p("\tvar sum int64\n\tfor ; n > 0; n-- {\n\t\tsum += Join%s(w)\n\t}\n\treturn sum\n}\n", name)
}
