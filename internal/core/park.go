package core

import (
	"sync"
	"sync/atomic"
	"time"

	"gowool/internal/trace"
)

// idleEngine parks fully idle workers so a quiescent pool consumes ~0%
// CPU instead of sleep-polling forever, while keeping the producer fast
// paths almost free: publishing work costs a single atomic load of
// parked (the "any parked?" check) in the common nobody-parked case,
// and a targeted wake of the most recently parked worker otherwise.
//
// The protocol is an eventcount specialised to this scheduler:
//
//	parker:   announce (push self, publish parked count)
//	          → re-check every victim for visible work and shutdown
//	          → block on its private semaphore
//	producer: make work visible (the task-state / publicLimit store)
//	          → load parked; if nonzero, pop a waiter and signal it
//
// Both sides' atomics are sequentially consistent (sync/atomic), so
// either the producer observes the announce and wakes, or the parker's
// re-check observes the published work and cancels — a lost wake-up
// would require the announce to order after the producer's load AND
// the work store to order after the parker's re-check, which no
// interleaving of the total order allows.
//
// Wake sources: spawn (first public descriptor past an empty region),
// publishMore (trip-wire answer), the trip wire itself (anticipatory),
// steal success (wake propagation: a thief going busy hands the scan to
// a parked peer), and Close (wakeAll).
type idleEngine struct {
	// parkAfter is the cumulative back-off sleep an idle worker pays
	// before parking (derived from Options.MaxIdleSleep), bounding the
	// extra steal latency parking can add to a waking pool.
	parkAfter time.Duration

	// parked mirrors len(stack); it is the producers' cheap gate and
	// is only ever written under mu.
	parked atomic.Int32

	mu    sync.Mutex
	stack []int // parked worker indices, most recent last

	// sem holds one buffered channel per worker. A token is sent only
	// by a waker that has already popped the worker from stack, so at
	// most one token is ever outstanding per worker.
	sem []chan struct{}
}

func newIdleEngine(workers int, parkAfter time.Duration) *idleEngine {
	e := &idleEngine{
		parkAfter: parkAfter,
		stack:     make([]int, 0, workers),
		sem:       make([]chan struct{}, workers),
	}
	for i := range e.sem {
		e.sem[i] = make(chan struct{}, 1)
	}
	return e
}

// park blocks w until a producer wakes it. It returns immediately
// (without blocking) when the re-check finds visible work or a
// shutdown, so parking can never strand a worker while tasks exist.
func (e *idleEngine) park(w *Worker) {
	e.mu.Lock()
	e.stack = append(e.stack, w.idx)
	e.parked.Store(int32(len(e.stack)))
	e.mu.Unlock()
	w.parks.Add(1)
	if w.trc != nil {
		w.trc.Record(trace.KindPark, 0, 0)
	}

	// Re-check after the announce: any work published before the
	// announce was visible to a producer that may have seen parked==0.
	if w.pool.shutdown.Load() || w.anyVisibleWork() {
		if e.cancel(w.idx) {
			return
		}
		// A waker popped us concurrently; its token is in flight.
	}
	<-e.sem[w.idx]
}

// cancel removes idx from the parked stack, reporting false when a
// waker already claimed it (in which case a semaphore token is or will
// shortly be available).
func (e *idleEngine) cancel(idx int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, v := range e.stack {
		if v == idx {
			e.stack = append(e.stack[:i], e.stack[i+1:]...)
			e.parked.Store(int32(len(e.stack)))
			return true
		}
	}
	return false
}

// wakeOne pops the most recently parked worker (warmest caches) and
// signals it, crediting the wake to by. No-op when nothing is parked;
// callers pre-check parked to keep the fast path lock-free, this
// re-check under the lock makes the pop race-free.
func (e *idleEngine) wakeOne(by *Worker) {
	e.mu.Lock()
	n := len(e.stack)
	if n == 0 {
		e.mu.Unlock()
		return
	}
	idx := e.stack[n-1]
	e.stack = e.stack[:n-1]
	e.parked.Store(int32(n - 1))
	e.mu.Unlock()
	by.wakes.Add(1)
	if by.trc != nil {
		by.trc.Record(trace.KindWake, int64(idx), 0)
	}
	e.sem[idx] <- struct{}{}
}

// wakeAll releases every parked worker; used by Close after the
// shutdown flag is set (a worker that parks after this drain re-checks
// shutdown post-announce and cancels itself).
func (e *idleEngine) wakeAll() {
	e.mu.Lock()
	idxs := append([]int(nil), e.stack...)
	e.stack = e.stack[:0]
	e.parked.Store(0)
	e.mu.Unlock()
	for _, idx := range idxs {
		e.sem[idx] <- struct{}{}
	}
}
