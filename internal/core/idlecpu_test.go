//go:build unix

package core

import (
	"runtime"
	"syscall"
	"testing"
	"time"
)

func processCPU(t *testing.T) time.Duration {
	t.Helper()
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		t.Fatalf("getrusage: %v", err)
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// TestIdleCPU is the quiescent-pool guard from the issue: an 8-worker
// pool whose thieves have all parked must consume well under one
// CPU-second across a 200ms idle window. Spinning (parking off) would
// burn up to 7 CPU-threads' worth here; sleep-polling still wakes every
// worker ~20x per window. The 100ms bound leaves headroom for the
// runtime's own background work while failing loudly if the idle engine
// regresses to polling.
func TestIdleCPU(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 8, MaxIdleSleep: 50 * time.Microsecond})
	defer p.Close()
	fib := fibDef()
	if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 16) }); got != serialFib(16) {
		t.Fatalf("warmup: wrong result %d", got)
	}
	if got := waitParked(p, 7, 10*time.Second); got != 7 {
		t.Fatalf("only %d/7 workers parked; cannot measure quiescent CPU", got)
	}
	before := processCPU(t)
	time.Sleep(200 * time.Millisecond)
	used := processCPU(t) - before
	t.Logf("quiescent 200ms window used %v CPU", used)
	if used > 100*time.Millisecond {
		t.Errorf("parked pool used %v CPU over a 200ms quiescent window (want well under one CPU-second; bound 100ms)", used)
	}
}
