// Package core implements the direct task stack, the work-stealing
// scheduler described in Karl-Filip Faxén, "Efficient Work Stealing for
// Fine Grained Parallelism" (ICPP 2010), where it is called Wool.
//
// The task pool of each worker is an array of fixed-size task
// descriptors managed with a strict stack discipline: the owner pushes
// and pops at top, thieves steal at bot. Thief/victim synchronization
// happens on the state field of the task descriptor itself — the owner
// claims a task with an atomic exchange, a thief with a compare-and-swap
// — rather than on the top/bot indices as in Cilk, TBB or the Chase-Lev
// deque. top is private to the owner. bot carries no explicit
// synchronization: it is implicitly owned by whichever worker stole (or
// joined with) the task it points at, and a thief re-checks bot after
// its CAS, backing off when the value moved (the paper's ABA guard).
//
// On top of the basic algorithm the package implements the paper's
// optimizations: task-specific join functions (TaskDef1..TaskDef4 and
// the context-carrying variants call the task function directly on the
// inline path), private tasks with the trip-wire publication scheme
// (Section III-B), and leapfrogging for joins that find their task
// stolen (stealing only from the thief, Section I-b).
package core

import "sync/atomic"

// Task states. The paper packs TASK(w) as the wrapper function pointer
// and uses odd integers for the other values; Go cannot portably store a
// function pointer in an atomic word without unsafe, so the wrapper
// lives in its own field (fn) whose write is published by the atomic
// store of stateTask (release/acquire via sync/atomic).
const (
	// stateEmpty marks a descriptor holding no stealable task. It is
	// both the rest state and the transient state while a thief is
	// between its CAS and its commit (STOLEN) or back-off (restore).
	stateEmpty uint64 = 0

	// stateDone marks a stolen task whose thief has completed it.
	stateDone uint64 = 1

	// stateTask marks a live task that can be stolen or inlined.
	stateTask uint64 = 2

	// stateStolenBase tags STOLEN(i): stateStolenBase | i<<stolenShift.
	// Knowing the thief is what enables leapfrogging.
	stateStolenBase uint64 = 3
	stolenShift            = 8
)

// maxWorkers bounds Options.Workers: a thief index must survive the
// round trip through stolenState/stolenThief, and the state word has
// 64-stolenShift bits for it. NewPool rejects larger pools — silently
// truncated indices would make leapfrog steal from the wrong worker.
const maxWorkers uint64 = 1 << (64 - stolenShift)

func stolenState(thief int) uint64 { return stateStolenBase | uint64(thief)<<stolenShift }

func isStolen(s uint64) bool { return s&0xff == stateStolenBase }

func stolenThief(s uint64) int { return int(s >> stolenShift) }

// TaskFunc is the wrapper invoked for a stolen task (and on the generic
// join path). It reads its arguments from the descriptor and writes the
// result back into it. w is the worker executing the task, which for a
// stolen task is the thief, not the spawner.
type TaskFunc func(w *Worker, t *Task)

// Task is one descriptor in a worker's direct task stack. Descriptors
// are stored by value in the pool array — no pointers, no free lists —
// so a steal touches a single contiguous block holding both the
// synchronization word and the data needed to run the task.
//
// Field ownership:
//   - state: shared; always accessed atomically by both owner and thieves.
//   - fn, a0..a3, ctx: written by the owner before the state store that
//     publishes the task; read by a thief only after a successful CAS on
//     state (acquire), or by the owner itself.
//   - res: written by whoever ran the task; read by the owner after
//     it has observed completion through state.
//   - priv: owner-only. Thieves never touch it, which is what makes the
//     private-task fast path race-free without atomics (Section III-B).
//
// Descriptors are recycled without clearing, so a ctx pointer stays
// referenced until its slot is reused — at most StackSize stale
// references per worker, the price of an allocation-free spawn path.
//
// woolvet:cacheline size=128
type Task struct {
	// state transitions are claims: the owner Swaps, a thief
	// CompareAndSwaps. The only plain Stores are publication and the
	// thief's commit/back-off, each individually allowed at the site.
	// woolvet:atomic methods=Load,Swap,CompareAndSwap
	state atomic.Uint64

	// The argument words are published to thieves by the state word:
	// every owner write below must dominate the release store of
	// state, and a thief may read them only after its CAS claim
	// (publication pass, DESIGN.md §15).
	// woolvet:published-by state
	fn TaskFunc

	// woolvet:published-by state
	a0, a1, a2, a3 int64
	// woolvet:published-by state
	ctx any

	// res flows the other way: the thief writes it before its DONE
	// release, the owner reads it after the acquire load of state.
	// woolvet:published-by state
	res int64

	priv bool

	// Pad the descriptor to 128 bytes (two cache lines on common
	// hardware, one on those with 128-byte lines) so adjacent
	// descriptors do not false-share while owner and thief work on
	// neighbouring stack slots. Checked by TestTaskSize and by the
	// layoutguard pass (woolvet:cacheline size=128 above).
	_ [55]byte
}

// The accessors below are the argument-storage surface for woolgen's
// monomorphic generated code (DESIGN.md §13), which lives outside this
// package and therefore cannot touch the unexported descriptor fields.
// Each is a leaf small enough for the inliner, so a generated spawn
// flattens to plain stores into the descriptor — the same instruction
// sequence the TaskDef* methods produce inside the package.

// Set1 stores the wrapper and one int64 argument.
//
// woolvet:inline
// woolvet:publish-write state
func (t *Task) Set1(fn TaskFunc, a0 int64) {
	t.fn = fn
	t.a0 = a0
}

// Set2 stores the wrapper and two int64 arguments.
//
// woolvet:inline
// woolvet:publish-write state
func (t *Task) Set2(fn TaskFunc, a0, a1 int64) {
	t.fn = fn
	t.a0 = a0
	t.a1 = a1
}

// Set3 stores the wrapper and three int64 arguments.
//
// woolvet:inline
// woolvet:publish-write state
func (t *Task) Set3(fn TaskFunc, a0, a1, a2 int64) {
	t.fn = fn
	t.a0 = a0
	t.a1 = a1
	t.a2 = a2
}

// SetC1 stores the wrapper, a context pointer and one int64 argument.
// Storing a pointer in the interface slot does not allocate.
//
// woolvet:inline
// woolvet:publish-write state
func (t *Task) SetC1(fn TaskFunc, ctx any, a0 int64) {
	t.fn = fn
	t.ctx = ctx
	t.a0 = a0
}

// SetC2 stores the wrapper, a context pointer and two int64 arguments.
//
// woolvet:inline
// woolvet:publish-write state
func (t *Task) SetC2(fn TaskFunc, ctx any, a0, a1 int64) {
	t.fn = fn
	t.ctx = ctx
	t.a0 = a0
	t.a1 = a1
}

// SetC3 stores the wrapper, a context pointer and three int64
// arguments.
//
// woolvet:inline
// woolvet:publish-write state
func (t *Task) SetC3(fn TaskFunc, ctx any, a0, a1, a2 int64) {
	t.fn = fn
	t.ctx = ctx
	t.a0 = a0
	t.a1 = a1
	t.a2 = a2
}

// Arg0 returns the first int64 argument.
//
// woolvet:inline
func (t *Task) Arg0() int64 { return t.a0 }

// Arg1 returns the second int64 argument.
//
// woolvet:inline
func (t *Task) Arg1() int64 { return t.a1 }

// Arg2 returns the third int64 argument.
//
// woolvet:inline
func (t *Task) Arg2() int64 { return t.a2 }

// Ctx returns the stored context value.
//
// woolvet:inline
func (t *Task) Ctx() any { return t.ctx }

// Res returns the task's result (valid once the owner has observed
// completion through the join protocol).
//
// woolvet:inline
func (t *Task) Res() int64 { return t.res }

// SetRes stores the task's result (wrapper use).
//
// woolvet:inline
// woolvet:publish-write state
func (t *Task) SetRes(r int64) { t.res = r }
