package gowool_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"gowool"
)

// ExampleDefine1 is the paper's Figure 2: fib with SPAWN/CALL/JOIN.
func ExampleDefine1() {
	var fib *gowool.TaskDef1
	fib = gowool.Define1("fib", func(w *gowool.Worker, n int64) int64 {
		if n < 2 {
			return n
		}
		fib.Spawn(w, n-2)
		a := fib.Call(w, n-1)
		b := fib.Join(w)
		return a + b
	})

	pool := gowool.NewPool(gowool.Options{Workers: 2})
	defer pool.Close()
	fmt.Println(pool.Run(func(w *gowool.Worker) int64 { return fib.Call(w, 20) }))
	// Output: 6765
}

// ExampleDefineC2 parallelizes over a shared structure: the context
// pointer rides in the task descriptor without allocation.
func ExampleDefineC2() {
	type vec struct{ a []int64 }
	var sum *gowool.TaskDefC2[vec]
	sum = gowool.DefineC2("sum", func(w *gowool.Worker, v *vec, lo, hi int64) int64 {
		if hi-lo <= 4 {
			var s int64
			for i := lo; i < hi; i++ {
				s += v.a[i]
			}
			return s
		}
		mid := (lo + hi) / 2
		sum.Spawn(w, v, lo, mid)
		right := sum.Call(w, v, mid, hi)
		left := sum.Join(w)
		return left + right
	})

	v := &vec{a: make([]int64, 100)}
	for i := range v.a {
		v.a[i] = int64(i)
	}
	pool := gowool.NewPool(gowool.Options{Workers: 2, PrivateTasks: true})
	defer pool.Close()
	fmt.Println(pool.Run(func(w *gowool.Worker) int64 { return sum.Call(w, v, 0, 100) }))
	// Output: 4950
}

func TestPublicAPISurface(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	// Every Define arity through the public package.
	d1 := gowool.Define1("d1", func(w *gowool.Worker, a int64) int64 { return a })
	d2 := gowool.Define2("d2", func(w *gowool.Worker, a, b int64) int64 { return a + b })
	d3 := gowool.Define3("d3", func(w *gowool.Worker, a, b, c int64) int64 { return a + b + c })
	d4 := gowool.Define4("d4", func(w *gowool.Worker, a, b, c, d int64) int64 { return a + b + c + d })
	type ctx struct{ mult int64 }
	c1 := gowool.DefineC1("c1", func(w *gowool.Worker, c *ctx, a int64) int64 { return c.mult * a })
	c2 := gowool.DefineC2("c2", func(w *gowool.Worker, c *ctx, a, b int64) int64 { return c.mult * (a + b) })
	c3 := gowool.DefineC3("c3", func(w *gowool.Worker, c *ctx, a, b, d int64) int64 { return c.mult * (a + b + d) })

	p := gowool.NewPool(gowool.Options{Workers: 3, PrivateTasks: true, Profile: true})
	defer p.Close()
	cx := &ctx{mult: 2}
	got := p.Run(func(w *gowool.Worker) int64 {
		d1.Spawn(w, 1)
		d2.Spawn(w, 1, 2)
		d3.Spawn(w, 1, 2, 3)
		d4.Spawn(w, 1, 2, 3, 4)
		c1.Spawn(w, cx, 5)
		c2.Spawn(w, cx, 5, 6)
		c3.Spawn(w, cx, 5, 6, 7)
		var s int64
		for i := 0; i < 7; i++ {
			s += w.JoinAny()
		}
		return s
	})
	want := int64(1 + 3 + 6 + 10 + 10 + 22 + 36)
	if got != want {
		t.Errorf("got %d, want %d", got, want)
	}

	st := p.Stats()
	if st.Spawns != 7 || st.Joins() != 7 {
		t.Errorf("stats: %+v", st)
	}
	if b := p.Profile(); b.Total() < 0 {
		t.Errorf("profile: %+v", b)
	}
}

func TestSpanProfilerPublic(t *testing.T) {
	p := gowool.NewPool(gowool.Options{Workers: 1, Span: true})
	defer p.Close()
	sp := p.SpanProfiler()
	if sp == nil {
		t.Fatal("nil SpanProfiler with Span enabled")
	}
	var leaf *gowool.TaskDef1
	leaf = gowool.Define1("leaf", func(w *gowool.Worker, d int64) int64 {
		if d == 0 {
			sp.AddWork(1e6)
			return 1
		}
		leaf.Spawn(w, d-1)
		a := leaf.Call(w, d-1)
		return a + leaf.Join(w)
	})
	sp.Begin()
	p.Run(func(w *gowool.Worker) int64 { return leaf.Call(w, 3) })
	work, span0, spanO := sp.End()
	if work <= 0 || span0 <= 0 || spanO < span0 || work < spanO {
		t.Errorf("span invariants violated: work=%v span0=%v spanO=%v", work, span0, spanO)
	}
}

// ExampleFor parallelizes a loop as a balanced task tree (Wool's loop
// construct, as used by the paper's mm benchmark).
func ExampleFor() {
	pool := gowool.NewPool(gowool.Options{Workers: 2, PrivateTasks: true})
	defer pool.Close()

	squares := make([]int64, 8)
	pool.Run(func(w *gowool.Worker) int64 {
		gowool.For(w, 0, int64(len(squares)), 2, func(i int64) {
			squares[i] = i * i
		})
		return 0
	})
	fmt.Println(squares)
	// Output: [0 1 4 9 16 25 36 49]
}

// TestServerPublic exercises the woolserve surface through the public
// package: concurrent submissions, a mid-flight cancellation that
// kills only its own request, and the public abort/reset lifecycle on
// a plain Pool.
func TestServerPublic(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	fib := gowool.RecJob{
		Name: "fib",
		Root: 15,
		Leaf: func(n int64) (int64, bool) {
			if n < 2 {
				return n, true
			}
			return 0, false
		},
		Split: func(n int64) (inline, spawned int64) { return n - 1, n - 2 },
	}
	const wantFib = 610 // fib(15)

	s, err := gowool.NewServer(gowool.ServerOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var tks []*gowool.Ticket
	for i := 0; i < 8; i++ {
		tk, err := s.Submit(context.Background(), "", gowool.ServeRec(fib))
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	for _, tk := range tks {
		if v, err := tk.Wait(); err != nil || v != wantFib {
			t.Fatalf("fib(15): v=%d err=%v, want %d, nil", v, err, wantFib)
		}
	}

	// Mid-flight cancellation: a spinning request dies with its
	// context's error, the server keeps serving.
	var gate, started atomic.Bool
	spin := gowool.RecJob{
		Name: "spin",
		Root: 64,
		Leaf: func(n int64) (int64, bool) {
			if n < 0 {
				started.Store(true)
				for !gate.Load() {
					runtime.Gosched()
				}
				return 1, true
			}
			if n == 0 {
				return 1, true
			}
			return 0, false
		},
		Split: func(n int64) (inline, spawned int64) { return -1, n - 1 },
	}
	ctx, cancel := context.WithCancel(context.Background())
	victim, err := s.Submit(ctx, "", gowool.ServeRec(spin))
	if err != nil {
		t.Fatal(err)
	}
	for !started.Load() {
		runtime.Gosched()
	}
	cancel()
	time.Sleep(10 * time.Millisecond) // let the abort land mid-spin
	gate.Store(true)
	if _, werr := victim.Wait(); !errors.Is(werr, context.Canceled) {
		t.Fatalf("cancelled request: err = %v, want context.Canceled", werr)
	}
	tk, err := s.Submit(context.Background(), "", gowool.ServeRec(fib))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := tk.Wait(); err != nil || v != wantFib {
		t.Fatalf("post-cancel fib(15): v=%d err=%v, want %d, nil", v, err, wantFib)
	}
	if _, err := s.Submit(context.Background(), "ghost", gowool.ServeRec(fib)); !errors.Is(err, gowool.ErrUnknownTenant) {
		t.Fatalf("unknown tenant: err = %v, want ErrUnknownTenant", err)
	}

	// The abort machinery is public on Pool itself.
	p := gowool.NewPool(gowool.Options{Workers: 2})
	defer p.Close()
	probe := errors.New("probe")
	res := make(chan any, 1)
	var pgate, pstarted atomic.Bool
	busy := gowool.Define1("busy", func(w *gowool.Worker, n int64) int64 {
		pstarted.Store(true)
		for !pgate.Load() {
			runtime.Gosched()
		}
		return n
	})
	go func() {
		defer func() { res <- recover() }()
		p.Run(func(w *gowool.Worker) int64 { return busy.Call(w, 1) })
	}()
	for !pstarted.Load() {
		runtime.Gosched()
	}
	if !p.Abort(probe) {
		t.Fatal("Abort returned false on a running pool")
	}
	pgate.Store(true)
	r := <-res
	var ae *gowool.AbortError
	if e, ok := r.(error); !ok || !errors.As(e, &ae) || !errors.Is(ae, probe) {
		t.Fatalf("aborted Run panicked with %v, want *AbortError wrapping the probe", r)
	}
	if err := p.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	got := p.Run(func(w *gowool.Worker) int64 { return busy.Call(w, 7) })
	if got != 7 {
		t.Fatalf("post-Reset Run = %d, want 7", got)
	}
}
