package cholesky

// Serial divide-and-conquer factorization (the reference the parallel
// versions must match, and the T_S baseline of the granularity
// measures). The recursion follows the Cilk-5 benchmark:
//
//	cholesky(A):                       // A symmetric, lower stored
//	    L00  = cholesky(A00)
//	    L10  = backsub(A10, L00)       // solve L10·L00ᵀ = A10
//	    A11' = A11 − L10·L10ᵀ          // symmetric update, lower only
//	    L11  = cholesky(A11')
//
// backsub and mulsub recurse over quadrants; mulsub allocates fill-in
// where a zero block turns nonzero.

// Factor factors m in place: afterwards the quadtree holds L.
func (m *Matrix) Factor() { m.Root = m.Ar.cholesky(m.Root, m.Ar.Size) }

// cholesky factors the diagonal (lower-triangular) subtree a in place.
func (ar *Arena) cholesky(a int32, size int64) int32 {
	if a == 0 {
		panic("cholesky: zero diagonal block (matrix is singular)")
	}
	if size == Block {
		blockCholesky(ar.Tile(a))
		return a
	}
	n := ar.Node(a)
	half := size / 2
	n.Child[q00] = ar.cholesky(n.Child[q00], half)
	n.Child[q10] = ar.backsub(n.Child[q10], n.Child[q00], half)
	n.Child[q11] = ar.mulsub(n.Child[q11], n.Child[q10], n.Child[q10], half, true)
	n.Child[q11] = ar.cholesky(n.Child[q11], half)
	return a
}

// backsub solves X·Lᵀ = A in place over a full (rectangular) subtree a
// against the lower-triangular factor subtree l, returning a.
func (ar *Arena) backsub(a, l int32, size int64) int32 {
	if a == 0 {
		return 0
	}
	if size == Block {
		blockBacksub(ar.Tile(a), ar.Tile(l))
		return a
	}
	na, nl := ar.Node(a), ar.Node(l)
	half := size / 2
	l00, l10, l11 := nl.Child[q00], nl.Child[q10], nl.Child[q11]

	// Left column against L00.
	na.Child[q00] = ar.backsub(na.Child[q00], l00, half)
	na.Child[q10] = ar.backsub(na.Child[q10], l00, half)
	// Eliminate the L10 coupling from the right column.
	na.Child[q01] = ar.mulsub(na.Child[q01], na.Child[q00], l10, half, false)
	na.Child[q11] = ar.mulsub(na.Child[q11], na.Child[q10], l10, half, false)
	// Right column against L11.
	na.Child[q01] = ar.backsub(na.Child[q01], l11, half)
	na.Child[q11] = ar.backsub(na.Child[q11], l11, half)
	return a
}

// mulsub computes r −= a·bᵀ over subtrees, allocating r (fill-in)
// where needed; lower restricts the update to the lower triangle of a
// symmetric diagonal target. Returns the (possibly new) r.
func (ar *Arena) mulsub(r, a, b int32, size int64, lower bool) int32 {
	if a == 0 || b == 0 {
		return r
	}
	if size == Block {
		if r == 0 {
			r = ar.NewLeaf()
		}
		blockMulSub(ar.Tile(r), ar.Tile(a), ar.Tile(b), lower)
		return r
	}
	if r == 0 {
		r = ar.NewNode()
	}
	nr, na, nb := ar.Node(r), ar.Node(a), ar.Node(b)
	half := size / 2

	nr.Child[q00] = ar.mulsub(nr.Child[q00], na.Child[q00], nb.Child[q00], half, lower)
	nr.Child[q00] = ar.mulsub(nr.Child[q00], na.Child[q01], nb.Child[q01], half, lower)
	if !lower {
		nr.Child[q01] = ar.mulsub(nr.Child[q01], na.Child[q00], nb.Child[q10], half, false)
		nr.Child[q01] = ar.mulsub(nr.Child[q01], na.Child[q01], nb.Child[q11], half, false)
	}
	nr.Child[q10] = ar.mulsub(nr.Child[q10], na.Child[q10], nb.Child[q00], half, false)
	nr.Child[q10] = ar.mulsub(nr.Child[q10], na.Child[q11], nb.Child[q01], half, false)
	nr.Child[q11] = ar.mulsub(nr.Child[q11], na.Child[q10], nb.Child[q10], half, lower)
	nr.Child[q11] = ar.mulsub(nr.Child[q11], na.Child[q11], nb.Child[q11], half, lower)
	return r
}
