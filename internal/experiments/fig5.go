package experiments

import (
	"io"
	"strings"

	"gowool/internal/tabulate"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Paper: "Figure 5",
		Title: "Speedup of the fine-grained applications on all four systems",
		Run:   runFig5,
	})
}

// runFig5 reproduces Figure 5: the full speedup grid — every workload
// configuration of the catalog, all four systems, 1..8 processors.
// As in the paper, cholesky/mm/ssf report absolute speedup against the
// sequential work, while stress reports speedup relative to the
// single-processor Wool execution.
func runFig5(sc Scale, w io.Writer) error {
	procs := procsFor(sc)
	systems := Systems()
	for _, wl := range Catalog(sc) {
		relativeToWool := strings.HasPrefix(wl.Family, "stress")

		var base float64
		if relativeToWool {
			root, args := wl.Root()
			base = float64(systems[0].run(1, root, args).Makespan)
		} else {
			root, args := wl.Root()
			base = float64(serialWork(root, args).Work)
		}

		ylabel := "absolute speedup"
		if relativeToWool {
			ylabel = "speedup vs 1-proc Wool"
		}
		plot := tabulate.NewPlot("Figure 5 — "+wl.Name(), "procs", ylabel, floatProcs(procs))
		for _, sys := range systems {
			vals := make([]float64, len(procs))
			for i, p := range procs {
				root, args := wl.Root()
				res := sys.run(p, root, args)
				vals[i] = base / float64(res.Makespan)
			}
			plot.Add(sys.Name, vals)
		}
		plot.Render(w)
	}
	return nil
}
