package cilkstyle

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// fibFrame is the cactus-stack frame of the Cilk-style fib, written as
// the explicit state machine Cilk++'s compiler would generate.
type fibFrame struct {
	Frame
	n    int64
	a, b int64
	res  *int64
}

func (f *fibFrame) step0(w *Worker) Step {
	if f.n < 2 {
		*f.res = f.n
		return w.Return(&f.Frame)
	}
	child := &fibFrame{n: f.n - 1, res: &f.a}
	NewChild(&f.Frame, &child.Frame)
	return w.Spawn(&f.Frame, f.step1, child.step0)
}

func (f *fibFrame) step1(w *Worker) Step {
	child := &fibFrame{n: f.n - 2, res: &f.b}
	NewChild(&f.Frame, &child.Frame)
	return w.Spawn(&f.Frame, f.step2, child.step0)
}

func (f *fibFrame) step2(w *Worker) Step {
	return w.Sync(&f.Frame, f.step3)
}

func (f *fibFrame) step3(w *Worker) Step {
	*f.res = f.a + f.b
	return w.Return(&f.Frame)
}

func serialFib(n int64) int64 {
	if n < 2 {
		return n
	}
	return serialFib(n-1) + serialFib(n-2)
}

func runFib(p *Pool, n int64) int64 {
	var res int64
	root := &fibFrame{n: n, res: &res}
	p.Run(&root.Frame, root.step0)
	return res
}

func TestFibSingleWorker(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	for n := int64(0); n <= 15; n++ {
		if got := runFib(p, n); got != serialFib(n) {
			t.Errorf("fib(%d) = %d, want %d", n, got, serialFib(n))
		}
	}
}

func TestFibMultiWorker(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, workers := range []int{2, 4} {
		p := NewPool(Options{Workers: workers})
		for rep := 0; rep < 5; rep++ {
			if got := runFib(p, 18); got != serialFib(18) {
				t.Errorf("workers=%d rep=%d: got %d want %d", workers, rep, got, serialFib(18))
			}
		}
		p.Close()
	}
}

func TestStatsSpawns(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	runFib(p, 12)
	st := p.Stats()
	// fib spawns two children per internal node.
	var count func(n int64) int64
	count = func(n int64) int64 {
		if n < 2 {
			return 0
		}
		return 2 + count(n-1) + count(n-2)
	}
	if st.Spawns != count(12) {
		t.Errorf("spawns = %d, want %d", st.Spawns, count(12))
	}
}

// loopFrame reproduces the paper's Section I-a example:
//
//	for (; p != NULL; p = p->next) spawn foo(p);
//	sync;
//
// Under steal-parent execution the task pool holds at most one
// continuation at a time (constant space), whereas steal-child systems
// hold one task per list element.
type loopFrame struct {
	Frame
	i, n     int64
	maxDepth int
	hits     *atomic.Int64
}

type leafFrame struct {
	Frame
	hits *atomic.Int64
}

func (l *leafFrame) step0(w *Worker) Step {
	l.hits.Add(1)
	return w.Return(&l.Frame)
}

func (f *loopFrame) loop(w *Worker) Step {
	if d := w.DequeLen(); d > f.maxDepth {
		f.maxDepth = d
	}
	if f.i >= f.n {
		return w.Sync(&f.Frame, f.after)
	}
	f.i++
	child := &leafFrame{hits: f.hits}
	NewChild(&f.Frame, &child.Frame)
	return w.Spawn(&f.Frame, f.loop, child.step0)
}

func (f *loopFrame) after(w *Worker) Step {
	return w.Return(&f.Frame)
}

func TestConstantSpaceSpawnLoop(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	var hits atomic.Int64
	root := &loopFrame{n: 10000, hits: &hits}
	p.Run(&root.Frame, root.loop)
	if hits.Load() != 10000 {
		t.Fatalf("leaves run = %d, want 10000", hits.Load())
	}
	// Steal-parent: the pool never holds more than the single loop
	// continuation (paper: "Cilk will use constant space for the task
	// pool, whereas Wool and TBB will use space proportional to the
	// length of the list").
	if root.maxDepth > 1 {
		t.Errorf("max pool depth = %d, want <= 1 (constant space)", root.maxDepth)
	}
}

func TestSuspendsHappenWhenStolen(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4})
	defer p.Close()
	for i := 0; i < 10; i++ {
		runFib(p, 16)
	}
	st := p.Stats()
	if st.Steals > 0 && st.Suspends == 0 {
		t.Log("steals occurred but no suspends; unusual but timing-dependent")
	}
	if st.Resumes > st.Suspends {
		t.Errorf("resumes (%d) > suspends (%d)", st.Resumes, st.Suspends)
	}
}

func TestRunOnClosedPanics(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var res int64
	root := &fibFrame{n: 1, res: &res}
	p.Run(&root.Frame, root.step0)
}

func BenchmarkSpawnReturnCilk(b *testing.B) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	var hits atomic.Int64
	b.ResetTimer()
	root := &loopFrame{n: int64(b.N), hits: &hits}
	p.Run(&root.Frame, root.loop)
}
