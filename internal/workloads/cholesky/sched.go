package cholesky

import (
	"gowool/internal/sched"
)

// Parallel factorization, generic over the scheduler. The cholesky
// chain itself is a sequential dependency (L00 → L10 → update → L11);
// the parallelism lives in backsub and mulsub, which fork over
// quadrants — the "explicit nested tasks" of the paper's benchmark
// description.
//
// Task arguments are node indices packed into the descriptors' int64
// slots, so no allocation happens on the spawn path; fill-in nodes
// come from the arena's atomic bump allocator. The body is written
// once here and instantiated per scheduler by handing New the
// scheduler's DefineC3-style constructor (this file replaces what
// used to be three hand-maintained copies: wool, chaselev and
// locksched ports).

// pack2 packs two node indices into one int64 argument slot.
func pack2(a, b int32) int64 { return int64(uint64(uint32(a))<<32 | uint64(uint32(b))) }

// unpack2 reverses pack2.
func unpack2(v int64) (int32, int32) { return int32(uint64(v) >> 32), int32(uint32(uint64(v))) }

// packMeta packs a result-node index, subtree size and the lower flag.
func packMeta(r int32, size int64, lower bool) int64 {
	m := int64(uint32(r)) | size<<32
	if lower {
		m |= 1 << 62
	}
	return m
}

// unpackMeta reverses packMeta.
func unpackMeta(m int64) (r int32, size int64, lower bool) {
	r = int32(uint32(uint64(m)))
	size = (m >> 32) & 0x3fffffff
	lower = m&(1<<62) != 0
	return
}

// Sched bundles the task definitions of the parallel factorization
// for one scheduler: W is the scheduler's worker type, D its
// context-carrying three-argument task definition.
type Sched[W any, D sched.TaskC3[W, Arena]] struct {
	backsub D
	// mulsub computes r −= a1·b1ᵀ + a2·b2ᵀ (second product optional):
	// args are (meta, pack2(a1,b1), pack2(a2,b2)).
	mulsub D
}

// New builds the task definitions from a scheduler's DefineC3-style
// constructor; W and D are inferred from it, e.g.
// New(core.DefineC3[cholesky.Arena]).
func New[W any, D sched.TaskC3[W, Arena]](define func(string, func(W, *Arena, int64, int64, int64) int64) D) *Sched[W, D] {
	s := &Sched[W, D]{}
	s.backsub = define("chol-backsub", func(w W, ar *Arena, a, l, size int64) int64 {
		return int64(s.backsubStep(w, ar, int32(a), int32(l), size))
	})
	s.mulsub = define("chol-mulsub", func(w W, ar *Arena, meta, ab1, ab2 int64) int64 {
		r, size, lower := unpackMeta(meta)
		a1, b1 := unpack2(ab1)
		a2, b2 := unpack2(ab2)
		r = s.mulsubStep(w, ar, r, a1, b1, size, lower)
		r = s.mulsubStep(w, ar, r, a2, b2, size, lower)
		return int64(r)
	})
	return s
}

// Factor factors m, driven by the pool's Run entry point (e.g.
// p.Run as a method value).
func (s *Sched[W, D]) Factor(run func(func(W) int64) int64, m *Matrix) {
	run(func(w W) int64 {
		m.Root = s.chol(w, m.Ar, m.Root, m.Ar.Size)
		return 0
	})
}

// chol is the sequential factorization chain over the diagonal.
func (s *Sched[W, D]) chol(w W, ar *Arena, a int32, size int64) int32 {
	if a == 0 {
		panic("cholesky: zero diagonal block (matrix is singular)")
	}
	if size == Block {
		blockCholesky(ar.Tile(a))
		return a
	}
	n := ar.Node(a)
	half := size / 2
	n.Child[q00] = s.chol(w, ar, n.Child[q00], half)
	n.Child[q10] = int32(s.backsub.Call(w, ar, int64(n.Child[q10]), int64(n.Child[q00]), half))
	n.Child[q11] = s.mulsubStep(w, ar, n.Child[q11], n.Child[q10], n.Child[q10], half, true)
	n.Child[q11] = s.chol(w, ar, n.Child[q11], half)
	return a
}

// backsubStep forks the quadrant structure of backsub.
func (s *Sched[W, D]) backsubStep(w W, ar *Arena, a, l int32, size int64) int32 {
	if a == 0 {
		return 0
	}
	if size == Block {
		blockBacksub(ar.Tile(a), ar.Tile(l))
		return a
	}
	na, nl := ar.Node(a), ar.Node(l)
	half := size / 2
	l00, l10, l11 := nl.Child[q00], nl.Child[q10], nl.Child[q11]

	// Left column against L00, in parallel.
	s.backsub.Spawn(w, ar, int64(na.Child[q00]), int64(l00), half)
	x10 := int32(s.backsub.Call(w, ar, int64(na.Child[q10]), int64(l00), half))
	x00 := int32(s.backsub.Join(w))
	na.Child[q00], na.Child[q10] = x00, x10

	// Eliminate the L10 coupling, both halves in parallel.
	s.mulsub.Spawn(w, ar, packMeta(na.Child[q01], half, false), pack2(x00, l10), 0)
	r11 := int32(s.mulsub.Call(w, ar, packMeta(na.Child[q11], half, false), pack2(x10, l10), 0))
	r01 := int32(s.mulsub.Join(w))

	// Right column against L11, in parallel.
	s.backsub.Spawn(w, ar, int64(r01), int64(l11), half)
	x11 := int32(s.backsub.Call(w, ar, int64(r11), int64(l11), half))
	x01 := int32(s.backsub.Join(w))
	na.Child[q01], na.Child[q11] = x01, x11
	return a
}

// mulsubStep forks the quadrants of r −= a·bᵀ; each quadrant task
// folds its two sub-products sequentially (and recursively in
// parallel below). Join order mirrors the LIFO spawn order.
func (s *Sched[W, D]) mulsubStep(w W, ar *Arena, r, a, b int32, size int64, lower bool) int32 {
	if a == 0 || b == 0 {
		return r
	}
	if size == Block {
		if r == 0 {
			r = ar.NewLeaf()
		}
		blockMulSub(ar.Tile(r), ar.Tile(a), ar.Tile(b), lower)
		return r
	}
	if r == 0 {
		r = ar.NewNode()
	}
	nr, na, nb := ar.Node(r), ar.Node(a), ar.Node(b)
	half := size / 2

	s.mulsub.Spawn(w, ar, packMeta(nr.Child[q00], half, lower),
		pack2(na.Child[q00], nb.Child[q00]), pack2(na.Child[q01], nb.Child[q01]))
	if !lower {
		s.mulsub.Spawn(w, ar, packMeta(nr.Child[q01], half, false),
			pack2(na.Child[q00], nb.Child[q10]), pack2(na.Child[q01], nb.Child[q11]))
	}
	s.mulsub.Spawn(w, ar, packMeta(nr.Child[q10], half, false),
		pack2(na.Child[q10], nb.Child[q00]), pack2(na.Child[q11], nb.Child[q01]))
	r11 := int32(s.mulsub.Call(w, ar, packMeta(nr.Child[q11], half, lower),
		pack2(na.Child[q10], nb.Child[q10]), pack2(na.Child[q11], nb.Child[q11])))

	r10 := int32(s.mulsub.Join(w))
	r01 := nr.Child[q01]
	if !lower {
		r01 = int32(s.mulsub.Join(w))
	}
	r00 := int32(s.mulsub.Join(w))
	nr.Child[q00], nr.Child[q01], nr.Child[q10], nr.Child[q11] = r00, r01, r10, r11
	return r
}
