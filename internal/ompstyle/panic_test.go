package ompstyle

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestStolenTaskPanicPropagates forces the panic onto a non-master
// team member (the bomb spins until the master sees it started, which
// before the master arms it can only happen on another member) and
// checks the abort path: execute's recover still decrements the
// parent's children count so the master's implicit barrier completes,
// Run re-raises the original value, the pool is poisoned against
// reuse, and Close completes (no dead team member).
func TestStolenTaskPanicPropagates(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for attempt := 0; attempt < 30; attempt++ {
		p := NewPool(Options{Workers: 2, MaxIdleSleep: -1})
		var armed, started atomic.Bool
		var bombWorker atomic.Int32
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatal("panic did not propagate from Run")
				} else if r != "boom" {
					t.Fatalf("wrong panic value %v", r)
				}
			}()
			p.Run(func(tc *Context) int64 {
				tc.SpawnTask(func(tc2 *Context) {
					started.Store(true)
					bombWorker.Store(int32(tc2.wi))
					for !armed.Load() {
						runtime.Gosched()
					}
					panic("boom")
				})
				deadline := time.Now().Add(5 * time.Millisecond)
				for !started.Load() && time.Now().Before(deadline) {
					runtime.Gosched()
				}
				armed.Store(true)
				return 0
			})
		}()
		stolen := bombWorker.Load() != 0
		if stolen {
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatal("poisoned pool accepted another Run")
					}
					if msg := fmt.Sprint(r); !strings.Contains(msg, "pool poisoned by earlier task panic") {
						t.Fatalf("poisoned Run panicked with %v", r)
					}
				}()
				p.Run(func(tc *Context) int64 { return 0 })
			}()
		}
		closed := make(chan struct{})
		go func() {
			p.Close()
			close(closed)
		}()
		select {
		case <-closed:
		case <-time.After(10 * time.Second):
			t.Fatal("Close hung after a task panic")
		}
		if stolen {
			return // the non-master abort path ran; done
		}
	}
	t.Log("bomb was never taken by a non-master member in 30 attempts; master-help path exercised instead")
}
