package core

import (
	"runtime"
	"testing"

	"gowool/internal/steal"
	"gowool/internal/trace"
)

// --- Owner-side shadow of publicLimit -------------------------------

// TestSpawnUsesOwnerShadow proves the spawn path performs zero atomic
// loads of publicLimit: the thief-visible atomic is deliberately
// desynchronized from the owner's shadow, and the public/private
// decision must follow the shadow in both directions.
func TestSpawnUsesOwnerShadow(t *testing.T) {
	p := NewPool(Options{Workers: 1, PrivateTasks: true, InitialPublic: 2})
	defer p.Close()
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	p.Run(func(w *Worker) int64 {
		if w.pubShadow != 2 || w.publicLimit.Load() != 2 {
			t.Fatalf("initial shadow/atomic = %d/%d, want 2/2", w.pubShadow, w.publicLimit.Load())
		}
		// Atomic says "nothing is public"; shadow says 2. A spawn that
		// consulted the atomic would go private.
		w.publicLimit.Store(0)
		noop.Spawn(w, 1) // top 0 < shadow 2
		if w.tasks[0].priv {
			t.Error("spawn at top=0 went private: it read the atomic publicLimit, not the shadow")
		}
		noop.Spawn(w, 2) // top 1 < shadow 2
		// Atomic says "everything is public"; shadow still says 2. A
		// spawn that consulted the atomic would go public.
		w.publicLimit.Store(int64(len(w.tasks)))
		noop.Spawn(w, 3) // top 2 == shadow 2
		if !w.tasks[2].priv {
			t.Error("spawn at top=2 went public: it read the atomic publicLimit, not the shadow")
		}
		// Restore the invariant before joining (no thieves exist on a
		// single-worker pool, so the desync was never observable).
		w.publicLimit.Store(w.pubShadow)
		for i := 0; i < 3; i++ {
			noop.Join(w)
		}
		return 0
	})
}

// TestShadowTracksPublicLimit checks the owner-shadow invariant
// (pubShadow == publicLimit) across publications and privatizations on
// every worker of a steal-heavy private-task run.
func TestShadowTracksPublicLimit(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4, PrivateTasks: true,
		InitialPublic: 1, PublishAmount: 2, PrivatizeRun: 4})
	defer p.Close()
	fib := fibDef()
	for rep := 0; rep < 10; rep++ {
		if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 20) }); got != serialFib(20) {
			t.Fatalf("rep %d: wrong result %d", rep, got)
		}
	}
	st := p.Stats()
	if st.Publications == 0 && st.Privatizations == 0 && st.Steals > 10 {
		t.Log("boundary never moved; invariant check is vacuous this run")
	}
	for i, w := range p.workers {
		if pl := w.publicLimit.Load(); w.pubShadow != pl {
			t.Errorf("worker %d: pubShadow = %d, publicLimit = %d", i, w.pubShadow, pl)
		}
	}
}

// --- Trace fast-path guard -------------------------------------------

// TestTraceOverheadDisabled proves that Options.Trace == nil adds zero
// atomics to the spawn/join fast path. The argument is structural: the
// only state tracing adds to Worker is the trc ring pointer, every
// emission site in spawn/publishMore/noteInlinedPublic/trySteal/park
// is gated on a plain `trc != nil` check, and the trace package's sole
// atomic lives inside Ring.Record — unreachable through a nil ring.
// This test pins the structure (nil rings on an untraced pool) and the
// cost floor (a spawn/join pair allocates nothing with tracing off),
// so any future emission that bypasses the nil gate or adds per-event
// allocation shows up here.
func TestTraceOverheadDisabled(t *testing.T) {
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	for i, w := range p.workers {
		if w.trc != nil {
			t.Fatalf("worker %d has a trace ring on an untraced pool", i)
		}
	}
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	p.Run(func(w *Worker) int64 {
		if avg := testing.AllocsPerRun(200, func() {
			noop.Spawn(w, 1)
			noop.Join(w)
		}); avg != 0 {
			t.Errorf("spawn/join pair allocates %v objects with tracing disabled, want 0", avg)
		}
		return 0
	})
}

// TestTraceRecordsEvents runs a steal-heavy fib with tracing enabled
// and cross-checks the recorded events against the pool's counters:
// every spawn, steal and publication must appear in the rings (the
// capacity is sized so nothing is overwritten), and the steal matrix
// must agree with Stats.Steals.
func TestTraceRecordsEvents(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	tr := trace.New(4, 1<<15)
	p := NewPool(Options{Workers: 4, PrivateTasks: true,
		InitialPublic: 1, TripDistance: 1, PublishAmount: 1, Trace: tr})
	defer p.Close()
	fib := fibDef()
	if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 20) }); got != serialFib(20) {
		t.Fatalf("traced fib(20) = %d, want %d", got, serialFib(20))
	}
	p.Close() // quiesce the thief rings before reading
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("ring overwrote %d events; grow the test capacity", d)
	}
	counts := map[trace.Kind]int64{}
	for _, events := range tr.Snapshot() {
		for _, e := range events {
			counts[e.Kind]++
		}
	}
	st := p.Stats()
	if counts[trace.KindSpawn] != st.Spawns {
		t.Errorf("recorded %d SPAWN events, Stats.Spawns = %d", counts[trace.KindSpawn], st.Spawns)
	}
	if got := counts[trace.KindSteal] + counts[trace.KindLeapfrog]; got != st.Steals {
		t.Errorf("recorded %d STEAL+LEAPFROG events, Stats.Steals = %d", got, st.Steals)
	}
	if counts[trace.KindPublish] != st.Publications {
		t.Errorf("recorded %d PUBLISH events, Stats.Publications = %d", counts[trace.KindPublish], st.Publications)
	}
	if counts[trace.KindTaskStart] != counts[trace.KindTaskEnd] {
		t.Errorf("unbalanced task spans: %d starts, %d ends",
			counts[trace.KindTaskStart], counts[trace.KindTaskEnd])
	}
	if m := tr.StealMatrix(); m.Total() != st.Steals {
		t.Errorf("steal matrix total %d, Stats.Steals = %d", m.Total(), st.Steals)
	}
}

// TestStatsSnapshotQuiescentAgreement: on a quiescent pool the racy
// live accessor must agree exactly with the per-worker contract
// accessor (the raciness only exists mid-run).
func TestStatsSnapshotQuiescentAgreement(t *testing.T) {
	p := NewPool(Options{Workers: 3})
	defer p.Close()
	fib := fibDef()
	p.Run(func(w *Worker) int64 { return fib.Call(w, 15) })
	snap := p.StatsSnapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d workers, want 3", len(snap))
	}
	for i := range snap {
		if snap[i] != p.WorkerStats(i) {
			t.Errorf("worker %d: snapshot %+v != WorkerStats %+v", i, snap[i], p.WorkerStats(i))
		}
	}
}

// --- Victim selection ------------------------------------------------

// stoppedPool builds a pool whose idle loops have exited, so worker
// internals can be driven by hand without racing the real thieves.
func stoppedPool(t *testing.T, opts Options) *Pool {
	t.Helper()
	p := NewPool(opts)
	p.Close()
	return p
}

// The distinct-k sampling mechanics (pairwise-distinct candidates,
// enumeration when k covers the pool, single-worker degenerate case)
// are the steal package's own tests now (internal/steal TestDistinct);
// here we check the option threads through to policy construction and
// the probe wiring feeds chooseVictim real stealability.

// TestStealOptionsBuildPolicies pins the legacy-option → policy
// mapping: the default is last-victim retention, StealRetain < 0
// degrades to plain random, and an explicit Steal.Policy wins.
func TestStealOptionsBuildPolicies(t *testing.T) {
	cases := []struct {
		opts Options
		want string
	}{
		{Options{Workers: 2}, steal.LastVictim},
		{Options{Workers: 2, StealRetain: -1}, steal.Random},
		{Options{Workers: 2, StealSampling: 3}, steal.LastVictim},
		{Options{Workers: 2, Steal: steal.Config{Policy: steal.Sequential}}, steal.Sequential},
		{Options{Workers: 2, Steal: steal.Config{Policy: steal.Localized}}, steal.Localized},
	}
	for _, c := range cases {
		p := stoppedPool(t, c.opts)
		if got := p.workers[1].pol.Name(); got != c.want {
			t.Errorf("opts %+v built policy %q, want %q", c.opts, got, c.want)
		}
	}
}

// TestChooseVictimRetention drives the last-successful-victim policy by
// hand through the worker's probe wiring: a stealable retained victim
// is probed first; once it runs dry the policy falls back elsewhere.
// (The miss-budget drop logic itself is pinned in internal/steal
// TestLastVictimRetention.)
func TestChooseVictimRetention(t *testing.T) {
	p := stoppedPool(t, Options{Workers: 4}) // StealRetain defaults to 1
	w := p.workers[1]
	target := p.workers[3]

	w.pol.Observe(3, true)                 // retain worker 3
	target.tasks[0].state.Store(stateTask) // bot=0, publicLimit pinned high
	for i := 0; i < 10; i++ {
		if v := w.chooseVictim(); v != target {
			t.Fatalf("retained stealable victim not chosen: got worker %d", v.idx)
		}
	}
	if !w.pol.Observe(3, true) {
		t.Fatal("repeat success at retained victim not counted")
	}

	target.tasks[0].state.Store(stateEmpty)
	v := w.chooseVictim() // miss through the probe: retention dropped
	if v == nil || v == w {
		t.Fatalf("chooseVictim returned invalid fallback")
	}
}

// TestStealRetainDisabled checks the negative-value opt-out end to end.
func TestStealRetainDisabled(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4, StealRetain: -1})
	defer p.Close()
	fib := fibDef()
	for rep := 0; rep < 3; rep++ {
		if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 21) }); got != serialFib(21) {
			t.Fatalf("rep %d: wrong result %d", rep, got)
		}
	}
	if st := p.Stats(); st.RetainedSteals != 0 {
		t.Errorf("retention disabled but RetainedSteals = %d", st.RetainedSteals)
	}
}

// TestStealRetainEnabled runs a steal-heavy workload with retention on
// and checks the accounting (hits never exceed successes, correctness
// holds across repetitions).
func TestStealRetainEnabled(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4})
	defer p.Close()
	fib := fibDef()
	for rep := 0; rep < 5; rep++ {
		if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 22) }); got != serialFib(22) {
			t.Fatalf("rep %d: wrong result %d", rep, got)
		}
	}
	st := p.Stats()
	if st.RetainedSteals > st.Steals {
		t.Errorf("RetainedSteals (%d) exceeds Steals (%d)", st.RetainedSteals, st.Steals)
	}
	t.Logf("steals=%d retained=%d", st.Steals, st.RetainedSteals)
}

// --- Trip-wire publication under contention --------------------------

// TestTripWireContentionStress keeps the public boundary as tight as
// possible (one public slot, one-slot publications) so thieves trip the
// wire on essentially every steal while the owner spawns and joins at
// the boundary. Run under -race this exercises the morePublic
// handshake; the conservation law (every spawn joined) plus correct
// results is the "no lost publications" assertion — a lost publication
// would strand spawned tasks and panic or deadlock the Run.
func TestTripWireContentionStress(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4, PrivateTasks: true,
		InitialPublic: 1, TripDistance: 1, PublishAmount: 1})
	defer p.Close()
	fib := fibDef()
	reps := 30
	if testing.Short() {
		reps = 5
	}
	want := serialFib(18)
	for rep := 0; rep < reps; rep++ {
		if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 18) }); got != want {
			t.Fatalf("rep %d: got %d, want %d", rep, got, want)
		}
	}
	st := p.Stats()
	if st.Spawns != st.Joins() {
		t.Errorf("conservation violated: spawns=%d joins=%d", st.Spawns, st.Joins())
	}
	if st.Steals > 4 && st.Publications == 0 {
		t.Errorf("thieves stole %d times at a one-slot boundary but no publications happened", st.Steals)
	}
	t.Logf("steals=%d publications=%d backoffs=%d", st.Steals, st.Publications, st.Backoffs)
}
