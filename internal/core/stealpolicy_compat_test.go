package core

import (
	"testing"

	"gowool/internal/steal"
)

// This file is the bit-for-bit guard for the steal-policy refactor:
// the PR-1 victim-selection algorithm (nextVictim / distinctVictims /
// chooseVictim with inline StealRetain accounting) is reimplemented
// here verbatim as a test-local replica, and the worker's policy-based
// chooseVictim must produce the exact same victim sequence for the
// same seed, the same scripted stealability, and the same outcome
// feedback — across retention budgets, sampling widths, and the
// retention opt-out.

// legacyChooser is the pre-refactor core victim selection, copied from
// PR 1 (worker.go) with w.pool.workers[i] replaced by indices and
// stealableAt by a scripted probe.
type legacyChooser struct {
	rng          uint64
	self, n      int
	lastVictim   int
	retainMisses int
	retain       int // Options.StealRetain after Defaults
	sampling     int // Options.StealSampling after Defaults
}

const legacyMaxSampling = 8

func newLegacyChooser(self, n, retain, sampling int) *legacyChooser {
	return &legacyChooser{
		rng:        uint64(self)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		self:       self,
		n:          n,
		lastVictim: -1,
		retain:     retain,
		sampling:   sampling,
	}
}

func (l *legacyChooser) nextVictim() int {
	if l.n == 1 {
		return l.self
	}
	x := l.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	l.rng = x
	n := l.n - 1
	v := int(x % uint64(n))
	if v >= l.self {
		v++
	}
	return v
}

func (l *legacyChooser) distinctVictims(k int, out []int) int {
	n := l.n - 1
	if n <= 0 {
		return 0
	}
	if k > len(out) {
		k = len(out)
	}
	if k >= n {
		j := 0
		for i := 0; i < l.n; i++ {
			if i != l.self && j < len(out) {
				out[j] = i
				j++
			}
		}
		return j
	}
	cnt := 0
	for tries := 0; cnt < k && tries < 4*k+8; tries++ {
		idx := l.nextVictim()
		dup := false
		for j := 0; j < cnt; j++ {
			if out[j] == idx {
				dup = true
				break
			}
		}
		if !dup {
			out[cnt] = idx
			cnt++
		}
	}
	return cnt
}

func (l *legacyChooser) choose(stealable func(int) bool) int {
	if lv := l.lastVictim; lv >= 0 {
		if stealable(lv) {
			return lv
		}
		l.retainMisses++
		if l.retainMisses >= l.retain {
			l.lastVictim = -1
			l.retainMisses = 0
		}
	}
	k := l.sampling
	if k == 1 {
		return l.nextVictim()
	}
	var buf [legacyMaxSampling]int
	n := l.distinctVictims(k, buf[:])
	if n == 0 {
		return l.nextVictim()
	}
	v := -1
	for i := 0; i < n; i++ {
		v = buf[i]
		if stealable(v) {
			return v
		}
	}
	return v
}

// observeSuccess is the legacy idleLoop success block.
func (l *legacyChooser) observeSuccess(v int) {
	if l.retain > 0 {
		if l.lastVictim != v {
			l.lastVictim = v
		}
		l.retainMisses = 0
	}
}

// scriptRNG drives the stealability script — deliberately a different
// generator (splitmix64) than the victim RNG so the script can't
// accidentally stay in lockstep with the choices.
type scriptRNG uint64

func (s *scriptRNG) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func TestStealPolicyBitForBitLegacy(t *testing.T) {
	const workers, self, steps = 6, 1, 3000
	configs := []struct {
		name             string
		retain, sampling int
	}{
		{"default", 1, 1},
		{"retain3", 3, 1},
		{"sampling3", 1, 3},
		{"retain2-sampling8", 2, 8},
		{"retain-disabled", -1, 1},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			p := stoppedPool(t, Options{
				Workers:       workers,
				StealRetain:   cfg.retain,
				StealSampling: cfg.sampling,
			})
			w := p.workers[self]
			// The replica gets the post-Defaults values the legacy code
			// would have seen.
			retain := cfg.retain
			if retain == 0 {
				retain = 1
			}
			sampling := cfg.sampling
			if sampling <= 0 {
				sampling = 1
			}
			legacy := newLegacyChooser(self, workers, retain, sampling)

			script := scriptRNG(0xc0ffee)
			for step := 0; step < steps; step++ {
				// Script this step's stealability: a pseudo-random subset
				// of the other workers look stealable, including regular
				// all-empty phases (retention miss pressure) and all-full
				// phases (retention hit pressure).
				mask := script.next()
				switch step % 17 {
				case 5:
					mask = 0
				case 11:
					mask = ^uint64(0)
				}
				for i, v := range p.workers {
					if i == self {
						continue
					}
					if mask&(1<<uint(i)) != 0 {
						v.tasks[0].state.Store(stateTask)
					} else {
						v.tasks[0].state.Store(stateEmpty)
					}
				}
				stealable := func(i int) bool { return mask&(1<<uint(i)) != 0 }

				got := w.chooseVictim().idx
				want := legacy.choose(stealable)
				if got != want {
					t.Fatalf("step %d: policy chose %d, legacy chose %d (mask %#x)", step, got, want, mask)
				}
				// Feed back the outcome the real steal attempt would
				// have had (stealable == the CAS would find a task).
				if stealable(got) {
					w.pol.Observe(got, true)
					legacy.observeSuccess(got)
				} else {
					w.pol.Observe(got, false)
				}
			}
		})
	}
}

// TestStealPolicyProbeOrderFixedSeed pins the first victims worker 1 of
// a 6-worker pool probes under the default policy with nothing
// stealable — the literal probe order for the pinned seed schedule.
// If the RNG algorithm, the seed formula, the pick arithmetic, or the
// retention flow changes, this sequence changes.
func TestStealPolicyProbeOrderFixedSeed(t *testing.T) {
	p := stoppedPool(t, Options{Workers: 6})
	w := p.workers[1]
	legacy := newLegacyChooser(1, 6, 1, 1)
	none := func(int) bool { return false }
	var got, want [16]int
	for i := range got {
		got[i] = w.chooseVictim().idx
		w.pol.Observe(got[i], false)
		want[i] = legacy.choose(none)
	}
	if got != want {
		t.Fatalf("probe order drifted:\n got %v\nwant %v", got, want)
	}
	// Pin the first victim against the raw seed formula, independent of
	// both implementations, so even a coordinated change trips here.
	x := steal.WorkerSeed(0, 1)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	first := int(x % 5)
	if first >= 1 {
		first++
	}
	if got[0] != first {
		t.Fatalf("first victim %d, raw-formula expectation %d", got[0], first)
	}
}
