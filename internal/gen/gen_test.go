package gen

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Sig
		bad  bool
	}{
		{in: "Fib:1", want: Sig{Name: "Fib", Args: 1}},
		{in: "Rec:1:ctx=*RecCtx", want: Sig{Name: "Rec", Args: 1, Ctx: "*RecCtx"}},
		{in: "Noop:1:batch", want: Sig{Name: "Noop", Args: 1, Batch: true}},
		{in: "Range:2:ctx=*RangeCtx", want: Sig{Name: "Range", Args: 2, Ctx: "*RangeCtx"}},
		{in: "Cho:3:ctx=*Mat", want: Sig{Name: "Cho", Args: 3, Ctx: "*Mat"}},
		{in: "Fib", bad: true},           // no arg count
		{in: "fib:1", bad: true},         // unexported
		{in: "Fib:0", bad: true},         // args out of range
		{in: "Fib:4", bad: true},         // args out of range
		{in: "Fib:2:batch", bad: true},   // batch requires args=1
		{in: "Fib:1:ctx=Mat", bad: true}, // ctx must be a pointer
		{in: "Fib:1:wiggle", bad: true},  // unknown option
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseSpec(%q) accepted, want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestGenerateEmitsDeclaredSurface(t *testing.T) {
	src, err := Generate(File{
		Package: "demo",
		Sigs: []Sig{
			{Name: "Fib", Args: 1, Batch: true},
			{Name: "Rec", Args: 2, Ctx: "*Ctx"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package demo",
		"func SpawnFib(w *core.Worker, a0 int64)",
		"func JoinFib(w *core.Worker) int64",
		"func CallFib(w *core.Worker, a0 int64) int64",
		"func SpawnFibN(w *core.Worker, base int64, n int)",
		"func JoinFibN(w *core.Worker, n int) int64",
		"func SpawnRec(w *core.Worker, c *Ctx, a0, a1 int64)",
		"recBody(w, t.Ctx().(*Ctx), t.Arg0(), t.Arg1())",
		"core.DefineC2[Ctx]",
		"w.SpawnPrepPrivate()",
		"w.JoinPrepPrivate()",
		"w.BatchPrepPrivate(n)",
	} {
		if !strings.Contains(string(src), want) {
			t.Errorf("generated output missing %q", want)
		}
	}
	if found, err := Verify(src); !found || err != nil {
		t.Errorf("fresh output fails provenance: found=%v err=%v", found, err)
	}
}

func TestGenerateRejectsBadDeclarations(t *testing.T) {
	if _, err := Generate(File{Package: "p"}); err == nil {
		t.Error("Generate accepted a file with no signatures")
	}
	if _, err := Generate(File{Sigs: []Sig{{Name: "A", Args: 1}}}); err == nil {
		t.Error("Generate accepted an empty package name")
	}
	if _, err := Generate(File{Package: "p", Sigs: []Sig{{Name: "A", Args: 1}, {Name: "A", Args: 2}}}); err == nil {
		t.Error("Generate accepted duplicate task names")
	}
}

func TestSealVerifyRoundTrip(t *testing.T) {
	body := []byte("package p\n\nfunc f() {}\n")
	sealed := Seal(body)
	if found, err := Verify(sealed); !found || err != nil {
		t.Fatalf("Verify(sealed): found=%v err=%v", found, err)
	}
	// A one-byte edit to the content must be caught.
	tampered := bytes.Replace(sealed, []byte("func f"), []byte("func g"), 1)
	if found, err := Verify(tampered); !found || err == nil {
		t.Fatalf("Verify(tampered): found=%v err=%v, want hash mismatch", found, err)
	}
	// Files without a marker are not woolgen outputs.
	if found, _ := Verify(body); found {
		t.Fatal("Verify claimed a marker on an unsealed file")
	}
}

// TestCommittedOutputsAreFresh is the drift gate: every woolgen
// go:generate directive in the repository's generating packages must
// reproduce its committed output byte-for-byte. A failure means the
// generator (or a declaration) changed without `go generate ./...`.
// Generating packages are discovered by walking the module, so a new
// directive joins the gate without touching this test; the known four
// are asserted present so discovery rot fails loudly.
func TestCommittedOutputsAreFresh(t *testing.T) {
	const root = "../.." // internal/gen → module root
	dirs, err := DiscoverDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, dir := range dirs {
		found[dir] = true
		n, err := VerifyDir(root + "/" + dir)
		if err != nil {
			t.Errorf("%s: %v", dir, err)
		}
		if n == 0 {
			t.Errorf("%s: no woolgen go:generate directives found; the drift gate lost its subject", dir)
		}
	}
	for _, want := range []string{
		"internal/gen/ports",
		"internal/workloads/fibw",
		"internal/workloads/mm",
		"internal/workloads/ssf",
	} {
		if !found[want] {
			t.Errorf("discovery missed known generating package %s (have %v)", want, dirs)
		}
	}
}

func TestFromArgs(t *testing.T) {
	f, out, err := FromArgs(splitArgs("-pkg ports -out ports_gen.go -task Noop:1:batch -task Rec:1:ctx=*RecCtx"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Package != "ports" || out != "ports_gen.go" || len(f.Sigs) != 2 {
		t.Fatalf("FromArgs = %+v, %q", f, out)
	}
	if _, _, err := FromArgs(splitArgs("-pkg p -task A:1")); err == nil {
		t.Error("FromArgs accepted a missing -out")
	}
	if _, _, err := FromArgs(splitArgs("-pkg p -out x.go")); err == nil {
		t.Error("FromArgs accepted zero -task flags")
	}
}
