package analysis

// The publication pass checks the release/acquire protocol that makes
// the direct task stack safe without locks (paper §III-A): every
// word the owner writes into a task must be written at a program
// point that happens-before the release store of the publication word
// (Task.state, a deque's bottom, a frame's mutex), and the thief may
// read those words only after the corresponding acquire. The race
// detector cannot see these orderings — the protocol is deliberately
// racy-by-convention — so woolvet checks them structurally over the
// CFG/dominance layer in cfg.go.
//
// Protocol model. A *publication word* guards a set of *published
// fields* (tagged "//woolvet:published-by <word>"). The word's kind
// follows the type of the same-struct sibling field named <word>:
//
//	sync/atomic.*   Store = release · Load = acquire-load ·
//	                Swap, CompareAndSwap = acquire-claim
//	sync.Mutex(,RW) Lock/RLock/TryLock = claim · Unlock/RUnlock =
//	                end of critical section ("release" of protection)
//	sync.Once       Do = claim at entry + release at return; a func
//	                literal passed directly to Do is folded into the
//	                call, so its writes sit between the two
//	(no sibling)    a label-only word: protocol points come solely
//	                from annotated functions (release/acquire/
//	                publish-write directives)
//
// Rules, per (base expression, word) pair within one function:
//
//	W-dom   (atomic/label/once) a write to a published field must
//	        dominate every release it can reach — otherwise some path
//	        publishes the base with the write missing.
//	W-pub   (all kinds) forward may-analysis: release sets
//	        "published", acquire-claim clears it; a write (for
//	        mutexes: any access) at a may-published point races with
//	        a concurrent claimant.
//	R-acq   (atomic/label/once) in a function that performs at least
//	        one acquire for the base, every read of a published field
//	        must be dominated by an acquire. Functions with no
//	        acquire are owner-context and exempt: their ordering
//	        obligations live in their callers.
//	M-dom   (mutex) in a function that touches the word's mutex,
//	        every access to a guarded field must be dominated by a
//	        Lock.
//
// All checks are per-function and syntactic about aliasing: two
// occurrences of the same identifier (object identity) or the same
// selector path are the same base, anything else is distinct.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

var Publication = &Analyzer{
	Name: "publication",
	Doc:  "published fields must be written before release and read after acquire of their publication word",
	Run:  runPublication,
}

type pubKind int

const (
	kindAtomic pubKind = iota // also label-only words and sync.Once
	kindMutex
	kindOnce
)

type opKind int

const (
	opRead opKind = iota
	opWrite
	opRelease  // publication: atomic Store, mutex Unlock, Once.Do return
	opAcqClaim // atomic Swap/CAS, mutex Lock, Once.Do entry, woolvet:acquire call
	opAcqLoad  // atomic Load: orders reads, does not re-privatize
)

// pubOp is one protocol-relevant operation at a program point.
type pubOp struct {
	kind    opKind
	node    *CFGNode
	pos     token.Pos // report position
	sortPos token.Pos // intra-node ordering (releases sort at call end)
	field   string    // field or description, for messages
	base    string    // canonical base key
	baseStr string    // human-readable base, for messages
	word    string
	wkind   pubKind
}

// wordInfo describes one publication word of a struct.
type wordInfo struct {
	sibling *types.Var // nil for label-only words
	kind    pubKind
}

// pubStruct is the publication protocol of one struct type.
type pubStruct struct {
	words     map[string]wordInfo
	published map[*types.Var]string // field -> word
}

type pubContext struct {
	pass   *Pass
	infos  map[*types.TypeName]*pubStruct
	pubOf  map[*types.Var]string   // published field var -> word
	wordOf map[*types.Var]wordInfo // word sibling var -> info
	wordNm map[*types.Var]string   // word sibling var -> word name
	folded map[*ast.FuncLit]bool   // func lits folded into Once.Do calls
}

func runPublication(pass *Pass) {
	cx := &pubContext{
		pass:   pass,
		infos:  map[*types.TypeName]*pubStruct{},
		pubOf:  map[*types.Var]string{},
		wordOf: map[*types.Var]wordInfo{},
		wordNm: map[*types.Var]string{},
		folded: map[*ast.FuncLit]bool{},
	}
	// Index the local package's annotated structs so selections on
	// their fields classify in O(1).
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		cx.infoFor(tn)
	}
	// Pre-scan for func literals passed directly to Once.Do on a
	// publication word: their bodies execute at the Do call.
	walkStack(pass.Files, func(n ast.Node, _ []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f, _, method := cx.wordMethod(call); f != nil && method == "Do" {
			if len(call.Args) == 1 {
				if fl, ok := call.Args[0].(*ast.FuncLit); ok {
					cx.folded[fl] = true
				}
			}
		}
		return true
	})
	// Analyze every function body as an independent unit.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				cx.checkUnit(fd.Body)
			}
		}
	}
	walkStack(pass.Files, func(n ast.Node, _ []ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && !cx.folded[fl] {
			cx.checkUnit(fl.Body)
		}
		return true
	})
}

// infoFor builds (once) the publication protocol of a named type,
// resolving annotations cross-package through the loader.
func (cx *pubContext) infoFor(tn *types.TypeName) *pubStruct {
	if ps, ok := cx.infos[tn]; ok {
		return ps
	}
	cx.infos[tn] = nil // cut recursion
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	ann := cx.pass.AnnotationsFor(tn)
	if ann == nil {
		return nil
	}
	ps := &pubStruct{words: map[string]wordInfo{}, published: map[*types.Var]string{}}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if d, ok := ann.FieldDirective(f, "published-by"); ok && len(d.Args) == 1 {
			ps.published[f] = d.Args[0]
			if _, ok := ps.words[d.Args[0]]; !ok {
				ps.words[d.Args[0]] = wordInfo{kind: kindAtomic}
			}
		}
	}
	if len(ps.published) == 0 {
		return nil
	}
	// Resolve sibling fields and their kinds.
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if wi, ok := ps.words[f.Name()]; ok {
			wi.sibling = f
			wi.kind = kindOfType(f.Type())
			ps.words[f.Name()] = wi
		}
	}
	cx.infos[tn] = ps
	// Register field-level lookups (only reachable for same-package
	// selections in practice — the protocol fields are unexported).
	for f, w := range ps.published {
		cx.pubOf[f] = w
	}
	for w, wi := range ps.words {
		if wi.sibling != nil {
			cx.wordOf[wi.sibling] = wi
			cx.wordNm[wi.sibling] = w
		}
	}
	return ps
}

// kindOfType classifies a publication word by its sibling's type.
func kindOfType(t types.Type) pubKind {
	named, ok := t.(*types.Named)
	if !ok {
		return kindAtomic
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return kindAtomic
	}
	switch obj.Pkg().Path() {
	case "sync/atomic":
		return kindAtomic
	case "sync":
		switch obj.Name() {
		case "Mutex", "RWMutex":
			return kindMutex
		case "Once":
			return kindOnce
		}
	}
	return kindAtomic
}

// wordKindFor resolves the kind and validity of word on the (deref'd)
// type t: true when t is a struct that either declares a field named
// word or carries published-by tags for it.
func (cx *pubContext) wordKindFor(t types.Type, word string) (pubKind, bool) {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return 0, false
	}
	if ps := cx.infoFor(named.Obj()); ps != nil {
		if wi, ok := ps.words[word]; ok {
			return wi.kind, true
		}
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return 0, false
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == word {
			return kindOfType(f.Type()), true
		}
	}
	return 0, false
}

// checkUnit analyzes one function body.
func (cx *pubContext) checkUnit(body *ast.BlockStmt) {
	g := BuildCFG(body)
	col := &opCollector{cx: cx, g: g}
	for _, n := range g.Nodes {
		if !g.Reachable(n) {
			continue
		}
		col.node = n
		for _, root := range n.Exprs {
			col.walk(root, false)
		}
	}
	if len(col.ops) == 0 {
		return
	}
	// Group by (base, word).
	groups := map[string][]*pubOp{}
	var keys []string
	for i := range col.ops {
		op := &col.ops[i]
		k := op.base + "\x00" + op.word
		if groups[k] == nil {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], op)
	}
	sort.Strings(keys)
	for _, k := range keys {
		cx.checkGroup(g, groups[k])
	}
}

func partition(ops []*pubOp, kinds ...opKind) []*pubOp {
	var out []*pubOp
	for _, op := range ops {
		for _, k := range kinds {
			if op.kind == k {
				out = append(out, op)
			}
		}
	}
	return out
}

// orderedBefore reports whether a executes before b when both sit in
// the same CFG node (intra-statement ordering by position; releases
// carry their call's End so nested argument work sorts before them).
func orderedBefore(a, b *pubOp) bool { return a.sortPos < b.sortPos }

func (cx *pubContext) checkGroup(g *CFG, ops []*pubOp) {
	pass := cx.pass
	word := ops[0].word
	kind := ops[0].wkind
	releases := partition(ops, opRelease)
	claims := partition(ops, opAcqClaim)
	acquires := partition(ops, opAcqClaim, opAcqLoad)
	writes := partition(ops, opWrite)
	reads := partition(ops, opRead)

	dominatedBy := func(op *pubOp, anchors []*pubOp) bool {
		for _, a := range anchors {
			if a.node == op.node {
				if orderedBefore(a, op) {
					return true
				}
				continue
			}
			if g.Dominates(a.node, op.node) {
				return true
			}
		}
		return false
	}

	if kind == kindMutex {
		// M-dom: any access in a mutex-touching function must be
		// dominated by a Lock.
		if len(claims)+len(releases) > 0 {
			for _, op := range append(append([]*pubOp{}, writes...), reads...) {
				if !dominatedBy(op, claims) {
					pass.Report(op.pos, "access to %s.%s is not dominated by a Lock of %s",
						op.baseStr, op.field, word)
				}
			}
		}
	} else {
		// W-dom: writes must dominate every release they can reach.
		for _, w := range writes {
			for _, r := range releases {
				if w.node == r.node {
					if !orderedBefore(w, r) {
						pass.Report(w.pos, "write to %s.%s does not precede the release of %s in the same statement",
							w.baseStr, w.field, word)
					}
					continue
				}
				if g.Reaches(w.node, r.node) && !g.Dominates(w.node, r.node) {
					pass.Report(w.pos, "write to %s.%s does not dominate the release of %s at line %d (a path publishes the task without this write)",
						w.baseStr, w.field, word, pass.Fset.Position(r.pos).Line)
				}
			}
		}
		// R-acq: reads in acquiring functions must follow an acquire.
		if len(acquires) > 0 {
			for _, r := range reads {
				if !dominatedBy(r, acquires) {
					pass.Report(r.pos, "read of %s.%s is not dominated by an acquire of %s",
						r.baseStr, r.field, word)
				}
			}
		}
	}

	// W-pub: may-published forward dataflow. Mutex kind flags reads
	// too (the critical section has ended).
	if len(releases) == 0 {
		return
	}
	cx.checkPublished(g, ops, kind, word)
}

// checkPublished runs the forward may-analysis: after a release (or
// Unlock) the base is visible to other workers until an acquire-claim
// re-privatizes it; writes (and, under a mutex, reads) in the
// published state race with concurrent claimants.
func (cx *pubContext) checkPublished(g *CFG, ops []*pubOp, kind pubKind, word string) {
	byNode := map[*CFGNode][]*pubOp{}
	for _, op := range ops {
		byNode[op.node] = append(byNode[op.node], op)
	}
	for _, list := range byNode {
		sort.Slice(list, func(i, j int) bool { return orderedBefore(list[i], list[j]) })
	}
	transfer := func(n *CFGNode, in bool) bool {
		state := in
		for _, op := range byNode[n] {
			switch op.kind {
			case opRelease:
				state = true
			case opAcqClaim:
				state = false
			}
		}
		return state
	}
	in := make(map[*CFGNode]bool, len(g.Nodes))
	out := make(map[*CFGNode]bool, len(g.Nodes))
	visited := make(map[*CFGNode]bool, len(g.Nodes))
	work := []*CFGNode{g.Entry}
	queued := map[*CFGNode]bool{g.Entry: true}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n] = false
		newIn := false
		for _, p := range n.Preds {
			newIn = newIn || out[p]
		}
		newOut := transfer(n, newIn)
		if visited[n] && newIn == in[n] && newOut == out[n] {
			continue
		}
		visited[n] = true
		in[n], out[n] = newIn, newOut
		for _, s := range n.Succs {
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	for n, list := range byNode {
		state := in[n]
		for _, op := range list {
			switch op.kind {
			case opRelease:
				state = true
			case opAcqClaim:
				state = false
			case opWrite:
				if state {
					if kind == kindMutex {
						cx.pass.Report(op.pos, "write to %s.%s after %s.Unlock (outside the critical section)",
							op.baseStr, op.field, word)
					} else {
						cx.pass.Report(op.pos, "write to %s.%s after the release of %s (a thief may already own the task)",
							op.baseStr, op.field, word)
					}
				}
			case opRead:
				if state && kind == kindMutex {
					cx.pass.Report(op.pos, "read of %s.%s after %s.Unlock (outside the critical section)",
						op.baseStr, op.field, word)
				}
			}
		}
	}
}

// opCollector walks one CFG node's expressions, recording protocol
// operations. It never descends into nested function literals (they
// are separate units), except literals folded into a Once.Do call.
type opCollector struct {
	cx   *pubContext
	g    *CFG
	node *CFGNode
	ops  []pubOp
	// curAssign is the innermost single-RHS assignment, for binding
	// the result of a woolvet:acquire call to its LHS.
	curAssign *ast.AssignStmt
}

func (c *opCollector) add(op pubOp) {
	op.node = c.node
	c.ops = append(c.ops, op)
}

func (c *opCollector) walk(x ast.Node, write bool) {
	switch x := x.(type) {
	case nil:
		return
	case *ast.AssignStmt:
		saved := c.curAssign
		if len(x.Rhs) == 1 {
			c.curAssign = x
		}
		for _, r := range x.Rhs {
			c.walk(r, false)
		}
		c.curAssign = saved
		for _, l := range x.Lhs {
			c.walk(l, true)
		}
		return
	case *ast.IncDecStmt:
		c.walk(x.X, true)
		return
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// Taking the address of a published field aliases it;
			// treat as a write (conservative).
			c.walk(x.X, true)
			return
		}
		c.walk(x.X, false)
		return
	case *ast.FuncLit:
		return // separate unit (or folded explicitly below)
	case *ast.CallExpr:
		c.call(x)
		return
	case *ast.SelectorExpr:
		c.selector(x, write)
		return
	case *ast.KeyValueExpr:
		c.walk(x.Value, false)
		return
	}
	for _, child := range childNodes(x) {
		c.walk(child, false)
	}
}

// selector records a read/write of a published field and recurses
// into the base expression.
func (c *opCollector) selector(sel *ast.SelectorExpr, write bool) {
	if f, ok := c.fieldVar(sel); ok {
		if word, ok := c.cx.pubOf[f]; ok {
			kind := opRead
			if write {
				kind = opWrite
			}
			wkind := c.wordKindOf(sel.X, word)
			c.add(pubOp{
				kind:    kind,
				pos:     sel.Sel.Pos(),
				sortPos: sel.Sel.Pos(),
				field:   f.Name(),
				base:    c.baseKey(sel.X),
				baseStr: exprString(sel.X),
				word:    word,
				wkind:   wkind,
			})
		}
	}
	c.walk(sel.X, false)
}

// wordKindOf resolves the kind of word for the struct behind base.
func (c *opCollector) wordKindOf(base ast.Expr, word string) pubKind {
	if t := c.cx.pass.Info.TypeOf(base); t != nil {
		if k, ok := c.cx.wordKindFor(t, word); ok {
			return k
		}
	}
	return kindAtomic
}

// call classifies a call: a method on a publication word, a call of an
// annotated function, or plain syntax to recurse into.
func (c *opCollector) call(call *ast.CallExpr) {
	if f, base, method := c.cx.wordMethod(call); f != nil {
		c.wordOp(call, f, base, method)
		for _, a := range call.Args {
			if fl, ok := a.(*ast.FuncLit); ok && c.cx.folded[fl] {
				// Once.Do fold: the body runs at this program point,
				// between the claim (call start) and release (end).
				c.walk(fl.Body, false)
				continue
			}
			c.walk(a, false)
		}
		c.walk(baseExprOf(call), false)
		return
	}
	if fn := calleeFunc(c.cx.pass.Info, call); fn != nil {
		for _, d := range c.cx.pass.FuncDirsFor(fn) {
			switch d.Verb {
			case "release", "acquire", "publish-write":
				if len(d.Args) == 1 {
					c.annotatedCall(call, fn, d.Verb, d.Args[0])
				}
			}
		}
	}
	c.walk(call.Fun, false)
	for _, a := range call.Args {
		c.walk(a, false)
	}
}

// elementMethodOp handles atomic method calls on an *element* of a
// published slice/array field (w.buf[i].Store(t)): Store writes the
// published field, Load reads it.
func (c *opCollector) wordOp(call *ast.CallExpr, f *types.Var, base ast.Expr, method string) {
	// Published-field element access (the field itself is published,
	// not a word): classify by method mutability.
	if word, ok := c.cx.pubOf[f]; ok {
		kind := opRead
		if method == "Store" || method == "Swap" || method == "CompareAndSwap" {
			kind = opWrite
		}
		c.add(pubOp{
			kind:    kind,
			pos:     call.Pos(),
			sortPos: call.Pos(),
			field:   f.Name(),
			base:    c.baseKey(base),
			baseStr: exprString(base),
			word:    word,
			wkind:   c.wordKindOf(base, word),
		})
		return
	}
	word, ok := c.cx.wordNm[f]
	if !ok {
		return
	}
	wi := c.cx.wordOf[f]
	mk := func(kind opKind, sortPos token.Pos) {
		c.add(pubOp{
			kind:    kind,
			pos:     call.Pos(),
			sortPos: sortPos,
			field:   f.Name() + "." + method,
			base:    c.baseKey(base),
			baseStr: exprString(base),
			word:    word,
			wkind:   wi.kind,
		})
	}
	switch wi.kind {
	case kindAtomic:
		switch method {
		case "Store":
			mk(opRelease, call.End())
		case "Load":
			mk(opAcqLoad, call.Pos())
		case "Swap", "CompareAndSwap":
			mk(opAcqClaim, call.Pos())
		}
	case kindMutex:
		switch method {
		case "Lock", "RLock", "TryLock", "TryRLock":
			mk(opAcqClaim, call.Pos())
		case "Unlock", "RUnlock":
			mk(opRelease, call.End())
		}
	case kindOnce:
		if method == "Do" {
			mk(opAcqClaim, call.Pos())
			mk(opRelease, call.End())
		}
	}
}

// annotatedCall records the protocol ops implied by a directive on the
// callee: each receiver/argument (and, for acquire, single-assign LHS)
// whose type carries the word becomes a base.
func (c *opCollector) annotatedCall(call *ast.CallExpr, fn *types.Func, verb, word string) {
	var cands []ast.Expr
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		cands = append(cands, sel.X)
	}
	cands = append(cands, call.Args...)
	emit := func(e ast.Expr, kind opKind, sortPos token.Pos) {
		t := c.cx.pass.Info.TypeOf(e)
		if t == nil {
			return
		}
		wkind, ok := c.cx.wordKindFor(t, word)
		if !ok {
			return
		}
		c.add(pubOp{
			kind:    kind,
			pos:     call.Pos(),
			sortPos: sortPos,
			field:   "(" + fn.Name() + ")",
			base:    c.baseKey(e),
			baseStr: exprString(e),
			word:    word,
			wkind:   wkind,
		})
	}
	for _, e := range cands {
		switch verb {
		case "release":
			emit(e, opRelease, call.End())
		case "acquire":
			emit(e, opAcqClaim, call.Pos())
		case "publish-write":
			emit(e, opWrite, call.Pos())
		}
	}
	// An acquire that returns the acquired value: t := w.JoinPrep().
	if verb == "acquire" && c.curAssign != nil && stripParens(c.curAssign.Rhs[0]) == ast.Expr(call) {
		for _, l := range c.curAssign.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
				emit(id, opAcqClaim, call.End())
			}
		}
	}
}

// fieldVar resolves the struct-field object a selector denotes, if
// any, unwrapping indexing/parens/stars on the way: for
// w.buf[i].Store the field is buf and the base is w.
func (c *opCollector) fieldVar(sel *ast.SelectorExpr) (*types.Var, bool) {
	if s, ok := c.cx.pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v, true
		}
	}
	if v, ok := c.cx.pass.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v, true
	}
	return nil, false
}

// wordMethod recognizes a method call on a publication word or
// published field: t.state.Store(v), w.buf[i].Load(), f.mu.Lock().
// Returns the field, the base expression, and the method name.
func (cx *pubContext) wordMethod(call *ast.CallExpr) (*types.Var, ast.Expr, string) {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil, ""
	}
	inner := stripParens(fun.X)
	for {
		if idx, ok := inner.(*ast.IndexExpr); ok {
			inner = stripParens(idx.X)
			continue
		}
		if star, ok := inner.(*ast.StarExpr); ok {
			inner = stripParens(star.X)
			continue
		}
		break
	}
	sel, ok := inner.(*ast.SelectorExpr)
	if !ok {
		return nil, nil, ""
	}
	var f *types.Var
	if s, ok := cx.pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		f, _ = s.Obj().(*types.Var)
	} else if v, ok := cx.pass.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		f = v
	}
	if f == nil {
		return nil, nil, ""
	}
	if _, isWord := cx.wordNm[f]; !isWord {
		if _, isPub := cx.pubOf[f]; !isPub {
			return nil, nil, ""
		}
	}
	return f, sel.X, fun.Sel.Name
}

// baseExprOf returns the receiver-chain base of a word-method call,
// for recursing into index expressions etc.
func baseExprOf(call *ast.CallExpr) ast.Expr {
	if fun, ok := call.Fun.(*ast.SelectorExpr); ok {
		return fun.X
	}
	return nil
}

// baseKey builds the canonical identity of a base expression:
// identifiers by object, selector/index chains structurally.
func (c *opCollector) baseKey(e ast.Expr) string {
	e = stripParens(e)
	switch e := e.(type) {
	case *ast.Ident:
		if obj := c.cx.pass.Info.ObjectOf(e); obj != nil {
			return fmt.Sprintf("obj:%p", obj)
		}
		return "ident:" + e.Name
	case *ast.SelectorExpr:
		return c.baseKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return c.baseKey(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return c.baseKey(e.X) + ".deref"
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.baseKey(e.X)
		}
	}
	return fmt.Sprintf("expr@%d", e.Pos())
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
