// Package mm is the paper's dense matrix multiply benchmark (from the
// Wool distribution): an unblocked n×n multiply with the outermost
// loop parallelized — as a balanced task tree over row ranges in the
// task schedulers, and as a work-sharing loop in the OpenMP version
// (Section IV-A: "the OpenMP implementations use OpenMP parallel for
// loops rather than using tasks trees to implement loops").
package mm

import (
	"gowool/internal/core"
	"gowool/internal/sched"
	"gowool/internal/sim"
)

// Matrices holds the operands and result as flat row-major n×n slices.
type Matrices struct {
	N       int64
	A, B, C []float64
}

// New allocates n×n matrices with a deterministic fill.
func New(n int64) *Matrices {
	m := &Matrices{N: n, A: make([]float64, n*n), B: make([]float64, n*n), C: make([]float64, n*n)}
	for i := range m.A {
		m.A[i] = float64(i%17) * 0.25
		m.B[i] = float64(i%13) * 0.5
	}
	return m
}

// Reset zeroes the result matrix.
func (m *Matrices) Reset() {
	for i := range m.C {
		m.C[i] = 0
	}
}

// Row computes one row of C = A×B.
func (m *Matrices) Row(i int64) {
	n := m.N
	ai := m.A[i*n : (i+1)*n]
	ci := m.C[i*n : (i+1)*n]
	for j := int64(0); j < n; j++ {
		var sum float64
		for k := int64(0); k < n; k++ {
			sum += ai[k] * m.B[k*n+j]
		}
		ci[j] = sum
	}
}

// Serial computes C = A×B with no task constructs.
func Serial(m *Matrices) {
	for i := int64(0); i < m.N; i++ {
		m.Row(i)
	}
}

//go:generate go run gowool/cmd/woolgen -pkg mm -out mm_gen.go -task Rows:2:ctx=*Matrices

// rowsBody is the row-range recursion behind the woolgen-generated
// monomorphic port (mm_gen.go): SpawnRows/JoinRows flatten to plain
// descriptor stores and direct calls back into this function on the
// private fast path. Run it with CallRows(w, m, 0, m.N).
func rowsBody(w *core.Worker, m *Matrices, lo, hi int64) int64 {
	if hi-lo == 1 {
		m.Row(lo)
		return 1
	}
	mid := (lo + hi) / 2
	SpawnRows(w, m, mid, hi)
	a := rowsBody(w, m, lo, mid)
	b := JoinRows(w)
	return a + b
}

// NewWool builds the row-range task: split [A0, A1) until single rows.
// This is how Wool's loop constructs expand into balanced task trees.
func NewWool() *core.TaskDefC2[Matrices] {
	var rows *core.TaskDefC2[Matrices]
	rows = core.DefineC2("mm-rows", func(w *core.Worker, m *Matrices, lo, hi int64) int64 {
		if hi-lo == 1 {
			m.Row(lo)
			return 1
		}
		mid := (lo + hi) / 2
		rows.Spawn(w, m, mid, hi)
		a := rows.Call(w, m, lo, mid)
		b := rows.Join(w)
		return a + b
	})
	return rows
}

// RunWool multiplies on the pool and returns the number of rows done.
func RunWool(p *core.Pool, rows *core.TaskDefC2[Matrices], m *Matrices) int64 {
	return p.Run(func(w *core.Worker) int64 { return rows.Call(w, m, 0, m.N) })
}

// Job returns the multiply as a generic RangeJob over rows: the task
// schedulers expand it into a balanced task tree, the OpenMP adapter
// runs it as a static work-sharing loop (regular per-row work), both
// from this one body.
func Job(m *Matrices, reps int64) sched.RangeJob {
	return sched.RangeJob{
		Name: "mm-rows",
		N:    m.N,
		Reps: reps,
		Leaf: func(i int64) int64 { m.Row(i); return 1 },
	}
}

// RowCycles is the virtual cost of one row of an unblocked n×n
// multiply: n² multiply-adds at about 4 cycles each (memory bound;
// calibrated so mm(64) lands near the paper's RepSz of 976k cycles:
// 64 rows × 64² × 4 ≈ 1.05M).
func RowCycles(n int64) uint64 { return uint64(4 * n * n) }

// NewSim builds the simulated row-range task over an n×n multiply:
// A0 = lo, A1 = hi, A2 = n. Only time is simulated; the arithmetic
// itself is the native packages' job.
func NewSim() *sim.Def {
	d := &sim.Def{Name: "mm-rows"}
	d.F = func(w *sim.W, a sim.Args) int64 {
		lo, hi, n := a.A0, a.A1, a.A2
		if hi-lo == 1 {
			w.Work(RowCycles(n))
			return 1
		}
		mid := (lo + hi) / 2
		d.Spawn(w, sim.Args{A0: mid, A1: hi, A2: n})
		x := d.Call(w, sim.Args{A0: lo, A1: mid, A2: n})
		y := w.Join()
		return x + y
	}
	return d
}

// NewSimReps wraps the simulated multiply in reps serialized parallel
// regions: A0 = n, A1 = reps.
func NewSimReps() *sim.Def {
	rows := NewSim()
	d := &sim.Def{Name: "mm-reps"}
	d.F = func(w *sim.W, a sim.Args) int64 {
		var total int64
		for r := int64(0); r < a.A1; r++ {
			total += rows.Call(w, sim.Args{A0: 0, A1: a.A0, A2: a.A0})
		}
		return total
	}
	return d
}
