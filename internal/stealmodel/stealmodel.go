// Package stealmodel implements the paper's simple steal-cost
// performance model (Section IV-D2a, Table IV): an estimate of
// p-processor execution time from the sequential work, the number of
// steals and the 2- and p-processor steal costs.
//
// The reasoning, following the paper's mm(64) walk-through: of the S_p
// steals per repetition, p−1 distribute the initial work and cost like
// the p-processor micro benchmark (C_p); each remaining steal is a
// rebalancing event that, assumed uncontended, costs like the
// 2-processor case (C_2) and is paid by two processors — the thief and
// the victim that must join with it.
package stealmodel

// Estimate is the model's prediction for one (workload, p) point.
type Estimate struct {
	P        int
	Work     float64 // W: sequential work per repetition (cycles)
	Steals   float64 // S_p: steals per repetition
	C2, Cp   float64 // steal costs (cycles) at 2 and p processors
	TimeP    float64 // modelled p-processor time per repetition
	SpeedupP float64 // W / TimeP
}

// Predict evaluates the paper's formula
//
//	T_p = C_p + (W + 2·(S_p − (p−1))·C_2) / p
//
// and the resulting speedup W/T_p.
func Predict(work, steals, c2, cp float64, p int) Estimate {
	rebalance := steals - float64(p-1)
	if rebalance < 0 {
		rebalance = 0
	}
	tp := cp + (work+2*rebalance*c2)/float64(p)
	return Estimate{
		P: p, Work: work, Steals: steals, C2: c2, Cp: cp,
		TimeP:    tp,
		SpeedupP: work / tp,
	}
}
