// Realtime: the paper's Section II motivation — "many (soft as well as
// hard) real time systems have periodic serialization points when
// input is consumed and output is produced. A natural way to program
// such a system is to parallelize each interval, which then becomes
// the parallel region."
//
// This example simulates a sensor-fusion control loop: every tick it
// receives a frame of sensor readings, runs a small parallel region
// (per-sensor filtering as a balanced task tree), serializes to fuse
// the estimates, and reports latency percentiles at the end. The
// parallel regions are tiny — exactly the load-balancing-granularity
// regime where scheduler overheads decide whether parallelism helps
// at all (paper Figure 1, right).
//
//	go run ./examples/realtime [ticks]
package main

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"time"

	"gowool"
)

const sensors = 64

type frame struct {
	readings [sensors]float64
	filtered [sensors]float64
}

// filterRange runs an exponential filter chain over a range of
// sensors: a balanced task tree, split to single sensors.
var filterRange *gowool.TaskDefC2[frame]

func init() {
	filterRange = gowool.DefineC2("filter", func(w *gowool.Worker, f *frame, lo, hi int64) int64 {
		if hi-lo == 1 {
			// A deliberately small kernel: ~1µs of work per sensor.
			x := f.readings[lo]
			est := x
			for i := 0; i < 400; i++ {
				est = 0.9*est + 0.1*(x+float64(i%7))
			}
			f.filtered[lo] = est
			return 0
		}
		mid := (lo + hi) / 2
		filterRange.Spawn(w, f, lo, mid)
		filterRange.Call(w, f, mid, hi)
		filterRange.Join(w)
		return 0
	})
}

func main() {
	ticks := 2000
	if len(os.Args) > 1 {
		if v, err := strconv.Atoi(os.Args[1]); err == nil {
			ticks = v
		}
	}

	pool := gowool.NewPool(gowool.Options{
		Workers:      runtime.GOMAXPROCS(0),
		PrivateTasks: true,
		// Latency-sensitive: keep idle workers spinning rather than
		// sleeping between regions.
		MaxIdleSleep: -1,
	})
	defer pool.Close()

	lat := make([]time.Duration, 0, ticks)
	var fused float64
	f := &frame{}
	for t := 0; t < ticks; t++ {
		// "Input is consumed": a fresh frame arrives.
		for i := range f.readings {
			f.readings[i] = float64((t*31 + i*17) % 100)
		}
		t0 := time.Now()
		// The parallel region.
		pool.Run(func(w *gowool.Worker) int64 { return filterRange.Call(w, f, 0, sensors) })
		// "Output is produced": the serialization point.
		var s float64
		for _, v := range f.filtered {
			s += v
		}
		fused += s / sensors
		lat = append(lat, time.Since(t0))
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration { return lat[int(p*float64(len(lat)-1))] }
	st := pool.Stats()
	fmt.Printf("%d ticks, %d sensors/frame, %d workers\n", ticks, sensors, pool.Workers())
	fmt.Printf("region latency p50=%v p90=%v p99=%v max=%v\n",
		pct(0.50), pct(0.90), pct(0.99), pct(1.0))
	fmt.Printf("per-tick scheduler events: %.1f spawns, %.2f steals\n",
		float64(st.Spawns)/float64(ticks), float64(st.Steals)/float64(ticks))
	fmt.Printf("fused checksum: %.3f\n", fused)
}
