package fibw

import "gowool/internal/sim"

// fib as a continuation state machine for the steal-parent simulator
// (sim.RunCilkSim): the execution order Cilk++'s compiler produces.

// CilkSimFrame is the cactus-stack frame of one fib activation.
type CilkSimFrame struct {
	sim.CFrame
	n    int64
	a, b int64
	res  *int64
}

// Step0 is the entry step.
func (f *CilkSimFrame) Step0(w *sim.CW) sim.CStep {
	if f.n < 2 {
		w.Work(LeafWork)
		*f.res = f.n
		return w.Return(&f.CFrame)
	}
	child := &CilkSimFrame{n: f.n - 1, res: &f.a}
	sim.NewCChild(&f.CFrame, &child.CFrame)
	return w.Spawn(&f.CFrame, f.step1, child.Step0)
}

func (f *CilkSimFrame) step1(w *sim.CW) sim.CStep {
	child := &CilkSimFrame{n: f.n - 2, res: &f.b}
	sim.NewCChild(&f.CFrame, &child.CFrame)
	return w.Spawn(&f.CFrame, f.step2, child.Step0)
}

func (f *CilkSimFrame) step2(w *sim.CW) sim.CStep {
	return w.Sync(&f.CFrame, f.step3)
}

func (f *CilkSimFrame) step3(w *sim.CW) sim.CStep {
	w.Work(NodeWork)
	*f.res = f.a + f.b
	return w.Return(&f.CFrame)
}

// RunCilkSim computes fib(n) under steal-parent simulation and returns
// the value with the run's result.
func RunCilkSim(cfg sim.Config, n int64) (int64, sim.CResult) {
	var out int64
	res := sim.RunCilkSim(cfg, func(w *sim.CW) sim.CStep {
		root := &CilkSimFrame{n: n, res: &out}
		return root.Step0
	})
	return out, res
}
