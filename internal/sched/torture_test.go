package sched_test

import (
	"flag"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"gowool/internal/chaos"
	"gowool/internal/sched"
	"gowool/internal/steal"
	"gowool/internal/workloads/fibw"
)

// chaosSweep time-boxes TestChaosSeedSweep: 0 (the default) runs a
// handful of fixed seeds; a duration keeps drawing fresh seeds until
// the box expires. Every seed is logged so a CI failure is replayable:
//
//	go test ./internal/sched/ -run TestChaosSeedSweep -chaos.sweep=30s
var chaosSweep = flag.Duration("chaos.sweep", 0, "time box for the chaos seed sweep (0 = fixed seeds only)")

// tortureWorkers is the pool size for every torture run; the host may
// have a single core, so GOMAXPROCS is raised around each run.
const tortureWorkers = 4

// runTorture drives one scheduler through the serial-agreement and
// exactly-once workloads under one chaos profile, seed, and steal
// config. Every failure message carries the profile, steal policy and
// seed, which replay the run byte-for-byte.
func runTorture(t *testing.T, s sched.Scheduler, prof chaos.Profile, seed uint64, stl steal.Config) {
	t.Helper()
	polName := stl.Defaults().Policy
	opts := sched.Options{
		Workers: tortureWorkers,
		Chaos:   chaos.NewInjector(tortureWorkers, prof, seed),
		Steal:   stl,
	}
	if s.Caps().Watchdog {
		// Generous relative to the profiles' delays: a hang becomes a
		// diagnosable failure instead of a stuck CI job, and a merely
		// perturbed-but-progressing run must never trip it.
		opts.Watchdog = 2 * time.Second
	}

	// Serial agreement: a steal-heavy recursion must produce the
	// serial answer no matter what the injector does to the protocol.
	j := fibw.Job(16, 1)
	p := s.NewPool(opts)
	got := p.RunRec(j)
	p.Close()
	if want := fibw.Serial(16); got != want {
		t.Fatalf("%s profile=%s policy=%s seed=%d: fib(16) = %d, want %d (replay with this profile, policy and seed)",
			s.Name(), prof.Name, polName, seed, got, want)
	}

	// Exactly-once: chaos must never duplicate or drop a leaf.
	const height = 6
	var leaves atomic.Int64
	rec := sched.RecJob{
		Name: "tree", Root: height, Reps: 1,
		Leaf: func(h int64) (int64, bool) {
			if h == 0 {
				leaves.Add(1)
				return 1, true
			}
			return 0, false
		},
		Split: func(h int64) (inline, spawned int64) { return h - 1, h - 1 },
	}
	opts.Chaos = chaos.NewInjector(tortureWorkers, prof, seed+1)
	p = s.NewPool(opts)
	got = p.RunRec(rec)
	p.Close()
	if want := int64(1 << height); got != want || leaves.Load() != want {
		t.Fatalf("%s profile=%s policy=%s seed=%d: tree sum=%d leaves=%d, want %d (replay with this profile, policy and seed)",
			s.Name(), prof.Name, polName, seed+1, got, leaves.Load(), want)
	}
}

// TestChaosTorture is the conformance arm of the fault-injection
// tentpole: every registered scheduler, under every built-in chaos
// profile, must stay correct. Backends without Caps.Chaos (gonative)
// still run — their adapters ignore the injector — so the suite shape
// stays registry-driven.
func TestChaosTorture(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	profiles := chaos.Profiles()
	if len(profiles) < 3 {
		t.Fatalf("want at least 3 built-in chaos profiles, have %d", len(profiles))
	}
	for _, s := range sched.All() {
		t.Run(s.Name(), func(t *testing.T) {
			for _, prof := range profiles {
				t.Run(prof.Name, func(t *testing.T) {
					runTorture(t, s, prof, 0x5eed, steal.Config{})
				})
			}
		})
	}
}

// TestStealPolicyTorture runs the torture workloads (serial agreement
// and exactly-once) over every advertised steal policy × amount on
// every backend that advertises policies, rotating the chaos profiles
// so each policy meets a different perturbation. Localized runs with a
// 2-worker neighborhood so it doesn't degenerate to random at the
// 4-worker torture size.
func TestStealPolicyTorture(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	profiles := chaos.Profiles()
	for _, s := range sched.All() {
		caps := s.Caps()
		if len(caps.StealPolicies) == 0 {
			continue
		}
		t.Run(s.Name(), func(t *testing.T) {
			run := 0
			for _, pol := range caps.StealPolicies {
				for _, amt := range caps.StealAmounts {
					prof := profiles[run%len(profiles)]
					run++
					t.Run(pol+"/"+amt, func(t *testing.T) {
						runTorture(t, s, prof, 0x57ea1, steal.Config{
							Policy: pol, Amount: amt, Neighborhood: 2,
						})
					})
				}
			}
		})
	}
}

// TestChaosSeedSweep drives the torture workloads across many seeds on
// the chaos-capable backends, logging every seed tried so any failure
// in CI is replayable. Without -chaos.sweep it covers a small fixed
// set; with a time box it keeps drawing seeds from a splitmix stream
// until the box expires.
func TestChaosSeedSweep(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	profiles := chaos.Profiles()

	var seeds []uint64
	if *chaosSweep <= 0 {
		seeds = []uint64{1, 2, 0xdead}
	}

	rng := chaos.NewRNG(0x5eed5eed)
	deadline := time.Now().Add(*chaosSweep)
	for round := 0; ; round++ {
		var seed uint64
		switch {
		case seeds != nil:
			if round >= len(seeds) {
				return
			}
			seed = seeds[round]
		default:
			if !time.Now().Before(deadline) {
				return
			}
			seed = rng.Next()
		}
		prof := profiles[round%len(profiles)]
		for _, s := range sched.All() {
			if !s.Caps().Chaos {
				continue
			}
			t.Logf("sweep round %d: scheduler=%s profile=%s seed=%d", round, s.Name(), prof.Name, seed)
			runTorture(t, s, prof, seed, steal.Config{})
		}
	}
}
