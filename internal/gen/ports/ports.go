// Package ports holds the woolgen-generated monomorphic task ports
// for the registry's generic job shapes (DESIGN.md §13): the
// divide-and-conquer recursion (sched.RecJob), the balanced range
// splitter (sched.RangeJob), and the noop ladder task behind the
// spawn/join micro benchmarks. The woolgen scheduler backend
// (internal/sched) routes RunRec/RunRange through these ports, so the
// generated fast path runs under the full conformance, chaos, trace
// and woolvet surface the registry provides.
//
// The hand-written part of the package is the task bodies below; the
// Spawn*/Join*/Call* plumbing around them is generated (ports_gen.go)
// and regenerated with `go generate ./...`.
package ports

//go:generate go run gowool/cmd/woolgen -pkg ports -out ports_gen.go -task Noop:1:batch -task Rec:1:ctx=*RecCtx -task Range:2:ctx=*RangeCtx

import "gowool/internal/core"

// RecCtx carries a recursion's body closures through the descriptor's
// context slot (a pointer store — no allocation per spawn). The shape
// mirrors sched.RecJob: Leaf decides and computes leaves, Split yields
// (inline, spawned) subproblems.
type RecCtx struct {
	Leaf  func(n int64) (int64, bool)
	Split func(n int64) (inline, spawned int64)
}

// recBody is the SPAWN/CALL/JOIN recursion of the paper's Figure 2
// over a RecCtx. SpawnRec/JoinRec around it are generated.
func recBody(w *core.Worker, c *RecCtx, n int64) int64 {
	if v, ok := c.Leaf(n); ok {
		return v
	}
	first, second := c.Split(n)
	SpawnRec(w, c, second)
	a := recBody(w, c, first)
	b := JoinRec(w)
	return a + b
}

// RangeCtx carries a range reduction's leaf closure.
type RangeCtx struct {
	Leaf func(i int64) int64
}

// rangeBody is the balanced range splitter over [lo, hi) — the task
// tree Wool's loop constructs expand into.
func rangeBody(w *core.Worker, c *RangeCtx, lo, hi int64) int64 {
	if hi-lo <= 1 {
		if hi <= lo {
			return 0
		}
		return c.Leaf(lo)
	}
	mid := (lo + hi) / 2
	SpawnRange(w, c, mid, hi)
	a := rangeBody(w, c, lo, mid)
	b := JoinRange(w)
	return a + b
}

// noopBody is the identity task behind the Table II spawn/join ladder:
// all cost measured around it is scheduler overhead.
func noopBody(w *core.Worker, x int64) int64 { return x }
