GO ?= go

.PHONY: build test race lint bench ci all trace-smoke

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect every scheduler backend that has a thief/victim protocol
# (direct task stack, Chase-Lev deque, locked deque, cilk-style,
# central queue) plus the simulator driving them.
race:
	$(GO) test -race -count=1 ./internal/core/... ./internal/chaselev/... \
		./internal/locksched/... ./internal/cilkstyle/... \
		./internal/ompstyle/... ./internal/sim/...

# woolvet enforces the direct-task-stack protocol invariants
# (atomic-only fields, owner-private fields, cache-line layout,
# spawn/join balance) over the whole module. See DESIGN.md §10.
lint:
	$(GO) run ./cmd/woolvet ./...

# Machine-readable fast-path/idle-engine numbers for the perf
# trajectory; commit the refreshed BENCH_core.json with perf PRs.
bench:
	$(GO) run ./cmd/woolbench -corejson BENCH_core.json

# End-to-end check of the wooltrace pipeline (DESIGN.md §11): export a
# Chrome trace from a real run, validate it against the trace_event
# schema with -checktrace, and require the load-balancing events (STEAL
# from the run, PARK from the settle window) plus a non-empty steal
# matrix. The settle window lets the idle workers reach their PARK
# transitions before the snapshot — on a loaded single-CPU machine they
# may not get a timeslice to park during the run itself.
TRACE_SMOKE_JSON ?= /tmp/wooltrace-smoke.json
trace-smoke:
	$(GO) run ./cmd/woolrun -workload fib -n 25 -workers 4 -private \
		-settle 300ms -trace $(TRACE_SMOKE_JSON) -stealmatrix | tee $(TRACE_SMOKE_JSON).out
	$(GO) run ./cmd/woolrun -checktrace $(TRACE_SMOKE_JSON)
	grep -q '"STEAL"' $(TRACE_SMOKE_JSON)
	grep -q '"PARK"' $(TRACE_SMOKE_JSON)
	grep -q 'total steals:' $(TRACE_SMOKE_JSON).out
	! grep -q 'total steals: 0$$' $(TRACE_SMOKE_JSON).out

# What .github/workflows/ci.yml runs: build, vet, woolvet, the tier-1
# suite, and a short race pass over the scheduler protocols and the
# registry conformance suite.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/woolvet ./...
	$(GO) test ./...
	$(GO) test -race -count=1 -short ./internal/core/... ./internal/chaselev/... \
		./internal/locksched/... ./internal/cilkstyle/... \
		./internal/ompstyle/... ./internal/sim/... \
		./internal/sched/... ./internal/workloads/
