package resilience

import (
	"sync"
	"time"

	"gowool/internal/chaos"
)

// RetryConfig tunes server-side retries of retry-safe requests.
type RetryConfig struct {
	// MaxRetries bounds the re-runs of one request (attempts =
	// 1 + MaxRetries). Default 2.
	MaxRetries int
	// BaseBackoff is the first retry's backoff ceiling; attempt k
	// draws uniformly from (0, min(MaxBackoff, BaseBackoff·2^k)] —
	// full jitter, so synchronized failures decorrelate. Default 1ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Default 50ms.
	MaxBackoff time.Duration
	// BudgetCap is the retry token bucket's capacity; each retry costs
	// one token and a drained bucket suppresses retries, so retries
	// can never amplify a full outage by more than the bucket.
	// Default 10.
	BudgetCap float64
	// BudgetPerSuccess is the token refill per successful request
	// (capped at BudgetCap): the budget is a fraction of the success
	// rate, the gRPC retry-throttling shape. Default 0.1.
	BudgetPerSuccess float64
}

// Defaulted fills zero fields with the defaults.
func (c RetryConfig) Defaulted() RetryConfig {
	if c.MaxRetries <= 0 {
		c.MaxRetries = 2
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 50 * time.Millisecond
	}
	if c.BudgetCap <= 0 {
		c.BudgetCap = 10
	}
	if c.BudgetPerSuccess <= 0 {
		c.BudgetPerSuccess = 0.1
	}
	return c
}

// Retrier owns one tenant's retry policy: the attempt bound, the
// jittered exponential backoff, and the retry-budget token bucket.
// Safe for concurrent use.
type Retrier struct {
	mu     sync.Mutex
	cfg    RetryConfig
	tokens float64
	rng    chaos.RNG
}

// NewRetrier builds a retrier with cfg (zero fields defaulted) and a
// seeded jitter stream; the bucket starts full.
func NewRetrier(cfg RetryConfig, seed uint64) *Retrier {
	cfg = cfg.Defaulted()
	return &Retrier{cfg: cfg, tokens: cfg.BudgetCap, rng: chaos.NewRNG(seed)}
}

// OnSuccess refills the budget by BudgetPerSuccess, capped.
func (r *Retrier) OnSuccess() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tokens += r.cfg.BudgetPerSuccess
	if r.tokens > r.cfg.BudgetCap {
		r.tokens = r.cfg.BudgetCap
	}
}

// Next decides whether a request that already ran `attempt` times
// (attempt ≥ 1) may be retried, charging the budget and returning the
// jittered backoff to wait before re-enqueueing. ok is false when the
// attempt bound or the budget says stop.
func (r *Retrier) Next(attempt int) (backoff time.Duration, ok bool) {
	if attempt > r.cfg.MaxRetries {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tokens < 1 {
		return 0, false
	}
	r.tokens--
	ceil := r.cfg.BaseBackoff << uint(attempt-1)
	if ceil > r.cfg.MaxBackoff || ceil <= 0 {
		ceil = r.cfg.MaxBackoff
	}
	// Full jitter in (0, ceil]: never zero, so a retry always leaves
	// the failing lane a moment to be replaced or reset.
	return time.Duration(r.rng.Next()%uint64(ceil)) + 1, true
}

// Tokens returns the current budget (health snapshots).
func (r *Retrier) Tokens() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tokens
}

// MaxRetries exposes the defaulted attempt bound.
func (r *Retrier) MaxRetries() int { return r.cfg.MaxRetries }
