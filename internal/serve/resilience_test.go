package serve

// Tests for the self-healing layer (DESIGN.md §17): breaker admission,
// deadline-aware shedding, server-side retries, lane quarantine, and
// the Health/Stats observability surface.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"gowool/internal/chaos"
	"gowool/internal/resilience"
	"gowool/internal/sched"
	"gowool/internal/workloads/fibw"
)

// boomJob always panics at its leaves. Distinct Name per test so the
// estimator classes never collide across tests.
func boomJob(name string) Job {
	return Rec(sched.RecJob{
		Name: name,
		Root: 4,
		Leaf: func(n int64) (int64, bool) {
			if n <= 0 {
				panic("boom: " + name)
			}
			return 0, false
		},
		Split: func(n int64) (inline, spawned int64) { return n - 1, n - 2 },
	})
}

// mustWaitFib submits one fib(12) request and requires the serial
// answer.
func mustWaitFib(t *testing.T, s *Server, tenant string) {
	t.Helper()
	tk, err := s.Submit(context.Background(), tenant, Rec(fibw.Job(12, 1)))
	if err != nil {
		t.Fatalf("submit fib: %v", err)
	}
	v, err := tk.Wait()
	if want := fibw.Serial(12); err != nil || v != want {
		t.Fatalf("fib(12): v=%d err=%v, want %d, nil", v, err, want)
	}
}

// TestServeBreakerOpensAndRecovers drives a tenant through the whole
// breaker cycle: a failure storm opens it (submissions shed with
// ErrCircuitOpen), the cooldown moves it to half-open, and successful
// probes close it again.
func TestServeBreakerOpensAndRecovers(t *testing.T) {
	s, err := New(Options{
		Workers: 1,
		Resilience: resilience.Options{
			Breaker: resilience.BreakerConfig{
				Window: 10 * time.Second, MinSamples: 4, FailureRate: 0.5,
				Cooldown: 200 * time.Millisecond, HalfOpenProbes: 1,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Storm: 4 panicking requests reach MinSamples at failure rate 1.0.
	for i := 0; i < 4; i++ {
		tk, err := s.Submit(context.Background(), "", boomJob("breaker-boom"))
		if err != nil {
			t.Fatalf("storm submit %d: %v", i, err)
		}
		if _, werr := tk.Wait(); werr == nil {
			t.Fatalf("storm request %d did not fail", i)
		}
	}
	if _, err := s.Submit(context.Background(), "", boomJob("breaker-boom")); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("submit on open breaker: err = %v, want ErrCircuitOpen", err)
	}
	h := s.Health()
	if h.Tenants[0].Breaker == nil || h.Tenants[0].Breaker.State != "open" || h.Tenants[0].Breaker.Opened != 1 {
		t.Fatalf("breaker health = %+v, want open with opened=1", h.Tenants[0].Breaker)
	}
	if st := s.Stats(); st.Tenants[0].ShedCircuitOpen == 0 || st.Tenants[0].Rejected != st.Tenants[0].ShedCircuitOpen {
		t.Fatalf("stats = %+v, want Rejected == ShedCircuitOpen > 0", st.Tenants[0])
	}

	// Past the cooldown a good request is admitted as the half-open
	// probe; its success closes the breaker (HalfOpenProbes = 1).
	time.Sleep(250 * time.Millisecond)
	mustWaitFib(t, s, "")
	h = s.Health()
	bh := h.Tenants[0].Breaker
	if bh.State != "closed" || bh.HalfOpened != 1 || bh.Closed != 1 {
		t.Fatalf("post-recovery breaker = %+v, want closed with halfOpened=1 closed=1", bh)
	}
	// Closed again: normal traffic flows.
	mustWaitFib(t, s, "")
}

// TestServeBreakerProbeFailureReopens pins the half-open → open edge on
// the serving path: the probe request panics and the next submission is
// shed again.
func TestServeBreakerProbeFailureReopens(t *testing.T) {
	s, err := New(Options{
		Workers: 1,
		Resilience: resilience.Options{
			Breaker: resilience.BreakerConfig{
				Window: 10 * time.Second, MinSamples: 4, FailureRate: 0.5,
				Cooldown: 100 * time.Millisecond, HalfOpenProbes: 1,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		tk, err := s.Submit(context.Background(), "", boomJob("reopen-boom"))
		if err != nil {
			t.Fatal(err)
		}
		tk.Wait()
	}
	time.Sleep(150 * time.Millisecond)
	tk, err := s.Submit(context.Background(), "", boomJob("reopen-boom"))
	if err != nil {
		t.Fatalf("probe submit: %v", err)
	}
	if _, werr := tk.Wait(); werr == nil {
		t.Fatal("probe request did not fail")
	}
	if _, err := s.Submit(context.Background(), "", boomJob("reopen-boom")); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("submit after failed probe: err = %v, want ErrCircuitOpen", err)
	}
	if bh := s.Health().Tenants[0].Breaker; bh.Opened != 2 {
		t.Fatalf("breaker opened = %d, want 2 (re-opened by the failed probe)", bh.Opened)
	}
}

// TestServeDeadlineAdmission trains the estimator on a slow class, then
// checks a submission whose deadline the class cannot meet is shed up
// front with ErrDeadlineUnmeetable — and that other classes are
// unaffected.
func TestServeDeadlineAdmission(t *testing.T) {
	s, err := New(Options{
		Workers: 1,
		Resilience: resilience.Options{
			Estimator: resilience.EstimatorConfig{Alpha: 0.5, MinSamples: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Train: three 5ms spins observed (busy-wait, so the measured
	// service time is always >= 5ms).
	for i := 0; i < 3; i++ {
		tk, err := s.Submit(context.Background(), "", spinJob(1, 5*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		if _, werr := tk.Wait(); werr != nil {
			t.Fatalf("training spin %d: %v", i, werr)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := s.Submit(ctx, "", spinJob(1, 5*time.Millisecond)); !errors.Is(err, ErrDeadlineUnmeetable) {
		t.Fatalf("doomed submit: err = %v, want ErrDeadlineUnmeetable", err)
	}
	if st := s.Stats().Tenants[0]; st.ShedDeadline != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want ShedDeadline=1 Rejected=1", st)
	}
	// An untrained class with the same tight deadline is admitted (and
	// completes well inside it).
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	tk, err := s.Submit(ctx2, "", Rec(fibw.Job(10, 1)))
	if err != nil {
		t.Fatalf("untrained class submit: %v", err)
	}
	if _, werr := tk.Wait(); werr != nil {
		t.Fatalf("untrained class: %v", werr)
	}
}

// flakyJob panics on its first `fails` runs and then succeeds with the
// value 1 — the retry machinery's canonical customer.
func flakyJob(name string, fails int32) Job {
	var runs atomic.Int32
	return Rec(sched.RecJob{
		Name: name,
		Root: 0,
		Leaf: func(n int64) (int64, bool) {
			if runs.Add(1) <= fails {
				panic("flaky: " + name)
			}
			return 1, true
		},
		Split: func(n int64) (inline, spawned int64) { return 0, 0 },
	})
}

// TestServeRetryHealsTransientFailure: a retry-safe request that fails
// twice and then succeeds is healed server-side — the caller sees only
// the success.
func TestServeRetryHealsTransientFailure(t *testing.T) {
	s, err := New(Options{
		Workers: 1,
		Resilience: resilience.Options{
			Retry: resilience.RetryConfig{MaxRetries: 2, BaseBackoff: time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tk, err := s.SubmitWith(context.Background(), "", flakyJob("flaky-2", 2), SubmitOptions{Retryable: true})
	if err != nil {
		t.Fatal(err)
	}
	if !tk.Retryable {
		t.Fatal("ticket not marked retryable")
	}
	v, werr := tk.Wait()
	if werr != nil || v != 1 {
		t.Fatalf("retried request: v=%d err=%v, want 1, nil", v, werr)
	}
	st := s.Stats().Tenants[0]
	if st.Retried != 2 || st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want Retried=2 Completed=1 Failed=0", st)
	}
}

// TestServeRetryAttemptBound: a persistently failing retry-safe request
// stops at MaxRetries and surfaces its last error.
func TestServeRetryAttemptBound(t *testing.T) {
	s, err := New(Options{
		Workers: 1,
		Resilience: resilience.Options{
			Retry: resilience.RetryConfig{MaxRetries: 2, BaseBackoff: time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tk, err := s.SubmitWith(context.Background(), "", boomJob("retry-bound"), SubmitOptions{Retryable: true})
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if _, werr := tk.Wait(); !errors.As(werr, &pe) {
		t.Fatalf("err = %v, want *PanicError after exhausted retries", werr)
	}
	st := s.Stats().Tenants[0]
	if st.Retried != 2 || st.Failed != 1 {
		t.Fatalf("stats = %+v, want Retried=2 Failed=1", st)
	}
}

// TestServeRetryIgnoredWhenDisabled: with retries disabled the
// Retryable mark is a no-op and the ticket fails on its first attempt.
func TestServeRetryIgnoredWhenDisabled(t *testing.T) {
	s, err := New(Options{
		Workers:    1,
		Resilience: resilience.Options{DisableRetry: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tk, err := s.SubmitWith(context.Background(), "", boomJob("retry-off"), SubmitOptions{Retryable: true})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Retryable {
		t.Fatal("ticket marked retryable with retries disabled")
	}
	if _, werr := tk.Wait(); werr == nil {
		t.Fatal("request did not fail")
	}
	if st := s.Stats().Tenants[0]; st.Retried != 0 {
		t.Fatalf("retried = %d, want 0", st.Retried)
	}
	if h := s.Health(); h.Tenants[0].RetryTokens != -1 {
		t.Fatalf("retry tokens = %v, want -1 (disabled)", h.Tenants[0].RetryTokens)
	}
}

// TestServeCloseWithPendingRetry: Close finalizes a ticket that is
// backing off for a retry with ErrClosed — exactly once, no hang.
func TestServeCloseWithPendingRetry(t *testing.T) {
	s, err := New(Options{
		Workers: 1,
		Resilience: resilience.Options{
			// A long backoff so the ticket is reliably mid-backoff when
			// Close runs.
			Retry: resilience.RetryConfig{MaxRetries: 1, BaseBackoff: 10 * time.Second, MaxBackoff: 10 * time.Second},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := s.SubmitWith(context.Background(), "", boomJob("close-retry"), SubmitOptions{Retryable: true})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the failing attempt finished and the retry is armed.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Tenants[0].Retried == 0 {
		if time.Now().After(deadline) {
			t.Fatal("retry never armed")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	select {
	case <-tk.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("backing-off ticket not finalized by Close")
	}
	if _, werr := tk.Wait(); !errors.Is(werr, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", werr)
	}
}

// TestServeQuarantineOnFailureStreak: enough consecutive failures pull
// the lane from rotation; the replacement pool then serves normally and
// Health reports the episode.
func TestServeQuarantineOnFailureStreak(t *testing.T) {
	s, err := New(Options{
		Workers: 1,
		Resilience: resilience.Options{
			DisableBreaker: true, // keep admitting the failure storm
			Quarantine:     resilience.QuarantineConfig{FailureStreak: 3, ProbeBackoff: time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		tk, err := s.Submit(context.Background(), "", boomJob("streak"))
		if err != nil {
			t.Fatal(err)
		}
		tk.Wait()
	}
	// The quarantine runs between requests; the next request lands on
	// the replacement pool.
	mustWaitFib(t, s, "")
	h := s.Health().Lanes[0]
	if h.Quarantines < 1 || h.Replacements < 1 || h.Probes < 1 {
		t.Fatalf("lane health = %+v, want >=1 quarantine/replacement/probe", h)
	}
	if h.FailureStreak != 0 || h.State != "serving" {
		t.Fatalf("lane health = %+v, want streak reset and serving", h)
	}
	if st := s.Stats(); st.Quarantines < 1 || st.Replacements < 1 {
		t.Fatalf("stats = %+v, want quarantine totals >= 1", st)
	}
}

// TestServeChaosResetFailQuarantine: a mid-flight cancellation whose
// Reset is chaos-failed forces the quarantine path; probe-fail chaos
// makes the first probes fail so the probe-retry loop runs too.
func TestServeChaosResetFailQuarantine(t *testing.T) {
	for _, backend := range []string{"wool", "woolgen"} {
		t.Run(backend, func(t *testing.T) {
			var rates chaos.ServeRates
			rates[chaos.ServeLaneResetFail] = 65535 // every Reset "fails"
			rates[chaos.ServeProbeFail] = 32768     // ~half the probes fail
			inj := chaos.NewServeInjector(rates, 0x0bad5eed)
			s, err := New(Options{
				Backend: backend,
				Workers: 1,
				Chaos:   inj,
				Resilience: resilience.Options{
					Quarantine: resilience.QuarantineConfig{FailureStreak: -1, ProbeBackoff: time.Millisecond},
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			var gate, started atomic.Bool
			ctx, cancel := context.WithCancel(context.Background())
			victim, err := s.Submit(ctx, "", gateJob(&gate, &started, 64))
			if err != nil {
				t.Fatal(err)
			}
			waitTrue(t, &started, "victim dispatch")
			cancel()
			waitLanePoisoned(t, s)
			gate.Store(true)
			if _, werr := victim.Wait(); !errors.Is(werr, context.Canceled) {
				t.Fatalf("victim err = %v, want context.Canceled", werr)
			}
			// The replacement pool serves the follow-ups.
			mustWaitFib(t, s, "")
			h := s.Health().Lanes[0]
			if h.Quarantines < 1 || h.Replacements < 1 {
				t.Fatalf("lane health = %+v, want a quarantine (replay seed=%#x)", h, inj.Seed())
			}
			if cnt := inj.Injected(); cnt[chaos.ServeLaneResetFail] < 1 {
				t.Fatalf("chaos never fired lane-reset-fail: %v (replay seed=%#x)", cnt, inj.Seed())
			}
		})
	}
}

// TestServeSubmitStormChaos: the submit-storm injection point sheds at
// admission as ErrOverloaded and is accounted as an overload shed.
func TestServeSubmitStormChaos(t *testing.T) {
	var rates chaos.ServeRates
	rates[chaos.ServeSubmitStorm] = 65535
	s, err := New(Options{Workers: 1, Chaos: chaos.NewServeInjector(rates, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Submit(context.Background(), "", Rec(fibw.Job(10, 1))); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("storm submit: err = %v, want ErrOverloaded", err)
	}
	if st := s.Stats().Tenants[0]; st.ShedOverload != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v, want ShedOverload=1", st)
	}
}

// TestServeNonAbortableReplacement covers the Caps.Serve-less
// pool-replacement path on every registered backend without the abort
// surface: a panicking request must not poison the lane for the
// follow-ups, and backends with real pool state must have replaced it.
func TestServeNonAbortableReplacement(t *testing.T) {
	for _, sc := range sched.All() {
		if sc.Caps().Serve {
			continue
		}
		t.Run(sc.Name(), func(t *testing.T) {
			s, err := New(Options{Backend: sc.Name(), Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			hasNative := s.lanes[0].pool.Native() != nil
			tk, err := s.Submit(context.Background(), "", boomJob("nonabort"))
			if err != nil {
				t.Fatal(err)
			}
			var pe *PanicError
			if _, werr := tk.Wait(); !errors.As(werr, &pe) {
				t.Fatalf("panicking request: err = %v, want *PanicError", werr)
			}
			for i := 0; i < 4; i++ {
				mustWaitFib(t, s, "")
			}
			st := s.Stats()
			if hasNative && st.Replacements < 1 {
				t.Fatalf("replacements = %d, want >= 1 on a stateful non-Abortable backend", st.Replacements)
			}
			if !hasNative && st.Replacements != 0 {
				t.Fatalf("replacements = %d, want 0 on a stateless backend", st.Replacements)
			}
		})
	}
}

// TestServeResetErrorReplacement pins the real (non-chaos)
// Reset-returns-error branch: a Reset that reports an error must
// quarantine and replace the pool, not leave the poison in place.
func TestServeResetErrorReplacement(t *testing.T) {
	s, err := New(Options{
		Workers: 1,
		Resilience: resilience.Options{
			Quarantine: resilience.QuarantineConfig{FailureStreak: -1, ProbeBackoff: time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Swap the lane's abort surface for one whose Reset always errors.
	// The lane is idle (no request yet), so the swap is safe under mu.
	l := s.lanes[0]
	l.mu.Lock()
	l.ab = resetFailAbortable{l.ab}
	l.mu.Unlock()

	var gate, started atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	victim, err := s.Submit(ctx, "", gateJob(&gate, &started, 64))
	if err != nil {
		t.Fatal(err)
	}
	waitTrue(t, &started, "victim dispatch")
	cancel()
	waitLanePoisoned(t, s)
	gate.Store(true)
	if _, werr := victim.Wait(); !errors.Is(werr, context.Canceled) {
		t.Fatalf("victim err = %v, want context.Canceled", werr)
	}
	mustWaitFib(t, s, "")
	if h := s.Health().Lanes[0]; h.Quarantines < 1 || h.Replacements < 1 {
		t.Fatalf("lane health = %+v, want quarantine after Reset error", h)
	}
}

// resetFailAbortable wraps a real abort surface with a Reset that
// always fails.
type resetFailAbortable struct{ sched.Abortable }

func (a resetFailAbortable) Reset() error { return fmt.Errorf("injected reset failure") }

// TestServeHealthShape pins the Health snapshot's basic shape with the
// defaults on and with everything disabled.
func TestServeHealthShape(t *testing.T) {
	s, err := New(Options{Workers: 2, Tenants: []Tenant{{Name: "a"}, {Name: "b"}}})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Health()
	if len(h.Lanes) != 2 || len(h.Tenants) != 2 {
		t.Fatalf("health shape: %d lanes, %d tenants, want 2/2", len(h.Lanes), len(h.Tenants))
	}
	for _, lh := range h.Lanes {
		if lh.State != "serving" || lh.Poisoned {
			t.Fatalf("fresh lane health = %+v", lh)
		}
	}
	for _, th := range h.Tenants {
		if th.Breaker == nil || th.Breaker.State != "closed" {
			t.Fatalf("fresh tenant breaker = %+v, want closed", th.Breaker)
		}
		if th.RetryTokens <= 0 {
			t.Fatalf("fresh retry tokens = %v, want > 0", th.RetryTokens)
		}
	}
	s.Close()

	s2, err := New(Options{Workers: 1, Resilience: resilience.Options{
		DisableBreaker: true, DisableRetry: true, DisableDeadline: true, DisableQuarantine: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	th := s2.Health().Tenants[0]
	if th.Breaker != nil || th.RetryTokens != -1 {
		t.Fatalf("disabled tenant health = %+v, want nil breaker, tokens -1", th)
	}
}

// TestServePerTenantResilienceOverride: a tenant-level breaker config
// overrides the server default (tenant "frail" trips while "sturdy"
// stays closed under the same storm).
func TestServePerTenantResilienceOverride(t *testing.T) {
	frail := &resilience.TenantConfig{
		Breaker: &resilience.BreakerConfig{
			Window: 10 * time.Second, MinSamples: 2, FailureRate: 0.5,
			Cooldown: 10 * time.Second, HalfOpenProbes: 1,
		},
	}
	s, err := New(Options{
		Workers: 2,
		Tenants: []Tenant{{Name: "frail", Resilience: frail}, {Name: "sturdy"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, tenant := range []string{"frail", "sturdy"} {
		for i := 0; i < 2; i++ {
			tk, err := s.Submit(context.Background(), tenant, boomJob("override"))
			if err != nil {
				t.Fatalf("%s submit %d: %v", tenant, i, err)
			}
			tk.Wait()
		}
	}
	if _, err := s.Submit(context.Background(), "frail", boomJob("override")); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("frail submit: err = %v, want ErrCircuitOpen", err)
	}
	// The default MinSamples (20) keeps sturdy closed after 2 failures.
	if _, err := s.Submit(context.Background(), "sturdy", Rec(fibw.Job(10, 1))); err != nil {
		t.Fatalf("sturdy submit: %v", err)
	}
}
