GO ?= go

.PHONY: build test race lint bench ci all trace-smoke fuzz-smoke chaos

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect every scheduler backend that has a thief/victim protocol
# (direct task stack, Chase-Lev deque, locked deque, cilk-style,
# central queue) plus the simulator driving them and the registry's
# chaos-profile conformance suite (internal/sched).
race:
	$(GO) test -race -count=1 ./internal/core/... ./internal/chaselev/... \
		./internal/locksched/... ./internal/cilkstyle/... \
		./internal/ompstyle/... ./internal/sim/... ./internal/sched/...

# woolvet enforces the direct-task-stack protocol invariants
# (atomic-only fields, owner-private fields, cache-line layout,
# spawn/join balance) over the whole module. See DESIGN.md §10.
lint:
	$(GO) run ./cmd/woolvet ./...

# Machine-readable fast-path/idle-engine numbers for the perf
# trajectory; commit the refreshed BENCH_core.json with perf PRs.
bench:
	$(GO) run ./cmd/woolbench -corejson BENCH_core.json

# End-to-end check of the wooltrace pipeline (DESIGN.md §11): export a
# Chrome trace from a real run, validate it against the trace_event
# schema with -checktrace, and require the load-balancing events (STEAL
# from the run, PARK from the settle window) plus a non-empty steal
# matrix. The settle window lets the idle workers reach their PARK
# transitions before the snapshot — on a loaded single-CPU machine they
# may not get a timeslice to park during the run itself.
TRACE_SMOKE_JSON ?= /tmp/wooltrace-smoke.json
trace-smoke:
	$(GO) run ./cmd/woolrun -workload fib -n 25 -workers 4 -private \
		-settle 300ms -trace $(TRACE_SMOKE_JSON) -stealmatrix | tee $(TRACE_SMOKE_JSON).out
	$(GO) run ./cmd/woolrun -checktrace $(TRACE_SMOKE_JSON)
	grep -q '"STEAL"' $(TRACE_SMOKE_JSON)
	grep -q '"PARK"' $(TRACE_SMOKE_JSON)
	grep -q 'total steals:' $(TRACE_SMOKE_JSON).out
	! grep -q 'total steals: 0$$' $(TRACE_SMOKE_JSON).out

# Short native-fuzz passes over the two lock-free backends: random
# seed-derived spawn trees with irregular fan-out, a tiny task pool so
# every run also crosses the overflow-degradation path, and the serial
# walk as the oracle. Raise FUZZTIME for a longer soak.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/core/ -run '^$$' -fuzz FuzzSpawnTree -fuzztime $(FUZZTIME)
	$(GO) test ./internal/chaselev/ -run '^$$' -fuzz FuzzSpawnTree -fuzztime $(FUZZTIME)

# The fault-injection torture suite (DESIGN.md §12): every registered
# scheduler under every built-in chaos profile, race-detected, then a
# time-boxed randomized seed sweep that logs each seed tried so any
# failure is replayable. Raise CHAOS_SWEEP for a longer soak.
CHAOS_SWEEP ?= 20s
chaos:
	$(GO) test ./internal/sched/ -race -count=1 -run 'TestChaosTorture' -v
	$(GO) test ./internal/sched/ -race -count=1 -run 'TestChaosSeedSweep' -v \
		-chaos.sweep=$(CHAOS_SWEEP)

# What .github/workflows/ci.yml runs: build, vet, woolvet, the tier-1
# suite, and a short race pass over the scheduler protocols and the
# registry conformance suite.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/woolvet ./...
	$(GO) test ./...
	$(GO) test -race -count=1 -short ./internal/core/... ./internal/chaselev/... \
		./internal/locksched/... ./internal/cilkstyle/... \
		./internal/ompstyle/... ./internal/sim/... \
		./internal/sched/... ./internal/workloads/
