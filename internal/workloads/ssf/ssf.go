// Package ssf is the paper's Sub String Finder benchmark, based on the
// example from the TBB distribution: for each position in a string,
// find the longest substring starting there that also occurs starting
// at some other position. The string is the Fibonacci word
// s_n = s_{n-1} s_{n-2}, s_0 = "a", s_1 = "b", with n the workload
// parameter — highly self-similar, so match lengths (and hence
// per-position work) vary wildly, giving the irregular profile the
// benchmark exists to exercise.
package ssf

import (
	"gowool/internal/core"
	"gowool/internal/sched"
	"gowool/internal/sim"
)

// FibString returns s_n of the Fibonacci word recurrence.
func FibString(n int64) string {
	a, b := "a", "b"
	if n == 0 {
		return a
	}
	for i := int64(1); i < n; i++ {
		a, b = b, b+a
	}
	return b
}

// matchLen returns the length of the common prefix of s[i:] and s[j:].
func matchLen(s string, i, j int64) int64 {
	n := int64(len(s))
	var k int64
	for i+k < n && j+k < n && s[i+k] == s[j+k] {
		k++
	}
	return k
}

// Position computes the longest match for position i against all other
// positions, returning (bestLength, comparisons): comparisons counts
// the inner-loop work for the simulator's cost model.
func Position(s string, i int64) (best, comparisons int64) {
	n := int64(len(s))
	for j := int64(0); j < n; j++ {
		if j == i {
			continue
		}
		k := matchLen(s, i, j)
		comparisons += k + 1
		if k > best {
			best = k
		}
	}
	return best, comparisons
}

// Serial computes the per-position results with no task constructs,
// returning the sum of the best match lengths (a checksum the parallel
// versions must reproduce).
func Serial(s string, out []int64) int64 {
	var sum int64
	for i := int64(0); i < int64(len(s)); i++ {
		best, _ := Position(s, i)
		if out != nil {
			out[i] = best
		}
		sum += best
	}
	return sum
}

// Work holds the string and output shared by the parallel versions.
type Work struct {
	S   string
	Out []int64
}

//go:generate go run gowool/cmd/woolgen -pkg ssf -out ssf_gen.go -task Scan:2:ctx=*Work

// scanBody is the position-range recursion behind the woolgen-generated
// monomorphic port (ssf_gen.go): SpawnScan/JoinScan flatten to plain
// descriptor stores and direct calls back into this function on the
// private fast path. Run it with CallScan(w, wk, 0, int64(len(wk.S))).
func scanBody(w *core.Worker, wk *Work, lo, hi int64) int64 {
	if hi-lo == 1 {
		best, _ := Position(wk.S, lo)
		if wk.Out != nil {
			wk.Out[lo] = best
		}
		return best
	}
	mid := (lo + hi) / 2
	SpawnScan(w, wk, mid, hi)
	a := scanBody(w, wk, lo, mid)
	b := JoinScan(w)
	return a + b
}

// NewWool builds the position-range task tree (Wool loop style).
func NewWool() *core.TaskDefC2[Work] {
	var span *core.TaskDefC2[Work]
	span = core.DefineC2("ssf-range", func(w *core.Worker, wk *Work, lo, hi int64) int64 {
		if hi-lo == 1 {
			best, _ := Position(wk.S, lo)
			if wk.Out != nil {
				wk.Out[lo] = best
			}
			return best
		}
		mid := (lo + hi) / 2
		span.Spawn(w, wk, mid, hi)
		a := span.Call(w, wk, lo, mid)
		b := span.Join(w)
		return a + b
	})
	return span
}

// RunWool computes all positions on the pool, returning the checksum.
func RunWool(p *core.Pool, d *core.TaskDefC2[Work], wk *Work) int64 {
	return p.Run(func(w *core.Worker) int64 { return d.Call(w, wk, 0, int64(len(wk.S))) })
}

// Job returns the scan as a generic RangeJob over positions. Irregular
// is set: per-position work varies wildly, so the OpenMP adapter uses
// a dynamic work-sharing schedule, as the paper's OpenMP version does.
func Job(wk *Work, reps int64) sched.RangeJob {
	return sched.RangeJob{
		Name:      "ssf-range",
		N:         int64(len(wk.S)),
		Reps:      reps,
		Irregular: true,
		Leaf: func(i int64) int64 {
			best, _ := Position(wk.S, i)
			if wk.Out != nil {
				wk.Out[i] = best
			}
			return best
		},
	}
}

// CyclesPerComparison is the virtual cost of one inner-loop character
// comparison (load + compare + branch on cached data).
const CyclesPerComparison = 2

// NewSim builds the simulated position-range task: A0 = lo, A1 = hi,
// Ctx = *Work. The real scan runs to obtain the data-dependent work,
// which is charged at CyclesPerComparison.
func NewSim() *sim.Def {
	d := &sim.Def{Name: "ssf-range"}
	d.F = func(w *sim.W, a sim.Args) int64 {
		wk := a.Ctx.(*Work)
		lo, hi := a.A0, a.A1
		if hi-lo == 1 {
			best, comparisons := Position(wk.S, lo)
			w.Work(uint64(comparisons) * CyclesPerComparison)
			return best
		}
		mid := (lo + hi) / 2
		d.Spawn(w, sim.Args{A0: mid, A1: hi, Ctx: wk})
		x := d.Call(w, sim.Args{A0: lo, A1: mid, Ctx: wk})
		y := w.Join()
		return x + y
	}
	return d
}

// NewSimReps wraps the simulated scan in reps serialized regions:
// A0 = reps, Ctx = *Work.
func NewSimReps() *sim.Def {
	scan := NewSim()
	d := &sim.Def{Name: "ssf-reps"}
	d.F = func(w *sim.W, a sim.Args) int64 {
		wk := a.Ctx.(*Work)
		var total int64
		for r := int64(0); r < a.A0; r++ {
			total += scan.Call(w, sim.Args{A0: 0, A1: int64(len(wk.S)), Ctx: wk})
		}
		return total
	}
	return d
}
