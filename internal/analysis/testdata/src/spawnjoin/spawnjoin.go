// Package spawnjoin is the analysistest fixture for the spawnjoin
// pass: statement-position Spawn* calls must be matched by Join* calls
// (or a Sync/Taskwait barrier) on every return path, and spawn
// arguments must not capture loop variables shared across iterations.
package spawnjoin

type def struct{}

func (d *def) SpawnFib(w *wkr, n int64)       {}
func (d *def) SpawnPtr(w *wkr, p *int64)      {}
func (d *def) SpawnFn(w *wkr, f func() int64) {}
func (d *def) SpawnRet(w *wkr, n int64) int64 { return 0 }
func (d *def) JoinFib(w *wkr) int64           { return 0 }

type wkr struct{}

func (w *wkr) Sync() {}

func balanced(d *def, w *wkr, n int64) int64 {
	d.SpawnFib(w, n-1)
	d.SpawnFib(w, n-2)
	a := d.JoinFib(w)
	b := d.JoinFib(w)
	return a + b
}

func leaks(d *def, w *wkr, n int64) {
	d.SpawnFib(w, n-1)
	d.SpawnFib(w, n-2)
	_ = d.JoinFib(w)
} // want `leaks returns with 1 unjoined spawned task`

func earlyReturn(d *def, w *wkr, n int64) int64 {
	d.SpawnFib(w, n)
	if n > 10 {
		return 0 // want `earlyReturn returns with 1 unjoined spawned task`
	}
	return d.JoinFib(w)
}

func fireAndForget(d *def, w *wkr, n int64) {
	for i := int64(0); i < n; i++ {
		d.SpawnFib(w, i)
	}
} // want `fireAndForget spawns tasks but contains no Join or Sync`

// correlated spawn/join conditionals are correct code; the
// must-analysis keeps quiet (cholesky's mulsubStep shape).
func correlated(d *def, w *wkr, flag bool, n int64) int64 {
	if flag {
		d.SpawnFib(w, n)
	}
	var r int64
	if flag {
		r = d.JoinFib(w)
	}
	return r
}

// spawn-loop/join-loop is the nqueens idiom: the join loop drains the
// outstanding count.
func spawnLoopJoinLoop(d *def, w *wkr, n int64) int64 {
	for i := int64(0); i < n; i++ {
		d.SpawnFib(w, i)
	}
	var sum int64
	for i := int64(0); i < n; i++ {
		sum += d.JoinFib(w)
	}
	return sum
}

// a barrier clears every outstanding spawn.
func barrier(d *def, w *wkr, n int64) {
	for i := int64(0); i < n; i++ {
		d.SpawnFib(w, i)
	}
	w.Sync()
}

// continuation-style spawns return the next step; their joins are
// managed by Sync steps elsewhere (the cilkstyle idiom), so
// value-position spawns are exempt.
func continuation(d *def, w *wkr, n int64) int64 {
	return d.SpawnRet(w, n)
}

func captureShared(d *def, w *wkr, n int64) {
	var i int64
	for i = 0; i < n; i++ {
		d.SpawnPtr(w, &i) // want `spawn argument takes the address of loop variable i`
	}
	for j := int64(0); j < n; j++ {
		_ = d.JoinFib(w)
	}
}

func captureClosure(d *def, w *wkr, n int64) {
	var i int64
	for i = 0; i < n; i++ {
		d.SpawnFn(w, func() int64 { return i }) // want `spawn argument closure captures loop variable i`
	}
	w.Sync()
}

// per-iteration loop variables (Go >= 1.22 semantics) are safe.
func capturePerIteration(d *def, w *wkr, n int64) {
	for i := int64(0); i < n; i++ {
		d.SpawnFn(w, func() int64 { return i })
	}
	w.Sync()
}

// Package-scope spawn/join functions are the woolgen-generated idiom:
// the same balance discipline applies to free-function calls. The
// functions themselves are forwarding shims (Spawn*/Join* names) and
// are skipped as analysis units.
func SpawnTree(w *wkr, n int64)  {}
func JoinTree(w *wkr) int64      { return 0 }
func SpawnTreeN(w *wkr, n int64) {}
func JoinTreeN(w *wkr, n int64) int64 {
	var sum int64
	for ; n > 0; n-- {
		sum += JoinTree(w)
	}
	return sum
}

func freeBalanced(w *wkr, n int64) int64 {
	if n < 2 {
		return n
	}
	SpawnTree(w, n-2)
	a := freeBalanced(w, n-1)
	b := JoinTree(w)
	return a + b
}

func freeLeaks(w *wkr, n int64) {
	SpawnTree(w, n)
} // want `freeLeaks returns with 1 unjoined spawned task` `freeLeaks spawns tasks but contains no Join or Sync`

func freeEarlyReturn(w *wkr, n int64) int64 {
	SpawnTree(w, n)
	if n > 10 {
		return 0 // want `freeEarlyReturn returns with 1 unjoined spawned task`
	}
	return JoinTree(w)
}

// the generated batch pair: one SpawnN matched by one JoinN.
func freeBatch(w *wkr, n int64) int64 {
	SpawnTreeN(w, n)
	return JoinTreeN(w, n)
}
