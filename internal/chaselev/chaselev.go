// Package chaselev is a steal-child work-stealing scheduler built on
// the Chase-Lev dynamic circular deque, structured like Intel TBB 2.1
// as characterized in the paper: task structures are allocated from a
// per-worker free list, the deques hold only pointers to them, and
// thief/victim synchronization happens on the deque's top and bottom
// indices (the lineage of Dijkstra-style index protocols the paper
// contrasts with synchronizing on the task descriptor).
//
// This is the repository's stand-in for TBB: same scheduling order
// (steal child), same synchronization locus (the indices), same
// allocation structure (free list + pointer deque), and — like TBB's
// wait_for_all — a join that finds its task stolen by default steals
// from arbitrary victims while waiting, which exhibits the buried-join
// behaviour the paper discusses (WaitLeapfrog switches to Wool's
// policy for ablation).
package chaselev

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gowool/internal/chaos"
	"gowool/internal/overflow"
	"gowool/internal/poolerr"
	"gowool/internal/steal"
	"gowool/internal/trace"
)

// TaskFunc runs a task from its descriptor.
type TaskFunc func(w *Worker, t *Task)

// Task is a heap/free-list allocated task structure; the deque stores
// only pointers to these, as in TBB and Cilk++ (paper Section III).
type Task struct {
	// The wrapper and arguments are published to thieves by the deque
	// itself — the buf-slot store in push is what makes the pointer
	// visible — so they carry the abstract word "deque": writes must
	// dominate the push (release) and reads need alloc/joinAcquire
	// (acquire) in scope. See DESIGN.md §15.
	// woolvet:published-by deque
	fn TaskFunc
	// woolvet:published-by deque
	a0, a1, a2, a3 int64
	// woolvet:published-by deque
	ctx any
	// res is written by whoever ran the task and read by the owner
	// only after it has observed done (the sibling atomic flag).
	// woolvet:published-by done
	res int64

	// stolenBy is the thief index + 1 (atomic; 0 = not stolen).
	// woolvet:atomic
	stolenBy atomic.Int32
	// done is set by the thief on completion.
	// woolvet:atomic
	done atomic.Bool

	next *Task // free-list link, owner-only

	// inlined marks a spawn that overflowed the deque and was executed
	// inline by its owner (serial elision); the matching join reads res
	// directly instead of consulting the deque. Owner-only: set and
	// cleared by the spawning worker, never visible to thieves (an
	// inlined task is never published).
	inlined bool
}

// WaitPolicy selects what a blocked join does while its task is stolen.
type WaitPolicy int

// Wait policies.
const (
	// WaitSteal steals from arbitrary victims while blocked (TBB's
	// behaviour). Subject to the buried-join problem: work stolen here
	// sits above the blocked join on the worker's stack.
	WaitSteal WaitPolicy = iota
	// WaitLeapfrog restricts stealing to the thief of the joined task
	// (Wool's policy).
	WaitLeapfrog
	// WaitSpin just waits, stealing nothing (a non-greedy scheduler,
	// for ablation).
	WaitSpin
)

// String names the policy.
func (p WaitPolicy) String() string {
	switch p {
	case WaitSteal:
		return "steal-any"
	case WaitLeapfrog:
		return "leapfrog"
	case WaitSpin:
		return "spin"
	default:
		return fmt.Sprintf("WaitPolicy(%d)", int(p))
	}
}

// Stats are the scheduler's event counters.
type Stats struct {
	Spawns        int64
	JoinsInlined  int64
	JoinsStolen   int64
	Steals        int64
	StealAttempts int64
	Backoffs      int64 // owner pops that lost the last-element CAS race to a thief
	WaitSteals    int64 // tasks executed while blocked in a join
	Allocs        int64 // task structures taken from the heap (not free list)

	// OverflowInlined counts spawns that found the deque full and
	// degraded to inline serial execution (not counted in Spawns).
	OverflowInlined int64
}

func (s *Stats) add(o *Stats) {
	s.Spawns += o.Spawns
	s.JoinsInlined += o.JoinsInlined
	s.JoinsStolen += o.JoinsStolen
	s.Steals += o.Steals
	s.StealAttempts += o.StealAttempts
	s.Backoffs += o.Backoffs
	s.WaitSteals += o.WaitSteals
	s.Allocs += o.Allocs
	s.OverflowInlined += o.OverflowInlined
}

// Worker is one deque-scheduler worker. Like core.Worker, the fields
// are split into pad-separated cache-line groups (enforced by the
// woolvet layoutguard pass): the deque indices both sides hammer, the
// owner-private scheduling state, and the thief-side counters must
// never share a line, or thief CAS traffic invalidates the owner's
// push/pop line on every probe.
type Worker struct {
	// woolvet:cacheline group=immutable
	pool *Pool
	idx  int

	// trc is this worker's wooltrace ring, or nil when tracing is
	// disabled; set once in NewPool, recorded into only by the
	// goroutine driving this worker.
	trc *trace.Ring

	// chs is this worker's chaos agent, or nil when fault injection is
	// disabled; set once in NewPool, consulted only by the goroutine
	// driving this worker.
	chs *chaos.Agent

	// buf holds size slots; live indices are [top, bottom), the owner
	// pushes/pops at bottom, thieves CAS top. The slice header and
	// mask are immutable after construction. A slot store must
	// dominate the bottom release that makes it visible (the Chase-Lev
	// publication ordering), enforced by the publication pass.
	// woolvet:published-by bottom
	buf  []atomic.Pointer[Task]
	mask int64

	_ [64]byte // pad: end of the immutable group

	// Chase-Lev deque indices. Unlike Wool's protocol words, both are
	// read by both sides on every operation (the owner reads top in
	// push/popBottom, thieves read bottom in trySteal), so they share
	// one line by design: a probe costs a single line transfer.
	// woolvet:cacheline group=deque maxspan=64
	// woolvet:atomic
	top atomic.Int64
	// woolvet:atomic
	bottom atomic.Int64

	_ [64]byte // pad: end of the deque-index group

	// shadow tracks this worker's own outstanding spawns so a join
	// knows which task it is waiting for (TBB tracks this through
	// parent/ref-count links; an explicit stack is the same
	// information).
	// woolvet:cacheline group=owner
	// woolvet:owner
	shadow []*Task

	// woolvet:owner
	free *Task // free list of task structures, owner-only

	// pol is the victim-selection policy (internal/steal), replacing
	// the per-backend xorshift copy; probe is the read-only stealable
	// probe handed to it, built once in NewPool. Both owner-private.
	// woolvet:owner
	pol steal.Policy
	// woolvet:owner
	probe func(int) bool

	// stats holds owner-path counters; the thief-path counters are
	// atomics because idle workers keep attempting steals with no
	// happens-before edge to a Stats() reader.
	// woolvet:owner
	stats Stats

	_ [64]byte // pad: end of the owner-private group

	// woolvet:cacheline group=counters
	// woolvet:atomic
	stealAttempts atomic.Int64
	// woolvet:atomic
	steals atomic.Int64
}

// Index returns the worker index.
func (w *Worker) Index() int { return w.idx }

// Options configures a Pool.
type Options struct {
	// Workers is the worker count; default GOMAXPROCS.
	Workers int
	// DequeSize is the per-worker deque capacity (rounded up to a
	// power of two); default 8192.
	DequeSize int
	// Wait selects the blocked-join policy; default WaitSteal.
	Wait WaitPolicy
	// MaxIdleSleep caps idle back-off sleeping; default 200µs.
	MaxIdleSleep time.Duration
	// Trace attaches a wooltrace tracer; this backend records STEAL
	// (victim, deque top index) and PARK (idle sleep-phase entry)
	// events. nil disables tracing at zero cost (plain nil check).
	Trace *trace.Tracer
	// Chaos attaches a woolchaos fault injector perturbing the deque
	// protocol (PointDequePop, PointThiefCAS, PointLeapfrogPick,
	// PointParkDecision). nil disables injection at zero cost.
	Chaos *chaos.Injector
	// StrictOverflow restores the pre-degradation behaviour: a spawn
	// that finds the deque full panics instead of executing the child
	// inline and counting it in Stats.OverflowInlined.
	StrictOverflow bool
	// Steal selects the victim policy and the steal amount
	// (internal/steal). The zero value is the historical behaviour:
	// uniform random victims, one task per steal. Amount "half" makes
	// a successful thief drain up to half of the victim's visible
	// tasks in a burst of top-CAS claims (Hendler & Shavit) and run
	// them oldest-first.
	Steal steal.Config
}

func (o Options) defaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.DequeSize <= 0 {
		o.DequeSize = 8192
	}
	n := 1
	for n < o.DequeSize {
		n <<= 1
	}
	o.DequeSize = n
	if o.MaxIdleSleep == 0 {
		o.MaxIdleSleep = 200 * time.Microsecond
	}
	o.Steal = o.Steal.Defaults()
	return o
}

// Pool is a deque-scheduler instance.
type Pool struct {
	opts      Options
	workers   []*Worker
	stealHalf bool // Options.Steal.Amount == "half": batch extraction on
	shutdown  atomic.Bool
	running   atomic.Bool
	wg        sync.WaitGroup

	// Abort state: the first panic from a stolen task (or the root)
	// poisons the pool; Run re-raises it and later Runs fail fast.
	// Same semantics as core (DESIGN.md §11).
	panicOnce sync.Once
	panicVal  any
	panicked  atomic.Bool
}

// NewPool creates the pool; worker 0 is driven by Run's caller.
//
//woolvet:allow ownerprivate -- construction: workers are unshared until the goroutines start
func NewPool(opts Options) *Pool {
	opts = opts.defaults()
	if opts.Workers > math.MaxInt32-1 {
		panic(fmt.Sprintf("chaselev: Options.Workers = %d exceeds the int32 stolenBy encoding (thief index + 1)", opts.Workers))
	}
	if opts.Trace != nil && opts.Trace.Workers() < opts.Workers {
		panic(fmt.Sprintf("chaselev: Options.Trace has %d rings for %d workers", opts.Trace.Workers(), opts.Workers))
	}
	if opts.Chaos != nil && opts.Chaos.Workers() < opts.Workers {
		panic(fmt.Sprintf("chaselev: Options.Chaos has %d agents for %d workers", opts.Chaos.Workers(), opts.Workers))
	}
	p := &Pool{opts: opts, stealHalf: opts.Steal.Amount == steal.AmountHalf}
	p.workers = make([]*Worker, opts.Workers)
	for i := range p.workers {
		w := &Worker{
			pool: p,
			idx:  i,
			buf:  make([]atomic.Pointer[Task], opts.DequeSize),
			mask: int64(opts.DequeSize - 1),
			pol:  steal.New(opts.Steal, i, opts.Workers),
		}
		w.probe = func(v int) bool {
			vw := p.workers[v]
			return vw.top.Load() < vw.bottom.Load()
		}
		if opts.Trace != nil {
			w.trc = opts.Trace.Ring(i)
		}
		if opts.Chaos != nil {
			w.chs = opts.Chaos.Agent(i)
		}
		p.workers[i] = w
	}
	p.wg.Add(opts.Workers - 1)
	for _, w := range p.workers[1:] {
		go w.idleLoop()
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return len(p.workers) }

// Run executes root on worker 0 and returns its result.
//
// Abort semantics match core (DESIGN.md §11): a panic in a stolen task
// is recovered by the thief (so the done flag still publishes and the
// joining owner unblocks), recorded, and re-raised here; a panic in
// root itself poisons the pool on the way out. A poisoned pool rejects
// later Run calls with a distinct message; Close stays safe.
//
//woolvet:allow ownerprivate -- the calling goroutine IS worker 0's owner for the duration of Run
func (p *Pool) Run(root func(*Worker) int64) int64 {
	if p.shutdown.Load() {
		panic("chaselev: Run on closed Pool")
	}
	if p.panicked.Load() {
		panic(fmt.Sprintf("chaselev: pool poisoned by earlier task panic: %v", p.panicVal))
	}
	if !p.running.CompareAndSwap(false, true) {
		panic(poolerr.ConcurrentRun("chaselev"))
	}
	defer p.running.Store(false)
	defer func() {
		if r := recover(); r != nil {
			p.recordPanic(r)
			panic(r)
		}
	}()
	w := p.workers[0]
	res := root(w)
	if len(w.shadow) != 0 {
		panic("chaselev: root returned with unjoined tasks")
	}
	if p.panicked.Load() {
		panic(p.panicVal)
	}
	return res
}

// recordPanic stores the first task panic, poisoning the pool.
func (p *Pool) recordPanic(r any) {
	p.panicOnce.Do(func() {
		p.panicVal = r
		p.panicked.Store(true)
	})
}

// Close stops the workers.
func (p *Pool) Close() {
	if p.shutdown.Swap(true) {
		return
	}
	p.wg.Wait()
}

// Stats aggregates worker counters (quiescent pools only).
//
//woolvet:allow ownerprivate -- quiescent-pool accessor by contract
func (p *Pool) Stats() Stats {
	var s Stats
	for _, w := range p.workers {
		ws := w.stats
		ws.StealAttempts = w.stealAttempts.Load()
		ws.Steals = w.steals.Load()
		s.add(&ws)
	}
	return s
}

// ResetStats zeroes the counters.
//
//woolvet:allow ownerprivate -- quiescent-pool mutator by contract
func (p *Pool) ResetStats() {
	for _, w := range p.workers {
		w.stats = Stats{}
		w.stealAttempts.Store(0)
		w.steals.Store(0)
	}
}

// alloc takes a task structure from the free list (or the heap). The
// returned descriptor is private to the caller until push publishes
// it — an acquire of the deque word, which also re-privatizes a
// recycled free-list task for the publication pass.
//
// woolvet:acquire deque
func (w *Worker) alloc() *Task {
	t := w.free
	if t == nil {
		w.stats.Allocs++
		return new(Task)
	}
	w.free = t.next
	t.next = nil
	return t
}

// release returns a joined task to the free list. Owner-only: tasks
// are always freed by the worker that spawned them, after the join, so
// the list needs no synchronization (TBB's scheme).
func (w *Worker) release(t *Task) {
	t.ctx = nil
	t.fn = nil
	t.inlined = false
	t.next = w.free
	w.free = t
}

// push adds t at the bottom of the deque (owner only). Returns false
// when the deque is full and the caller must degrade the spawn to
// inline execution (elide); under StrictOverflow a full deque panics
// instead.
//
// The buf-slot store is what makes t visible to thieves: every write
// to t's published fields must already have happened — push is the
// release of the deque word.
//
// woolvet:release deque
func (w *Worker) push(t *Task) bool {
	b := w.bottom.Load()
	tp := w.top.Load()
	if b-tp >= int64(len(w.buf))-1 {
		if w.pool.opts.StrictOverflow {
			panic(overflow.PanicMessage("chaselev", w.idx, len(w.buf)))
		}
		return false
	}
	w.buf[b&w.mask].Store(t)
	w.bottom.Store(b + 1)
	w.shadow = append(w.shadow, t)
	w.stats.Spawns++
	return true
}

// elide runs an overflowing spawn inline (serial elision): the wrapper
// fills t.res now, and the task goes on the shadow stack marked inlined
// so the matching join reads the result without touching the deque.
// Spawns and the join counters deliberately exclude elided tasks.
func (w *Worker) elide(t *Task) {
	t.inlined = true
	fn := t.fn
	fn(w, t)
	w.shadow = append(w.shadow, t)
	w.stats.OverflowInlined++
}

// popBottom is the owner's take from its own deque (Chase-Lev).
func (w *Worker) popBottom() *Task {
	b := w.bottom.Load() - 1
	w.bottom.Store(b)
	if w.chs != nil {
		// Widen the window between publishing the lowered bottom and
		// reading top, where a thief can race for the last element.
		// Delay/yield only: the pop itself must always complete.
		w.chs.Point(chaos.PointDequePop)
	}
	t := w.top.Load()
	if t > b {
		// Empty; restore canonical state.
		w.bottom.Store(t)
		return nil
	}
	task := w.buf[b&w.mask].Load()
	if t == b {
		// Last element: race with thieves through top.
		if !w.top.CompareAndSwap(t, t+1) {
			task = nil // a thief won
			w.stats.Backoffs++
		}
		w.bottom.Store(t + 1)
	}
	return task
}

// trySteal attempts to steal the oldest task from victim and run it.
//
// woolvet:thief
func (w *Worker) trySteal(victim *Worker, countWait bool) bool {
	if victim == w {
		return false
	}
	w.stealAttempts.Add(1)
	t := victim.top.Load()
	b := victim.bottom.Load()
	if t >= b {
		return false
	}
	task := victim.buf[t&victim.mask].Load()
	if task == nil {
		return false
	}
	if w.chs != nil && w.chs.Point(chaos.PointThiefCAS) {
		// Fail-one-attempt is safe pre-CAS: nothing is claimed yet.
		return false
	}
	if !victim.top.CompareAndSwap(t, t+1) {
		return false
	}
	task.stolenBy.Store(int32(w.idx) + 1)
	w.steals.Add(1)
	if countWait {
		w.stats.WaitSteals++
	}
	if w.trc != nil {
		w.trc.Record(trace.KindSteal, int64(victim.idx), t)
	}
	if w.pool.stealHalf {
		// The whole half leaves the victim's deque in one burst before
		// anything runs; tasks then execute oldest-first (batch[i]
		// were claimed after task, so task runs first). The burst must
		// be a local: a stolen task's blocked join re-enters trySteal
		// on this worker mid-drain.
		var batch [stealBatchMax]*Task
		n := w.stealBatch(victim, b-t, countWait, &batch)
		w.runStolen(task)
		task.done.Store(true)
		for i := 0; i < n; i++ {
			w.runStolen(batch[i])
			batch[i].done.Store(true)
		}
		return true
	}
	w.runStolen(task)
	task.done.Store(true)
	return true
}

// stealBatchMax caps a steal-half burst: enough to drain a deep victim
// in a few steals without one thief convoying a huge backlog behind a
// single running task.
const stealBatchMax = 15

// stealBatch extends a successful steal to Hendler & Shavit's
// steal-half: after the first claim, keep CAS-claiming the victim's
// oldest task until we hold half of what was visible at the first
// probe (avail), someone else interferes, or the burst cap is hit.
// Claimed tasks are stamped stolenBy immediately — a blocked joiner
// leapfrogs to this thief and helps with our own deque while its task
// waits its turn (the same convoy semantics as locksched's StealHalf).
//
// woolvet:thief
func (w *Worker) stealBatch(victim *Worker, avail int64, countWait bool, out *[stealBatchMax]*Task) int {
	want := (avail+1)/2 - 1 // beyond the task already claimed
	n := 0
	for int64(n) < want && n < len(out) {
		t := victim.top.Load()
		b := victim.bottom.Load()
		if t >= b {
			break
		}
		task := victim.buf[t&victim.mask].Load()
		if task == nil {
			break
		}
		if !victim.top.CompareAndSwap(t, t+1) {
			break
		}
		task.stolenBy.Store(int32(w.idx) + 1)
		w.steals.Add(1)
		if countWait {
			w.stats.WaitSteals++
		}
		if w.trc != nil {
			w.trc.Record(trace.KindSteal, int64(victim.idx), t)
		}
		out[n] = task
		n++
	}
	return n
}

// runStolen executes a stolen task, converting a panic in user code
// into a pool-wide abort: recovering here lets trySteal still publish
// the done flag, so the joining owner unblocks instead of spinning on
// a task that would never complete (the panic-deadlock bug), and Run
// re-raises the recorded panic.
func (w *Worker) runStolen(task *Task) {
	defer func() {
		if r := recover(); r != nil {
			w.pool.recordPanic(r)
		}
	}()
	fn := task.fn
	fn(w, task)
}

// joinAcquire resolves the youngest outstanding spawn of w: inline it
// if it is still in the deque, otherwise wait out the thief under the
// configured policy. Returns (task, inline). Either way the returned
// task is exclusively the caller's again — popBottom won the bottom
// race or the done spin observed the thief's release — so this is the
// acquire of both the deque word and the done flag.
//
// woolvet:acquire deque
// woolvet:acquire done
func (w *Worker) joinAcquire() (*Task, bool) {
	if len(w.shadow) == 0 {
		panic("chaselev: join without matching spawn")
	}
	expected := w.shadow[len(w.shadow)-1]
	w.shadow = w.shadow[:len(w.shadow)-1]

	if expected.inlined {
		// Overflow-elided spawn: it never entered the deque and its
		// result is already in res. Not an inline join for accounting —
		// the spawn was not counted either.
		return expected, false
	}

	if task := w.popBottom(); task != nil {
		if task != expected {
			panic("chaselev: deque order violated LIFO nesting")
		}
		w.stats.JoinsInlined++
		return expected, true
	}

	// Stolen. Wait per policy.
	w.stats.JoinsStolen++
	fails := 0
	for !expected.done.Load() {
		progressed := false
		switch w.pool.opts.Wait {
		case WaitSteal:
			if w.chs == nil || !w.chs.Point(chaos.PointLeapfrogPick) {
				v := w.pol.Choose(w.probe)
				progressed = w.trySteal(w.pool.workers[v], true)
				w.pol.Observe(v, progressed)
			}
		case WaitLeapfrog:
			if thief := expected.stolenBy.Load(); thief != 0 {
				if w.chs == nil || !w.chs.Point(chaos.PointLeapfrogPick) {
					progressed = w.trySteal(w.pool.workers[thief-1], true)
				}
			}
		case WaitSpin:
			// just wait
		}
		if progressed {
			fails = 0
		} else {
			fails++
			if fails&0x3f == 0 || runtime.GOMAXPROCS(0) == 1 {
				runtime.Gosched()
			}
		}
	}
	return expected, false
}

// idleLoop steals until shutdown — or until the pool is poisoned by a
// task panic, after which the abandoned tree's tasks must not keep
// executing in the background (a claimed task always finishes; the
// exit only happens between attempts).
//
// woolvet:thief
func (w *Worker) idleLoop() {
	fails := 0
	for !w.pool.shutdown.Load() && !w.pool.panicked.Load() {
		v := w.pol.Choose(w.probe)
		if w.trySteal(w.pool.workers[v], false) {
			w.pol.Observe(v, true)
			fails = 0
			continue
		}
		w.pol.Observe(v, false)
		fails++
		switch {
		case fails < 64:
			if runtime.GOMAXPROCS(0) == 1 {
				runtime.Gosched()
			}
		case fails < 1024 || w.pool.opts.MaxIdleSleep <= 0:
			runtime.Gosched()
		default:
			if w.chs != nil {
				// This backend has no park/unpark protocol to force, so
				// the sleep-phase decision only gets delay/yield faults.
				w.chs.Point(chaos.PointParkDecision)
			}
			if fails == 1024 && w.trc != nil {
				// This backend has no parking engine; entering the
				// sleep phase is its closest PARK analogue.
				w.trc.Record(trace.KindPark, 0, 0)
			}
			d := time.Duration(fails-1023) * time.Microsecond
			if d > w.pool.opts.MaxIdleSleep {
				d = w.pool.opts.MaxIdleSleep
			}
			time.Sleep(d)
		}
	}
	w.pool.wg.Done()
}
