package core

import (
	"runtime"
	"testing"
	"time"
)

// parkTestOpts builds options that park quickly: a tiny MaxIdleSleep
// shrinks both the back-off ladder's sleeps and the derived parkAfter
// budget (parkAfterFactor * MaxIdleSleep).
func parkTestOpts(workers int) Options {
	return Options{Workers: workers, MaxIdleSleep: 50 * time.Microsecond}
}

// waitParked polls until at least n workers are parked or the deadline
// expires, returning the final count.
func waitParked(p *Pool, n int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		if got := p.ParkedWorkers(); got >= n || time.Now().After(deadline) {
			return got
		}
		time.Sleep(time.Millisecond)
	}
}

// TestParkingQuiescent: all thieves of an idle pool park, and a
// subsequent Run wakes them and still computes the right answer.
func TestParkingQuiescent(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(parkTestOpts(4))
	defer p.Close()
	fib := fibDef()

	// Warm up once so workers have been through the steal loop.
	if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 16) }); got != serialFib(16) {
		t.Fatalf("warmup: wrong result %d", got)
	}
	if got := waitParked(p, 3, 5*time.Second); got != 3 {
		t.Fatalf("only %d/3 workers parked after quiescence", got)
	}
	st := p.Stats()
	if st.Parks < 3 {
		t.Errorf("Parks = %d, want >= 3", st.Parks)
	}

	// The next Run's first public spawn must wake a parked worker.
	if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 18) }); got != serialFib(18) {
		t.Fatalf("post-park run: wrong result %d", got)
	}
	st = p.Stats()
	if st.Wakes == 0 {
		t.Errorf("Run against a fully parked pool recorded no wakes")
	}
	t.Logf("parks=%d wakes=%d", st.Parks, st.Wakes)
}

// TestParkingRepeatedCycles stresses the park/wake handshake across
// many quiesce→run transitions; a lost wake-up would deadlock a Run.
func TestParkingRepeatedCycles(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(parkTestOpts(4))
	defer p.Close()
	fib := fibDef()
	cycles := 15
	if testing.Short() {
		cycles = 4
	}
	for i := 0; i < cycles; i++ {
		if got := waitParked(p, 1, 5*time.Second); got < 1 {
			t.Fatalf("cycle %d: no worker parked", i)
		}
		if got := p.Run(func(w *Worker) int64 { return fib.Call(w, 15) }); got != serialFib(15) {
			t.Fatalf("cycle %d: wrong result %d", i, got)
		}
	}
	st := p.Stats()
	if st.Parks == 0 || st.Wakes == 0 {
		t.Errorf("cycles ran but parks=%d wakes=%d", st.Parks, st.Wakes)
	}
}

// TestParkingOff: with Parking off (explicitly, or implied by spin
// mode's negative MaxIdleSleep) no idle engine exists and no worker
// ever parks.
func TestParkingOff(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"explicit", Options{Workers: 2, Parking: ParkOff, MaxIdleSleep: 50 * time.Microsecond}},
		{"spin-mode", Options{Workers: 2, MaxIdleSleep: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPool(tc.opts)
			defer p.Close()
			if p.idle != nil {
				t.Fatalf("idle engine created with parking off")
			}
			time.Sleep(20 * time.Millisecond)
			if got := p.ParkedWorkers(); got != 0 {
				t.Errorf("ParkedWorkers = %d with parking off", got)
			}
			if st := p.Stats(); st.Parks != 0 || st.Wakes != 0 {
				t.Errorf("parks=%d wakes=%d with parking off", st.Parks, st.Wakes)
			}
		})
	}
}

// TestParkingSingleWorker: a one-worker pool has no thieves and must
// not allocate an idle engine.
func TestParkingSingleWorker(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	if p.idle != nil {
		t.Fatalf("idle engine created for a single-worker pool")
	}
}

// TestCloseWakesParked: Close must release parked workers (the test
// hangs on a lost shutdown wake).
func TestCloseWakesParked(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(parkTestOpts(4))
	if got := waitParked(p, 3, 5*time.Second); got < 1 {
		t.Fatalf("no worker parked before Close (got %d)", got)
	}
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return with workers parked")
	}
}
