GO ?= go

.PHONY: build test race bench ci all

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the scheduler core (thief/victim protocol, trip wire,
# park/wake handshake).
race:
	$(GO) test -race -count=1 ./internal/core/...

# Machine-readable fast-path/idle-engine numbers for the perf
# trajectory; commit the refreshed BENCH_core.json with perf PRs.
bench:
	$(GO) run ./cmd/woolbench -corejson BENCH_core.json

# What .github/workflows/ci.yml runs: build, vet, the tier-1 suite,
# and a short race pass over the scheduler protocols and the registry
# conformance suite.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race -count=1 -short ./internal/core/... ./internal/sched/... ./internal/workloads/
