package resilience

import (
	"testing"
	"time"
)

// TestRetrierAttemptBound: retries stop at MaxRetries regardless of
// budget.
func TestRetrierAttemptBound(t *testing.T) {
	r := NewRetrier(RetryConfig{MaxRetries: 2, BudgetCap: 100}, 1)
	if _, ok := r.Next(1); !ok {
		t.Fatal("first retry denied with a full budget")
	}
	if _, ok := r.Next(2); !ok {
		t.Fatal("second retry denied with a full budget")
	}
	if _, ok := r.Next(3); ok {
		t.Fatal("retry beyond MaxRetries allowed")
	}
}

// TestRetrierBudgetDrains: a failure storm drains the bucket, retries
// stop, and successes refill it.
func TestRetrierBudgetDrains(t *testing.T) {
	r := NewRetrier(RetryConfig{MaxRetries: 1, BudgetCap: 3, BudgetPerSuccess: 1}, 1)
	for i := 0; i < 3; i++ {
		if _, ok := r.Next(1); !ok {
			t.Fatalf("retry %d denied with %v tokens", i, r.Tokens())
		}
	}
	if _, ok := r.Next(1); ok {
		t.Fatal("retry allowed on a drained budget")
	}
	r.OnSuccess()
	if _, ok := r.Next(1); !ok {
		t.Fatal("retry denied after a success refilled the budget")
	}
	// Refill is capped at BudgetCap.
	for i := 0; i < 100; i++ {
		r.OnSuccess()
	}
	if got := r.Tokens(); got != 3 {
		t.Fatalf("tokens = %v, want capped at 3", got)
	}
}

// TestRetrierBackoffJitter: backoffs are positive, bounded by the
// exponential ceiling, grow with the attempt, and two seeds give
// different jitter (while one seed replays identically).
func TestRetrierBackoffJitter(t *testing.T) {
	cfg := RetryConfig{MaxRetries: 10, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, BudgetCap: 1000}
	a := NewRetrier(cfg, 42)
	for attempt := 1; attempt <= 10; attempt++ {
		d, ok := a.Next(attempt)
		if !ok {
			t.Fatalf("attempt %d denied", attempt)
		}
		ceil := cfg.BaseBackoff << uint(attempt-1)
		if ceil > cfg.MaxBackoff || ceil <= 0 {
			ceil = cfg.MaxBackoff
		}
		if d <= 0 || d > ceil {
			t.Fatalf("attempt %d backoff %v outside (0, %v]", attempt, d, ceil)
		}
	}
	// Same seed → same sequence; different seed → different sequence.
	b1 := NewRetrier(cfg, 7)
	b2 := NewRetrier(cfg, 7)
	c := NewRetrier(cfg, 8)
	same, diff := true, false
	for i := 0; i < 8; i++ {
		d1, _ := b1.Next(1)
		d2, _ := b2.Next(1)
		d3, _ := c.Next(1)
		if d1 != d2 {
			same = false
		}
		if d1 != d3 {
			diff = true
		}
	}
	if !same {
		t.Fatal("identical seeds produced different backoff sequences")
	}
	if !diff {
		t.Fatal("distinct seeds produced identical backoff sequences")
	}
}

// TestEstimatorLearnsAndSheds: below MinSamples everything is
// meetable; once trusted, the EWMA tracks the sample stream and the
// unmeetable test fires exactly on the margin.
func TestEstimatorLearnsAndSheds(t *testing.T) {
	e := NewEstimator(EstimatorConfig{Alpha: 0.5, MinSamples: 3, Margin: 1.0})
	if e.Unmeetable("fib", time.Nanosecond) {
		t.Fatal("unknown class reported unmeetable")
	}
	e.Observe("fib", 10*time.Millisecond)
	e.Observe("fib", 10*time.Millisecond)
	if _, ok := e.Estimate("fib"); ok {
		t.Fatal("estimate trusted below MinSamples")
	}
	e.Observe("fib", 10*time.Millisecond)
	est, ok := e.Estimate("fib")
	if !ok || est != 10*time.Millisecond {
		t.Fatalf("estimate = %v ok=%v, want 10ms true", est, ok)
	}
	if !e.Unmeetable("fib", 5*time.Millisecond) {
		t.Fatal("5ms remaining vs 10ms estimate not unmeetable")
	}
	if e.Unmeetable("fib", 20*time.Millisecond) {
		t.Fatal("20ms remaining vs 10ms estimate reported unmeetable")
	}
	// Classes are independent.
	if e.Unmeetable("sort", time.Nanosecond) {
		t.Fatal("estimates leaked across classes")
	}
	// The EWMA follows a shift in the stream.
	for i := 0; i < 20; i++ {
		e.Observe("fib", 40*time.Millisecond)
	}
	est, _ = e.Estimate("fib")
	if est < 35*time.Millisecond {
		t.Fatalf("estimate after shift = %v, want near 40ms", est)
	}
}

// TestEstimatorMargin: Margin scales the shed point.
func TestEstimatorMargin(t *testing.T) {
	e := NewEstimator(EstimatorConfig{Alpha: 1, MinSamples: 1, Margin: 2.0})
	e.Observe("x", 10*time.Millisecond)
	if !e.Unmeetable("x", 15*time.Millisecond) {
		t.Fatal("15ms remaining vs 2×10ms margin not unmeetable")
	}
	if e.Unmeetable("x", 25*time.Millisecond) {
		t.Fatal("25ms remaining vs 2×10ms margin reported unmeetable")
	}
}

// TestConfigDefaults pins the Defaulted fills.
func TestConfigDefaults(t *testing.T) {
	b := BreakerConfig{}.Defaulted()
	if b.Window != 5*time.Second || b.Buckets != 8 || b.MinSamples != 20 ||
		b.FailureRate != 0.5 || b.Cooldown != time.Second || b.HalfOpenProbes != 3 {
		t.Fatalf("breaker defaults = %+v", b)
	}
	r := RetryConfig{}.Defaulted()
	if r.MaxRetries != 2 || r.BaseBackoff != time.Millisecond || r.MaxBackoff != 50*time.Millisecond ||
		r.BudgetCap != 10 || r.BudgetPerSuccess != 0.1 {
		t.Fatalf("retry defaults = %+v", r)
	}
	es := EstimatorConfig{}.Defaulted()
	if es.Alpha != 0.2 || es.MinSamples != 8 || es.Margin != 1.0 {
		t.Fatalf("estimator defaults = %+v", es)
	}
	q := QuarantineConfig{}.Defaulted()
	if q.FailureStreak != 8 || q.ProbeBackoff != 10*time.Millisecond {
		t.Fatalf("quarantine defaults = %+v", q)
	}
	// Negative FailureStreak (streak trigger disabled) is preserved.
	if (QuarantineConfig{FailureStreak: -1}).Defaulted().FailureStreak != -1 {
		t.Fatal("FailureStreak=-1 not preserved")
	}
}
