// Package locksched is the lock-based work-stealing scheduler ladder
// the paper evaluates against the direct task stack: the "Base"
// alternative of Table II and the base/peek/trylock steal strategies of
// Figure 4 (Sections IV-B and IV-C).
//
// Per the paper, each worker has a lock providing mutual exclusion
// between its thieves and itself: a worker takes its own lock for join
// (but not spawn) operations, and thieves take the victim's lock to
// steal. No state word is stored in the task descriptors; whether a
// join or steal succeeds is decided by comparing the top and bot
// indices. Because bot is protected by the lock, thieves never need to
// back off.
//
// The steal strategies differ in how a thief approaches the lock:
//
//   - StealBase: take the lock immediately after selecting a victim.
//   - StealPeek: first read the indices without the lock and only take
//     it when there appears to be a stealable task.
//   - StealTryLock: peek, then use TryLock and abort the attempt if the
//     lock is contended.
//
// Joins that find their task stolen leapfrog, exactly as the direct
// task stack does, so the ladder isolates the synchronization cost.
package locksched

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// StealStrategy selects how thieves interact with the victim's lock.
type StealStrategy int

// Steal strategies (Figure 4).
const (
	StealBase StealStrategy = iota
	StealPeek
	StealTryLock
)

// String returns the strategy name as used in the paper's Figure 4.
func (s StealStrategy) String() string {
	switch s {
	case StealBase:
		return "base"
	case StealPeek:
		return "peek"
	case StealTryLock:
		return "trylock"
	default:
		return fmt.Sprintf("StealStrategy(%d)", int(s))
	}
}

// TaskFunc runs a task from its descriptor.
type TaskFunc func(w *Worker, t *Task)

// Task is a descriptor in the lock-based pool. There is no state word;
// stolen/done bookkeeping lives in separate fields because, unlike the
// direct task stack, the indices alone cannot tell a joining owner when
// its thief has finished.
type Task struct {
	fn             TaskFunc
	a0, a1, a2, a3 int64
	ctx            any
	res            int64

	// stolenBy is the thief index + 1, written under the victim's
	// lock; 0 means not stolen.
	stolenBy int32
	// done is set by the thief when the stolen task completes — the
	// only lock-free communication in this scheduler.
	// woolvet:atomic
	done atomic.Bool
}

// Stats mirror core.Stats for the events this ladder has.
type Stats struct {
	Spawns        int64
	JoinsInlined  int64
	JoinsStolen   int64
	Steals        int64
	StealAttempts int64
	LockFailures  int64 // TryLock failures (trylock strategy only)
	LeapSteals    int64
}

func (s *Stats) add(o *Stats) {
	s.Spawns += o.Spawns
	s.JoinsInlined += o.JoinsInlined
	s.JoinsStolen += o.JoinsStolen
	s.Steals += o.Steals
	s.StealAttempts += o.StealAttempts
	s.LockFailures += o.LockFailures
	s.LeapSteals += o.LeapSteals
}

// Worker is one lock-based worker. The fields are split into
// pad-separated cache-line groups (enforced by the woolvet layoutguard
// pass) so the lock word and indices the thieves hammer never share a
// line with the owner's scheduling state or the thief-side counters.
type Worker struct {
	// woolvet:cacheline group=immutable
	pool  *Pool
	idx   int
	tasks []Task

	_ [64]byte // pad: end of the immutable group

	// lock protects the join/steal index comparison and bot updates.
	// It shares a line with the indices it guards by design: a steal's
	// lock-compare-update touches a single line.
	// woolvet:cacheline group=protocol maxspan=64
	lock sync.Mutex

	// top is written by the owner (spawn does not take the lock, as in
	// the paper) and read by thieves, hence atomic.
	// woolvet:atomic
	top atomic.Int64
	// bot is written only under lock; the peek strategies read it
	// without the lock, where staleness at worst wastes or skips one
	// lock acquisition.
	// woolvet:atomic
	bot atomic.Int64

	_ [64]byte // pad: end of the protocol group

	// woolvet:cacheline group=owner
	// woolvet:owner
	rng uint64

	// stats holds owner-path counters; the thief-path counters are
	// atomics because idle workers keep attempting steals with no
	// happens-before edge to a Stats() reader.
	// woolvet:owner
	stats Stats

	_ [64]byte // pad: end of the owner-private group

	// woolvet:cacheline group=counters
	// woolvet:atomic
	stealAttempts atomic.Int64
	// woolvet:atomic
	steals atomic.Int64
	// woolvet:atomic
	lockFailures atomic.Int64
}

// Index returns the worker's index.
func (w *Worker) Index() int { return w.idx }

// Depth returns the number of live tasks (owner only, approximate when
// thieves are active).
func (w *Worker) Depth() int { return int(w.top.Load() - w.bot.Load()) }

// Options configures a Pool.
type Options struct {
	// Workers is the worker count; default GOMAXPROCS.
	Workers int
	// StackSize is the per-worker pool capacity; default 8192.
	StackSize int
	// Strategy is the thief locking strategy; default StealBase.
	Strategy StealStrategy
	// StealHalf makes a successful steal take up to half of the
	// victim's queued tasks in one locked critical section instead of
	// one (Hendler & Shavit's steal-half, the paper's reference [14]):
	// fewer lock acquisitions per unit of migrated work, at the price
	// of claimed-but-unstarted tasks convoying behind the first.
	StealHalf bool
	// MaxIdleSleep caps idle back-off sleeping; default 200µs.
	MaxIdleSleep time.Duration
}

func (o Options) defaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.StackSize <= 0 {
		o.StackSize = 8192
	}
	if o.MaxIdleSleep == 0 {
		o.MaxIdleSleep = 200 * time.Microsecond
	}
	return o
}

// Pool is a lock-based scheduler instance.
type Pool struct {
	opts     Options
	workers  []*Worker
	shutdown atomic.Bool
	running  atomic.Bool
	wg       sync.WaitGroup
}

// NewPool creates the pool; worker 0 is driven by Run's caller.
//
//woolvet:allow ownerprivate -- construction: workers are unshared until the goroutines start
func NewPool(opts Options) *Pool {
	opts = opts.defaults()
	if opts.Workers > math.MaxInt32-1 {
		panic(fmt.Sprintf("locksched: Options.Workers = %d exceeds the int32 stolenBy encoding (thief index + 1)", opts.Workers))
	}
	p := &Pool{opts: opts}
	p.workers = make([]*Worker, opts.Workers)
	for i := range p.workers {
		p.workers[i] = &Worker{
			pool:  p,
			idx:   i,
			tasks: make([]Task, opts.StackSize),
			rng:   uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		}
	}
	p.wg.Add(opts.Workers - 1)
	for _, w := range p.workers[1:] {
		go w.idleLoop()
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return len(p.workers) }

// Run executes root on worker 0 and returns its result.
func (p *Pool) Run(root func(*Worker) int64) int64 {
	if p.shutdown.Load() {
		panic("locksched: Run on closed Pool")
	}
	if !p.running.CompareAndSwap(false, true) {
		panic("locksched: concurrent Run calls")
	}
	defer p.running.Store(false)
	w := p.workers[0]
	res := root(w)
	if w.top.Load() != w.bot.Load() {
		panic("locksched: root returned with unjoined tasks")
	}
	return res
}

// Close stops the workers.
func (p *Pool) Close() {
	if p.shutdown.Swap(true) {
		return
	}
	p.wg.Wait()
}

// Stats aggregates worker counters (quiescent pools only).
//
//woolvet:allow ownerprivate -- quiescent-pool accessor by contract
func (p *Pool) Stats() Stats {
	var s Stats
	for _, w := range p.workers {
		ws := w.stats
		ws.StealAttempts = w.stealAttempts.Load()
		ws.Steals = w.steals.Load()
		ws.LockFailures = w.lockFailures.Load()
		s.add(&ws)
	}
	return s
}

// ResetStats zeroes the counters.
//
//woolvet:allow ownerprivate -- quiescent-pool mutator by contract
func (p *Pool) ResetStats() {
	for _, w := range p.workers {
		w.stats = Stats{}
		w.stealAttempts.Store(0)
		w.steals.Store(0)
		w.lockFailures.Store(0)
	}
}

// push readies the next descriptor for a spawn.
func (w *Worker) push() *Task {
	top := w.top.Load()
	if top == int64(len(w.tasks)) {
		panic(fmt.Sprintf("locksched: task stack overflow on worker %d (capacity %d)", w.idx, len(w.tasks)))
	}
	return &w.tasks[top]
}

// spawn publishes the descriptor: the atomic bump of top is the release
// making the task visible to thieves. No lock, per the paper.
func (w *Worker) spawn(t *Task) {
	t.stolenBy = 0
	t.done.Store(false)
	w.top.Add(1)
	w.stats.Spawns++
}

// joinAcquire pops the youngest task. The owner takes its own lock and
// compares indices: if bot stayed at or below the popped slot the task
// is still present and is inlined; otherwise it was stolen and the
// owner leapfrogs off the recorded thief until done.
func (w *Worker) joinAcquire() (*Task, bool) {
	w.lock.Lock()
	top := w.top.Load() - 1
	t := &w.tasks[top]
	if w.bot.Load() <= top {
		w.top.Store(top)
		w.lock.Unlock()
		w.stats.JoinsInlined++
		return t, true
	}
	// Stolen: bot passed the slot (it is top+1). Leave top alone until
	// the thief is done — it is still writing into this descriptor,
	// and work acquired by leapfrogging spawns at top, which would
	// recycle the slot under the thief. With bot == top the slot is
	// not stealable meanwhile.
	thief := int(t.stolenBy) - 1
	w.lock.Unlock()
	w.stats.JoinsStolen++

	victim := w.pool.workers[thief]
	fails := 0
	for !t.done.Load() {
		if w.trySteal(victim) {
			w.stats.LeapSteals++
			fails = 0
		} else {
			fails++
			if fails&0x3f == 0 || runtime.GOMAXPROCS(0) == 1 {
				runtime.Gosched()
			}
		}
	}
	// Retire the slot: pull top and bot back over the joined descriptor.
	w.lock.Lock()
	w.top.Store(top)
	w.bot.Store(top)
	w.lock.Unlock()
	return t, false
}

// trySteal attempts one steal from victim under the configured
// strategy, running the stolen task to completion on w.
//
// woolvet:thief
func (w *Worker) trySteal(victim *Worker) bool {
	if victim == w {
		return false
	}
	w.stealAttempts.Add(1)
	strat := w.pool.opts.Strategy

	if strat != StealBase {
		// Peek: look at the indices without the lock first.
		if victim.bot.Load() >= victim.top.Load() {
			return false
		}
	}
	if strat == StealTryLock {
		if !victim.lock.TryLock() {
			w.lockFailures.Add(1)
			return false
		}
	} else {
		victim.lock.Lock()
	}
	// Re-check under mutual exclusion.
	bot := victim.bot.Load()
	top := victim.top.Load()
	if bot >= top {
		victim.lock.Unlock()
		return false
	}
	take := int64(1)
	if w.pool.opts.StealHalf {
		if avail := top - bot; avail > 1 {
			take = (avail + 1) / 2
		}
	}
	for i := int64(0); i < take; i++ {
		victim.tasks[bot+i].stolenBy = int32(w.idx) + 1
	}
	victim.bot.Store(bot + take)
	victim.lock.Unlock()

	w.steals.Add(1)
	// Run the claimed tasks oldest-first (the order thieves would have
	// taken them individually).
	for i := int64(0); i < take; i++ {
		t := &victim.tasks[bot+i]
		fn := t.fn
		fn(w, t)
		t.done.Store(true)
	}
	return true
}

// nextVictim picks a random victim index != w.idx.
func (w *Worker) nextVictim() int {
	if len(w.pool.workers) == 1 {
		return w.idx
	}
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	n := len(w.pool.workers) - 1
	v := int(x % uint64(n))
	if v >= w.idx {
		v++
	}
	return v
}

// woolvet:thief
func (w *Worker) idleLoop() {
	fails := 0
	for !w.pool.shutdown.Load() {
		if w.trySteal(w.pool.workers[w.nextVictim()]) {
			fails = 0
			continue
		}
		fails++
		switch {
		case fails < 64:
			if runtime.GOMAXPROCS(0) == 1 {
				runtime.Gosched()
			}
		case fails < 1024 || w.pool.opts.MaxIdleSleep <= 0:
			runtime.Gosched()
		default:
			d := time.Duration(fails-1023) * time.Microsecond
			if d > w.pool.opts.MaxIdleSleep {
				d = w.pool.opts.MaxIdleSleep
			}
			time.Sleep(d)
		}
	}
	w.pool.wg.Done()
}
