package sched

// Stats is the normalized counter set. Each backend maps its native
// counters onto these fields (the paper's notation in parentheses);
// counters with no cross-scheduler meaning go to Extra under stable
// snake_case keys, so registry-driven tools can print everything a
// backend knows without hard-coding its Stats struct.
//
// The normalization fixes the naming drift the backends grew
// independently (JoinsInlinedPublic/Private vs JoinsInlined, Backoffs
// vs LockFailures vs an uncounted CAS loss):
//
//   - core: Backoffs are steals aborted by the bot re-check;
//     JoinsInlined sums the public and private inline joins (the split
//     is in Extra).
//   - chaselev: Backoffs are owner pops that lost the last-element CAS
//     race to a thief — previously dropped on the floor, now counted.
//   - locksched: Backoffs are TryLock failures.
//   - cilkstyle: joins are not events (continuations resume instead);
//     suspends/resumes are in Extra.
//   - ompstyle: a central pool has no steals; its queue traffic is in
//     Extra.
//   - gonative: the Go runtime exposes no counters (Caps.Stats false).
type Stats struct {
	// Spawns counts tasks created (N_T).
	Spawns int64
	// JoinsInlined counts joins that inlined their task.
	JoinsInlined int64
	// JoinsStolen counts joins that found their task stolen.
	JoinsStolen int64
	// Steals counts successful steals (N_M).
	Steals int64
	// StealAttempts counts steal attempts, successful or not.
	StealAttempts int64
	// Backoffs counts aborted thief/victim synchronization attempts:
	// the bot re-check (core), a lost last-element CAS (chaselev), a
	// failed TryLock (locksched).
	Backoffs int64
	// Extra holds backend-specific counters under stable keys.
	Extra map[string]int64
}

// Joins returns the total joins (inlined + stolen).
func (s Stats) Joins() int64 { return s.JoinsInlined + s.JoinsStolen }

// ExtraKeys returns the Extra keys in sorted order (stable printing).
func (s Stats) ExtraKeys() []string {
	keys := make([]string, 0, len(s.Extra))
	for k := range s.Extra {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
