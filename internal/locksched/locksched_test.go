package locksched

import (
	"runtime"
	"testing"
	"testing/quick"
)

func serialFib(n int64) int64 {
	if n < 2 {
		return n
	}
	return serialFib(n-1) + serialFib(n-2)
}

func fibDef() *TaskDef1 {
	var fib *TaskDef1
	fib = Define1("fib", func(w *Worker, n int64) int64 {
		if n < 2 {
			return n
		}
		fib.Spawn(w, n-2)
		a := fib.Call(w, n-1)
		b := fib.Join(w)
		return a + b
	})
	return fib
}

func TestFibAllStrategies(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, strat := range []StealStrategy{StealBase, StealPeek, StealTryLock} {
		for _, workers := range []int{1, 2, 4} {
			p := NewPool(Options{Workers: workers, Strategy: strat})
			got := p.Run(func(w *Worker) int64 { return fibDef().Call(w, 20) })
			if want := serialFib(20); got != want {
				t.Errorf("%v workers=%d: got %d want %d", strat, workers, got, want)
			}
			p.Close()
		}
	}
}

func TestStrategyNames(t *testing.T) {
	names := map[StealStrategy]string{
		StealBase:    "base",
		StealPeek:    "peek",
		StealTryLock: "trylock",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(s), got, want)
		}
	}
	if got := StealStrategy(99).String(); got != "StealStrategy(99)" {
		t.Errorf("unknown strategy String = %q", got)
	}
}

func TestStatsConservation(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4, Strategy: StealPeek})
	defer p.Close()
	fib := fibDef()
	p.Run(func(w *Worker) int64 { return fib.Call(w, 21) })
	st := p.Stats()
	if st.Spawns != st.JoinsInlined+st.JoinsStolen {
		t.Errorf("spawns (%d) != joins (%d+%d)", st.Spawns, st.JoinsInlined, st.JoinsStolen)
	}
	if st.JoinsStolen != st.Steals {
		t.Errorf("stolen joins (%d) != steals (%d)", st.JoinsStolen, st.Steals)
	}
}

func TestContextTask(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	type arr struct{ v []int64 }
	var sum *TaskDefC2[arr]
	sum = DefineC2("sum", func(w *Worker, a *arr, lo, hi int64) int64 {
		if hi-lo <= 8 {
			var s int64
			for i := lo; i < hi; i++ {
				s += a.v[i]
			}
			return s
		}
		mid := (lo + hi) / 2
		sum.Spawn(w, a, lo, mid)
		r := sum.Call(w, a, mid, hi)
		l := sum.Join(w)
		return l + r
	})
	a := &arr{v: make([]int64, 500)}
	var want int64
	for i := range a.v {
		a.v[i] = int64(i)
		want += int64(i)
	}
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	if got := p.Run(func(w *Worker) int64 { return sum.Call(w, a, 0, 500) }); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestQuickEquivalence(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	fib := fibDef()
	err := quick.Check(func(nRaw, wRaw, sRaw uint8) bool {
		n := int64(nRaw % 16)
		workers := int(wRaw%4) + 1
		strat := StealStrategy(sRaw % 3)
		p := NewPool(Options{Workers: workers, Strategy: strat})
		defer p.Close()
		got := p.Run(func(w *Worker) int64 { return fib.Call(w, n) })
		return got == serialFib(n)
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestUnjoinedPanics(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unjoined tasks")
		}
	}()
	p.Run(func(w *Worker) int64 { noop.Spawn(w, 1); return 0 })
}

func BenchmarkSpawnJoinLocked(b *testing.B) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	b.ResetTimer()
	p.Run(func(w *Worker) int64 {
		for i := 0; i < b.N; i++ {
			noop.Spawn(w, 1)
			noop.Join(w)
		}
		return 0
	})
}

// TestWorkersBoundRejected: stolenBy packs thief index + 1 into an
// int32, so NewPool must reject worker counts past that encoding
// before allocating per-worker stacks.
func TestWorkersBoundRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool accepted Workers beyond the int32 stolenBy encoding")
		}
	}()
	NewPool(Options{Workers: 1 << 31})
}
