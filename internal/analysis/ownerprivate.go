package analysis

import (
	"go/ast"
	"go/types"
)

// OwnerPrivate enforces "// woolvet:owner": a tagged field (Worker.top,
// the pubShadow publicLimit shadow, the owner-path Stats, ...) is part
// of the state the paper's Section III-A ownership argument reserves to
// the goroutine driving the worker. Two rules:
//
//  1. Every access must go through the executing-worker identifier:
//     the enclosing method's receiver, or — the codebase's fixed
//     convention — a parameter named w. Reaching the field through any
//     other expression (victim.top, p.workers[i].stats) is flagged;
//     construction-time and quiescent-pool accessors carry a
//     function-level "//woolvet:allow ownerprivate -- <why>".
//
//  2. Methods that (transitively) touch owner state must not be
//     invoked on another worker from the thief side: within the call
//     graph rooted at "// woolvet:thief" functions (trySteal,
//     leapfrog, idleLoop), calling an owner-state method on anything
//     but the executing worker is flagged even though rule 1 inside
//     the callee would not fire.
var OwnerPrivate = &Analyzer{
	Name: "ownerprivate",
	Doc:  "woolvet:owner fields are touched only through the executing worker; steal paths never reach them",
	Run:  runOwnerPrivate,
}

func runOwnerPrivate(pass *Pass) {
	ownerField := func(sel *ast.SelectorExpr) (*types.Var, bool) {
		selection := pass.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return nil, false
		}
		obj, ok := selection.Obj().(*types.Var)
		if !ok {
			return nil, false
		}
		_, tagged := pass.Ann.FieldDirective(obj, "owner")
		return obj, tagged
	}

	// The package call graph, for rule 2: which functions touch owner
	// state (directly or transitively), and which are reachable from
	// the thief roots.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	callees := map[*types.Func][]*types.Func{}
	touches := map[*types.Func]bool{}
	for obj, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if _, tagged := ownerField(n); tagged {
					touches[obj] = true
				}
			case *ast.CallExpr:
				if callee := calleeFunc(pass.Info, n); callee != nil {
					if _, local := decls[callee]; local {
						callees[obj] = append(callees[obj], callee)
					}
				}
			}
			return true
		})
	}
	// Transitive closure: calling an owner-touching function touches.
	for changed := true; changed; {
		changed = false
		for obj := range decls {
			if touches[obj] {
				continue
			}
			for _, c := range callees[obj] {
				if touches[c] {
					touches[obj] = true
					changed = true
					break
				}
			}
		}
	}
	// Forward reachability from the thief roots.
	thiefReach := map[*types.Func]bool{}
	var mark func(obj *types.Func)
	mark = func(obj *types.Func) {
		if thiefReach[obj] {
			return
		}
		thiefReach[obj] = true
		for _, c := range callees[obj] {
			mark(c)
		}
	}
	for obj := range pass.Ann.ThiefRoots {
		if _, ok := decls[obj]; ok {
			mark(obj)
		}
	}

	// selfStack tracks, per enclosing function literal/declaration,
	// the objects that denote the executing worker (receiver, params
	// named w). A closure inherits its enclosing function's self set.
	var selfStack [][]types.Object
	selfHas := func(obj types.Object) bool {
		for _, frame := range selfStack {
			for _, s := range frame {
				if s == obj {
					return true
				}
			}
		}
		return false
	}

	walkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			selfStack = selfStack[:0]
			selfStack = append(selfStack, selfObjects(pass.Info, n.Recv, n.Type))
		case *ast.FuncLit:
			selfStack = append(selfStack, selfObjects(pass.Info, nil, n.Type))
			// Popping on exit is not observable through walkStack, so
			// approximate: literals are visited in source order and a
			// stale inner frame can only widen the self set with
			// identically-named w params of sibling literals, which
			// denote the executing worker anyway.
		case *ast.SelectorExpr:
			obj, tagged := ownerField(n)
			if !tagged {
				return true
			}
			if base, ok := n.X.(*ast.Ident); ok {
				if selfHas(pass.Info.Uses[base]) {
					return true
				}
			}
			pass.Report(n.Sel.Pos(),
				"owner-private field %s accessed through %s; woolvet:owner fields may only be reached through the executing worker (method receiver or the w parameter)",
				obj.Name(), exprString(n.X))
		case *ast.CallExpr:
			// Rule 2: owner-state methods on non-self workers in the
			// thief call graph.
			fd := enclosingFuncDecl(stack)
			if fd == nil {
				return true
			}
			encl, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if encl == nil || !thiefReach[encl] {
				return true
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, n)
			if callee == nil || !touches[callee] {
				return true
			}
			if base, ok := sel.X.(*ast.Ident); ok {
				if selfHas(pass.Info.Uses[base]) {
					return true
				}
			}
			pass.Report(n.Pos(),
				"%s touches owner-private state but is called on %s from the steal path (reachable from a woolvet:thief root); thieves may only interact with a victim through the atomic protocol words",
				callee.Name(), exprString(sel.X))
		}
		return true
	})
}

// selfObjects collects the executing-worker identifiers of a function:
// its receiver, plus parameters named w.
func selfObjects(info *types.Info, recv *ast.FieldList, ft *ast.FuncType) []types.Object {
	var out []types.Object
	add := func(fl *ast.FieldList, onlyW bool) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if onlyW && name.Name != "w" {
					continue
				}
				if obj := info.Defs[name]; obj != nil {
					out = append(out, obj)
				}
			}
		}
	}
	add(recv, false)
	add(ft.Params, true)
	return out
}

// calleeFunc resolves a call's static callee within the package, or
// nil for indirect calls and calls into other packages.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	default:
		return "<expr>"
	}
}
