//go:build !unix

package main

import "time"

// processCPUTime is unavailable off unix; idle-CPU metrics are skipped.
func processCPUTime() (time.Duration, bool) { return 0, false }
