// Package locksched is the lock-based work-stealing scheduler ladder
// the paper evaluates against the direct task stack: the "Base"
// alternative of Table II and the base/peek/trylock steal strategies of
// Figure 4 (Sections IV-B and IV-C).
//
// Per the paper, each worker has a lock providing mutual exclusion
// between its thieves and itself: a worker takes its own lock for join
// (but not spawn) operations, and thieves take the victim's lock to
// steal. No state word is stored in the task descriptors; whether a
// join or steal succeeds is decided by comparing the top and bot
// indices. Because bot is protected by the lock, thieves never need to
// back off.
//
// The steal strategies differ in how a thief approaches the lock:
//
//   - StealBase: take the lock immediately after selecting a victim.
//   - StealPeek: first read the indices without the lock and only take
//     it when there appears to be a stealable task.
//   - StealTryLock: peek, then use TryLock and abort the attempt if the
//     lock is contended.
//
// Joins that find their task stolen leapfrog, exactly as the direct
// task stack does, so the ladder isolates the synchronization cost.
package locksched

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gowool/internal/chaos"
	"gowool/internal/overflow"
	"gowool/internal/poolerr"
	"gowool/internal/steal"
	"gowool/internal/trace"
)

// StealStrategy selects how thieves interact with the victim's lock.
type StealStrategy int

// Steal strategies (Figure 4).
const (
	StealBase StealStrategy = iota
	StealPeek
	StealTryLock
)

// String returns the strategy name as used in the paper's Figure 4.
func (s StealStrategy) String() string {
	switch s {
	case StealBase:
		return "base"
	case StealPeek:
		return "peek"
	case StealTryLock:
		return "trylock"
	default:
		return fmt.Sprintf("StealStrategy(%d)", int(s))
	}
}

// TaskFunc runs a task from its descriptor.
type TaskFunc func(w *Worker, t *Task)

// Task is a descriptor in the lock-based pool. There is no state word;
// stolen/done bookkeeping lives in separate fields because, unlike the
// direct task stack, the indices alone cannot tell a joining owner when
// its thief has finished.
type Task struct {
	// The wrapper and arguments are published to thieves by the
	// owner's atomic bump of top in spawn — the abstract word "top"
	// here: writes must dominate the spawn call and reads need
	// push/joinAcquire in scope (publication pass, DESIGN.md §15).
	// woolvet:published-by top
	fn TaskFunc
	// woolvet:published-by top
	a0, a1, a2, a3 int64
	// woolvet:published-by top
	ctx any
	// res is written by the thief before its done release and read by
	// the owner only after it has observed done.
	// woolvet:published-by done
	res int64

	// stolenBy is the thief index + 1, written under the victim's
	// lock; 0 means not stolen.
	stolenBy int32
	// done is set by the thief when the stolen task completes — the
	// only lock-free communication in this scheduler.
	// woolvet:atomic
	done atomic.Bool
}

// Stats mirror core.Stats for the events this ladder has.
type Stats struct {
	Spawns        int64
	JoinsInlined  int64
	JoinsStolen   int64
	Steals        int64
	StealAttempts int64
	LockFailures  int64 // TryLock failures (trylock strategy only)
	LeapSteals    int64

	// OverflowInlined counts spawns that found the pool full and
	// degraded to inline serial execution (not counted in Spawns).
	OverflowInlined int64
}

func (s *Stats) add(o *Stats) {
	s.Spawns += o.Spawns
	s.JoinsInlined += o.JoinsInlined
	s.JoinsStolen += o.JoinsStolen
	s.Steals += o.Steals
	s.StealAttempts += o.StealAttempts
	s.LockFailures += o.LockFailures
	s.LeapSteals += o.LeapSteals
	s.OverflowInlined += o.OverflowInlined
}

// Worker is one lock-based worker. The fields are split into
// pad-separated cache-line groups (enforced by the woolvet layoutguard
// pass) so the lock word and indices the thieves hammer never share a
// line with the owner's scheduling state or the thief-side counters.
type Worker struct {
	// woolvet:cacheline group=immutable
	pool  *Pool
	idx   int
	tasks []Task

	// trc is this worker's wooltrace ring, or nil when tracing is
	// disabled; set once in NewPool, recorded into only by the
	// goroutine driving this worker.
	trc *trace.Ring

	// chs is this worker's chaos agent, or nil when fault injection is
	// disabled; set once in NewPool, consulted only by the goroutine
	// driving this worker.
	chs *chaos.Agent

	_ [64]byte // pad: end of the immutable group

	// lock protects the join/steal index comparison and bot updates.
	// It shares a line with the indices it guards by design: a steal's
	// lock-compare-update touches a single line.
	// woolvet:cacheline group=protocol maxspan=64
	lock sync.Mutex

	// top is written by the owner (spawn does not take the lock, as in
	// the paper) and read by thieves, hence atomic.
	// woolvet:atomic
	top atomic.Int64
	// bot is written only under lock; the peek strategies read it
	// without the lock, where staleness at worst wastes or skips one
	// lock acquisition.
	// woolvet:atomic
	bot atomic.Int64

	_ [64]byte // pad: end of the protocol group

	// pol is the victim-selection policy (internal/steal), replacing
	// the per-backend xorshift copy; probe is the read-only stealable
	// probe handed to it (a lock-free bot/top peek — staleness at worst
	// wastes one choice, like the peek strategies). Both owner-private.
	// woolvet:cacheline group=owner
	// woolvet:owner
	pol steal.Policy
	// woolvet:owner
	probe func(int) bool

	// ovf holds the results of overflow-inlined spawns, youngest last.
	// Invariant: non-empty only while top == capacity (entries are
	// created only when the pool is full, popping the stack first joins
	// these entries, and steals advance bot — never top), so joinAcquire
	// only needs a length check at its head.
	// woolvet:owner
	ovf []int64

	// ovfTask is the scratch descriptor an overflow-inlined join
	// returns; only res is meaningful on the non-inline join path.
	// woolvet:owner
	ovfTask Task

	// stats holds owner-path counters; the thief-path counters are
	// atomics because idle workers keep attempting steals with no
	// happens-before edge to a Stats() reader.
	// woolvet:owner
	stats Stats

	_ [64]byte // pad: end of the owner-private group

	// woolvet:cacheline group=counters
	// woolvet:atomic
	stealAttempts atomic.Int64
	// woolvet:atomic
	steals atomic.Int64
	// woolvet:atomic
	lockFailures atomic.Int64
}

// Index returns the worker's index.
func (w *Worker) Index() int { return w.idx }

// Depth returns the number of live tasks (owner only, approximate when
// thieves are active).
func (w *Worker) Depth() int { return int(w.top.Load() - w.bot.Load()) }

// Options configures a Pool.
type Options struct {
	// Workers is the worker count; default GOMAXPROCS.
	Workers int
	// StackSize is the per-worker pool capacity; default 8192.
	StackSize int
	// Strategy is the thief locking strategy; default StealBase.
	Strategy StealStrategy
	// StealHalf makes a successful steal take up to half of the
	// victim's queued tasks in one locked critical section instead of
	// one (Hendler & Shavit's steal-half, the paper's reference [14]):
	// fewer lock acquisitions per unit of migrated work, at the price
	// of claimed-but-unstarted tasks convoying behind the first.
	StealHalf bool
	// MaxIdleSleep caps idle back-off sleeping; default 200µs.
	MaxIdleSleep time.Duration
	// Trace attaches a wooltrace tracer; this backend records STEAL
	// (victim, stolen bot index) and PARK (idle sleep-phase entry)
	// events. nil disables tracing at zero cost (plain nil check).
	Trace *trace.Tracer
	// Chaos attaches a woolchaos fault injector perturbing the lock
	// protocol (PointLockAcquire, PointOwnerExchange,
	// PointLeapfrogPick, PointParkDecision). nil disables injection at
	// zero cost.
	Chaos *chaos.Injector
	// StrictOverflow restores the pre-degradation behaviour: a spawn
	// that finds the pool full panics instead of executing the child
	// inline and counting it in Stats.OverflowInlined.
	StrictOverflow bool
	// Steal selects the victim policy and steal amount
	// (internal/steal). The zero value is the historical behaviour:
	// uniform random victims, one task per steal. Amount "half" is the
	// same batch extraction as the legacy StealHalf flag — defaults
	// fold the two together (either switch enables both views).
	Steal steal.Config
}

func (o Options) defaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.StackSize <= 0 {
		o.StackSize = 8192
	}
	if o.MaxIdleSleep == 0 {
		o.MaxIdleSleep = 200 * time.Microsecond
	}
	if o.Steal.Amount == steal.AmountHalf {
		o.StealHalf = true
	} else if o.StealHalf && o.Steal.Amount == "" {
		o.Steal.Amount = steal.AmountHalf
	}
	o.Steal = o.Steal.Defaults()
	return o
}

// Pool is a lock-based scheduler instance.
type Pool struct {
	opts     Options
	workers  []*Worker
	shutdown atomic.Bool
	running  atomic.Bool
	wg       sync.WaitGroup

	// Abort state: the first panic from a stolen task (or the root)
	// poisons the pool; Run re-raises it and later Runs fail fast.
	// Same semantics as core (DESIGN.md §11).
	panicOnce sync.Once
	panicVal  any
	panicked  atomic.Bool
}

// NewPool creates the pool; worker 0 is driven by Run's caller.
//
//woolvet:allow ownerprivate -- construction: workers are unshared until the goroutines start
func NewPool(opts Options) *Pool {
	opts = opts.defaults()
	if opts.Workers > math.MaxInt32-1 {
		panic(fmt.Sprintf("locksched: Options.Workers = %d exceeds the int32 stolenBy encoding (thief index + 1)", opts.Workers))
	}
	if opts.Trace != nil && opts.Trace.Workers() < opts.Workers {
		panic(fmt.Sprintf("locksched: Options.Trace has %d rings for %d workers", opts.Trace.Workers(), opts.Workers))
	}
	if opts.Chaos != nil && opts.Chaos.Workers() < opts.Workers {
		panic(fmt.Sprintf("locksched: Options.Chaos has %d agents for %d workers", opts.Chaos.Workers(), opts.Workers))
	}
	p := &Pool{opts: opts}
	p.workers = make([]*Worker, opts.Workers)
	for i := range p.workers {
		w := &Worker{
			pool:  p,
			idx:   i,
			tasks: make([]Task, opts.StackSize),
			pol:   steal.New(opts.Steal, i, opts.Workers),
		}
		w.probe = func(v int) bool {
			vw := p.workers[v]
			return vw.bot.Load() < vw.top.Load()
		}
		if opts.Trace != nil {
			w.trc = opts.Trace.Ring(i)
		}
		if opts.Chaos != nil {
			w.chs = opts.Chaos.Agent(i)
		}
		p.workers[i] = w
	}
	p.wg.Add(opts.Workers - 1)
	for _, w := range p.workers[1:] {
		go w.idleLoop()
	}
	return p
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return len(p.workers) }

// Run executes root on worker 0 and returns its result.
//
// Abort semantics match core (DESIGN.md §11): a panic in a stolen task
// is recovered by the thief (so every claimed task's done flag still
// publishes and joining owners unblock), recorded, and re-raised here;
// a panic in root itself poisons the pool on the way out. A poisoned
// pool rejects later Run calls with a distinct message; Close stays
// safe.
//
//woolvet:allow ownerprivate -- the calling goroutine IS worker 0's owner for the duration of Run
func (p *Pool) Run(root func(*Worker) int64) int64 {
	if p.shutdown.Load() {
		panic("locksched: Run on closed Pool")
	}
	if p.panicked.Load() {
		panic(fmt.Sprintf("locksched: pool poisoned by earlier task panic: %v", p.panicVal))
	}
	if !p.running.CompareAndSwap(false, true) {
		panic(poolerr.ConcurrentRun("locksched"))
	}
	defer p.running.Store(false)
	defer func() {
		if r := recover(); r != nil {
			p.recordPanic(r)
			panic(r)
		}
	}()
	w := p.workers[0]
	res := root(w)
	if w.top.Load() != w.bot.Load() || len(w.ovf) != 0 {
		panic("locksched: root returned with unjoined tasks")
	}
	if p.panicked.Load() {
		panic(p.panicVal)
	}
	return res
}

// recordPanic stores the first task panic, poisoning the pool.
func (p *Pool) recordPanic(r any) {
	p.panicOnce.Do(func() {
		p.panicVal = r
		p.panicked.Store(true)
	})
}

// Close stops the workers.
func (p *Pool) Close() {
	if p.shutdown.Swap(true) {
		return
	}
	p.wg.Wait()
}

// Stats aggregates worker counters (quiescent pools only).
//
//woolvet:allow ownerprivate -- quiescent-pool accessor by contract
func (p *Pool) Stats() Stats {
	var s Stats
	for _, w := range p.workers {
		ws := w.stats
		ws.StealAttempts = w.stealAttempts.Load()
		ws.Steals = w.steals.Load()
		ws.LockFailures = w.lockFailures.Load()
		s.add(&ws)
	}
	return s
}

// ResetStats zeroes the counters.
//
//woolvet:allow ownerprivate -- quiescent-pool mutator by contract
func (p *Pool) ResetStats() {
	for _, w := range p.workers {
		w.stats = Stats{}
		w.stealAttempts.Store(0)
		w.steals.Store(0)
		w.lockFailures.Store(0)
	}
}

// push readies the next descriptor for a spawn. Returns nil when the
// pool is full and the caller must degrade the spawn to inline serial
// execution (noteOverflowInlined); under StrictOverflow a full pool
// panics instead. The returned slot is above top and therefore still
// private to the owner — the acquire of the abstract top word.
//
// woolvet:acquire top
func (w *Worker) push() *Task {
	top := w.top.Load()
	if top == int64(len(w.tasks)) {
		if w.pool.opts.StrictOverflow {
			panic(overflow.PanicMessage("locksched", w.idx, len(w.tasks)))
		}
		return nil
	}
	return &w.tasks[top]
}

// noteOverflowInlined records the result of an overflow-elided spawn;
// the matching join replays it LIFO via the head check in joinAcquire.
func (w *Worker) noteOverflowInlined(res int64) {
	w.ovf = append(w.ovf, res)
	w.stats.OverflowInlined++
}

// spawn publishes the descriptor: the atomic bump of top is the release
// making the task visible to thieves. No lock, per the paper. Every
// write to the descriptor's published fields must precede this call.
//
// woolvet:release top
func (w *Worker) spawn(t *Task) {
	t.stolenBy = 0
	t.done.Store(false)
	w.top.Add(1)
	w.stats.Spawns++
}

// joinAcquire pops the youngest task. The owner takes its own lock and
// compares indices: if bot stayed at or below the popped slot the task
// is still present and is inlined; otherwise it was stolen and the
// owner leapfrogs off the recorded thief until done. Either way the
// returned descriptor is exclusively the caller's again — the locked
// index exchange or the done spin — so this acquires both words.
//
// woolvet:acquire top
// woolvet:acquire done
func (w *Worker) joinAcquire() (*Task, bool) {
	if n := len(w.ovf); n != 0 {
		// Overflow-elided spawns replay LIFO before anything on the
		// stack (they are strictly younger — the pool was full when
		// they ran). Only res is read on the non-inline join path.
		w.ovfTask.res = w.ovf[n-1]
		w.ovf = w.ovf[:n-1]
		return &w.ovfTask, false
	}
	if w.chs != nil {
		// Delay/yield only: the owner's locked exchange must complete.
		w.chs.Point(chaos.PointOwnerExchange)
	}
	w.lock.Lock()
	top := w.top.Load() - 1
	t := &w.tasks[top]
	if w.bot.Load() <= top {
		w.top.Store(top)
		w.lock.Unlock()
		w.stats.JoinsInlined++
		return t, true
	}
	// Stolen: bot passed the slot (it is top+1). Leave top alone until
	// the thief is done — it is still writing into this descriptor,
	// and work acquired by leapfrogging spawns at top, which would
	// recycle the slot under the thief. With bot == top the slot is
	// not stealable meanwhile.
	thief := int(t.stolenBy) - 1
	w.lock.Unlock()
	w.stats.JoinsStolen++

	victim := w.pool.workers[thief]
	fails := 0
	for !t.done.Load() {
		if w.chs != nil && w.chs.Point(chaos.PointLeapfrogPick) {
			fails++
			if fails&0x3f == 0 {
				runtime.Gosched()
			}
			continue
		}
		if w.trySteal(victim) {
			w.stats.LeapSteals++
			fails = 0
		} else {
			fails++
			if fails&0x3f == 0 || runtime.GOMAXPROCS(0) == 1 {
				runtime.Gosched()
			}
		}
	}
	// Retire the slot: pull top and bot back over the joined descriptor.
	w.lock.Lock()
	w.top.Store(top)
	w.bot.Store(top)
	w.lock.Unlock()
	return t, false
}

// trySteal attempts one steal from victim under the configured
// strategy, running the stolen task to completion on w.
//
// woolvet:thief
func (w *Worker) trySteal(victim *Worker) bool {
	if victim == w {
		return false
	}
	w.stealAttempts.Add(1)
	if w.chs != nil && w.chs.Point(chaos.PointLockAcquire) {
		// Fail-one-attempt is safe before the lock: nothing is claimed.
		return false
	}
	strat := w.pool.opts.Strategy

	if strat != StealBase {
		// Peek: look at the indices without the lock first.
		if victim.bot.Load() >= victim.top.Load() {
			return false
		}
	}
	if strat == StealTryLock {
		if !victim.lock.TryLock() {
			w.lockFailures.Add(1)
			return false
		}
	} else {
		victim.lock.Lock()
	}
	// Re-check under mutual exclusion.
	bot := victim.bot.Load()
	top := victim.top.Load()
	if bot >= top {
		victim.lock.Unlock()
		return false
	}
	take := int64(1)
	if w.pool.opts.StealHalf {
		if avail := top - bot; avail > 1 {
			take = (avail + 1) / 2
		}
	}
	for i := int64(0); i < take; i++ {
		victim.tasks[bot+i].stolenBy = int32(w.idx) + 1
	}
	victim.bot.Store(bot + take)
	victim.lock.Unlock()

	w.steals.Add(1)
	if w.trc != nil {
		w.trc.Record(trace.KindSteal, int64(victim.idx), bot)
	}
	// Run the claimed tasks oldest-first (the order thieves would have
	// taken them individually). runStolen recovers a panicking task so
	// the remaining claimed tasks still execute and every done flag
	// still publishes — with StealHalf a single unrecovered panic would
	// strand every task convoying behind it and deadlock their joins.
	for i := int64(0); i < take; i++ {
		t := &victim.tasks[bot+i]
		w.runStolen(t)
		t.done.Store(true)
	}
	return true
}

// runStolen executes one claimed task, converting a panic in user code
// into a pool-wide abort (recorded here, re-raised by Run).
func (w *Worker) runStolen(t *Task) {
	defer func() {
		if r := recover(); r != nil {
			w.pool.recordPanic(r)
		}
	}()
	fn := t.fn
	fn(w, t)
}

// idleLoop steals until shutdown — or until the pool is poisoned by a
// task panic, after which the abandoned tree's tasks must not keep
// executing in the background (claimed tasks always finish; the exit
// only happens between attempts).
//
// woolvet:thief
func (w *Worker) idleLoop() {
	fails := 0
	for !w.pool.shutdown.Load() && !w.pool.panicked.Load() {
		v := w.pol.Choose(w.probe)
		if w.trySteal(w.pool.workers[v]) {
			w.pol.Observe(v, true)
			fails = 0
			continue
		}
		w.pol.Observe(v, false)
		fails++
		switch {
		case fails < 64:
			if runtime.GOMAXPROCS(0) == 1 {
				runtime.Gosched()
			}
		case fails < 1024 || w.pool.opts.MaxIdleSleep <= 0:
			runtime.Gosched()
		default:
			if w.chs != nil {
				// No park/unpark protocol to force here; the sleep-phase
				// decision only gets delay/yield faults.
				w.chs.Point(chaos.PointParkDecision)
			}
			if fails == 1024 && w.trc != nil {
				// No parking engine here; entering the sleep phase is
				// this backend's closest PARK analogue.
				w.trc.Record(trace.KindPark, 0, 0)
			}
			d := time.Duration(fails-1023) * time.Microsecond
			if d > w.pool.opts.MaxIdleSleep {
				d = w.pool.opts.MaxIdleSleep
			}
			time.Sleep(d)
		}
	}
	w.pool.wg.Done()
}
