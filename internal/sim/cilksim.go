package sim

import (
	"gowool/internal/steal"
	"gowool/internal/vtime"
)

// Steal-parent (continuation-stealing) execution on the virtual-time
// machine: the true Cilk execution order, complementing the cost-level
// approximation the experiment catalog uses for Cilk++ (KindLock with
// Cilk++ costs). Workloads are written as explicit continuation steps
// over cactus frames — the same shape as the native internal/cilkstyle
// engine — so a spawn runs the child immediately and thieves take the
// parent's continuation from the head of a locked deque.
//
// Cost accounting: SpawnPublic is charged at each spawn, JoinPublic at
// each continuation pop (the fast-path pair whose sum is the paper's
// "inlined" overhead), JoinStolen when a suspended sync is resumed by
// its last returning child, and StealWork (plus the same coherence
// penalties as the steal-child protocol) per successful steal. Lock
// occupancy uses the fair ticket model.

// CStep is one unit of a continuation-passing task function: do some
// work, return the next step (or hand control back with nil).
type CStep func(w *CW) CStep

// CFrame is the activation frame of a CPS task; embed it in a struct
// carrying the task's variables (the cactus-stack frame).
type CFrame struct {
	pending   int
	suspended bool
	resume    CStep
	parent    *CFrame
}

// NewCChild links child to parent in the cactus stack.
func NewCChild(parent, child *CFrame) *CFrame {
	child.parent = parent
	return child
}

// CW is one steal-parent worker on the virtual machine.
type CW struct {
	m *CMachine
	p *vtime.Proc

	deque     []CStep
	lockUntil uint64
	lastSteal uint64
	idx       int
	pol       steal.Policy
	maxDeque  int

	St Stats
}

// Proc exposes the virtual processor (for Work/clock access).
func (w *CW) Proc() *vtime.Proc { return w.p }

// Work advances the clock by application cycles.
func (w *CW) Work(cycles uint64) {
	w.St.NA += cycles
	w.p.Step(cycles)
}

// CMachine is a steal-parent scheduler instance on virtual time.
type CMachine struct {
	cfg      Config
	ws       []*CW
	rootDone bool
	makespan uint64
	lastAny  uint64
}

// CResult is a steal-parent run's outcome.
type CResult struct {
	Makespan uint64
	Total    Stats
	Workers  []Stats
	// MaxDeque is the high-water mark of ready continuations on any
	// single worker — steal-parent's space guarantee, made observable
	// (the paper's Section I-a: Cilk's constant-space spawn loop).
	MaxDeque int
}

// RunCilkSim executes a CPS workload to completion under steal-parent
// scheduling at cfg.Procs virtual processors. build constructs the
// root frame and first step; it runs on processor 0 with the token
// held, so it may freely touch shared workload state.
func RunCilkSim(cfg Config, build func(w *CW) CStep) CResult {
	cfg = cfg.defaults()
	m := &CMachine{cfg: cfg}
	vm := vtime.NewMachine(cfg.Procs)
	m.ws = make([]*CW, cfg.Procs)
	for i := range m.ws {
		m.ws[i] = &CW{m: m, idx: i, pol: steal.New(cfg.Steal, i, cfg.Procs)}
	}
	vm.Run(func(p *vtime.Proc) {
		w := m.ws[p.ID()]
		w.p = p
		if p.ID() == 0 {
			w.runChain(build(w))
		}
		backoff := uint64(16)
		for !m.rootDone {
			if s := w.popBottom(); s != nil {
				w.runChain(s)
				backoff = 16
				continue
			}
			v := w.nextVictim()
			ok := w.trySteal(v)
			w.pol.Observe(v.idx, ok)
			if ok {
				backoff = 16
				continue
			}
			w.St.ST += backoff
			p.Step(backoff)
			if backoff < cfg.IdleBackoffCap {
				backoff *= 2
			}
		}
	})
	res := CResult{Makespan: m.makespan, Workers: make([]Stats, len(m.ws))}
	for i, w := range m.ws {
		res.Workers[i] = w.St
		res.Total.add(&w.St)
		if w.maxDeque > res.MaxDeque {
			res.MaxDeque = w.maxDeque
		}
	}
	return res
}

// runChain drives a step chain until it hands control back.
func (w *CW) runChain(s CStep) {
	for s != nil {
		s = s(w)
	}
}

// Spawn makes the parent's continuation cont stealable and continues
// with the child (steal parent). Use as
// `return w.Spawn(&f.CFrame, f.step2, child.step0)`.
func (w *CW) Spawn(parent *CFrame, cont, child CStep) CStep {
	c := &w.m.cfg.Costs
	parent.pending++
	w.push(cont)
	w.St.Spawns++
	w.St.NA += c.SpawnPublic
	w.p.Step(c.SpawnPublic)
	return child
}

// Sync waits for the frame's outstanding children: continue with after
// if none, otherwise park the frame (its last returning child resumes
// it) and look for other ready work.
func (w *CW) Sync(f *CFrame, after CStep) CStep {
	if f.pending == 0 {
		return after
	}
	f.suspended = true
	f.resume = after
	return w.popBottom()
}

// Return marks the frame's function complete: notify the parent
// (waking it when this was the last child a sync waited on) and pick
// up the next ready continuation.
func (w *CW) Return(f *CFrame) CStep {
	c := &w.m.cfg.Costs
	p := f.parent
	if p == nil {
		w.m.rootDone = true
		w.m.makespan = w.p.Now()
		return nil
	}
	p.pending--
	if p.suspended && p.pending == 0 {
		p.suspended = false
		r := p.resume
		p.resume = nil
		w.St.JoinsStolen++
		w.St.NA += c.JoinStolen
		w.p.Step(c.JoinStolen)
		return r
	}
	return w.popBottom()
}

// push adds a ready continuation at the owner's end (lock occupancy
// per the ticket model; processor time is inside the profile costs).
func (w *CW) push(s CStep) {
	w.lockTicketC(&w.lockUntil, w.m.cfg.Costs.LockAcquire)
	w.deque = append(w.deque, s)
	if len(w.deque) > w.maxDeque {
		w.maxDeque = len(w.deque)
	}
}

// popBottom takes the youngest ready continuation, charging the
// fast-path continuation cost.
func (w *CW) popBottom() CStep {
	c := &w.m.cfg.Costs
	w.lockTicketC(&w.lockUntil, c.LockAcquire)
	n := len(w.deque)
	if n == 0 {
		return nil
	}
	s := w.deque[n-1]
	w.deque[n-1] = nil
	w.deque = w.deque[:n-1]
	w.St.JoinsPublic++
	w.St.NA += c.JoinPublic
	w.p.Step(c.JoinPublic)
	return s
}

// chargeProbeC charges a failed probe of victim with the topology's
// per-hop penalty (same model as the steal-child protocol).
func (w *CW) chargeProbeC(victim *CW) {
	topo := &w.m.cfg.Topology
	cost := w.m.cfg.Costs.StealProbe +
		topo.ProbePenalty*topo.hops(w.idx, victim.idx, len(w.m.ws))
	w.St.ST += cost
	w.p.Step(cost)
}

// trySteal takes the oldest continuation from victim and runs its
// chain, with the steal-child protocol's coherence and topology
// models.
func (w *CW) trySteal(victim *CW) bool {
	if victim == w {
		return false
	}
	c := &w.m.cfg.Costs
	w.St.Attempts++
	if len(victim.deque) == 0 {
		w.chargeProbeC(victim)
		return false
	}
	w.lockTicketC(&victim.lockUntil, c.LockAcquire+c.LockHold)
	if len(victim.deque) == 0 {
		w.chargeProbeC(victim)
		return false
	}
	s := victim.deque[0]
	copy(victim.deque, victim.deque[1:])
	victim.deque[len(victim.deque)-1] = nil
	victim.deque = victim.deque[:len(victim.deque)-1]

	topo := &w.m.cfg.Topology
	cost := c.StealWork + topo.StealPenalty*topo.hops(w.idx, victim.idx, len(w.m.ws))
	now := w.p.Now()
	if now-victim.lastSteal < 2*c.StealWork {
		cost += c.StealWork / 2
	}
	if now-w.m.lastAny < c.StealWork/2 {
		cost += c.StealWork / 4
	}
	victim.lastSteal = now
	w.m.lastAny = now
	w.St.Steals++
	w.St.ST += cost
	w.p.Step(cost)
	w.runChain(s)
	return true
}

// lockTicketC is the fair ticket lock for the CPS engine (same model
// as the steal-child protocol's lockTicket).
func (w *CW) lockTicketC(l *uint64, occupy uint64) {
	now := w.p.Now()
	grant := now
	if *l > grant {
		grant = *l
		w.St.LockWaits++
	}
	*l = grant + occupy
	w.St.ST += grant - now
	w.p.WaitUntil(grant)
}

// nextVictim asks the worker's policy for the next victim (nil probe:
// probe cycles are charged explicitly in trySteal).
func (w *CW) nextVictim() *CW {
	return w.m.ws[w.pol.Choose(nil)]
}
