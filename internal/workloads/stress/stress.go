// Package stress is the paper's stress micro benchmark (Section IV-A):
// a balanced binary tree of tasks whose leaves run a simple loop with
// no memory references, repeated many times with serialization between
// repetitions. Leaf iterations and tree height control task and
// region granularity precisely, which is what makes it the paper's
// instrument for measuring load-balancing performance (Figures 1, 4,
// Table III) — "for some systems, this overhead is large enough that
// adding processors makes performance worse."
//
// The paper's two workload sets use leaves of 256 iterations (512
// cycles) and 4096 iterations (8K cycles): two cycles per iteration,
// which is what the simulated version charges.
package stress

import (
	"gowool/internal/core"
	"gowool/internal/sched"
	"gowool/internal/sim"
)

// CyclesPerIter is the paper's cost of one leaf loop iteration (a
// simple no-memory loop retires ~2 cycles per iteration).
const CyclesPerIter = 2

// SpinLeaf is the leaf kernel: iters iterations of a loop making no
// memory references. Returns 1 so tree results count leaves.
//
//go:noinline
func SpinLeaf(iters int64) int64 {
	acc := uint64(1)
	for i := int64(0); i < iters; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	if acc == 0 { // never true; keeps the loop from being optimized out
		return 0
	}
	return 1
}

// Serial runs one tree of the given height serially and returns the
// leaf count.
func Serial(height, iters int64) int64 {
	if height == 0 {
		return SpinLeaf(iters)
	}
	return Serial(height-1, iters) + Serial(height-1, iters)
}

// SerialReps runs reps serialized repetitions.
func SerialReps(height, iters, reps int64) int64 {
	var total int64
	for r := int64(0); r < reps; r++ {
		total += Serial(height, iters)
	}
	return total
}

// NewWool builds the task-tree kernel for the direct task stack; the
// second argument of the task is the leaf iteration count.
func NewWool() *core.TaskDef2 {
	var tree *core.TaskDef2
	tree = core.Define2("stress", func(w *core.Worker, height, iters int64) int64 {
		if height == 0 {
			return SpinLeaf(iters)
		}
		tree.Spawn(w, height-1, iters)
		a := tree.Call(w, height-1, iters)
		b := tree.Join(w)
		return a + b
	})
	return tree
}

// RunWool executes reps serialized repetitions on the pool.
func RunWool(p *core.Pool, tree *core.TaskDef2, height, iters, reps int64) int64 {
	return p.Run(func(w *core.Worker) int64 {
		var total int64
		for r := int64(0); r < reps; r++ {
			total += tree.Call(w, height, iters)
		}
		return total
	})
}

// Job returns the stress tree as a generic RecJob: the recursion
// parameter is the height, the leaf iteration count travels by
// closure capture, and reps serialized parallel regions are run. One
// body, instantiated for any registered scheduler via internal/sched.
func Job(height, iters, reps int64) sched.RecJob {
	return sched.RecJob{
		Name: "stress",
		Root: height,
		Reps: reps,
		Leaf: func(h int64) (int64, bool) {
			if h == 0 {
				return SpinLeaf(iters), true
			}
			return 0, false
		},
		Split: func(h int64) (inline, spawned int64) { return h - 1, h - 1 },
	}
}

// NewSim builds the simulated kernel: A0 = height, A1 = leaf
// iterations (charged at CyclesPerIter virtual cycles each).
func NewSim() *sim.Def {
	d := &sim.Def{Name: "stress"}
	d.F = func(w *sim.W, a sim.Args) int64 {
		height, iters := a.A0, a.A1
		if height == 0 {
			w.Work(uint64(iters) * CyclesPerIter)
			return 1
		}
		d.Spawn(w, sim.Args{A0: height - 1, A1: iters})
		x := d.Call(w, sim.Args{A0: height - 1, A1: iters})
		y := w.Join()
		return x + y
	}
	return d
}

// NewSimReps wraps the simulated kernel in reps serialized parallel
// regions: A0 = height, A1 = iters, A2 = reps.
func NewSimReps() *sim.Def {
	tree := NewSim()
	d := &sim.Def{Name: "stress-reps"}
	d.F = func(w *sim.W, a sim.Args) int64 {
		var total int64
		for r := int64(0); r < a.A2; r++ {
			total += tree.Call(w, sim.Args{A0: a.A0, A1: a.A1})
		}
		return total
	}
	return d
}
