// Package fibw is the fib benchmark of the paper (Figures 1 and 2,
// Table II): the doubly recursive Fibonacci function with no cutoff,
// spawning a task roughly every 13 cycles of useful work — the
// most spawn-intensive workload in the suite and the paper's yardstick
// for inlined-task overhead.
package fibw

import (
	"gowool/internal/core"
	"gowool/internal/sched"
	"gowool/internal/sim"
)

// Serial is the reference implementation with no task constructs.
func Serial(n int64) int64 {
	if n < 2 {
		return n
	}
	return Serial(n-1) + Serial(n-2)
}

// Tasks returns the number of tasks a no-cutoff fib(n) spawns (one per
// internal call, paper notation N_T).
func Tasks(n int64) int64 {
	if n < 2 {
		return 0
	}
	return 1 + Tasks(n-1) + Tasks(n-2)
}

//go:generate go run gowool/cmd/woolgen -pkg fibw -out fib_gen.go -task Fib:1

// fibBody is fib behind the woolgen-generated monomorphic port
// (fib_gen.go): SpawnFib/JoinFib flatten to plain descriptor stores
// and a direct call back into this function on the private fast path,
// where NewWool's TaskDef1 pays the generic method-call frames. Run it
// with CallFib(w, n).
func fibBody(w *core.Worker, n int64) int64 {
	if n < 2 {
		return n
	}
	SpawnFib(w, n-2)
	a := fibBody(w, n-1)
	b := JoinFib(w)
	return a + b
}

// NewWool builds the direct-task-stack fib (paper Figure 2).
func NewWool() *core.TaskDef1 {
	var fib *core.TaskDef1
	fib = core.Define1("fib", func(w *core.Worker, n int64) int64 {
		if n < 2 {
			return n
		}
		fib.Spawn(w, n-2)
		a := fib.Call(w, n-1)
		b := fib.Join(w)
		return a + b
	})
	return fib
}

// NewWoolGenericJoin builds fib joined through the generic wrapper
// path (Worker.JoinAny) instead of the task-specific join — the
// Table II "synchronize on task" rung.
func NewWoolGenericJoin() *core.TaskDef1 {
	var fib *core.TaskDef1
	fib = core.Define1("fib-generic", func(w *core.Worker, n int64) int64 {
		if n < 2 {
			return n
		}
		fib.Spawn(w, n-2)
		a := fib.Call(w, n-1)
		b := w.JoinAny()
		return a + b
	})
	return fib
}

// Job returns fib as a generic RecJob: the divide-and-conquer body
// written once, instantiated for any registered scheduler via
// internal/sched (the baselines' ports used to be hand-written copies
// of NewWool, one per scheduler package).
func Job(n, reps int64) sched.RecJob {
	return sched.RecJob{
		Name: "fib",
		Root: n,
		Reps: reps,
		Leaf: func(n int64) (int64, bool) {
			if n < 2 {
				return n, true
			}
			return 0, false
		},
		Split: func(n int64) (inline, spawned int64) { return n - 1, n - 2 },
	}
}

// LeafWork and NodeWork are the virtual work charged by the simulated
// fib: ~13 cycles per spawned task, matching the paper's measured task
// granularity G_T(fib) ≈ 13 cycles (Section I: "it spawns a task for
// every 13 cycles worth of work").
const (
	LeafWork = 4
	NodeWork = 13
)

// NewSim builds the simulated fib.
func NewSim() *sim.Def {
	d := &sim.Def{Name: "fib"}
	d.F = func(w *sim.W, a sim.Args) int64 {
		n := a.A0
		if n < 2 {
			w.Work(LeafWork)
			return n
		}
		d.Spawn(w, sim.Args{A0: n - 2})
		x := d.Call(w, sim.Args{A0: n - 1})
		y := w.Join()
		w.Work(NodeWork)
		return x + y
	}
	return d
}
