// Package steal is the composable victim-selection policy layer shared
// by every work-stealing backend in this repository and by the
// virtual-time simulator.
//
// Before this package each backend carried its own copy of the same
// xorshift64 victim generator, and the retention (last-victim) and
// sampling refinements lived inline in core's chooseVictim. Following
// "Configurable Strategies for Work-stealing" (arXiv:1305.6474), victim
// order decomposes into an independent strategy object: a Policy holds
// per-worker, owner-private state (an RNG stream, a retention slot, a
// scan cursor, a neighborhood), seeded deterministically per worker
// like the chaos agents, and the thief loop asks it which worker to rob
// next. "On the Efficiency of Localized Work Stealing"
// (arXiv:1804.04773) supplies the localized policy: steal from a ring
// neighborhood of nearby workers, spilling to a uniformly random remote
// victim with small probability.
//
// The steal *amount* (one task vs half the victim's pool, Hendler &
// Shavit's steal-half) is a second independent axis; it is carried in
// Config.Amount and honoured by the backends whose pools support batch
// extraction (chaselev, locksched).
//
// Concurrency contract: a Policy is owner-private state of exactly one
// worker — only the goroutine driving that worker may call its methods
// (the woolvet ownerprivate pass checks the backends' policy fields).
// The stealable probe passed to Choose may read other workers' protocol
// atomics, but the policy itself never shares state.
package steal

import "fmt"

// Policy names (Config.Policy). Policies() lists them in presentation
// order.
const (
	// Random is uniform victim selection over the other workers — the
	// paper's policy — with optional distinct-k sampling
	// (Config.Sampling): probe up to k pairwise-distinct candidates
	// read-only and take the first that looks stealable.
	Random = "random"
	// LastVictim wraps Random with last-successful-victim retention
	// (the pre-refactor Options.StealRetain): after a successful steal
	// return to the same victim first, dropping it after Config.Retain
	// consecutive probes that find nothing.
	LastVictim = "last-victim"
	// Sequential scans the workers round-robin from the thief's right
	// neighbour: fully deterministic, no RNG. A successful steal keeps
	// the cursor on the yielding victim (steals cluster); a failure
	// advances it.
	Sequential = "sequential"
	// Localized steals from a ring neighborhood of the
	// Config.Neighborhood nearest workers, spilling to a uniformly
	// random remote victim with probability Config.Spill
	// (arXiv:1804.04773).
	Localized = "localized"
)

// Steal amounts (Config.Amount).
const (
	// AmountOne takes a single task per successful steal (the default
	// and the paper's policy).
	AmountOne = "one"
	// AmountHalf takes up to half of the victim's queued tasks in one
	// claim (Hendler & Shavit's steal-half) on backends whose pools
	// support batch extraction; others ignore it.
	AmountHalf = "half"
)

// Policies returns the victim-policy names in presentation order.
func Policies() []string {
	return []string{Random, LastVictim, Sequential, Localized}
}

// Amounts returns the steal-amount names.
func Amounts() []string { return []string{AmountOne, AmountHalf} }

// MaxSampling caps Config.Sampling's distinct-victim bookkeeping (the
// pre-refactor core.maxSampling).
const MaxSampling = 8

// Config selects and parameterizes a victim policy. The zero value is
// usable: it resolves to the uniform-random policy with no sampling,
// taking one task per steal — every backend's historical default.
type Config struct {
	// Policy is one of Policies(); "" means Random.
	Policy string

	// Retain is the LastVictim miss budget: the retained victim is
	// dropped after this many consecutive probes that find nothing.
	// 0 means the default of 1; negative disables retention outright
	// (the policy degenerates to Random).
	Retain int

	// Sampling makes Random (and the LastVictim fallback) probe up to
	// this many pairwise-distinct candidates per attempt and take the
	// first that looks stealable. 0 or 1 means no sampling; capped at
	// MaxSampling. Only consulted when the backend supplies a
	// stealable probe.
	Sampling int

	// Neighborhood is the Localized ring-neighborhood size: the number
	// of nearest workers (alternating right/left on the worker ring)
	// eligible for a local steal. 0 means the default of 4; values
	// >= workers-1 degenerate to Random.
	Neighborhood int

	// Spill is the Localized spill-out probability: each attempt
	// escapes the neighborhood to a uniformly random victim with this
	// probability. 0 means the default of 0.05; negative means never
	// spill.
	Spill float64

	// Amount is AmountOne or AmountHalf; "" means AmountOne. Honoured
	// by backends whose pools support batch extraction (see
	// sched.Caps.StealAmounts).
	Amount string

	// Seed, when nonzero, derives the per-worker RNG streams from a
	// run seed (the simulator's convention, matching its pre-refactor
	// streams bit for bit). Zero uses the native backends'
	// golden-ratio per-worker schedule — also bit-identical to the
	// rng each backend seeded before this package existed.
	Seed uint64
}

// Defaults returns c with every unset field replaced by its default.
func (c Config) Defaults() Config {
	if c.Policy == "" {
		c.Policy = Random
	}
	if c.Retain == 0 {
		c.Retain = 1
	}
	if c.Sampling <= 0 {
		c.Sampling = 1
	}
	if c.Sampling > MaxSampling {
		c.Sampling = MaxSampling
	}
	if c.Neighborhood <= 0 {
		c.Neighborhood = 4
	}
	if c.Spill == 0 {
		c.Spill = 0.05
	}
	if c.Amount == "" {
		c.Amount = AmountOne
	}
	return c
}

// Validate reports whether c names a known policy and amount. Call it
// on the pre-Defaults value or after; both accept "".
func (c Config) Validate() error {
	switch c.Policy {
	case "", Random, LastVictim, Sequential, Localized:
	default:
		return fmt.Errorf("unknown steal policy %q (have %v)", c.Policy, Policies())
	}
	switch c.Amount {
	case "", AmountOne, AmountHalf:
	default:
		return fmt.Errorf("unknown steal amount %q (have %v)", c.Amount, Amounts())
	}
	if c.Spill > 1 {
		return fmt.Errorf("steal spill probability %v > 1", c.Spill)
	}
	return nil
}

// Policy is one worker's victim-selection strategy. All methods are
// owner-private: only the goroutine driving the owning worker may call
// them.
type Policy interface {
	// Name returns the policy name (one of Policies()).
	Name() string

	// Choose returns the index of the next victim to rob. It never
	// returns the owning worker's index unless the pool has a single
	// worker (in which case the caller's steal attempt fails on the
	// victim==self check, exactly like the pre-refactor nextVictim).
	//
	// stealable, when non-nil, is a read-only probe of a candidate's
	// pool (e.g. core's stealableAt): the retention check and the
	// sampling pass use it to skip victims that look empty. nil (the
	// simulator, lock-guarded pools) disables probing; failures are
	// then accounted through Observe instead.
	Choose(stealable func(int) bool) int

	// Observe feeds back the outcome of the steal attempt at victim v.
	// retained reports a repeat success at the retained victim (the
	// LastVictim hit counter; core surfaces it as
	// Stats.RetainedSteals). Call it after every policy-chosen attempt;
	// leapfrog steals (fixed thief, not policy-chosen) are not
	// observed.
	Observe(v int, ok bool) (retained bool)
}

// WorkerSeed returns the per-worker RNG seed for a run seed: the
// native backends' golden-ratio schedule when seed is zero, or the
// simulator's splitmix offsets from the run seed otherwise. Both
// reproduce the streams the respective callers seeded before this
// package existed.
func WorkerSeed(seed uint64, self int) uint64 {
	if seed == 0 {
		return uint64(self)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	}
	return seed + uint64(self)*0x2545f4914f6cdd1d + 1
}

// New builds the policy cfg names for worker self of a workers-sized
// pool, seeded deterministically (WorkerSeed). It panics on an invalid
// config — policy construction happens at pool construction, where the
// other option validations panic too.
func New(cfg Config, self, workers int) Policy {
	if err := cfg.Validate(); err != nil {
		panic("steal: " + err.Error())
	}
	if workers <= 0 || self < 0 || self >= workers {
		panic(fmt.Sprintf("steal: worker %d of %d out of range", self, workers))
	}
	retainDisabled := cfg.Retain < 0
	cfg = cfg.Defaults()
	base := randomPolicy{
		rng:  NewRNG(WorkerSeed(cfg.Seed, self)),
		self: self,
		n:    workers,
		k:    cfg.Sampling,
	}
	switch cfg.Policy {
	case Random:
		return &base
	case LastVictim:
		if retainDisabled {
			return &base
		}
		return &lastVictimPolicy{randomPolicy: base, retain: cfg.Retain, last: -1}
	case Sequential:
		cur := self
		if workers > 1 {
			cur = (self + 1) % workers
		}
		return &sequentialPolicy{self: self, n: workers, cur: cur}
	case Localized:
		h := cfg.Neighborhood
		if h > workers-1 {
			h = workers - 1
		}
		spill := cfg.Spill
		if spill < 0 {
			spill = 0
		}
		return &localizedPolicy{
			randomPolicy: base,
			h:            h,
			spill:        uint64(spill * float64(1<<32)),
		}
	}
	panic("steal: unreachable policy " + cfg.Policy)
}

// RingDistance returns the distance between workers a and b on the
// n-ring — the victim-distance metric of the Localized policy, the
// simulator's sharded topology, and the steal-matrix locality reports.
func RingDistance(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if alt := n - d; alt < d {
		d = alt
	}
	return d
}
