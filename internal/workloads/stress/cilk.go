package stress

import (
	"gowool/internal/cilkstyle"
)

// Steal-parent (Cilk-style) port of the stress kernel, written as the
// explicit continuation state machine the cilkstyle scheduler requires
// — the shape Cilk++'s compiler generates for
//
//	a = spawn tree(h-1); b = spawn tree(h-1); sync; return a+b;

// CilkFrame is the cactus-stack frame of one tree node.
type CilkFrame struct {
	cilkstyle.Frame
	height int64
	iters  int64
	a, b   int64
	res    *int64
}

// NewCilkFrame builds a root frame whose result lands in res.
func NewCilkFrame(height, iters int64, res *int64) *CilkFrame {
	return &CilkFrame{height: height, iters: iters, res: res}
}

// Step0 is the entry step.
func (f *CilkFrame) Step0(w *cilkstyle.Worker) cilkstyle.Step {
	if f.height == 0 {
		*f.res = SpinLeaf(f.iters)
		return w.Return(&f.Frame)
	}
	child := &CilkFrame{height: f.height - 1, iters: f.iters, res: &f.a}
	cilkstyle.NewChild(&f.Frame, &child.Frame)
	return w.Spawn(&f.Frame, f.step1, child.Step0)
}

func (f *CilkFrame) step1(w *cilkstyle.Worker) cilkstyle.Step {
	child := &CilkFrame{height: f.height - 1, iters: f.iters, res: &f.b}
	cilkstyle.NewChild(&f.Frame, &child.Frame)
	return w.Spawn(&f.Frame, f.step2, child.Step0)
}

func (f *CilkFrame) step2(w *cilkstyle.Worker) cilkstyle.Step {
	return w.Sync(&f.Frame, f.step3)
}

func (f *CilkFrame) step3(w *cilkstyle.Worker) cilkstyle.Step {
	*f.res = f.a + f.b
	return w.Return(&f.Frame)
}

// RunCilk executes reps serialized repetitions on the steal-parent
// pool and returns the total leaf count.
func RunCilk(p *cilkstyle.Pool, height, iters, reps int64) int64 {
	var total int64
	for r := int64(0); r < reps; r++ {
		var res int64
		root := NewCilkFrame(height, iters, &res)
		p.Run(&root.Frame, root.Step0)
		total += res
	}
	return total
}
