package ports

import (
	"runtime"
	"sync/atomic"
	"testing"

	"gowool/internal/core"
)

func serialRec(c *RecCtx, n int64) int64 {
	if v, ok := c.Leaf(n); ok {
		return v
	}
	first, second := c.Split(n)
	return serialRec(c, first) + serialRec(c, second)
}

func fibCtx() *RecCtx {
	return &RecCtx{
		Leaf: func(n int64) (int64, bool) {
			if n < 2 {
				return n, true
			}
			return 0, false
		},
		Split: func(n int64) (int64, int64) { return n - 1, n - 2 },
	}
}

// TestRecSerialAgreement runs the generated divide-and-conquer port on
// a steal-heavy multi-worker pool and checks the result against a
// plain serial recursion over the same context.
func TestRecSerialAgreement(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := core.NewPool(core.Options{Workers: 4, PrivateTasks: true,
		InitialPublic: 1, TripDistance: 1, PublishAmount: 1})
	defer p.Close()
	c := fibCtx()
	want := serialRec(c, 25)
	for rep := 0; rep < 5; rep++ {
		if got := p.Run(func(w *core.Worker) int64 { return CallRec(w, c, 25) }); got != want {
			t.Fatalf("rep %d: CallRec(25) = %d, want %d", rep, got, want)
		}
	}
}

// TestRecExactlyOnceLeaves counts leaf executions with an atomic: a
// lost or doubly-executed descriptor anywhere in the generated
// spawn/join/steal plumbing shows up as a miscount.
func TestRecExactlyOnceLeaves(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := core.NewPool(core.Options{Workers: 4, PrivateTasks: true,
		InitialPublic: 1, TripDistance: 1, PublishAmount: 1})
	defer p.Close()
	var leaves atomic.Int64
	c := &RecCtx{
		Leaf: func(n int64) (int64, bool) {
			if n < 2 {
				leaves.Add(1)
				return n, true
			}
			return 0, false
		},
		Split: func(n int64) (int64, int64) { return n - 1, n - 2 },
	}
	wantLeaves := int64(0)
	var count func(n int64)
	count = func(n int64) {
		if n < 2 {
			wantLeaves++
			return
		}
		count(n - 1)
		count(n - 2)
	}
	count(22)
	for rep := 0; rep < 5; rep++ {
		leaves.Store(0)
		p.Run(func(w *core.Worker) int64 { return CallRec(w, c, 22) })
		if got := leaves.Load(); got != wantLeaves {
			t.Fatalf("rep %d: %d leaf executions, want %d", rep, got, wantLeaves)
		}
	}
}

// TestRangeSerialAgreement checks the generated range splitter against
// a plain loop reduction.
func TestRangeSerialAgreement(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := core.NewPool(core.Options{Workers: 4, PrivateTasks: true,
		InitialPublic: 1, TripDistance: 1, PublishAmount: 1})
	defer p.Close()
	c := &RangeCtx{Leaf: func(i int64) int64 { return i * i }}
	const n = 10_000
	var want int64
	for i := int64(0); i < n; i++ {
		want += i * i
	}
	if got := p.Run(func(w *core.Worker) int64 { return CallRange(w, c, 0, n) }); got != want {
		t.Fatalf("CallRange(0, %d) = %d, want %d", n, got, want)
	}
	if got := p.Run(func(w *core.Worker) int64 { return CallRange(w, c, 5, 5) }); got != 0 {
		t.Fatalf("CallRange on an empty range = %d, want 0", got)
	}
}

// TestBatchCorrectness: SpawnNoopN/JoinNoopN over a window larger than
// the task stack's private headroom must join every argument exactly
// once (the sum identifies the set).
func TestBatchCorrectness(t *testing.T) {
	p := core.NewPool(core.Options{Workers: 1, PrivateTasks: true, InitialPublic: 2})
	defer p.Close()
	for _, n := range []int{0, 1, 7, 64} {
		base := int64(5)
		want := int64(0)
		for j := 0; j < n; j++ {
			want += base + int64(j)
		}
		got := p.Run(func(w *core.Worker) int64 {
			SpawnNoopN(w, base, n)
			return JoinNoopN(w, n)
		})
		if got != want {
			t.Fatalf("SpawnNoopN/JoinNoopN(base=%d, n=%d) = %d, want %d", base, n, got, want)
		}
	}
}

// atPrivateDepth runs f with depth outstanding noop tasks already
// spawned, so the slots f touches are past the public prefix and the
// private fast path is live (slots 0..InitialPublic-1 are public).
func atPrivateDepth(w *core.Worker, depth int, f func()) {
	for i := 0; i < depth; i++ {
		SpawnNoop(w, int64(i))
	}
	f()
	for i := 0; i < depth; i++ {
		JoinNoop(w)
	}
}

// TestPrivateSpawnJoinAllocs pins the headline acceptance property:
// the generated private spawn/join path and the batch path perform
// zero heap allocations per task.
func TestPrivateSpawnJoinAllocs(t *testing.T) {
	p := core.NewPool(core.Options{Workers: 1, PrivateTasks: true, InitialPublic: 2})
	defer p.Close()
	p.Run(func(w *core.Worker) int64 {
		atPrivateDepth(w, 4, func() {
			if avg := testing.AllocsPerRun(200, func() {
				SpawnNoop(w, 1)
				JoinNoop(w)
			}); avg != 0 {
				t.Errorf("private SpawnNoop/JoinNoop allocates %v objects per pair, want 0", avg)
			}
			if avg := testing.AllocsPerRun(200, func() {
				SpawnNoopN(w, 0, 16)
				JoinNoopN(w, 16)
			}); avg != 0 {
				t.Errorf("SpawnNoopN/JoinNoopN(16) allocates %v objects per window, want 0", avg)
			}
		})
		return 0
	})
}

// TestPanicInStolenGeneratedTask: a panic raised inside a stolen
// generated task must propagate out of the victim's Run and poison the
// pool, exactly as on the generic path (DESIGN.md §11).
func TestPanicInStolenGeneratedTask(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := core.NewPool(core.Options{Workers: 4, PrivateTasks: true,
		InitialPublic: 1, TripDistance: 1, PublishAmount: 1})
	defer p.Close()
	c := &RecCtx{
		Leaf: func(n int64) (int64, bool) {
			if n == 0 {
				panic("generated boom")
			}
			if n < 2 {
				return n, true
			}
			return 0, false
		},
		Split: func(n int64) (int64, int64) { return n - 1, n - 2 },
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic in a generated task did not propagate out of Run")
		}
		if s, ok := r.(string); !ok || s != "generated boom" {
			t.Fatalf("Run re-raised %v, want the original value", r)
		}
	}()
	p.Run(func(w *core.Worker) int64 { return CallRec(w, c, 22) })
}
