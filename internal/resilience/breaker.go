package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's state machine position.
type BreakerState uint8

const (
	// BreakerClosed admits everything; outcomes feed the failure-rate
	// window.
	BreakerClosed BreakerState = iota
	// BreakerOpen sheds everything until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe requests whose
	// outcomes decide between re-opening and closing.
	BreakerHalfOpen
)

// String returns the stable state name (health snapshots, docs).
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes one circuit breaker. Zero fields take the
// documented defaults (applied by NewBreaker).
type BreakerConfig struct {
	// Window is the sliding window over which the failure rate is
	// measured. Default 5s.
	Window time.Duration
	// Buckets is the window's ring granularity (expired outcomes age
	// out one bucket at a time). Default 8.
	Buckets int
	// MinSamples is the minimum number of windowed outcomes before the
	// failure rate can trip the breaker (a single early failure must
	// not open a fresh tenant). Default 20.
	MinSamples int
	// FailureRate opens the breaker when windowed failures/total
	// reaches it. Default 0.5.
	FailureRate float64
	// Cooldown is how long an open breaker sheds before moving to
	// half-open on the next admission attempt. Default 1s.
	Cooldown time.Duration
	// HalfOpenProbes is both the half-open admission bound and the
	// number of consecutive probe successes required to close.
	// Default 3.
	HalfOpenProbes int
}

// Defaulted fills zero fields with the defaults.
func (c BreakerConfig) Defaulted() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 5 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 8
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 20
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 3
	}
	return c
}

// BreakerHealth is a point-in-time breaker snapshot (Server.Health).
type BreakerHealth struct {
	// State is the current state name: closed, open or half-open.
	State string
	// WindowSuccesses / WindowFailures are the outcomes currently in
	// the sliding window.
	WindowSuccesses int64
	WindowFailures  int64
	// Opened / HalfOpened / Closed count state transitions since the
	// breaker was built (Closed counts only half-open→closed
	// recoveries, not the initial state).
	Opened     int64
	HalfOpened int64
	Closed     int64
}

// Breaker is one tenant's circuit breaker: a sliding-window
// failure-rate trip in front of the classic closed → open → half-open
// machine. All methods are safe for concurrent use.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig
	now func() time.Time

	state    BreakerState
	openedAt time.Time

	// The window ring: bucket 0..len-1, cur advances every
	// Window/Buckets as outcomes arrive.
	buckets  []breakerBucket
	cur      int
	curStart time.Time

	// Half-open probe accounting.
	probesInFlight int
	probeSuccesses int

	// Transition counters (BreakerHealth).
	opened     int64
	halfOpened int64
	closed     int64
}

type breakerBucket struct {
	success int64
	failure int64
}

// NewBreaker builds a breaker with cfg (zero fields defaulted). now is
// the clock; nil means time.Now — tests inject a fake to drive the
// window and cooldown deterministically.
func NewBreaker(cfg BreakerConfig, now func() time.Time) *Breaker {
	cfg = cfg.Defaulted()
	if now == nil {
		now = time.Now
	}
	b := &Breaker{
		cfg:     cfg,
		now:     now,
		buckets: make([]breakerBucket, cfg.Buckets),
	}
	b.curStart = now()
	return b
}

// Allow decides one admission. ok reports whether the request may
// proceed; probe is true when the breaker is half-open and this
// request is one of its probes — the caller must report the probe's
// outcome with ProbeDone (Record for non-probes).
func (b *Breaker) Allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false, false
		}
		// Cooldown over: move to half-open and admit this request as
		// the first probe.
		b.state = BreakerHalfOpen
		b.halfOpened++
		b.probesInFlight = 1
		b.probeSuccesses = 0
		return true, true
	default: // BreakerHalfOpen
		if b.probesInFlight >= b.cfg.HalfOpenProbes {
			return false, false
		}
		b.probesInFlight++
		return true, true
	}
}

// Record feeds a non-probe outcome into the window and, when closed,
// evaluates the trip condition. Sheds and cancellations must not be
// recorded — only real successes and failure-class outcomes.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.record(success)
	if b.state == BreakerClosed && !success {
		b.evaluate()
	}
}

// ProbeDone reports the outcome of a half-open probe admitted by
// Allow. A failure re-opens immediately; HalfOpenProbes consecutive
// successes close the breaker and reset the window.
func (b *Breaker) ProbeDone(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probesInFlight > 0 {
		b.probesInFlight--
	}
	b.record(success)
	if b.state != BreakerHalfOpen {
		// A probe outcome landing after the state already moved (a
		// concurrent probe re-opened, or we closed) only feeds the
		// window.
		return
	}
	if !success {
		b.trip()
		return
	}
	b.probeSuccesses++
	if b.probeSuccesses >= b.cfg.HalfOpenProbes {
		b.state = BreakerClosed
		b.closed++
		b.resetWindow()
	}
}

// ProbeSkipped releases a half-open probe slot whose request finished
// without a health signal — cancelled by its own caller or shed — so
// the slot frees for the next probe and no outcome is recorded.
func (b *Breaker) ProbeSkipped() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.probesInFlight > 0 {
		b.probesInFlight--
	}
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Health snapshots the breaker.
func (b *Breaker) Health() BreakerHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.roll(b.now())
	var s, f int64
	for _, bk := range b.buckets {
		s += bk.success
		f += bk.failure
	}
	return BreakerHealth{
		State:           b.state.String(),
		WindowSuccesses: s,
		WindowFailures:  f,
		Opened:          b.opened,
		HalfOpened:      b.halfOpened,
		Closed:          b.closed,
	}
}

// record rolls the window and counts one outcome (mu held).
func (b *Breaker) record(success bool) {
	b.roll(b.now())
	if success {
		b.buckets[b.cur].success++
	} else {
		b.buckets[b.cur].failure++
	}
}

// evaluate trips the breaker when the windowed failure rate crosses
// the threshold with enough samples (mu held, state closed).
func (b *Breaker) evaluate() {
	var s, f int64
	for _, bk := range b.buckets {
		s += bk.success
		f += bk.failure
	}
	total := s + f
	if total < int64(b.cfg.MinSamples) {
		return
	}
	if float64(f) >= b.cfg.FailureRate*float64(total) {
		b.trip()
	}
}

// trip opens the breaker (mu held).
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.opened++
	b.probesInFlight = 0
	b.probeSuccesses = 0
}

// roll ages the window ring forward to now (mu held).
func (b *Breaker) roll(now time.Time) {
	bucketLen := b.cfg.Window / time.Duration(len(b.buckets))
	elapsed := now.Sub(b.curStart)
	if elapsed < bucketLen {
		return
	}
	steps := int(elapsed / bucketLen)
	if steps >= len(b.buckets) {
		b.resetWindow()
		b.curStart = now
		return
	}
	for i := 0; i < steps; i++ {
		b.cur = (b.cur + 1) % len(b.buckets)
		b.buckets[b.cur] = breakerBucket{}
	}
	b.curStart = b.curStart.Add(time.Duration(steps) * bucketLen)
}

// resetWindow clears every bucket (mu held).
func (b *Breaker) resetWindow() {
	for i := range b.buckets {
		b.buckets[i] = breakerBucket{}
	}
}
