// Package publication is the analysistest fixture for the publication
// pass: fields tagged woolvet:published-by must be fully written
// before the release of their publication word, read only after its
// acquire, and never touched while the base is published.
package publication

import (
	"sync"
	"sync/atomic"
)

// task mirrors the core Task protocol: argument words are published
// to thieves by the state word (an atomic sibling field).
type task struct {
	// woolvet:published-by state
	fn func()
	// woolvet:published-by state
	a0 int64
	// woolvet:published-by state
	res int64

	state atomic.Uint64
}

// okPublish is the canonical owner-side ordering: all argument writes
// dominate the release store.
func okPublish(t *task, a int64) {
	t.fn = func() {}
	t.a0 = a
	t.state.Store(1)
}

func writeAfterRelease(t *task, a int64) {
	t.fn = func() {}
	t.state.Store(1)
	t.a0 = a // want `write to t.a0 after the release of state`
}

func conditionalWrite(t *task, a int64, c bool) {
	t.fn = func() {}
	if c {
		t.a0 = a // want `write to t.a0 does not dominate the release of state at line \d+`
	}
	t.state.Store(1)
}

// goodThief claims via CAS before touching published words.
func goodThief(t *task) int64 {
	if t.state.CompareAndSwap(1, 2) {
		return t.a0
	}
	return 0
}

func badThief(t *task) int64 {
	r := t.a0 // want `read of t.a0 is not dominated by an acquire of state`
	if t.state.CompareAndSwap(1, 2) {
		return r + t.a0
	}
	return 0
}

// ownerRead has no acquire in scope: it is owner-context and its
// ordering obligations live in its callers.
func ownerRead(t *task) int64 { return t.a0 }

// waitDone orders the result read after the acquire load.
func waitDone(t *task) int64 {
	for t.state.Load() != 3 {
	}
	return t.res
}

// reclaim re-privatizes the task before writing.
func reclaim(t *task) {
	if t.state.CompareAndSwap(1, 2) {
		t.res = 9
	}
}

// job carries a label-only publication word: "queue" names no sibling
// field, so the protocol points are the annotated functions below.
type job struct {
	// woolvet:published-by queue
	payload int64
}

// publish makes the job visible to other workers.
//
// woolvet:release queue
func publish(j *job) {}

// claim takes exclusive ownership of the job.
//
// woolvet:acquire queue
func claim(j *job) {}

// runJob writes the job's published fields on the thief side.
//
// woolvet:publish-write queue
func runJob(j *job) {}

func okLabel(j *job, v int64) {
	j.payload = v
	publish(j)
}

func badLabel(j *job, v int64) {
	publish(j)
	j.payload = v // want `write to j.payload after the release of queue`
}

func okSteal(j *job) {
	claim(j)
	runJob(j)
	publish(j)
}

func stealWrongOrder(j *job, c bool) {
	claim(j)
	if c {
		runJob(j) // want `write to j.\(runJob\) does not dominate the release of queue at line \d+`
	}
	publish(j)
}

func readBeforeClaim(j *job) int64 {
	v := j.payload // want `read of j.payload is not dominated by an acquire of queue`
	claim(j)
	return v + j.payload
}

// take returns an acquired job: the result is private to the caller.
//
// woolvet:acquire queue
func take() *job { return &job{} }

func takeAndRead() int64 {
	j := take()
	return j.payload
}

// guarded exercises the mutex word kind: accesses must be dominated
// by Lock and must not follow Unlock.
type guarded struct {
	mu sync.Mutex
	// woolvet:published-by mu
	items []int64
}

func okLocked(g *guarded, v int64) {
	g.mu.Lock()
	g.items = append(g.items, v)
	g.mu.Unlock()
}

func writeAfterUnlock(g *guarded) {
	g.mu.Lock()
	g.mu.Unlock()
	g.items = nil // want `write to g.items after mu.Unlock`
}

func readWithoutLock(g *guarded) int64 {
	n := int64(len(g.items)) // want `access to g.items is not dominated by a Lock of mu`
	g.mu.Lock()
	n += g.items[0]
	g.mu.Unlock()
	return n
}

func readAfterUnlock(g *guarded) int64 {
	g.mu.Lock()
	n := g.items[0]
	g.mu.Unlock()
	return n + g.items[1] // want `read of g.items after mu.Unlock`
}

// box exercises the sync.Once word kind: a literal passed directly to
// Do is folded between Do's claim and release.
type box struct {
	once sync.Once
	// woolvet:published-by once
	val int64
}

func okOnce(b *box, v int64) {
	b.once.Do(func() { b.val = v })
}

func badOnce(b *box, v int64) {
	b.once.Do(func() {})
	b.val = v // want `write to b.val after the release of once`
}

// deque exercises element stores into a published buffer: the slot
// write must dominate the bottom release (the Chase-Lev ordering).
type deque struct {
	// woolvet:published-by bottom
	buf [8]atomic.Pointer[task]

	bottom atomic.Int64
}

func push(d *deque, t *task) {
	b := d.bottom.Load()
	d.buf[b&7].Store(t)
	d.bottom.Store(b + 1)
}

func pushWrongOrder(d *deque, t *task) {
	b := d.bottom.Load()
	d.bottom.Store(b + 1)
	d.buf[b&7].Store(t) // want `write to d.buf after the release of bottom`
}
