// Quickstart: the paper's Figure 2 — fib with SPAWN/CALL/JOIN — plus a
// look at the scheduler statistics. Run with:
//
//	go run ./examples/quickstart [n]
package main

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"gowool"
)

// fib declares the task once; the task-specific Spawn/Join are the
// paper's generated spawn_f/join_f.
var fib *gowool.TaskDef1

func init() {
	fib = gowool.Define1("fib", func(w *gowool.Worker, n int64) int64 {
		if n < 2 {
			return n
		}
		fib.Spawn(w, n-2)     // SPAWN: child becomes stealable
		a := fib.Call(w, n-1) // CALL: plain recursive call
		b := fib.Join(w)      // JOIN: inline it, or resolve the steal
		return a + b
	})
}

func serialFib(n int64) int64 {
	if n < 2 {
		return n
	}
	return serialFib(n-1) + serialFib(n-2)
}

func main() {
	n := int64(32)
	if len(os.Args) > 1 {
		if v, err := strconv.ParseInt(os.Args[1], 10, 64); err == nil {
			n = v
		}
	}

	pool := gowool.NewPool(gowool.Options{
		Workers:      runtime.GOMAXPROCS(0),
		PrivateTasks: true, // joins without atomics until thieves need more
	})
	defer pool.Close()

	t0 := time.Now()
	serial := serialFib(n)
	serialTime := time.Since(t0)

	t0 = time.Now()
	parallel := pool.Run(func(w *gowool.Worker) int64 { return fib.Call(w, n) })
	parTime := time.Since(t0)

	if parallel != serial {
		fmt.Printf("MISMATCH: parallel %d != serial %d\n", parallel, serial)
		os.Exit(1)
	}
	st := pool.Stats()
	fmt.Printf("fib(%d) = %d\n", n, parallel)
	fmt.Printf("serial: %v    scheduled (%d workers): %v\n", serialTime, pool.Workers(), parTime)
	fmt.Printf("tasks spawned: %d (every %.1fns of work — no cutoff needed)\n",
		st.Spawns, float64(serialTime.Nanoseconds())/float64(st.Spawns))
	fmt.Printf("joins: %d private (no atomics), %d public, %d resolved steals\n",
		st.JoinsInlinedPrivate, st.JoinsInlinedPublic, st.JoinsStolen)
	fmt.Printf("steals: %d  (attempts: %d, ABA back-offs: %d)\n",
		st.Steals, st.StealAttempts, st.Backoffs)
}
