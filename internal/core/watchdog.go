package core

import (
	"fmt"
	"strings"
	"time"

	"gowool/internal/poolerr"
)

// WatchdogError is the distinct failure a tripped stuck-run watchdog
// (Options.Watchdog) raises out of Pool.Run: some worker sat blocked in
// a join for at least Interval while the pool's progress heartbeat was
// flat and nobody was executing stolen work. Bundle is a human-readable
// diagnostic snapshot taken at trip time.
type WatchdogError struct {
	// Interval is the configured no-progress threshold.
	Interval time.Duration
	// Bundle is the diagnostic dump: per-worker protocol state and
	// counters, and — when a tracer is attached — the steal matrix and
	// each worker's last trace events.
	Bundle string
}

// Error summarizes the trip; the full dump is in Bundle.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("core: watchdog tripped: no scheduler progress for %v with a blocked join outstanding\n%s", e.Interval, e.Bundle)
}

// ErrorClass classifies a watchdog trip as retryable (DESIGN.md §17):
// the trip names a stuck scheduler state, not a property of the
// request, so re-running the request — typically on a replaced lane —
// may well succeed. The serving layer's breakers and lane-quarantine
// streaks count it as a failure for the same reason.
func (e *WatchdogError) ErrorClass() poolerr.Class { return poolerr.ClassRetryable }

// watchdogPoll panics with the watchdog's verdict if it has tripped.
// Blocked wait loops (joinSlow, leapfrog) call this periodically; the
// panic rides the existing abort machinery (recordPanic poisons the
// pool, Run re-raises), so a stuck Run fails instead of hanging. A
// no-op (one nil pointer load) when the watchdog is disarmed or quiet.
func (p *Pool) watchdogPoll() {
	if e := p.wdErr.Load(); e != nil {
		p.recordPanic(e)
		panic(e)
	}
}

// watchdogLoop is the stuck-run detector (armed by Options.Watchdog).
// Trip condition, checked every interval/4:
//
//   - the pool has a Run in flight, and
//   - the progress heartbeat has been flat for a full interval, and
//   - no worker is executing stolen work (a legitimately long-running
//     stolen leaf keeps counters quiescent but is not a hang), and
//   - some worker has been continuously blocked in a join for at least
//     a full interval.
//
// A long-running task on worker 0 with nothing blocked never trips: the
// pool being merely quiescent-but-legal is exactly the false positive
// the blocked-worker requirement exists to avoid.
//
// It reads only atomics (bot, publicLimit, counters, stamps), so a trip
// snapshot is race-clean; the optional trace section reuses the
// documented-racy live Snapshot/StealMatrix accessors.
func (p *Pool) watchdogLoop(interval time.Duration) {
	// Capture the channels: Reset re-arms a tripped watchdog by
	// replacing wdStop/wdDone with fresh channels, and this (exited)
	// loop's deferred close must hit its own generation's channel.
	stop, done := p.wdStop, p.wdDone
	defer close(done)
	tick := interval / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	lastProgress := int64(-1)
	var quietSince time.Time
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		if !p.running.Load() || p.panicked.Load() {
			lastProgress = -1
			continue
		}
		now := time.Now()
		cur := p.progress.Load()
		busy := false
		for _, w := range p.workers {
			if w.execing.Load() != 0 && w.blockedSince.Load() == 0 {
				busy = true
				break
			}
		}
		if cur != lastProgress || busy {
			lastProgress = cur
			quietSince = now
			continue
		}
		if now.Sub(quietSince) < interval {
			continue
		}
		stuck := false
		for _, w := range p.workers {
			if bs := w.blockedSince.Load(); bs != 0 && now.Sub(time.Unix(0, bs)) >= interval {
				stuck = true
				break
			}
		}
		if !stuck {
			continue
		}
		e := &WatchdogError{Interval: interval, Bundle: p.watchdogBundle(now)}
		p.wdErr.Store(e)
		return
	}
}

// watchdogBundle renders the trip-time diagnostic dump.
func (p *Pool) watchdogBundle(now time.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "progress=%d parked=%d workers=%d\n", p.progress.Load(), p.ParkedWorkers(), len(p.workers))
	for _, w := range p.workers {
		state := "idle"
		if w.execing.Load() != 0 {
			state = "executing-stolen"
		}
		if bs := w.blockedSince.Load(); bs != 0 {
			state = fmt.Sprintf("blocked %v", now.Sub(time.Unix(0, bs)).Round(time.Millisecond))
		}
		fmt.Fprintf(&b, "worker %d: %s bot=%d publicLimit=%d morePublic=%v steals=%d attempts=%d backoffs=%d parks=%d\n",
			w.idx, state, w.bot.Load(), w.publicLimit.Load(), w.morePublic.Load(),
			w.steals.Load(), w.stealAttempts.Load(), w.backoffs.Load(), w.parks.Load())
	}
	if tr := p.opts.Trace; tr != nil {
		b.WriteString("steal matrix:\n")
		tr.StealMatrix().WriteText(&b)
		for i, evs := range tr.Snapshot() {
			if len(evs) > 8 {
				evs = evs[len(evs)-8:]
			}
			fmt.Fprintf(&b, "worker %d last events:", i)
			for _, ev := range evs {
				fmt.Fprintf(&b, " %v(%d,%d)", ev.Kind, ev.Arg, ev.Arg2)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
