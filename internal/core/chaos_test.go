package core

import (
	"runtime"
	"testing"

	"gowool/internal/chaos"
)

// TestChaosOverheadDisabled pins the zero-cost claim for the disabled
// chaos path, mirroring TestTraceOverheadDisabled: with Options.Chaos
// unset every worker's agent pointer is nil, every hook site in
// joinAcquire/trySteal/leapfrog/publishMore/idleLoop is gated on a
// plain `chs != nil` check, and the chaos package's state is
// unreachable — no allocations and no added atomics on the spawn/join
// fast path. Any future hook that bypasses the nil gate or allocates
// per decision shows up here.
func TestChaosOverheadDisabled(t *testing.T) {
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	for i, w := range p.workers {
		if w.chs != nil {
			t.Fatalf("worker %d has a chaos agent on an uninjected pool", i)
		}
	}
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	p.Run(func(w *Worker) int64 {
		if avg := testing.AllocsPerRun(200, func() {
			noop.Spawn(w, 1)
			noop.Join(w)
		}); avg != 0 {
			t.Errorf("spawn/join pair allocates %v objects with chaos disabled, want 0", avg)
		}
		return 0
	})
}

// TestChaosFibAllProfiles runs a steal-heavy fib under every built-in
// chaos profile and checks serial agreement plus that the injector
// actually visited (and perturbed) protocol points. The failure output
// carries the replay seed.
func TestChaosFibAllProfiles(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	fib := fibDef()
	want := serialFib(18)
	for _, prof := range chaos.Profiles() {
		for _, private := range []bool{false, true} {
			const seed = 12345
			in := chaos.NewInjector(4, prof, seed)
			p := NewPool(Options{Workers: 4, PrivateTasks: private, Chaos: in})
			got := p.Run(func(w *Worker) int64 { return fib.Call(w, 18) })
			p.Close()
			if got != want {
				t.Fatalf("profile %s seed %d private=%v: fib(18) = %d, want %d (replay with this seed)",
					prof.Name, seed, private, got, want)
			}
			visits := in.Counts()
			total := uint64(0)
			for _, c := range visits {
				total += c
			}
			if total == 0 {
				t.Fatalf("profile %s seed %d: no chaos points visited on a steal-heavy run", prof.Name, seed)
			}
		}
	}
}

// TestChaosInjectorSizeValidated mirrors the trace-ring validation.
func TestChaosInjectorSizeValidated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for an undersized injector")
		}
	}()
	NewPool(Options{Workers: 4, Chaos: chaos.NewInjector(2, chaos.Profiles()[0], 1)})
}
