// Package analysistest verifies woolvet analyzers against fixture
// packages annotated with "// want" comments, mirroring the golden-file
// convention of golang.org/x/tools/go/analysis/analysistest on the
// repository's stdlib-only analysis framework.
//
// A fixture is a package directory under testdata/src/<name>. Each
// expected diagnostic is declared on the line it is reported at:
//
//	w.state.Store(1) // want `may only be claimed via`
//
// The backquoted (or double-quoted) strings are regular expressions
// matched against the diagnostic message; several may appear on one
// line. The test fails on any unexpected diagnostic and on any want
// pattern no diagnostic matched, so fixtures prove both that a pass
// fires and that it stays quiet on the adjacent correct code.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gowool/internal/analysis"
)

// wantPattern extracts the backquoted or double-quoted expectation
// patterns from the text after "want".
var wantPattern = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type want struct {
	re   *regexp.Regexp
	pos  token.Position
	used bool
}

// Run loads testdata/src/<fixture> (relative to the calling test's
// package directory), runs the analyzers over it, and compares the
// diagnostics against the fixture's want comments.
func Run(t *testing.T, fixture string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("resolving fixture dir: %v", err)
	}
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("creating loader: %v", err)
	}
	pkg, err := loader.LoadDir(dir, "woolvetfixture/"+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}

	wants := collectWants(t, pkg)
	for _, d := range analysis.RunAnalyzers(pkg, analyzers) {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: no diagnostic matched want %q", w.pos, w.re)
			}
		}
	}
}

// collectWants indexes the fixture's want comments by file:line.
func collectWants(t *testing.T, pkg *analysis.Package) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Block-comment wants (/* want `...` */) let a fixture
				// attach an expectation to a line whose trailing line
				// comment is already taken by a directive under test,
				// e.g. a deliberately stale //woolvet:allow.
				text := c.Text
				if body, ok := strings.CutPrefix(text, "/*"); ok {
					text = strings.TrimSuffix(body, "*/")
				} else {
					text = strings.TrimPrefix(text, "//")
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantPattern.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if pat == "" && m[2] != "" {
						unq, err := strconv.Unquote(`"` + m[2] + `"`)
						if err != nil {
							t.Fatalf("%s: bad want string: %v", pos, err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re, pos: pos})
				}
			}
		}
	}
	return wants
}
