package nqueens

import (
	"runtime"
	"testing"

	"gowool/internal/core"
	"gowool/internal/costmodel"
	"gowool/internal/sim"
)

// Known n-queens solution counts.
var known = map[int64]int64{
	1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724,
}

func TestSerialKnownCounts(t *testing.T) {
	for n, want := range known {
		if got := Serial(n); got != want {
			t.Errorf("Serial(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestWoolMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, workers := range []int{1, 2, 4} {
		p := core.NewPool(core.Options{Workers: workers, PrivateTasks: true})
		nq := NewWool()
		if got := RunWool(p, nq, 8); got != known[8] {
			t.Errorf("workers=%d: %d, want %d", workers, got, known[8])
		}
		p.Close()
	}
}

func TestSimMatchesSerial(t *testing.T) {
	for _, procs := range []int{1, 4, 8} {
		res := sim.Run(sim.Config{Procs: procs, Kind: sim.KindDirectStack,
			Costs: costmodel.Wool(), PrivateTasks: true}, NewSim(), sim.Args{A2: 8})
		if res.Value != known[8] {
			t.Errorf("procs=%d: %d, want %d", procs, res.Value, known[8])
		}
	}
}

// TestPublicWindowSensitivity exercises the Section III-B trade-off
// with a deterministic sweep of the public window: for a balanced tree
// the narrowest window is sufficient for load balance (per the paper:
// "if the task tree is balanced, fewer public task descriptors
// suffice") and wide windows only add public-join cost; the irregular
// n-queens tree must stay correct — and keep publishing through the
// trip wire — across the whole sweep.
func TestPublicWindowSensitivity(t *testing.T) {
	run := func(def *sim.Def, args sim.Args, ip int) sim.Result {
		return sim.Run(sim.Config{Procs: 8, Kind: sim.KindDirectStack,
			Costs: costmodel.Wool(), PrivateTasks: true,
			InitialPublic: ip, PublishAmount: ip, Seed: 31}, def, args)
	}
	balanced := &sim.Def{Name: "balanced"}
	balanced.F = func(w *sim.W, a sim.Args) int64 {
		if a.A0 == 0 {
			w.Work(180)
			return 1
		}
		balanced.Spawn(w, sim.Args{A0: a.A0 - 1})
		x := balanced.Call(w, sim.Args{A0: a.A0 - 1})
		y := w.Join()
		return x + y
	}
	balNarrow := run(balanced, sim.Args{A0: 12}, 1)
	balWide := run(balanced, sim.Args{A0: 12}, 16)
	if balNarrow.Value != 4096 || balWide.Value != 4096 {
		t.Fatalf("balanced tree wrong: %d / %d", balNarrow.Value, balWide.Value)
	}
	if balNarrow.Makespan >= balWide.Makespan {
		t.Errorf("balanced tree: narrow window (%d) should beat wide (%d) — balanced trees need few public descriptors",
			balNarrow.Makespan, balWide.Makespan)
	}

	for _, ip := range []int{1, 2, 8, 16} {
		nq := run(NewSim(), sim.Args{A2: 9}, ip)
		if nq.Value != known[9] {
			t.Errorf("nqueens ip=%d: %d, want %d", ip, nq.Value, known[9])
		}
		if ip <= 2 && nq.Total.Publications == 0 && nq.Total.Steals > 8 {
			t.Errorf("nqueens ip=%d: steals (%d) without trip-wire publications", ip, nq.Total.Steals)
		}
	}
}

func TestQuickWoolEquivalence(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	nq := NewWool()
	for n := int64(1); n <= 8; n++ {
		p := core.NewPool(core.Options{Workers: 3})
		if got := RunWool(p, nq, n); got != Serial(n) {
			t.Errorf("n=%d: %d, want %d", n, got, Serial(n))
		}
		p.Close()
	}
}
