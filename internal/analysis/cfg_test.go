package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as a function body and returns its CFG plus a
// lookup from statement source text (first line, trimmed) to node.
func parseBody(t *testing.T, body string) (*CFG, func(src string) *CFGNode) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", "package x\nfunc f(a, b int) int {\n"+body+"\n}", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	g := BuildCFG(fd.Body)
	find := func(src string) *CFGNode {
		for _, n := range g.Nodes {
			if n.Stmt == nil {
				continue
			}
			start := fset.Position(n.Stmt.Pos()).Offset
			end := fset.Position(n.Stmt.End()).Offset
			full := "package x\nfunc f(a, b int) int {\n" + body + "\n}"
			text := full[start:end]
			if line, _, _ := strings.Cut(text, "\n"); strings.TrimSpace(line) == src || strings.TrimSpace(text) == src {
				return n
			}
		}
		t.Fatalf("no CFG node for %q", src)
		return nil
	}
	return g, find
}

func TestCFGStraightLine(t *testing.T) {
	g, find := parseBody(t, "a = 1\nb = 2\nreturn a + b")
	n1, n2, n3 := find("a = 1"), find("b = 2"), find("return a + b")
	for _, tc := range []struct {
		a, b *CFGNode
		dom  bool
	}{
		{n1, n2, true}, {n2, n3, true}, {n1, n3, true},
		{n2, n1, false}, {n3, n1, false},
	} {
		if got := g.Dominates(tc.a, tc.b); got != tc.dom {
			t.Errorf("Dominates(%v, %v) = %v, want %v", tc.a.Pos(), tc.b.Pos(), got, tc.dom)
		}
	}
	if !g.Reaches(n1, n3) || g.Reaches(n3, n1) {
		t.Errorf("straight-line reachability wrong")
	}
}

func TestCFGBranch(t *testing.T) {
	g, find := parseBody(t, "if a > 0 {\na = 1\n} else {\nb = 2\n}\nreturn a")
	thenN, elseN, ret := find("a = 1"), find("b = 2"), find("return a")
	if g.Dominates(thenN, ret) {
		t.Errorf("then-branch must not dominate the join")
	}
	if g.Dominates(elseN, ret) {
		t.Errorf("else-branch must not dominate the join")
	}
	if g.Reaches(thenN, elseN) {
		t.Errorf("sibling branches must not reach each other")
	}
	if !g.Reaches(thenN, ret) || !g.Reaches(elseN, ret) {
		t.Errorf("both branches must reach the join")
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	g, find := parseBody(t, "a = 1\nif a > 0 {\nb = 2\n}\nreturn b")
	pre, inner, ret := find("a = 1"), find("b = 2"), find("return b")
	if !g.Dominates(pre, ret) {
		t.Errorf("statement before if must dominate statement after")
	}
	if g.Dominates(inner, ret) {
		t.Errorf("guarded statement must not dominate the continuation")
	}
}

func TestCFGLoop(t *testing.T) {
	g, find := parseBody(t, "for i := 0; i < a; i++ {\nb = i\n}\nreturn b")
	body, ret := find("b = i"), find("return b")
	if g.Dominates(body, ret) {
		t.Errorf("loop body must not dominate the continuation (zero-trip)")
	}
	if !g.Reaches(body, body) {
		t.Errorf("loop body must reach itself via the back edge")
	}
	if !g.Reaches(body, ret) {
		t.Errorf("loop body must reach the continuation")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	g, find := parseBody(t, `for {
if a > 0 {
break
}
if b > 0 {
continue
}
a = 9
}
return a`)
	after, inside := find("return a"), find("a = 9")
	if !g.Reaches(inside, after) {
		t.Errorf("loop interior must reach post-break continuation")
	}
	if g.Dominates(inside, after) {
		t.Errorf("statement after conditional break/continue must not dominate the exit")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g, find := parseBody(t, `switch a {
case 1:
a = 10
fallthrough
case 2:
b = 20
default:
b = 30
}
return b`)
	c1, c2, ret := find("a = 10"), find("b = 20"), find("return b")
	if !g.Reaches(c1, c2) {
		t.Errorf("fallthrough must connect case bodies")
	}
	if g.Dominates(c2, ret) {
		t.Errorf("one case body must not dominate the switch continuation")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	g, find := parseBody(t, "if a > 0 {\npanic(\"boom\")\n}\nreturn a")
	pan, ret := find(`panic("boom")`), find("return a")
	if g.Reaches(pan, ret) {
		t.Errorf("panic must not flow to the following statement")
	}
}

func TestCFGReturnEndsPath(t *testing.T) {
	g, find := parseBody(t, "if a > 0 {\nreturn a\n}\nb = 1\nreturn b")
	early, later := find("return a"), find("b = 1")
	if g.Reaches(early, later) {
		t.Errorf("early return must not reach following statements")
	}
}

func TestCFGDeferHasNoExprs(t *testing.T) {
	g, _ := parseBody(t, "defer func() { b = 1 }()\nreturn a")
	for _, n := range g.Nodes {
		if _, ok := n.Stmt.(*ast.DeferStmt); ok {
			if len(n.Exprs) != 0 {
				t.Errorf("defer node must carry no Exprs, got %d", len(n.Exprs))
			}
			return
		}
	}
	t.Fatalf("no defer node found")
}

func TestCFGGoto(t *testing.T) {
	g, find := parseBody(t, "a = 1\ngoto done\nb = 2\ndone:\nreturn a")
	start, skipped, ret := find("a = 1"), find("b = 2"), find("return a")
	if !g.Reaches(start, ret) {
		t.Errorf("goto must connect to its label")
	}
	if g.Reachable(skipped) {
		t.Errorf("statement after unconditional goto must be unreachable")
	}
}
