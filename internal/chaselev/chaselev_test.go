package chaselev

import (
	"runtime"
	"strings"
	"testing"
	"testing/quick"

	"gowool/internal/chaos"
)

func serialFib(n int64) int64 {
	if n < 2 {
		return n
	}
	return serialFib(n-1) + serialFib(n-2)
}

func fibDef() *TaskDef1 {
	var fib *TaskDef1
	fib = Define1("fib", func(w *Worker, n int64) int64 {
		if n < 2 {
			return n
		}
		fib.Spawn(w, n-2)
		a := fib.Call(w, n-1)
		b := fib.Join(w)
		return a + b
	})
	return fib
}

func TestFibAllWaitPolicies(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, wp := range []WaitPolicy{WaitSteal, WaitLeapfrog, WaitSpin} {
		for _, workers := range []int{1, 2, 4} {
			p := NewPool(Options{Workers: workers, Wait: wp})
			got := p.Run(func(w *Worker) int64 { return fibDef().Call(w, 20) })
			if want := serialFib(20); got != want {
				t.Errorf("%v workers=%d: got %d want %d", wp, workers, got, want)
			}
			p.Close()
		}
	}
}

func TestWaitPolicyNames(t *testing.T) {
	for p, want := range map[WaitPolicy]string{
		WaitSteal:    "steal-any",
		WaitLeapfrog: "leapfrog",
		WaitSpin:     "spin",
	} {
		if got := p.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestFreeListReuse(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	p.Run(func(w *Worker) int64 {
		for i := int64(0); i < 1000; i++ {
			noop.Spawn(w, i)
			if got := noop.Join(w); got != i {
				t.Fatalf("join %d returned %d", i, got)
			}
		}
		return 0
	})
	st := p.Stats()
	// The free list means only the first iteration's task structure
	// comes from the heap.
	if st.Allocs > 4 {
		t.Errorf("heap allocs = %d, want <= 4 (free list not reusing)", st.Allocs)
	}
	if st.Spawns != 1000 {
		t.Errorf("spawns = %d, want 1000", st.Spawns)
	}
}

func TestStatsConservation(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	p := NewPool(Options{Workers: 4})
	defer p.Close()
	fib := fibDef()
	p.Run(func(w *Worker) int64 { return fib.Call(w, 21) })
	st := p.Stats()
	if st.Spawns != st.JoinsInlined+st.JoinsStolen {
		t.Errorf("spawns (%d) != joins (%d+%d)", st.Spawns, st.JoinsInlined, st.JoinsStolen)
	}
	if st.JoinsStolen > st.Steals {
		t.Errorf("stolen joins (%d) > steals (%d)", st.JoinsStolen, st.Steals)
	}
}

// TestDequeOverflowPanics covers the StrictOverflow arm of the shared
// degrade-or-panic policy; without the flag the same workload degrades
// (TestOverflowDegradesToInline).
func TestDequeOverflowPanics(t *testing.T) {
	p := NewPool(Options{Workers: 1, DequeSize: 8, StrictOverflow: true})
	defer p.Close()
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on deque overflow")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "task pool overflow") {
			t.Fatalf("overflow panic = %v, want the unified task-pool-overflow message", r)
		}
	}()
	p.Run(func(w *Worker) int64 {
		for i := int64(0); i < 100; i++ {
			noop.Spawn(w, i)
		}
		return 0
	})
}

// TestOverflowDegradesToInline: a DequeSize-4 pool completes a deep
// spawn tree correctly, with spawns past capacity elided to inline
// execution and counted in OverflowInlined.
func TestOverflowDegradesToInline(t *testing.T) {
	leaf := Define1("leaf", func(w *Worker, x int64) int64 { return x })
	var deep *TaskDef1
	deep = Define1("deep", func(w *Worker, d int64) int64 {
		if d == 0 {
			return 0
		}
		leaf.Spawn(w, d)
		sub := deep.Call(w, d-1)
		return sub + leaf.Join(w)
	})
	const depth = 1000
	const want = depth * (depth + 1) / 2
	for _, workers := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(4)
		p := NewPool(Options{Workers: workers, DequeSize: 4})
		got := p.Run(func(w *Worker) int64 { return deep.Call(w, depth) })
		st := p.Stats()
		p.Close()
		runtime.GOMAXPROCS(prev)
		if got != want {
			t.Fatalf("workers=%d: depth-%d spawn tree = %d, want %d", workers, depth, got, want)
		}
		if st.OverflowInlined == 0 {
			t.Fatalf("workers=%d: OverflowInlined = 0 on a depth-%d tree with DequeSize 4", workers, depth)
		}
		if st.Spawns != st.JoinsInlined+st.JoinsStolen {
			t.Fatalf("workers=%d: spawns (%d) != joins (%d+%d) with elision active",
				workers, st.Spawns, st.JoinsInlined, st.JoinsStolen)
		}
	}
}

// TestChaosOverheadDisabled pins the zero-cost claim for the disabled
// chaos path on this backend: no agents, no allocations on spawn/join.
func TestChaosOverheadDisabled(t *testing.T) {
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	for i, w := range p.workers {
		if w.chs != nil {
			t.Fatalf("worker %d has a chaos agent on an uninjected pool", i)
		}
	}
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	p.Run(func(w *Worker) int64 {
		if avg := testing.AllocsPerRun(200, func() {
			noop.Spawn(w, 1)
			noop.Join(w)
		}); avg != 0 {
			t.Errorf("spawn/join pair allocates %v objects with chaos disabled, want 0", avg)
		}
		return 0
	})
}

// TestChaosFibAllProfiles: serial agreement for fib under every chaos
// profile and every wait policy, seed in the failure output for replay.
func TestChaosFibAllProfiles(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	fib := fibDef()
	want := serialFib(18)
	for _, prof := range chaos.Profiles() {
		for _, wp := range []WaitPolicy{WaitSteal, WaitLeapfrog} {
			const seed = 12345
			in := chaos.NewInjector(4, prof, seed)
			p := NewPool(Options{Workers: 4, Wait: wp, Chaos: in})
			got := p.Run(func(w *Worker) int64 { return fib.Call(w, 18) })
			p.Close()
			if got != want {
				t.Fatalf("profile %s seed %d wait=%v: fib(18) = %d, want %d (replay with this seed)",
					prof.Name, seed, wp, got, want)
			}
			total := uint64(0)
			for _, c := range in.Counts() {
				total += c
			}
			if total == 0 {
				t.Fatalf("profile %s seed %d: no chaos points visited", prof.Name, seed)
			}
		}
	}
}

func TestUnjoinedPanics(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unjoined tasks")
		}
	}()
	p.Run(func(w *Worker) int64 { noop.Spawn(w, 1); return 0 })
}

func TestContextTask(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	type acc struct{ v []int64 }
	var fill *TaskDefC2[acc]
	fill = DefineC2("fill", func(w *Worker, a *acc, lo, hi int64) int64 {
		if hi-lo <= 4 {
			for i := lo; i < hi; i++ {
				a.v[i] = i * i
			}
			return hi - lo
		}
		mid := (lo + hi) / 2
		fill.Spawn(w, a, lo, mid)
		r := fill.Call(w, a, mid, hi)
		l := fill.Join(w)
		return l + r
	})
	a := &acc{v: make([]int64, 300)}
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	if got := p.Run(func(w *Worker) int64 { return fill.Call(w, a, 0, 300) }); got != 300 {
		t.Fatalf("count = %d, want 300", got)
	}
	for i, v := range a.v {
		if v != int64(i*i) {
			t.Fatalf("v[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestQuickEquivalence(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	fib := fibDef()
	err := quick.Check(func(nRaw, wRaw, pRaw uint8) bool {
		n := int64(nRaw % 16)
		workers := int(wRaw%4) + 1
		wp := WaitPolicy(pRaw % 3)
		p := NewPool(Options{Workers: workers, Wait: wp})
		defer p.Close()
		got := p.Run(func(w *Worker) int64 { return fib.Call(w, n) })
		return got == serialFib(n)
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkSpawnJoinDeque(b *testing.B) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	noop := Define1("noop", func(w *Worker, x int64) int64 { return x })
	b.ResetTimer()
	p.Run(func(w *Worker) int64 {
		for i := 0; i < b.N; i++ {
			noop.Spawn(w, 1)
			noop.Join(w)
		}
		return 0
	})
}

// TestWorkersBoundRejected: stolenBy packs thief index + 1 into an
// int32, so NewPool must reject worker counts past that encoding
// before allocating per-worker deques.
func TestWorkersBoundRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool accepted Workers beyond the int32 stolenBy encoding")
		}
	}()
	NewPool(Options{Workers: 1 << 31})
}
